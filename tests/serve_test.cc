// Serve-layer tests: plan fingerprinting, the sharded LRU result cache,
// catalog versioning/invalidation, the async QueryService, and an N-thread
// hammer of mixed cached/uncached skyline queries checked against the
// brute-force oracle. A cache hit must be *bit-identical* to uncached
// execution — same rows, same order, in fact the same shared snapshot.
#include <future>
#include <mutex>
#include <thread>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "datagen/datagen.h"
#include "serve/fingerprint.h"
#include "serve/query_service.h"
#include "serve/result_cache.h"
#include "skyline/algorithms.h"
#include "test_util.h"

namespace sparkline {
namespace {

using serve::FingerprintPlan;
using serve::PlanFingerprint;
using serve::ResultCache;
using ::sparkline::testing::MakePointsTable;
using ::sparkline::testing::RowStrings;

// Fingerprints a SQL string post-analysis.
PlanFingerprint Fingerprint(Session* session, const std::string& sql) {
  auto df = session->Sql(sql);
  SL_CHECK(df.ok()) << sql << " -> " << df.status().ToString();
  return FingerprintPlan(df->plan());
}

TablePtr SmallPoints(const std::string& name = "pts") {
  return MakePointsTable(name, {{1, 1.0, 9.0},
                                {2, 2.0, 8.0},
                                {3, 3.0, 7.0},
                                {4, 4.0, 6.0},
                                {5, 2.5, 9.5},
                                {6, 0.5, 10.0}});
}

// --- fingerprinting ---------------------------------------------------------

TEST(FingerprintTest, StableAcrossParsesWhitespaceAndAlias) {
  Session session;
  ASSERT_OK(session.catalog()->RegisterTable(SmallPoints()));

  const std::string base = "SELECT * FROM pts SKYLINE OF x MIN, y MAX";
  PlanFingerprint a = Fingerprint(&session, base);
  EXPECT_TRUE(a.cacheable);
  EXPECT_EQ(a.tables, std::vector<std::string>{"pts"});

  // A second parse mints fresh ExprIds; the canonical form must not care.
  PlanFingerprint b = Fingerprint(&session, base);
  EXPECT_EQ(a.Key(), b.Key());
  EXPECT_EQ(a.canonical, b.canonical);

  // Whitespace / keyword case.
  PlanFingerprint c = Fingerprint(
      &session, "select  *\n  from PTS\n  skyline of x min,   y max");
  EXPECT_EQ(a.Key(), c.Key());

  // Table alias (and qualified references through it).
  PlanFingerprint d = Fingerprint(
      &session, "SELECT * FROM pts AS p SKYLINE OF p.x MIN, p.y MAX");
  EXPECT_EQ(a.Key(), d.Key());
}

TEST(FingerprintTest, DistinguishesQuerySemantics) {
  Session session;
  ASSERT_OK(session.catalog()->RegisterTable(SmallPoints()));
  ASSERT_OK(session.catalog()->RegisterTable(SmallPoints("other")));

  const PlanFingerprint base =
      Fingerprint(&session, "SELECT * FROM pts SKYLINE OF x MIN, y MAX");
  // Different goal on a dimension.
  EXPECT_NE(base.Key(),
            Fingerprint(&session, "SELECT * FROM pts SKYLINE OF x MIN, y MIN")
                .Key());
  // DIFF dimension.
  EXPECT_NE(base.Key(),
            Fingerprint(&session,
                        "SELECT * FROM pts SKYLINE OF x MIN, y MAX, id DIFF")
                .Key());
  // Fewer dimensions.
  EXPECT_NE(base.Key(),
            Fingerprint(&session, "SELECT * FROM pts SKYLINE OF x MIN").Key());
  // DISTINCT / COMPLETE flags.
  EXPECT_NE(
      base.Key(),
      Fingerprint(&session, "SELECT * FROM pts SKYLINE OF DISTINCT x MIN, y MAX")
          .Key());
  EXPECT_NE(
      base.Key(),
      Fingerprint(&session, "SELECT * FROM pts SKYLINE OF COMPLETE x MIN, y MAX")
          .Key());
  // Different literal in a filter.
  const PlanFingerprint f10 = Fingerprint(
      &session, "SELECT * FROM pts WHERE x < 10 SKYLINE OF x MIN, y MAX");
  const PlanFingerprint f20 = Fingerprint(
      &session, "SELECT * FROM pts WHERE x < 20 SKYLINE OF x MIN, y MAX");
  EXPECT_NE(f10.Key(), f20.Key());
  // Different table.
  EXPECT_NE(base.Key(),
            Fingerprint(&session, "SELECT * FROM other SKYLINE OF x MIN, y MAX")
                .Key());
  // Projection list and column aliases are part of the result header.
  EXPECT_NE(
      Fingerprint(&session, "SELECT x FROM pts").Key(),
      Fingerprint(&session, "SELECT x AS price FROM pts").Key());
}

TEST(FingerprintTest, TableVersionShiftsKey) {
  Session session;
  ASSERT_OK(session.catalog()->RegisterTable(SmallPoints()));
  const std::string sql = "SELECT * FROM pts SKYLINE OF x MIN, y MAX";

  const PlanFingerprint before = Fingerprint(&session, sql);
  ASSERT_OK(session.catalog()->InsertInto(
      "pts", {Row{Value::Int64(7), Value::Double(0.1), Value::Double(12.0)}}));
  const PlanFingerprint after = Fingerprint(&session, sql);
  EXPECT_NE(before.Key(), after.Key());

  // Drop + recreate must never reuse a version either.
  ASSERT_OK(session.catalog()->DropTable("pts"));
  ASSERT_OK(session.catalog()->RegisterTable(SmallPoints()));
  const PlanFingerprint recreated = Fingerprint(&session, sql);
  EXPECT_NE(before.Key(), recreated.Key());
  EXPECT_NE(after.Key(), recreated.Key());
}

TEST(FingerprintTest, LocalRelationIsNotCacheable) {
  Session session;
  Schema schema({Field{"x", DataType::Double(), false}});
  ASSERT_OK_AND_ASSIGN(
      DataFrame df,
      session.CreateDataFrame(schema, {Row{Value::Double(1.0)}}));
  const PlanFingerprint fp = FingerprintPlan(df.plan());
  EXPECT_FALSE(fp.cacheable);
}

TEST(FingerprintTest, OutputHeaderCaseIsPartOfTheKey) {
  Session session;
  ASSERT_OK(session.catalog()->RegisterTable(SmallPoints()));
  EXPECT_NE(Fingerprint(&session, "SELECT x AS price FROM pts").Key(),
            Fingerprint(&session, "SELECT x AS Price FROM pts").Key());
}

// --- catalog versioning / thread safety -------------------------------------

TEST(CatalogVersionTest, MonotonicPerTableVersions) {
  Catalog catalog;
  EXPECT_EQ(catalog.TableVersion("pts"), 0u);
  ASSERT_OK(catalog.RegisterTable(SmallPoints()));
  const uint64_t v1 = catalog.TableVersion("pts");
  EXPECT_GT(v1, 0u);

  ASSERT_OK(catalog.InsertInto(
      "pts", {Row{Value::Int64(9), Value::Double(5.0), Value::Double(5.0)}}));
  const uint64_t v2 = catalog.TableVersion("PTS");  // case-insensitive
  EXPECT_GT(v2, v1);

  ASSERT_OK(catalog.DropTable("pts"));
  EXPECT_GT(catalog.TableVersion("pts"), v2);

  // Copy-on-write: a snapshot taken before the insert is unchanged.
  ASSERT_OK(catalog.RegisterTable(SmallPoints()));
  ASSERT_OK_AND_ASSIGN(TablePtr snapshot, catalog.GetTable("pts"));
  const size_t rows_before = snapshot->num_rows();
  ASSERT_OK(catalog.InsertInto(
      "pts", {Row{Value::Int64(10), Value::Double(1.0), Value::Double(1.0)}}));
  EXPECT_EQ(snapshot->num_rows(), rows_before);
  ASSERT_OK_AND_ASSIGN(TablePtr current, catalog.GetTable("pts"));
  EXPECT_EQ(current->num_rows(), rows_before + 1);
}

TEST(CatalogVersionTest, WriteListenerObservesOrderedEventsWithPayload) {
  Catalog catalog;
  // The listener runs on the notifier thread; DrainWrites makes the
  // post-write state observable deterministically.
  std::mutex mu;
  std::vector<WriteEvent> events;
  catalog.AddWriteListener([&](const WriteEvent& event) {
    std::lock_guard<std::mutex> lock(mu);
    events.push_back(event);
  });
  ASSERT_OK(catalog.RegisterTable(SmallPoints("MixedCase")));
  ASSERT_OK(catalog.InsertInto(
      "mixedcase",
      {Row{Value::Int64(11), Value::Double(2.0), Value::Double(2.0)}}));
  ASSERT_OK(catalog.DropTable("MIXEDCASE"));
  catalog.DrainWrites();

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, WriteEvent::Kind::kRegister);
  EXPECT_EQ(events[1].kind, WriteEvent::Kind::kInsert);
  EXPECT_EQ(events[2].kind, WriteEvent::Kind::kDrop);
  for (const WriteEvent& event : events) {
    EXPECT_EQ(event.table, "mixedcase");  // lower-cased catalog key
    EXPECT_GT(event.new_version, event.old_version);
  }
  // Events arrive in version order; an insert carries the inserted rows,
  // the other kinds carry none.
  EXPECT_EQ(events[0].new_version, events[1].old_version);
  EXPECT_EQ(events[1].new_version, events[2].old_version);
  EXPECT_EQ(events[0].rows, nullptr);
  ASSERT_NE(events[1].rows, nullptr);
  ASSERT_EQ(events[1].rows->size(), 1u);
  EXPECT_EQ((*events[1].rows)[0][0].int64_value(), 11);
  EXPECT_EQ(events[2].rows, nullptr);
}

// --- result cache mechanics -------------------------------------------------

PlanFingerprint SyntheticFp(uint64_t id, std::vector<std::string> tables) {
  PlanFingerprint fp;
  fp.cacheable = true;
  fp.hash_hi = id * 7919;
  fp.hash_lo = id;
  fp.tables = std::move(tables);
  return fp;
}

std::shared_ptr<const serve::CachedResult> SyntheticEntry(int64_t bytes) {
  auto entry = std::make_shared<serve::CachedResult>();
  entry->rows = std::make_shared<const std::vector<Row>>();
  entry->bytes = bytes;
  return entry;
}

TEST(ResultCacheTest, ByteBudgetEvictsLeastRecentlyUsed) {
  ResultCache::Options options;
  options.capacity_bytes = 300;
  options.ttl_ms = 0;
  options.num_shards = 1;  // deterministic eviction order
  ResultCache cache(options);

  const PlanFingerprint a = SyntheticFp(1, {"t"});
  const PlanFingerprint b = SyntheticFp(2, {"t"});
  const PlanFingerprint c = SyntheticFp(3, {"t"});
  cache.Insert(a, SyntheticEntry(100));
  cache.Insert(b, SyntheticEntry(100));
  EXPECT_NE(cache.Lookup(a), nullptr);  // refresh A: B is now the LRU entry
  cache.Insert(c, SyntheticEntry(150));

  EXPECT_NE(cache.Lookup(a), nullptr);
  EXPECT_EQ(cache.Lookup(b), nullptr);  // evicted over budget
  EXPECT_NE(cache.Lookup(c), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_LE(cache.stats().resident_bytes, 300);

  // Entries larger than the budget are not admitted at all.
  const PlanFingerprint d = SyntheticFp(4, {"t"});
  cache.Insert(d, SyntheticEntry(1000));
  EXPECT_EQ(cache.Lookup(d), nullptr);
}

TEST(ResultCacheTest, InvalidateTableDropsExactlyDependents) {
  ResultCache::Options options;
  options.num_shards = 4;
  ResultCache cache(options);

  cache.Insert(SyntheticFp(1, {"a"}), SyntheticEntry(10));
  cache.Insert(SyntheticFp(2, {"a", "b"}), SyntheticEntry(10));
  cache.Insert(SyntheticFp(3, {"b"}), SyntheticEntry(10));
  cache.Insert(SyntheticFp(4, {"c"}), SyntheticEntry(10));

  cache.InvalidateTable("a");
  EXPECT_EQ(cache.Lookup(SyntheticFp(1, {"a"})), nullptr);
  EXPECT_EQ(cache.Lookup(SyntheticFp(2, {"a", "b"})), nullptr);
  EXPECT_NE(cache.Lookup(SyntheticFp(3, {"b"})), nullptr);
  EXPECT_NE(cache.Lookup(SyntheticFp(4, {"c"})), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 2);
}

TEST(ResultCacheTest, TtlExpiry) {
  ResultCache::Options options;
  options.ttl_ms = 5;
  options.num_shards = 1;
  ResultCache cache(options);

  const PlanFingerprint a = SyntheticFp(1, {"t"});
  cache.Insert(a, SyntheticEntry(10));
  EXPECT_NE(cache.Lookup(a), nullptr);
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  EXPECT_EQ(cache.Lookup(a), nullptr);
  EXPECT_EQ(cache.stats().entries, 0);
  EXPECT_EQ(cache.stats().resident_bytes, 0);
  EXPECT_EQ(cache.stats().expirations, 1);
  EXPECT_EQ(cache.stats().evictions, 0)
      << "TTL drops must not be counted as budget evictions";
}

// Regression: expired entries that are never probed again must not keep
// charging the byte budget or linger in the per-table reverse index until
// LRU pressure evicts them — any lookup sweeps the expired LRU tail, and
// PurgeExpired() reclaims everything.
TEST(ResultCacheTest, ExpiredEntriesReleaseBudgetWithoutReprobe) {
  ResultCache::Options options;
  options.ttl_ms = 5;
  options.num_shards = 1;
  ResultCache cache(options);

  cache.Insert(SyntheticFp(1, {"t"}), SyntheticEntry(100));
  cache.Insert(SyntheticFp(2, {"t"}), SyntheticEntry(100));
  ASSERT_EQ(cache.stats().resident_bytes, 200);
  std::this_thread::sleep_for(std::chrono::milliseconds(25));

  // A lookup of an *unrelated* key must still release the expired entries
  // (the tail sweep) — neither expired fingerprint is probed.
  EXPECT_EQ(cache.Lookup(SyntheticFp(3, {"u"})), nullptr);
  EXPECT_EQ(cache.stats().entries, 0);
  EXPECT_EQ(cache.stats().resident_bytes, 0);
  EXPECT_EQ(cache.stats().expirations, 2);

  // The reverse index is released too: a table write after expiry finds
  // nothing left to invalidate.
  cache.InvalidateTable("t");
  EXPECT_EQ(cache.stats().invalidations, 0);

  // The full purge reclaims expired entries with no lookup or insert
  // traffic at all.
  cache.Insert(SyntheticFp(4, {"t"}), SyntheticEntry(50));
  cache.Insert(SyntheticFp(5, {"t"}), SyntheticEntry(50));
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  cache.PurgeExpired();
  EXPECT_EQ(cache.stats().entries, 0);
  EXPECT_EQ(cache.stats().resident_bytes, 0);
  EXPECT_EQ(cache.stats().expirations, 4);
}

// --- cached execution through the session ------------------------------------

TEST(CachedExecutionTest, HitIsBitIdenticalAndMetricsDistinguish) {
  Session session;
  ASSERT_OK(session.SetConf("sparkline.cache.enabled", "true"));
  ASSERT_OK(session.catalog()->RegisterTable(SmallPoints()));
  const std::string sql = "SELECT * FROM pts SKYLINE OF x MIN, y MAX";

  ASSERT_OK_AND_ASSIGN(DataFrame df1, session.Sql(sql));
  ASSERT_OK_AND_ASSIGN(QueryResult first, df1.Collect());
  EXPECT_FALSE(first.metrics.cache_hit);
  EXPECT_EQ(first.metrics.operator_ms.count("[cache-hit]"), 0u);
  EXPECT_EQ(first.metrics.rows_served,
            static_cast<int64_t>(first.num_rows()));
  EXPECT_GT(first.metrics.bytes_served, 0);

  // Lexically different, semantically identical query -> same entry.
  ASSERT_OK_AND_ASSIGN(DataFrame df2,
                       session.Sql("select * from pts as p skyline of p.x "
                                   "min, p.y max"));
  ASSERT_OK_AND_ASSIGN(QueryResult second, df2.Collect());
  EXPECT_TRUE(second.metrics.cache_hit);
  EXPECT_EQ(second.metrics.operator_ms.count("[cache-hit]"), 1u);
  EXPECT_GE(second.metrics.cache_lookup_ms, 0.0);
  EXPECT_EQ(second.metrics.rows_served, first.metrics.rows_served);
  EXPECT_EQ(second.metrics.bytes_served, first.metrics.bytes_served);

  // Bit-identical: the hit aliases the very snapshot the miss produced.
  EXPECT_EQ(second.shared_rows().get(), first.shared_rows().get());
  ASSERT_EQ(second.num_rows(), first.num_rows());
  for (size_t i = 0; i < first.num_rows(); ++i) {
    EXPECT_EQ(RowToString(first.rows()[i]), RowToString(second.rows()[i]));
  }
  ASSERT_EQ(second.attrs.size(), first.attrs.size());
  for (size_t i = 0; i < first.attrs.size(); ++i) {
    EXPECT_EQ(second.attrs[i].name, first.attrs[i].name);
  }

  const ResultCache::Stats stats = session.cache()->stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
}

TEST(CachedExecutionTest, InsertAndDropInvalidate) {
  Session session;
  ASSERT_OK(session.SetConf("sparkline.cache.enabled", "true"));
  // Incremental maintenance off: this test pins the classic
  // write-invalidates behaviour (the maintained path is covered by
  // incremental_test.cc).
  ASSERT_OK(session.SetConf("sparkline.cache.incremental", "false"));
  ASSERT_OK(session.catalog()->RegisterTable(SmallPoints()));
  const std::string sql = "SELECT * FROM pts SKYLINE OF x MIN, y MAX";

  ASSERT_OK_AND_ASSIGN(DataFrame df, session.Sql(sql));
  ASSERT_OK_AND_ASSIGN(QueryResult r1, df.Collect());
  EXPECT_FALSE(r1.metrics.cache_hit);

  // The new point dominates everything: the cached result must not be
  // served after the insert. Invalidation runs on the notifier thread.
  ASSERT_OK(session.catalog()->InsertInto(
      "pts", {Row{Value::Int64(7), Value::Double(0.0), Value::Double(99.0)}}));
  session.catalog()->DrainWrites();
  EXPECT_GE(session.cache()->stats().invalidations, 1);

  ASSERT_OK_AND_ASSIGN(DataFrame df2, session.Sql(sql));
  ASSERT_OK_AND_ASSIGN(QueryResult r2, df2.Collect());
  EXPECT_FALSE(r2.metrics.cache_hit);
  EXPECT_EQ(r2.num_rows(), 1u);
  EXPECT_EQ(r2.rows()[0][0].int64_value(), 7);

  // Drop + recreate: stale entries must not resurface either.
  ASSERT_OK(session.catalog()->DropTable("pts"));
  ASSERT_OK(session.catalog()->RegisterTable(SmallPoints()));
  session.catalog()->DrainWrites();
  ASSERT_OK_AND_ASSIGN(DataFrame df3, session.Sql(sql));
  ASSERT_OK_AND_ASSIGN(QueryResult r3, df3.Collect());
  EXPECT_FALSE(r3.metrics.cache_hit);
  EXPECT_EQ(RowStrings(r3.rows()), RowStrings(r1.rows()));
}

// Regression: a write landing between Sql() (analysis, which pins the
// table snapshot) and Collect() must not poison the cache. The executed
// rows come from the pre-write snapshot, so they must be keyed under the
// pre-write version — a fresh query must miss and see the new data, never
// hit the stale entry.
TEST(CachedExecutionTest, WriteBetweenAnalysisAndExecutionCannotPoison) {
  Session session;
  ASSERT_OK(session.SetConf("sparkline.cache.enabled", "true"));
  ASSERT_OK(session.catalog()->RegisterTable(SmallPoints()));
  const std::string sql = "SELECT * FROM pts SKYLINE OF x MIN, y MAX";

  ASSERT_OK_AND_ASSIGN(DataFrame stale_df, session.Sql(sql));
  // Dominates every existing point; bumps the version after analysis.
  ASSERT_OK(session.catalog()->InsertInto(
      "pts", {Row{Value::Int64(7), Value::Double(0.0), Value::Double(99.0)}}));
  // Executes the pre-insert snapshot (whose skyline is point 6) and caches
  // it under the old version.
  ASSERT_OK_AND_ASSIGN(QueryResult stale, stale_df.Collect());
  EXPECT_FALSE(stale.metrics.cache_hit);
  ASSERT_EQ(stale.num_rows(), 1u);
  EXPECT_EQ(stale.rows()[0][0].int64_value(), 6);

  // A fresh query resolves the post-insert snapshot: must MISS the stale
  // entry and return the dominating point only.
  ASSERT_OK_AND_ASSIGN(DataFrame fresh_df, session.Sql(sql));
  ASSERT_OK_AND_ASSIGN(QueryResult fresh, fresh_df.Collect());
  EXPECT_FALSE(fresh.metrics.cache_hit);
  ASSERT_EQ(fresh.num_rows(), 1u);
  EXPECT_EQ(fresh.rows()[0][0].int64_value(), 7);

  // And the fresh result is the one that stays cached.
  ASSERT_OK_AND_ASSIGN(DataFrame again_df, session.Sql(sql));
  ASSERT_OK_AND_ASSIGN(QueryResult again, again_df.Collect());
  EXPECT_TRUE(again.metrics.cache_hit);
  EXPECT_EQ(again.num_rows(), 1u);
}

TEST(CachedExecutionTest, TtlExpiryEndToEnd) {
  Session session;
  ASSERT_OK(session.SetConf("sparkline.cache.enabled", "true"));
  ASSERT_OK(session.SetConf("sparkline.cache.ttl_ms", "5"));
  ASSERT_OK(session.catalog()->RegisterTable(SmallPoints()));
  const std::string sql = "SELECT * FROM pts SKYLINE OF x MIN, y MAX";

  ASSERT_OK_AND_ASSIGN(DataFrame df, session.Sql(sql));
  ASSERT_OK_AND_ASSIGN(QueryResult r1, df.Collect());
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  ASSERT_OK_AND_ASSIGN(DataFrame df2, session.Sql(sql));
  ASSERT_OK_AND_ASSIGN(QueryResult r2, df2.Collect());
  EXPECT_FALSE(r2.metrics.cache_hit);
  EXPECT_EQ(RowStrings(r2.rows()), RowStrings(r1.rows()));
}

// --- query service -----------------------------------------------------------

TEST(QueryServiceTest, AsyncExecutionAndAdmissionCap) {
  Session session;
  ASSERT_OK(session.SetConf("sparkline.serve.max_concurrent", "1"));
  TablePtr big = datagen::GeneratePoints(
      "big", 4000, 4, datagen::PointDistribution::kAntiCorrelated, 99, 0.0);
  ASSERT_OK(session.catalog()->RegisterTable(big));
  ASSERT_OK(session.catalog()->RegisterTable(SmallPoints()));

  serve::QueryService::Options options;
  options.max_concurrent = 1;
  options.max_pending = 2;
  serve::QueryService service(&session, options);

  // The single service thread chews on the heavy query; the second slot
  // fills the admission window, the third submit must be rejected.
  ASSERT_OK_AND_ASSIGN(
      auto heavy,
      service.Submit(
          "SELECT * FROM big SKYLINE OF d0 MIN, d1 MAX, d2 MIN, d3 MAX"));
  ASSERT_OK_AND_ASSIGN(
      auto queued, service.Submit("SELECT * FROM pts SKYLINE OF x MIN"));
  auto rejected = service.Submit("SELECT * FROM pts SKYLINE OF y MAX");
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);

  ASSERT_OK_AND_ASSIGN(QueryResult heavy_result, heavy.future.get());
  ASSERT_OK_AND_ASSIGN(QueryResult queued_result, queued.future.get());
  EXPECT_GT(heavy_result.num_rows(), 0u);
  EXPECT_GT(queued_result.num_rows(), 0u);

  const serve::QueryService::Stats stats = service.stats();
  EXPECT_EQ(stats.submitted, 2);
  EXPECT_EQ(stats.completed, 2);
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_EQ(stats.in_flight, 0);

  // Errors travel through the future, not the submit call.
  ASSERT_OK_AND_ASSIGN(auto bad, service.Submit("SELECT * FROM nope"));
  EXPECT_FALSE(bad.future.get().ok());
}

TEST(QueryServiceTest, SessionSqlAsyncWiring) {
  Session session;
  ASSERT_OK(session.SetConf("sparkline.cache.enabled", "true"));
  ASSERT_OK(session.catalog()->RegisterTable(SmallPoints()));

  ASSERT_OK_AND_ASSIGN(
      auto f1, session.SqlAsync("SELECT * FROM pts SKYLINE OF x MIN, y MAX"));
  ASSERT_OK_AND_ASSIGN(QueryResult r1, f1.get());
  ASSERT_OK_AND_ASSIGN(
      auto f2, session.SqlAsync("SELECT * FROM pts SKYLINE OF x MIN, y MAX"));
  ASSERT_OK_AND_ASSIGN(QueryResult r2, f2.get());
  EXPECT_FALSE(r1.metrics.cache_hit);
  EXPECT_TRUE(r2.metrics.cache_hit);
  EXPECT_EQ(RowStrings(r1.rows()), RowStrings(r2.rows()));

  // max_concurrent is frozen once the service exists.
  EXPECT_FALSE(session.SetConf("sparkline.serve.max_concurrent", "8").ok());
}

TEST(QueryServiceTest, CancelRunningQuery) {
  Session session;
  ASSERT_OK(session.SetConf("sparkline.serve.max_concurrent", "1"));
  TablePtr big = datagen::GeneratePoints(
      "big", 20000, 6, datagen::PointDistribution::kAntiCorrelated, 7, 0.0);
  ASSERT_OK(session.catalog()->RegisterTable(big));

  ASSERT_OK_AND_ASSIGN(
      serve::QueryHandle handle,
      session.SqlSubmit("SELECT * FROM big SKYLINE OF d0 MIN, d1 MAX, d2 MIN, "
                        "d3 MAX, d4 MIN, d5 MAX"));
  handle.Cancel();
  Result<QueryResult> result = handle.future.get();
  // Cancellation raced the query; it either lost cleanly (full result) or
  // won (Status::Cancelled) — never a crash or a hang.
  if (!result.ok()) {
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
        << result.status().ToString();
  }
}

TEST(QueryServiceTest, CancelShedsQueuedQuery) {
  Session session;
  ASSERT_OK(session.SetConf("sparkline.serve.max_concurrent", "1"));
  TablePtr big = datagen::GeneratePoints(
      "big", 8000, 5, datagen::PointDistribution::kAntiCorrelated, 11, 0.0);
  ASSERT_OK(session.catalog()->RegisterTable(big));
  ASSERT_OK(session.catalog()->RegisterTable(SmallPoints()));

  // The heavy query occupies the single service thread; the second query is
  // still queued when we cancel it, so it must be shed without executing.
  ASSERT_OK_AND_ASSIGN(
      serve::QueryHandle heavy,
      session.SqlSubmit(
          "SELECT * FROM big SKYLINE OF d0 MIN, d1 MAX, d2 MIN, d3 MAX"));
  ASSERT_OK_AND_ASSIGN(serve::QueryHandle queued,
                       session.SqlSubmit("SELECT * FROM pts SKYLINE OF x MIN"));
  queued.Cancel();

  Result<QueryResult> queued_result = queued.future.get();
  if (!queued_result.ok()) {
    EXPECT_EQ(queued_result.status().code(), StatusCode::kCancelled);
  }
  ASSERT_OK_AND_ASSIGN(QueryResult heavy_result, heavy.future.get());
  EXPECT_GT(heavy_result.num_rows(), 0u);

  session.service()->Drain();
  const serve::QueryService::Stats stats = session.service()->stats();
  EXPECT_EQ(stats.submitted, stats.completed);
  EXPECT_EQ(stats.in_flight, 0);
}

// stats() must return a *consistent* snapshot while submissions race: the
// previous independent atomics allowed submitted/completed/in_flight to be
// observed mid-update.
TEST(QueryServiceTest, StatsSnapshotIsConsistentUnderConcurrency) {
  Session session;
  ASSERT_OK(session.SetConf("sparkline.serve.max_concurrent", "2"));
  ASSERT_OK(session.catalog()->RegisterTable(SmallPoints()));
  serve::QueryService* service = session.service();

  std::atomic<bool> stop{false};
  std::atomic<int64_t> violations{0};
  std::thread reader([&] {
    while (!stop.load()) {
      const serve::QueryService::Stats s = service->stats();
      // Invariant of the lifecycle: every submitted query is either still
      // in flight or completed — in *every* snapshot, not just at rest.
      if (s.submitted != s.completed + s.in_flight) violations.fetch_add(1);
      if (s.in_flight < 0 || s.completed < 0) violations.fetch_add(1);
    }
  });

  constexpr int kSubmitters = 4;
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < 25; ++i) {
        auto handle = service->Submit("SELECT * FROM pts SKYLINE OF x MIN");
        if (handle.ok()) handle->future.get();
      }
    });
  }
  for (auto& t : submitters) t.join();
  stop.store(true);
  reader.join();

  EXPECT_EQ(violations.load(), 0);
  const serve::QueryService::Stats s = service->stats();
  EXPECT_EQ(s.submitted, s.completed);
  EXPECT_EQ(s.in_flight, 0);
}

// A queued query whose per-query deadline already passed is shed before
// execution instead of burning a service thread.
TEST(QueryServiceTest, ExpiredDeadlineQueriesAreShedFromQueue) {
  Session session;
  ASSERT_OK(session.SetConf("sparkline.serve.max_concurrent", "1"));
  ASSERT_OK(session.SetConf("sparkline.timeout_ms", "30"));
  ASSERT_OK(session.catalog()->RegisterTable(SmallPoints()));
  serve::QueryService* service = session.service();

  // Park the single service thread until well past the queued query's
  // deadline, using a delay failpoint on the scan of the first query.
  ASSERT_OK(session.SetConf("sparkline.failpoints", "exec.scan=delay:120*1"));
  ASSERT_OK_AND_ASSIGN(serve::QueryHandle slow,
                       service->Submit("SELECT * FROM pts SKYLINE OF x MIN"));
  ASSERT_OK_AND_ASSIGN(
      serve::QueryHandle late,
      service->Submit("SELECT * FROM pts SKYLINE OF y MAX"));

  Result<QueryResult> late_result = late.future.get();
  ASSERT_FALSE(late_result.ok());
  EXPECT_EQ(late_result.status().code(), StatusCode::kTimeout);
  (void)slow.future.get();  // outcome irrelevant; just settle it
  ASSERT_OK(session.SetConf("sparkline.failpoints", ""));

  const serve::QueryService::Stats stats = service->stats();
  EXPECT_EQ(stats.shed, 1);
}

// --- the hammer: concurrent mixed workload vs. the brute-force oracle --------

TEST(ServeHammerTest, ConcurrentMixedWorkloadMatchesOracle) {
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 24;
  constexpr size_t kDims = 3;

  Session session;
  ASSERT_OK(session.SetConf("sparkline.cache.enabled", "true"));
  ASSERT_OK(session.SetConf("sparkline.executors", "2"));
  TablePtr table = datagen::GeneratePoints(
      "pts", 600, kDims, datagen::PointDistribution::kAntiCorrelated,
      /*seed=*/4321, 0.0);
  ASSERT_OK(session.catalog()->RegisterTable(table));

  // The repeatable (cacheable) query set, oracled by brute force.
  struct Query {
    std::string sql;
    std::vector<std::string> expected;
  };
  std::vector<Query> queries;
  for (int variant = 0; variant < 4; ++variant) {
    std::vector<std::string> items;
    std::vector<skyline::BoundDimension> dims;
    for (size_t d = 0; d < kDims; ++d) {
      const bool flip = ((variant >> d) & 1) != 0;
      items.push_back(StrCat("d", d, flip ? " MAX" : " MIN"));
      dims.push_back(skyline::BoundDimension{
          d + 1, flip ? SkylineGoal::kMax : SkylineGoal::kMin});
    }
    Query q;
    q.sql = StrCat("SELECT * FROM pts SKYLINE OF ", JoinStrings(items, ", "));
    q.expected = RowStrings(skyline::BruteForceSkyline(
        table->rows(), dims, skyline::SkylineOptions{}));
    queries.push_back(std::move(q));
  }
  // Per-thread unique filters (never cached twice) against one oracle run
  // of the same shape.
  auto filtered_sql = [](int threshold) {
    return StrCat("SELECT * FROM pts WHERE d0 < ", threshold,
                  " SKYLINE OF d0 MIN, d1 MIN, d2 MIN");
  };

  std::vector<std::thread> threads;
  std::vector<std::string> failures(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kItersPerThread; ++i) {
        const Query& q = queries[(t + i) % queries.size()];
        auto df = session.Sql(q.sql);
        if (!df.ok()) {
          failures[t] = df.status().ToString();
          return;
        }
        auto result = df->Collect();
        if (!result.ok()) {
          failures[t] = result.status().ToString();
          return;
        }
        if (RowStrings(result->rows()) != q.expected) {
          failures[t] = StrCat("result mismatch on ", q.sql);
          return;
        }
        // Interleave an uncached unique-literal query on some iterations.
        if (i % 5 == 0) {
          const int threshold = 500 + t * kItersPerThread + i;
          auto udf = session.Sql(filtered_sql(threshold));
          if (!udf.ok()) {
            failures[t] = udf.status().ToString();
            return;
          }
          auto uresult = udf->Collect();
          if (!uresult.ok()) {
            failures[t] = uresult.status().ToString();
            return;
          }
          if (uresult->metrics.cache_hit) {
            failures[t] = "unique-literal query reported a cache hit";
            return;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], "") << "thread " << t;
  }

  const ResultCache::Stats stats = session.cache()->stats();
  EXPECT_GT(stats.hits, 0);
  EXPECT_GT(stats.misses, 0);
}

}  // namespace
}  // namespace sparkline
