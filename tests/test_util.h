// Shared helpers for the sparkline test suite.
#pragma once

#include <algorithm>
#include <array>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/dataframe.h"
#include "api/session.h"
#include "catalog/table.h"

namespace sparkline {
namespace testing {

/// Renders rows as a sorted multiset of strings, for order-insensitive
/// result comparison.
inline std::vector<std::string> RowStrings(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const auto& r : rows) out.push_back(RowToString(r));
  std::sort(out.begin(), out.end());
  return out;
}

/// Asserts that two row sets are equal as multisets.
#define EXPECT_SAME_ROWS(a, b)                                 \
  EXPECT_EQ(::sparkline::testing::RowStrings(a),               \
            ::sparkline::testing::RowStrings(b))

/// Unwraps a Result<T>, failing the test on error.
#define ASSERT_OK_AND_ASSIGN(lhs, expr)                        \
  auto SL_CONCAT(_r_, __LINE__) = (expr);                      \
  ASSERT_TRUE(SL_CONCAT(_r_, __LINE__).ok())                   \
      << SL_CONCAT(_r_, __LINE__).status().ToString();         \
  lhs = std::move(SL_CONCAT(_r_, __LINE__)).MoveValue();

#define ASSERT_OK(expr)                                        \
  do {                                                         \
    ::sparkline::Status _st = (expr);                          \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                   \
  } while (0)

#define EXPECT_OK(expr)                                        \
  do {                                                         \
    ::sparkline::Status _st = (expr);                          \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                   \
  } while (0)

/// A small 3-column numeric table ("points": id, x, y), optionally with
/// nulls in y.
inline TablePtr MakePointsTable(const std::string& name,
                                std::vector<std::array<double, 3>> rows,
                                bool y_nullable = false,
                                std::vector<size_t> null_y_at = {}) {
  Schema schema({Field{"id", DataType::Int64(), false},
                 Field{"x", DataType::Double(), false},
                 Field{"y", DataType::Double(), y_nullable}});
  auto table = std::make_shared<Table>(name, schema);
  for (size_t i = 0; i < rows.size(); ++i) {
    Row row{Value::Int64(static_cast<int64_t>(rows[i][0])),
            Value::Double(rows[i][1]), Value::Double(rows[i][2])};
    if (std::find(null_y_at.begin(), null_y_at.end(), i) != null_y_at.end()) {
      row[2] = Value::Null(DataType::Double());
    }
    SL_CHECK_OK(table->AppendRow(std::move(row)));
  }
  return table;
}

/// Runs SQL in the session and returns the rows (asserting success).
inline std::vector<Row> Rows(Session* session, const std::string& sql) {
  auto df = session->Sql(sql);
  SL_CHECK(df.ok()) << sql << " -> " << df.status().ToString();
  auto result = df->Collect();
  SL_CHECK(result.ok()) << sql << " -> " << result.status().ToString();
  return result->rows();
}

}  // namespace testing
}  // namespace sparkline
