// Tests for the physical operators and the distributed execution engine:
// partitioning, exchanges, joins, aggregation phases, skyline operators,
// metrics and timeouts.
#include <cmath>

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "exec/planner.h"
#include "sql/parser.h"
#include "test_util.h"

namespace sparkline {
namespace {

using ::sparkline::testing::MakePointsTable;
using ::sparkline::testing::Rows;

class PhysicalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    session_ = std::make_unique<Session>();
    ASSERT_OK(session_->SetConf("sparkline.executors", "3"));
    ASSERT_OK(session_->catalog()->RegisterTable(MakePointsTable(
        "pts",
        {{1, 1, 5}, {2, 2, 4}, {3, 3, 3}, {4, 4, 2}, {5, 5, 1}, {6, 2, 2}})));
    Schema kv({Field{"k", DataType::Int64(), false},
               Field{"v", DataType::Double(), true}});
    auto kvt = std::make_shared<Table>("kv", kv);
    ASSERT_OK(kvt->AppendRow({Value::Int64(1), Value::Double(10)}));
    ASSERT_OK(kvt->AppendRow({Value::Int64(1), Value::Double(20)}));
    ASSERT_OK(kvt->AppendRow({Value::Int64(2), Value::Double(30)}));
    ASSERT_OK(kvt->AppendRow({Value::Int64(3), Value::Null(DataType::Double())}));
    ASSERT_OK(session_->catalog()->RegisterTable(kvt));
  }

  PhysicalPlanPtr Physical(const std::string& sql) {
    auto plan = ParseSql(sql);
    SL_CHECK(plan.ok());
    auto analyzed = session_->Analyze(*plan);
    SL_CHECK(analyzed.ok()) << analyzed.status().ToString();
    auto optimized = session_->Optimize(*analyzed);
    SL_CHECK(optimized.ok());
    auto physical = session_->PlanPhysical(*optimized);
    SL_CHECK(physical.ok()) << physical.status().ToString();
    return *physical;
  }

  QueryMetrics Metrics(const std::string& sql) {
    auto df = session_->Sql(sql);
    SL_CHECK(df.ok()) << df.status().ToString();
    auto r = df->Collect();
    SL_CHECK(r.ok()) << r.status().ToString();
    return r->metrics;
  }

  std::unique_ptr<Session> session_;
};

TEST_F(PhysicalTest, ScanSplitsIntoExecutorPartitions) {
  auto physical = Physical("SELECT id, x, y FROM pts");
  ExecContext ctx(session_->config().cluster);
  auto rel = physical->Execute(&ctx);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->partitions.size(), 3u);
  EXPECT_EQ(rel->TotalRows(), 6u);
}

TEST_F(PhysicalTest, FilterAndProject) {
  auto rows = Rows(session_.get(), "SELECT id * 10 AS i FROM pts WHERE x <= 2");
  ASSERT_EQ(rows.size(), 3u);
}

TEST_F(PhysicalTest, SortOrdersAndNullPlacement) {
  auto rows = Rows(session_.get(), "SELECT v FROM kv ORDER BY v DESC");
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_DOUBLE_EQ(rows[0][0].double_value(), 30);
  EXPECT_TRUE(rows[3][0].is_null());  // DESC defaults to NULLS LAST
  auto rows2 =
      Rows(session_.get(), "SELECT v FROM kv ORDER BY v ASC NULLS FIRST");
  EXPECT_TRUE(rows2[0][0].is_null());
}

TEST_F(PhysicalTest, Limit) {
  auto rows = Rows(session_.get(), "SELECT id FROM pts ORDER BY id LIMIT 2");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0].int64_value(), 1);
}

TEST_F(PhysicalTest, GlobalAggregates) {
  auto rows = Rows(session_.get(),
                   "SELECT count(*), count(v), sum(v), min(v), max(v), avg(v) "
                   "FROM kv");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].int64_value(), 4);
  EXPECT_EQ(rows[0][1].int64_value(), 3);  // count skips NULL
  EXPECT_DOUBLE_EQ(rows[0][2].double_value(), 60);
  EXPECT_DOUBLE_EQ(rows[0][3].double_value(), 10);
  EXPECT_DOUBLE_EQ(rows[0][4].double_value(), 30);
  EXPECT_DOUBLE_EQ(rows[0][5].double_value(), 20);
}

TEST_F(PhysicalTest, GlobalAggregateOnEmptyInput) {
  auto rows = Rows(session_.get(),
                   "SELECT count(*), sum(v) FROM kv WHERE k > 100");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].int64_value(), 0);
  EXPECT_TRUE(rows[0][1].is_null());
}

TEST_F(PhysicalTest, GroupedAggregates) {
  auto rows =
      Rows(session_.get(), "SELECT k, sum(v) FROM kv GROUP BY k ORDER BY k");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_DOUBLE_EQ(rows[0][1].double_value(), 30);  // k=1
  EXPECT_DOUBLE_EQ(rows[1][1].double_value(), 30);  // k=2
  EXPECT_TRUE(rows[2][1].is_null());                // k=3: only NULL input
}

TEST_F(PhysicalTest, CountDistinct) {
  auto rows = Rows(session_.get(), "SELECT count(DISTINCT k) FROM kv");
  EXPECT_EQ(rows[0][0].int64_value(), 3);
}

TEST_F(PhysicalTest, TwoPhaseMatchesSinglePartition) {
  // The same aggregation with 1 executor (single partition, partial==final
  // trivial) and 3 executors (real partial/final merge) must agree.
  auto multi =
      Rows(session_.get(), "SELECT k, avg(v), count(*) FROM kv GROUP BY k");
  ASSERT_OK(session_->SetConf("sparkline.executors", "1"));
  auto single =
      Rows(session_.get(), "SELECT k, avg(v), count(*) FROM kv GROUP BY k");
  EXPECT_SAME_ROWS(multi, single);
}

TEST_F(PhysicalTest, HashJoinInnerAndLeftOuter) {
  auto inner = Rows(session_.get(),
                    "SELECT p.id, kv.v FROM pts p JOIN kv ON p.id = kv.k");
  EXPECT_EQ(inner.size(), 4u);  // ids 1 (x2), 2, 3
  auto left = Rows(
      session_.get(),
      "SELECT p.id, kv.v FROM pts p LEFT OUTER JOIN kv ON p.id = kv.k "
      "ORDER BY p.id");
  EXPECT_EQ(left.size(), 7u);  // 6 pts + one duplicate for id=1
  // ids 4..6 have no partner -> NULL v.
  EXPECT_TRUE(left.back()[1].is_null());
}

TEST_F(PhysicalTest, NullKeysNeverMatch) {
  Schema s({Field{"k", DataType::Int64(), true}});
  auto t = std::make_shared<Table>("nullkeys", s);
  ASSERT_OK(t->AppendRow({Value::Null(DataType::Int64())}));
  ASSERT_OK(t->AppendRow({Value::Int64(1)}));
  ASSERT_OK(session_->catalog()->RegisterTable(t));
  auto rows = Rows(session_.get(),
                   "SELECT a.k FROM nullkeys a JOIN nullkeys b ON a.k = b.k");
  EXPECT_EQ(rows.size(), 1u);
}

TEST_F(PhysicalTest, NestedLoopSemiAndAntiJoin) {
  auto semi = Rows(session_.get(),
                   "SELECT id FROM pts o WHERE EXISTS("
                   "SELECT * FROM pts i WHERE i.x < o.x)");
  EXPECT_EQ(semi.size(), 5u);  // all but the x-minimum
  auto anti = Rows(session_.get(),
                   "SELECT id FROM pts o WHERE NOT EXISTS("
                   "SELECT * FROM pts i WHERE i.x < o.x)");
  EXPECT_EQ(anti.size(), 1u);
  EXPECT_EQ(anti[0][0].int64_value(), 1);
}

TEST_F(PhysicalTest, CrossJoinCounts) {
  auto rows = Rows(session_.get(),
                   "SELECT p.id FROM pts p CROSS JOIN kv");
  EXPECT_EQ(rows.size(), 24u);  // 6 * 4
}

TEST_F(PhysicalTest, SkylinePhysicalPlanShape) {
  auto physical = Physical(
      "SELECT x, y FROM pts SKYLINE OF x MIN, y MIN");
  const std::string tree = physical->TreeString();
  EXPECT_NE(tree.find("LocalSkyline"), std::string::npos);
  EXPECT_NE(tree.find("GlobalSkyline [complete]"), std::string::npos);
  EXPECT_NE(tree.find("Exchange [AllTuples]"), std::string::npos);
}

TEST_F(PhysicalTest, SkylineStrategiesAgreeOnCompleteData) {
  const std::string q = "SELECT x, y FROM pts SKYLINE OF x MIN, y MIN";
  auto auto_rows = Rows(session_.get(), q);
  for (const char* strategy : {"distributed", "non_distributed", "incomplete",
                               "reference"}) {
    ASSERT_OK(session_->SetConf("sparkline.skyline.strategy", strategy));
    auto rows = Rows(session_.get(), q);
    EXPECT_SAME_ROWS(auto_rows, rows) << "strategy " << strategy;
  }
  ASSERT_OK(session_->SetConf("sparkline.skyline.strategy", "auto"));
  // {1,5},{2,4},{3,3},{4,2},{5,1},{2,2}: (2,2) dominates (2,4), (3,3) and
  // (4,2), leaving {(1,5), (2,2), (5,1)}.
  EXPECT_EQ(auto_rows.size(), 3u);
}

TEST_F(PhysicalTest, IncompleteStrategySelectedForNullableDims) {
  auto physical = Physical("SELECT k, v FROM kv SKYLINE OF v MIN, k MIN");
  const std::string tree = physical->TreeString();
  EXPECT_NE(tree.find("GlobalSkyline [incomplete]"), std::string::npos);
  EXPECT_NE(tree.find("Exchange [NullBitmapHash]"), std::string::npos);
}

TEST_F(PhysicalTest, CompleteKeywordForcesCompleteAlgorithm) {
  auto physical =
      Physical("SELECT k, v FROM kv SKYLINE OF COMPLETE v MIN, k MIN");
  EXPECT_NE(physical->TreeString().find("GlobalSkyline [complete]"),
            std::string::npos);
}

TEST_F(PhysicalTest, SkylineOverComputedDimension) {
  auto rows = Rows(session_.get(),
                   "SELECT id, x, y FROM pts SKYLINE OF x + y MIN");
  // x+y minimum is 4 (2,2).
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].int64_value(), 6);
}

TEST_F(PhysicalTest, MetricsPopulated) {
  auto m = Metrics("SELECT x, y FROM pts SKYLINE OF x MIN, y MIN");
  EXPECT_GT(m.wall_ms, 0.0);
  EXPECT_GT(m.simulated_ms, 0.0);
  EXPECT_GT(m.dominance_tests, 0);
  EXPECT_GT(m.peak_memory_bytes,
            3 * session_->config().cluster.executor_overhead_bytes - 1);
  EXPECT_FALSE(m.operator_ms.empty());
}

TEST_F(PhysicalTest, RowsShuffledCountsExchanges) {
  auto m = Metrics("SELECT x FROM pts ORDER BY x");
  EXPECT_EQ(m.rows_shuffled, 6);
}

TEST_F(PhysicalTest, TimeoutProducesTimeoutStatus) {
  // A cross-join explosion with a 1 ms budget must time out, not hang.
  ASSERT_OK(session_->SetConf("sparkline.timeout_ms", "1"));
  auto big = datagen::GeneratePoints("big", 20000, 2,
                                     datagen::PointDistribution::kIndependent,
                                     5);
  ASSERT_OK(session_->catalog()->RegisterTable(big));
  auto df = session_->Sql(
      "SELECT count(*) FROM big a CROSS JOIN big b WHERE a.d0 < b.d0");
  ASSERT_TRUE(df.ok());
  auto r = df->Collect();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsTimeout());
  ASSERT_OK(session_->SetConf("sparkline.timeout_ms", "0"));
}

TEST_F(PhysicalTest, ExecutorCountChangesPartitioning) {
  ASSERT_OK(session_->SetConf("sparkline.executors", "5"));
  auto physical = Physical("SELECT id FROM pts");
  ExecContext ctx(session_->config().cluster);
  auto rel = physical->Execute(&ctx);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->partitions.size(), 5u);
}

TEST_F(PhysicalTest, ScalarSubqueryExecution) {
  auto rows = Rows(session_.get(),
                   "SELECT id FROM pts WHERE x = (SELECT min(x) FROM pts)");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].int64_value(), 1);
}

TEST_F(PhysicalTest, EmptyScalarSubqueryYieldsNull) {
  auto rows = Rows(session_.get(),
                   "SELECT id FROM pts WHERE x = "
                   "(SELECT min(x) FROM pts WHERE x > 100)");
  EXPECT_TRUE(rows.empty());  // NULL comparison filters everything
}

// --- angle partitioning: normalized-key regression ----------------------------

// Rays from the origin: every ray holds a dominance chain (its innermost
// point dominates the rest), so a direction-aware partitioning puts whole
// chains together and local skylines collapse to one point per ray. The
// dimensions are phrased as mixed-scale MAX goals (value = C - coordinate,
// dim 1 scaled by 1000): the pre-fix assignment bucketed raw |value|+1
// magnitudes, so the scaled dimension swamped the angle and every row
// landed in the last bucket.
std::vector<Row> RayRows(size_t rays, size_t per_ray) {
  std::vector<Row> rows;
  constexpr double kPi = 3.141592653589793;
  for (size_t ray = 0; ray < rays; ++ray) {
    const double theta =
        (static_cast<double>(ray) + 0.5) / static_cast<double>(rays) * kPi / 2;
    for (size_t k = 1; k <= per_ray; ++k) {
      const double r = static_cast<double>(k);
      const double x = r * std::cos(theta);
      const double y = r * std::sin(theta);
      // MAX goals: larger stored value = better = smaller underlying
      // coordinate. Dimension 1 uses a 1000x scale.
      rows.push_back(Row{Value::Double(100.0 - x),
                         Value::Double(1000.0 * (100.0 - y))});
    }
  }
  return rows;
}

TEST(AnglePartitionTest, NormalizedKeysSpreadMaxGoalMixedScaleData) {
  const std::vector<Row> rows = RayRows(16, 8);
  const std::vector<skyline::BoundDimension> dims{{0, SkylineGoal::kMax},
                                                  {1, SkylineGoal::kMax}};
  const size_t n = 4;
  const auto bounds = exchange_internal::ComputeAngleBounds({rows}, dims);

  std::vector<std::vector<Row>> angle_parts(n), round_robin(n);
  for (size_t i = 0; i < rows.size(); ++i) {
    const size_t bucket =
        exchange_internal::AnglePartition(rows[i], dims, n, bounds);
    ASSERT_LT(bucket, n);
    angle_parts[bucket].push_back(rows[i]);
    round_robin[i % n].push_back(rows[i]);
  }

  // The pre-fix magnitudes collapsed MAX-goal/mixed-scale data into one
  // bucket; normalized keys must spread it.
  size_t non_empty = 0;
  for (const auto& p : angle_parts) non_empty += p.empty() ? 0 : 1;
  EXPECT_EQ(non_empty, n) << "angle buckets degenerate despite spread data";

  // Pruning power: direction-aligned partitions keep whole dominance
  // chains together, so the shuffled survivor count (the global stage's
  // input) must be strictly smaller than under direction-blind round-robin.
  auto local_survivors = [&](const std::vector<std::vector<Row>>& parts) {
    size_t total = 0;
    for (const auto& part : parts) {
      auto local = skyline::BlockNestedLoop(part, dims, {});
      SL_CHECK(local.ok());
      total += local->size();
    }
    return total;
  };
  const size_t angle_total = local_survivors(angle_parts);
  const size_t rr_total = local_survivors(round_robin);
  EXPECT_EQ(angle_total, 16u)
      << "each ray's chain must collapse to its innermost point";
  EXPECT_LT(angle_total, rr_total);
}

}  // namespace
}  // namespace sparkline
