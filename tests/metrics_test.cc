// Observability tests: the process-wide metrics registry (concurrency,
// histogram percentiles against a sorted-vector oracle, Prometheus text
// exposition), per-query trace spans for a distributed skyline plan, the
// cache/maintenance counter reconciliation against per-query metrics, the
// slow-query counter, and the pinned QueryMetrics::ToString format.
//
// The registry is process-wide, so every assertion on registry counters
// works with before/after deltas, never absolute values.
#include <algorithm>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "datagen/datagen.h"
#include "exec/trace.h"
#include "test_util.h"

namespace sparkline {
namespace {

using metrics::Counter;
using metrics::Gauge;
using metrics::Histogram;
using metrics::MetricsRegistry;
using ::sparkline::testing::MakePointsTable;

TablePtr SmallPoints(const std::string& name = "pts") {
  return MakePointsTable(name, {{1, 1.0, 9.0},
                                {2, 2.0, 8.0},
                                {3, 3.0, 7.0},
                                {4, 4.0, 6.0},
                                {5, 2.5, 9.5},
                                {6, 0.5, 10.0}});
}

// --- registry ----------------------------------------------------------------

TEST(MetricsRegistryTest, SameNameAndLabelsReturnsSamePointer) {
  auto& reg = MetricsRegistry::Global();
  Counter* a = reg.GetCounter("testreg_stable_total", {{"k", "v"}});
  Counter* b = reg.GetCounter("testreg_stable_total", {{"k", "v"}});
  EXPECT_EQ(a, b);
  // Different labels, different series.
  Counter* c = reg.GetCounter("testreg_stable_total", {{"k", "w"}});
  EXPECT_NE(a, c);
  // Label order must not matter (labels are sorted when rendered).
  Counter* d = reg.GetCounter("testreg_multi_total",
                              {{"a", "1"}, {"b", "2"}});
  Counter* e = reg.GetCounter("testreg_multi_total",
                              {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(d, e);
}

TEST(MetricsRegistryTest, ConcurrentHammerIsConsistent) {
  auto& reg = MetricsRegistry::Global();
  Counter* counter = reg.GetCounter("testhammer_total");
  Gauge* gauge = reg.GetGauge("testhammer_inflight");
  Histogram* hist = reg.GetHistogram("testhammer_us");
  const int64_t counter0 = counter->value();
  const int64_t gauge0 = gauge->value();
  const int64_t count0 = hist->count();
  const int64_t sum0 = hist->sum();

  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  int64_t per_thread_sum = 0;
  for (int i = 0; i < kIters; ++i) per_thread_sum += i % 1000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t]() {
      // Half the increments go through a freshly resolved pointer to hammer
      // the registry map concurrently with the atomic hot path; periodic
      // scrapes race the recording threads on purpose.
      Counter* local = reg.GetCounter("testhammer_total");
      Gauge* g = reg.GetGauge("testhammer_inflight");
      Histogram* h = reg.GetHistogram("testhammer_us");
      for (int i = 0; i < kIters; ++i) {
        local->Increment();
        reg.GetCounter("testhammer_total")->Increment();
        g->Add();
        g->Sub();
        h->Observe(i % 1000);
        if (i % 5000 == (t * 631) % 5000) {
          (void)reg.TextExposition();
          (void)reg.JsonSnapshot();
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(counter->value() - counter0, 2ll * kThreads * kIters);
  EXPECT_EQ(gauge->value() - gauge0, 0);
  EXPECT_EQ(hist->count() - count0, static_cast<int64_t>(kThreads) * kIters);
  EXPECT_EQ(hist->sum() - sum0, kThreads * per_thread_sum);
}

// --- histogram ---------------------------------------------------------------

TEST(HistogramTest, BucketBoundsContainTheirValues) {
  // BucketUpperBound(BucketIndex(v)) >= v, with <= 25% relative slack.
  std::vector<int64_t> probes = {0,  1,   2,    3,    4,      5,     7,
                                 8,  100, 1000, 4095, 123456, 1 << 20,
                                 (1ll << 40) + 17};
  for (int64_t v : probes) {
    const int idx = Histogram::BucketIndex(v);
    ASSERT_GE(idx, 0) << v;
    ASSERT_LT(idx, Histogram::kNumBuckets) << v;
    const int64_t ub = Histogram::BucketUpperBound(idx);
    EXPECT_GE(ub, v) << v;
    EXPECT_LE(ub, v + v / 4 + 1) << v;
    if (idx > 0) EXPECT_LT(Histogram::BucketUpperBound(idx - 1), v) << v;
  }
  // The extremes: INT64_MAX lands in the last bucket, rendered +Inf.
  const int last = Histogram::BucketIndex(std::numeric_limits<int64_t>::max());
  EXPECT_EQ(last, Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::BucketUpperBound(last),
            std::numeric_limits<int64_t>::max());
  EXPECT_EQ(Histogram::BucketIndex(-5), 0);
}

TEST(HistogramTest, PercentileMatchesSortedVectorOracle) {
  Histogram hist;
  std::vector<int64_t> values;
  std::mt19937_64 rng(42);
  // Log-uniform spread: latencies span many octaves, like real queue waits.
  for (int i = 0; i < 5000; ++i) {
    const int shift = static_cast<int>(rng() % 28);
    const int64_t v = static_cast<int64_t>(rng() % (1ull << shift));
    values.push_back(v);
    hist.Observe(v);
  }
  std::sort(values.begin(), values.end());
  const Histogram::Snapshot snap = hist.snapshot();
  ASSERT_EQ(snap.count, static_cast<int64_t>(values.size()));

  for (double q : {0.0, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0}) {
    // The same rank Percentile targets: 1-based, truncated, clamped.
    int64_t rank = static_cast<int64_t>(q * static_cast<double>(snap.count));
    rank = std::max<int64_t>(1, std::min<int64_t>(rank, snap.count));
    const int64_t oracle = values[static_cast<size_t>(rank - 1)];
    const int64_t got = snap.Percentile(q);
    EXPECT_GE(got, oracle) << "q=" << q;
    EXPECT_LE(got, oracle + oracle / 4 + 1) << "q=" << q;
  }
  EXPECT_EQ(Histogram().snapshot().Percentile(0.5), 0);  // empty -> 0
}

// --- exposition --------------------------------------------------------------

TEST(ExpositionTest, PrometheusTextFormat) {
  auto& reg = MetricsRegistry::Global();
  reg.GetCounter("testexpo_requests_total", {{"code", "200"}})->Increment(3);
  reg.GetCounter("testexpo_requests_total", {{"code", "500"}})->Increment();
  reg.GetGauge("testexpo_in_flight")->Set(2);
  Histogram* hist = reg.GetHistogram("testexpo_latency_us");
  hist->Observe(1);
  hist->Observe(2);
  hist->Observe(2);
  hist->Observe(1000000);

  const std::string text = reg.TextExposition();
  auto has = [&](const std::string& line) {
    EXPECT_NE(text.find(line), std::string::npos) << "missing: " << line
                                                  << "\nin:\n" << text;
  };
  has("# TYPE testexpo_requests_total counter\n");
  has("testexpo_requests_total{code=\"200\"} 3\n");
  has("testexpo_requests_total{code=\"500\"} 1\n");
  has("# TYPE testexpo_in_flight gauge\n");
  has("testexpo_in_flight 2\n");
  has("# TYPE testexpo_latency_us histogram\n");
  // Cumulative buckets: le="1" holds 1 observation, le="2" holds 3;
  // 1000000 lands in the [917504, 1048575] log bucket.
  has("testexpo_latency_us_bucket{le=\"1\"} 1\n");
  has("testexpo_latency_us_bucket{le=\"2\"} 3\n");
  has("testexpo_latency_us_bucket{le=\"1048575\"} 4\n");
  has("testexpo_latency_us_bucket{le=\"+Inf\"} 4\n");
  has("testexpo_latency_us_sum 1000005\n");
  has("testexpo_latency_us_count 4\n");

  // One # TYPE line per metric name, not per labeled series.
  size_t type_lines = 0;
  for (size_t pos = text.find("# TYPE testexpo_requests_total");
       pos != std::string::npos;
       pos = text.find("# TYPE testexpo_requests_total", pos + 1)) {
    ++type_lines;
  }
  EXPECT_EQ(type_lines, 1u);
}

// --- trace spans -------------------------------------------------------------

TEST(TraceTest, DistributedSkylineSpanTreeShape) {
  Session session;
  ASSERT_OK(session.SetConf("sparkline.executors", "4"));
  ASSERT_OK(session.SetConf("sparkline.skyline.strategy", "distributed"));
  TablePtr table = datagen::GeneratePoints(
      "tracepts", 400, 3, datagen::PointDistribution::kIndependent, 7);
  ASSERT_OK(session.catalog()->RegisterTable(table));

  auto df = session.Sql(
      "SELECT id, d0, d1, d2 FROM tracepts SKYLINE OF d0 MIN, d1 MIN, d2 MIN");
  ASSERT_TRUE(df.ok()) << df.status().ToString();
  auto result = df->Collect();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  ASSERT_NE(result->trace, nullptr);
  const TraceSpan& root = *result->trace;
  EXPECT_EQ(root.kind, "query");
  EXPECT_GE(root.dur_ms, 0.0);
  // Root carries the query-level totals.
  bool saw_dominance = false;
  for (const auto& [key, value] : root.attrs) {
    if (key == "dominance_tests") saw_dominance = true;
  }
  EXPECT_TRUE(saw_dominance);

  const auto stages = root.ChildrenOfKind("stage");
  ASSERT_GE(stages.size(), 3u);  // scan, local skyline, exchange, global
  bool saw_local = false;
  bool saw_global = false;
  for (const TraceSpan* stage : stages) {
    const auto tasks = stage->ChildrenOfKind("task");
    EXPECT_FALSE(tasks.empty()) << stage->name;
    for (const TraceSpan* task : tasks) {
      EXPECT_GE(task->tid, 0);
      EXPECT_LT(task->tid, 4);
    }
    if (stage->name.find("LocalSkyline") != std::string::npos) {
      saw_local = true;
      EXPECT_EQ(tasks.size(), 4u);  // one task span per partition
    }
    if (stage->name.find("GlobalSkyline") != std::string::npos) {
      saw_global = true;
    }
  }
  EXPECT_TRUE(saw_local);
  EXPECT_TRUE(saw_global);

  const std::string json = result->TraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"task\""), std::string::npos);
}

TEST(TraceTest, DisabledTraceCostsNothingAndYieldsNull) {
  Session session;
  ASSERT_OK(session.SetConf("sparkline.trace.enabled", "false"));
  ASSERT_OK(session.catalog()->RegisterTable(SmallPoints()));
  auto df = session.Sql("SELECT id, x, y FROM pts SKYLINE OF x MIN, y MAX");
  ASSERT_TRUE(df.ok()) << df.status().ToString();
  auto result = df->Collect();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->trace, nullptr);
  EXPECT_EQ(result->TraceJson(), "");
}

// --- reconciliation ----------------------------------------------------------

TEST(MetricsReconcileTest, CacheCountersReconcileWithQueryMetrics) {
  auto& reg = MetricsRegistry::Global();
  Counter* hits = reg.GetCounter("sparkline_cache_hits_total");
  Counter* misses = reg.GetCounter("sparkline_cache_misses_total");
  Counter* maintained =
      reg.GetCounter("sparkline_incremental_maintained_total");
  const int64_t hits0 = hits->value();
  const int64_t misses0 = misses->value();
  const int64_t maintained0 = maintained->value();

  Session session;
  ASSERT_OK(session.SetConf("sparkline.cache.enabled", "true"));
  ASSERT_OK(session.SetConf("sparkline.cache.incremental", "true"));
  ASSERT_OK(session.catalog()->RegisterTable(SmallPoints()));
  const std::string q = "SELECT id, x, y FROM pts SKYLINE OF x MIN, y MAX";

  int64_t seen_hits = 0;
  int64_t seen_misses = 0;
  auto run = [&]() {
    auto df = session.Sql(q);
    SL_CHECK(df.ok()) << df.status().ToString();
    auto result = df->Collect();
    SL_CHECK(result.ok()) << result.status().ToString();
    (result->metrics.cache_hit ? seen_hits : seen_misses) += 1;
    return result->metrics;
  };

  run();  // cold: miss + insert
  run();  // hit
  constexpr int kWrites = 3;
  for (int i = 0; i < kWrites; ++i) {
    // Strictly dominated inserts (x worse, y worse): delta-maintained
    // without touching the skyline, never an unsound classification.
    ASSERT_OK(session.catalog()->InsertInto(
        "pts", {{Value::Int64(100 + i), Value::Double(60.0 + i),
                 Value::Double(1.0)}}));
  }
  session.catalog()->DrainWrites();
  const QueryMetrics last = run();  // hit on the delta-advanced entry

  EXPECT_TRUE(last.cache_hit);
  EXPECT_EQ(last.cache_delta_maintained, kWrites);
  EXPECT_EQ(hits->value() - hits0, seen_hits);
  EXPECT_EQ(misses->value() - misses0, seen_misses);
  EXPECT_EQ(maintained->value() - maintained0, kWrites);
  EXPECT_EQ(seen_hits, 2);
  EXPECT_EQ(seen_misses, 1);
}

TEST(MetricsReconcileTest, StageHistogramAndTaskCountersAdvance) {
  auto& reg = MetricsRegistry::Global();
  Histogram* scan_us = reg.GetHistogram("sparkline_stage_us",
                                        {{"stage", "Scan pts2 [3 columns]"}});
  const int64_t scans0 = scan_us->count();

  Session session;
  ASSERT_OK(session.catalog()->RegisterTable(SmallPoints("pts2")));
  auto df = session.Sql("SELECT id, x, y FROM pts2 SKYLINE OF x MIN, y MAX");
  ASSERT_TRUE(df.ok()) << df.status().ToString();
  auto result = df->Collect();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(scan_us->count() - scans0, 1);
}

// --- slow-query log ----------------------------------------------------------

TEST(SlowQueryTest, ThresholdGatesTheCounter) {
  auto& reg = MetricsRegistry::Global();
  Counter* slow = reg.GetCounter("sparkline_slow_queries_total");

  Session session;
  ASSERT_OK(session.catalog()->RegisterTable(SmallPoints("slowpts")));
  const std::string q =
      "SELECT id, x, y FROM slowpts SKYLINE OF x MIN, y MAX";

  // Threshold far above any conceivable wall time: nothing is logged.
  ASSERT_OK(session.SetConf("sparkline.log.slow_query_ms", "3600000"));
  const int64_t slow0 = slow->value();
  (void)testing::Rows(&session, q);
  EXPECT_EQ(slow->value() - slow0, 0);

  // Threshold 0 with the feature "on" is off by definition.
  ASSERT_OK(session.SetConf("sparkline.log.slow_query_ms", "0"));
  (void)testing::Rows(&session, q);
  EXPECT_EQ(slow->value() - slow0, 0);

  // A 1 ms threshold: every real execution takes at least some wall time,
  // so force it with a generous per-row workload to stay deterministic.
  ASSERT_OK(session.SetConf("sparkline.log.slow_query_ms", "1"));
  TablePtr big = datagen::GeneratePoints(
      "slowbig", 4000, 4, datagen::PointDistribution::kAntiCorrelated, 9);
  ASSERT_OK(session.catalog()->RegisterTable(big));
  const int64_t slow1 = slow->value();
  (void)testing::Rows(
      &session,
      "SELECT id FROM slowbig SKYLINE OF d0 MIN, d1 MIN, d2 MIN, d3 MIN");
  EXPECT_GE(slow->value() - slow1, 1);
  EXPECT_EQ(reg.GetCounter("sparkline_slow_queries_total"), slow);

  ASSERT_FALSE(session.SetConf("sparkline.log.slow_query_ms", "-1").ok());
}

// --- QueryMetrics::ToString --------------------------------------------------

TEST(QueryMetricsTest, ToStringPinsFormatAndPrintsEveryField) {
  QueryMetrics m;
  m.wall_ms = 1.5;
  m.simulated_ms = 0.75;
  m.peak_memory_bytes = 3ll << 20;
  m.dominance_tests = 42;
  m.merge_dominance_tests = 17;
  m.rows_shuffled = 7;
  m.exchange_rows_shipped = 11;
  m.exchange_bytes = 2048;
  m.tasks_retried = 1;
  m.tasks_failed = 2;
  m.cache_hit = true;
  m.cache_lookup_ms = 0.25;
  m.cache_delta_maintained = 5;
  m.projection_ms = 0.5;
  m.decode_ms = 0.125;
  m.matrix_builds["a"] = 2;
  m.matrix_builds["b"] = 1;
  m.matrix_reuses["c"] = 4;
  m.sfs_rows_skipped = 9;
  m.sfs_early_stops = 3;
  m.broadcast_filter_points = 8;
  m.partitions_skipped = 2;
  m.rows_pruned_pre_gather = 13;
  m.rows_served = 6;
  m.bytes_served = 1234;
  EXPECT_EQ(m.ToString(),
            "wall=1.5ms simulated=0.75ms peak_mem=3MB dominance_tests=42 "
            "merge_dom_tests=17 "
            "rows_shuffled=7 exchange_rows=11 exchange_bytes=2048 "
            "tasks_retried=1 tasks_failed=2 cache=hit "
            "cache_lookup=0.25ms cache_deltas=5 projection=0.5ms "
            "decode=0.125ms matrix_builds=3 matrix_reuses=4 sfs_skipped=9 "
            "sfs_stops=3 bcast_points=8 parts_skipped=2 pruned_pre_gather=13 "
            "rows_served=6 bytes_served=1234");

  // Zero metrics still print every field (no conditional sections).
  EXPECT_EQ(QueryMetrics{}.ToString(),
            "wall=0ms simulated=0ms peak_mem=0MB dominance_tests=0 "
            "merge_dom_tests=0 "
            "rows_shuffled=0 exchange_rows=0 exchange_bytes=0 "
            "tasks_retried=0 tasks_failed=0 cache=miss "
            "cache_lookup=0ms cache_deltas=0 projection=0ms decode=0ms "
            "matrix_builds=0 matrix_reuses=0 sfs_skipped=0 sfs_stops=0 "
            "bcast_points=0 parts_skipped=0 pruned_pre_gather=0 "
            "rows_served=0 bytes_served=0");
}

}  // namespace
}  // namespace sparkline
