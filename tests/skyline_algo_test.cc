// Tests for the skyline algorithm library, including property sweeps against
// the brute-force oracle and the executable Appendix-A counterexample.
#include <optional>
#include <tuple>

#include <gtest/gtest.h>

#include "common/cancellation.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "skyline/algorithms.h"

namespace sparkline {
namespace skyline {
namespace {

Row R(std::vector<double> vals) {
  Row row;
  for (double v : vals) row.push_back(Value::Double(v));
  return row;
}

Row RN(std::vector<std::optional<double>> vals) {
  Row row;
  for (const auto& v : vals) {
    row.push_back(v.has_value() ? Value::Double(*v)
                                : Value::Null(DataType::Double()));
  }
  return row;
}

std::vector<BoundDimension> MinDims(size_t n) {
  std::vector<BoundDimension> dims;
  for (size_t i = 0; i < n; ++i) dims.push_back({i, SkylineGoal::kMin});
  return dims;
}

std::vector<std::string> Sorted(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  for (const auto& r : rows) out.push_back(RowToString(r));
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Row> RandomRows(size_t n, size_t dims, double null_rate,
                            int cardinality, uint64_t seed) {
  Rng rng(seed);
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Row row;
    for (size_t d = 0; d < dims; ++d) {
      if (null_rate > 0 && rng.Bernoulli(null_rate)) {
        row.push_back(Value::Null(DataType::Double()));
      } else {
        row.push_back(
            Value::Double(static_cast<double>(rng.UniformInt(0, cardinality))));
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

TEST(BnlTest, EmptyInput) {
  auto result = BlockNestedLoop({}, MinDims(2), {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(BnlTest, SingleTupleIsItsOwnSkyline) {
  auto result = BlockNestedLoop({R({1, 2})}, MinDims(2), {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);
}

TEST(BnlTest, DominatedTupleRemoved) {
  auto result = BlockNestedLoop({R({2, 2}), R({1, 1}), R({3, 0})},
                                MinDims(2), {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Sorted(*result), Sorted({R({1, 1}), R({3, 0})}));
}

TEST(BnlTest, DuplicatesKeptWithoutDistinct) {
  auto result = BlockNestedLoop({R({1, 1}), R({1, 1})}, MinDims(2), {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);
}

TEST(BnlTest, DuplicatesCollapsedWithDistinct) {
  SkylineOptions opts;
  opts.distinct = true;
  auto result = BlockNestedLoop({R({1, 1}), R({1, 1})}, MinDims(2), opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);
}

TEST(BnlTest, CountsDominanceTests) {
  DominanceCounter counter;
  SkylineOptions opts;
  opts.counter = &counter;
  auto result =
      BlockNestedLoop({R({1, 1}), R({2, 2}), R({3, 3})}, MinDims(2), opts);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(counter.tests.load(), 0);
}

TEST(BnlTest, DeadlineProducesTimeout) {
  auto rows = RandomRows(20000, 4, 0, 1000000, 3);
  SkylineOptions opts;
  opts.deadline_nanos = StopWatch::NowNanos();  // already expired
  auto result = BlockNestedLoop(rows, MinDims(4), opts);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsTimeout());
}

// Every row kernel polls the cancellation token at the DeadlineChecker
// cadence; with a pre-cancelled token each must return Status::Cancelled
// (never a crash, a hang, or a partial result passed off as complete).
TEST(CancellationTest, EveryRowKernelHonorsCancelledToken) {
  const std::vector<Row> rows = RandomRows(20000, 4, 0, 1000000, 17);
  const std::vector<BoundDimension> dims = MinDims(4);
  CancellationToken token;
  token.Cancel();

  auto expect_cancelled = [](const Status& s, const std::string& kernel) {
    EXPECT_EQ(s.code(), StatusCode::kCancelled) << kernel << ": "
                                                << s.ToString();
  };

  SkylineOptions opts;
  opts.cancel = &token;
  expect_cancelled(BlockNestedLoop(rows, dims, opts).status(), "bnl");
  expect_cancelled(GridFilterSkyline(rows, dims, opts).status(), "grid");
  for (const SfsSortKey key : {SfsSortKey::kSum, SfsSortKey::kMinMax}) {
    for (const bool early_stop : {false, true}) {
      SkylineOptions sfs = opts;
      sfs.sfs_sort_key = key;
      sfs.sfs_early_stop = early_stop;
      expect_cancelled(
          SortFilterSkyline(rows, dims, sfs).status(),
          StrCat("sfs key=", static_cast<int>(key), " stop=", early_stop));
    }
  }

  // Incomplete-data kernels (the quadratic scans are the ones that need
  // interruption most).
  const std::vector<Row> sparse = RandomRows(4000, 3, 0.3, 50, 21);
  SkylineOptions iopts;
  iopts.nulls = NullSemantics::kIncomplete;
  iopts.cancel = &token;
  expect_cancelled(AllPairsIncomplete(sparse, MinDims(3), iopts).status(),
                   "all_pairs");
  expect_cancelled(
      IncompleteCandidateScan(sparse, 0, sparse.size(), MinDims(3), iopts)
          .status(),
      "candidate_scan");
  SkylineOptions vopts = iopts;
  vopts.cancel = nullptr;
  auto candidates =
      IncompleteCandidateScan(sparse, 0, sparse.size() / 2, MinDims(3), vopts);
  ASSERT_TRUE(candidates.ok());
  expect_cancelled(ValidateAgainstChunk(sparse, *candidates, sparse.size() / 2,
                                        sparse.size(), MinDims(3), iopts)
                       .status(),
                   "validate");
}

TEST(AllPairsTest, MatchesOracleOnCyclicData) {
  // The paper's 3-tuple cycle: correct skyline is empty.
  std::vector<Row> rows = {RN({1, std::nullopt, 10}), RN({3, 2, std::nullopt}),
                           RN({std::nullopt, 5, 3})};
  SkylineOptions opts;
  opts.nulls = NullSemantics::kIncomplete;
  auto result = AllPairsIncomplete(rows, MinDims(3), opts);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(FlawedGulzarTest, AppendixACounterexample) {
  // The eager-deletion algorithm of [20] returns {c} where the correct
  // answer is the empty skyline (paper Appendix A).
  std::vector<Row> rows = {RN({1, std::nullopt, 10}), RN({3, 2, std::nullopt}),
                           RN({std::nullopt, 5, 3})};
  auto flawed = FlawedGulzarGlobal(rows, MinDims(3));
  EXPECT_EQ(flawed.size(), 1u);  // the bug: one tuple survives

  SkylineOptions opts;
  opts.nulls = NullSemantics::kIncomplete;
  auto correct = AllPairsIncomplete(rows, MinDims(3), opts);
  ASSERT_TRUE(correct.ok());
  EXPECT_TRUE(correct->empty());
}

TEST(PartitionTest, GroupsByNullBitmap) {
  std::vector<Row> rows = {RN({1, 2}), RN({std::nullopt, 2}), RN({3, 4}),
                           RN({std::nullopt, 7})};
  auto parts = PartitionByNullBitmap(rows, MinDims(2));
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].size() + parts[1].size(), 4u);
  for (const auto& part : parts) {
    const uint32_t bitmap = NullBitmap(part[0], MinDims(2));
    for (const auto& r : part) {
      EXPECT_EQ(NullBitmap(r, MinDims(2)), bitmap);
    }
  }
}

TEST(Lemma51Test, LocalSkylineUnionPreservesGlobalSkyline) {
  // Paper Lemma 5.1: for every tuple not in the global skyline, either it is
  // gone from the union of local skylines or some local-skyline tuple still
  // dominates it. Equivalently: the global skyline of the local-union equals
  // the global skyline of the full input.
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    auto rows = RandomRows(400, 3, 0.3, 6, seed);
    auto dims = MinDims(3);
    SkylineOptions opts;
    opts.nulls = NullSemantics::kIncomplete;

    std::vector<Row> local_union;
    for (const auto& part : PartitionByNullBitmap(rows, dims)) {
      auto local = BlockNestedLoop(part, dims, opts);
      ASSERT_TRUE(local.ok());
      local_union.insert(local_union.end(), local->begin(), local->end());
    }
    auto from_union = AllPairsIncomplete(local_union, dims, opts);
    ASSERT_TRUE(from_union.ok());
    auto oracle = BruteForceSkyline(rows, dims, opts);
    EXPECT_EQ(Sorted(*from_union), Sorted(oracle)) << "seed " << seed;
  }
}

TEST(SfsTest, MatchesBnlOnCompleteData) {
  for (uint64_t seed : {10u, 11u, 12u}) {
    auto rows = RandomRows(500, 3, 0, 50, seed);
    auto bnl = BlockNestedLoop(rows, MinDims(3), {});
    auto sfs = SortFilterSkyline(rows, MinDims(3), {});
    ASSERT_TRUE(bnl.ok());
    ASSERT_TRUE(sfs.ok());
    EXPECT_EQ(Sorted(*bnl), Sorted(*sfs));
  }
}

TEST(ComputeSkylineTest, CompleteDelegatesToBnl) {
  auto rows = RandomRows(200, 2, 0, 20, 77);
  auto a = ComputeSkyline(rows, MinDims(2), {});
  auto b = BlockNestedLoop(rows, MinDims(2), {});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(Sorted(*a), Sorted(*b));
}

TEST(ComputeSkylineTest, IncompleteMatchesOracle) {
  SkylineOptions opts;
  opts.nulls = NullSemantics::kIncomplete;
  auto rows = RandomRows(300, 3, 0.25, 5, 31);
  auto got = ComputeSkyline(rows, MinDims(3), opts);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(Sorted(*got), Sorted(BruteForceSkyline(rows, MinDims(3), opts)));
}

// --- property sweeps vs. the brute-force oracle -------------------------------

struct SweepParam {
  size_t n;
  size_t dims;
  double null_rate;
  int cardinality;
  uint64_t seed;
};

class SkylineSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SkylineSweep, BnlMatchesOracleOnCompleteData) {
  const auto& p = GetParam();
  auto rows = RandomRows(p.n, p.dims, 0.0, p.cardinality, p.seed);
  auto got = BlockNestedLoop(rows, MinDims(p.dims), {});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(Sorted(*got),
            Sorted(BruteForceSkyline(rows, MinDims(p.dims), {})));
}

TEST_P(SkylineSweep, AllPairsMatchesOracleOnIncompleteData) {
  const auto& p = GetParam();
  SkylineOptions opts;
  opts.nulls = NullSemantics::kIncomplete;
  auto rows = RandomRows(p.n, p.dims, p.null_rate, p.cardinality, p.seed);
  auto got = AllPairsIncomplete(rows, MinDims(p.dims), opts);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(Sorted(*got),
            Sorted(BruteForceSkyline(rows, MinDims(p.dims), opts)));
}

TEST_P(SkylineSweep, GridFilterMatchesOracleOnCompleteData) {
  const auto& p = GetParam();
  auto rows = RandomRows(p.n, p.dims, 0.0, p.cardinality, p.seed);
  auto got = GridFilterSkyline(rows, MinDims(p.dims), {});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(Sorted(*got),
            Sorted(BruteForceSkyline(rows, MinDims(p.dims), {})));
}

TEST_P(SkylineSweep, GridFilterMatchesOracleOnMixedGoals) {
  const auto& p = GetParam();
  std::vector<BoundDimension> dims;
  for (size_t d = 0; d < p.dims; ++d) {
    dims.push_back({d, d % 2 == 0 ? SkylineGoal::kMin : SkylineGoal::kMax});
  }
  auto rows = RandomRows(p.n, p.dims, 0.0, p.cardinality, p.seed + 100);
  auto got = GridFilterSkyline(rows, dims, {});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(Sorted(*got), Sorted(BruteForceSkyline(rows, dims, {})));
}

TEST(GridFilterTest, FallsBackOnIncompleteData) {
  auto rows = RandomRows(200, 2, 0.3, 5, 55);
  SkylineOptions opts;
  opts.nulls = NullSemantics::kIncomplete;
  // Must still be correct (it delegates to BNL, which requires
  // bitmap-uniform input; here we only check it does not crash and matches
  // BNL's own behaviour on the same input).
  auto grid = GridFilterSkyline(rows, MinDims(2), opts);
  auto bnl = BlockNestedLoop(rows, MinDims(2), opts);
  ASSERT_TRUE(grid.ok());
  ASSERT_TRUE(bnl.ok());
  EXPECT_EQ(Sorted(*grid), Sorted(*bnl));
}

TEST(GridFilterTest, PrunesCellsOnLargeUniformData) {
  // On big uniform data the cell pass must eliminate most tuples before
  // the BNL, i.e. use far fewer dominance tests than plain BNL.
  auto rows = RandomRows(4000, 2, 0.0, 1000000, 77);
  DominanceCounter grid_counter, bnl_counter;
  SkylineOptions grid_opts;
  grid_opts.counter = &grid_counter;
  SkylineOptions bnl_opts;
  bnl_opts.counter = &bnl_counter;
  auto grid = GridFilterSkyline(rows, MinDims(2), grid_opts);
  auto bnl = BlockNestedLoop(rows, MinDims(2), bnl_opts);
  ASSERT_TRUE(grid.ok());
  ASSERT_TRUE(bnl.ok());
  EXPECT_EQ(Sorted(*grid), Sorted(*bnl));
  EXPECT_LT(grid_counter.tests.load(), bnl_counter.tests.load() / 2);
}

TEST_P(SkylineSweep, MixedGoalsMatchOracle) {
  const auto& p = GetParam();
  std::vector<BoundDimension> dims;
  for (size_t d = 0; d < p.dims; ++d) {
    dims.push_back({d, d % 2 == 0 ? SkylineGoal::kMin : SkylineGoal::kMax});
  }
  auto rows = RandomRows(p.n, p.dims, 0.0, p.cardinality, p.seed);
  auto got = BlockNestedLoop(rows, dims, {});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(Sorted(*got), Sorted(BruteForceSkyline(rows, dims, {})));
}

TEST_P(SkylineSweep, DiffGoalMatchesOracle) {
  const auto& p = GetParam();
  if (p.dims < 2) GTEST_SKIP();
  std::vector<BoundDimension> dims;
  dims.push_back({0, SkylineGoal::kDiff});
  for (size_t d = 1; d < p.dims; ++d) dims.push_back({d, SkylineGoal::kMin});
  auto rows = RandomRows(p.n, p.dims, 0.0, p.cardinality, p.seed);
  auto got = BlockNestedLoop(rows, dims, {});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(Sorted(*got), Sorted(BruteForceSkyline(rows, dims, {})));
}

TEST_P(SkylineSweep, DistinctMatchesOracle) {
  const auto& p = GetParam();
  SkylineOptions opts;
  opts.distinct = true;
  auto rows = RandomRows(p.n, p.dims, 0.0, p.cardinality, p.seed);
  auto got = BlockNestedLoop(rows, MinDims(p.dims), opts);
  ASSERT_TRUE(got.ok());
  // DISTINCT keeps one representative per duplicate group; sizes must match
  // the oracle's.
  EXPECT_EQ(got->size(),
            BruteForceSkyline(rows, MinDims(p.dims), opts).size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, SkylineSweep,
    ::testing::Values(
        SweepParam{50, 1, 0.3, 4, 1}, SweepParam{100, 2, 0.2, 5, 2},
        SweepParam{200, 2, 0.4, 3, 3}, SweepParam{150, 3, 0.25, 6, 4},
        SweepParam{300, 3, 0.1, 10, 5}, SweepParam{100, 4, 0.3, 4, 6},
        SweepParam{250, 4, 0.15, 8, 7}, SweepParam{80, 5, 0.2, 3, 8},
        SweepParam{200, 5, 0.05, 12, 9}, SweepParam{120, 6, 0.25, 5, 10}));

}  // namespace
}  // namespace skyline
}  // namespace sparkline
