// Tests for the analyzer: resolution, the paper's Listing-6/7 rules
// (missing references / aggregate propagation into skylines), the Appendix-B
// sort-over-HAVING fix, USING joins, and EXISTS decorrelation.
#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "sql/parser.h"
#include "test_util.h"

namespace sparkline {
namespace {

class AnalyzerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = std::make_shared<Catalog>();
    Schema hotels({Field{"id", DataType::Int64(), false},
                   Field{"price", DataType::Double(), false},
                   Field{"rating", DataType::Double(), true},
                   Field{"city", DataType::String(), false}});
    ASSERT_OK(catalog_->RegisterTable(std::make_shared<Table>("hotels", hotels)));
    Schema cities({Field{"name", DataType::String(), false},
                   Field{"country", DataType::String(), false}});
    ASSERT_OK(catalog_->RegisterTable(std::make_shared<Table>("cities", cities)));
  }

  Result<LogicalPlanPtr> Analyze(const std::string& sql) {
    auto plan = ParseSql(sql);
    if (!plan.ok()) return plan.status();
    Analyzer analyzer(catalog_);
    return analyzer.Analyze(*plan);
  }

  LogicalPlanPtr AnalyzeOk(const std::string& sql) {
    auto r = Analyze(sql);
    SL_CHECK(r.ok()) << sql << " -> " << r.status().ToString();
    return *r;
  }

  static const SkylineNode* FindSkyline(const LogicalPlanPtr& plan) {
    const SkylineNode* found = nullptr;
    LogicalPlan::Foreach(plan, [&](const LogicalPlanPtr& n) {
      if (n->kind() == PlanKind::kSkyline) {
        found = static_cast<const SkylineNode*>(n.get());
      }
    });
    return found;
  }

  std::shared_ptr<Catalog> catalog_;
};

TEST_F(AnalyzerTest, ResolvesSimpleProjection) {
  auto plan = AnalyzeOk("SELECT price, rating FROM hotels");
  EXPECT_TRUE(plan->resolved());
  auto out = plan->output();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].name, "price");
  EXPECT_EQ(out[0].type, DataType::Double());
  EXPECT_FALSE(out[0].nullable);
  EXPECT_TRUE(out[1].nullable);
}

TEST_F(AnalyzerTest, UnknownTableFails) {
  auto r = Analyze("SELECT * FROM nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kAnalysisError);
}

TEST_F(AnalyzerTest, UnknownColumnFails) {
  auto r = Analyze("SELECT wat FROM hotels");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("wat"), std::string::npos);
}

TEST_F(AnalyzerTest, StarExpansion) {
  auto plan = AnalyzeOk("SELECT * FROM hotels");
  EXPECT_EQ(plan->output().size(), 4u);
}

TEST_F(AnalyzerTest, QualifiedStarAndAlias) {
  auto plan = AnalyzeOk("SELECT h.* FROM hotels h");
  EXPECT_EQ(plan->output().size(), 4u);
  EXPECT_FALSE(Analyze("SELECT x.* FROM hotels h").ok());
}

TEST_F(AnalyzerTest, QualifiedReferences) {
  AnalyzeOk("SELECT h.price FROM hotels h WHERE h.rating > 3");
  EXPECT_FALSE(Analyze("SELECT x.price FROM hotels h").ok());
}

TEST_F(AnalyzerTest, SelfJoinDisambiguatedByQualifier) {
  auto plan = AnalyzeOk(
      "SELECT a.price FROM hotels a JOIN hotels b ON a.id = b.id");
  EXPECT_TRUE(plan->resolved());
  // Without a qualifier the reference is ambiguous.
  EXPECT_FALSE(
      Analyze("SELECT price FROM hotels a JOIN hotels b ON a.id = b.id").ok());
}

TEST_F(AnalyzerTest, TypeMismatchComparisonFails) {
  auto r = Analyze("SELECT * FROM hotels WHERE city > 3");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("compare"), std::string::npos);
}

TEST_F(AnalyzerTest, FilterMustBeBoolean) {
  EXPECT_FALSE(Analyze("SELECT * FROM hotels WHERE price").ok());
}

TEST_F(AnalyzerTest, GroupByValidation) {
  AnalyzeOk("SELECT city, count(*) FROM hotels GROUP BY city");
  auto r = Analyze("SELECT city, price FROM hotels GROUP BY city");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("GROUP BY"), std::string::npos);
}

TEST_F(AnalyzerTest, HavingOverAggregateOutput) {
  auto plan = AnalyzeOk(
      "SELECT city, count(*) AS n FROM hotels GROUP BY city HAVING n > 2");
  EXPECT_TRUE(plan->resolved());
}

TEST_F(AnalyzerTest, HavingWithHiddenAggregate) {
  // sum(price) is not in the select list; the analyzer must add it to the
  // Aggregate and re-project (the machinery of paper Listing 7/10).
  auto plan = AnalyzeOk(
      "SELECT city FROM hotels GROUP BY city HAVING sum(price) > 100");
  EXPECT_TRUE(plan->resolved());
  // The restoring projection keeps the original single-column output.
  EXPECT_EQ(plan->output().size(), 1u);
  EXPECT_EQ(plan->output()[0].name, "city");
}

TEST_F(AnalyzerTest, OrderByHiddenAggregateWithHaving) {
  // The Appendix-B case: Sort over Filter(HAVING) over Aggregate, ordering
  // by an aggregate that is not part of the output.
  auto plan = AnalyzeOk(
      "SELECT city FROM hotels GROUP BY city "
      "HAVING count(*) > 0 ORDER BY sum(price) DESC");
  EXPECT_TRUE(plan->resolved());
  EXPECT_EQ(plan->output().size(), 1u);
}

TEST_F(AnalyzerTest, OrderByColumnNotInProjection) {
  // ResolveMissingReferences: ORDER BY rating with only price projected.
  auto plan = AnalyzeOk("SELECT price FROM hotels ORDER BY rating");
  EXPECT_TRUE(plan->resolved());
  ASSERT_EQ(plan->output().size(), 1u);
  EXPECT_EQ(plan->output()[0].name, "price");
  // A widening Project must exist below the Sort.
  EXPECT_EQ(plan->kind(), PlanKind::kProject);
  EXPECT_EQ(plan->children()[0]->kind(), PlanKind::kSort);
}

TEST_F(AnalyzerTest, SkylineDimensionNotInProjection) {
  // Paper Listing 6: skyline over a dimension missing from the projection.
  auto plan = AnalyzeOk(
      "SELECT price FROM hotels SKYLINE OF price MIN, rating MAX");
  EXPECT_TRUE(plan->resolved());
  ASSERT_EQ(plan->output().size(), 1u);
  EXPECT_EQ(plan->output()[0].name, "price");
  EXPECT_EQ(plan->kind(), PlanKind::kProject);
  const SkylineNode* sky = FindSkyline(plan);
  ASSERT_NE(sky, nullptr);
  // The skyline child now produces both dimensions.
  EXPECT_EQ(sky->child()->output().size(), 2u);
}

TEST_F(AnalyzerTest, SkylineOverAggregate) {
  // Paper Listing 7: skyline dimensions referencing aggregates, one of
  // which (count) is not part of the output.
  auto plan = AnalyzeOk(
      "SELECT city, sum(price) AS total FROM hotels GROUP BY city "
      "SKYLINE OF total MAX, count(id) MAX");
  EXPECT_TRUE(plan->resolved());
  const SkylineNode* sky = FindSkyline(plan);
  ASSERT_NE(sky, nullptr);
  // Output restored to the two visible columns.
  EXPECT_EQ(plan->output().size(), 2u);
}

TEST_F(AnalyzerTest, SkylineOverAggregateWithHaving) {
  auto plan = AnalyzeOk(
      "SELECT city, sum(price) AS total FROM hotels GROUP BY city "
      "HAVING count(*) > 1 SKYLINE OF total MAX, avg(rating) MAX");
  EXPECT_TRUE(plan->resolved());
  ASSERT_NE(FindSkyline(plan), nullptr);
}

TEST_F(AnalyzerTest, SkylineKeepsFlags) {
  auto plan =
      AnalyzeOk("SELECT * FROM hotels SKYLINE OF DISTINCT COMPLETE price MIN");
  const SkylineNode* sky = FindSkyline(plan);
  ASSERT_NE(sky, nullptr);
  EXPECT_TRUE(sky->distinct());
  EXPECT_TRUE(sky->complete());
}

TEST_F(AnalyzerTest, SkylineOnStringDimensionFails) {
  auto r = Analyze("SELECT * FROM hotels SKYLINE OF city MIN");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("orderable"), std::string::npos);
}

TEST_F(AnalyzerTest, SkylineDiffOnStringAllowed) {
  AnalyzeOk("SELECT * FROM hotels SKYLINE OF city DIFF, price MIN");
}

TEST_F(AnalyzerTest, UsingJoinMergesColumns) {
  Schema extra({Field{"id", DataType::Int64(), false},
                Field{"stars", DataType::Int64(), true}});
  ASSERT_OK(catalog_->RegisterTable(std::make_shared<Table>("extra", extra)));
  auto plan = AnalyzeOk("SELECT * FROM hotels JOIN extra USING (id)");
  // id appears once: 4 hotel columns + 1 extra column.
  EXPECT_EQ(plan->output().size(), 5u);
}

TEST_F(AnalyzerTest, ExistsBecomesSemiJoin) {
  auto plan = AnalyzeOk(
      "SELECT * FROM hotels o WHERE EXISTS("
      "SELECT * FROM hotels i WHERE i.price < o.price)");
  bool has_semi = false;
  LogicalPlan::Foreach(plan, [&](const LogicalPlanPtr& n) {
    if (n->kind() == PlanKind::kJoin &&
        static_cast<const Join&>(*n).join_type() == JoinType::kLeftSemi) {
      has_semi = true;
    }
  });
  EXPECT_TRUE(has_semi);
}

TEST_F(AnalyzerTest, NotExistsBecomesAntiJoinWithDominanceCondition) {
  auto plan = AnalyzeOk(
      "SELECT price, rating FROM hotels o WHERE NOT EXISTS("
      "SELECT * FROM hotels i WHERE i.price <= o.price AND"
      " i.rating >= o.rating AND (i.price < o.price OR i.rating > o.rating))");
  const Join* anti = nullptr;
  LogicalPlan::Foreach(plan, [&](const LogicalPlanPtr& n) {
    if (n->kind() == PlanKind::kJoin &&
        static_cast<const Join&>(*n).join_type() == JoinType::kLeftAnti) {
      anti = static_cast<const Join*>(n.get());
    }
  });
  ASSERT_NE(anti, nullptr);
  ASSERT_NE(anti->condition(), nullptr);
  // All three conjuncts were pulled into the join condition.
  EXPECT_EQ(SplitConjuncts(anti->condition()).size(), 3u);
}

TEST_F(AnalyzerTest, UncorrelatedExistsKeepsNoCondition) {
  auto plan = AnalyzeOk(
      "SELECT * FROM hotels WHERE EXISTS(SELECT * FROM cities)");
  const Join* semi = nullptr;
  LogicalPlan::Foreach(plan, [&](const LogicalPlanPtr& n) {
    if (n->kind() == PlanKind::kJoin) semi = static_cast<const Join*>(n.get());
  });
  ASSERT_NE(semi, nullptr);
  EXPECT_EQ(semi->condition(), nullptr);
}

TEST_F(AnalyzerTest, ScalarSubqueryResolvesType) {
  auto plan = AnalyzeOk(
      "SELECT * FROM hotels WHERE price <= (SELECT min(price) FROM hotels)");
  EXPECT_TRUE(plan->resolved());
}

TEST_F(AnalyzerTest, CorrelatedScalarSubqueryRejected) {
  auto r = Analyze(
      "SELECT * FROM hotels o WHERE price <= "
      "(SELECT min(price) FROM hotels i WHERE i.city = o.city)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotImplemented);
}

TEST_F(AnalyzerTest, DerivedTableWithAliasQualifier) {
  auto plan = AnalyzeOk(
      "SELECT s.price FROM (SELECT price FROM hotels) AS s WHERE s.price > 0");
  EXPECT_TRUE(plan->resolved());
}

TEST_F(AnalyzerTest, AggregateInWhereFails) {
  EXPECT_FALSE(Analyze("SELECT * FROM hotels WHERE sum(price) > 3").ok());
}

TEST_F(AnalyzerTest, DuplicateNamesNeedQualifiers) {
  auto r = Analyze(
      "SELECT id FROM hotels a JOIN hotels b ON a.id = b.id");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("ambiguous"), std::string::npos);
}

TEST_F(AnalyzerTest, FunctionResolution) {
  AnalyzeOk("SELECT ifnull(rating, 0) FROM hotels");
  EXPECT_FALSE(Analyze("SELECT nosuchfn(rating) FROM hotels").ok());
  EXPECT_FALSE(Analyze("SELECT ifnull(rating) FROM hotels").ok());
}

TEST_F(AnalyzerTest, SkylineMissingRefsThroughFilterChain) {
  // Listing 6's recursion: the missing dimension must flow through a WHERE
  // filter *and* the projection.
  auto plan = AnalyzeOk(
      "SELECT price FROM hotels WHERE price > 0 "
      "SKYLINE OF price MIN, rating MAX");
  EXPECT_TRUE(plan->resolved());
  ASSERT_EQ(plan->output().size(), 1u);
  const SkylineNode* sky = FindSkyline(plan);
  ASSERT_NE(sky, nullptr);
  EXPECT_EQ(sky->child()->output().size(), 2u);
}

TEST_F(AnalyzerTest, SkylineMissingRefsThroughDerivedTable) {
  auto plan = AnalyzeOk(
      "SELECT p FROM (SELECT price AS p, rating FROM hotels) t "
      "SKYLINE OF p MIN, rating MAX ORDER BY p");
  EXPECT_TRUE(plan->resolved());
  ASSERT_EQ(plan->output().size(), 1u);
  EXPECT_EQ(plan->output()[0].name, "p");
}

TEST_F(AnalyzerTest, SkylineDimsOverExpressionsOfAggregates) {
  // An arithmetic expression over aggregates as a dimension.
  auto plan = AnalyzeOk(
      "SELECT city FROM hotels GROUP BY city "
      "SKYLINE OF sum(price) / count(*) MIN");
  EXPECT_TRUE(plan->resolved());
  EXPECT_EQ(plan->output().size(), 1u);
}

TEST_F(AnalyzerTest, OrderByThroughSkylineOverAggregate) {
  // Sort above a Skyline above an Aggregate, ordering by a hidden
  // aggregate: exercises the pass-through walk of FindAggregate.
  auto plan = AnalyzeOk(
      "SELECT city, count(*) AS n FROM hotels GROUP BY city "
      "SKYLINE OF n MAX ORDER BY sum(price)");
  EXPECT_TRUE(plan->resolved());
  EXPECT_EQ(plan->output().size(), 2u);
}

TEST_F(AnalyzerTest, FreshIdsPerScanInstance) {
  auto plan = AnalyzeOk("SELECT a.id FROM hotels a CROSS JOIN hotels b");
  std::vector<const Scan*> scans;
  LogicalPlan::Foreach(plan, [&](const LogicalPlanPtr& n) {
    if (n->kind() == PlanKind::kScan) {
      scans.push_back(static_cast<const Scan*>(n.get()));
    }
  });
  ASSERT_EQ(scans.size(), 2u);
  EXPECT_NE(scans[0]->output()[0].id, scans[1]->output()[0].id);
}

}  // namespace
}  // namespace sparkline
