// Tests for the type system (Value, DataType, Schema, rows).
#include <gtest/gtest.h>

#include "types/schema.h"
#include "types/value.h"

namespace sparkline {
namespace {

TEST(DataTypeTest, Names) {
  EXPECT_EQ(DataType::Bool().ToString(), "BOOLEAN");
  EXPECT_EQ(DataType::Int64().ToString(), "BIGINT");
  EXPECT_EQ(DataType::Double().ToString(), "DOUBLE");
  EXPECT_EQ(DataType::String().ToString(), "VARCHAR");
}

TEST(DataTypeTest, Comparability) {
  EXPECT_TRUE(TypesComparable(DataType::Int64(), DataType::Double()));
  EXPECT_TRUE(TypesComparable(DataType::String(), DataType::String()));
  EXPECT_FALSE(TypesComparable(DataType::String(), DataType::Int64()));
  EXPECT_EQ(CommonType(DataType::Int64(), DataType::Double()),
            DataType::Double());
  EXPECT_EQ(CommonType(DataType::Int64(), DataType::Int64()),
            DataType::Int64());
}

TEST(ValueTest, NullBasics) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToString(), "NULL");
  Value typed = Value::Null(DataType::String());
  EXPECT_EQ(typed.type(), DataType::String());
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value::Int64(42).int64_value(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::String("hi").string_value(), "hi");
  EXPECT_TRUE(Value::Bool(true).bool_value());
}

TEST(ValueTest, NumericWideningEquality) {
  EXPECT_TRUE(Value::Int64(3).Equals(Value::Double(3.0)));
  EXPECT_FALSE(Value::Int64(3).Equals(Value::Double(3.5)));
  EXPECT_TRUE(Value::Null().Equals(Value::Null(DataType::Double())));
  EXPECT_FALSE(Value::Null().Equals(Value::Int64(0)));
}

TEST(ValueTest, HashConsistentWithEquals) {
  EXPECT_EQ(Value::Int64(3).Hash(), Value::Double(3.0).Hash());
  EXPECT_EQ(Value::Null().Hash(), Value::Null(DataType::String()).Hash());
}

TEST(ValueTest, CompareValues) {
  EXPECT_LT(CompareValues(Value::Int64(1), Value::Int64(2)), 0);
  EXPECT_GT(CompareValues(Value::Double(2.5), Value::Int64(2)), 0);
  EXPECT_EQ(CompareValues(Value::String("a"), Value::String("a")), 0);
  EXPECT_LT(CompareValues(Value::Bool(false), Value::Bool(true)), 0);
}

TEST(ValueTest, CastNumeric) {
  auto d = Value::Int64(3).CastTo(DataType::Double());
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d->double_value(), 3.0);
  auto i = Value::Double(2.6).CastTo(DataType::Int64());
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(i->int64_value(), 3);  // rounds
}

TEST(ValueTest, CastStringParses) {
  auto i = Value::String("123").CastTo(DataType::Int64());
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(i->int64_value(), 123);
  auto d = Value::String("1.5").CastTo(DataType::Double());
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d->double_value(), 1.5);
  EXPECT_FALSE(Value::String("abc").CastTo(DataType::Int64()).ok());
}

TEST(ValueTest, CastNullStaysNull) {
  auto v = Value::Null().CastTo(DataType::String());
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());
  EXPECT_EQ(v->type(), DataType::String());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Double(3.0).ToString(), "3");
  EXPECT_EQ(Value::Double(0.5).ToString(), "0.5");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
}

TEST(RowTest, RowToString) {
  Row r{Value::Int64(1), Value::String("x"), Value::Null()};
  EXPECT_EQ(RowToString(r), "(1, 'x', NULL)");
}

TEST(RowTest, HashAndEq) {
  RowHash h;
  RowEq eq;
  Row a{Value::Int64(1), Value::Double(2.0)};
  Row b{Value::Int64(1), Value::Int64(2)};  // widening equality
  EXPECT_TRUE(eq(a, b));
  EXPECT_EQ(h(a), h(b));
  Row c{Value::Int64(1), Value::Null()};
  Row d{Value::Int64(1), Value::Null(DataType::Double())};
  EXPECT_TRUE(eq(c, d));  // SQL grouping: NULL == NULL
  EXPECT_FALSE(eq(a, c));
}

TEST(RowTest, EstimateBytesGrowsWithStrings) {
  Row small{Value::Int64(1)};
  Row large{Value::String(std::string(1000, 'x'))};
  EXPECT_GT(EstimateRowBytes(large), EstimateRowBytes(small));
}

TEST(SchemaTest, IndexOfIsCaseInsensitive) {
  Schema s({Field{"Id", DataType::Int64(), false},
            Field{"price", DataType::Double(), true}});
  EXPECT_EQ(s.IndexOf("id"), 0);
  EXPECT_EQ(s.IndexOf("PRICE"), 1);
  EXPECT_EQ(s.IndexOf("missing"), -1);
}

TEST(SchemaTest, ToStringShowsNullability) {
  Schema s({Field{"id", DataType::Int64(), false}});
  EXPECT_EQ(s.ToString(), "(id BIGINT NOT NULL)");
}

}  // namespace
}  // namespace sparkline
