// Regression tests for ExecContext's metrics accumulators — in particular
// the Finish() race the thread-safety analysis surfaced: the serving tier
// calls Finish on the submitting thread while a cancelled or timed-out
// query's pool tasks are still draining and appending to the accumulators.
// Finish() used to read them unlocked; it now takes the accumulator mutex.
// Under TSan the concurrent section below reproduces the original data race
// directly; under plain builds the totals assert the lock gives Finish a
// consistent snapshot.
#include "exec/exec_context.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace sparkline {
namespace {

TEST(ExecContextTest, AccumulatorsSumAcrossThreads) {
  ClusterConfig config;
  config.num_executors = 4;
  config.executor_overhead_bytes = 0;
  ExecContext ctx(config);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ctx, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ctx.AddStageTime("[local]", 1.0);
        ctx.AddStageRows("[local]", 2);
        ctx.AddRowsShuffled(3);
        ctx.AddExchangeShipped(1, 10);
        ctx.AddMatrixBuilds("[local]", 1);
        if (t == 0) ctx.AddPartitionsSkipped(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const QueryMetrics m = ctx.Finish(12.5);
  EXPECT_DOUBLE_EQ(m.wall_ms, 12.5);
  EXPECT_DOUBLE_EQ(m.simulated_ms, kThreads * kPerThread * 1.0);
  EXPECT_DOUBLE_EQ(m.operator_ms.at("[local]"), kThreads * kPerThread * 1.0);
  EXPECT_EQ(m.operator_rows.at("[local]"), kThreads * kPerThread * 2);
  EXPECT_EQ(m.rows_shuffled, kThreads * kPerThread * 3);
  EXPECT_EQ(m.exchange_rows_shipped, kThreads * kPerThread);
  EXPECT_EQ(m.exchange_bytes, kThreads * kPerThread * 10);
  EXPECT_EQ(m.matrix_builds.at("[local]"), kThreads * kPerThread);
  EXPECT_EQ(m.partitions_skipped, kPerThread);
}

TEST(ExecContextTest, FinishConcurrentWithWritersIsConsistent) {
  // The original bug: Finish() reading the accumulators unlocked while
  // drain-stage tasks keep writing. With the fix, every snapshot Finish
  // returns is internally consistent — simulated_ms_ and operator_ms_ are
  // updated under one critical section by AddStageTime, so their totals
  // must agree in any snapshot taken under the same lock.
  ClusterConfig config;
  config.num_executors = 2;
  config.executor_overhead_bytes = 0;
  ExecContext ctx(config);

  constexpr int kWriters = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&ctx] {
      for (int i = 0; i < kPerThread; ++i) ctx.AddStageTime("[drain]", 0.25);
    });
  }

  double last_total = 0;
  for (int probe = 0; probe < 200; ++probe) {
    const QueryMetrics m = ctx.Finish(0.0);
    double operator_total = 0;
    for (const auto& [label, ms] : m.operator_ms) operator_total += ms;
    EXPECT_DOUBLE_EQ(m.simulated_ms, operator_total);
    EXPECT_GE(m.simulated_ms, last_total);  // accumulators only grow
    last_total = m.simulated_ms;
  }
  for (auto& writer : writers) writer.join();

  const QueryMetrics final = ctx.Finish(0.0);
  EXPECT_DOUBLE_EQ(final.simulated_ms, kWriters * kPerThread * 0.25);
  EXPECT_DOUBLE_EQ(final.operator_ms.at("[drain]"),
                   kWriters * kPerThread * 0.25);
}

}  // namespace
}  // namespace sparkline
