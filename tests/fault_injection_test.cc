// The chaos suite: sweeps every registered failpoint across kernel and
// exchange configurations and asserts the fault-tolerance contract — under
// any injected fault a query either succeeds with results bit-identical to
// the no-fault oracle (after retries) or returns a clean error Status.
// Never a crash, never a hang, and never a leaked memory reservation: the
// query's MemoryTracker must read zero once its relations are gone.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "datagen/datagen.h"
#include "test_util.h"

namespace sparkline {
namespace {

using ::sparkline::testing::RowStrings;

// Disarms everything around each test so a failed assertion cannot leak an
// armed failpoint into unrelated suites.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { fail::DisarmAll(); }
  void TearDown() override { fail::DisarmAll(); }
};

/// One engine configuration the sweep exercises; `configure` runs against a
/// fresh session before any query.
struct ChaosConfig {
  std::string name;
  std::vector<std::pair<std::string, std::string>> conf;
  std::string sql;
  bool incomplete_data = false;
};

std::vector<ChaosConfig> SweepConfigs() {
  return {
      {"bnl-columnar-exchange",
       {{"sparkline.skyline.kernel", "bnl"},
        {"sparkline.skyline.exchange.columnar", "true"}},
       "SELECT * FROM pts SKYLINE OF d0 MIN, d1 MAX, d2 MIN"},
      {"sfs-row-exchange",
       {{"sparkline.skyline.kernel", "sfs"},
        {"sparkline.skyline.exchange.columnar", "false"}},
       "SELECT * FROM pts SKYLINE OF d0 MIN, d1 MAX, d2 MIN"},
      {"grid-angle-partitioning",
       {{"sparkline.skyline.kernel", "grid"},
        {"sparkline.skyline.partitioning", "angle"}},
       "SELECT * FROM pts SKYLINE OF d0 MIN, d1 MIN, d2 MIN"},
      {"incomplete-parallel",
       {{"sparkline.skyline.incomplete.parallel", "true"}},
       "SELECT * FROM sparse SKYLINE OF d0 MIN, d1 MIN, d2 MIN",
       /*incomplete_data=*/true},
  };
}

void RegisterData(Session* session) {
  ASSERT_OK(session->catalog()->RegisterTable(datagen::GeneratePoints(
      "pts", 600, 3, datagen::PointDistribution::kAntiCorrelated, 5, 0.0)));
  ASSERT_OK(session->catalog()->RegisterTable(datagen::GeneratePoints(
      "sparse", 400, 3, datagen::PointDistribution::kIndependent, 9, 0.25)));
}

void Configure(Session* session, const ChaosConfig& config) {
  for (const auto& [key, value] : config.conf) {
    SL_CHECK_OK(session->SetConf(key, value));
  }
  RegisterData(session);
}

/// Plans `sql` and executes the physical plan against a caller-owned
/// ExecContext, so the test can assert the memory invariant after the
/// relation is gone. Returns the rows (sorted) through `rows`.
Result<std::vector<std::string>> RunPlanLevel(Session* session,
                                              const std::string& sql) {
  SL_ASSIGN_OR_RETURN(DataFrame df, session->Sql(sql));
  SL_ASSIGN_OR_RETURN(LogicalPlanPtr optimized, session->Optimize(df.plan()));
  SL_ASSIGN_OR_RETURN(PhysicalPlanPtr physical,
                      session->PlanPhysical(optimized));
  ExecContext ctx(session->config().cluster);
  std::vector<std::string> rows;
  {
    SL_ASSIGN_OR_RETURN(PartitionedRelation rel, physical->Execute(&ctx));
    rows = RowStrings(std::move(rel).Flatten());
  }
  // The relation (and its MemoryCharge) is gone: every byte the query
  // reserved must have been returned, fault or no fault.
  EXPECT_EQ(ctx.memory()->current_bytes(), 0)
      << "leaked reservation after successful run of " << sql;
  return rows;
}

// The tentpole sweep: every registered failpoint site x every action class,
// across every engine configuration, checked against the no-fault oracle.
TEST_F(FaultInjectionTest, ChaosSweepNeverCorruptsOrLeaks) {
  // Action specs swept at every site. Expected outcomes differ:
  //   error*1           one transient fault -> retry -> bit-identical success
  //   error             every attempt fails -> clean Unavailable
  //   error(internal)   non-retryable -> clean Internal
  //   throw*1           exception -> caught -> clean Internal
  //   delay:2*3         latency only -> bit-identical success
  //   error%0.4:77      seeded coin flips -> either outcome, cleanly
  const std::vector<std::string> specs = {
      "error*1",  "error",       "error(internal)",
      "throw*1",  "delay:2*3",   "error%0.4:77",
  };

  for (const ChaosConfig& config : SweepConfigs()) {
    Session session;
    Configure(&session, config);

    fail::DisarmAll();
    auto oracle = RunPlanLevel(&session, config.sql);
    ASSERT_TRUE(oracle.ok()) << config.name << ": "
                             << oracle.status().ToString();
    ASSERT_FALSE(oracle->empty()) << config.name;

    for (const std::string& site : fail::RegisteredSites()) {
      for (const std::string& spec : specs) {
        SCOPED_TRACE(StrCat(config.name, " :: ", site, "=", spec));
        ASSERT_OK(fail::ArmFromString(StrCat(site, "=", spec)));

        auto run = [&]() -> Result<std::vector<std::string>> {
          SL_ASSIGN_OR_RETURN(DataFrame df, session.Sql(config.sql));
          SL_ASSIGN_OR_RETURN(LogicalPlanPtr optimized,
                              session.Optimize(df.plan()));
          SL_ASSIGN_OR_RETURN(PhysicalPlanPtr physical,
                              session.PlanPhysical(optimized));
          ExecContext ctx(session.config().cluster);
          std::vector<std::string> rows;
          Status status;
          {
            Result<PartitionedRelation> rel = physical->Execute(&ctx);
            if (rel.ok()) {
              rows = RowStrings(std::move(*rel).Flatten());
            } else {
              status = rel.status();
            }
          }
          // The invariant that makes retries and faults safe to serve on:
          // whatever path the query died on, its reservations drained.
          EXPECT_EQ(ctx.memory()->current_bytes(), 0)
              << "leaked reservation (status: " << status.ToString() << ")";
          if (!status.ok()) return status;
          return rows;
        };

        Result<std::vector<std::string>> faulted = run();
        if (faulted.ok()) {
          // Success must mean *bit-identical* success: a fault is never
          // allowed to silently drop or duplicate rows.
          EXPECT_EQ(*faulted, *oracle);
        } else {
          // Clean failure: a real error status with a message, not a crash.
          EXPECT_FALSE(faulted.status().message().empty());
        }
        fail::DisarmAll();
      }
    }
  }
}

// The broadcast filter is a pure optimization, so its failure contract is
// stronger than the sweep's either/or: any non-cancellation fault at
// exec.broadcast must degrade to the unfiltered pre-gather path and still
// serve the bit-identical skyline — never an error, never a wrong result.
TEST_F(FaultInjectionTest, BroadcastFilterFaultDegradesToUnfilteredPath) {
  Session session;
  ASSERT_OK(session.SetConf("sparkline.executors", "8"));
  RegisterData(&session);
  const std::string sql =
      "SELECT * FROM pts SKYLINE OF d0 MIN, d1 MAX, d2 MIN";
  auto oracle = RunPlanLevel(&session, sql);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();

  for (const char* spec :
       {"error", "error(internal)", "throw*1", "delay:1*2", "error%0.5:13"}) {
    SCOPED_TRACE(spec);
    ASSERT_OK(fail::ArmFromString(StrCat("exec.broadcast=", spec)));
    auto faulted = RunPlanLevel(&session, sql);
    ASSERT_TRUE(faulted.ok()) << spec << ": " << faulted.status().ToString();
    EXPECT_EQ(*faulted, *oracle) << spec;
    fail::DisarmAll();
  }
}

// The retry path end to end, through the public Session API: a transient
// fault budget smaller than the retry budget must be absorbed, visibly.
TEST_F(FaultInjectionTest, TransientFaultsAreRetriedAndCounted) {
  Session session;
  RegisterData(&session);
  ASSERT_OK(session.SetConf("sparkline.exec.task_retries", "3"));
  ASSERT_OK(session.SetConf("sparkline.exec.retry_backoff_ms", "0"));

  // No-fault oracle through the same API.
  ASSERT_OK_AND_ASSIGN(
      DataFrame df,
      session.Sql("SELECT * FROM pts SKYLINE OF d0 MIN, d1 MAX, d2 MIN"));
  ASSERT_OK_AND_ASSIGN(QueryResult oracle, df.Collect());

  ASSERT_OK(session.SetConf("sparkline.failpoints", "exec.scan=error*2"));
  ASSERT_OK_AND_ASSIGN(QueryResult faulted, df.Collect());
  ASSERT_OK(session.SetConf("sparkline.failpoints", ""));

  EXPECT_EQ(RowStrings(faulted.rows()), RowStrings(oracle.rows()));
  EXPECT_GE(faulted.metrics.tasks_retried, 2);
  EXPECT_EQ(faulted.metrics.tasks_failed, 0);
  // The acceptance criterion: retries are visible in the metrics line.
  EXPECT_NE(faulted.metrics.ToString().find("tasks_retried="),
            std::string::npos)
      << faulted.metrics.ToString();
}

TEST_F(FaultInjectionTest, ExhaustedRetriesFailCleanly) {
  Session session;
  RegisterData(&session);
  ASSERT_OK(session.SetConf("sparkline.exec.task_retries", "1"));
  ASSERT_OK(session.SetConf("sparkline.exec.retry_backoff_ms", "0"));
  ASSERT_OK_AND_ASSIGN(
      DataFrame df,
      session.Sql("SELECT * FROM pts SKYLINE OF d0 MIN, d1 MAX, d2 MIN"));

  // Unlimited fires: every attempt (initial + 1 retry) hits the fault.
  ASSERT_OK(session.SetConf("sparkline.failpoints", "exec.scan=error"));
  Result<QueryResult> result = df.Collect();
  ASSERT_OK(session.SetConf("sparkline.failpoints", ""));

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);

  // And the session recovers: the next query is clean.
  ASSERT_OK_AND_ASSIGN(QueryResult ok_again, df.Collect());
  EXPECT_GT(ok_again.num_rows(), 0u);
}

TEST_F(FaultInjectionTest, ThrownExceptionsBecomeInternalErrors) {
  Session session;
  RegisterData(&session);
  ASSERT_OK_AND_ASSIGN(
      DataFrame df,
      session.Sql("SELECT * FROM pts SKYLINE OF d0 MIN, d1 MAX, d2 MIN"));

  ASSERT_OK(session.SetConf("sparkline.failpoints", "exec.local_task=throw"));
  Result<QueryResult> result = df.Collect();
  ASSERT_OK(session.SetConf("sparkline.failpoints", ""));

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("threw"), std::string::npos)
      << result.status().ToString();
}

// Enforced memory limits: a budget far below the query's working set must
// produce a clean ResourceExhausted — and release everything it did charge.
TEST_F(FaultInjectionTest, MemoryLimitFailsCleanlyAndDrains) {
  Session session;
  RegisterData(&session);
  ASSERT_OK(session.SetConf("sparkline.exec.memory_limit_bytes", "2048"));

  ASSERT_OK_AND_ASSIGN(
      DataFrame df,
      session.Sql("SELECT * FROM pts SKYLINE OF d0 MIN, d1 MAX, d2 MIN"));
  ASSERT_OK_AND_ASSIGN(LogicalPlanPtr optimized, session.Optimize(df.plan()));
  ASSERT_OK_AND_ASSIGN(PhysicalPlanPtr physical,
                       session.PlanPhysical(optimized));
  ExecContext ctx(session.config().cluster);
  {
    Result<PartitionedRelation> rel = physical->Execute(&ctx);
    ASSERT_FALSE(rel.ok());
    EXPECT_EQ(rel.status().code(), StatusCode::kResourceExhausted)
        << rel.status().ToString();
  }
  EXPECT_EQ(ctx.memory()->current_bytes(), 0);

  // Raising the limit above the working set makes the same query pass.
  ASSERT_OK(session.SetConf("sparkline.exec.memory_limit_bytes", "0"));
  ASSERT_OK_AND_ASSIGN(QueryResult ok_result, df.Collect());
  EXPECT_GT(ok_result.num_rows(), 0u);
}

// Serving-tier degradation: a failing (or throwing) result-cache insert must
// not fail the query — it degrades to uncached serving.
TEST_F(FaultInjectionTest, CacheInsertFaultDegradesToUncachedServing) {
  for (const std::string spec : {"error(internal)", "throw"}) {
    SCOPED_TRACE(spec);
    Session session;
    RegisterData(&session);
    ASSERT_OK(session.SetConf("sparkline.cache.enabled", "true"));
    ASSERT_OK_AND_ASSIGN(
        DataFrame df,
        session.Sql("SELECT * FROM pts SKYLINE OF d0 MIN, d1 MAX"));

    ASSERT_OK(session.SetConf("sparkline.failpoints",
                              StrCat("serve.cache_insert=", spec)));
    ASSERT_OK_AND_ASSIGN(QueryResult first, df.Collect());
    EXPECT_GT(first.num_rows(), 0u);

    // Nothing was cached, so the repeat is a miss — but still correct.
    ASSERT_OK_AND_ASSIGN(QueryResult second, df.Collect());
    EXPECT_FALSE(second.metrics.cache_hit);
    EXPECT_EQ(RowStrings(second.rows()), RowStrings(first.rows()));
    ASSERT_OK(session.SetConf("sparkline.failpoints", ""));

    // With the fault gone, caching resumes.
    ASSERT_OK_AND_ASSIGN(QueryResult third, df.Collect());
    ASSERT_OK_AND_ASSIGN(QueryResult fourth, df.Collect());
    (void)third;
    EXPECT_TRUE(fourth.metrics.cache_hit);
  }
}

// A fault while delta-maintaining a cached skyline (serve.delta_apply)
// degrades to invalidation: the faulted delta is discarded, the entry is
// dropped, and the next query recomputes — a miss, never a stale hit.
TEST_F(FaultInjectionTest, DeltaApplyFaultDegradesToInvalidation) {
  for (const std::string spec : {"error(internal)", "throw"}) {
    SCOPED_TRACE(spec);
    Session session;
    RegisterData(&session);
    ASSERT_OK(session.SetConf("sparkline.cache.enabled", "true"));
    const std::string sql = "SELECT * FROM pts SKYLINE OF d0 MIN, d1 MAX";
    ASSERT_OK_AND_ASSIGN(DataFrame df, session.Sql(sql));
    ASSERT_OK_AND_ASSIGN(QueryResult warm, df.Collect());
    EXPECT_GT(warm.num_rows(), 0u);

    ASSERT_OK(session.SetConf("sparkline.failpoints",
                              StrCat("serve.delta_apply=", spec)));
    ASSERT_OK_AND_ASSIGN(TablePtr table, session.catalog()->GetTable("pts"));
    ASSERT_OK(session.catalog()->InsertInto("pts", {table->rows().front()}));
    session.catalog()->DrainWrites();
    ASSERT_OK(session.SetConf("sparkline.failpoints", ""));

    const auto stats = session.maintainer()->stats();
    EXPECT_EQ(stats.maintained, 0);
    EXPECT_GT(stats.fallbacks, 0);

    // Re-parse so the fingerprint reflects the new table version; the
    // result must be a miss that matches an uncached plan-level run.
    ASSERT_OK_AND_ASSIGN(DataFrame df2, session.Sql(sql));
    ASSERT_OK_AND_ASSIGN(QueryResult after, df2.Collect());
    EXPECT_FALSE(after.metrics.cache_hit);
    ASSERT_OK_AND_ASSIGN(std::vector<std::string> oracle,
                         RunPlanLevel(&session, sql));
    EXPECT_EQ(RowStrings(after.rows()), oracle);
  }
}

// Catalog writes fail atomically under injection: no rows land, no version
// bumps, and the table serves reads as if the write never happened.
TEST_F(FaultInjectionTest, CatalogWriteFaultIsAtomic) {
  Session session;
  RegisterData(&session);
  const uint64_t version_before = session.catalog()->TableVersion("pts");
  ASSERT_OK_AND_ASSIGN(TablePtr table, session.catalog()->GetTable("pts"));
  const size_t rows_before = table->num_rows();

  ASSERT_OK(session.SetConf("sparkline.failpoints", "catalog.write=error"));
  Status write = session.catalog()->InsertInto(
      "pts", {table->rows().front()});
  ASSERT_OK(session.SetConf("sparkline.failpoints", ""));

  EXPECT_FALSE(write.ok());
  EXPECT_EQ(session.catalog()->TableVersion("pts"), version_before);
  ASSERT_OK_AND_ASSIGN(TablePtr after, session.catalog()->GetTable("pts"));
  EXPECT_EQ(after->num_rows(), rows_before);

  // The failed write did not poison the catalog: a real write still works.
  ASSERT_OK(session.catalog()->InsertInto("pts", {table->rows().front()}));
  ASSERT_OK_AND_ASSIGN(TablePtr final_table,
                       session.catalog()->GetTable("pts"));
  EXPECT_EQ(final_table->num_rows(), rows_before + 1);
}

}  // namespace
}  // namespace sparkline
