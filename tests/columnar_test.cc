// Tests for the columnar dominance subsystem (skyline/columnar.h): the
// DominanceMatrix projection, the index-based kernels' equivalence with the
// row kernels and the brute-force oracle, and the fallback conditions that
// keep the fast path safe (huge BIGINTs, NaN, >32 dimensions, >16-dimension
// grid cell keys).
#include <cmath>
#include <optional>

#include <gtest/gtest.h>

#include "common/cancellation.h"
#include "common/rng.h"
#include "skyline/columnar.h"

namespace sparkline {
namespace skyline {
namespace {

Row R(std::vector<double> vals) {
  Row row;
  for (double v : vals) row.push_back(Value::Double(v));
  return row;
}

std::vector<BoundDimension> MinDims(size_t n) {
  std::vector<BoundDimension> dims;
  for (size_t i = 0; i < n; ++i) dims.push_back({i, SkylineGoal::kMin});
  return dims;
}

std::vector<std::string> Sorted(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  for (const auto& r : rows) out.push_back(RowToString(r));
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Row> RandomRows(size_t n, size_t dims, double null_rate,
                            int cardinality, uint64_t seed) {
  Rng rng(seed);
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Row row;
    for (size_t d = 0; d < dims; ++d) {
      if (null_rate > 0 && rng.Bernoulli(null_rate)) {
        row.push_back(Value::Null(DataType::Double()));
      } else {
        row.push_back(
            Value::Double(static_cast<double>(rng.UniformInt(0, cardinality))));
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

/// Correlated rows: a per-row base level plus small per-dimension noise, so
/// good tuples are good everywhere — the workload where SaLSa stop points
/// terminate scans early.
std::vector<Row> CorrelatedRows(size_t n, size_t dims, uint64_t seed) {
  Rng rng(seed);
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double base = rng.Uniform(0.0, 100.0);
    Row row;
    for (size_t d = 0; d < dims; ++d) {
      row.push_back(Value::Double(base + rng.Uniform(0.0, 5.0)));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

/// Anti-correlated rows: points near a constant-sum plane, the
/// skyline-heavy workload where stop points rarely fire.
std::vector<Row> AntiCorrelatedRows(size_t n, size_t dims, uint64_t seed) {
  Rng rng(seed);
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Row row;
    double sum = 0;
    for (size_t d = 0; d + 1 < dims; ++d) {
      const double v = rng.Uniform(0.0, 100.0 - sum / static_cast<double>(dims));
      row.push_back(Value::Double(v));
      sum += v;
    }
    row.push_back(Value::Double(std::max(0.0, 100.0 - sum)));
    rows.push_back(std::move(row));
  }
  return rows;
}

// --- DominanceMatrix --------------------------------------------------------

TEST(DominanceMatrixTest, CompareMatchesCompareRows) {
  Rng rng(11);
  std::vector<BoundDimension> dims{{0, SkylineGoal::kMin},
                                   {1, SkylineGoal::kMax},
                                   {2, SkylineGoal::kDiff}};
  std::vector<Row> rows = RandomRows(80, 3, /*null_rate=*/0.0, 5, 21);
  auto matrix = DominanceMatrix::TryBuild(rows, dims);
  ASSERT_TRUE(matrix.has_value());
  EXPECT_FALSE(matrix->has_nulls());
  for (uint32_t i = 0; i < rows.size(); ++i) {
    for (uint32_t j = 0; j < rows.size(); ++j) {
      EXPECT_EQ(matrix->Compare(i, j, NullSemantics::kComplete),
                CompareRows(rows[i], rows[j], dims, NullSemantics::kComplete))
          << "rows " << i << " vs " << j;
    }
  }
}

TEST(DominanceMatrixTest, IncompleteCompareMatchesCompareRows) {
  std::vector<BoundDimension> dims{{0, SkylineGoal::kMin},
                                   {1, SkylineGoal::kMax},
                                   {2, SkylineGoal::kMin}};
  std::vector<Row> rows = RandomRows(80, 3, /*null_rate=*/0.3, 4, 22);
  auto matrix = DominanceMatrix::TryBuild(rows, dims);
  ASSERT_TRUE(matrix.has_value());
  for (uint32_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(matrix->null_bitmap(i), NullBitmap(rows[i], dims));
    for (uint32_t j = 0; j < rows.size(); ++j) {
      EXPECT_EQ(matrix->Compare(i, j, NullSemantics::kIncomplete),
                CompareRows(rows[i], rows[j], dims, NullSemantics::kIncomplete));
    }
  }
}

TEST(DominanceMatrixTest, VarcharDiffUsesDictionaryCodes) {
  std::vector<BoundDimension> dims{{0, SkylineGoal::kMin},
                                   {1, SkylineGoal::kDiff}};
  std::vector<Row> rows;
  rows.push_back({Value::Double(1), Value::String("red")});
  rows.push_back({Value::Double(2), Value::String("red")});
  rows.push_back({Value::Double(0.5), Value::String("blue")});
  auto matrix = DominanceMatrix::TryBuild(rows, dims);
  ASSERT_TRUE(matrix.has_value());
  // Same color: plain MIN dominance; different color: incomparable.
  EXPECT_EQ(matrix->Compare(0, 1, NullSemantics::kComplete),
            Dominance::kLeftDominates);
  EXPECT_EQ(matrix->Compare(0, 2, NullSemantics::kComplete),
            Dominance::kIncomparable);
}

TEST(DominanceMatrixTest, RefusesHugeBigints) {
  std::vector<Row> rows;
  rows.push_back({Value::Int64((int64_t{1} << 53) + 1)});
  rows.push_back({Value::Int64(int64_t{1} << 53)});
  // The two values are distinguishable as int64 but collapse as double, so
  // the projection must refuse (callers then use the row kernels).
  EXPECT_FALSE(DominanceMatrix::TryBuild(rows, MinDims(1)).has_value());
}

TEST(DominanceMatrixTest, RefusesNaN) {
  std::vector<Row> rows{R({1.0}), R({std::nan("")})};
  EXPECT_FALSE(DominanceMatrix::TryBuild(rows, MinDims(1)).has_value());
}

TEST(DominanceMatrixTest, RefusesTooManyDimensions) {
  std::vector<Row> rows{R(std::vector<double>(33, 1.0))};
  EXPECT_FALSE(DominanceMatrix::TryBuild(rows, MinDims(33)).has_value());
}

TEST(DominanceMatrixTest, SmallBigintsAreExact) {
  std::vector<Row> rows;
  rows.push_back({Value::Int64(3), Value::Int64(7)});
  rows.push_back({Value::Int64(3), Value::Int64(9)});
  auto matrix = DominanceMatrix::TryBuild(rows, MinDims(2));
  ASSERT_TRUE(matrix.has_value());
  EXPECT_EQ(matrix->Compare(0, 1, NullSemantics::kComplete),
            Dominance::kLeftDominates);
}

// --- kernel equivalence -----------------------------------------------------

struct KernelCase {
  ColumnarKernel kernel;
  const char* name;
};

class ColumnarKernelEquivalence : public ::testing::TestWithParam<KernelCase> {};

TEST_P(ColumnarKernelEquivalence, MatchesBruteForceComplete) {
  const auto& param = GetParam();
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    std::vector<Row> rows = RandomRows(300, 3, /*null_rate=*/0.0, 8, seed);
    auto dims = MinDims(3);
    dims[1].goal = SkylineGoal::kMax;
    SkylineOptions options;
    auto columnar = ColumnarSkyline(param.kernel, rows, dims, options);
    ASSERT_TRUE(columnar.ok()) << columnar.status().ToString();
    EXPECT_EQ(Sorted(*columnar),
              Sorted(BruteForceSkyline(rows, dims, options)))
        << param.name << " seed=" << seed;
  }
}

TEST_P(ColumnarKernelEquivalence, MatchesRowKernelWithDistinct) {
  const auto& param = GetParam();
  // Low cardinality forces duplicate tuples, exercising DISTINCT.
  std::vector<Row> rows = RandomRows(200, 2, /*null_rate=*/0.0, 3, 77);
  auto dims = MinDims(2);
  SkylineOptions options;
  options.distinct = true;
  auto columnar = ColumnarSkyline(param.kernel, rows, dims, options);
  ASSERT_TRUE(columnar.ok());
  EXPECT_EQ(Sorted(*columnar), Sorted(BruteForceSkyline(rows, dims, options)));
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, ColumnarKernelEquivalence,
    ::testing::Values(
        KernelCase{ColumnarKernel::kBlockNestedLoop, "bnl"},
        KernelCase{ColumnarKernel::kSortFilterSkyline, "sfs"},
        KernelCase{ColumnarKernel::kGridFilter, "grid"}),
    [](const ::testing::TestParamInfo<KernelCase>& info) {
      return info.param.name;
    });

TEST(ColumnarKernelTest, IndexBnlMatchesRowBnlExactly) {
  // Not just set-equal: BNL's window policy is deterministic, so the
  // columnar kernel must produce the same rows in the same order.
  std::vector<Row> rows = RandomRows(250, 4, /*null_rate=*/0.0, 6, 5);
  auto dims = MinDims(4);
  SkylineOptions options;
  auto matrix = DominanceMatrix::TryBuild(rows, dims);
  ASSERT_TRUE(matrix.has_value());
  auto indices = ColumnarBlockNestedLoop(*matrix, AllIndices(*matrix), options);
  ASSERT_TRUE(indices.ok());
  auto row_result = BlockNestedLoop(rows, dims, options);
  ASSERT_TRUE(row_result.ok());
  const std::vector<Row> materialized = MaterializeRows(rows, *indices);
  ASSERT_EQ(materialized.size(), row_result->size());
  for (size_t i = 0; i < materialized.size(); ++i) {
    EXPECT_EQ(RowToString(materialized[i]), RowToString((*row_result)[i]));
  }
}

TEST(ColumnarKernelTest, IncompletePipelineMatchesRowPipeline) {
  std::vector<Row> rows = RandomRows(300, 3, /*null_rate=*/0.25, 5, 31);
  auto dims = MinDims(3);
  SkylineOptions options;
  options.nulls = NullSemantics::kIncomplete;

  // Local stage: bitmap-grouped BNL.
  auto columnar_local =
      ColumnarSkyline(ColumnarKernel::kBlockNestedLoop, rows, dims, options);
  ASSERT_TRUE(columnar_local.ok());
  std::vector<Row> row_local;
  for (auto& group : PartitionByNullBitmap(rows, dims)) {
    auto local = BlockNestedLoop(group, dims, options);
    ASSERT_TRUE(local.ok());
    for (auto& r : *local) row_local.push_back(std::move(r));
  }
  EXPECT_EQ(Sorted(*columnar_local), Sorted(row_local));

  // Global stage: all-pairs with deferred deletion.
  auto columnar_global = ColumnarAllPairsSkyline(*columnar_local, dims, options);
  ASSERT_TRUE(columnar_global.ok());
  auto row_global = AllPairsIncomplete(row_local, dims, options);
  ASSERT_TRUE(row_global.ok());
  EXPECT_EQ(Sorted(*columnar_global), Sorted(*row_global));
}

TEST(ColumnarKernelTest, CountsDominanceTestsLikeRowBnl) {
  std::vector<Row> rows = RandomRows(150, 3, /*null_rate=*/0.0, 10, 13);
  auto dims = MinDims(3);
  DominanceCounter row_counter, col_counter;
  SkylineOptions row_options;
  row_options.counter = &row_counter;
  SkylineOptions col_options;
  col_options.counter = &col_counter;
  ASSERT_TRUE(BlockNestedLoop(rows, dims, row_options).ok());
  ASSERT_TRUE(ColumnarSkyline(ColumnarKernel::kBlockNestedLoop, rows, dims,
                              col_options)
                  .ok());
  EXPECT_EQ(row_counter.tests.load(), col_counter.tests.load());
}

// Every columnar kernel — including the SFS early-stop scan, whose loop has
// its own termination logic — polls the cancellation token and returns
// Status::Cancelled under a pre-cancelled token instead of finishing the
// scan or crashing.
TEST(ColumnarKernelTest, EveryKernelHonorsCancelledToken) {
  const std::vector<Row> rows = AntiCorrelatedRows(20000, 4, 19);
  const auto dims = MinDims(4);
  CancellationToken token;
  token.Cancel();

  for (const ColumnarKernel kernel :
       {ColumnarKernel::kBlockNestedLoop, ColumnarKernel::kSortFilterSkyline,
        ColumnarKernel::kGridFilter}) {
    SkylineOptions opts;
    opts.cancel = &token;
    auto r = ColumnarSkyline(kernel, rows, dims, opts);
    ASSERT_FALSE(r.ok()) << "kernel " << static_cast<int>(kernel);
    EXPECT_EQ(r.status().code(), StatusCode::kCancelled)
        << "kernel " << static_cast<int>(kernel);
  }

  // The early-stop SFS pass on correlated data (where the stop normally
  // fires) still honors cancellation before reaching its stop point.
  for (const SfsSortKey key : {SfsSortKey::kSum, SfsSortKey::kMinMax}) {
    SkylineOptions opts;
    opts.cancel = &token;
    opts.sfs_early_stop = true;
    opts.sfs_sort_key = key;
    auto r = ColumnarSkyline(ColumnarKernel::kSortFilterSkyline,
                             CorrelatedRows(20000, 4, 23), dims, opts);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  }

  // Incomplete-data columnar path (all-pairs + candidate/validate rounds).
  SkylineOptions iopts;
  iopts.nulls = NullSemantics::kIncomplete;
  iopts.cancel = &token;
  auto incomplete = ColumnarAllPairsSkyline(
      RandomRows(4000, 3, /*null_rate=*/0.3, 50, 29), MinDims(3), iopts);
  ASSERT_FALSE(incomplete.ok());
  EXPECT_EQ(incomplete.status().code(), StatusCode::kCancelled);
}

// --- regression: grid cell-key overflow past 16 dimensions -----------------

TEST(GridOverflowRegression, RowGridFallsBackBeyond16Dims) {
  // 17 dimensions * 4 bits = 68 bits: the cell key would silently wrap and
  // merge unrelated cells. The guard must fall back to BNL and keep the
  // result identical to brute force.
  std::vector<Row> rows = RandomRows(128, 17, /*null_rate=*/0.0, 2, 99);
  auto dims = MinDims(17);
  SkylineOptions options;
  auto grid = GridFilterSkyline(rows, dims, options);
  ASSERT_TRUE(grid.ok());
  EXPECT_EQ(Sorted(*grid), Sorted(BruteForceSkyline(rows, dims, options)));
}

TEST(GridOverflowRegression, ColumnarGridFallsBackBeyond16Dims) {
  std::vector<Row> rows = RandomRows(128, 17, /*null_rate=*/0.0, 2, 98);
  auto dims = MinDims(17);
  SkylineOptions options;
  auto grid = ColumnarSkyline(ColumnarKernel::kGridFilter, rows, dims, options);
  ASSERT_TRUE(grid.ok());
  EXPECT_EQ(Sorted(*grid), Sorted(BruteForceSkyline(rows, dims, options)));
}

// --- regression: 32-dimension limit is a checked Status --------------------

TEST(DimensionLimitTest, AlgorithmsReturnStatusBeyond32Dims) {
  std::vector<Row> rows{R(std::vector<double>(33, 1.0))};
  auto dims = MinDims(33);
  EXPECT_FALSE(BlockNestedLoop(rows, dims, {}).ok());
  EXPECT_FALSE(SortFilterSkyline(rows, dims, {}).ok());
  EXPECT_FALSE(GridFilterSkyline(rows, dims, {}).ok());
  EXPECT_FALSE(AllPairsIncomplete(rows, dims, {}).ok());
  EXPECT_FALSE(ComputeSkyline(rows, dims, {}).ok());
  EXPECT_EQ(BlockNestedLoop(rows, dims, {}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DimensionLimitTest, Exactly32DimsStillWorks) {
  std::vector<Row> rows{R(std::vector<double>(32, 1.0)),
                        R(std::vector<double>(32, 2.0))};
  auto result = BlockNestedLoop(rows, MinDims(32), {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);
}

// --- SIMD dispatch ----------------------------------------------------------

// The dispatching compare must agree with the scalar reference on every
// dimensionality (covering the AVX2 main loop, its scalar tail, and the
// below-4-dims scalar shortcut) for every dominance outcome.
TEST(SimdCompareTest, DispatchMatchesScalar) {
  Rng rng(41);
  for (size_t d = 1; d <= 9; ++d) {
    for (int trial = 0; trial < 500; ++trial) {
      std::vector<double> left(d), right(d);
      for (size_t i = 0; i < d; ++i) {
        // Small cardinality forces frequent equals/dominates outcomes.
        left[i] = static_cast<double>(rng.UniformInt(0, 3));
        right[i] = static_cast<double>(rng.UniformInt(0, 3));
      }
      EXPECT_EQ(CompareKeySpansComplete(left.data(), right.data(), d),
                CompareKeySpansCompleteScalar(left.data(), right.data(), d))
          << "d=" << d << " trial=" << trial;
    }
  }
}

#if SPARKLINE_HAVE_AVX2_COMPARE
TEST(SimdCompareTest, Avx2MatchesScalarWhenAvailable) {
  if (!simd::Avx2Available()) {
    GTEST_SKIP() << "CPU lacks AVX2";
  }
  Rng rng(43);
  for (size_t d = 4; d <= 12; ++d) {
    for (int trial = 0; trial < 500; ++trial) {
      std::vector<double> left(d), right(d);
      for (size_t i = 0; i < d; ++i) {
        left[i] = rng.Bernoulli(0.3) ? 1.0 : rng.Uniform(0, 1);
        right[i] = rng.Bernoulli(0.3) ? 1.0 : rng.Uniform(0, 1);
      }
      EXPECT_EQ(simd::CompareKeySpansCompleteAvx2(left.data(), right.data(), d),
                CompareKeySpansCompleteScalar(left.data(), right.data(), d))
          << "d=" << d << " trial=" << trial;
    }
  }
}
#endif

// --- ColumnarBatch: slice / concat / append round-trips ---------------------

std::shared_ptr<std::vector<Row>> SharedRows(std::vector<Row> rows) {
  return std::make_shared<std::vector<Row>>(std::move(rows));
}

TEST(ColumnarBatchTest, ProjectSelectSliceDecodeRoundTrip) {
  auto rows = SharedRows(RandomRows(100, 3, /*null_rate=*/0.0, 8, 7));
  auto batch = ColumnarBatch::Project(rows, MinDims(3));
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->num_rows(), 100u);

  // A survivor view decodes to exactly the selected backing rows, in order.
  std::vector<uint32_t> selection = {5, 17, 3, 99, 17};
  ColumnarBatch view = batch->WithSelection(selection, /*score_sorted=*/false);
  std::vector<Row> decoded = view.Decode();
  ASSERT_EQ(decoded.size(), selection.size());
  for (size_t i = 0; i < selection.size(); ++i) {
    EXPECT_EQ(RowToString(decoded[i]), RowToString((*rows)[selection[i]]));
  }

  // A contiguous slice of the view is the corresponding sub-range.
  ColumnarBatch slice = view.Slice(1, 4);
  std::vector<Row> sliced = slice.Decode();
  ASSERT_EQ(sliced.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(RowToString(sliced[i]), RowToString(decoded[i + 1]));
  }
}

TEST(ColumnarBatchTest, ConcatMatchesRowGatherAndReprojection) {
  // Three independently projected partitions (with nulls) concatenated must
  // behave exactly like one matrix projected from the gathered rows: same
  // pairwise dominance everywhere, same decode.
  std::vector<BoundDimension> dims{{0, SkylineGoal::kMin},
                                   {1, SkylineGoal::kMax},
                                   {2, SkylineGoal::kMin}};
  std::vector<ColumnarBatch> parts;
  std::vector<Row> gathered;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    auto rows = SharedRows(RandomRows(40, 3, /*null_rate=*/0.2, 5, seed));
    for (const auto& r : *rows) gathered.push_back(r);
    auto batch = ColumnarBatch::Project(rows, dims);
    ASSERT_TRUE(batch.has_value());
    parts.push_back(std::move(*batch));
  }
  ColumnarBatch merged = ColumnarBatch::Concat(&parts);
  ASSERT_EQ(merged.num_rows(), gathered.size());

  auto reference = DominanceMatrix::TryBuild(gathered, dims);
  ASSERT_TRUE(reference.has_value());
  for (uint32_t i = 0; i < gathered.size(); ++i) {
    for (uint32_t j = 0; j < gathered.size(); ++j) {
      EXPECT_EQ(merged.matrix().Compare(i, j, NullSemantics::kIncomplete),
                reference->Compare(i, j, NullSemantics::kIncomplete))
          << i << " vs " << j;
      EXPECT_EQ(merged.matrix().Compare(i, j, NullSemantics::kComplete),
                reference->Compare(i, j, NullSemantics::kComplete));
    }
  }
  const std::vector<Row> decoded = merged.Decode();
  for (size_t i = 0; i < gathered.size(); ++i) {
    EXPECT_EQ(RowToString(decoded[i]), RowToString(gathered[i]));
  }
}

TEST(ColumnarBatchTest, ConcatRemapsVarcharDictionaries) {
  // The same string gets different codes in independently built matrices;
  // concat must unify them so cross-partition DIFF equality still holds.
  std::vector<BoundDimension> dims{{0, SkylineGoal::kMin},
                                   {1, SkylineGoal::kDiff}};
  auto part1 = SharedRows({{Value::Double(1), Value::String("red")},
                           {Value::Double(2), Value::String("blue")}});
  auto part2 = SharedRows({{Value::Double(3), Value::String("blue")},
                           {Value::Double(0.5), Value::String("red")}});
  auto b1 = ColumnarBatch::Project(part1, dims);
  auto b2 = ColumnarBatch::Project(part2, dims);
  ASSERT_TRUE(b1.has_value() && b2.has_value());
  std::vector<ColumnarBatch> parts;
  parts.push_back(std::move(*b1));
  parts.push_back(std::move(*b2));
  ColumnarBatch merged = ColumnarBatch::Concat(&parts);

  // Rows 0 ("red",1) vs 3 ("red",0.5): same color across partitions.
  EXPECT_EQ(merged.matrix().Compare(3, 0, NullSemantics::kComplete),
            Dominance::kLeftDominates);
  // Rows 0 ("red") vs 2 ("blue"): different colors stay incomparable.
  EXPECT_EQ(merged.matrix().Compare(0, 2, NullSemantics::kComplete),
            Dominance::kIncomparable);
}

TEST(ColumnarBatchTest, ConcatInheritsSfsOrderAcrossParts) {
  // Score-sorted parts merge into one score-sorted view, and the presorted
  // SFS pass over it matches the sorting SFS run over the gathered rows.
  auto dims = MinDims(3);
  SkylineOptions options;
  std::vector<ColumnarBatch> parts;
  std::vector<Row> gathered;
  for (uint64_t seed = 11; seed <= 13; ++seed) {
    auto rows = SharedRows(RandomRows(60, 3, /*null_rate=*/0.0, 9, seed));
    for (const auto& r : *rows) gathered.push_back(r);
    auto batch = ColumnarBatch::Project(rows, dims);
    ASSERT_TRUE(batch.has_value());
    auto sorted =
        ColumnarSortFilterSkyline(batch->matrix(), batch->indices(), options);
    ASSERT_TRUE(sorted.ok());
    parts.push_back(batch->WithSelection(*sorted, /*score_sorted=*/true));
  }
  ColumnarBatch merged = ColumnarBatch::Concat(&parts);
  ASSERT_TRUE(merged.score_sorted());
  const auto& view = merged.indices();
  for (size_t i = 1; i < view.size(); ++i) {
    EXPECT_LE(merged.matrix().Score(view[i - 1]),
              merged.matrix().Score(view[i]))
        << "merged view must be score-ascending";
  }

  auto presorted =
      ColumnarSortFilterSkylinePresorted(merged.matrix(), view, options);
  ASSERT_TRUE(presorted.ok());
  EXPECT_EQ(Sorted(merged.WithSelection(*presorted, true).Decode()),
            Sorted(*SortFilterSkyline(gathered, dims, options)));
}

TEST(ColumnarBatchTest, MatrixMemoryChargedForBatchLifetime) {
  MemoryTracker tracker;
  auto rows = SharedRows(RandomRows(200, 4, /*null_rate=*/0.1, 6, 17));
  {
    auto batch = ColumnarBatch::Project(rows, MinDims(4), &tracker);
    ASSERT_TRUE(batch.has_value());
    EXPECT_GT(batch->matrix().MemoryBytes(), 0);
    EXPECT_GE(tracker.current_bytes(), batch->matrix().MemoryBytes());
    // Views share the reservation: copying them must not double-charge.
    ColumnarBatch view = batch->WithSelection({1, 2, 3}, false);
    EXPECT_EQ(tracker.current_bytes(), batch->matrix().MemoryBytes());
  }
  EXPECT_EQ(tracker.current_bytes(), 0) << "reservation must die with the batch";
}

// --- SaLSa-style early termination ------------------------------------------

std::vector<Row> SfsWith(const std::vector<Row>& rows,
                         const std::vector<BoundDimension>& dims,
                         bool early_stop, SfsSortKey key, bool distinct,
                         EarlyStopStats* stats = nullptr) {
  SkylineOptions options;
  options.sfs_early_stop = early_stop;
  options.sfs_sort_key = key;
  options.distinct = distinct;
  options.early_stop = stats;
  auto result = ColumnarSkyline(ColumnarKernel::kSortFilterSkyline, rows, dims,
                                options);
  SL_CHECK(result.ok()) << result.status().ToString();
  return *std::move(result);
}

TEST(SfsEarlyStop, ResultIdenticalToFullScanAcrossKeysAndDistributions) {
  struct Workload {
    const char* name;
    std::vector<Row> rows;
  };
  const std::vector<Workload> workloads = {
      {"correlated", CorrelatedRows(800, 4, 7)},
      {"anticorrelated", AntiCorrelatedRows(800, 4, 7)},
      {"duplicates", RandomRows(400, 3, /*null_rate=*/0.0, 3, 7)},
  };
  for (const auto& w : workloads) {
    const size_t num_dims = w.rows[0].size();
    auto dims = MinDims(num_dims);
    dims[1].goal = SkylineGoal::kMax;  // exercise the negated-key path
    for (const SfsSortKey key : {SfsSortKey::kSum, SfsSortKey::kMinMax}) {
      for (const bool distinct : {false, true}) {
        const std::vector<Row> full =
            SfsWith(w.rows, dims, /*early_stop=*/false, key, distinct);
        const std::vector<Row> stopped =
            SfsWith(w.rows, dims, /*early_stop=*/true, key, distinct);
        // SFS output order is the sort order, so the full sequence (not
        // just the set) must match.
        ASSERT_EQ(full.size(), stopped.size())
            << w.name << " key=" << static_cast<int>(key)
            << " distinct=" << distinct;
        for (size_t i = 0; i < full.size(); ++i) {
          EXPECT_EQ(RowToString(full[i]), RowToString(stopped[i]));
        }
        SkylineOptions oracle_options;
        oracle_options.distinct = distinct;
        EXPECT_EQ(Sorted(stopped),
                  Sorted(BruteForceSkyline(w.rows, dims, oracle_options)));
      }
    }
  }
}

TEST(SfsEarlyStop, SkipsMostRowsOnCorrelatedData) {
  const std::vector<Row> rows = CorrelatedRows(2000, 4, 11);
  const auto dims = MinDims(4);
  EarlyStopStats stats;
  SfsWith(rows, dims, /*early_stop=*/true, SfsSortKey::kMinMax, false, &stats);
  EXPECT_GE(stats.stops.load(), 1);
  EXPECT_GT(stats.rows_skipped.load(), static_cast<int64_t>(rows.size()) / 3)
      << "the minC stop point must skip >1/3 of a correlated input";
}

TEST(SfsEarlyStop, RowKernelMatchesColumnarAndSkips) {
  // All-MIN goals: with a MAX goal mixed in, a correlated generator is
  // anti-correlated in normalized space and the stop (correctly) never
  // fires. Goal mixes are covered by the equivalence sweep above.
  const std::vector<Row> rows = CorrelatedRows(1500, 3, 23);
  const auto dims = MinDims(3);
  for (const SfsSortKey key : {SfsSortKey::kSum, SfsSortKey::kMinMax}) {
    EarlyStopStats row_stats;
    SkylineOptions options;
    options.sfs_sort_key = key;
    options.early_stop = &row_stats;
    auto row_result = SortFilterSkyline(rows, dims, options);
    ASSERT_TRUE(row_result.ok());
    EXPECT_EQ(Sorted(*row_result),
              Sorted(SfsWith(rows, dims, /*early_stop=*/true, key, false)));
    if (key == SfsSortKey::kMinMax) {
      EXPECT_GT(row_stats.rows_skipped.load(), 0)
          << "the row kernel must stop early on correlated data too";
    }
    options.sfs_early_stop = false;
    auto full = SortFilterSkyline(rows, dims, options);
    ASSERT_TRUE(full.ok());
    EXPECT_EQ(Sorted(*row_result), Sorted(*full));
  }
}

TEST(SfsEarlyStop, AutoDisabledOnNullBitmaps) {
  // NULL key slots hold placeholders, so coordinate bounds are unsound;
  // the stop must silently disable itself (stats stay zero) while the SFS
  // fast path itself keeps running.
  std::vector<Row> rows = CorrelatedRows(500, 3, 31);
  rows[497][1] = Value::Null(DataType::Double());
  const auto dims = MinDims(3);
  auto matrix = DominanceMatrix::TryBuild(rows, dims);
  ASSERT_TRUE(matrix.has_value());
  ASSERT_TRUE(matrix->has_nulls());
  EarlyStopStats stats;
  SkylineOptions options;
  options.sfs_early_stop = true;
  options.sfs_sort_key = SfsSortKey::kMinMax;
  options.early_stop = &stats;
  auto result =
      ColumnarSortFilterSkyline(*matrix, AllIndices(*matrix), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(stats.stops.load(), 0);
  EXPECT_EQ(stats.rows_skipped.load(), 0);

  // Row kernel: same auto-disable on NULL input.
  auto row_result = SortFilterSkyline(rows, dims, options);
  ASSERT_TRUE(row_result.ok());
  EXPECT_EQ(stats.stops.load(), 0);
}

TEST(SfsEarlyStop, PresortedPassInheritsStopBound) {
  const std::vector<Row> rows = CorrelatedRows(1200, 4, 43);
  const auto dims = MinDims(4);
  auto matrix = DominanceMatrix::TryBuild(rows, dims);
  ASSERT_TRUE(matrix.has_value());

  SkylineOptions options;
  options.sfs_sort_key = SfsSortKey::kMinMax;
  auto baseline =
      ColumnarSortFilterSkyline(*matrix, AllIndices(*matrix), options);
  ASSERT_TRUE(baseline.ok());
  const double bound = ComputeStopBound(*matrix, *baseline);
  ASSERT_TRUE(std::isfinite(bound));

  // Presort by (MinKey, Score) — the kMinMax order the presorted pass
  // expects — then run it with the inherited bound: the result must be
  // identical and the bound must skip rows before the pass's own window
  // could have tightened minC.
  std::vector<uint32_t> ordered = AllIndices(*matrix);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [&](uint32_t a, uint32_t b) {
                     const double ma = matrix->MinKey(a);
                     const double mb = matrix->MinKey(b);
                     if (ma != mb) return ma < mb;
                     return matrix->Score(a) < matrix->Score(b);
                   });
  EarlyStopStats stats;
  SkylineOptions inherited = options;
  inherited.sfs_stop_bound = bound;
  inherited.early_stop = &stats;
  auto presorted =
      ColumnarSortFilterSkylinePresorted(*matrix, ordered, inherited);
  ASSERT_TRUE(presorted.ok());
  EXPECT_EQ(Sorted(MaterializeRows(rows, *baseline)),
            Sorted(MaterializeRows(rows, *presorted)));
  EXPECT_GT(stats.rows_skipped.load(), 0);
}

TEST(SfsEarlyStop, StopBoundSurvivesConcat) {
  // Two parts with different bounds: the concatenated batch must carry the
  // tighter one (its witness row ships with its part).
  auto part_rows_a = SharedRows(CorrelatedRows(300, 3, 51));
  auto part_rows_b = SharedRows(CorrelatedRows(300, 3, 52));
  const auto dims = MinDims(3);
  SkylineOptions options;
  std::vector<ColumnarBatch> parts;
  std::vector<double> bounds;
  for (const auto& rows : {part_rows_a, part_rows_b}) {
    auto batch = ColumnarBatch::Project(rows, dims);
    ASSERT_TRUE(batch.has_value());
    auto survivors = ColumnarSortFilterSkyline(batch->matrix(),
                                               batch->indices(), options);
    ASSERT_TRUE(survivors.ok());
    const double bound = ComputeStopBound(batch->matrix(), *survivors);
    bounds.push_back(bound);
    parts.push_back(batch->WithSelection(std::move(*survivors), true,
                                         SfsSortKey::kSum, bound));
  }
  ColumnarBatch merged = ColumnarBatch::Concat(&parts);
  EXPECT_TRUE(merged.score_sorted());
  EXPECT_EQ(merged.stop_bound(), std::min(bounds[0], bounds[1]));
}

// --- MergeByScore tie-break determinism --------------------------------------

TEST(MergeByScoreTest, EqualKeysReproduceGlobalStableSortOrder) {
  // Low-cardinality rows produce many equal scores (and equal min keys)
  // across runs; the cascade of stable merges must order them exactly like
  // one global stable sort over the concatenated input.
  std::vector<Row> rows = RandomRows(240, 2, /*null_rate=*/0.0, 3, 91);
  const auto dims = MinDims(2);
  auto matrix = DominanceMatrix::TryBuild(rows, dims);
  ASSERT_TRUE(matrix.has_value());

  for (const SfsSortKey key : {SfsSortKey::kSum, SfsSortKey::kMinMax}) {
    auto key_less = [&](uint32_t a, uint32_t b) {
      if (key == SfsSortKey::kMinMax) {
        const double ma = matrix->MinKey(a);
        const double mb = matrix->MinKey(b);
        if (ma != mb) return ma < mb;
      }
      return matrix->Score(a) < matrix->Score(b);
    };
    // Three contiguous runs in input order, each sorted by the key.
    std::vector<std::vector<uint32_t>> runs;
    for (uint32_t begin = 0; begin < 240; begin += 80) {
      std::vector<uint32_t> run;
      for (uint32_t i = begin; i < begin + 80; ++i) run.push_back(i);
      std::stable_sort(run.begin(), run.end(), key_less);
      runs.push_back(std::move(run));
    }
    const std::vector<uint32_t> merged = MergeByScore(*matrix, runs, key);

    std::vector<uint32_t> global = AllIndices(*matrix);
    std::stable_sort(global.begin(), global.end(), key_less);
    EXPECT_EQ(merged, global)
        << "ties must keep input (run) order, key=" << static_cast<int>(key);
  }
}

// --- deadline coverage: every kernel must return Timeout ---------------------

class ColumnarKernelDeadline : public ::testing::Test {
 protected:
  void SetUp() override {
    rows_ = AntiCorrelatedRows(600, 4, 3);
    matrix_ = DominanceMatrix::TryBuild(rows_, MinDims(4));
    ASSERT_TRUE(matrix_.has_value());
    // A deadline in the past: the kernels' batched checker trips on its
    // first clock read (after at most 1024 ticks).
    expired_.deadline_nanos = 1;
  }

  std::vector<Row> rows_;
  std::optional<DominanceMatrix> matrix_;
  SkylineOptions expired_;
};

#define EXPECT_TIMES_OUT(expr)                                     \
  do {                                                             \
    auto _result = (expr);                                         \
    ASSERT_FALSE(_result.ok()) << "kernel ignored the deadline";   \
    EXPECT_EQ(_result.status().code(), StatusCode::kTimeout);      \
  } while (0)

TEST_F(ColumnarKernelDeadline, BlockNestedLoop) {
  EXPECT_TIMES_OUT(
      ColumnarBlockNestedLoop(*matrix_, AllIndices(*matrix_), expired_));
}

TEST_F(ColumnarKernelDeadline, SortFilterSkyline) {
  EXPECT_TIMES_OUT(
      ColumnarSortFilterSkyline(*matrix_, AllIndices(*matrix_), expired_));
}

TEST_F(ColumnarKernelDeadline, SortFilterSkylineEarlyStopLoop) {
  // Early stop enabled with the kMinMax key on anti-correlated data: the
  // stop never fires (the pass runs its early-stop bookkeeping for every
  // tuple), and the loop must still observe the deadline. (On data where
  // the stop fires before the checker's first clock read, finishing OK is
  // the correct outcome — fast passes need no timeout.)
  SkylineOptions options = expired_;
  options.sfs_sort_key = SfsSortKey::kMinMax;
  EXPECT_TIMES_OUT(
      ColumnarSortFilterSkyline(*matrix_, AllIndices(*matrix_), options));
}

TEST_F(ColumnarKernelDeadline, SortFilterSkylinePresorted) {
  std::vector<uint32_t> ordered = AllIndices(*matrix_);
  std::stable_sort(ordered.begin(), ordered.end(), [&](uint32_t a, uint32_t b) {
    return matrix_->Score(a) < matrix_->Score(b);
  });
  EXPECT_TIMES_OUT(
      ColumnarSortFilterSkylinePresorted(*matrix_, ordered, expired_));
}

TEST_F(ColumnarKernelDeadline, GridFilter) {
  EXPECT_TIMES_OUT(
      ColumnarGridFilterSkyline(*matrix_, AllIndices(*matrix_), expired_));
}

TEST_F(ColumnarKernelDeadline, AllPairsIncomplete) {
  SkylineOptions options = expired_;
  options.nulls = NullSemantics::kIncomplete;
  EXPECT_TIMES_OUT(
      ColumnarAllPairsIncomplete(*matrix_, AllIndices(*matrix_), options));
}

TEST_F(ColumnarKernelDeadline, IncompleteCandidateScan) {
  SkylineOptions options = expired_;
  options.nulls = NullSemantics::kIncomplete;
  EXPECT_TIMES_OUT(
      ColumnarIncompleteCandidateScan(*matrix_, AllIndices(*matrix_), options));
}

TEST_F(ColumnarKernelDeadline, ValidateAgainstChunk) {
  SkylineOptions options = expired_;
  options.nulls = NullSemantics::kIncomplete;
  const std::vector<uint32_t> all = AllIndices(*matrix_);
  EXPECT_TIMES_OUT(ColumnarValidateAgainstChunk(*matrix_, all, all, options));
}

#undef EXPECT_TIMES_OUT

}  // namespace
}  // namespace skyline
}  // namespace sparkline
