// Tests for logical-plan infrastructure: outputs, tree printing, transforms,
// MissingInput, expression rewrites, and plan cloning.
#include <gtest/gtest.h>

#include "plan/logical_plan.h"
#include "plan/plan_clone.h"
#include "test_util.h"

namespace sparkline {
namespace {

TablePtr MakeTable() {
  Schema s({Field{"a", DataType::Int64(), false},
            Field{"b", DataType::Double(), true}});
  return std::make_shared<Table>("t", s);
}

TEST(LogicalPlanTest, ScanMintsFreshIds) {
  auto table = MakeTable();
  auto s1 = Scan::Make(table);
  auto s2 = Scan::Make(table);
  EXPECT_NE(s1->output()[0].id, s2->output()[0].id);
  EXPECT_EQ(s1->output()[0].name, "a");
  EXPECT_FALSE(s1->output()[0].nullable);
  EXPECT_TRUE(s1->output()[1].nullable);
}

TEST(LogicalPlanTest, SubqueryAliasQualifiesOutput) {
  auto scan = Scan::Make(MakeTable());
  auto aliased = SubqueryAlias::Make("x", scan);
  EXPECT_EQ(aliased->output()[0].qualifier, "x");
  // Ids survive aliasing (resolution binds by id, not by name).
  EXPECT_EQ(aliased->output()[0].id, scan->output()[0].id);
}

TEST(LogicalPlanTest, ProjectOutputFromAliases) {
  auto scan = Scan::Make(MakeTable());
  auto a = scan->output()[0];
  auto project = Project::Make(
      {Alias::Make(BinaryExpr::Make(BinaryOp::kAdd, a.ToRef(),
                                    Literal::Make(Value::Int64(1))),
                   "a1"),
       a.ToRef()},
      scan);
  auto out = project->output();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].name, "a1");
  EXPECT_EQ(out[1].id, a.id);
  EXPECT_TRUE(project->resolved());
}

TEST(LogicalPlanTest, JoinOutputNullability) {
  auto left = Scan::Make(MakeTable());
  auto right = Scan::Make(MakeTable());
  auto inner = Join::Make(left, right, JoinType::kInner, nullptr);
  EXPECT_EQ(inner->output().size(), 4u);
  EXPECT_FALSE(inner->output()[2].nullable);  // right "a" stays non-null
  auto outer = Join::Make(left, right, JoinType::kLeftOuter,
                          BinaryExpr::Make(BinaryOp::kEq,
                                           left->output()[0].ToRef(),
                                           right->output()[0].ToRef()));
  EXPECT_TRUE(outer->output()[2].nullable);  // null-extended side
  auto anti = Join::Make(left, right, JoinType::kLeftAnti, nullptr);
  EXPECT_EQ(anti->output().size(), 2u);  // left columns only
}

TEST(LogicalPlanTest, SkylineOutputEqualsChild) {
  auto scan = Scan::Make(MakeTable());
  auto dims = std::vector<ExprPtr>{
      SkylineDimension::Make(scan->output()[0].ToRef(), SkylineGoal::kMin)};
  auto sky = SkylineNode::Make(false, true, dims, scan);
  EXPECT_EQ(sky->output().size(), scan->output().size());
  EXPECT_EQ(sky->output()[0].id, scan->output()[0].id);
  EXPECT_NE(sky->NodeString().find("COMPLETE"), std::string::npos);
}

TEST(LogicalPlanTest, TreeStringIndentsChildren) {
  auto scan = Scan::Make(MakeTable());
  auto filter = Filter::Make(
      UnaryExpr::Make(UnaryOp::kIsNotNull, scan->output()[1].ToRef()), scan);
  const std::string tree = filter->TreeString();
  EXPECT_NE(tree.find("Filter"), std::string::npos);
  EXPECT_NE(tree.find("\n  Scan"), std::string::npos);
}

TEST(LogicalPlanTest, MissingInputDetectsForeignRefs) {
  auto scan = Scan::Make(MakeTable());
  Attribute foreign{"zz", DataType::Int64(), false, NextExprId(), ""};
  auto filter = Filter::Make(
      BinaryExpr::Make(BinaryOp::kEq, foreign.ToRef(),
                       Literal::Make(Value::Int64(1))),
      scan);
  auto missing = filter->MissingInput();
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_EQ(missing[0].id, foreign.id);
  auto ok_filter = Filter::Make(
      BinaryExpr::Make(BinaryOp::kEq, scan->output()[0].ToRef(),
                       Literal::Make(Value::Int64(1))),
      scan);
  EXPECT_TRUE(ok_filter->MissingInput().empty());
}

TEST(LogicalPlanTest, TransformRebuildsOnlyChangedNodes) {
  auto scan = Scan::Make(MakeTable());
  auto filter = Filter::Make(
      UnaryExpr::Make(UnaryOp::kIsNull, scan->output()[1].ToRef()), scan);
  // Identity transform returns the same pointers.
  auto same = LogicalPlan::Transform(
      filter, [](const LogicalPlanPtr& n) { return n; });
  EXPECT_EQ(same.get(), filter.get());
  // A transform replacing the scan rebuilds the filter above it.
  auto scan2 = Scan::Make(MakeTable());
  auto replaced =
      LogicalPlan::Transform(filter, [&](const LogicalPlanPtr& n) {
        return n->kind() == PlanKind::kScan ? scan2 : n;
      });
  EXPECT_NE(replaced.get(), filter.get());
  EXPECT_EQ(replaced->children()[0].get(), scan2.get());
}

TEST(LogicalPlanTest, TransformExpressionsReachesAllNodes) {
  auto scan = Scan::Make(MakeTable());
  auto filter = Filter::Make(
      BinaryExpr::Make(BinaryOp::kLt, scan->output()[0].ToRef(),
                       Literal::Make(Value::Int64(5))),
      scan);
  auto sort = Sort::Make({SortOrder{scan->output()[1].ToRef(), true, true}},
                         filter);
  int refs = 0;
  LogicalPlan::TransformExpressions(sort, [&](const ExprPtr& e) {
    if (e->kind() == ExprKind::kAttributeRef) ++refs;
    return e;
  });
  EXPECT_EQ(refs, 2);  // one in the filter, one in the sort order
}

TEST(PlanCloneTest, SharesTableButNotIds) {
  auto scan = Scan::Make(MakeTable());
  std::map<ExprId, ExprId> ids;
  auto clone = CloneWithFreshIds(scan, &ids);
  ASSERT_TRUE(clone.ok());
  const auto& cloned_scan = static_cast<const Scan&>(**clone);
  EXPECT_EQ(cloned_scan.table().get(),
            static_cast<const Scan&>(*scan).table().get());
  EXPECT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids.at(scan->output()[0].id), (*clone)->output()[0].id);
}

TEST(PlanCloneTest, RemapsThroughFiltersAndAliases) {
  auto scan = Scan::Make(MakeTable());
  auto a = scan->output()[0];
  auto plan = Project::Make(
      {Alias::Make(BinaryExpr::Make(BinaryOp::kMul, a.ToRef(),
                                    Literal::Make(Value::Int64(2))),
                   "a2")},
      Filter::Make(BinaryExpr::Make(BinaryOp::kGt, a.ToRef(),
                                    Literal::Make(Value::Int64(0))),
                   scan));
  std::map<ExprId, ExprId> ids;
  auto clone = CloneWithFreshIds(plan, &ids);
  ASSERT_TRUE(clone.ok());
  EXPECT_TRUE((*clone)->resolved());
  // Every attribute referenced inside the clone is produced by the clone.
  std::set<ExprId> produced;
  LogicalPlan::Foreach(*clone, [&](const LogicalPlanPtr& n) {
    if (n->kind() == PlanKind::kScan) {
      for (const auto& attr : n->output()) produced.insert(attr.id);
    }
  });
  LogicalPlan::Foreach(*clone, [&](const LogicalPlanPtr& n) {
    for (const auto& e : n->expressions()) {
      for (const auto& attr : CollectAttributes(e)) {
        EXPECT_TRUE(produced.count(attr.id) > 0)
            << "dangling " << attr.ToString();
      }
    }
  });
  // The clone's output id differs from the original Alias id.
  EXPECT_NE((*clone)->output()[0].id, plan->output()[0].id);
}

TEST(PlanCloneTest, RemapAttributeIdsLeavesUnknownIdsAlone) {
  Attribute a{"a", DataType::Int64(), false, 1000, ""};
  Attribute b{"b", DataType::Int64(), false, 2000, ""};
  std::map<ExprId, ExprId> ids{{1000, 1}};
  auto remapped = RemapAttributeIds(
      BinaryExpr::Make(BinaryOp::kAdd, a.ToRef(), b.ToRef()), ids);
  auto attrs = CollectAttributes(remapped);
  EXPECT_EQ(attrs[0].id, 1);
  EXPECT_EQ(attrs[1].id, 2000);
}

TEST(LogicalPlanTest, LocalRelationOutputAndRows) {
  Schema s({Field{"x", DataType::Int64(), false}});
  auto rel = LocalRelation::Make(s, {{Value::Int64(1)}, {Value::Int64(2)}});
  EXPECT_EQ(rel->output().size(), 1u);
  EXPECT_EQ(static_cast<const LocalRelation&>(*rel).rows()->size(), 2u);
  EXPECT_NE(rel->NodeString().find("2 rows"), std::string::npos);
}

TEST(LogicalPlanTest, AggregateExpressionsRoundTrip) {
  auto scan = Scan::Make(MakeTable());
  auto a = scan->output()[0];
  auto agg = Aggregate::Make(
      {a.ToRef()},
      {a.ToRef(), Alias::Make(AggregateExpr::Make(AggFn::kCount, a.ToRef()),
                              "n")},
      scan);
  auto exprs = agg->expressions();
  ASSERT_EQ(exprs.size(), 3u);  // 1 group + 2 outputs
  auto rebuilt = agg->WithNewExpressions(exprs);
  EXPECT_EQ(rebuilt->TreeString(), agg->TreeString());
}

}  // namespace
}  // namespace sparkline
