// The configuration matrix test: every combination of execution strategy,
// kernel, partitioning scheme and executor count must produce the identical
// skyline. This is the strongest single correctness statement the engine
// makes — no physical-plan knob may change results.
#include <gtest/gtest.h>

#include "common/string_util.h"
#include "datagen/datagen.h"
#include "test_util.h"

namespace sparkline {
namespace {

using ::sparkline::testing::Rows;
using ::sparkline::testing::RowStrings;

struct MatrixCase {
  const char* dataset;  // complete | incomplete
  size_t dims;
};

class ConfigMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(ConfigMatrix, AllConfigurationsAgree) {
  const auto& param = GetParam();
  const bool incomplete = std::string(param.dataset) == "incomplete";

  Session session;
  ASSERT_OK(session.catalog()->RegisterTable(datagen::GeneratePoints(
      "pts", 400, param.dims, datagen::PointDistribution::kAntiCorrelated,
      /*seed=*/1234, incomplete ? 0.2 : 0.0)));

  std::vector<std::string> items;
  for (size_t d = 0; d < param.dims; ++d) {
    items.push_back(StrCat("d", d, d % 2 == 0 ? " MIN" : " MAX"));
  }
  const std::string query =
      StrCat("SELECT * FROM pts SKYLINE OF ", JoinStrings(items, ", "));

  std::vector<std::string> expected;
  int combinations = 0;
  const std::vector<const char*> strategies =
      incomplete ? std::vector<const char*>{"auto", "incomplete"}
                 : std::vector<const char*>{"auto", "distributed",
                                            "non_distributed", "incomplete",
                                            "reference"};
  for (const char* strategy : strategies) {
    for (const char* kernel : {"bnl", "sfs", "grid"}) {
      for (const char* partitioning : {"asis", "roundrobin", "angle"}) {
        for (const char* executors : {"1", "3", "8"}) {
          ASSERT_OK(session.SetConf("sparkline.skyline.strategy", strategy));
          ASSERT_OK(session.SetConf("sparkline.skyline.kernel", kernel));
          ASSERT_OK(
              session.SetConf("sparkline.skyline.partitioning", partitioning));
          ASSERT_OK(session.SetConf("sparkline.executors", executors));
          auto rows = RowStrings(Rows(&session, query));
          if (expected.empty()) {
            expected = rows;
            ASSERT_FALSE(expected.empty());
          } else {
            ASSERT_EQ(expected, rows)
                << "strategy=" << strategy << " kernel=" << kernel
                << " partitioning=" << partitioning
                << " executors=" << executors;
          }
          ++combinations;
        }
      }
    }
  }
  EXPECT_GE(combinations, 2 * 3 * 3 * 3);
}

INSTANTIATE_TEST_SUITE_P(Matrix, ConfigMatrix,
                         ::testing::Values(MatrixCase{"complete", 2},
                                           MatrixCase{"complete", 4},
                                           MatrixCase{"incomplete", 3}));

}  // namespace
}  // namespace sparkline
