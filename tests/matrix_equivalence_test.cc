// The configuration matrix test: every combination of execution strategy,
// kernel, dominance representation (row vs. columnar), partitioning scheme
// and executor count must produce the identical skyline — and that skyline
// must equal the brute-force oracle computed directly from the table. This
// is the strongest single correctness statement the engine makes — no
// physical-plan knob may change results.
#include <gtest/gtest.h>

#include "common/string_util.h"
#include "datagen/datagen.h"
#include "skyline/algorithms.h"
#include "test_util.h"

namespace sparkline {
namespace {

using ::sparkline::testing::Rows;
using ::sparkline::testing::RowStrings;

struct MatrixCase {
  const char* dataset;  // complete | incomplete
  size_t dims;
  bool distinct;
};

class ConfigMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(ConfigMatrix, AllConfigurationsAgreeWithBruteForce) {
  const auto& param = GetParam();
  const bool incomplete = std::string(param.dataset) == "incomplete";

  Session session;
  TablePtr table = datagen::GeneratePoints(
      "pts", 400, param.dims, datagen::PointDistribution::kAntiCorrelated,
      /*seed=*/1234, incomplete ? 0.2 : 0.0);
  ASSERT_OK(session.catalog()->RegisterTable(table));

  std::vector<std::string> items;
  for (size_t d = 0; d < param.dims; ++d) {
    items.push_back(StrCat("d", d, d % 2 == 0 ? " MIN" : " MAX"));
  }
  const std::string query =
      StrCat("SELECT * FROM pts SKYLINE OF ", param.distinct ? "DISTINCT " : "",
             JoinStrings(items, ", "));

  // Brute-force oracle straight from the table (column 0 is the id).
  std::vector<skyline::BoundDimension> oracle_dims;
  for (size_t d = 0; d < param.dims; ++d) {
    oracle_dims.push_back(skyline::BoundDimension{
        d + 1, d % 2 == 0 ? SkylineGoal::kMin : SkylineGoal::kMax});
  }
  skyline::SkylineOptions oracle_options;
  oracle_options.distinct = param.distinct;
  oracle_options.nulls = incomplete ? skyline::NullSemantics::kIncomplete
                                    : skyline::NullSemantics::kComplete;
  const std::vector<std::string> expected = RowStrings(
      skyline::BruteForceSkyline(table->rows(), oracle_dims, oracle_options));
  ASSERT_FALSE(expected.empty());

  int combinations = 0;
  const std::vector<const char*> strategies =
      incomplete ? std::vector<const char*>{"auto", "incomplete"}
                 : std::vector<const char*>{"auto", "distributed",
                                            "non_distributed", "incomplete",
                                            "reference"};
  for (const char* strategy : strategies) {
    for (const char* kernel : {"bnl", "sfs", "grid"}) {
      for (const char* columnar : {"true", "false"}) {
        for (const char* partitioning : {"asis", "roundrobin", "angle"}) {
          for (const char* executors : {"1", "3", "8"}) {
            ASSERT_OK(session.SetConf("sparkline.skyline.strategy", strategy));
            ASSERT_OK(session.SetConf("sparkline.skyline.kernel", kernel));
            ASSERT_OK(session.SetConf("sparkline.skyline.columnar", columnar));
            ASSERT_OK(session.SetConf("sparkline.skyline.partitioning",
                                      partitioning));
            ASSERT_OK(session.SetConf("sparkline.executors", executors));
            auto rows = RowStrings(Rows(&session, query));
            ASSERT_EQ(expected, rows)
                << "strategy=" << strategy << " kernel=" << kernel
                << " columnar=" << columnar
                << " partitioning=" << partitioning
                << " executors=" << executors;
            ++combinations;
          }
        }
      }
    }
  }
  EXPECT_GE(combinations, 2 * 3 * 2 * 3 * 3);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ConfigMatrix,
    ::testing::Values(MatrixCase{"complete", 2, false},
                      MatrixCase{"complete", 4, false},
                      MatrixCase{"complete", 3, true},
                      MatrixCase{"incomplete", 3, false},
                      MatrixCase{"incomplete", 3, true}));

// The parallel partial-merge global stage (the tentpole of the columnar
// PR): with multiple executors the complete global skyline must run as a
// parallel partial stage plus a single-task merge — not as one single task.
TEST(ParallelGlobalMerge, GlobalStageSplitsForMultipleExecutors) {
  Session session;
  ASSERT_OK(session.catalog()->RegisterTable(datagen::GeneratePoints(
      "pts", 2000, 3, datagen::PointDistribution::kAntiCorrelated, 7)));
  ASSERT_OK(session.SetConf("sparkline.skyline.strategy", "distributed"));
  const std::string query =
      "SELECT * FROM pts SKYLINE OF d0 MIN, d1 MAX, d2 MIN";

  auto metrics_for = [&](const char* execs) {
    SL_CHECK_OK(session.SetConf("sparkline.executors", execs));
    auto df = session.Sql(query);
    SL_CHECK(df.ok());
    auto r = df->Collect();
    SL_CHECK(r.ok()) << r.status().ToString();
    return r->metrics;
  };

  const QueryMetrics multi = metrics_for("4");
  EXPECT_EQ(multi.operator_ms.count("GlobalSkyline [complete]"), 0u)
      << "global stage still runs as a single task with 4 executors";
  EXPECT_EQ(multi.operator_ms.count("GlobalSkyline [complete] [partial]"), 1u);
  EXPECT_EQ(multi.operator_ms.count("GlobalSkyline [complete] [merge]"), 1u);

  const QueryMetrics single = metrics_for("1");
  EXPECT_EQ(single.operator_ms.count("GlobalSkyline [complete]"), 1u);
  EXPECT_EQ(single.operator_ms.count("GlobalSkyline [complete] [partial]"), 0u);
}

}  // namespace
}  // namespace sparkline
