// The configuration matrix test: every combination of execution strategy,
// kernel, dominance representation (row vs. columnar), partitioning scheme
// and executor count must produce the identical skyline — and that skyline
// must equal the brute-force oracle computed directly from the table. This
// is the strongest single correctness statement the engine makes — no
// physical-plan knob may change results.
#include <gtest/gtest.h>

#include "common/string_util.h"
#include "datagen/datagen.h"
#include "skyline/algorithms.h"
#include "test_util.h"

namespace sparkline {
namespace {

using ::sparkline::testing::Rows;
using ::sparkline::testing::RowStrings;

struct MatrixCase {
  const char* dataset;  // complete | incomplete
  size_t dims;
  bool distinct;
};

class ConfigMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(ConfigMatrix, AllConfigurationsAgreeWithBruteForce) {
  const auto& param = GetParam();
  const bool incomplete = std::string(param.dataset) == "incomplete";

  Session session;
  TablePtr table = datagen::GeneratePoints(
      "pts", 400, param.dims, datagen::PointDistribution::kAntiCorrelated,
      /*seed=*/1234, incomplete ? 0.2 : 0.0);
  ASSERT_OK(session.catalog()->RegisterTable(table));

  std::vector<std::string> items;
  for (size_t d = 0; d < param.dims; ++d) {
    items.push_back(StrCat("d", d, d % 2 == 0 ? " MIN" : " MAX"));
  }
  const std::string query =
      StrCat("SELECT * FROM pts SKYLINE OF ", param.distinct ? "DISTINCT " : "",
             JoinStrings(items, ", "));

  // Brute-force oracle straight from the table (column 0 is the id).
  std::vector<skyline::BoundDimension> oracle_dims;
  for (size_t d = 0; d < param.dims; ++d) {
    oracle_dims.push_back(skyline::BoundDimension{
        d + 1, d % 2 == 0 ? SkylineGoal::kMin : SkylineGoal::kMax});
  }
  skyline::SkylineOptions oracle_options;
  oracle_options.distinct = param.distinct;
  oracle_options.nulls = incomplete ? skyline::NullSemantics::kIncomplete
                                    : skyline::NullSemantics::kComplete;
  const std::vector<std::string> expected = RowStrings(
      skyline::BruteForceSkyline(table->rows(), oracle_dims, oracle_options));
  ASSERT_FALSE(expected.empty());

  // The kernel axis crosses SFS with its early-stop and sort-key knobs
  // (which only the SFS family consults); BNL and grid run once each.
  struct KernelConfig {
    const char* kernel;
    const char* early_stop;
    const char* sort_key;
  };
  const std::vector<KernelConfig> kernels = {
      {"bnl", "true", "sum"},          {"grid", "true", "sum"},
      {"sfs", "true", "sum"},          {"sfs", "true", "minmax"},
      {"sfs", "false", "sum"},         {"sfs", "false", "minmax"},
  };

  int combinations = 0;
  const std::vector<const char*> strategies =
      incomplete ? std::vector<const char*>{"auto", "incomplete"}
                 : std::vector<const char*>{"auto", "distributed",
                                            "non_distributed", "incomplete",
                                            "reference"};
  for (const char* strategy : strategies) {
    for (const KernelConfig& kernel : kernels) {
      for (const char* columnar : {"true", "false"}) {
        for (const char* exchange : {"true", "false"}) {
          for (const char* partitioning : {"asis", "roundrobin", "angle"}) {
            for (const char* executors : {"1", "3", "8"}) {
              // Two-phase pruning axes (broadcast filter × zone maps): both
              // phases claim bit-identical results, so they join the full
              // cross rather than getting their own narrower sweep.
              const std::pair<const char*, const char*> pruning_axis[] = {
                  {"true", "true"},
                  {"true", "false"},
                  {"false", "true"},
                  {"false", "false"}};
              for (const auto& pruning : pruning_axis) {
                ASSERT_OK(
                    session.SetConf("sparkline.skyline.strategy", strategy));
                ASSERT_OK(
                    session.SetConf("sparkline.skyline.kernel", kernel.kernel));
                ASSERT_OK(session.SetConf("sparkline.skyline.sfs.early_stop",
                                          kernel.early_stop));
                ASSERT_OK(session.SetConf("sparkline.skyline.sfs.sort_key",
                                          kernel.sort_key));
                ASSERT_OK(
                    session.SetConf("sparkline.skyline.columnar", columnar));
                ASSERT_OK(session.SetConf("sparkline.skyline.exchange.columnar",
                                          exchange));
                ASSERT_OK(session.SetConf("sparkline.skyline.partitioning",
                                          partitioning));
                ASSERT_OK(session.SetConf("sparkline.executors", executors));
                ASSERT_OK(session.SetConf("sparkline.skyline.broadcast_filter",
                                          pruning.first));
                ASSERT_OK(session.SetConf("sparkline.scan.zone_maps",
                                          pruning.second));
                auto rows = RowStrings(Rows(&session, query));
                ASSERT_EQ(expected, rows)
                    << "strategy=" << strategy << " kernel=" << kernel.kernel
                    << " early_stop=" << kernel.early_stop
                    << " sort_key=" << kernel.sort_key
                    << " columnar=" << columnar << " exchange=" << exchange
                    << " partitioning=" << partitioning
                    << " executors=" << executors
                    << " broadcast_filter=" << pruning.first
                    << " zone_maps=" << pruning.second;
                ++combinations;
              }
            }
          }
        }
      }
    }
  }
  EXPECT_GE(combinations, 2 * 6 * 2 * 2 * 3 * 3 * 4);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ConfigMatrix,
    ::testing::Values(MatrixCase{"complete", 2, false},
                      MatrixCase{"complete", 4, false},
                      MatrixCase{"complete", 3, true},
                      MatrixCase{"incomplete", 3, false},
                      MatrixCase{"incomplete", 3, true}));

// The round-based parallel incomplete global stage: sweeping
// sparkline.skyline.incomplete.parallel on/off (crossed with row/columnar
// and several executor counts, including one chunk per tuple) on NULL-heavy
// data must always reproduce the brute-force oracle — the rotation rounds
// may not change results under non-transitive dominance.
struct IncompleteParallelCase {
  size_t rows;
  size_t dims;
  bool distinct;
  double null_probability;
};

class IncompleteParallel
    : public ::testing::TestWithParam<IncompleteParallelCase> {};

TEST_P(IncompleteParallel, MatchesBruteForceOracle) {
  const auto& param = GetParam();
  Session session;
  TablePtr table = datagen::GeneratePoints(
      "pts", param.rows, param.dims, datagen::PointDistribution::kAntiCorrelated,
      /*seed=*/99, param.null_probability);
  ASSERT_OK(session.catalog()->RegisterTable(table));

  std::vector<std::string> items;
  std::vector<skyline::BoundDimension> oracle_dims;
  for (size_t d = 0; d < param.dims; ++d) {
    items.push_back(StrCat("d", d, d % 2 == 0 ? " MIN" : " MAX"));
    oracle_dims.push_back(skyline::BoundDimension{
        d + 1, d % 2 == 0 ? SkylineGoal::kMin : SkylineGoal::kMax});
  }
  const std::string query =
      StrCat("SELECT * FROM pts SKYLINE OF ", param.distinct ? "DISTINCT " : "",
             JoinStrings(items, ", "));

  skyline::SkylineOptions oracle_options;
  oracle_options.distinct = param.distinct;
  oracle_options.nulls = skyline::NullSemantics::kIncomplete;
  const std::vector<std::string> expected = RowStrings(
      skyline::BruteForceSkyline(table->rows(), oracle_dims, oracle_options));
  ASSERT_FALSE(expected.empty());

  ASSERT_OK(session.SetConf("sparkline.skyline.strategy", "incomplete"));
  // The executor sweep includes param.rows, which makes the global stage
  // split into one chunk per tuple (every candidate scan is a singleton and
  // all work happens in the validation rounds).
  const std::vector<std::string> executor_counts = {
      "1", "2", "3", "8", std::to_string(param.rows)};
  for (const char* parallel : {"true", "false"}) {
    for (const char* columnar : {"true", "false"}) {
      for (const char* exchange : {"true", "false"}) {
        for (const std::string& executors : executor_counts) {
          // The two-phase pruning flags must be inert here: zone-map
          // skipping and the broadcast filter are complete-dominance-only
          // optimizations and auto-disable under incomplete semantics.
          const std::pair<const char*, const char*> pruning_axis[] = {
              {"true", "true"}, {"false", "false"}};
          for (const auto& pruning : pruning_axis) {
            ASSERT_OK(session.SetConf("sparkline.skyline.incomplete.parallel",
                                      parallel));
            ASSERT_OK(session.SetConf("sparkline.skyline.columnar", columnar));
            ASSERT_OK(session.SetConf("sparkline.skyline.exchange.columnar",
                                      exchange));
            ASSERT_OK(session.SetConf("sparkline.executors", executors));
            ASSERT_OK(session.SetConf("sparkline.skyline.broadcast_filter",
                                      pruning.first));
            ASSERT_OK(
                session.SetConf("sparkline.scan.zone_maps", pruning.second));
            ASSERT_EQ(expected, RowStrings(Rows(&session, query)))
                << "parallel=" << parallel << " columnar=" << columnar
                << " exchange=" << exchange << " executors=" << executors
                << " broadcast_filter=" << pruning.first
                << " zone_maps=" << pruning.second;
          }
        }
      }
    }
  }
}

// Zone-map partition skipping is a complete-dominance optimization: under
// incomplete semantics (non-transitive dominance, NULL coordinates outside
// the min/max summary) it must auto-disable even with both pruning flags
// on. Pinned through QueryMetrics: no partition is ever skipped and no
// broadcast filter point is nominated, while the same flags on complete
// data do fire (guarding against the pin passing vacuously).
TEST(TwoPhasePruning, AutoDisablesUnderIncompleteDominance) {
  Session session;
  ASSERT_OK(session.catalog()->RegisterTable(datagen::GeneratePoints(
      "pts_null", 1200, 3, datagen::PointDistribution::kCorrelated, 7,
      /*null_probability=*/0.4)));
  ASSERT_OK(session.catalog()->RegisterTable(datagen::GeneratePoints(
      "pts_full", 1200, 3, datagen::PointDistribution::kCorrelated, 7,
      /*null_probability=*/0.0)));
  ASSERT_OK(session.SetConf("sparkline.executors", "8"));
  ASSERT_OK(session.SetConf("sparkline.skyline.broadcast_filter", "true"));
  ASSERT_OK(session.SetConf("sparkline.scan.zone_maps", "true"));

  auto metrics_for = [&](const char* strategy, const char* table) {
    SL_CHECK_OK(session.SetConf("sparkline.skyline.strategy", strategy));
    auto df = session.Sql(StrCat("SELECT * FROM ", table,
                                 " SKYLINE OF d0 MIN, d1 MIN, d2 MIN"));
    SL_CHECK(df.ok());
    auto r = df->Collect();
    SL_CHECK(r.ok()) << r.status().ToString();
    return r->metrics;
  };

  const QueryMetrics incomplete = metrics_for("incomplete", "pts_null");
  EXPECT_EQ(incomplete.partitions_skipped, 0);
  EXPECT_EQ(incomplete.broadcast_filter_points, 0);
  EXPECT_EQ(incomplete.rows_pruned_pre_gather, 0);

  // Control: the same flags on complete correlated data fire both phases
  // (correlated clusters give partitions strictly dominating corners).
  const QueryMetrics complete = metrics_for("distributed", "pts_full");
  EXPECT_GT(complete.broadcast_filter_points, 0);
}

INSTANTIATE_TEST_SUITE_P(
    NullHeavy, IncompleteParallel,
    ::testing::Values(IncompleteParallelCase{64, 3, false, 0.5},
                      IncompleteParallelCase{64, 3, true, 0.5},
                      IncompleteParallelCase{200, 4, false, 0.35},
                      IncompleteParallelCase{200, 2, true, 0.6}));

// The incomplete global stage must split into the round-based stages for
// multi-executor configs (visible as [candidates]/[validate]/[finalize]
// entries in operator_ms) and stay a single task with one executor or the
// flag off.
TEST(ParallelIncompleteGlobal, StageSplitsForMultipleExecutors) {
  Session session;
  ASSERT_OK(session.catalog()->RegisterTable(datagen::GeneratePoints(
      "pts", 1500, 3, datagen::PointDistribution::kAntiCorrelated, 11,
      /*null_probability=*/0.3)));
  ASSERT_OK(session.SetConf("sparkline.skyline.strategy", "incomplete"));
  const std::string query =
      "SELECT * FROM pts SKYLINE OF d0 MIN, d1 MAX, d2 MIN";

  auto metrics_for = [&](const char* execs, const char* parallel) {
    SL_CHECK_OK(session.SetConf("sparkline.executors", execs));
    SL_CHECK_OK(
        session.SetConf("sparkline.skyline.incomplete.parallel", parallel));
    auto df = session.Sql(query);
    SL_CHECK(df.ok());
    auto r = df->Collect();
    SL_CHECK(r.ok()) << r.status().ToString();
    return r->metrics;
  };

  const QueryMetrics multi = metrics_for("4", "true");
  EXPECT_EQ(multi.operator_ms.count("GlobalSkyline [incomplete]"), 0u)
      << "incomplete global stage still runs as a single task with 4 executors";
  EXPECT_EQ(multi.operator_ms.count("GlobalSkyline [incomplete] [candidates]"),
            1u);
  EXPECT_EQ(multi.operator_ms.count("GlobalSkyline [incomplete] [validate]"),
            1u);
  EXPECT_EQ(multi.operator_ms.count("GlobalSkyline [incomplete] [finalize]"),
            1u);

  const QueryMetrics single = metrics_for("1", "true");
  EXPECT_EQ(single.operator_ms.count("GlobalSkyline [incomplete]"), 1u);
  EXPECT_EQ(single.operator_ms.count("GlobalSkyline [incomplete] [candidates]"),
            0u);

  const QueryMetrics disabled = metrics_for("4", "false");
  EXPECT_EQ(disabled.operator_ms.count("GlobalSkyline [incomplete]"), 1u)
      << "flag off must restore the single-task fallback";
  EXPECT_EQ(
      disabled.operator_ms.count("GlobalSkyline [incomplete] [candidates]"),
      0u);
}

// The parallel partial-merge global stage (the tentpole of the columnar
// PR): with multiple executors the complete global skyline must run as a
// parallel partial stage plus a single-task merge — not as one single task.
TEST(ParallelGlobalMerge, GlobalStageSplitsForMultipleExecutors) {
  Session session;
  ASSERT_OK(session.catalog()->RegisterTable(datagen::GeneratePoints(
      "pts", 2000, 3, datagen::PointDistribution::kAntiCorrelated, 7)));
  ASSERT_OK(session.SetConf("sparkline.skyline.strategy", "distributed"));
  const std::string query =
      "SELECT * FROM pts SKYLINE OF d0 MIN, d1 MAX, d2 MIN";

  auto metrics_for = [&](const char* execs) {
    SL_CHECK_OK(session.SetConf("sparkline.executors", execs));
    auto df = session.Sql(query);
    SL_CHECK(df.ok());
    auto r = df->Collect();
    SL_CHECK(r.ok()) << r.status().ToString();
    return r->metrics;
  };

  const QueryMetrics multi = metrics_for("4");
  EXPECT_EQ(multi.operator_ms.count("GlobalSkyline [complete]"), 0u)
      << "global stage still runs as a single task with 4 executors";
  EXPECT_EQ(multi.operator_ms.count("GlobalSkyline [complete] [partial]"), 1u);
  EXPECT_EQ(multi.operator_ms.count("GlobalSkyline [complete] [merge]"), 1u);

  const QueryMetrics single = metrics_for("1");
  EXPECT_EQ(single.operator_ms.count("GlobalSkyline [complete]"), 1u);
  EXPECT_EQ(single.operator_ms.count("GlobalSkyline [complete] [partial]"), 0u);
}

// --- columnar exchange: build-once accounting -------------------------------

int64_t BuildsMatching(const QueryMetrics& m, const std::string& needle) {
  int64_t total = 0;
  for (const auto& [label, n] : m.matrix_builds) {
    if (label.find(needle) != std::string::npos) total += n;
  }
  return total;
}

QueryMetrics RunWithExchange(Session* session, const std::string& query,
                             const char* executors, const char* exchange) {
  SL_CHECK_OK(session->SetConf("sparkline.executors", executors));
  SL_CHECK_OK(
      session->SetConf("sparkline.skyline.exchange.columnar", exchange));
  auto df = session->Sql(query);
  SL_CHECK(df.ok());
  auto r = df->Collect();
  SL_CHECK(r.ok()) << r.status().ToString();
  return r->metrics;
}

// The tentpole invariant: with the columnar exchange on, a multi-executor
// complete plan projects each partition's DominanceMatrix exactly once (at
// the local stage) and no global stage — in particular "[merge]" — ever
// rebuilds; with it off, "[partial]" and "[merge]" each pay projections.
TEST(ColumnarExchange, CompletePlanBuildsEachPartitionOnce) {
  Session session;
  ASSERT_OK(session.catalog()->RegisterTable(datagen::GeneratePoints(
      "pts", 2000, 3, datagen::PointDistribution::kAntiCorrelated, 21)));
  ASSERT_OK(session.SetConf("sparkline.skyline.strategy", "distributed"));
  const std::string query =
      "SELECT * FROM pts SKYLINE OF d0 MIN, d1 MAX, d2 MIN";

  const QueryMetrics on = RunWithExchange(&session, query, "4", "true");
  EXPECT_EQ(BuildsMatching(on, "LocalSkyline"), 4)
      << "each of the 4 scan partitions must be projected exactly once";
  EXPECT_EQ(BuildsMatching(on, "GlobalSkyline"), 0)
      << "no global stage may re-project with the exchange on";
  EXPECT_EQ(on.matrix_builds.count("GlobalSkyline [complete] [merge]"), 0u)
      << "[merge] must report zero matrix rebuilds";
  EXPECT_GE(on.matrix_reuses.count("GlobalSkyline [complete]"), 1u)
      << "the global stage must record that it reused the shuffled matrix";
  EXPECT_GE(on.matrix_reuses.count("Exchange [AllTuples]"), 1u)
      << "the gather must record a block concat instead of a re-projection";
  EXPECT_GT(on.projection_ms, 0.0);

  const QueryMetrics off = RunWithExchange(&session, query, "4", "false");
  EXPECT_EQ(BuildsMatching(off, "LocalSkyline"), 4);
  EXPECT_EQ(off.matrix_builds.count("GlobalSkyline [complete] [partial]"), 1u)
      << "without the exchange every partial chunk re-projects";
  EXPECT_EQ(
      off.matrix_builds.at("GlobalSkyline [complete] [merge]"), 1)
      << "without the exchange the merge re-projects its whole input";
}

// Same invariant for the incomplete pipeline: the round-based global stage
// (candidates/validate/finalize) runs entirely on the matrix shipped by the
// exchange — the "[candidates]" projection pass of the row path disappears.
TEST(ColumnarExchange, IncompletePlanReusesShuffledMatrix) {
  Session session;
  ASSERT_OK(session.catalog()->RegisterTable(datagen::GeneratePoints(
      "pts", 1200, 3, datagen::PointDistribution::kAntiCorrelated, 31,
      /*null_probability=*/0.3)));
  ASSERT_OK(session.SetConf("sparkline.skyline.strategy", "incomplete"));
  const std::string query =
      "SELECT * FROM pts SKYLINE OF d0 MIN, d1 MAX, d2 MIN";

  const QueryMetrics on = RunWithExchange(&session, query, "4", "true");
  EXPECT_GT(BuildsMatching(on, "LocalSkyline"), 0);
  EXPECT_EQ(BuildsMatching(on, "GlobalSkyline"), 0)
      << "the incomplete global stages must reuse the shuffled matrix";
  EXPECT_GE(on.matrix_reuses.count("GlobalSkyline [incomplete]"), 1u);

  const QueryMetrics off = RunWithExchange(&session, query, "4", "false");
  EXPECT_EQ(
      off.matrix_builds.count("GlobalSkyline [incomplete] [candidates]"), 1u)
      << "without the exchange the global stage re-projects the gathered rows";
}

// A nested skyline under the non-distributed strategy feeds the inner
// skyline's single-partition output (a batch projected for the *inner*
// dimensions) directly into the outer global operator — which must detect
// the dimension mismatch and decode instead of reusing a matrix that
// encodes the wrong columns.
TEST(ColumnarExchange, NestedSkylineWithDifferentDimsDecodes) {
  Session session;
  ASSERT_OK(session.catalog()->RegisterTable(datagen::GeneratePoints(
      "pts", 600, 3, datagen::PointDistribution::kAntiCorrelated, 17)));
  ASSERT_OK(session.SetConf("sparkline.executors", "4"));
  const std::string nested =
      "SELECT * FROM (SELECT * FROM pts SKYLINE OF d0 MIN, d1 MAX) t "
      "SKYLINE OF d2 MIN, d1 MIN";

  ASSERT_OK(session.SetConf("sparkline.skyline.strategy", "non_distributed"));
  ASSERT_OK(session.SetConf("sparkline.skyline.exchange.columnar", "false"));
  const std::vector<std::string> expected = RowStrings(Rows(&session, nested));
  ASSERT_OK(session.SetConf("sparkline.skyline.exchange.columnar", "true"));
  EXPECT_EQ(expected, RowStrings(Rows(&session, nested)));

  ASSERT_OK(session.SetConf("sparkline.skyline.strategy", "distributed"));
  EXPECT_EQ(expected, RowStrings(Rows(&session, nested)));
}

// The root decode is the only row materialization on the exchange path: a
// plain skyline query must report decode time and serve exactly the same
// rows, and a query whose skyline feeds a row-consuming operator (ORDER BY)
// must fall back transparently.
TEST(ColumnarExchange, RootDecodeAndRowFallback) {
  Session session;
  ASSERT_OK(session.catalog()->RegisterTable(datagen::GeneratePoints(
      "pts", 800, 2, datagen::PointDistribution::kAntiCorrelated, 5)));
  ASSERT_OK(session.SetConf("sparkline.executors", "4"));

  const std::string plain = "SELECT * FROM pts SKYLINE OF d0 MIN, d1 MAX";
  const std::vector<std::string> expected = RowStrings(Rows(&session, plain));
  auto df = session.Sql(plain);
  ASSERT_TRUE(df.ok());
  auto result = df->Collect();
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->metrics.decode_ms, 0.0)
      << "a batched plan must decode (and time it) at the root";

  const std::string sorted =
      "SELECT * FROM pts SKYLINE OF d0 MIN, d1 MAX ORDER BY id";
  const std::vector<std::string> through_sort =
      RowStrings(Rows(&session, sorted));
  EXPECT_EQ(expected, through_sort)
      << "a row-consuming parent must see identical rows via the fallback";
}

// --- SFS order determinism across the exchange --------------------------------

std::vector<std::string> OrderedRowStrings(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const auto& r : rows) out.push_back(RowToString(r));
  return out;
}

// MergeByScore tie-break determinism, end to end: SFS output order is the
// global stable sort order, so equal-key rows coming from different
// partitions must reproduce the single-partition sequence exactly — the
// result must be bit-identical (order included) across executor counts,
// sort keys and early-stop settings. Low-cardinality values force many
// equal scores, equal min-keys and exact duplicate tuples.
TEST(SfsOrderDeterminism, ExchangeMergeReproducesSinglePartitionOrder) {
  std::vector<std::array<double, 3>> pts;
  for (int i = 0; i < 240; ++i) {
    pts.push_back({static_cast<double>(i), static_cast<double>((i * 7) % 5),
                   static_cast<double>((i * 11) % 5)});
  }
  Session session;
  ASSERT_OK(session.catalog()->RegisterTable(
      ::sparkline::testing::MakePointsTable("pts", pts)));
  ASSERT_OK(session.SetConf("sparkline.skyline.strategy", "distributed"));
  ASSERT_OK(session.SetConf("sparkline.skyline.kernel", "sfs"));

  for (const char* query :
       {"SELECT x, y FROM pts SKYLINE OF x MIN, y MIN",
        "SELECT x, y FROM pts SKYLINE OF DISTINCT x MIN, y MIN"}) {
    for (const char* sort_key : {"sum", "minmax"}) {
      for (const char* early_stop : {"true", "false"}) {
        ASSERT_OK(session.SetConf("sparkline.skyline.sfs.sort_key", sort_key));
        ASSERT_OK(
            session.SetConf("sparkline.skyline.sfs.early_stop", early_stop));
        ASSERT_OK(session.SetConf("sparkline.executors", "1"));
        const std::vector<std::string> reference =
            OrderedRowStrings(Rows(&session, query));
        ASSERT_FALSE(reference.empty());
        for (const char* executors : {"2", "4", "8"}) {
          ASSERT_OK(session.SetConf("sparkline.executors", executors));
          EXPECT_EQ(reference, OrderedRowStrings(Rows(&session, query)))
              << query << " sort_key=" << sort_key
              << " early_stop=" << early_stop << " executors=" << executors;
        }
      }
    }
  }
}

// --- SFS early termination: metrics and auto-disable --------------------------

// On correlated data the minC stop point must skip a large fraction of the
// input (acceptance bar: >30% of the table rows), visible through the
// sfs_rows_skipped / sfs_early_stops counters, without changing the result.
TEST(SfsEarlyStopEndToEnd, CorrelatedSkylineSkipsAndMatches) {
  Session session;
  ASSERT_OK(session.catalog()->RegisterTable(datagen::GeneratePoints(
      "pts", 4000, 3, datagen::PointDistribution::kCorrelated, 77)));
  ASSERT_OK(session.SetConf("sparkline.skyline.strategy", "distributed"));
  ASSERT_OK(session.SetConf("sparkline.skyline.kernel", "sfs"));
  ASSERT_OK(session.SetConf("sparkline.skyline.sfs.sort_key", "minmax"));
  ASSERT_OK(session.SetConf("sparkline.executors", "4"));
  const std::string query =
      "SELECT * FROM pts SKYLINE OF d0 MIN, d1 MIN, d2 MIN";

  auto run = [&](const char* early_stop) {
    SL_CHECK_OK(
        session.SetConf("sparkline.skyline.sfs.early_stop", early_stop));
    auto df = session.Sql(query);
    SL_CHECK(df.ok());
    auto r = df->Collect();
    SL_CHECK(r.ok()) << r.status().ToString();
    return *std::move(r);
  };

  const QueryResult off = run("false");
  EXPECT_EQ(off.metrics.sfs_rows_skipped, 0);
  EXPECT_EQ(off.metrics.sfs_early_stops, 0);

  const QueryResult on = run("true");
  EXPECT_GE(on.metrics.sfs_early_stops, 1);
  EXPECT_GT(on.metrics.sfs_rows_skipped, 4000 * 3 / 10)
      << "the stop point must skip >30% of a correlated table";
  EXPECT_LT(on.metrics.dominance_tests, off.metrics.dominance_tests)
      << "skipped rows must translate into fewer dominance tests";
  EXPECT_EQ(RowStrings(off.rows()), RowStrings(on.rows()));
}

// With NULLs in the skyline dimensions the stop is unsound and must
// auto-disable: the counters stay zero and results still match the oracle
// (the incomplete pipeline never runs SFS, and the columnar SFS pass
// refuses the stop whenever the matrix carries null bitmaps).
TEST(SfsEarlyStopEndToEnd, AutoDisabledOnIncompleteData) {
  Session session;
  ASSERT_OK(session.catalog()->RegisterTable(datagen::GeneratePoints(
      "pts", 800, 3, datagen::PointDistribution::kCorrelated, 78,
      /*null_probability=*/0.3)));
  ASSERT_OK(session.SetConf("sparkline.skyline.kernel", "sfs"));
  ASSERT_OK(session.SetConf("sparkline.skyline.sfs.early_stop", "true"));
  ASSERT_OK(session.SetConf("sparkline.skyline.sfs.sort_key", "minmax"));
  ASSERT_OK(session.SetConf("sparkline.executors", "4"));

  auto df = session.Sql("SELECT * FROM pts SKYLINE OF d0 MIN, d1 MIN, d2 MIN");
  ASSERT_TRUE(df.ok());
  auto result = df->Collect();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->metrics.sfs_rows_skipped, 0);
  EXPECT_EQ(result->metrics.sfs_early_stops, 0);

  std::vector<skyline::BoundDimension> oracle_dims{
      {1, SkylineGoal::kMin}, {2, SkylineGoal::kMin}, {3, SkylineGoal::kMin}};
  skyline::SkylineOptions oracle_options;
  oracle_options.nulls = skyline::NullSemantics::kIncomplete;
  EXPECT_EQ(RowStrings(result->rows()),
            RowStrings(skyline::BruteForceSkyline(
                ::sparkline::testing::Rows(&session, "SELECT * FROM pts"),
                oracle_dims, oracle_options)));
}

}  // namespace
}  // namespace sparkline
