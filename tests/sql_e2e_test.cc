// End-to-end SQL tests, centered on the paper's correctness verification
// (section 5.9): the integrated SKYLINE OF result must equal the equivalent
// plain-SQL NOT EXISTS query, for every algorithm, across dimension counts
// and data distributions.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/string_util.h"
#include "datagen/datagen.h"
#include "skyline/algorithms.h"
#include "test_util.h"

namespace sparkline {
namespace {

using ::sparkline::testing::Rows;

/// Builds the Listing-4 rewriting for the first `dims` d0..d{n-1} MIN
/// dimensions of a GeneratePoints table.
std::string ReferenceSql(const std::string& table, size_t dims) {
  std::vector<std::string> cols, nonstrict, strict;
  for (size_t d = 0; d < dims; ++d) {
    const std::string c = StrCat("d", d);
    cols.push_back(c);
    nonstrict.push_back(StrCat("i.", c, " <= o.", c));
    strict.push_back(StrCat("i.", c, " < o.", c));
  }
  return StrCat("SELECT id, ", JoinStrings(cols, ", "), " FROM ", table,
                " AS o WHERE NOT EXISTS(SELECT * FROM ", table, " AS i WHERE ",
                JoinStrings(nonstrict, " AND "), " AND (",
                JoinStrings(strict, " OR "), "))");
}

std::string SkylineSql(const std::string& table, size_t dims, bool complete) {
  std::vector<std::string> cols, items;
  for (size_t d = 0; d < dims; ++d) {
    cols.push_back(StrCat("d", d));
    items.push_back(StrCat("d", d, " MIN"));
  }
  return StrCat("SELECT id, ", JoinStrings(cols, ", "), " FROM ", table,
                " SKYLINE OF ", complete ? "COMPLETE " : "",
                JoinStrings(items, ", "));
}

struct E2eParam {
  size_t dims;
  datagen::PointDistribution dist;
  size_t rows;
  uint64_t seed;
};

class SkylineVsReference : public ::testing::TestWithParam<E2eParam> {};

TEST_P(SkylineVsReference, AllStrategiesMatchThePlainSqlRewriting) {
  const auto& p = GetParam();
  Session session;
  ASSERT_OK(session.SetConf("sparkline.executors", "4"));
  ASSERT_OK(session.catalog()->RegisterTable(
      datagen::GeneratePoints("pts", p.rows, p.dims, p.dist, p.seed)));

  auto reference = Rows(&session, ReferenceSql("pts", p.dims));
  for (const char* strategy :
       {"auto", "distributed", "non_distributed", "incomplete"}) {
    ASSERT_OK(session.SetConf("sparkline.skyline.strategy", strategy));
    auto rows = Rows(&session, SkylineSql("pts", p.dims, false));
    EXPECT_SAME_ROWS(reference, rows) << "strategy " << strategy;
  }
  // The mechanized reference rewriting must agree too.
  ASSERT_OK(session.SetConf("sparkline.skyline.strategy", "reference"));
  auto rewritten = Rows(&session, SkylineSql("pts", p.dims, false));
  EXPECT_SAME_ROWS(reference, rewritten);
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, SkylineVsReference,
    ::testing::Values(
        E2eParam{1, datagen::PointDistribution::kIndependent, 300, 1},
        E2eParam{2, datagen::PointDistribution::kIndependent, 400, 2},
        E2eParam{2, datagen::PointDistribution::kCorrelated, 400, 3},
        E2eParam{2, datagen::PointDistribution::kAntiCorrelated, 200, 4},
        E2eParam{3, datagen::PointDistribution::kIndependent, 300, 5},
        E2eParam{3, datagen::PointDistribution::kAntiCorrelated, 150, 6},
        E2eParam{4, datagen::PointDistribution::kCorrelated, 300, 7},
        E2eParam{5, datagen::PointDistribution::kIndependent, 200, 8}));

class IncompleteOracle : public ::testing::TestWithParam<E2eParam> {};

TEST_P(IncompleteOracle, AutoStrategyMatchesBruteForceOnIncompleteData) {
  // On incomplete data the plain-SQL rewriting computes *different*
  // semantics (NULL comparisons are UNKNOWN, so null-restricted dominance
  // never fires); the integrated algorithm must instead match the paper's
  // Definition via the brute-force oracle.
  const auto& p = GetParam();
  Session session;
  ASSERT_OK(session.SetConf("sparkline.executors", "4"));
  auto table = datagen::GeneratePoints("pts", p.rows, p.dims, p.dist, p.seed,
                                       /*null_rate=*/0.25);
  ASSERT_OK(session.catalog()->RegisterTable(table));

  auto rows = Rows(&session, SkylineSql("pts", p.dims, false));

  std::vector<skyline::BoundDimension> dims;
  for (size_t d = 0; d < p.dims; ++d) {
    dims.push_back({d + 1, SkylineGoal::kMin});  // column 0 is the id
  }
  skyline::SkylineOptions opts;
  opts.nulls = skyline::NullSemantics::kIncomplete;
  auto oracle = skyline::BruteForceSkyline(table->rows(), dims, opts);
  EXPECT_SAME_ROWS(rows, oracle);
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, IncompleteOracle,
    ::testing::Values(
        E2eParam{2, datagen::PointDistribution::kIndependent, 300, 11},
        E2eParam{3, datagen::PointDistribution::kIndependent, 250, 12},
        E2eParam{3, datagen::PointDistribution::kAntiCorrelated, 150, 13},
        E2eParam{4, datagen::PointDistribution::kIndependent, 200, 14}));

TEST(SqlE2eTest, SkylineDistinctCollapsesDuplicates) {
  Session session;
  Schema s({Field{"a", DataType::Int64(), false},
            Field{"b", DataType::Int64(), false}});
  auto t = std::make_shared<Table>("dup", s);
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK(t->AppendRow({Value::Int64(1), Value::Int64(1)}));
  }
  ASSERT_OK(t->AppendRow({Value::Int64(0), Value::Int64(2)}));
  ASSERT_OK(session.catalog()->RegisterTable(t));
  auto plain = Rows(&session, "SELECT * FROM dup SKYLINE OF a MIN, b MIN");
  EXPECT_EQ(plain.size(), 4u);  // duplicates are all in the skyline
  auto distinct =
      Rows(&session, "SELECT * FROM dup SKYLINE OF DISTINCT a MIN, b MIN");
  EXPECT_EQ(distinct.size(), 2u);
}

TEST(SqlE2eTest, SkylineOverFilteredInput) {
  Session session;
  ASSERT_OK(session.catalog()->RegisterTable(datagen::GeneratePoints(
      "pts", 500, 2, datagen::PointDistribution::kIndependent, 21)));
  auto rows = Rows(&session,
                   "SELECT id, d0, d1 FROM pts WHERE d0 > 0.5 "
                   "SKYLINE OF d0 MIN, d1 MIN");
  for (const auto& r : rows) EXPECT_GT(r[1].double_value(), 0.5);
  // Skyline of the filtered set computed independently.
  auto all = Rows(&session, "SELECT id, d0, d1 FROM pts WHERE d0 > 0.5");
  std::vector<skyline::BoundDimension> dims{{1, SkylineGoal::kMin},
                                            {2, SkylineGoal::kMin}};
  auto oracle = skyline::BruteForceSkyline(all, dims, {});
  EXPECT_SAME_ROWS(rows, oracle);
}

TEST(SqlE2eTest, SkylineWithMaxAndMinGoals) {
  Session session;
  ASSERT_OK(session.catalog()->RegisterTable(
      datagen::GeneratePoints("pts", 400, 2,
                              datagen::PointDistribution::kIndependent, 31)));
  auto rows = Rows(&session,
                   "SELECT id, d0, d1 FROM pts SKYLINE OF d0 MIN, d1 MAX");
  auto all = Rows(&session, "SELECT id, d0, d1 FROM pts");
  std::vector<skyline::BoundDimension> dims{{1, SkylineGoal::kMin},
                                            {2, SkylineGoal::kMax}};
  EXPECT_SAME_ROWS(rows, skyline::BruteForceSkyline(all, dims, {}));
}

TEST(SqlE2eTest, SkylineWithDiffGoal) {
  Session session;
  Schema s({Field{"grp", DataType::Int64(), false},
            Field{"x", DataType::Double(), false}});
  auto t = std::make_shared<Table>("g", s);
  for (int grp = 0; grp < 3; ++grp) {
    for (int x = 0; x < 4; ++x) {
      ASSERT_OK(t->AppendRow({Value::Int64(grp), Value::Double(x)}));
    }
  }
  ASSERT_OK(session.catalog()->RegisterTable(t));
  auto rows = Rows(&session, "SELECT * FROM g SKYLINE OF grp DIFF, x MIN");
  // One minimum per DIFF group.
  EXPECT_EQ(rows.size(), 3u);
  for (const auto& r : rows) EXPECT_DOUBLE_EQ(r[1].double_value(), 0.0);
}

TEST(SqlE2eTest, SkylineOnAggregatedData) {
  Session session;
  Schema s({Field{"city", DataType::String(), false},
            Field{"price", DataType::Double(), false},
            Field{"rating", DataType::Double(), false}});
  auto t = std::make_shared<Table>("hotels", s);
  const std::vector<std::tuple<const char*, double, double>> data = {
      {"a", 100, 4.0}, {"a", 200, 5.0}, {"b", 50, 3.0},
      {"b", 150, 4.5}, {"c", 300, 4.8}, {"c", 100, 3.5}};
  for (auto& [c, p, r] : data) {
    ASSERT_OK(t->AppendRow(
        {Value::String(c), Value::Double(p), Value::Double(r)}));
  }
  ASSERT_OK(session.catalog()->RegisterTable(t));
  // Skyline over per-city aggregates: min price MIN, avg rating MAX.
  auto rows = Rows(&session,
                   "SELECT city, min(price) AS cheapest FROM hotels "
                   "GROUP BY city "
                   "SKYLINE OF cheapest MIN, avg(rating) MAX ORDER BY city");
  // a: (100, 4.5), b: (50, 3.75), c: (100, 4.15).
  // b dominates nothing (higher avg loses); a vs c: equal price, a has the
  // better average -> c is dominated.
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0].string_value(), "a");
  EXPECT_EQ(rows[1][0].string_value(), "b");
}

TEST(SqlE2eTest, OrderByAfterSkylineSortsResult) {
  Session session;
  ASSERT_OK(session.catalog()->RegisterTable(datagen::GeneratePoints(
      "pts", 200, 2, datagen::PointDistribution::kAntiCorrelated, 41)));
  auto rows = Rows(&session,
                   "SELECT id, d0, d1 FROM pts SKYLINE OF d0 MIN, d1 MIN "
                   "ORDER BY d0");
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(rows[i - 1][1].double_value(), rows[i][1].double_value());
  }
}

TEST(SqlE2eTest, LimitAfterSkyline) {
  Session session;
  ASSERT_OK(session.catalog()->RegisterTable(datagen::GeneratePoints(
      "pts", 200, 2, datagen::PointDistribution::kAntiCorrelated, 51)));
  auto rows = Rows(&session,
                   "SELECT id FROM pts SKYLINE OF d0 MIN, d1 MIN "
                   "ORDER BY d0 LIMIT 3");
  EXPECT_LE(rows.size(), 3u);
}

TEST(SqlE2eTest, EquivalenceOnAirbnbShapedData) {
  // The paper's section 5.9 check on realistic data: 4 dimensions of the
  // Airbnb schema, integrated vs. rewritten.
  Session session;
  datagen::AirbnbOptions opts;
  opts.num_rows = 800;
  opts.table_name = "listings";
  ASSERT_OK(session.catalog()->RegisterTable(datagen::GenerateAirbnb(opts)));
  auto native = Rows(&session,
                     "SELECT id, price, accommodates FROM listings "
                     "SKYLINE OF price MIN, accommodates MAX");
  auto reference = Rows(
      &session,
      "SELECT id, price, accommodates FROM listings o WHERE NOT EXISTS("
      "SELECT * FROM listings i WHERE i.price <= o.price AND "
      "i.accommodates >= o.accommodates AND "
      "(i.price < o.price OR i.accommodates > o.accommodates))");
  EXPECT_SAME_ROWS(native, reference);
}

TEST(SqlE2eTest, SingleDimRewritePreservesSemantics) {
  Session session;
  ASSERT_OK(session.catalog()->RegisterTable(datagen::GeneratePoints(
      "pts", 500, 1, datagen::PointDistribution::kIndependent, 61)));
  auto with = Rows(&session, "SELECT id, d0 FROM pts SKYLINE OF d0 MIN");
  ASSERT_OK(session.SetConf("sparkline.optimizer.singleDimRewrite", "false"));
  auto without = Rows(&session, "SELECT id, d0 FROM pts SKYLINE OF d0 MIN");
  EXPECT_SAME_ROWS(with, without);
}

TEST(SqlE2eTest, JoinPushdownPreservesSemantics) {
  Session session;
  // listings -> hosts FK so the pushdown can fire.
  Schema hosts_schema({Field{"id", DataType::Int64(), false},
                       Field{"since", DataType::Int64(), false}});
  auto hosts = std::make_shared<Table>("hosts", hosts_schema);
  hosts->constraints().primary_key = {"id"};
  for (int i = 1; i <= 20; ++i) {
    ASSERT_OK(hosts->AppendRow({Value::Int64(i), Value::Int64(2000 + i)}));
  }
  ASSERT_OK(session.catalog()->RegisterTable(hosts));

  Schema ls({Field{"id", DataType::Int64(), false},
             Field{"price", DataType::Double(), false},
             Field{"rating", DataType::Double(), false},
             Field{"host", DataType::Int64(), false}});
  auto listings = std::make_shared<Table>("listings", ls);
  listings->constraints().foreign_keys.push_back(TableConstraints::ForeignKey{
      {"host"}, "hosts", {"id"}, true});
  Rng rng(71);
  for (int i = 0; i < 400; ++i) {
    ASSERT_OK(listings->AppendRow(
        {Value::Int64(i), Value::Double(rng.Uniform(10, 500)),
         Value::Double(rng.Uniform(1, 5)), Value::Int64(rng.UniformInt(1, 20))}));
  }
  ASSERT_OK(session.catalog()->RegisterTable(listings));

  const std::string q =
      "SELECT l.price, l.rating, h.since FROM listings l "
      "JOIN hosts h ON l.host = h.id "
      "SKYLINE OF l.price MIN, l.rating MAX";
  auto with = Rows(&session, q);
  ASSERT_OK(
      session.SetConf("sparkline.optimizer.skylineJoinPushdown", "false"));
  auto without = Rows(&session, q);
  EXPECT_SAME_ROWS(with, without);
}

TEST(SqlE2eTest, ListingOneHotelQueryVerbatim) {
  // Listing 1 of the paper, byte-for-byte modulo whitespace.
  Session session;
  Schema s({Field{"price", DataType::Double(), false},
            Field{"user_rating", DataType::Double(), false}});
  auto t = std::make_shared<Table>("hotels", s);
  ASSERT_OK(t->AppendRow({Value::Double(100), Value::Double(4.0)}));
  ASSERT_OK(t->AppendRow({Value::Double(80), Value::Double(4.5)}));
  ASSERT_OK(t->AppendRow({Value::Double(120), Value::Double(3.0)}));
  ASSERT_OK(session.catalog()->RegisterTable(t));
  auto rows = Rows(&session,
                   "SELECT price, user_rating FROM hotels AS o WHERE "
                   "NOT EXISTS( SELECT * FROM hotels AS i WHERE "
                   "i.price <= o.price AND i.user_rating >= o.user_rating "
                   "AND ( i.price < o.price OR i.user_rating > o.user_rating "
                   ") )");
  EXPECT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0][0].double_value(), 80);
}

TEST(SqlE2eTest, ExplainAnalyzeRendersAnnotatedPlan) {
  Session session;
  TablePtr table = datagen::GeneratePoints(
      "eapts", 300, 3, datagen::PointDistribution::kIndependent, 11);
  ASSERT_OK(session.catalog()->RegisterTable(table));
  ASSERT_OK(session.SetConf("sparkline.skyline.strategy", "distributed"));

  auto df = session.Sql(
      "EXPLAIN ANALYZE SELECT id, d0, d1, d2 FROM eapts "
      "SKYLINE OF d0 MIN, d1 MIN, d2 MIN");
  ASSERT_TRUE(df.ok()) << df.status().ToString();
  auto result = df->Collect();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // One row, one "plan" string column.
  ASSERT_EQ(result->attrs.size(), 1u);
  EXPECT_EQ(result->attrs[0].name, "plan");
  ASSERT_EQ(result->rows().size(), 1u);
  const std::string text = result->rows()[0][0].ToString();
  EXPECT_NE(text.find("== Physical Plan (analyzed) =="), std::string::npos);
  EXPECT_NE(text.find("== Stage breakdown =="), std::string::npos);
  EXPECT_NE(text.find("== Query metrics =="), std::string::npos);
  EXPECT_NE(text.find("Skyline"), std::string::npos) << text;
  EXPECT_NE(text.find("Scan eapts"), std::string::npos) << text;

  // The per-stage latencies must sum (exactly: both sides are written by
  // AddStageTime) to the simulated critical-path total.
  double stage_sum = 0;
  for (const auto& [label, ms] : result->metrics.operator_ms) stage_sum += ms;
  EXPECT_NEAR(stage_sum, result->metrics.simulated_ms, 1e-6);
}

TEST(SqlE2eTest, ExplainAnalyzeBypassesTheResultCache) {
  Session session;
  ASSERT_OK(session.SetConf("sparkline.cache.enabled", "true"));
  ASSERT_OK(session.catalog()->RegisterTable(datagen::GeneratePoints(
      "eacache", 100, 2, datagen::PointDistribution::kIndependent, 3)));
  const std::string q =
      "EXPLAIN ANALYZE SELECT id, d0, d1 FROM eacache SKYLINE OF d0 MIN, "
      "d1 MIN";
  for (int i = 0; i < 2; ++i) {
    auto df = session.Sql(q);
    ASSERT_TRUE(df.ok()) << df.status().ToString();
    auto result = df->Collect();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    // Always re-executed: the annotations ARE the point of the statement.
    EXPECT_FALSE(result->metrics.cache_hit) << "iteration " << i;
    EXPECT_GT(result->metrics.simulated_ms, 0.0);
  }
}

}  // namespace
}  // namespace sparkline
