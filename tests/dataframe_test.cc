// Tests for the DataFrame API (paper section 5.8): parity with SQL and the
// smin/smax/sdiff skyline builders.
#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "test_util.h"

namespace sparkline {
namespace {

using ::sparkline::testing::Rows;

class DataFrameTest : public ::testing::Test {
 protected:
  void SetUp() override {
    session_ = std::make_unique<Session>();
    ASSERT_OK(session_->catalog()->RegisterTable(datagen::GeneratePoints(
        "pts", 300, 2, datagen::PointDistribution::kIndependent, 17)));
  }

  std::unique_ptr<Session> session_;
};

TEST_F(DataFrameTest, TableAndSchema) {
  ASSERT_OK_AND_ASSIGN(DataFrame df, session_->Table("pts"));
  EXPECT_EQ(df.schema().num_fields(), 3u);
  EXPECT_EQ(df.schema().field(0).name, "id");
}

TEST_F(DataFrameTest, UnknownTableFails) {
  EXPECT_FALSE(session_->Table("nope").ok());
}

TEST_F(DataFrameTest, SelectWhereParity) {
  ASSERT_OK_AND_ASSIGN(DataFrame df, session_->Table("pts"));
  ASSERT_OK_AND_ASSIGN(DataFrame filtered, df.Where(col("d0") < lit(0.5)));
  ASSERT_OK_AND_ASSIGN(DataFrame selected,
                       filtered.Select({col("id"), col("d1")}));
  ASSERT_OK_AND_ASSIGN(QueryResult api, selected.Collect());
  auto sql = Rows(session_.get(), "SELECT id, d1 FROM pts WHERE d0 < 0.5");
  EXPECT_SAME_ROWS(api.rows(), sql);
}

TEST_F(DataFrameTest, WhereFromString) {
  ASSERT_OK_AND_ASSIGN(DataFrame df, session_->Table("pts"));
  ASSERT_OK_AND_ASSIGN(DataFrame filtered, df.Where("d0 < 0.25 AND d1 < 0.5"));
  ASSERT_OK_AND_ASSIGN(int64_t n, filtered.Count());
  auto sql = Rows(session_.get(),
                  "SELECT * FROM pts WHERE d0 < 0.25 AND d1 < 0.5");
  EXPECT_EQ(static_cast<size_t>(n), sql.size());
}

TEST_F(DataFrameTest, SkylineWithSminSmax) {
  ASSERT_OK_AND_ASSIGN(DataFrame df, session_->Table("pts"));
  ASSERT_OK_AND_ASSIGN(DataFrame sky,
                       df.Skyline({smin(col("d0")), smax(col("d1"))}));
  ASSERT_OK_AND_ASSIGN(QueryResult api, sky.Collect());
  auto sql =
      Rows(session_.get(), "SELECT * FROM pts SKYLINE OF d0 MIN, d1 MAX");
  EXPECT_SAME_ROWS(api.rows(), sql);
}

TEST_F(DataFrameTest, SkylineFromNameGoalPairs) {
  ASSERT_OK_AND_ASSIGN(DataFrame df, session_->Table("pts"));
  ASSERT_OK_AND_ASSIGN(
      DataFrame sky,
      df.Skyline({{"d0", SkylineGoal::kMin}, {"d1", SkylineGoal::kMin}}));
  ASSERT_OK_AND_ASSIGN(QueryResult api, sky.Collect());
  auto sql =
      Rows(session_.get(), "SELECT * FROM pts SKYLINE OF d0 MIN, d1 MIN");
  EXPECT_SAME_ROWS(api.rows(), sql);
}

TEST_F(DataFrameTest, SkylineRejectsPlainColumns) {
  ASSERT_OK_AND_ASSIGN(DataFrame df, session_->Table("pts"));
  auto r = df.Skyline({col("d0")});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("smin"), std::string::npos);
}

TEST_F(DataFrameTest, SkylineDistinctCompleteFlags) {
  ASSERT_OK_AND_ASSIGN(DataFrame df, session_->Table("pts"));
  ASSERT_OK_AND_ASSIGN(DataFrame sky,
                       df.Skyline({smin(col("d0"))}, /*distinct=*/true,
                                  /*complete=*/true));
  bool found = false;
  LogicalPlan::Foreach(sky.plan(), [&](const LogicalPlanPtr& n) {
    if (n->kind() == PlanKind::kSkyline) {
      const auto& s = static_cast<const SkylineNode&>(*n);
      EXPECT_TRUE(s.distinct());
      EXPECT_TRUE(s.complete());
      found = true;
    }
  });
  EXPECT_TRUE(found);
}

TEST_F(DataFrameTest, AggParity) {
  ASSERT_OK_AND_ASSIGN(DataFrame df, session_->Table("pts"));
  ASSERT_OK_AND_ASSIGN(
      DataFrame agg,
      df.Agg({}, {Count(col("id")).As("n"), Min(col("d0")).As("lo")}));
  ASSERT_OK_AND_ASSIGN(QueryResult api, agg.Collect());
  auto sql =
      Rows(session_.get(), "SELECT count(id) AS n, min(d0) AS lo FROM pts");
  EXPECT_SAME_ROWS(api.rows(), sql);
}

TEST_F(DataFrameTest, GroupedAggParity) {
  Schema s({Field{"g", DataType::Int64(), false},
            Field{"v", DataType::Double(), false}});
  auto t = std::make_shared<Table>("gv", s);
  for (int i = 0; i < 30; ++i) {
    ASSERT_OK(t->AppendRow({Value::Int64(i % 3), Value::Double(i)}));
  }
  ASSERT_OK(session_->catalog()->RegisterTable(t));
  ASSERT_OK_AND_ASSIGN(DataFrame df, session_->Table("gv"));
  ASSERT_OK_AND_ASSIGN(DataFrame agg,
                       df.Agg({col("g")}, {Sum(col("v")).As("total")}));
  ASSERT_OK_AND_ASSIGN(QueryResult api, agg.Collect());
  auto sql = Rows(session_.get(),
                  "SELECT g, sum(v) AS total FROM gv GROUP BY g");
  EXPECT_SAME_ROWS(api.rows(), sql);
}

TEST_F(DataFrameTest, JoinParity) {
  Schema s({Field{"id", DataType::Int64(), false},
            Field{"tag", DataType::String(), false}});
  auto t = std::make_shared<Table>("tags", s);
  for (int i = 0; i < 100; i += 2) {
    ASSERT_OK(t->AppendRow({Value::Int64(i), Value::String("even")}));
  }
  ASSERT_OK(session_->catalog()->RegisterTable(t));
  ASSERT_OK_AND_ASSIGN(DataFrame pts, session_->Table("pts"));
  ASSERT_OK_AND_ASSIGN(DataFrame tags, session_->Table("tags"));
  ASSERT_OK_AND_ASSIGN(DataFrame joined,
                       pts.Join(tags, {"id"}, "inner"));
  ASSERT_OK_AND_ASSIGN(QueryResult api, joined.Collect());
  auto sql = Rows(session_.get(), "SELECT * FROM pts JOIN tags USING (id)");
  EXPECT_SAME_ROWS(api.rows(), sql);
}

TEST_F(DataFrameTest, OrderByLimitDistinct) {
  ASSERT_OK_AND_ASSIGN(DataFrame df, session_->Table("pts"));
  ASSERT_OK_AND_ASSIGN(DataFrame sorted,
                       df.OrderBy({col("d0").Desc()}));
  ASSERT_OK_AND_ASSIGN(DataFrame limited, sorted.Limit(5));
  ASSERT_OK_AND_ASSIGN(QueryResult api, limited.Collect());
  EXPECT_EQ(api.num_rows(), 5u);
  for (size_t i = 1; i < api.rows().size(); ++i) {
    EXPECT_GE(api.rows()[i - 1][1].double_value(),
              api.rows()[i][1].double_value());
  }
  ASSERT_OK_AND_ASSIGN(DataFrame sel, df.Select({col("id")}));
  ASSERT_OK_AND_ASSIGN(DataFrame distinct, sel.Distinct());
  ASSERT_OK_AND_ASSIGN(int64_t n, distinct.Count());
  EXPECT_EQ(n, 300);
}

TEST_F(DataFrameTest, CreateDataFrameFromRows) {
  Schema s({Field{"a", DataType::Int64(), false}});
  ASSERT_OK_AND_ASSIGN(
      DataFrame df,
      session_->CreateDataFrame(s, {{Value::Int64(1)}, {Value::Int64(2)}}));
  ASSERT_OK_AND_ASSIGN(int64_t n, df.Count());
  EXPECT_EQ(n, 2);
}

TEST_F(DataFrameTest, ExplainShowsAllStages) {
  ASSERT_OK_AND_ASSIGN(DataFrame df, session_->Table("pts"));
  ASSERT_OK_AND_ASSIGN(DataFrame sky,
                       df.Skyline({smin(col("d0")), smin(col("d1"))}));
  ASSERT_OK_AND_ASSIGN(ExplainInfo info, sky.Explain());
  EXPECT_NE(info.analyzed.find("Skyline"), std::string::npos);
  EXPECT_NE(info.physical.find("LocalSkyline"), std::string::npos);
  EXPECT_NE(info.ToString().find("Physical Plan"), std::string::npos);
}

TEST_F(DataFrameTest, ColumnOperatorsCompose) {
  ASSERT_OK_AND_ASSIGN(DataFrame df, session_->Table("pts"));
  ASSERT_OK_AND_ASSIGN(
      DataFrame f,
      df.Where((col("d0") + col("d1") < lit(0.4)) && col("d0").IsNotNull()));
  ASSERT_OK_AND_ASSIGN(QueryResult r, f.Collect());
  for (const auto& row : r.rows()) {
    EXPECT_LT(row[1].double_value() + row[2].double_value(), 0.4);
  }
}

TEST_F(DataFrameTest, EagerAnalysisSurfacesErrors) {
  ASSERT_OK_AND_ASSIGN(DataFrame df, session_->Table("pts"));
  EXPECT_FALSE(df.Select({col("nope")}).ok());
  EXPECT_FALSE(df.Where(col("d0") < lit("text")).ok());
}

}  // namespace
}  // namespace sparkline
