// Edge cases and failure injection across the whole stack.
#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "skyline/algorithms.h"
#include "test_util.h"

namespace sparkline {
namespace {

using ::sparkline::testing::Rows;

TEST(EdgeCaseTest, SkylineOfEmptyTable) {
  Session session;
  Schema s({Field{"a", DataType::Double(), false}});
  ASSERT_OK(session.catalog()->RegisterTable(std::make_shared<Table>("e", s)));
  auto rows = Rows(&session, "SELECT * FROM e SKYLINE OF a MIN");
  EXPECT_TRUE(rows.empty());
}

TEST(EdgeCaseTest, SkylineOfSingleRow) {
  Session session;
  Schema s({Field{"a", DataType::Double(), false}});
  auto t = std::make_shared<Table>("one", s);
  ASSERT_OK(t->AppendRow({Value::Double(1)}));
  ASSERT_OK(session.catalog()->RegisterTable(t));
  EXPECT_EQ(Rows(&session, "SELECT * FROM one SKYLINE OF a MIN").size(), 1u);
}

TEST(EdgeCaseTest, AllRowsEqualAreAllInSkyline) {
  Session session;
  Schema s({Field{"a", DataType::Int64(), false},
            Field{"b", DataType::Int64(), false}});
  auto t = std::make_shared<Table>("eq", s);
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(t->AppendRow({Value::Int64(7), Value::Int64(7)}));
  }
  ASSERT_OK(session.catalog()->RegisterTable(t));
  EXPECT_EQ(Rows(&session, "SELECT * FROM eq SKYLINE OF a MIN, b MAX").size(),
            10u);
  EXPECT_EQ(
      Rows(&session, "SELECT * FROM eq SKYLINE OF DISTINCT a MIN, b MAX")
          .size(),
      1u);
}

TEST(EdgeCaseTest, AllNullDimensionRowsSurvive) {
  // A tuple that is NULL in every skyline dimension is incomparable to
  // everything under the incomplete semantics, hence in the skyline.
  Session session;
  Schema s({Field{"id", DataType::Int64(), false},
            Field{"a", DataType::Double(), true}});
  auto t = std::make_shared<Table>("n", s);
  ASSERT_OK(t->AppendRow({Value::Int64(1), Value::Double(5)}));
  ASSERT_OK(t->AppendRow({Value::Int64(2), Value::Null(DataType::Double())}));
  ASSERT_OK(t->AppendRow({Value::Int64(3), Value::Double(1)}));
  ASSERT_OK(session.catalog()->RegisterTable(t));
  auto rows = Rows(&session, "SELECT id FROM n SKYLINE OF a MIN");
  // id=3 (minimum) and id=2 (all-null) survive; id=1 is dominated.
  ASSERT_EQ(rows.size(), 2u);
}

TEST(EdgeCaseTest, BooleanSkylineDimension) {
  Session session;
  Schema s({Field{"id", DataType::Int64(), false},
            Field{"flag", DataType::Bool(), false}});
  auto t = std::make_shared<Table>("b", s);
  ASSERT_OK(t->AppendRow({Value::Int64(1), Value::Bool(false)}));
  ASSERT_OK(t->AppendRow({Value::Int64(2), Value::Bool(true)}));
  ASSERT_OK(session.catalog()->RegisterTable(t));
  auto rows = Rows(&session, "SELECT id FROM b SKYLINE OF flag MAX");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].int64_value(), 2);
}

TEST(EdgeCaseTest, ThirtyTwoDimensionLimit) {
  Session session;
  ASSERT_OK(session.catalog()->RegisterTable(datagen::GeneratePoints(
      "wide", 20, 33, datagen::PointDistribution::kIndependent, 1)));
  std::string ok_items, too_many;
  for (int d = 0; d < 33; ++d) {
    std::string item = "d" + std::to_string(d) + " MIN";
    if (d < 32) ok_items += (d ? ", " : "") + item;
    too_many += (d ? ", " : "") + item;
  }
  EXPECT_TRUE(session.Sql("SELECT * FROM wide SKYLINE OF " + ok_items).ok());
  auto r = session.Sql("SELECT * FROM wide SKYLINE OF " + too_many);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("32"), std::string::npos);
}

TEST(EdgeCaseTest, DuplicateSkylineDimensionIsHarmless) {
  Session session;
  ASSERT_OK(session.catalog()->RegisterTable(datagen::GeneratePoints(
      "p", 100, 2, datagen::PointDistribution::kIndependent, 4)));
  auto once = Rows(&session, "SELECT * FROM p SKYLINE OF d0 MIN, d1 MIN");
  auto twice =
      Rows(&session, "SELECT * FROM p SKYLINE OF d0 MIN, d0 MIN, d1 MIN");
  EXPECT_SAME_ROWS(once, twice);
}

TEST(EdgeCaseTest, MinAndMaxOfSameColumnKeepsExtremes) {
  // d0 MIN + d0 MAX makes every pair with distinct d0 incomparable.
  Session session;
  Schema s({Field{"v", DataType::Int64(), false}});
  auto t = std::make_shared<Table>("mm", s);
  for (int i = 1; i <= 5; ++i) ASSERT_OK(t->AppendRow({Value::Int64(i)}));
  ASSERT_OK(session.catalog()->RegisterTable(t));
  EXPECT_EQ(Rows(&session, "SELECT * FROM mm SKYLINE OF v MIN, v MAX").size(),
            5u);
}

TEST(EdgeCaseTest, NegativeAndExtremeValues) {
  Session session;
  Schema s({Field{"id", DataType::Int64(), false},
            Field{"v", DataType::Double(), false}});
  auto t = std::make_shared<Table>("x", s);
  ASSERT_OK(t->AppendRow({Value::Int64(1), Value::Double(-1e300)}));
  ASSERT_OK(t->AppendRow({Value::Int64(2), Value::Double(1e300)}));
  ASSERT_OK(t->AppendRow({Value::Int64(3), Value::Double(0)}));
  ASSERT_OK(session.catalog()->RegisterTable(t));
  auto rows = Rows(&session, "SELECT id FROM x SKYLINE OF v MIN");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].int64_value(), 1);
}

TEST(EdgeCaseTest, SkylineDirectlyOverJoinOfEmptySides) {
  Session session;
  Schema s({Field{"k", DataType::Int64(), false},
            Field{"v", DataType::Double(), false}});
  ASSERT_OK(session.catalog()->RegisterTable(std::make_shared<Table>("l", s)));
  ASSERT_OK(session.catalog()->RegisterTable(std::make_shared<Table>("r", s)));
  auto rows = Rows(&session,
                   "SELECT l.v FROM l JOIN r ON l.k = r.k "
                   "SKYLINE OF l.v MIN");
  EXPECT_TRUE(rows.empty());
}

TEST(EdgeCaseTest, GroupByEmptyGroupsVsSkyline) {
  Session session;
  Schema s({Field{"g", DataType::Int64(), false},
            Field{"v", DataType::Double(), false}});
  auto t = std::make_shared<Table>("gv", s);
  ASSERT_OK(session.catalog()->RegisterTable(t));  // empty table
  auto rows = Rows(&session,
                   "SELECT g, sum(v) AS s FROM gv GROUP BY g "
                   "SKYLINE OF s MAX");
  EXPECT_TRUE(rows.empty());
}

TEST(EdgeCaseTest, OneExecutorMatchesMany) {
  Session session;
  ASSERT_OK(session.catalog()->RegisterTable(datagen::GeneratePoints(
      "p", 500, 3, datagen::PointDistribution::kAntiCorrelated, 8)));
  const std::string q =
      "SELECT * FROM p SKYLINE OF d0 MIN, d1 MIN, d2 MIN";
  ASSERT_OK(session.SetConf("sparkline.executors", "1"));
  auto one = Rows(&session, q);
  ASSERT_OK(session.SetConf("sparkline.executors", "16"));
  auto many = Rows(&session, q);
  EXPECT_SAME_ROWS(one, many);
}

TEST(EdgeCaseTest, MoreExecutorsThanRows) {
  Session session;
  ASSERT_OK(session.SetConf("sparkline.executors", "50"));
  ASSERT_OK(session.catalog()->RegisterTable(datagen::GeneratePoints(
      "p", 5, 2, datagen::PointDistribution::kIndependent, 9)));
  auto rows = Rows(&session, "SELECT * FROM p SKYLINE OF d0 MIN, d1 MIN");
  EXPECT_GE(rows.size(), 1u);
}

TEST(EdgeCaseTest, SkylineUnderExistsSubquery) {
  // Subqueries and skylines compose: keep points whose x appears in the
  // 1-D skyline of a second table.
  Session session;
  ASSERT_OK(session.catalog()->RegisterTable(datagen::GeneratePoints(
      "a", 50, 1, datagen::PointDistribution::kIndependent, 10)));
  ASSERT_OK(session.catalog()->RegisterTable(datagen::GeneratePoints(
      "b", 50, 1, datagen::PointDistribution::kIndependent, 10)));
  auto rows = Rows(&session,
                   "SELECT * FROM a WHERE EXISTS("
                   "SELECT * FROM (SELECT d0 FROM b SKYLINE OF d0 MIN) m "
                   "WHERE m.d0 <= a.d0)");
  EXPECT_EQ(rows.size(), 50u);  // the min of b is <= every a.d0 (same gen)
}

TEST(EdgeCaseTest, DeterministicAcrossRuns) {
  Session session;
  ASSERT_OK(session.catalog()->RegisterTable(datagen::GeneratePoints(
      "p", 300, 3, datagen::PointDistribution::kIndependent, 11)));
  const std::string q = "SELECT * FROM p SKYLINE OF d0 MIN, d1 MAX, d2 MIN";
  auto first = Rows(&session, q);
  for (int i = 0; i < 3; ++i) {
    auto again = Rows(&session, q);
    EXPECT_SAME_ROWS(first, again);
  }
}

}  // namespace
}  // namespace sparkline
