// Tests for the dominance utility (paper Definition 3.1 and the
// incomplete-data variant of section 3).
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "skyline/dominance.h"

namespace sparkline {
namespace skyline {
namespace {

Row R(std::vector<double> vals) {
  Row row;
  for (double v : vals) row.push_back(Value::Double(v));
  return row;
}

/// Row with optional values; nullopt means NULL (the paper's "*").
Row RN(std::vector<std::optional<double>> vals) {
  Row row;
  for (const auto& v : vals) {
    row.push_back(v.has_value() ? Value::Double(*v)
                                : Value::Null(DataType::Double()));
  }
  return row;
}

std::vector<BoundDimension> MinDims(size_t n) {
  std::vector<BoundDimension> dims;
  for (size_t i = 0; i < n; ++i) dims.push_back({i, SkylineGoal::kMin});
  return dims;
}

TEST(DominanceTest, MinDimension) {
  auto dims = MinDims(2);
  EXPECT_EQ(CompareRows(R({1, 1}), R({2, 2}), dims, NullSemantics::kComplete),
            Dominance::kLeftDominates);
  EXPECT_EQ(CompareRows(R({2, 2}), R({1, 1}), dims, NullSemantics::kComplete),
            Dominance::kRightDominates);
}

TEST(DominanceTest, MaxDimension) {
  std::vector<BoundDimension> dims{{0, SkylineGoal::kMax}};
  EXPECT_EQ(CompareRows(R({5}), R({3}), dims, NullSemantics::kComplete),
            Dominance::kLeftDominates);
}

TEST(DominanceTest, MixedGoals) {
  // price MIN, rating MAX.
  std::vector<BoundDimension> dims{{0, SkylineGoal::kMin},
                                   {1, SkylineGoal::kMax}};
  EXPECT_EQ(CompareRows(R({100, 4.5}), R({120, 4.0}), dims,
                        NullSemantics::kComplete),
            Dominance::kLeftDominates);
  EXPECT_EQ(CompareRows(R({100, 4.0}), R({120, 4.5}), dims,
                        NullSemantics::kComplete),
            Dominance::kIncomparable);
}

TEST(DominanceTest, EqualTuples) {
  EXPECT_EQ(CompareRows(R({1, 2}), R({1, 2}), MinDims(2),
                        NullSemantics::kComplete),
            Dominance::kEqual);
}

TEST(DominanceTest, EqualOnSomeStrictOnOne) {
  // "at least as good everywhere, strictly better somewhere".
  EXPECT_EQ(CompareRows(R({1, 2}), R({1, 3}), MinDims(2),
                        NullSemantics::kComplete),
            Dominance::kLeftDominates);
}

TEST(DominanceTest, DiffDimensionPartitions) {
  std::vector<BoundDimension> dims{{0, SkylineGoal::kDiff},
                                   {1, SkylineGoal::kMin}};
  // Different DIFF value: incomparable even though dim 1 is better.
  EXPECT_EQ(CompareRows(R({1, 0}), R({2, 5}), dims, NullSemantics::kComplete),
            Dominance::kIncomparable);
  // Same DIFF value: normal dominance.
  EXPECT_EQ(CompareRows(R({1, 0}), R({1, 5}), dims, NullSemantics::kComplete),
            Dominance::kLeftDominates);
}

TEST(DominanceTest, IncompleteRestrictsToCommonDims) {
  auto dims = MinDims(2);
  // (1, NULL) vs (2, 5): only dim 0 compared -> left dominates.
  EXPECT_EQ(CompareRows(RN({1, std::nullopt}), RN({2, 5}), dims,
                        NullSemantics::kIncomplete),
            Dominance::kLeftDominates);
  // No common non-null dimension: incomparable (trivially "equal" on the
  // empty set of common dims -> kEqual by the definition's conjunctions).
  EXPECT_EQ(CompareRows(RN({1, std::nullopt}), RN({std::nullopt, 5}), dims,
                        NullSemantics::kIncomplete),
            Dominance::kEqual);
}

TEST(DominanceTest, PaperCyclicExample) {
  // Paper section 3: a = (1,*,10), b = (3,2,*), c = (*,5,3), all MIN.
  auto dims = MinDims(3);
  const Row a = RN({1, std::nullopt, 10});
  const Row b = RN({3, 2, std::nullopt});
  const Row c = RN({std::nullopt, 5, 3});
  EXPECT_EQ(CompareRows(a, b, dims, NullSemantics::kIncomplete),
            Dominance::kLeftDominates);  // a < b on dim 0
  EXPECT_EQ(CompareRows(b, c, dims, NullSemantics::kIncomplete),
            Dominance::kLeftDominates);  // b < c on dim 1
  EXPECT_EQ(CompareRows(c, a, dims, NullSemantics::kIncomplete),
            Dominance::kLeftDominates);  // c < a on dim 2 -- a cycle!
}

TEST(DominanceTest, AntisymmetryHoldsOnRandomCompleteData) {
  Rng rng(99);
  auto dims = MinDims(3);
  for (int i = 0; i < 500; ++i) {
    Row a = R({rng.Uniform(0, 1), rng.Uniform(0, 1), rng.Uniform(0, 1)});
    Row b = R({rng.Uniform(0, 1), rng.Uniform(0, 1), rng.Uniform(0, 1)});
    auto ab = CompareRows(a, b, dims, NullSemantics::kComplete);
    auto ba = CompareRows(b, a, dims, NullSemantics::kComplete);
    if (ab == Dominance::kLeftDominates) {
      EXPECT_EQ(ba, Dominance::kRightDominates);
    }
    if (ab == Dominance::kIncomparable) {
      EXPECT_EQ(ba, Dominance::kIncomparable);
    }
    if (ab == Dominance::kEqual) EXPECT_EQ(ba, Dominance::kEqual);
  }
}

TEST(DominanceTest, TransitivityHoldsOnRandomCompleteData) {
  Rng rng(123);
  // Low-cardinality values make dominance chains likely.
  auto dims = MinDims(3);
  auto rand_row = [&] {
    return R({static_cast<double>(rng.UniformInt(0, 3)),
              static_cast<double>(rng.UniformInt(0, 3)),
              static_cast<double>(rng.UniformInt(0, 3))});
  };
  for (int i = 0; i < 2000; ++i) {
    Row a = rand_row(), b = rand_row(), c = rand_row();
    if (CompareRows(a, b, dims, NullSemantics::kComplete) ==
            Dominance::kLeftDominates &&
        CompareRows(b, c, dims, NullSemantics::kComplete) ==
            Dominance::kLeftDominates) {
      EXPECT_EQ(CompareRows(a, c, dims, NullSemantics::kComplete),
                Dominance::kLeftDominates)
          << RowToString(a) << " " << RowToString(b) << " " << RowToString(c);
    }
  }
}

TEST(DominanceTest, MixedIntAndDoubleColumns) {
  std::vector<BoundDimension> dims{{0, SkylineGoal::kMin}};
  Row a{Value::Int64(1)};
  Row b{Value::Double(1.5)};
  EXPECT_EQ(CompareRows(a, b, dims, NullSemantics::kComplete),
            Dominance::kLeftDominates);
}

TEST(NullBitmapTest, BitsFollowDimensionOrder) {
  auto dims = MinDims(3);
  EXPECT_EQ(NullBitmap(RN({1, 2, 3}), dims), 0u);
  EXPECT_EQ(NullBitmap(RN({std::nullopt, 2, 3}), dims), 1u);
  EXPECT_EQ(NullBitmap(RN({1, std::nullopt, std::nullopt}), dims), 6u);
}

TEST(NullBitmapTest, IgnoresNonDimensionColumns) {
  std::vector<BoundDimension> dims{{2, SkylineGoal::kMin}};
  EXPECT_EQ(NullBitmap(RN({std::nullopt, std::nullopt, 3}), dims), 0u);
}

TEST(DominanceCounterTest, CountsThroughOptions) {
  DominanceCounter counter;
  EXPECT_EQ(counter.tests.load(), 0);
  counter.tests.fetch_add(5);
  EXPECT_EQ(counter.tests.load(), 5);
}

}  // namespace
}  // namespace skyline
}  // namespace sparkline
