// Tests for the rule-based optimizer, including the skyline-specific rules
// of paper section 5.4 and the Listing-4 reference rewriting.
#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "optimizer/optimizer.h"
#include "plan/plan_clone.h"
#include "sql/parser.h"
#include "test_util.h"

namespace sparkline {
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = std::make_shared<Catalog>();
    Schema listings({Field{"id", DataType::Int64(), false},
                     Field{"price", DataType::Double(), false},
                     Field{"rating", DataType::Double(), true},
                     Field{"host", DataType::Int64(), false}});
    auto listings_table = std::make_shared<Table>("listings", listings);
    listings_table->constraints().primary_key = {"id"};
    listings_table->constraints().foreign_keys.push_back(
        TableConstraints::ForeignKey{
            {"host"}, "hosts", {"id"}, /*referencing_not_null=*/true});
    ASSERT_OK(catalog_->RegisterTable(listings_table));

    Schema hosts({Field{"id", DataType::Int64(), false},
                  Field{"since", DataType::Int64(), false}});
    auto hosts_table = std::make_shared<Table>("hosts", hosts);
    hosts_table->constraints().primary_key = {"id"};
    ASSERT_OK(catalog_->RegisterTable(hosts_table));
  }

  LogicalPlanPtr Analyze(const std::string& sql) {
    auto plan = ParseSql(sql);
    SL_CHECK(plan.ok()) << plan.status().ToString();
    Analyzer analyzer(catalog_);
    auto analyzed = analyzer.Analyze(*plan);
    SL_CHECK(analyzed.ok()) << sql << " -> " << analyzed.status().ToString();
    return *analyzed;
  }

  LogicalPlanPtr Optimize(const std::string& sql, OptimizerOptions opts = {}) {
    Optimizer optimizer(opts);
    auto out = optimizer.Optimize(Analyze(sql));
    SL_CHECK(out.ok()) << out.status().ToString();
    return *out;
  }

  static int CountNodes(const LogicalPlanPtr& plan, PlanKind kind) {
    int n = 0;
    LogicalPlan::Foreach(plan, [&](const LogicalPlanPtr& node) {
      if (node->kind() == kind) ++n;
    });
    return n;
  }

  std::shared_ptr<Catalog> catalog_;
};

TEST_F(OptimizerTest, ConstantFolding) {
  auto plan = Optimize("SELECT 1 + 2 * 3 AS v FROM listings");
  const auto& project = static_cast<const Project&>(*plan);
  const auto& alias = static_cast<const Alias&>(*project.list()[0]);
  ASSERT_EQ(alias.child()->kind(), ExprKind::kLiteral);
  EXPECT_EQ(static_cast<const Literal&>(*alias.child()).value().int64_value(),
            7);
}

TEST_F(OptimizerTest, BooleanSimplification) {
  auto plan = Optimize("SELECT id FROM listings WHERE true AND price > 0");
  // "true AND p" collapses to "p".
  bool found_and = false;
  LogicalPlan::Foreach(plan, [&](const LogicalPlanPtr& n) {
    for (const auto& e : n->expressions()) {
      Expression::Foreach(e, [&](const ExprPtr& x) {
        if (x->kind() == ExprKind::kBinary &&
            static_cast<const BinaryExpr&>(*x).op() == BinaryOp::kAnd) {
          found_and = true;
        }
      });
    }
  });
  EXPECT_FALSE(found_and);
}

TEST_F(OptimizerTest, CombinesAndPushesFilters) {
  auto plan = Optimize(
      "SELECT * FROM (SELECT id, price FROM listings) t "
      "WHERE price > 1 AND id < 5");
  // One filter, directly over the scan.
  EXPECT_EQ(CountNodes(plan, PlanKind::kFilter), 1);
  LogicalPlan::Foreach(plan, [&](const LogicalPlanPtr& n) {
    if (n->kind() == PlanKind::kFilter) {
      EXPECT_EQ(n->children()[0]->kind(), PlanKind::kScan);
    }
  });
}

TEST_F(OptimizerTest, PushFilterThroughJoin) {
  auto plan = Optimize(
      "SELECT * FROM listings l JOIN hosts h ON l.host = h.id "
      "WHERE l.price > 10 AND h.since > 2000");
  // Both single-side predicates move below the join.
  const Join* join = nullptr;
  LogicalPlan::Foreach(plan, [&](const LogicalPlanPtr& n) {
    if (n->kind() == PlanKind::kJoin) join = static_cast<const Join*>(n.get());
  });
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(join->left()->kind(), PlanKind::kFilter);
  EXPECT_EQ(join->right()->kind(), PlanKind::kFilter);
}

TEST_F(OptimizerTest, NoopProjectEliminated) {
  auto plan = Optimize("SELECT id, price, rating, host FROM listings");
  EXPECT_EQ(plan->kind(), PlanKind::kScan);
}

TEST_F(OptimizerTest, ColumnPruningNarrowsScan) {
  auto plan = Optimize("SELECT price FROM listings");
  const Scan* scan = nullptr;
  LogicalPlan::Foreach(plan, [&](const LogicalPlanPtr& n) {
    if (n->kind() == PlanKind::kScan) scan = static_cast<const Scan*>(n.get());
  });
  ASSERT_NE(scan, nullptr);
  EXPECT_EQ(scan->output().size(), 1u);
  EXPECT_EQ(scan->output()[0].name, "price");
}

TEST_F(OptimizerTest, DistinctBecomesAggregate) {
  auto plan = Optimize("SELECT DISTINCT host FROM listings");
  EXPECT_EQ(CountNodes(plan, PlanKind::kDistinct), 0);
  EXPECT_EQ(CountNodes(plan, PlanKind::kAggregate), 1);
}

TEST_F(OptimizerTest, SingleDimSkylineBecomesScalarLookup) {
  // Section 5.4: one MIN dimension on non-nullable input -> Filter over a
  // scalar min() subquery, no Skyline node left.
  auto plan = Optimize("SELECT * FROM listings SKYLINE OF price MIN");
  EXPECT_EQ(CountNodes(plan, PlanKind::kSkyline), 0);
  EXPECT_EQ(CountNodes(plan, PlanKind::kFilter), 1);
}

TEST_F(OptimizerTest, SingleDimRewriteSkippedWhenNullable) {
  // rating is nullable and COMPLETE is not set: null tuples belong to the
  // skyline, so the rewrite must not fire.
  auto plan = Optimize("SELECT * FROM listings SKYLINE OF rating MAX");
  EXPECT_EQ(CountNodes(plan, PlanKind::kSkyline), 1);
}

TEST_F(OptimizerTest, SingleDimRewriteFiresWithCompleteKeyword) {
  auto plan = Optimize("SELECT * FROM listings SKYLINE OF COMPLETE rating MAX");
  EXPECT_EQ(CountNodes(plan, PlanKind::kSkyline), 0);
}

TEST_F(OptimizerTest, SingleDimRewriteRespectsToggle) {
  OptimizerOptions opts;
  opts.single_dim_skyline_rewrite = false;
  auto plan = Optimize("SELECT * FROM listings SKYLINE OF price MIN", opts);
  EXPECT_EQ(CountNodes(plan, PlanKind::kSkyline), 1);
}

TEST_F(OptimizerTest, SingleDimRewriteSkippedForDistinctAndDiff) {
  EXPECT_EQ(CountNodes(
                Optimize("SELECT * FROM listings SKYLINE OF DISTINCT price MIN"),
                PlanKind::kSkyline),
            1);
  EXPECT_EQ(
      CountNodes(Optimize("SELECT * FROM listings SKYLINE OF host DIFF"),
                 PlanKind::kSkyline),
      1);
}

TEST_F(OptimizerTest, SkylinePushedBelowFkJoin) {
  // listings.host is a declared non-null FK to hosts.id: the inner equi-join
  // is non-reductive, and both dimensions come from the left side.
  auto plan = Optimize(
      "SELECT l.price, l.rating, h.since FROM listings l "
      "JOIN hosts h ON l.host = h.id "
      "SKYLINE OF COMPLETE l.price MIN, l.rating MAX");
  const Join* join = nullptr;
  LogicalPlan::Foreach(plan, [&](const LogicalPlanPtr& n) {
    if (n->kind() == PlanKind::kJoin) join = static_cast<const Join*>(n.get());
  });
  ASSERT_NE(join, nullptr);
  // The skyline is now inside the left join branch.
  EXPECT_EQ(CountNodes(join->left(), PlanKind::kSkyline), 1);
}

TEST_F(OptimizerTest, SkylinePushedBelowLeftOuterJoin) {
  auto plan = Optimize(
      "SELECT l.price, l.rating FROM listings l "
      "LEFT OUTER JOIN hosts h ON l.host = h.id "
      "SKYLINE OF COMPLETE l.price MIN, l.rating MAX");
  const Join* join = nullptr;
  LogicalPlan::Foreach(plan, [&](const LogicalPlanPtr& n) {
    if (n->kind() == PlanKind::kJoin) join = static_cast<const Join*>(n.get());
  });
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(CountNodes(join->left(), PlanKind::kSkyline), 1);
}

TEST_F(OptimizerTest, SkylineNotPushedWithoutFk) {
  // Join on a non-FK column: reductive, the rule must not fire.
  auto plan = Optimize(
      "SELECT l.price, l.rating FROM listings l "
      "JOIN hosts h ON l.id = h.since "
      "SKYLINE OF COMPLETE l.price MIN, l.rating MAX");
  const SkylineNode* sky = nullptr;
  const Join* join = nullptr;
  LogicalPlan::Foreach(plan, [&](const LogicalPlanPtr& n) {
    if (n->kind() == PlanKind::kSkyline) {
      sky = static_cast<const SkylineNode*>(n.get());
    }
    if (n->kind() == PlanKind::kJoin) join = static_cast<const Join*>(n.get());
  });
  ASSERT_NE(sky, nullptr);
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(CountNodes(join->left(), PlanKind::kSkyline), 0);
}

TEST_F(OptimizerTest, SkylineNotPushedWhenDimsUseRightSide) {
  auto plan = Optimize(
      "SELECT l.price, h.since FROM listings l JOIN hosts h ON l.host = h.id "
      "SKYLINE OF COMPLETE l.price MIN, h.since MAX");
  const Join* join = nullptr;
  LogicalPlan::Foreach(plan, [&](const LogicalPlanPtr& n) {
    if (n->kind() == PlanKind::kJoin) join = static_cast<const Join*>(n.get());
  });
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(CountNodes(join->left(), PlanKind::kSkyline), 0);
}

TEST_F(OptimizerTest, SkylineJoinPushdownRespectsToggle) {
  OptimizerOptions opts;
  opts.skyline_join_pushdown = false;
  auto plan = Optimize(
      "SELECT l.price, l.rating FROM listings l "
      "LEFT OUTER JOIN hosts h ON l.host = h.id "
      "SKYLINE OF COMPLETE l.price MIN, l.rating MAX",
      opts);
  const Join* join = nullptr;
  LogicalPlan::Foreach(plan, [&](const LogicalPlanPtr& n) {
    if (n->kind() == PlanKind::kJoin) join = static_cast<const Join*>(n.get());
  });
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(CountNodes(join->left(), PlanKind::kSkyline), 0);
}

TEST_F(OptimizerTest, ReferenceRewriteProducesAntiSelfJoin) {
  OptimizerOptions opts;
  opts.rewrite_skyline_to_reference = true;
  auto plan = Optimize(
      "SELECT price, rating FROM listings SKYLINE OF price MIN, rating MAX",
      opts);
  EXPECT_EQ(CountNodes(plan, PlanKind::kSkyline), 0);
  const Join* anti = nullptr;
  LogicalPlan::Foreach(plan, [&](const LogicalPlanPtr& n) {
    if (n->kind() == PlanKind::kJoin &&
        static_cast<const Join&>(*n).join_type() == JoinType::kLeftAnti) {
      anti = static_cast<const Join*>(n.get());
    }
  });
  ASSERT_NE(anti, nullptr);
  // Listing 4 shape: (<= AND >=) AND (< OR >).
  EXPECT_EQ(SplitConjuncts(anti->condition()).size(), 3u);
}

TEST_F(OptimizerTest, ReferenceRewriteAllDiffReturnsChild) {
  OptimizerOptions opts;
  opts.rewrite_skyline_to_reference = true;
  auto plan = Optimize("SELECT * FROM listings SKYLINE OF host DIFF", opts);
  EXPECT_EQ(CountNodes(plan, PlanKind::kSkyline), 0);
  EXPECT_EQ(CountNodes(plan, PlanKind::kJoin), 0);
}

TEST_F(OptimizerTest, CloneWithFreshIdsRemapsEverything) {
  auto plan = Analyze("SELECT id, price * 2 AS p2 FROM listings WHERE id > 0");
  std::map<ExprId, ExprId> ids;
  auto clone = CloneWithFreshIds(plan, &ids);
  ASSERT_TRUE(clone.ok());
  EXPECT_FALSE(ids.empty());
  // Outputs must be disjoint between original and clone.
  std::set<ExprId> original_ids;
  for (const auto& a : plan->output()) original_ids.insert(a.id);
  for (const auto& a : (*clone)->output()) {
    EXPECT_EQ(original_ids.count(a.id), 0u);
  }
  // The clone must remain internally resolved.
  EXPECT_TRUE((*clone)->resolved());
}

TEST_F(OptimizerTest, FixpointTerminates) {
  // A moderately nested query must optimize without hitting iteration caps.
  auto plan = Optimize(
      "SELECT p FROM (SELECT price AS p FROM ("
      "SELECT id, price FROM listings WHERE price > 0) a WHERE id < 100) b "
      "WHERE p < 500");
  EXPECT_LE(CountNodes(plan, PlanKind::kFilter), 1);
}

}  // namespace
}  // namespace sparkline
