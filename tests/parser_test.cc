// Tests for the SQL lexer and parser, with emphasis on the skylineClause
// grammar of paper Listing 5.
#include <gtest/gtest.h>

#include "plan/logical_plan.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace sparkline {
namespace {

LogicalPlanPtr Parse(const std::string& sql) {
  auto r = ParseSql(sql);
  SL_CHECK(r.ok()) << sql << " -> " << r.status().ToString();
  return *r;
}

const SkylineNode* FindSkyline(const LogicalPlanPtr& plan) {
  const SkylineNode* found = nullptr;
  LogicalPlan::Foreach(plan, [&](const LogicalPlanPtr& n) {
    if (n->kind() == PlanKind::kSkyline) {
      found = static_cast<const SkylineNode*>(n.get());
    }
  });
  return found;
}

TEST(LexerTest, TokenizesSymbolsAndKeywords) {
  auto tokens = Tokenize("SELECT a, b FROM t WHERE a <= 1.5 AND b <> 'x'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens->front().type, TokenType::kSelect);
  EXPECT_EQ(tokens->back().type, TokenType::kEof);
}

TEST(LexerTest, SoftKeywordsStayIdentifiers) {
  auto tokens = Tokenize("min max diff complete");
  ASSERT_TRUE(tokens.ok());
  for (size_t i = 0; i + 1 < tokens->size(); ++i) {
    EXPECT_EQ((*tokens)[i].type, TokenType::kIdentifier);
  }
}

TEST(LexerTest, StringEscapes) {
  auto tokens = Tokenize("'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "it's");
}

TEST(LexerTest, LineComments) {
  auto tokens = Tokenize("SELECT -- everything\n1");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].type, TokenType::kInteger);
}

TEST(LexerTest, NumbersIntVsFloat) {
  auto tokens = Tokenize("1 2.5 3e4 5.e? ");
  // "5.e?" fails on '?'; check the error message points at the offset.
  EXPECT_FALSE(tokens.ok());
  auto ok = Tokenize("1 2.5 3e4");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ((*ok)[0].type, TokenType::kInteger);
  EXPECT_EQ((*ok)[1].type, TokenType::kFloat);
  EXPECT_EQ((*ok)[2].type, TokenType::kFloat);
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("SELECT 'oops").ok());
}

TEST(ParserTest, HotelSkylineQuery) {
  auto plan = Parse(
      "SELECT price, user_rating FROM hotels "
      "SKYLINE OF price MIN, user_rating MAX");
  const SkylineNode* sky = FindSkyline(plan);
  ASSERT_NE(sky, nullptr);
  EXPECT_FALSE(sky->distinct());
  EXPECT_FALSE(sky->complete());
  ASSERT_EQ(sky->dimensions().size(), 2u);
  const auto& d0 = static_cast<const SkylineDimension&>(*sky->dimensions()[0]);
  const auto& d1 = static_cast<const SkylineDimension&>(*sky->dimensions()[1]);
  EXPECT_EQ(d0.goal(), SkylineGoal::kMin);
  EXPECT_EQ(d1.goal(), SkylineGoal::kMax);
}

TEST(ParserTest, SkylineDistinctCompleteFlags) {
  auto plan = Parse("SELECT * FROM t SKYLINE OF DISTINCT COMPLETE a MIN");
  const SkylineNode* sky = FindSkyline(plan);
  ASSERT_NE(sky, nullptr);
  EXPECT_TRUE(sky->distinct());
  EXPECT_TRUE(sky->complete());
}

TEST(ParserTest, SkylineDiffDimension) {
  auto plan = Parse("SELECT * FROM t SKYLINE OF a MIN, b DIFF");
  const SkylineNode* sky = FindSkyline(plan);
  ASSERT_NE(sky, nullptr);
  const auto& d1 = static_cast<const SkylineDimension&>(*sky->dimensions()[1]);
  EXPECT_EQ(d1.goal(), SkylineGoal::kDiff);
}

TEST(ParserTest, SkylinePositionAfterHavingBeforeOrderBy) {
  auto plan = Parse(
      "SELECT a, count(*) FROM t GROUP BY a HAVING count(*) > 1 "
      "SKYLINE OF a MIN ORDER BY a");
  // Sort must be the root; the skyline below it; the HAVING filter below.
  EXPECT_EQ(plan->kind(), PlanKind::kSort);
  EXPECT_EQ(plan->children()[0]->kind(), PlanKind::kSkyline);
  EXPECT_EQ(plan->children()[0]->children()[0]->kind(), PlanKind::kFilter);
}

TEST(ParserTest, MissingGoalFails) {
  EXPECT_FALSE(ParseSql("SELECT * FROM t SKYLINE OF a").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM t SKYLINE OF a ASCENDING").ok());
}

TEST(ParserTest, SkylineOfRequiresOf) {
  EXPECT_FALSE(ParseSql("SELECT * FROM t SKYLINE a MIN").ok());
}

TEST(ParserTest, SelectStarAndQualifiedStar) {
  auto plan = Parse("SELECT t.*, 1 one FROM x t");
  EXPECT_EQ(plan->kind(), PlanKind::kProject);
}

TEST(ParserTest, WhereGroupHavingOrderLimit) {
  auto plan = Parse(
      "SELECT a, sum(b) AS total FROM t WHERE c > 0 GROUP BY a "
      "HAVING sum(b) > 10 ORDER BY total DESC NULLS LAST LIMIT 5");
  EXPECT_EQ(plan->kind(), PlanKind::kLimit);
  EXPECT_EQ(plan->children()[0]->kind(), PlanKind::kSort);
  const auto& sort = static_cast<const Sort&>(*plan->children()[0]);
  EXPECT_FALSE(sort.orders()[0].ascending);
  EXPECT_FALSE(sort.orders()[0].nulls_first);
}

TEST(ParserTest, JoinVariants) {
  EXPECT_EQ(Parse("SELECT * FROM a JOIN b ON a.x = b.x")->children().size(),
            1u);
  auto left = Parse("SELECT * FROM a LEFT OUTER JOIN b USING (id)");
  const Join* join = nullptr;
  LogicalPlan::Foreach(left, [&](const LogicalPlanPtr& n) {
    if (n->kind() == PlanKind::kJoin) join = static_cast<const Join*>(n.get());
  });
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(join->join_type(), JoinType::kLeftOuter);
  EXPECT_EQ(join->using_columns(), std::vector<std::string>{"id"});
  Parse("SELECT * FROM a CROSS JOIN b");
  EXPECT_FALSE(ParseSql("SELECT * FROM a JOIN b").ok());  // needs ON/USING
}

TEST(ParserTest, DerivedTableNeedsParens) {
  auto plan = Parse("SELECT * FROM (SELECT a FROM t) AS sub WHERE a > 0");
  bool has_alias = false;
  LogicalPlan::Foreach(plan, [&](const LogicalPlanPtr& n) {
    if (n->kind() == PlanKind::kSubqueryAlias) has_alias = true;
  });
  EXPECT_TRUE(has_alias);
}

TEST(ParserTest, NotExistsSubquery) {
  auto plan = Parse(
      "SELECT * FROM t o WHERE NOT EXISTS(SELECT * FROM t i WHERE i.a < o.a)");
  const Filter* filter = nullptr;
  LogicalPlan::Foreach(plan, [&](const LogicalPlanPtr& n) {
    if (n->kind() == PlanKind::kFilter && filter == nullptr) {
      filter = static_cast<const Filter*>(n.get());
    }
  });
  ASSERT_NE(filter, nullptr);
  ASSERT_EQ(filter->condition()->kind(), ExprKind::kExistsSubquery);
  EXPECT_TRUE(
      static_cast<const ExistsSubquery&>(*filter->condition()).negated());
}

TEST(ParserTest, ScalarSubquery) {
  auto plan = Parse("SELECT * FROM t WHERE a = (SELECT min(a) FROM t)");
  const Filter* filter = nullptr;
  LogicalPlan::Foreach(plan, [&](const LogicalPlanPtr& n) {
    if (n->kind() == PlanKind::kFilter) {
      filter = static_cast<const Filter*>(n.get());
    }
  });
  ASSERT_NE(filter, nullptr);
  bool has_scalar = false;
  Expression::Foreach(filter->condition(), [&](const ExprPtr& e) {
    if (e->kind() == ExprKind::kScalarSubquery) has_scalar = true;
  });
  EXPECT_TRUE(has_scalar);
}

TEST(ParserTest, AggregatesAndCountStar) {
  auto plan = Parse("SELECT count(*), sum(a), avg(b), count(DISTINCT c) FROM t");
  EXPECT_EQ(plan->kind(), PlanKind::kAggregate);
  EXPECT_FALSE(ParseSql("SELECT sum(*) FROM t").ok());
  EXPECT_FALSE(ParseSql("SELECT sum(a, b) FROM t").ok());
}

TEST(ParserTest, OperatorPrecedence) {
  auto e = ParseExpression("1 + 2 * 3 < 10 AND NOT false OR true");
  ASSERT_TRUE(e.ok());
  // OR binds loosest.
  ASSERT_EQ((*e)->kind(), ExprKind::kBinary);
  EXPECT_EQ(static_cast<const BinaryExpr&>(**e).op(), BinaryOp::kOr);
}

TEST(ParserTest, NegativeNumbersFoldIntoLiterals) {
  auto e = ParseExpression("-42");
  ASSERT_TRUE(e.ok());
  ASSERT_EQ((*e)->kind(), ExprKind::kLiteral);
  EXPECT_EQ(static_cast<const Literal&>(**e).value().int64_value(), -42);
}

TEST(ParserTest, CastExpression) {
  auto e = ParseExpression("CAST(a AS double)");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind(), ExprKind::kCast);
  EXPECT_FALSE(ParseExpression("CAST(a AS nosuchtype)").ok());
}

TEST(ParserTest, IsNullPredicates) {
  auto e = ParseExpression("a IS NULL AND b IS NOT NULL");
  ASSERT_TRUE(e.ok());
}

TEST(ParserTest, TrailingGarbageFails) {
  EXPECT_FALSE(ParseSql("SELECT a FROM t extra tokens here").ok());
  EXPECT_FALSE(ParseSql("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSql("").ok());
}

TEST(ParserTest, SemicolonAccepted) {
  Parse("SELECT a FROM t;");
}

TEST(ParserTest, FromlessSelect) {
  auto plan = Parse("SELECT 1 + 1 AS two");
  EXPECT_EQ(plan->kind(), PlanKind::kProject);
  EXPECT_EQ(plan->children()[0]->kind(), PlanKind::kLocalRelation);
}

TEST(ParserTest, SkylineOverExpressionDimension) {
  auto plan = Parse("SELECT * FROM t SKYLINE OF a + b MIN, abs(c) MAX");
  const SkylineNode* sky = FindSkyline(plan);
  ASSERT_NE(sky, nullptr);
  EXPECT_EQ(sky->dimensions().size(), 2u);
}

TEST(ParserTest, DistinctSelect) {
  auto plan = Parse("SELECT DISTINCT a FROM t");
  EXPECT_EQ(plan->kind(), PlanKind::kDistinct);
}

}  // namespace
}  // namespace sparkline
