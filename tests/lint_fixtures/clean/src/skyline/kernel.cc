namespace sparkline {
namespace skyline {

int CheckedBlockScan(const Block& block, const SkylineOptions& options) {
  DeadlineChecker deadline(options);
  int survivors = 0;
  for (size_t i = 0; i < block.size(); ++i) {
    if (!deadline.Check().ok()) return survivors;
    for (size_t j = 0; j < block.size(); ++j) {
      if (CompareRows(block[i], block[j]) == Dominance::kDominates) {
        ++survivors;
      }
    }
  }
  return survivors;
}

}  // namespace skyline
}  // namespace sparkline
