namespace sparkline {

void RunScan() {
  SL_FAILPOINT("exec.scan");
  auto* scans = metrics::MetricsRegistry::Global().GetCounter(
      "sparkline_scan_tasks_total");
  scans->Increment();
}

}  // namespace sparkline
