// Fixture: everything in this miniature repo follows the rules; the
// selftest asserts the lint stays silent on it (no false positives).
#pragma once

namespace sparkline {

class [[nodiscard]] Status {
 public:
  bool ok() const { return true; }
};

}  // namespace sparkline
