namespace sparkline {
namespace fail {
namespace {

constexpr const char* kSites[] = {
    "exec.scan",
};

}  // namespace
}  // namespace fail
}  // namespace sparkline
