namespace sparkline {

void SetConf(const std::string& k, const std::string& v) {
  if (k == "sparkline.exec.partitions") {
    return;
  }
}

}  // namespace sparkline
