// Fixture: sparkline.serve.hiddenKnob is read but has no README row — the
// flag-docs rule must flag it.
namespace sparkline {

void SetConf(const std::string& k, const std::string& v) {
  if (k == "sparkline.exec.partitions") {
    return;
  }
  if (k == "sparkline.serve.hiddenknob") {
    return;
  }
}

}  // namespace sparkline
