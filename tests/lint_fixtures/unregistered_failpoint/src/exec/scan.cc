// Fixture: exec.bogus is a typo'd site that is not in kSites — Arm() would
// reject it and the chaos sweep would never fire it. The failpoint-registry
// rule must flag it.
namespace sparkline {

void RunScan() {
  SL_FAILPOINT("exec.scan");
  SL_FAILPOINT("exec.bogus");
}

}  // namespace sparkline
