// Fixture registry: only exec.scan is registered.
namespace sparkline {
namespace fail {
namespace {

constexpr const char* kSites[] = {
    "exec.scan",
};

}  // namespace
}  // namespace fail
}  // namespace sparkline
