// Fixture: one metric name breaks the Prometheus grammar (embedded
// spaces), another lacks the sparkline_ prefix — the metric-names rule must
// flag both.
namespace sparkline {

void RecordStats() {
  auto* bad = metrics::MetricsRegistry::Global().GetCounter(
      "sparkline cache hits");
  bad->Increment();
  auto* unprefixed = metrics::MetricsRegistry::Global().GetHistogram(
      "serve_latency_us");
  unprefixed->Observe(1);
}

}  // namespace sparkline
