// Fixture: a Status class without [[nodiscard]] — the nodiscard rule must
// flag it, or the rule has gone vacuous.
#pragma once

namespace sparkline {

class Status {
 public:
  bool ok() const { return true; }
};

}  // namespace sparkline
