// Fixture: a dominance-testing kernel loop that never polls the deadline —
// a timed-out or cancelled query could spin here forever. The
// kernel-deadline rule must flag it.
namespace sparkline {
namespace skyline {

int UncheckedBlockScan(const Block& block) {
  int survivors = 0;
  for (size_t i = 0; i < block.size(); ++i) {
    for (size_t j = 0; j < block.size(); ++j) {
      if (CompareRows(block[i], block[j]) == Dominance::kDominates) {
        ++survivors;
      }
    }
  }
  return survivors;
}

}  // namespace skyline
}  // namespace sparkline
