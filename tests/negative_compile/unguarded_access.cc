// Negative-compile fixture: reading a GUARDED_BY field without holding its
// mutex. Under clang's -Werror=thread-safety this translation unit MUST
// fail to compile; tests/negative_compile/run.cmake asserts exactly that
// (and that the guarded twin still compiles), proving the annotations are
// enforced rather than decorative. Not part of any build target.
#include "common/thread_safety.h"

namespace sparkline {

class Counter {
 public:
  void Increment() {
    sl::MutexLock lock(&mu_);
    ++value_;
  }

  // BUG (deliberate): reads value_ without mu_ — clang must reject this.
  int Peek() const { return value_; }

 private:
  mutable sl::Mutex mu_;
  int value_ SL_GUARDED_BY(mu_) = 0;
};

int Use() {
  Counter c;
  c.Increment();
  return c.Peek();
}

}  // namespace sparkline
