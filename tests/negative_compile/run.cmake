# Negative-compile harness for the thread-safety annotations. Invoked as a
# CTest script (see CMakeLists.txt) with:
#   -DCLANGXX=<path to clang++>  -DREPO_ROOT=<source dir>
# Asserts that the clean twin compiles and the unguarded twin is rejected
# *for a thread-safety reason* under -Werror=thread-safety.

set(FLAGS -std=c++17 -fsyntax-only -Wthread-safety -Werror=thread-safety
    -I ${REPO_ROOT}/src)
set(DIR ${REPO_ROOT}/tests/negative_compile)

execute_process(
  COMMAND ${CLANGXX} ${FLAGS} ${DIR}/guarded_access.cc
  RESULT_VARIABLE clean_rc
  ERROR_VARIABLE clean_err)
if(NOT clean_rc EQUAL 0)
  message(FATAL_ERROR
          "guarded_access.cc (the clean twin) failed to compile — the "
          "harness itself is broken, so the negative result below would be "
          "meaningless:\n${clean_err}")
endif()

execute_process(
  COMMAND ${CLANGXX} ${FLAGS} ${DIR}/unguarded_access.cc
  RESULT_VARIABLE bad_rc
  ERROR_VARIABLE bad_err)
if(bad_rc EQUAL 0)
  message(FATAL_ERROR
          "unguarded_access.cc compiled cleanly: an unguarded access to a "
          "GUARDED_BY field was NOT rejected — -Werror=thread-safety is not "
          "being enforced")
endif()
if(NOT bad_err MATCHES "thread-safety|guarded by|requires holding")
  message(FATAL_ERROR
          "unguarded_access.cc failed for a reason other than thread "
          "safety:\n${bad_err}")
endif()

message(STATUS "negative-compile: thread-safety annotations are enforced")
