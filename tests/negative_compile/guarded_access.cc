// Clean twin of unguarded_access.cc: identical shape, but every access to
// the guarded field holds the mutex. Must compile under
// -Werror=thread-safety — it guards the harness against mistaking an
// unrelated compile error (header typo, flag typo) for a thread-safety
// rejection. Not part of any build target.
#include "common/thread_safety.h"

namespace sparkline {

class Counter {
 public:
  void Increment() {
    sl::MutexLock lock(&mu_);
    ++value_;
  }

  int Peek() const {
    sl::MutexLock lock(&mu_);
    return value_;
  }

 private:
  mutable sl::Mutex mu_;
  int value_ SL_GUARDED_BY(mu_) = 0;
};

int Use() {
  Counter c;
  c.Increment();
  return c.Peek();
}

}  // namespace sparkline
