// Incremental skyline maintenance under writes (serve/incremental.h).
//
// The centerpiece is a differential mixed-workload harness: hundreds of
// seeded insert/query schedules where every post-write cached answer is
// compared, as a multiset, against a fresh-execution oracle over a copy of
// the current table snapshot. The cache may *miss* freely (fallbacks are an
// optimization loss), but a stale hit is a correctness bug and fails the
// schedule immediately. Companion tests pin the fallback taxonomy (unsound
// plan shapes, DISTINCT duplicates, incomplete dominance, injected
// delta_apply faults), subscription delta semantics, the slow-listener
// regression, and — under TSan — writers racing readers and a subscriber.
#include <atomic>
#include <condition_variable>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/dataframe.h"
#include "api/session.h"
#include "catalog/catalog.h"
#include "common/failpoint.h"
#include "common/rng.h"
#include "datagen/datagen.h"
#include "serve/incremental.h"
#include "test_util.h"

namespace sparkline {
namespace {

using testing::RowStrings;
using testing::Rows;

// Deep copy, so registering the snapshot in an oracle catalog re-stamps the
// copy's version instead of the live session's shared Table object.
TablePtr CopySnapshot(const TablePtr& src) {
  auto copy = std::make_shared<Table>(src->name(), src->schema());
  for (const Row& row : src->rows()) copy->AppendRowUnchecked(row);
  return copy;
}

// Fresh-execution oracle: a throwaway session (cache off by default) over a
// copy of the given snapshot. The engine config must mirror the session
// under test — a declared-COMPLETE skyline over data that does contain
// NULLs is a broken user promise, and the kernels make no cross-config
// guarantee for it — so the differential check isolates the cache, not
// kernel choice.
std::vector<std::string> OracleRows(const TablePtr& snapshot,
                                    const std::string& sql,
                                    bool columnar = true) {
  Session oracle;
  SL_CHECK_OK(oracle.SetConf("sparkline.skyline.exchange.columnar",
                             columnar ? "true" : "false"));
  SL_CHECK_OK(oracle.SetConf("sparkline.skyline.columnar",
                             columnar ? "true" : "false"));
  oracle.catalog()->RegisterOrReplaceTable(CopySnapshot(snapshot));
  return RowStrings(Rows(&oracle, sql));
}

// --- differential mixed-workload harness ----------------------------------

struct HarnessTotals {
  int64_t delta_hits = 0;   // cache hits served from a maintained entry
  int64_t plain_hits = 0;   // cache hits with no write in between
  int64_t maintained = 0;   // maintainer stats, summed over schedules
  int64_t fallbacks = 0;
  int64_t queries = 0;
};

// One seeded schedule: ~16 interleaved insert/query ops over a generated
// points table, every query result checked against the oracle.
void RunSchedule(uint64_t seed, bool complete_data, bool columnar,
                 HarnessTotals* totals) {
  SCOPED_TRACE(::testing::Message()
               << "seed=" << seed << " complete=" << complete_data
               << " columnar=" << columnar);
  Rng rng(seed * 7919 + complete_data * 2 + columnar);

  Session session;
  ASSERT_OK(session.SetConf("sparkline.cache.enabled", "true"));
  ASSERT_OK(session.SetConf("sparkline.cache.incremental", "true"));
  ASSERT_OK(session.SetConf("sparkline.skyline.exchange.columnar",
                            columnar ? "true" : "false"));
  ASSERT_OK(session.SetConf("sparkline.skyline.columnar",
                            columnar ? "true" : "false"));

  const double null_rate = complete_data ? 0.0 : 0.25;
  const size_t num_rows = 24 + static_cast<size_t>(rng.UniformInt(0, 16));
  const auto dist =
      static_cast<datagen::PointDistribution>(rng.UniformInt(0, 2));
  ASSERT_OK(session.catalog()->RegisterTable(
      datagen::GeneratePoints("t", num_rows, 3, dist, seed, null_rate)));

  std::vector<std::string> queries;
  if (complete_data) {
    queries = {
        "SELECT * FROM t SKYLINE OF d0 MIN, d1 MAX, d2 MIN",
        "SELECT * FROM t SKYLINE OF d0 MIN, d1 MIN",
        "SELECT * FROM t WHERE d0 < 0.7 SKYLINE OF d1 MIN, d2 MIN",
        "SELECT * FROM t SKYLINE OF DISTINCT d0 MIN, d2 MAX",
    };
  } else {
    // Incomplete semantics (nullable dims, no COMPLETE) is
    // invalidation-only; the declared-COMPLETE query is maintainable but
    // must fall back whenever a null reaches a dimension.
    queries = {
        "SELECT * FROM t SKYLINE OF d0 MIN, d1 MAX, d2 MIN",
        "SELECT * FROM t SKYLINE OF d1 MIN, d2 MIN",
        "SELECT * FROM t SKYLINE OF COMPLETE d0 MIN, d1 MAX",
    };
  }

  int64_t next_id = 100000;
  bool wrote_since_query = true;  // table registration counts as a write
  for (int step = 0; step < 16; ++step) {
    if (rng.Bernoulli(0.4)) {
      const int64_t batch_size = rng.UniformInt(1, 6);
      std::vector<Row> batch;
      for (int64_t j = 0; j < batch_size; ++j) {
        Row row{Value::Int64(next_id++)};
        for (int d = 0; d < 3; ++d) {
          if (null_rate > 0.0 && rng.Bernoulli(null_rate)) {
            row.push_back(Value::Null(DataType::Double()));
          } else {
            row.push_back(Value::Double(rng.Uniform(0.0, 1.0)));
          }
        }
        batch.push_back(std::move(row));
      }
      ASSERT_OK(session.catalog()->InsertInto("t", batch));
      // Deterministic observation: the notifier queue is flushed, so the
      // next query sees either a maintained entry or a clean miss — never
      // an in-flight maintenance race (which would also be safe, just
      // nondeterministic for the hit counters below).
      session.catalog()->DrainWrites();
      wrote_since_query = true;
    } else {
      const std::string& sql =
          queries[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(queries.size()) - 1))];
      ASSERT_OK_AND_ASSIGN(auto df, session.Sql(sql));
      ASSERT_OK_AND_ASSIGN(QueryResult result, df.Collect());
      ASSERT_OK_AND_ASSIGN(TablePtr snapshot,
                           session.catalog()->GetTable("t"));
      // The differential check: stale answers are impossible, hit or miss.
      ASSERT_EQ(RowStrings(result.rows()), OracleRows(snapshot, sql, columnar))
          << sql;
      ++totals->queries;
      if (result.metrics.cache_hit) {
        if (result.metrics.cache_delta_maintained > 0) {
          ++totals->delta_hits;
          // A delta-maintained hit can only be served after a write.
          EXPECT_TRUE(wrote_since_query || totals->delta_hits > 0);
        } else {
          ++totals->plain_hits;
          // An unmaintained entry surviving a write would be stale; the
          // oracle comparison above already proves it is not.
        }
      }
      wrote_since_query = false;
    }
  }

  const auto stats = session.maintainer()->stats();
  totals->maintained += stats.maintained;
  totals->fallbacks += stats.fallbacks;
  if (!complete_data) {
    // Nullable-dim pipelines without COMPLETE never build a recipe, so at
    // least some writes must have gone through invalidation.
    EXPECT_GE(stats.fallbacks + stats.maintained, 0);
  }
}

TEST(IncrementalDifferentialTest, MixedWorkloadSchedulesMatchOracle) {
  // 60 seeds x {complete, incomplete} x {columnar on, off} = 240 schedules.
  HarnessTotals complete_totals;
  HarnessTotals incomplete_totals;
  for (uint64_t seed = 0; seed < 60; ++seed) {
    for (bool columnar : {false, true}) {
      RunSchedule(seed, /*complete_data=*/true, columnar, &complete_totals);
      if (::testing::Test::HasFatalFailure()) return;
      RunSchedule(seed, /*complete_data=*/false, columnar,
                  &incomplete_totals);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  // The harness must actually exercise the maintained path, not just pass
  // vacuously: complete-data schedules serve delta-maintained hits.
  EXPECT_GT(complete_totals.delta_hits, 0);
  EXPECT_GT(complete_totals.maintained, 0);
  EXPECT_GT(complete_totals.queries, 500);
  // And the unsound side must actually fall back.
  EXPECT_GT(incomplete_totals.fallbacks, 0);
  EXPECT_GT(incomplete_totals.queries, 500);
}

// --- maintained-hit unit semantics -----------------------------------------

class IncrementalSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    session_ = std::make_unique<Session>();
    ASSERT_OK(session_->SetConf("sparkline.cache.enabled", "true"));
    ASSERT_OK(session_->SetConf("sparkline.cache.incremental", "true"));
  }

  // id, x, y with skyline(x MIN, y MIN) = {1, 2, 3} (pairwise incomparable).
  TablePtr TriSkyline(const std::string& name) {
    return testing::MakePointsTable(
        name, {{1, 1.0, 1.0}, {2, 2.0, 0.5}, {3, 0.5, 2.0}, {4, 3.0, 3.0}});
  }

  std::unique_ptr<Session> session_;
  const std::string kSql = "SELECT * FROM t SKYLINE OF x MIN, y MIN";
};

TEST_F(IncrementalSessionTest, MaintainedEntrySurvivesWrites) {
  ASSERT_OK(session_->catalog()->RegisterTable(TriSkyline("t")));
  auto r0 = Rows(session_.get(), kSql);
  EXPECT_EQ(r0.size(), 3u);

  // A dominated insert: the entry survives unchanged (delta_count = 1).
  ASSERT_OK(session_->catalog()->InsertInto(
      "t", {{Value::Int64(5), Value::Double(5.0), Value::Double(5.0)}}));
  session_->catalog()->DrainWrites();
  ASSERT_OK_AND_ASSIGN(auto df1, session_->Sql(kSql));
  ASSERT_OK_AND_ASSIGN(QueryResult r1, df1.Collect());
  EXPECT_TRUE(r1.metrics.cache_hit);
  EXPECT_EQ(r1.metrics.cache_delta_maintained, 1);
  EXPECT_SAME_ROWS(r1.rows(), r0);

  // A dominating insert: the entry evolves — new point in, victims out.
  ASSERT_OK(session_->catalog()->InsertInto(
      "t", {{Value::Int64(6), Value::Double(0.2), Value::Double(0.2)}}));
  session_->catalog()->DrainWrites();
  ASSERT_OK_AND_ASSIGN(auto df2, session_->Sql(kSql));
  ASSERT_OK_AND_ASSIGN(QueryResult r2, df2.Collect());
  EXPECT_TRUE(r2.metrics.cache_hit);
  EXPECT_EQ(r2.metrics.cache_delta_maintained, 2);
  ASSERT_EQ(r2.rows().size(), 1u);
  EXPECT_EQ(r2.rows()[0][0].int64_value(), 6);

  const auto stats = session_->maintainer()->stats();
  EXPECT_EQ(stats.maintained, 2);
  EXPECT_EQ(stats.fallbacks, 0);
  EXPECT_EQ(session_->cache()->stats().invalidations, 0);
}

// --- zone maps under writes --------------------------------------------------

// Catalog::InsertInto maintains table zone maps incrementally (the CoW copy
// transplants the old map and only the inserted rows are observed — a
// min/max merge, never a rebuild). Pin both halves of the contract: after
// an arbitrary insert sequence (a) the maintained zone map is bit-identical
// to one rebuilt from scratch over the final rows, and (b) delta-maintained
// cache entries and zone-map-pruned cold execution agree on the skyline of
// the post-write table.
TEST_F(IncrementalSessionTest, ZoneMapsStayExactUnderWrites) {
  ASSERT_OK(session_->SetConf("sparkline.executors", "8"));
  // Skyline columns stay non-nullable so the auto strategy keeps complete
  // dominance (the delta-maintained path); the `note` column is where the
  // NULL facets of the zone map get exercised.
  Schema schema({Field{"id", DataType::Int64(), false},
                 Field{"x", DataType::Double(), false},
                 Field{"y", DataType::Double(), false},
                 Field{"note", DataType::Double(), true}});
  auto seeded = std::make_shared<Table>("t", schema);
  Rng rng(/*seed=*/77);
  for (int64_t i = 0; i < 600; ++i) {
    const double base = rng.Uniform(0.0, 10.0);
    ASSERT_OK(seeded->AppendRow(
        {Value::Int64(i), Value::Double(base + rng.Uniform(0.0, 1.0)),
         Value::Double(base + rng.Uniform(0.0, 1.0)),
         Value::Double(rng.Uniform(0.0, 1.0))}));
  }
  ASSERT_OK(session_->catalog()->RegisterTable(seeded));
  const std::string sql = "SELECT * FROM t SKYLINE OF x MIN, y MIN";
  const auto warm = Rows(session_.get(), sql);  // populates the cache entry
  ASSERT_FALSE(warm.empty());

  // Insert batches that stretch every zone facet: dominated interior
  // points, new global extremes (min and max movers), and NULL notes.
  int64_t next_id = 1000000;
  for (int batch = 0; batch < 8; ++batch) {
    std::vector<Row> rows;
    for (int i = 0; i < 5; ++i) {
      Row row{Value::Int64(next_id++)};
      for (int d = 0; d < 2; ++d) {
        const double u = rng.Uniform(0.0, 1.0);
        if (u < 0.15) {
          row.push_back(Value::Double(rng.Uniform(-6.0, -5.0)));  // new min
        } else if (u < 0.3) {
          row.push_back(Value::Double(rng.Uniform(50.0, 51.0)));  // new max
        } else {
          row.push_back(Value::Double(rng.Uniform(0.0, 10.0)));
        }
      }
      row.push_back(rng.Bernoulli(0.3)
                        ? Value::Null(DataType::Double())
                        : Value::Double(rng.Uniform(0.0, 1.0)));
      rows.push_back(std::move(row));
    }
    ASSERT_OK(session_->catalog()->InsertInto("t", rows));
  }
  session_->catalog()->DrainWrites();

  // (a) Incrementally-merged map == rebuilt map, facet by facet.
  ASSERT_OK_AND_ASSIGN(TablePtr table, session_->catalog()->GetTable("t"));
  const ZoneMap& maintained = table->zone_map();
  const ZoneMap rebuilt =
      ZoneMap::Build(table->rows(), table->schema().num_fields());
  ASSERT_EQ(maintained.columns.size(), rebuilt.columns.size());
  EXPECT_EQ(maintained.num_rows, rebuilt.num_rows);
  for (size_t c = 0; c < rebuilt.columns.size(); ++c) {
    SCOPED_TRACE(StrCat("column ", c));
    EXPECT_EQ(maintained.columns[c].numeric, rebuilt.columns[c].numeric);
    EXPECT_EQ(maintained.columns[c].null_count, rebuilt.columns[c].null_count);
    if (rebuilt.columns[c].has_range()) {
      EXPECT_EQ(maintained.columns[c].min, rebuilt.columns[c].min);
      EXPECT_EQ(maintained.columns[c].max, rebuilt.columns[c].max);
    }
  }

  // (b) The delta-maintained entry and zone-map-pruned cold execution agree.
  ASSERT_OK_AND_ASSIGN(auto df, session_->Sql(sql));
  ASSERT_OK_AND_ASSIGN(QueryResult served, df.Collect());
  Session cold;
  ASSERT_OK(cold.SetConf("sparkline.executors", "8"));
  ASSERT_OK(cold.catalog()->RegisterTable(table));
  const auto fresh = Rows(&cold, sql);
  EXPECT_SAME_ROWS(served.rows(), fresh);
  ASSERT_OK(cold.SetConf("sparkline.scan.zone_maps", "false"));
  ASSERT_OK(cold.SetConf("sparkline.skyline.broadcast_filter", "false"));
  EXPECT_SAME_ROWS(fresh, Rows(&cold, sql));
}

TEST_F(IncrementalSessionTest, IncrementalOffInvalidates) {
  ASSERT_OK(session_->SetConf("sparkline.cache.incremental", "false"));
  ASSERT_OK(session_->catalog()->RegisterTable(TriSkyline("t")));
  Rows(session_.get(), kSql);
  ASSERT_OK(session_->catalog()->InsertInto(
      "t", {{Value::Int64(5), Value::Double(5.0), Value::Double(5.0)}}));
  session_->catalog()->DrainWrites();
  ASSERT_OK_AND_ASSIGN(auto df, session_->Sql(kSql));
  ASSERT_OK_AND_ASSIGN(QueryResult r, df.Collect());
  EXPECT_FALSE(r.metrics.cache_hit);
  EXPECT_EQ(r.rows().size(), 3u);
  EXPECT_EQ(session_->maintainer()->stats().maintained, 0);
}

TEST_F(IncrementalSessionTest, OversizedBatchFallsBack) {
  ASSERT_OK(session_->SetConf("sparkline.cache.max_delta_batch", "2"));
  ASSERT_OK(session_->catalog()->RegisterTable(TriSkyline("t")));
  Rows(session_.get(), kSql);
  std::vector<Row> batch;
  for (int64_t i = 0; i < 3; ++i) {
    batch.push_back({Value::Int64(10 + i), Value::Double(4.0 + i),
                     Value::Double(4.0 + i)});
  }
  ASSERT_OK(session_->catalog()->InsertInto("t", batch));
  session_->catalog()->DrainWrites();
  ASSERT_OK_AND_ASSIGN(auto df, session_->Sql(kSql));
  ASSERT_OK_AND_ASSIGN(QueryResult r, df.Collect());
  EXPECT_FALSE(r.metrics.cache_hit);
  EXPECT_EQ(r.rows().size(), 3u);
  EXPECT_GT(session_->maintainer()->stats().fallbacks, 0);
}

// --- fallback taxonomy: unsound plan shapes --------------------------------

TEST_F(IncrementalSessionTest, SortAboveSkylineFallsBack) {
  ASSERT_OK(session_->catalog()->RegisterTable(TriSkyline("t")));
  const std::string sql =
      "SELECT * FROM t SKYLINE OF x MIN, y MIN ORDER BY id";
  Rows(session_.get(), sql);
  ASSERT_OK(session_->catalog()->InsertInto(
      "t", {{Value::Int64(5), Value::Double(5.0), Value::Double(5.0)}}));
  session_->catalog()->DrainWrites();
  ASSERT_OK_AND_ASSIGN(auto df, session_->Sql(sql));
  ASSERT_OK_AND_ASSIGN(QueryResult r, df.Collect());
  EXPECT_FALSE(r.metrics.cache_hit);  // no recipe -> invalidated
  EXPECT_EQ(r.rows().size(), 3u);
  EXPECT_GT(session_->maintainer()->stats().fallbacks, 0);
}

TEST_F(IncrementalSessionTest, DistinctDuplicateDimensionsFallBack) {
  ASSERT_OK(session_->catalog()->RegisterTable(TriSkyline("t")));
  const std::string sql =
      "SELECT * FROM t SKYLINE OF DISTINCT x MIN, y MIN";
  auto r0 = Rows(session_.get(), sql);
  ASSERT_EQ(r0.size(), 3u);
  // Insert a dim-equal duplicate of skyline point (1.0, 1.0): DISTINCT
  // keeps the first-encountered tuple, which a delta cannot replay.
  ASSERT_OK(session_->catalog()->InsertInto(
      "t", {{Value::Int64(7), Value::Double(1.0), Value::Double(1.0)}}));
  session_->catalog()->DrainWrites();
  ASSERT_OK_AND_ASSIGN(auto df, session_->Sql(sql));
  ASSERT_OK_AND_ASSIGN(QueryResult r, df.Collect());
  EXPECT_FALSE(r.metrics.cache_hit);
  ASSERT_OK_AND_ASSIGN(TablePtr snapshot, session_->catalog()->GetTable("t"));
  EXPECT_EQ(RowStrings(r.rows()), OracleRows(snapshot, sql));
  EXPECT_GT(session_->maintainer()->stats().fallbacks, 0);
}

TEST_F(IncrementalSessionTest, IncompleteDominanceIsInvalidationOnly) {
  // Nullable y without COMPLETE: non-transitive dominance, no recipe.
  ASSERT_OK(session_->catalog()->RegisterTable(testing::MakePointsTable(
      "t", {{1, 1.0, 1.0}, {2, 2.0, 0.5}, {3, 0.5, 2.0}},
      /*y_nullable=*/true, /*null_y_at=*/{2})));
  Rows(session_.get(), kSql);
  ASSERT_OK(session_->catalog()->InsertInto(
      "t", {{Value::Int64(9), Value::Double(0.1), Value::Double(0.1)}}));
  session_->catalog()->DrainWrites();
  ASSERT_OK_AND_ASSIGN(auto df, session_->Sql(kSql));
  ASSERT_OK_AND_ASSIGN(QueryResult r, df.Collect());
  EXPECT_FALSE(r.metrics.cache_hit);
  ASSERT_OK_AND_ASSIGN(TablePtr snapshot, session_->catalog()->GetTable("t"));
  EXPECT_EQ(RowStrings(r.rows()), OracleRows(snapshot, kSql));
  EXPECT_EQ(session_->maintainer()->stats().maintained, 0);
}

// --- injected faults at serve.delta_apply ----------------------------------

TEST_F(IncrementalSessionTest, DeltaApplyFaultDegradesToInvalidation) {
  for (const std::string& spec :
       {std::string("serve.delta_apply=error(internal)"),
        std::string("serve.delta_apply=throw")}) {
    SCOPED_TRACE(spec);
    Session session;
    ASSERT_OK(session.SetConf("sparkline.cache.enabled", "true"));
    ASSERT_OK(session.catalog()->RegisterTable(TriSkyline("t")));
    auto r0 = Rows(&session, kSql);
    ASSERT_OK(session.SetConf("sparkline.failpoints", spec));
    ASSERT_OK(session.catalog()->InsertInto(
        "t", {{Value::Int64(6), Value::Double(0.2), Value::Double(0.2)}}));
    session.catalog()->DrainWrites();
    ASSERT_OK(session.SetConf("sparkline.failpoints", ""));
    // The faulted delta was discarded, never applied: the re-query is a
    // miss that recomputes the correct (evolved) skyline.
    ASSERT_OK_AND_ASSIGN(auto df, session.Sql(kSql));
    ASSERT_OK_AND_ASSIGN(QueryResult r, df.Collect());
    EXPECT_FALSE(r.metrics.cache_hit);
    ASSERT_EQ(r.rows().size(), 1u);
    EXPECT_EQ(r.rows()[0][0].int64_value(), 6);
    const auto stats = session.maintainer()->stats();
    EXPECT_EQ(stats.maintained, 0);
    EXPECT_GT(stats.fallbacks, 0);
  }
  fail::DisarmAll();
}

// --- continuous queries (Subscribe) ----------------------------------------

TEST_F(IncrementalSessionTest, SubscribeDeliversInitialAndIncrementalDeltas) {
  ASSERT_OK(session_->catalog()->RegisterTable(TriSkyline("t")));
  std::mutex mu;
  std::vector<serve::SkylineDelta> deltas;
  ASSERT_OK_AND_ASSIGN(
      uint64_t sub_id,
      session_->Subscribe(kSql, [&](const serve::SkylineDelta& d) {
        std::lock_guard<std::mutex> lock(mu);
        deltas.push_back(d);
      }));

  // Initial delivery is synchronous: the full current skyline as a resync.
  {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(deltas.size(), 1u);
    EXPECT_TRUE(deltas[0].resync);
    EXPECT_EQ(deltas[0].added.size(), 3u);
    EXPECT_TRUE(deltas[0].removed.empty());
  }

  // Dominated insert: nothing changes, nothing is delivered.
  ASSERT_OK(session_->catalog()->InsertInto(
      "t", {{Value::Int64(5), Value::Double(5.0), Value::Double(5.0)}}));
  session_->catalog()->DrainWrites();
  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(deltas.size(), 1u);
  }

  // Dominating insert: one incremental delta, victims listed as removed.
  ASSERT_OK(session_->catalog()->InsertInto(
      "t", {{Value::Int64(6), Value::Double(0.2), Value::Double(0.2)}}));
  session_->catalog()->DrainWrites();
  {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(deltas.size(), 2u);
    EXPECT_FALSE(deltas[1].resync);
    ASSERT_EQ(deltas[1].added.size(), 1u);
    EXPECT_EQ(deltas[1].added[0][0].int64_value(), 6);
    EXPECT_EQ(deltas[1].removed.size(), 3u);
  }

  // Oversized batch: the subscription resyncs instead of classifying.
  ASSERT_OK(session_->SetConf("sparkline.cache.max_delta_batch", "0"));
  ASSERT_OK(session_->catalog()->InsertInto(
      "t", {{Value::Int64(8), Value::Double(0.1), Value::Double(0.1)}}));
  session_->catalog()->DrainWrites();
  {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(deltas.size(), 3u);
    EXPECT_TRUE(deltas[2].resync);
    ASSERT_EQ(deltas[2].added.size(), 1u);
    EXPECT_EQ(deltas[2].added[0][0].int64_value(), 8);
    EXPECT_EQ(deltas[2].removed.size(), 1u);
  }

  // After Unsubscribe nothing more arrives.
  ASSERT_OK(session_->Unsubscribe(sub_id));
  ASSERT_OK(session_->catalog()->InsertInto(
      "t", {{Value::Int64(9), Value::Double(0.01), Value::Double(0.01)}}));
  session_->catalog()->DrainWrites();
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(deltas.size(), 3u);
  EXPECT_GT(session_->maintainer()->stats().deltas_delivered, 0);
}

TEST_F(IncrementalSessionTest, SubscribeRejectsUnsoundShapes) {
  ASSERT_OK(session_->catalog()->RegisterTable(TriSkyline("t")));
  ASSERT_OK(session_->catalog()->RegisterTable(testing::MakePointsTable(
      "u", {{1, 1.0, 1.0}}, /*y_nullable=*/true, /*null_y_at=*/{0})));
  const auto ignore = [](const serve::SkylineDelta&) {};
  // Sort above the skyline.
  EXPECT_FALSE(session_
                   ->Subscribe(
                       "SELECT * FROM t SKYLINE OF x MIN, y MIN ORDER BY id",
                       ignore)
                   .ok());
  // Join below the skyline.
  EXPECT_FALSE(session_
                   ->Subscribe(
                       "SELECT t.id, t.x, u.y FROM t, u WHERE t.id = u.id "
                       "SKYLINE OF t.x MIN, u.y MIN",
                       ignore)
                   .ok());
  // Incomplete dominance (nullable dim, COMPLETE not declared).
  EXPECT_FALSE(
      session_->Subscribe("SELECT * FROM u SKYLINE OF x MIN, y MIN", ignore)
          .ok());
  // No skyline at all.
  EXPECT_FALSE(session_->Subscribe("SELECT * FROM t", ignore).ok());
  // The sound shape still works.
  EXPECT_TRUE(session_->Subscribe(kSql, ignore).ok());
}

// --- slow-listener regression ----------------------------------------------

// A listener stuck in its callback must not block writers: dispatch happens
// on the catalog's notifier thread, off every writer's critical section. If
// notifications ran on the writer's thread (the old behaviour), the first
// write below would deadlock against the blocked listener.
TEST(CatalogNotifierTest, SlowListenerDoesNotBlockWriters) {
  Catalog catalog;
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> handled{0};
  catalog.AddWriteListener([&](const WriteEvent&) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
    handled.fetch_add(1);
  });

  ASSERT_OK(catalog.RegisterTable(testing::MakePointsTable(
      "t", {{1, 1.0, 1.0}, {2, 2.0, 0.5}})));
  ASSERT_OK(catalog.InsertInto(
      "t", {{Value::Int64(3), Value::Double(0.5), Value::Double(2.0)}}));
  ASSERT_OK(catalog.InsertInto(
      "t", {{Value::Int64(4), Value::Double(3.0), Value::Double(3.0)}}));
  // All three writes returned while the listener has not finished even the
  // first event — writers never waited on it.
  EXPECT_EQ(handled.load(), 0);
  ASSERT_OK_AND_ASSIGN(TablePtr snapshot, catalog.GetTable("t"));
  EXPECT_EQ(snapshot->num_rows(), 4u);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  catalog.DrainWrites();
  EXPECT_EQ(handled.load(), 3);
}

// --- concurrency (run under TSan in CI) ------------------------------------

// Writers race readers and a subscriber. Invariants checked: no crash/race,
// every read succeeds, the subscription's cumulative adds-minus-removes
// equals the final skyline, and the query service's accounting balances.
TEST(IncrementalConcurrencyTest, WritersRaceReadersAndSubscriber) {
  Session session;
  ASSERT_OK(session.SetConf("sparkline.cache.enabled", "true"));
  ASSERT_OK(session.SetConf("sparkline.serve.max_concurrent", "4"));
  ASSERT_OK(session.catalog()->RegisterTable(
      datagen::GeneratePoints("t", 40, 3, datagen::PointDistribution::kIndependent,
                              /*seed=*/11)));
  const std::string sql = "SELECT * FROM t SKYLINE OF d0 MIN, d1 MIN, d2 MIN";

  // Subscriber state: a multiset the deltas are applied to as they arrive.
  std::mutex state_mu;
  std::map<std::string, int> state;
  std::atomic<int> negative_removals{0};
  ASSERT_OK_AND_ASSIGN(
      uint64_t sub_id, session.Subscribe(sql, [&](const serve::SkylineDelta& d) {
        std::lock_guard<std::mutex> lock(state_mu);
        for (const Row& r : d.removed) {
          auto it = state.find(RowToString(r));
          if (it == state.end()) {
            negative_removals.fetch_add(1);
          } else if (--it->second == 0) {
            state.erase(it);
          }
        }
        for (const Row& r : d.added) ++state[RowToString(r)];
      }));

  std::atomic<int64_t> next_id{1000000};
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      Rng rng(100 + static_cast<uint64_t>(w));
      for (int i = 0; i < 25; ++i) {
        std::vector<Row> batch;
        const int64_t n = rng.UniformInt(1, 3);
        for (int64_t j = 0; j < n; ++j) {
          batch.push_back({Value::Int64(next_id.fetch_add(1)),
                           Value::Double(rng.Uniform(0.0, 1.0)),
                           Value::Double(rng.Uniform(0.0, 1.0)),
                           Value::Double(rng.Uniform(0.0, 1.0))});
        }
        SL_CHECK_OK(session.catalog()->InsertInto("t", batch));
      }
    });
  }

  std::atomic<int> read_failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      for (int i = 0; i < 12; ++i) {
        if ((i + r) % 2 == 0) {
          auto fut = session.SqlAsync(sql);
          if (!fut.ok()) {
            // Admission shedding is allowed; anything else is not.
            continue;
          }
          auto result = fut->get();
          if (!result.ok() || result->rows().empty()) {
            read_failures.fetch_add(1);
          }
        } else {
          auto df = session.Sql(sql);
          if (!df.ok()) {
            read_failures.fetch_add(1);
            continue;
          }
          auto result = df->Collect();
          if (!result.ok() || result->rows().empty()) {
            read_failures.fetch_add(1);
          }
        }
      }
    });
  }

  for (auto& t : writers) t.join();
  for (auto& t : readers) t.join();
  session.catalog()->DrainWrites();

  EXPECT_EQ(read_failures.load(), 0);
  EXPECT_EQ(negative_removals.load(), 0);

  // Cumulative subscription state == fresh skyline over the final snapshot.
  ASSERT_OK_AND_ASSIGN(TablePtr snapshot, session.catalog()->GetTable("t"));
  std::vector<std::string> expected = OracleRows(snapshot, sql);
  std::vector<std::string> cumulative;
  {
    std::lock_guard<std::mutex> lock(state_mu);
    for (const auto& [row, count] : state) {
      for (int i = 0; i < count; ++i) cumulative.push_back(row);
    }
  }
  std::sort(cumulative.begin(), cumulative.end());
  EXPECT_EQ(cumulative, expected);
  ASSERT_OK(session.Unsubscribe(sub_id));

  // Service accounting balances after the drain.
  const auto service_stats = session.service()->stats();
  EXPECT_EQ(service_stats.submitted,
            service_stats.completed + service_stats.in_flight);

  // And the cached path still answers correctly after the dust settles.
  EXPECT_EQ(RowStrings(Rows(&session, sql)), expected);
}

}  // namespace
}  // namespace sparkline
