// Tests for the paper's section-7 future-work features implemented here:
// the SFS kernel, angle-based partitioning, and the lightweight cost-based
// strategy refinement.
#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "exec/planner.h"
#include "sql/parser.h"
#include "test_util.h"

namespace sparkline {
namespace {

using ::sparkline::testing::Rows;

class ExtensionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    session_ = std::make_unique<Session>();
    ASSERT_OK(session_->SetConf("sparkline.executors", "4"));
    ASSERT_OK(session_->catalog()->RegisterTable(datagen::GeneratePoints(
        "anti", 600, 3, datagen::PointDistribution::kAntiCorrelated, 5)));
    ASSERT_OK(session_->catalog()->RegisterTable(datagen::GeneratePoints(
        "tiny", 50, 2, datagen::PointDistribution::kIndependent, 6)));
  }

  std::string PhysicalTree(const std::string& sql) {
    auto df = session_->Sql(sql);
    SL_CHECK(df.ok()) << df.status().ToString();
    auto info = df->Explain();
    SL_CHECK(info.ok()) << info.status().ToString();
    return info->physical;
  }

  std::unique_ptr<Session> session_;
};

constexpr const char* kQuery =
    "SELECT * FROM anti SKYLINE OF d0 MIN, d1 MIN, d2 MIN";

TEST_F(ExtensionsTest, SfsKernelProducesSameSkyline) {
  auto bnl = Rows(session_.get(), kQuery);
  ASSERT_OK(session_->SetConf("sparkline.skyline.kernel", "sfs"));
  auto sfs = Rows(session_.get(), kQuery);
  EXPECT_SAME_ROWS(bnl, sfs);
  EXPECT_NE(PhysicalTree(kQuery).find("sfs"), std::string::npos);
}

TEST_F(ExtensionsTest, GridKernelProducesSameSkyline) {
  auto bnl = Rows(session_.get(), kQuery);
  ASSERT_OK(session_->SetConf("sparkline.skyline.kernel", "grid"));
  auto grid = Rows(session_.get(), kQuery);
  EXPECT_SAME_ROWS(bnl, grid);
  EXPECT_NE(PhysicalTree(kQuery).find("grid"), std::string::npos);
}

TEST_F(ExtensionsTest, UnknownKernelRejected) {
  EXPECT_FALSE(session_->SetConf("sparkline.skyline.kernel", "quadtree").ok());
}

TEST_F(ExtensionsTest, AnglePartitioningPreservesResults) {
  auto as_is = Rows(session_.get(), kQuery);
  for (const char* scheme : {"roundrobin", "angle"}) {
    ASSERT_OK(session_->SetConf("sparkline.skyline.partitioning", scheme));
    auto rows = Rows(session_.get(), kQuery);
    EXPECT_SAME_ROWS(as_is, rows) << scheme;
  }
}

TEST_F(ExtensionsTest, AnglePartitioningAddsExchange) {
  ASSERT_OK(session_->SetConf("sparkline.skyline.partitioning", "angle"));
  EXPECT_NE(PhysicalTree(kQuery).find("Exchange [Angle]"), std::string::npos);
  ASSERT_OK(session_->SetConf("sparkline.skyline.partitioning", "asis"));
  EXPECT_EQ(PhysicalTree(kQuery).find("Exchange [Angle]"), std::string::npos);
}

TEST_F(ExtensionsTest, AnglePartitioningPrunesMoreOnAntiCorrelatedData) {
  // Angle partitioning groups tuples that can dominate each other, so the
  // union of local skylines shipped to the global stage shrinks and fewer
  // dominance tests happen overall.
  auto tests_with = [&](const char* scheme) {
    SL_CHECK_OK(session_->SetConf("sparkline.skyline.partitioning", scheme));
    SL_CHECK_OK(session_->SetConf("sparkline.executors", "8"));
    auto df = session_->Sql(kQuery);
    SL_CHECK(df.ok());
    auto r = df->Collect();
    SL_CHECK(r.ok());
    return r->metrics.dominance_tests;
  };
  // Round-robin is the neutral baseline (contiguous chunks of generated
  // data could be accidentally ordered).
  const int64_t neutral = tests_with("roundrobin");
  const int64_t angle = tests_with("angle");
  EXPECT_LT(angle, neutral);
}

TEST_F(ExtensionsTest, CostBasedRefinementSkipsLocalStageForTinyInputs) {
  // tiny has 50 rows and anti 600; a threshold of 100 separates them.
  ASSERT_OK(
      session_->SetConf("sparkline.skyline.nonDistributedThreshold", "100"));
  const std::string tiny_q = "SELECT * FROM tiny SKYLINE OF d0 MIN, d1 MIN";
  EXPECT_EQ(PhysicalTree(tiny_q).find("LocalSkyline"), std::string::npos);
  // Above the threshold the distributed plan is kept.
  EXPECT_NE(PhysicalTree(kQuery).find("LocalSkyline"), std::string::npos);
  // Results stay the same either way.
  auto with = Rows(session_.get(), tiny_q);
  ASSERT_OK(session_->SetConf("sparkline.skyline.nonDistributedThreshold", "0"));
  auto without = Rows(session_.get(), tiny_q);
  EXPECT_SAME_ROWS(with, without);
}

TEST_F(ExtensionsTest, CostBasedRefinementIgnoresForcedStrategies) {
  ASSERT_OK(session_->SetConf("sparkline.skyline.nonDistributedThreshold",
                              "1000000"));
  ASSERT_OK(session_->SetConf("sparkline.skyline.strategy", "distributed"));
  EXPECT_NE(PhysicalTree(kQuery).find("LocalSkyline"), std::string::npos);
}

TEST(EstimateRowCountTest, WalksThePlan) {
  Session session;
  ASSERT_OK(session.catalog()->RegisterTable(datagen::GeneratePoints(
      "pts", 1000, 2, datagen::PointDistribution::kIndependent, 7)));
  auto analyzed = [&](const std::string& sql) {
    auto plan = ParseSql(sql);
    SL_CHECK(plan.ok());
    auto a = session.Analyze(*plan);
    SL_CHECK(a.ok()) << a.status().ToString();
    return *a;
  };
  EXPECT_EQ(EstimateRowCount(analyzed("SELECT * FROM pts")), 1000);
  EXPECT_EQ(EstimateRowCount(analyzed("SELECT * FROM pts WHERE d0 < 0.5")),
            500);
  EXPECT_EQ(EstimateRowCount(analyzed("SELECT * FROM pts LIMIT 10")), 10);
  EXPECT_EQ(EstimateRowCount(analyzed("SELECT count(*) FROM pts")), 1);
  EXPECT_EQ(EstimateRowCount(
                analyzed("SELECT * FROM pts a CROSS JOIN pts b LIMIT 5")),
            5);
  EXPECT_EQ(EstimateRowCount(analyzed(
                "SELECT d0 FROM pts SKYLINE OF d0 MIN, d1 MIN")),
            1000);  // skylines are conservatively passed through
}

TEST(SfsKernelTest, MatchesAcrossStrategiesAndData) {
  Session session;
  ASSERT_OK(session.SetConf("sparkline.skyline.kernel", "sfs"));
  ASSERT_OK(session.catalog()->RegisterTable(datagen::GeneratePoints(
      "pts", 400, 4, datagen::PointDistribution::kIndependent, 9)));
  const std::string q =
      "SELECT * FROM pts SKYLINE OF d0 MIN, d1 MIN, d2 MAX, d3 MIN";
  auto expected = Rows(&session, q);
  for (const char* strategy : {"distributed", "non_distributed"}) {
    ASSERT_OK(session.SetConf("sparkline.skyline.strategy", strategy));
    auto rows = Rows(&session, q);
    EXPECT_SAME_ROWS(expected, rows) << strategy;
  }
}

}  // namespace
}  // namespace sparkline
