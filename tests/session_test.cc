// Tests for the Session facade: configuration keys, catalog management,
// result rendering, explain output and error paths.
#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "test_util.h"

namespace sparkline {
namespace {

TEST(SessionConfigTest, ExecutorsBounds) {
  Session session;
  EXPECT_OK(session.SetConf("sparkline.executors", "8"));
  EXPECT_EQ(session.config().cluster.num_executors, 8);
  EXPECT_FALSE(session.SetConf("sparkline.executors", "0").ok());
  EXPECT_FALSE(session.SetConf("sparkline.executors", "99999").ok());
  EXPECT_FALSE(session.SetConf("sparkline.executors", "many").ok());
}

TEST(SessionConfigTest, StrategyValues) {
  Session session;
  EXPECT_OK(session.SetConf("sparkline.skyline.strategy", "non_distributed"));
  EXPECT_EQ(session.config().skyline_strategy,
            SkylineStrategy::kNonDistributedComplete);
  EXPECT_FALSE(session.config().skyline_reference);
  EXPECT_OK(session.SetConf("sparkline.skyline.strategy", "reference"));
  EXPECT_TRUE(session.config().skyline_reference);
  EXPECT_OK(session.SetConf("sparkline.skyline.strategy", "auto"));
  EXPECT_FALSE(session.config().skyline_reference);
  EXPECT_FALSE(session.SetConf("sparkline.skyline.strategy", "quantum").ok());
}

TEST(SessionConfigTest, BooleanParsing) {
  Session session;
  for (const char* v : {"true", "1", "on"}) {
    EXPECT_OK(session.SetConf("sparkline.optimizer.filterPushdown", v));
    EXPECT_TRUE(session.config().optimizer.filter_pushdown);
  }
  for (const char* v : {"false", "0", "off"}) {
    EXPECT_OK(session.SetConf("sparkline.optimizer.filterPushdown", v));
    EXPECT_FALSE(session.config().optimizer.filter_pushdown);
  }
  EXPECT_FALSE(
      session.SetConf("sparkline.optimizer.filterPushdown", "maybe").ok());
}

TEST(SessionConfigTest, UnknownKeyRejected) {
  Session session;
  auto s = session.SetConf("sparkline.nope", "1");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("sparkline.nope"), std::string::npos);
}

TEST(SessionConfigTest, MemoryOverheadInMb) {
  Session session;
  EXPECT_OK(session.SetConf("sparkline.memory.executorOverheadMb", "128"));
  EXPECT_EQ(session.config().cluster.executor_overhead_bytes, 128ll << 20);
}

TEST(SessionCatalogTest, RegisterAndDrop) {
  Session session;
  Schema s({Field{"x", DataType::Int64(), false}});
  ASSERT_OK(session.catalog()->RegisterTable(std::make_shared<Table>("t", s)));
  EXPECT_FALSE(
      session.catalog()->RegisterTable(std::make_shared<Table>("T", s)).ok());
  EXPECT_TRUE(session.catalog()->HasTable("t"));
  EXPECT_EQ(session.catalog()->ListTables().size(), 1u);
  EXPECT_OK(session.catalog()->DropTable("T"));  // case-insensitive
  EXPECT_FALSE(session.catalog()->HasTable("t"));
  EXPECT_FALSE(session.catalog()->DropTable("t").ok());
}

TEST(SessionTest, SqlParseErrorsSurface) {
  Session session;
  auto r = session.Sql("SELEC 1");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(SessionTest, AnalysisErrorsSurface) {
  Session session;
  auto r = session.Sql("SELECT x FROM missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kAnalysisError);
}

TEST(QueryResultTest, ToStringRendersTable) {
  Session session;
  ASSERT_OK(session.catalog()->RegisterTable(datagen::GeneratePoints(
      "p", 3, 1, datagen::PointDistribution::kIndependent, 1)));
  ASSERT_OK_AND_ASSIGN(DataFrame df, session.Table("p"));
  ASSERT_OK_AND_ASSIGN(QueryResult r, df.Collect());
  const std::string rendered = r.ToString();
  EXPECT_NE(rendered.find("| id"), std::string::npos);
  EXPECT_NE(rendered.find("+"), std::string::npos);
  // Truncation notice.
  const std::string truncated = r.ToString(1);
  EXPECT_NE(truncated.find("showing 1 of 3"), std::string::npos);
}

TEST(QueryResultTest, SchemaMatchesAttrs) {
  Session session;
  ASSERT_OK(session.catalog()->RegisterTable(datagen::GeneratePoints(
      "p", 2, 2, datagen::PointDistribution::kIndependent, 1)));
  ASSERT_OK_AND_ASSIGN(DataFrame df, session.Table("p"));
  ASSERT_OK_AND_ASSIGN(QueryResult r, df.Collect());
  EXPECT_EQ(r.schema().num_fields(), 3u);
  EXPECT_EQ(r.schema().field(1).name, "d0");
}

TEST(QueryResultTest, MetricsToStringMentionsEverything) {
  QueryMetrics m;
  m.wall_ms = 12.5;
  m.simulated_ms = 7.25;
  m.peak_memory_bytes = 5 << 20;
  m.dominance_tests = 42;
  const std::string s = m.ToString();
  EXPECT_NE(s.find("wall="), std::string::npos);
  EXPECT_NE(s.find("simulated="), std::string::npos);
  EXPECT_NE(s.find("dominance_tests=42"), std::string::npos);
}

TEST(SessionTest, ExplainListsAllPipelineStages) {
  Session session;
  ASSERT_OK(session.catalog()->RegisterTable(datagen::GeneratePoints(
      "p", 10, 2, datagen::PointDistribution::kIndependent, 1)));
  auto df = session.Sql("SELECT * FROM p SKYLINE OF d0 MIN, d1 MIN");
  ASSERT_TRUE(df.ok());
  ASSERT_OK_AND_ASSIGN(ExplainInfo info, df->Explain());
  EXPECT_NE(info.analyzed.find("Skyline"), std::string::npos);
  EXPECT_NE(info.optimized.find("Skyline"), std::string::npos);
  EXPECT_NE(info.physical.find("GlobalSkyline"), std::string::npos);
  const std::string all = info.ToString();
  EXPECT_NE(all.find("Analyzed Logical Plan"), std::string::npos);
  EXPECT_NE(all.find("Optimized Logical Plan"), std::string::npos);
  EXPECT_NE(all.find("Physical Plan"), std::string::npos);
}

TEST(SessionTest, IndependentSessionsDoNotShareCatalogs) {
  Session a, b;
  Schema s({Field{"x", DataType::Int64(), false}});
  ASSERT_OK(a.catalog()->RegisterTable(std::make_shared<Table>("t", s)));
  EXPECT_FALSE(b.catalog()->HasTable("t"));
}

TEST(SessionTest, ConfigChangesAffectNextQueryOnly) {
  Session session;
  ASSERT_OK(session.catalog()->RegisterTable(datagen::GeneratePoints(
      "p", 100, 2, datagen::PointDistribution::kIndependent, 2)));
  ASSERT_OK(session.SetConf("sparkline.executors", "2"));
  auto df = session.Sql("SELECT * FROM p");
  ASSERT_TRUE(df.ok());
  ASSERT_OK_AND_ASSIGN(QueryResult r1, df->Collect());
  ASSERT_OK(session.SetConf("sparkline.executors", "7"));
  // The DataFrame is lazily executed, so the new executor count applies.
  ASSERT_OK_AND_ASSIGN(QueryResult r2, df->Collect());
  EXPECT_EQ(r1.num_rows(), r2.num_rows());
  EXPECT_GT(r2.metrics.peak_memory_bytes, r1.metrics.peak_memory_bytes);
}

}  // namespace
}  // namespace sparkline
