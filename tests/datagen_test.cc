// Tests for the dataset generators and CSV IO.
#include <cstdio>
#include <set>

#include <gtest/gtest.h>

#include "datagen/csv.h"
#include "datagen/datagen.h"
#include "skyline/algorithms.h"
#include "test_util.h"

namespace sparkline {
namespace datagen {
namespace {

TEST(AirbnbGenTest, SchemaMatchesPaperTable1) {
  AirbnbOptions opts;
  opts.num_rows = 100;
  auto t = GenerateAirbnb(opts);
  const Schema& s = t->schema();
  ASSERT_EQ(s.num_fields(), 7u);
  EXPECT_EQ(s.field(0).name, "id");
  EXPECT_EQ(s.field(1).name, "price");
  EXPECT_EQ(s.field(2).name, "accommodates");
  EXPECT_EQ(s.field(3).name, "bedrooms");
  EXPECT_EQ(s.field(4).name, "beds");
  EXPECT_EQ(s.field(5).name, "number_of_reviews");
  EXPECT_EQ(s.field(6).name, "review_scores_rating");
  EXPECT_EQ(t->num_rows(), 100u);
}

TEST(AirbnbGenTest, DeterministicInSeed) {
  AirbnbOptions opts;
  opts.num_rows = 50;
  auto a = GenerateAirbnb(opts);
  auto b = GenerateAirbnb(opts);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(RowToString(a->rows()[i]), RowToString(b->rows()[i]));
  }
}

TEST(AirbnbGenTest, CompleteVariantHasNoNulls) {
  AirbnbOptions opts;
  opts.num_rows = 200;
  auto t = GenerateAirbnb(opts);  // incomplete = false
  for (const auto& row : t->rows()) {
    for (const auto& v : row) EXPECT_FALSE(v.is_null());
  }
}

TEST(AirbnbGenTest, IncompleteVariantCompleteFractionNearPaper) {
  // Paper section 6.2: 820,698 complete of 1,193,465 (~69%).
  AirbnbOptions opts;
  opts.num_rows = 5000;
  opts.incomplete = true;
  auto t = GenerateAirbnb(opts);
  auto complete = CompleteSubset(*t, "complete");
  const double frac =
      static_cast<double>(complete->num_rows()) / t->num_rows();
  EXPECT_NEAR(frac, 0.69, 0.08);
}

TEST(StoreSalesGenTest, SchemaMatchesPaperTable2) {
  StoreSalesOptions opts;
  opts.num_rows = 100;
  auto t = GenerateStoreSales(opts);
  ASSERT_EQ(t->schema().num_fields(), 8u);
  EXPECT_EQ(t->schema().field(2).name, "ss_quantity");
  EXPECT_EQ(t->schema().field(7).name, "ss_ext_sales_price");
}

TEST(StoreSalesGenTest, PriceCorrelationsHold) {
  StoreSalesOptions opts;
  opts.num_rows = 500;
  auto t = GenerateStoreSales(opts);
  for (const auto& row : t->rows()) {
    const double wholesale = row[3].double_value();
    const double list = row[4].double_value();
    const double sales = row[5].double_value();
    EXPECT_GE(list, wholesale);  // list price marks up wholesale cost
    EXPECT_LE(sales, list + 1e-9);
  }
}

TEST(StoreSalesGenTest, QuantityIsLowCardinality) {
  StoreSalesOptions opts;
  opts.num_rows = 2000;
  auto t = GenerateStoreSales(opts);
  std::set<int64_t> values;
  for (const auto& row : t->rows()) values.insert(row[2].int64_value());
  EXPECT_LE(values.size(), 100u);
}

TEST(StoreSalesGenTest, IncompleteVariantInjectsNulls) {
  StoreSalesOptions opts;
  opts.num_rows = 2000;
  opts.incomplete = true;
  auto t = GenerateStoreSales(opts);
  size_t nulls = 0;
  for (const auto& row : t->rows()) {
    for (size_t c = 2; c < 8; ++c) nulls += row[c].is_null() ? 1 : 0;
  }
  const double rate = static_cast<double>(nulls) / (2000.0 * 6.0);
  EXPECT_NEAR(rate, opts.null_rate, 0.02);
  // Keys are never null.
  for (const auto& row : t->rows()) {
    EXPECT_FALSE(row[0].is_null());
    EXPECT_FALSE(row[1].is_null());
  }
}

TEST(MusicBrainzGenTest, TablesAndConstraints) {
  MusicBrainzOptions opts;
  opts.num_recordings = 500;
  auto mb = GenerateMusicBrainz(opts);
  EXPECT_EQ(mb.recording_complete->num_rows(), 500u);
  EXPECT_EQ(mb.recording_incomplete->num_rows(), 500u);
  EXPECT_EQ(mb.recording_meta->num_rows(), 500u);
  EXPECT_GT(mb.track->num_rows(), 0u);
  ASSERT_EQ(mb.recording_complete->constraints().foreign_keys.size(), 1u);
  EXPECT_EQ(mb.recording_complete->constraints().foreign_keys[0].ref_table,
            "recording_meta");
}

TEST(MusicBrainzGenTest, CompleteRecordingsHaveNoNulls) {
  auto mb = GenerateMusicBrainz({500, 9});
  for (const auto& row : mb.recording_complete->rows()) {
    for (const auto& v : row) EXPECT_FALSE(v.is_null());
  }
  size_t nulls = 0;
  for (const auto& row : mb.recording_incomplete->rows()) {
    nulls += row[1].is_null() ? 1 : 0;
  }
  EXPECT_GT(nulls, 0u);
}

TEST(MusicBrainzGenTest, RatingsAreSparse) {
  auto mb = GenerateMusicBrainz({1000, 10});
  size_t rated = 0;
  for (const auto& row : mb.recording_meta->rows()) {
    rated += row[1].is_null() ? 0 : 1;
  }
  EXPECT_NEAR(static_cast<double>(rated) / 1000.0, 0.34, 0.06);
}

TEST(PointsGenTest, DistributionsAffectSkylineSize) {
  // Anti-correlated data has (much) larger skylines than correlated data --
  // the classic skyline workload fact the micro benches rely on.
  auto corr = GeneratePoints("c", 1000, 3, PointDistribution::kCorrelated, 3);
  auto anti =
      GeneratePoints("a", 1000, 3, PointDistribution::kAntiCorrelated, 3);
  auto skyline_size = [](const TablePtr& t) {
    std::vector<skyline::BoundDimension> dims{{1, SkylineGoal::kMin},
                                              {2, SkylineGoal::kMin},
                                              {3, SkylineGoal::kMin}};
    return skyline::BruteForceSkyline(t->rows(), dims, {}).size();
  };
  EXPECT_GT(skyline_size(anti), 3 * skyline_size(corr));
}

TEST(CsvTest, RoundTripsValuesAndNulls) {
  Schema s({Field{"i", DataType::Int64(), false},
            Field{"d", DataType::Double(), true},
            Field{"t", DataType::String(), true}});
  auto t = std::make_shared<Table>("rt", s);
  ASSERT_OK(t->AppendRow(
      {Value::Int64(1), Value::Double(2.5), Value::String("plain")}));
  ASSERT_OK(t->AppendRow({Value::Int64(2), Value::Null(DataType::Double()),
                          Value::String("with, comma and \"quote\"")}));
  ASSERT_OK(t->AppendRow(
      {Value::Int64(3), Value::Double(-1), Value::Null(DataType::String())}));

  const std::string path = ::testing::TempDir() + "/sparkline_csv_test.csv";
  ASSERT_OK(WriteCsv(*t, path));
  auto back = ReadCsv(path, s, "rt2");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ((*back)->num_rows(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(RowToString(t->rows()[i]), RowToString((*back)->rows()[i]));
  }
  std::remove(path.c_str());
}

TEST(CsvTest, HeaderMismatchFails) {
  Schema a({Field{"x", DataType::Int64(), false}});
  auto t = std::make_shared<Table>("x", a);
  const std::string path = ::testing::TempDir() + "/sparkline_csv_hdr.csv";
  ASSERT_OK(WriteCsv(*t, path));
  Schema b({Field{"y", DataType::Int64(), false}});
  EXPECT_FALSE(ReadCsv(path, b, "y").ok());
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileFails) {
  Schema s({Field{"x", DataType::Int64(), false}});
  EXPECT_FALSE(ReadCsv("/nonexistent/file.csv", s, "x").ok());
}

}  // namespace
}  // namespace datagen
}  // namespace sparkline
