// Tests for expression construction, evaluation semantics (SQL three-valued
// logic, null propagation) and physical binding.
#include <gtest/gtest.h>

#include "expr/evaluator.h"
#include "expr/expression.h"

namespace sparkline {
namespace {

ExprPtr I(int64_t v) { return Literal::Make(Value::Int64(v)); }
ExprPtr D(double v) { return Literal::Make(Value::Double(v)); }
ExprPtr B(bool v) { return Literal::Make(Value::Bool(v)); }
ExprPtr NullLit(DataType t = DataType::Int64()) {
  return Literal::Make(Value::Null(t));
}
ExprPtr Bin(BinaryOp op, ExprPtr l, ExprPtr r) {
  return BinaryExpr::Make(op, std::move(l), std::move(r));
}

Value Eval(const ExprPtr& e) {
  Row empty;
  auto r = EvalExpr(*e, empty);
  SL_CHECK(r.ok()) << r.status().ToString();
  return *r;
}

TEST(ExprEvalTest, Arithmetic) {
  EXPECT_EQ(Eval(Bin(BinaryOp::kAdd, I(2), I(3))).int64_value(), 5);
  EXPECT_EQ(Eval(Bin(BinaryOp::kSub, I(2), I(5))).int64_value(), -3);
  EXPECT_EQ(Eval(Bin(BinaryOp::kMul, I(4), I(6))).int64_value(), 24);
  EXPECT_DOUBLE_EQ(Eval(Bin(BinaryOp::kDiv, I(7), I(2))).double_value(), 3.5);
  EXPECT_EQ(Eval(Bin(BinaryOp::kMod, I(7), I(4))).int64_value(), 3);
}

TEST(ExprEvalTest, MixedNumericWidens) {
  Value v = Eval(Bin(BinaryOp::kAdd, I(2), D(0.5)));
  EXPECT_EQ(v.type(), DataType::Double());
  EXPECT_DOUBLE_EQ(v.double_value(), 2.5);
}

TEST(ExprEvalTest, DivisionByZeroIsNull) {
  EXPECT_TRUE(Eval(Bin(BinaryOp::kDiv, I(1), I(0))).is_null());
  EXPECT_TRUE(Eval(Bin(BinaryOp::kMod, I(1), I(0))).is_null());
}

TEST(ExprEvalTest, NullPropagatesThroughArithmetic) {
  EXPECT_TRUE(Eval(Bin(BinaryOp::kAdd, I(1), NullLit())).is_null());
  EXPECT_TRUE(Eval(Bin(BinaryOp::kLt, NullLit(), I(1))).is_null());
}

TEST(ExprEvalTest, Comparisons) {
  EXPECT_TRUE(Eval(Bin(BinaryOp::kLt, I(1), I(2))).bool_value());
  EXPECT_TRUE(Eval(Bin(BinaryOp::kGe, D(2.0), I(2))).bool_value());
  EXPECT_TRUE(Eval(Bin(BinaryOp::kNeq, I(1), I(2))).bool_value());
  EXPECT_FALSE(Eval(Bin(BinaryOp::kEq, I(1), I(2))).bool_value());
}

TEST(ExprEvalTest, ThreeValuedAnd) {
  // false AND NULL = false; true AND NULL = NULL.
  EXPECT_FALSE(
      Eval(Bin(BinaryOp::kAnd, B(false), NullLit(DataType::Bool()))).bool_value());
  EXPECT_TRUE(
      Eval(Bin(BinaryOp::kAnd, B(true), NullLit(DataType::Bool()))).is_null());
  EXPECT_TRUE(Eval(Bin(BinaryOp::kAnd, B(true), B(true))).bool_value());
}

TEST(ExprEvalTest, ThreeValuedOr) {
  // true OR NULL = true; false OR NULL = NULL.
  EXPECT_TRUE(
      Eval(Bin(BinaryOp::kOr, B(true), NullLit(DataType::Bool()))).bool_value());
  EXPECT_TRUE(
      Eval(Bin(BinaryOp::kOr, B(false), NullLit(DataType::Bool()))).is_null());
}

TEST(ExprEvalTest, NotAndIsNull) {
  EXPECT_FALSE(Eval(UnaryExpr::Make(UnaryOp::kNot, B(true))).bool_value());
  EXPECT_TRUE(Eval(UnaryExpr::Make(UnaryOp::kNot, NullLit(DataType::Bool())))
                  .is_null());
  EXPECT_TRUE(Eval(UnaryExpr::Make(UnaryOp::kIsNull, NullLit())).bool_value());
  EXPECT_TRUE(
      Eval(UnaryExpr::Make(UnaryOp::kIsNotNull, I(1))).bool_value());
}

TEST(ExprEvalTest, Negate) {
  EXPECT_EQ(Eval(UnaryExpr::Make(UnaryOp::kNegate, I(5))).int64_value(), -5);
  EXPECT_DOUBLE_EQ(
      Eval(UnaryExpr::Make(UnaryOp::kNegate, D(2.5))).double_value(), -2.5);
}

TEST(ExprEvalTest, Cast) {
  EXPECT_DOUBLE_EQ(
      Eval(Cast::Make(I(3), DataType::Double())).double_value(), 3.0);
  EXPECT_EQ(Eval(Cast::Make(D(3.7), DataType::Int64())).int64_value(), 4);
}

ExprPtr Fn(BuiltinFn fn, const char* name, std::vector<ExprPtr> args) {
  return ExprPtr(
      std::make_shared<FunctionCall>(name, std::move(args), fn));
}

TEST(ExprEvalTest, IfNull) {
  EXPECT_EQ(
      Eval(Fn(BuiltinFn::kIfNull, "ifnull", {NullLit(), I(7)})).int64_value(),
      7);
  EXPECT_EQ(
      Eval(Fn(BuiltinFn::kIfNull, "ifnull", {I(3), I(7)})).int64_value(), 3);
}

TEST(ExprEvalTest, Coalesce) {
  EXPECT_EQ(Eval(Fn(BuiltinFn::kCoalesce, "coalesce",
                    {NullLit(), NullLit(), I(9)}))
                .int64_value(),
            9);
  EXPECT_TRUE(
      Eval(Fn(BuiltinFn::kCoalesce, "coalesce", {NullLit()})).is_null());
}

TEST(ExprEvalTest, AbsLeastGreatestRound) {
  EXPECT_EQ(Eval(Fn(BuiltinFn::kAbs, "abs", {I(-4)})).int64_value(), 4);
  EXPECT_EQ(
      Eval(Fn(BuiltinFn::kLeast, "least", {I(3), NullLit(), I(1)})).int64_value(),
      1);
  EXPECT_EQ(Eval(Fn(BuiltinFn::kGreatest, "greatest", {I(3), I(9)}))
                .int64_value(),
            9);
  EXPECT_DOUBLE_EQ(
      Eval(Fn(BuiltinFn::kRound, "round", {D(2.567), I(1)})).double_value(),
      2.6);
}

TEST(ExprBindTest, BindsById) {
  Attribute a{"x", DataType::Int64(), false, 100, ""};
  Attribute b{"y", DataType::Double(), true, 101, ""};
  ExprPtr e = Bin(BinaryOp::kAdd, a.ToRef(), b.ToRef());
  auto bound = BindExpression(e, {b, a});  // note: reversed order
  ASSERT_TRUE(bound.ok());
  Row row{Value::Double(0.5), Value::Int64(2)};
  auto v = EvalExpr(**bound, row);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->double_value(), 2.5);
}

TEST(ExprBindTest, UnknownIdFails) {
  Attribute a{"x", DataType::Int64(), false, 100, ""};
  auto bound = BindExpression(a.ToRef(), {});
  EXPECT_FALSE(bound.ok());
  EXPECT_EQ(bound.status().code(), StatusCode::kPlanError);
}

TEST(ExprTest, ExprIdsAreUnique) {
  EXPECT_NE(NextExprId(), NextExprId());
}

TEST(ExprTest, AliasKeepsIdThroughRebuild) {
  auto alias = std::make_shared<Alias>(I(1), "one");
  ExprId id = alias->id();
  auto rebuilt = alias->WithNewChildren({I(2)});
  EXPECT_EQ(static_cast<const Alias&>(*rebuilt).id(), id);
}

TEST(ExprTest, ContainsAggregate) {
  ExprPtr agg = AggregateExpr::Make(AggFn::kSum, I(1));
  EXPECT_TRUE(Bin(BinaryOp::kAdd, agg, I(1))->ContainsAggregate());
  EXPECT_FALSE(Bin(BinaryOp::kAdd, I(1), I(1))->ContainsAggregate());
}

TEST(ExprTest, SplitAndCombineConjuncts) {
  ExprPtr e = Bin(BinaryOp::kAnd, Bin(BinaryOp::kAnd, B(true), B(false)),
                  Bin(BinaryOp::kOr, B(true), B(false)));
  auto parts = SplitConjuncts(e);
  EXPECT_EQ(parts.size(), 3u);
  ExprPtr back = CombineConjuncts(parts);
  EXPECT_EQ(back->ToString(), e->ToString());
  EXPECT_EQ(CombineConjuncts({}), nullptr);
}

TEST(ExprTest, TransformRewritesBottomUp) {
  ExprPtr e = Bin(BinaryOp::kAdd, I(1), Bin(BinaryOp::kAdd, I(2), I(3)));
  int literals = 0;
  ExprPtr out = Expression::Transform(e, [&](const ExprPtr& n) -> ExprPtr {
    if (n->kind() == ExprKind::kLiteral) {
      ++literals;
      return I(static_cast<const Literal&>(*n).value().int64_value() * 10);
    }
    return n;
  });
  EXPECT_EQ(literals, 3);
  Row empty;
  EXPECT_EQ(EvalExpr(*out, empty)->int64_value(), 60);
}

TEST(ExprTest, IsConstantExpr) {
  EXPECT_TRUE(IsConstantExpr(Bin(BinaryOp::kAdd, I(1), I(2))));
  Attribute a{"x", DataType::Int64(), false, 55, ""};
  EXPECT_FALSE(IsConstantExpr(Bin(BinaryOp::kAdd, I(1), a.ToRef())));
  EXPECT_FALSE(IsConstantExpr(AggregateExpr::Make(AggFn::kSum, I(1))));
}

TEST(ExprTest, SkylineDimensionToString) {
  Attribute a{"price", DataType::Double(), false, 9, ""};
  EXPECT_EQ(SkylineDimension::Make(a.ToRef(), SkylineGoal::kMin)->ToString(),
            "price#9 MIN");
  EXPECT_EQ(SkylineDimension::Make(a.ToRef(), SkylineGoal::kDiff)->ToString(),
            "price#9 DIFF");
}

TEST(ExprTest, NullabilityRules) {
  Attribute nn{"x", DataType::Int64(), false, 1, ""};
  Attribute yn{"y", DataType::Int64(), true, 2, ""};
  EXPECT_FALSE(Bin(BinaryOp::kAdd, nn.ToRef(), nn.ToRef())->nullable());
  EXPECT_TRUE(Bin(BinaryOp::kAdd, nn.ToRef(), yn.ToRef())->nullable());
  // ifnull(nullable, non-nullable) is non-nullable.
  EXPECT_FALSE(
      Fn(BuiltinFn::kIfNull, "ifnull", {yn.ToRef(), I(0)})->nullable());
  EXPECT_FALSE(UnaryExpr::Make(UnaryOp::kIsNull, yn.ToRef())->nullable());
}

TEST(ExprEvalTest, PredicateRequiresBoolean) {
  Row empty;
  EXPECT_FALSE(EvalPredicate(*I(1), empty).ok());
  auto null_pred = EvalPredicate(*NullLit(DataType::Bool()), empty);
  ASSERT_TRUE(null_pred.ok());
  EXPECT_FALSE(*null_pred);  // NULL is not TRUE
}

}  // namespace
}  // namespace sparkline
