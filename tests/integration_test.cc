// Integration tests: the paper's complex MusicBrainz queries (Appendix E,
// Listings 11-14) running end-to-end, including skyline-vs-reference
// equivalence on top of joins and aggregates.
#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "test_util.h"

namespace sparkline {
namespace {

using ::sparkline::testing::Rows;

// Listing 11: the complete base query.
constexpr const char* kCompleteBase = R"(
SELECT
  r.id,
  ifnull(r.length, 0) AS length,
  r.video,
  ifnull(rm.rating, 0) AS rating,
  ifnull(rm.rating_count, 0) AS rating_count,
  recording_tracks.num_tracks,
  recording_tracks.min_position
FROM recording_complete r LEFT OUTER JOIN (
  SELECT
    ri.id AS id,
    count(ti.recording) AS num_tracks,
    min(ti.position) AS min_position
  FROM recording_complete ri
  JOIN track ti ON ti.recording = ri.id
  GROUP BY ri.id
) recording_tracks USING (id)
JOIN recording_meta rm USING (id)
)";

// Listing 14: the complete skyline query (6 dimensions).
const std::string kSkylineQuery = std::string("SELECT * FROM (") +
                                  kCompleteBase +
                                  R"() SKYLINE OF COMPLETE
  rating MAX,
  rating_count MAX, length MIN,
  video MAX,
  num_tracks MAX,
  min_position MIN)";

// Listing 13: the reference rewriting of the same query.
const std::string kReferenceQuery =
    std::string("SELECT * FROM (SELECT * FROM (") + kCompleteBase +
    ")) AS o WHERE NOT EXISTS( SELECT * FROM (SELECT * FROM (" +
    kCompleteBase + R"()) AS i WHERE
      i.rating >= o.rating AND
      i.rating_count >= o.rating_count AND
      i.length <= o.length AND
      i.video >= o.video AND
      i.num_tracks >= o.num_tracks AND
      i.min_position <= o.min_position AND (
      i.rating > o.rating OR
      i.rating_count > o.rating_count OR
      i.length < o.length OR
      i.video > o.video OR
      i.num_tracks > o.num_tracks OR
      i.min_position < o.min_position ) ))";

class MusicBrainzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    session_ = std::make_unique<Session>();
    ASSERT_OK(session_->SetConf("sparkline.executors", "3"));
    datagen::MusicBrainzOptions opts;
    opts.num_recordings = 400;
    auto mb = datagen::GenerateMusicBrainz(opts);
    ASSERT_OK(session_->catalog()->RegisterTable(mb.recording_complete));
    ASSERT_OK(session_->catalog()->RegisterTable(mb.recording_incomplete));
    ASSERT_OK(session_->catalog()->RegisterTable(mb.recording_meta));
    ASSERT_OK(session_->catalog()->RegisterTable(mb.track));
  }

  std::unique_ptr<Session> session_;
};

TEST_F(MusicBrainzTest, BaseQueryRuns) {
  auto rows = Rows(session_.get(), kCompleteBase);
  EXPECT_EQ(rows.size(), 400u);
  // ifnull columns are never null.
  for (const auto& r : rows) {
    EXPECT_FALSE(r[1].is_null());  // length
    EXPECT_FALSE(r[3].is_null());  // rating
    EXPECT_FALSE(r[4].is_null());  // rating_count
  }
}

TEST_F(MusicBrainzTest, IncompleteBaseQueryRuns) {
  // Listing 12: SELECT * over the incomplete recording table.
  auto rows = Rows(session_.get(), R"(
    SELECT * FROM recording_incomplete r
    LEFT OUTER JOIN (
      SELECT ri.id AS id, count(ti.recording) AS num_tracks,
             min(ti.position) AS min_position
      FROM recording_incomplete ri
      JOIN track ti ON ti.recording = ri.id
      GROUP BY ri.id
    ) recording_tracks USING (id)
    JOIN recording_meta rm USING (id))");
  EXPECT_EQ(rows.size(), 400u);
}

TEST_F(MusicBrainzTest, SkylineQueryMatchesReference) {
  // The paper's section 5.9 verification on the complex query: integrated
  // skyline == Listing 13 rewriting. Every recording has >= 1 track in the
  // complete table, so num_tracks/min_position are non-null and the plain
  // SQL NULL semantics cannot diverge.
  auto native = Rows(session_.get(), kSkylineQuery);
  auto reference = Rows(session_.get(), kReferenceQuery);
  EXPECT_SAME_ROWS(native, reference);
  EXPECT_GT(native.size(), 0u);
  EXPECT_LT(native.size(), 400u);
}

TEST_F(MusicBrainzTest, AllStrategiesAgreeOnComplexQuery) {
  auto expected = Rows(session_.get(), kSkylineQuery);
  for (const char* strategy : {"distributed", "non_distributed", "incomplete"}) {
    ASSERT_OK(session_->SetConf("sparkline.skyline.strategy", strategy));
    auto rows = Rows(session_.get(), kSkylineQuery);
    EXPECT_SAME_ROWS(expected, rows) << strategy;
  }
}

TEST_F(MusicBrainzTest, IncompleteSkylineRuns) {
  auto rows = Rows(session_.get(), R"(
    SELECT id, length, video FROM recording_incomplete
    SKYLINE OF length MIN, video MAX)");
  EXPECT_GT(rows.size(), 0u);
}

TEST_F(MusicBrainzTest, ExecutorScalingKeepsResultsStable) {
  auto expected = Rows(session_.get(), kSkylineQuery);
  for (const char* execs : {"1", "2", "5"}) {
    ASSERT_OK(session_->SetConf("sparkline.executors", execs));
    auto rows = Rows(session_.get(), kSkylineQuery);
    EXPECT_SAME_ROWS(expected, rows) << execs << " executors";
  }
}

TEST_F(MusicBrainzTest, MemoryGrowsWithExecutors) {
  // Paper section 6.5 / Appendix C: per-executor environment overhead makes
  // peak memory grow with the executor count.
  auto metrics_for = [&](const char* execs) {
    SL_CHECK_OK(session_->SetConf("sparkline.executors", execs));
    auto df = session_->Sql(kSkylineQuery);
    SL_CHECK(df.ok());
    auto r = df->Collect();
    SL_CHECK(r.ok());
    return r->metrics;
  };
  auto one = metrics_for("1");
  auto ten = metrics_for("10");
  EXPECT_GT(ten.peak_memory_bytes, one.peak_memory_bytes);
}

TEST_F(MusicBrainzTest, SimulatedTimeAccountsForEveryOperator) {
  auto df = session_->Sql(kSkylineQuery);
  ASSERT_TRUE(df.ok());
  ASSERT_OK_AND_ASSIGN(QueryResult r, df->Collect());
  double total = 0;
  for (const auto& [label, ms] : r.metrics.operator_ms) total += ms;
  EXPECT_NEAR(total, r.metrics.simulated_ms, 1e-6);
  EXPECT_GT(r.metrics.operator_ms.size(), 3u);
}

TEST_F(MusicBrainzTest, ReadableVsUnwieldyQueryText) {
  // Not a performance claim, just the paper's observation made executable:
  // the skyline formulation is drastically shorter than the rewriting.
  EXPECT_LT(kSkylineQuery.size() * 2, kReferenceQuery.size());
}

}  // namespace
}  // namespace sparkline
