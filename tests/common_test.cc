// Tests for src/common: Status/Result, string utils, thread pool, memory
// tracker, RNG distributions.
#include <atomic>
#include <set>
#include <stdexcept>

#include <gtest/gtest.h>

#include "common/cancellation.h"
#include "common/failpoint.h"
#include "common/memory_tracker.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "test_util.h"

namespace sparkline {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.ToString(), "Parse error: bad token");
}

TEST(StatusTest, TimeoutPredicate) {
  EXPECT_TRUE(Status::Timeout("t").IsTimeout());
  EXPECT_FALSE(Status::Invalid("x").IsTimeout());
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::Invalid("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  SL_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, ValuePath) {
  Result<int> r = Half(10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5);
}

TEST(ResultTest, ErrorPath) {
  Result<int> r = Half(3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
}

TEST(StringUtilTest, StrCat) {
  EXPECT_EQ(StrCat("a", 1, "-", 2.5), "a1-2.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(StringUtilTest, JoinAndSplit) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(Split("a.b.c", '.'), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a..", '.'), (std::vector<std::string>{"a", "", ""}));
  EXPECT_EQ(Split("", '.'), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, CaseHelpers) {
  EXPECT_EQ(ToLower("SkyLine"), "skyline");
  EXPECT_EQ(ToUpper("min"), "MIN");
  EXPECT_TRUE(EqualsIgnoreCase("SKYLINE", "skyline"));
  EXPECT_FALSE(EqualsIgnoreCase("skyline", "skylines"));
}

TEST(StringUtilTest, DoubleToString) {
  EXPECT_EQ(DoubleToString(3.0), "3");
  EXPECT_EQ(DoubleToString(3.5), "3.5");
  EXPECT_EQ(DoubleToString(-0.25), "-0.25");
}

TEST(StringUtilTest, Indent) {
  EXPECT_EQ(Indent("a\nb", 2), "  a\n  b");
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  ParallelFor(&pool, 64, [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroAndSingle) {
  ThreadPool pool(2);
  int calls = 0;
  ParallelFor(&pool, 0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(&pool, 1, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

// A task that throws must not take the process down (the old WorkerLoop let
// the exception escape into std::terminate) and must not poison the pool:
// later tasks still run on every worker.
TEST(ThreadPoolTest, SurvivesThrowingTasks) {
  ThreadPool pool(2);
  for (int i = 0; i < 8; ++i) {
    pool.Submit([] { throw std::runtime_error("injected task failure"); });
  }
  pool.WaitIdle();
  std::atomic<int> counter{0};
  for (int i = 0; i < 32; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 32);
}

TEST(MemoryTrackerTest, TracksPeak) {
  MemoryTracker t;
  t.Grow(100);
  t.Grow(50);
  t.Shrink(120);
  EXPECT_EQ(t.current_bytes(), 30);
  EXPECT_EQ(t.peak_bytes(), 150);
  t.Grow(10);
  EXPECT_EQ(t.peak_bytes(), 150);  // peak unchanged below the high-water mark
}

TEST(MemoryTrackerTest, ScopedReservation) {
  MemoryTracker t;
  {
    ScopedReservation r(&t, 64);
    EXPECT_EQ(t.current_bytes(), 64);
  }
  EXPECT_EQ(t.current_bytes(), 0);
  EXPECT_EQ(t.peak_bytes(), 64);
}

#ifdef NDEBUG
// Regression: a mismatched Shrink used to drive current_ negative and
// silently corrupt all later peak math. Release builds clamp at zero
// (debug builds assert instead, which is why this only runs under NDEBUG).
TEST(MemoryTrackerTest, ShrinkUnderflowClampsAtZero) {
  MemoryTracker t;
  t.Grow(10);
  t.Shrink(25);
  EXPECT_EQ(t.current_bytes(), 0);
  t.Grow(7);
  EXPECT_EQ(t.current_bytes(), 7);  // not 7 - 15: the underflow didn't stick
}
#endif

TEST(MemoryTrackerTest, TryGrowEnforcesLimit) {
  MemoryTracker t;
  t.set_limit_bytes(100);
  EXPECT_TRUE(t.TryGrow(60));
  EXPECT_FALSE(t.TryGrow(50));  // 60 + 50 > 100
  EXPECT_EQ(t.current_bytes(), 60);  // the refused reservation charged nothing
  EXPECT_TRUE(t.TryGrow(40));
  EXPECT_EQ(t.current_bytes(), 100);
  t.set_limit_bytes(0);  // 0 = unlimited
  EXPECT_TRUE(t.TryGrow(1 << 20));
}

TEST(MemoryTrackerTest, MemoryChargeReleasesOnEveryPath) {
  MemoryTracker t;
  t.Grow(64);
  {
    MemoryCharge a(&t, 64);
    EXPECT_EQ(t.current_bytes(), 64);
    MemoryCharge b = std::move(a);  // move transfers, no double release
    MemoryCharge c;
    c = std::move(b);
    EXPECT_EQ(t.current_bytes(), 64);
  }
  EXPECT_EQ(t.current_bytes(), 0);
}

TEST(CancellationTokenTest, CancelIsSticky) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  token.Cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
}

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { fail::DisarmAll(); }
};

TEST_F(FailpointTest, DisarmedSitesAreFree) {
  EXPECT_FALSE(fail::AnyArmed());
  EXPECT_OK(fail::Hit("exec.scan"));
}

TEST_F(FailpointTest, ArmRejectsUnknownSites) {
  EXPECT_EQ(fail::Arm("exec.typo", fail::FailpointSpec{}).code(),
            StatusCode::kNotFound);
}

TEST_F(FailpointTest, ErrorActionFiresAndCounts) {
  ASSERT_OK(fail::ArmFromString("exec.scan=error"));
  EXPECT_TRUE(fail::AnyArmed());
  Status s = fail::Hit("exec.scan");
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(s.IsRetryable());
  EXPECT_EQ(fail::FireCount("exec.scan"), 1);
  EXPECT_OK(fail::Hit("exec.exchange"));  // other sites stay disarmed
}

TEST_F(FailpointTest, FromHitAndMaxFiresModifiers) {
  // Fire only on the 3rd and 4th evaluations: @3 (start at hit 3) *2 (budget
  // of two fires).
  ASSERT_OK(fail::ArmFromString("exec.local_task=error(internal)@3*2"));
  EXPECT_OK(fail::Hit("exec.local_task"));
  EXPECT_OK(fail::Hit("exec.local_task"));
  EXPECT_EQ(fail::Hit("exec.local_task").code(), StatusCode::kInternal);
  EXPECT_EQ(fail::Hit("exec.local_task").code(), StatusCode::kInternal);
  EXPECT_OK(fail::Hit("exec.local_task"));  // budget exhausted
  EXPECT_EQ(fail::FireCount("exec.local_task"), 2);
}

TEST_F(FailpointTest, SeededProbabilityIsDeterministic) {
  auto run = [] {
    SL_CHECK_OK(fail::ArmFromString("exec.stage_task=error%0.5:1234"));
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(!fail::Hit("exec.stage_task").ok());
    }
    return fired;
  };
  const std::vector<bool> a = run();
  const std::vector<bool> b = run();
  EXPECT_EQ(a, b);  // same seed, same coin flips
  const int64_t fires = fail::FireCount("exec.stage_task");
  EXPECT_GT(fires, 8);   // ~32 expected; loose bounds keep this robust
  EXPECT_LT(fires, 56);
}

TEST_F(FailpointTest, ThrowAndDelayActions) {
  ASSERT_OK(fail::ArmFromString("exec.exchange=throw*1"));
  EXPECT_THROW((void)fail::Hit("exec.exchange"), std::runtime_error);
  EXPECT_OK(fail::Hit("exec.exchange"));  // *1 budget spent

  ASSERT_OK(fail::ArmFromString("exec.scan=delay:20"));
  StopWatch w;
  EXPECT_OK(fail::Hit("exec.scan"));  // delay succeeds, just late
  EXPECT_GE(w.ElapsedMillis(), 15.0);
}

TEST_F(FailpointTest, MalformedSpecsAreRejected) {
  EXPECT_FALSE(fail::ArmFromString("exec.scan").ok());           // no '='
  EXPECT_FALSE(fail::ArmFromString("exec.scan=explode").ok());   // bad action
  EXPECT_FALSE(fail::ArmFromString("exec.scan=error%1.5").ok()); // p > 1
  EXPECT_FALSE(fail::ArmFromString("exec.scan=error@0").ok());   // hit < 1
  EXPECT_FALSE(fail::ArmFromString("nope=error").ok());          // bad site
  EXPECT_FALSE(fail::AnyArmed()) << "failed arms must not leave sites armed";
}

TEST_F(FailpointTest, MultiSpecStringArmsEverySite) {
  ASSERT_OK(fail::ArmFromString(
      " exec.scan = error ; serve.cache_insert = throw ; "));
  EXPECT_FALSE(fail::Hit("exec.scan").ok());
  EXPECT_THROW((void)fail::Hit("serve.cache_insert"), std::runtime_error);
  ASSERT_OK(fail::ArmFromString(""));  // empty string disarms everything
  EXPECT_FALSE(fail::AnyArmed());
}

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(ZipfTest, SkewedTowardsSmallValues) {
  Rng rng(5);
  ZipfDistribution zipf(100, 1.2);
  int64_t ones = 0, total = 0;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = zipf.Sample(&rng);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 100);
    if (v == 1) ++ones;
    total += v;
  }
  // Rank 1 should be by far the most common outcome.
  EXPECT_GT(ones, 5000 / 10);
  EXPECT_LT(total / 5000, 20);
}

TEST(TimerTest, WallClockAdvances) {
  StopWatch w;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GT(w.ElapsedNanos(), 0);
}

TEST(TimerTest, ThreadCpuAdvancesUnderWork) {
  ThreadCpuTimer t;
  volatile double sink = 0;
  for (int i = 0; i < 1000000; ++i) sink = sink + i;
  EXPECT_GT(t.ElapsedNanos(), 0);
}

}  // namespace
}  // namespace sparkline
