// Reproduces paper Figures 16-19 (Appendix E): skylines over complex
// queries (joins + aggregates) on the MusicBrainz-shaped dataset —
// dimensions vs. time/memory and executors vs. time/memory, for the
// complete (Listing 11/14) and incomplete (Listing 12) base queries.
//
// Paper shapes to look for:
//  * the reference rewriting is significantly slower on the hard
//    configurations and less stable overall;
//  * memory is comparable across algorithms; executors beyond a small
//    count stop paying off (joins add their own distribution costs).
#include <cstdio>

#include "bench_common.h"
#include "common/string_util.h"

using namespace sparkline;        // NOLINT
using namespace sparkline::bench; // NOLINT

namespace {

// Skyline dimensions over the base query output (paper Table 13 order).
const std::vector<std::string>& MusicBrainzDimensions() {
  static const std::vector<std::string> kDims = {
      "rating MAX",     "rating_count MAX", "length MIN",
      "video MAX",      "num_tracks MAX",   "min_position MIN"};
  return kDims;
}

// Listing 11 (complete) / Listing 12 (incomplete) base queries.
std::string BaseQuery(bool complete) {
  const char* recording = complete ? "recording_complete" : "recording_incomplete";
  return StrCat(
      "SELECT r.id, ifnull(r.length, 0) AS length, r.video, "
      "ifnull(rm.rating, 0) AS rating, "
      "ifnull(rm.rating_count, 0) AS rating_count, "
      "recording_tracks.num_tracks, recording_tracks.min_position "
      "FROM ", recording, " r LEFT OUTER JOIN ("
      "SELECT ri.id AS id, count(ti.recording) AS num_tracks, "
      "min(ti.position) AS min_position "
      "FROM ", recording, " ri JOIN track ti ON ti.recording = ri.id "
      "GROUP BY ri.id) recording_tracks USING (id) "
      "JOIN recording_meta rm USING (id)");
}

std::string ComplexSkylineSql(bool complete, size_t dims) {
  std::vector<std::string> items(MusicBrainzDimensions().begin(),
                                 MusicBrainzDimensions().begin() + dims);
  return StrCat("SELECT * FROM (", BaseQuery(complete), ") SKYLINE OF ",
                complete ? "COMPLETE " : "", JoinStrings(items, ", "));
}

void DimsSweep(Session* session, bool complete, int executors,
               const BenchConfig& config, const char* value,
               const char* figure) {
  const auto& algorithms =
      complete ? CompleteAlgorithms() : IncompleteAlgorithms();
  std::vector<std::string> labels;
  for (size_t d = 1; d <= 6; ++d) labels.push_back(std::to_string(d));
  std::vector<std::string> names;
  std::vector<std::vector<Cell>> rows;
  for (const auto& algo : algorithms) {
    names.push_back(algo.display_name);
    std::vector<Cell> row;
    for (size_t dims = 1; dims <= 6; ++dims) {
      row.push_back(RunCell(session, ComplexSkylineSql(complete, dims),
                            algo.strategy, executors, config));
    }
    rows.push_back(std::move(row));
  }
  PrintTables(StrCat(figure, " | dims vs ", value, " | musicbrainz",
                     complete ? "" : "_incomplete",
                     " complex query | executors: ", executors),
              names, labels, rows, static_cast<int>(names.size()) - 1, value);
}

void ExecutorsSweep(Session* session, bool complete, size_t dims,
                    const BenchConfig& config, const char* value,
                    const char* figure) {
  const auto& algorithms =
      complete ? CompleteAlgorithms() : IncompleteAlgorithms();
  const int executor_steps[] = {1, 2, 3, 5, 10};
  std::vector<std::string> labels;
  for (int e : executor_steps) labels.push_back(std::to_string(e));
  std::vector<std::string> names;
  std::vector<std::vector<Cell>> rows;
  for (const auto& algo : algorithms) {
    names.push_back(algo.display_name);
    std::vector<Cell> row;
    for (int executors : executor_steps) {
      row.push_back(RunCell(session, ComplexSkylineSql(complete, dims),
                            algo.strategy, executors, config));
    }
    rows.push_back(std::move(row));
  }
  PrintTables(StrCat(figure, " | executors vs ", value, " | musicbrainz",
                     complete ? "" : "_incomplete",
                     " complex query | dims: ", dims),
              names, labels, rows, static_cast<int>(names.size()) - 1, value);
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config = ParseArgs(argc, argv);
  Session session;

  datagen::MusicBrainzOptions opts;
  opts.num_recordings = static_cast<size_t>(6000 * config.scale);
  auto mb = datagen::GenerateMusicBrainz(opts);
  SL_CHECK_OK(session.catalog()->RegisterTable(mb.recording_complete));
  SL_CHECK_OK(session.catalog()->RegisterTable(mb.recording_incomplete));
  SL_CHECK_OK(session.catalog()->RegisterTable(mb.recording_meta));
  SL_CHECK_OK(session.catalog()->RegisterTable(mb.track));
  std::printf("musicbrainz: %zu recordings, %zu tracks (paper: ~1.5M)\n",
              mb.recording_complete->num_rows(), mb.track->num_rows());

  // Figure 16: dims vs time (executors 3; --grid adds 1 and 10).
  DimsSweep(&session, true, 3, config, "time", "Fig 16");
  DimsSweep(&session, false, 3, config, "time", "Fig 16");
  // Figure 17: dims vs memory.
  DimsSweep(&session, true, 3, config, "memory", "Fig 17");
  // Figure 18: executors vs time at 6 dimensions.
  ExecutorsSweep(&session, true, 6, config, "time", "Fig 18");
  ExecutorsSweep(&session, false, 6, config, "time", "Fig 18");
  // Figure 19: executors vs memory.
  ExecutorsSweep(&session, true, 6, config, "memory", "Fig 19");

  if (config.grid) {
    for (int executors : {1, 10}) {
      DimsSweep(&session, true, executors, config, "time", "Fig 16 grid");
      DimsSweep(&session, false, executors, config, "time", "Fig 16 grid");
    }
    ExecutorsSweep(&session, true, 3, config, "time", "Fig 18 grid");
    ExecutorsSweep(&session, false, 3, config, "memory", "Fig 19 grid");
  }
  return 0;
}
