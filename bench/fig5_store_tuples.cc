// Reproduces paper Figure 5 + Tables 7/8 (and Figure 13 with --grid):
// number of input tuples vs. execution time on store_sales, 6 skyline
// dimensions, 3 executors (grid: 2/5/10 executors).
//
// Paper shapes to look for:
//  * every algorithm grows with the input, the reference fastest (it even
//    times out at the largest size in the paper);
//  * "distributed complete" scales best on complete data.
#include <cstdio>

#include "bench_common.h"
#include "common/string_util.h"

using namespace sparkline;        // NOLINT
using namespace sparkline::bench; // NOLINT

namespace {

const std::vector<size_t>& SizeSteps(const BenchConfig& config) {
  // Paper: 1M, 2M, 5M, 10M. Scaled ~1:500.
  static std::vector<size_t> sizes;
  sizes = {static_cast<size_t>(2000 * config.scale),
           static_cast<size_t>(4000 * config.scale),
           static_cast<size_t>(10000 * config.scale),
           static_cast<size_t>(20000 * config.scale)};
  return sizes;
}

void RunSweep(Session* session, bool complete_data, int executors,
              const BenchConfig& config, const char* figure) {
  const auto& algorithms =
      complete_data ? CompleteAlgorithms() : IncompleteAlgorithms();
  const auto& sizes = SizeSteps(config);
  std::vector<std::string> labels;
  for (size_t n : sizes) labels.push_back(std::to_string(n));

  std::vector<std::string> names;
  std::vector<std::vector<Cell>> rows(algorithms.size());
  for (const auto& algo : algorithms) names.push_back(algo.display_name);

  for (size_t s = 0; s < sizes.size(); ++s) {
    const std::string table = StrCat("store_sales_n", s,
                                     complete_data ? "" : "_incomplete");
    for (size_t a = 0; a < algorithms.size(); ++a) {
      const std::string sql =
          SkylineSql(table, StoreSalesDimensions(), 6, complete_data);
      rows[a].push_back(
          RunCell(session, sql, algorithms[a].strategy, executors, config));
    }
  }
  PrintTables(StrCat(figure, " | tuples vs time | store_sales ",
                     complete_data ? "complete" : "incomplete",
                     " | dims: 6 | executors: ", executors),
              names, labels, rows, static_cast<int>(names.size()) - 1);
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config = ParseArgs(argc, argv);
  Session session;

  const auto& sizes = SizeSteps(config);
  for (size_t s = 0; s < sizes.size(); ++s) {
    datagen::StoreSalesOptions opts;
    opts.num_rows = sizes[s];
    opts.table_name = StrCat("store_sales_n", s);
    SL_CHECK_OK(
        session.catalog()->RegisterTable(datagen::GenerateStoreSales(opts)));
    opts.incomplete = true;
    opts.table_name = StrCat("store_sales_n", s, "_incomplete");
    SL_CHECK_OK(
        session.catalog()->RegisterTable(datagen::GenerateStoreSales(opts)));
  }
  std::printf("store_sales sizes:");
  for (size_t n : sizes) std::printf(" %zu", n);
  std::printf(" (paper: 1M 2M 5M 10M)\n");

  RunSweep(&session, true, 3, config, "Fig 5 + Table 7");
  RunSweep(&session, false, 3, config, "Fig 5 + Table 8");

  if (config.grid) {
    for (int executors : {2, 5, 10}) {  // Figure 13 grid
      RunSweep(&session, true, executors, config, "Fig 13");
      RunSweep(&session, false, executors, config, "Fig 13");
    }
  }
  return 0;
}
