#include "bench_common.h"

#include <cstdio>
#include <cstring>

#include "common/metrics.h"
#include "common/string_util.h"

namespace sparkline {
namespace bench {

BenchConfig ParseArgs(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      config.scale = std::stod(arg.substr(8));
    } else if (arg.rfind("--timeout-ms=", 0) == 0) {
      config.timeout_ms = std::stoll(arg.substr(13));
    } else if (arg == "--grid") {
      config.grid = true;
    } else if (arg == "--quick") {
      config.scale = 0.25;
      config.timeout_ms = 5000;
    } else if (arg.rfind("--json=", 0) == 0) {
      config.json_path = arg.substr(7);
    } else if (arg == "--json" && i + 1 < argc) {
      config.json_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--scale=X] [--timeout-ms=N] [--grid] [--quick] "
          "[--json=PATH]\n"
          "  --scale=X       multiply dataset sizes by X (default 1.0)\n"
          "  --timeout-ms=N  per-query timeout (default 20000)\n"
          "  --grid          also run the appendix parameter grids\n"
          "  --quick         scale 0.25 and a 5 s timeout\n"
          "  --json=PATH     dump the metrics-registry JSON snapshot to PATH"
          " at exit\n",
          argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown argument: %s (try --help)\n", arg.c_str());
      std::exit(2);
    }
  }
  return config;
}

void MaybeDumpMetricsJson(const BenchConfig& config) {
  if (config.json_path.empty()) return;
  std::FILE* f = std::fopen(config.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for the metrics snapshot\n",
                 config.json_path.c_str());
    return;
  }
  const std::string json = metrics::MetricsRegistry::Global().JsonSnapshot();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("metrics snapshot written to %s\n", config.json_path.c_str());
}

const std::vector<Algorithm>& CompleteAlgorithms() {
  static const std::vector<Algorithm> kAlgos = {
      {"distributed complete", "distributed"},
      {"non-distributed complete", "non_distributed"},
      {"distributed incomplete", "incomplete"},
      {"reference", "reference"},
  };
  return kAlgos;
}

const std::vector<Algorithm>& IncompleteAlgorithms() {
  static const std::vector<Algorithm> kAlgos = {
      {"distributed incomplete", "incomplete"},
      {"reference", "reference"},
  };
  return kAlgos;
}

Cell RunCell(Session* session, const std::string& sql,
             const std::string& strategy, int executors,
             const BenchConfig& config) {
  Cell cell;
  SL_CHECK_OK(session->SetConf("sparkline.skyline.strategy", strategy));
  SL_CHECK_OK(session->SetConf("sparkline.executors",
                               std::to_string(executors)));
  SL_CHECK_OK(session->SetConf("sparkline.timeout_ms",
                               std::to_string(config.timeout_ms)));
  SL_CHECK_OK(
      session->SetConf("sparkline.memory.executorOverheadMb",
                       std::to_string(config.executor_overhead_mb)));
  auto df = session->Sql(sql);
  if (!df.ok()) {
    std::fprintf(stderr, "query failed to analyze: %s\n  %s\n",
                 df.status().ToString().c_str(), sql.c_str());
    cell.error = true;
    return cell;
  }
  auto result = df->Collect();
  if (!result.ok()) {
    if (result.status().IsTimeout()) {
      cell.timeout = true;
    } else {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      cell.error = true;
    }
    return cell;
  }
  cell.simulated_ms = result->metrics.simulated_ms;
  cell.wall_ms = result->metrics.wall_ms;
  cell.peak_memory_mb = result->metrics.peak_memory_bytes >> 20;
  cell.dominance_tests = result->metrics.dominance_tests;
  cell.result_rows = result->num_rows();
  return cell;
}

namespace {

std::string FormatCell(const Cell& cell, const char* value) {
  if (cell.timeout) return "t.o.";
  if (cell.error) return "err";
  char buf[64];
  if (std::strcmp(value, "memory") == 0) {
    std::snprintf(buf, sizeof(buf), "%lldMB",
                  static_cast<long long>(cell.peak_memory_mb));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", cell.simulated_ms / 1000.0);
  }
  return buf;
}

std::string FormatRelative(const Cell& cell, const Cell& reference,
                           const char* value) {
  if (reference.timeout || reference.error) return "n.a.";
  if (cell.timeout) return "t.o.";
  if (cell.error) return "err";
  const double base = std::strcmp(value, "memory") == 0
                          ? static_cast<double>(reference.peak_memory_mb)
                          : reference.simulated_ms;
  const double mine = std::strcmp(value, "memory") == 0
                          ? static_cast<double>(cell.peak_memory_mb)
                          : cell.simulated_ms;
  if (base <= 0) return "n.a.";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f%%", 100.0 * mine / base);
  return buf;
}

}  // namespace

void PrintTables(const std::string& title,
                 const std::vector<std::string>& algorithm_names,
                 const std::vector<std::string>& sweep_labels,
                 const std::vector<std::vector<Cell>>& rows,
                 int reference_row, const char* value) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("%-26s", "algorithm");
  for (const auto& label : sweep_labels) {
    std::printf(" %12s", label.c_str());
  }
  std::printf("\n");
  for (size_t a = 0; a < algorithm_names.size(); ++a) {
    std::printf("%-26s", algorithm_names[a].c_str());
    for (const auto& cell : rows[a]) {
      std::printf(" %12s", FormatCell(cell, value).c_str());
    }
    std::printf("\n");
  }
  if (reference_row < 0) return;
  std::printf("-- relative to %s (100%%) --\n",
              algorithm_names[static_cast<size_t>(reference_row)].c_str());
  for (size_t a = 0; a < algorithm_names.size(); ++a) {
    std::printf("%-26s", algorithm_names[a].c_str());
    for (size_t i = 0; i < rows[a].size(); ++i) {
      std::printf(" %12s",
                  FormatRelative(rows[a][i],
                                 rows[static_cast<size_t>(reference_row)][i],
                                 value)
                      .c_str());
    }
    std::printf("\n");
  }
}

std::string SkylineSql(const std::string& table,
                       const std::vector<std::string>& dimensions, size_t dims,
                       bool complete) {
  std::vector<std::string> items(dimensions.begin(),
                                 dimensions.begin() + dims);
  return StrCat("SELECT * FROM ", table, " SKYLINE OF ",
                complete ? "COMPLETE " : "", JoinStrings(items, ", "));
}

std::string ReferenceSql(const std::string& table,
                         const std::vector<std::string>& dimensions,
                         size_t dims) {
  std::vector<std::string> nonstrict, strict;
  for (size_t d = 0; d < dims; ++d) {
    const auto parts = Split(dimensions[d], ' ');
    const std::string& c = parts[0];
    const bool min = EqualsIgnoreCase(parts[1], "MIN");
    nonstrict.push_back(StrCat("i.", c, min ? " <= o." : " >= o.", c));
    strict.push_back(StrCat("i.", c, min ? " < o." : " > o.", c));
  }
  return StrCat("SELECT * FROM ", table, " AS o WHERE NOT EXISTS(",
                "SELECT * FROM ", table, " AS i WHERE ",
                JoinStrings(nonstrict, " AND "), " AND (",
                JoinStrings(strict, " OR "), "))");
}

const std::vector<std::string>& AirbnbDimensions() {
  static const std::vector<std::string> kDims = {
      "price MIN",          "accommodates MAX",
      "bedrooms MAX",       "beds MAX",
      "number_of_reviews MAX", "review_scores_rating MAX"};
  return kDims;
}

const std::vector<std::string>& StoreSalesDimensions() {
  static const std::vector<std::string> kDims = {
      "ss_quantity MAX",         "ss_wholesale_cost MIN",
      "ss_list_price MIN",       "ss_sales_price MIN",
      "ss_ext_discount_amt MAX", "ss_ext_sales_price MIN"};
  return kDims;
}

}  // namespace bench
}  // namespace sparkline
