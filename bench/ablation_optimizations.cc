// Ablation of the skyline-specific optimizer rules (paper section 5.4 and
// DESIGN.md section 5): single-dimension rewrite, skyline-through-join
// pushdown, and filter pushdown, each toggled off individually.
#include <cinttypes>
#include <cstdio>

#include "bench_common.h"
#include "common/rng.h"
#include "common/string_util.h"

using namespace sparkline;        // NOLINT
using namespace sparkline::bench; // NOLINT

namespace {

Cell Run(Session* session, const std::string& sql, const BenchConfig& config,
         const std::string& toggle_key, bool enabled) {
  if (!toggle_key.empty()) {
    SL_CHECK_OK(session->SetConf(toggle_key, enabled ? "true" : "false"));
  }
  Cell cell = RunCell(session, sql, "auto", 4, config);
  if (!toggle_key.empty()) SL_CHECK_OK(session->SetConf(toggle_key, "true"));
  return cell;
}

void Report(const char* name, const Cell& on, const Cell& off) {
  auto fmt = [](const Cell& c) {
    if (c.timeout) return std::string("t.o.");
    if (c.error) return std::string("err");
    return StrCat(DoubleToString(c.simulated_ms / 1000.0), "s (",
                  c.dominance_tests, " dominance tests)");
  };
  std::printf("%-28s on: %-36s off: %s\n", name, fmt(on).c_str(),
              fmt(off).c_str());
  if (!on.timeout && !off.timeout && !on.error && !off.error) {
    SL_CHECK(on.result_rows == off.result_rows)
        << name << ": ablation changed the result!";
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config = ParseArgs(argc, argv);
  Session session;

  // Dataset 1: store_sales (single-dimension rewrite showcase).
  datagen::StoreSalesOptions sopts;
  sopts.num_rows = static_cast<size_t>(20000 * config.scale);
  SL_CHECK_OK(
      session.catalog()->RegisterTable(datagen::GenerateStoreSales(sopts)));

  // Dataset 2: listings with a declared FK to hosts (join pushdown
  // showcase): every listing has exactly one matching host.
  Schema hosts_schema({Field{"id", DataType::Int64(), false},
                       Field{"since", DataType::Int64(), false}});
  auto hosts = std::make_shared<Table>("hosts", hosts_schema);
  hosts->constraints().primary_key = {"id"};
  for (int i = 1; i <= 50; ++i) {
    SL_CHECK_OK(hosts->AppendRow({Value::Int64(i), Value::Int64(1990 + i)}));
  }
  SL_CHECK_OK(session.catalog()->RegisterTable(hosts));
  Schema listings_schema({Field{"id", DataType::Int64(), false},
                          Field{"price", DataType::Double(), false},
                          Field{"rating", DataType::Double(), false},
                          Field{"host", DataType::Int64(), false}});
  auto listings = std::make_shared<Table>("listings", listings_schema);
  listings->constraints().foreign_keys.push_back(
      TableConstraints::ForeignKey{{"host"}, "hosts", {"id"}, true});
  Rng rng(7);
  const size_t n_listings = static_cast<size_t>(12000 * config.scale);
  for (size_t i = 0; i < n_listings; ++i) {
    SL_CHECK_OK(listings->AppendRow({Value::Int64(static_cast<int64_t>(i)),
                                     Value::Double(rng.Uniform(20, 900)),
                                     Value::Double(rng.Uniform(1, 5)),
                                     Value::Int64(rng.UniformInt(1, 50))}));
  }
  SL_CHECK_OK(session.catalog()->RegisterTable(listings));

  std::printf("== Ablation of skyline-specific optimizations (section 5.4) ==\n\n");

  // 1. Single-dimension rewrite: O(n) scalar lookup vs. full BNL skyline.
  {
    const std::string sql =
        "SELECT * FROM store_sales SKYLINE OF ss_wholesale_cost MIN";
    Cell on = Run(&session, sql, config,
                  "sparkline.optimizer.singleDimRewrite", true);
    Cell off = Run(&session, sql, config,
                   "sparkline.optimizer.singleDimRewrite", false);
    Report("single-dim rewrite", on, off);
  }

  // 2. Skyline-through-join pushdown: skyline before vs. after the join.
  {
    const std::string sql =
        "SELECT l.price, l.rating, h.since FROM listings l "
        "JOIN hosts h ON l.host = h.id "
        "SKYLINE OF l.price MIN, l.rating MAX";
    Cell on = Run(&session, sql, config,
                  "sparkline.optimizer.skylineJoinPushdown", true);
    Cell off = Run(&session, sql, config,
                   "sparkline.optimizer.skylineJoinPushdown", false);
    Report("skyline-join pushdown", on, off);
  }

  // 3. Generic filter pushdown under a skyline-bearing query.
  {
    const std::string sql =
        "SELECT * FROM (SELECT * FROM store_sales) t "
        "WHERE ss_quantity > 50 "
        "SKYLINE OF ss_wholesale_cost MIN, ss_list_price MIN, "
        "ss_ext_discount_amt MAX";
    Cell on = Run(&session, sql, config,
                  "sparkline.optimizer.filterPushdown", true);
    Cell off = Run(&session, sql, config,
                   "sparkline.optimizer.filterPushdown", false);
    Report("filter pushdown", on, off);
  }

  // 4. Section-7 future-work features on anti-correlated data (the hard
  // case: skylines are large).
  SL_CHECK_OK(session.catalog()->RegisterTable(datagen::GeneratePoints(
      "anti", static_cast<size_t>(8000 * config.scale), 4,
      datagen::PointDistribution::kAntiCorrelated, 99)));
  const std::string anti_sql =
      "SELECT * FROM anti SKYLINE OF d0 MIN, d1 MIN, d2 MIN, d3 MIN";

  {
    // Columnar dominance fast path (skyline/columnar.h) on vs. off.
    Cell columnar = RunCell(&session, anti_sql, "distributed", 4, config);
    SL_CHECK_OK(session.SetConf("sparkline.skyline.columnar", "false"));
    Cell row = RunCell(&session, anti_sql, "distributed", 4, config);
    SL_CHECK_OK(session.SetConf("sparkline.skyline.columnar", "true"));
    Report("columnar dominance", columnar, row);
  }
  {
    Cell bnl = RunCell(&session, anti_sql, "distributed", 4, config);
    SL_CHECK_OK(session.SetConf("sparkline.skyline.kernel", "sfs"));
    Cell sfs = RunCell(&session, anti_sql, "distributed", 4, config);
    SL_CHECK_OK(session.SetConf("sparkline.skyline.kernel", "bnl"));
    Report("kernel: BNL vs SFS", bnl, sfs);
  }
  {
    Cell bnl = RunCell(&session, anti_sql, "distributed", 4, config);
    SL_CHECK_OK(session.SetConf("sparkline.skyline.kernel", "grid"));
    Cell grid = RunCell(&session, anti_sql, "distributed", 4, config);
    SL_CHECK_OK(session.SetConf("sparkline.skyline.kernel", "bnl"));
    Report("kernel: BNL vs grid", bnl, grid);
  }
  {
    SL_CHECK_OK(session.SetConf("sparkline.skyline.partitioning", "roundrobin"));
    Cell rr = RunCell(&session, anti_sql, "distributed", 8, config);
    SL_CHECK_OK(session.SetConf("sparkline.skyline.partitioning", "angle"));
    Cell angle = RunCell(&session, anti_sql, "distributed", 8, config);
    SL_CHECK_OK(session.SetConf("sparkline.skyline.partitioning", "asis"));
    Report("partitioning: rr vs angle", rr, angle);
  }
  {
    SL_CHECK_OK(session.catalog()->RegisterTable(datagen::GeneratePoints(
        "tiny", 200, 2, datagen::PointDistribution::kIndependent, 3)));
    const std::string tiny_sql = "SELECT * FROM tiny SKYLINE OF d0 MIN, d1 MIN";
    Cell off = RunCell(&session, tiny_sql, "auto", 8, config);
    SL_CHECK_OK(
        session.SetConf("sparkline.skyline.nonDistributedThreshold", "1000"));
    Cell on = RunCell(&session, tiny_sql, "auto", 8, config);
    SL_CHECK_OK(
        session.SetConf("sparkline.skyline.nonDistributedThreshold", "0"));
    Report("cost-based tiny-input", on, off);
  }

  std::printf(
      "\nEach rule may only improve time/dominance tests, never change the\n"
      "result (checked above).\n");
  return 0;
}
