// Reproduces paper Figure 3 + Tables 3/4 (and Figure 11 with --grid):
// number of skyline dimensions (1-6) vs. execution time on the Inside
// Airbnb dataset, complete and incomplete variants, 5 executors.
//
// Paper shapes to look for:
//  * the specialized algorithms beat "reference" at (almost) every point;
//  * "distributed complete" is the best algorithm on complete data;
//  * the reference algorithm degrades fastest as dimensions grow.
#include <cstdio>

#include "bench_common.h"
#include "common/string_util.h"

using namespace sparkline;        // NOLINT
using namespace sparkline::bench; // NOLINT

namespace {

void RunSweep(Session* session, const std::string& table, bool complete_data,
              size_t num_tuples, int executors, const BenchConfig& config) {
  const auto& algorithms =
      complete_data ? CompleteAlgorithms() : IncompleteAlgorithms();
  std::vector<std::string> names;
  std::vector<std::string> labels;
  for (size_t d = 1; d <= 6; ++d) labels.push_back(std::to_string(d));
  std::vector<std::vector<Cell>> rows;
  for (const auto& algo : algorithms) {
    names.push_back(algo.display_name);
    std::vector<Cell> row;
    for (size_t dims = 1; dims <= 6; ++dims) {
      const std::string sql =
          SkylineSql(table, AirbnbDimensions(), dims, complete_data);
      row.push_back(RunCell(session, sql, algo.strategy, executors, config));
    }
    rows.push_back(std::move(row));
  }
  PrintTables(
      StrCat("Fig 3/11 + Tables 3/4 | dims vs time | dataset: ", table, " (",
             num_tuples, " tuples) | executors: ", executors),
      names, labels, rows, static_cast<int>(names.size()) - 1);
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config = ParseArgs(argc, argv);
  Session session;

  datagen::AirbnbOptions opts;
  opts.num_rows = static_cast<size_t>(9000 * config.scale);
  opts.incomplete = true;
  opts.table_name = "airbnb_incomplete";
  auto incomplete = datagen::GenerateAirbnb(opts);
  auto complete = datagen::CompleteSubset(*incomplete, "airbnb");
  SL_CHECK_OK(session.catalog()->RegisterTable(incomplete));
  SL_CHECK_OK(session.catalog()->RegisterTable(complete));
  std::printf("airbnb: %zu complete / %zu incomplete tuples (paper: 820,698 / "
              "1,193,465)\n",
              complete->num_rows(), incomplete->num_rows());

  RunSweep(&session, "airbnb", true, complete->num_rows(), 5, config);
  RunSweep(&session, "airbnb_incomplete", false, incomplete->num_rows(), 5,
           config);

  if (config.grid) {
    for (int executors : {2, 3, 10}) {  // 5 covered above (Figure 11 grid)
      RunSweep(&session, "airbnb", true, complete->num_rows(), executors,
               config);
      RunSweep(&session, "airbnb_incomplete", false, incomplete->num_rows(),
               executors, config);
    }
  }
  return 0;
}
