// SaLSa-style early termination ablation (PR 5): SFS stop points.
//
// With sparkline.skyline.sfs.early_stop on, every SFS pass (local
// partitions, global partial slices, the sort-free global merge) maintains
// the SaLSa stop bound minC — the smallest max-coordinate over the skyline
// points seen — and terminates as soon as the monotone sort key proves
// every remaining tuple strictly dominated. The columnar exchange ships
// each partition's tightest bound with the gathered batch, so the global
// merge can stop before scanning most of the shuffled input.
//
// This bench quantifies the effect on the two sort keys (sum — the
// pre-existing score order — and minmax, SaLSa's minC function with the
// tight stop bound) across the paper's workload spectrum:
//   correlated      stop points fire almost immediately (small skylines)
//   anti-correlated the skyline-heavy adversarial case: stops rarely fire,
//                   quantifying the overhead of maintaining the bound
//   store_sales     the paper's TPC-DS-derived mixed-goal workload
//
// Reported per configuration:
//   total      simulated critical-path ms for the whole query
//   sfs_ms     summed critical-path ms of the Local/GlobalSkyline stages
//   dom_tests  dominance tests across all stages
//   skipped    rows never scanned thanks to stop points (+ stop count)
//   frac       skipped / table rows (local passes see each row once; the
//              merge sees survivors, so >1.0 is possible in principle)
//
// --smoke runs a scaled-down sweep and asserts the acceptance invariants
// (correlated minmax skips >30% of the table, identical result counts), so
// CI keeps this binary and the counters from bit-rotting between perf PRs.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/string_util.h"

using namespace sparkline;        // NOLINT
using namespace sparkline::bench; // NOLINT

namespace {

struct StopCell {
  double total_ms = 0;
  double sfs_ms = 0;
  int64_t dominance_tests = 0;
  int64_t rows_skipped = 0;
  int64_t stops = 0;
  size_t result_rows = 0;
};

StopCell RunOnce(Session* session, const std::string& sql, bool early_stop,
                 const char* sort_key) {
  SL_CHECK_OK(session->SetConf("sparkline.skyline.sfs.early_stop",
                               early_stop ? "true" : "false"));
  SL_CHECK_OK(session->SetConf("sparkline.skyline.sfs.sort_key", sort_key));
  auto df = session->Sql(sql);
  SL_CHECK(df.ok()) << df.status().ToString();
  SL_CHECK(df->Collect().ok());  // warm-up
  auto result = df->Collect();
  SL_CHECK(result.ok()) << result.status().ToString();

  StopCell cell;
  const QueryMetrics& m = result->metrics;
  cell.total_ms = m.simulated_ms;
  for (const auto& [label, ms] : m.operator_ms) {
    if (label.find("Skyline") != std::string::npos) cell.sfs_ms += ms;
  }
  cell.dominance_tests = m.dominance_tests;
  cell.rows_skipped = m.sfs_rows_skipped;
  cell.stops = m.sfs_early_stops;
  cell.result_rows = result->num_rows();
  return cell;
}

void Sweep(Session* session, const char* title, const std::string& sql,
           size_t table_rows, bool smoke) {
  std::printf("\n%s (%zu rows) | strategy: distributed, kernel: sfs, "
              "8 executors\n",
              title, table_rows);
  std::printf("%-8s %-12s %10s %10s %12s %16s %7s\n", "key", "early_stop",
              "total_ms", "sfs_ms", "dom_tests", "skipped(stops)", "frac");
  for (const char* sort_key : {"sum", "minmax"}) {
    const StopCell off = RunOnce(session, sql, false, sort_key);
    const StopCell on = RunOnce(session, sql, true, sort_key);
    for (const auto& [name, cell] : {std::make_pair("off", &off),
                                     std::make_pair("on", &on)}) {
      std::printf("%-8s %-12s %10.2f %10.2f %12lld %10lld (%3lld) %6.1f%%\n",
                  sort_key, name, cell->total_ms, cell->sfs_ms,
                  static_cast<long long>(cell->dominance_tests),
                  static_cast<long long>(cell->rows_skipped),
                  static_cast<long long>(cell->stops),
                  100.0 * static_cast<double>(cell->rows_skipped) /
                      static_cast<double>(table_rows));
    }
    SL_CHECK(on.result_rows == off.result_rows)
        << "early stop changed the result on " << title << " (" << sort_key
        << "): " << on.result_rows << " vs " << off.result_rows;
    if (smoke && std::strcmp(sort_key, "minmax") == 0 &&
        std::strstr(title, "correlated") == title) {
      // The acceptance bar: the tight minC bound must terminate >30% of a
      // correlated table away, with the counters proving it.
      SL_CHECK(on.stops >= 1) << "no SFS pass terminated early";
      SL_CHECK(on.rows_skipped * 10 > static_cast<int64_t>(table_rows) * 3)
          << "minmax stop point skipped only " << on.rows_skipped << " of "
          << table_rows << " correlated rows";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  BenchConfig config = ParseArgs(static_cast<int>(args.size()), args.data());
  if (smoke) config.scale = std::min(config.scale, 0.15);

  Session session;
  SL_CHECK_OK(session.SetConf("sparkline.timeout_ms",
                              std::to_string(config.timeout_ms)));
  SL_CHECK_OK(session.SetConf("sparkline.skyline.strategy", "distributed"));
  SL_CHECK_OK(session.SetConf("sparkline.skyline.kernel", "sfs"));
  SL_CHECK_OK(session.SetConf("sparkline.executors", "8"));

  const size_t points = static_cast<size_t>(40000 * config.scale);
  SL_CHECK_OK(session.catalog()->RegisterTable(datagen::GeneratePoints(
      "correlated", points, 4, datagen::PointDistribution::kCorrelated, 42)));
  SL_CHECK_OK(session.catalog()->RegisterTable(datagen::GeneratePoints(
      "anticorrelated", points, 4,
      datagen::PointDistribution::kAntiCorrelated, 42)));
  datagen::StoreSalesOptions sopts;
  sopts.num_rows = static_cast<size_t>(20000 * config.scale);
  SL_CHECK_OK(
      session.catalog()->RegisterTable(datagen::GenerateStoreSales(sopts)));

  const std::string point_dims = "d0 MIN, d1 MIN, d2 MIN, d3 MIN";
  Sweep(&session, "correlated",
        StrCat("SELECT * FROM correlated SKYLINE OF ", point_dims), points,
        smoke);
  Sweep(&session, "anticorrelated",
        StrCat("SELECT * FROM anticorrelated SKYLINE OF ", point_dims), points,
        smoke);
  Sweep(&session, "store_sales",
        SkylineSql("store_sales", StoreSalesDimensions(), 6, true),
        sopts.num_rows, smoke);
  if (smoke) std::printf("\nsmoke checks passed\n");
  return 0;
}
