// Micro benchmarks (google-benchmark) for the skyline kernels of paper
// sections 5.5-5.7: dominance tests, Block-Nested-Loop, Sort-Filter-Skyline
// (the paper's future-work presorting family), the all-pairs incomplete
// algorithm, and null-bitmap partitioning — across the classic correlated /
// independent / anti-correlated workloads.
// The row-kernel vs. columnar-kernel ablation lives here too: every
// BM_Columnar* benchmark has a row-oriented sibling over the same data, and
// the dominance-test-throughput counters quantify the projection's payoff
// (recorded in CHANGES.md).
#include <benchmark/benchmark.h>

#include "datagen/datagen.h"
#include "skyline/algorithms.h"
#include "skyline/columnar.h"

namespace sparkline {
namespace {

using datagen::PointDistribution;

std::vector<Row> MakeRows(size_t n, size_t dims, PointDistribution dist,
                          double null_rate = 0.0) {
  auto table = datagen::GeneratePoints("b", n, dims, dist, /*seed=*/42,
                                       null_rate);
  std::vector<Row> rows;
  rows.reserve(n);
  for (const auto& r : table->rows()) {
    rows.emplace_back(r.begin() + 1, r.end());  // drop the id column
  }
  return rows;
}

std::vector<skyline::BoundDimension> MinDims(size_t n) {
  std::vector<skyline::BoundDimension> dims;
  for (size_t i = 0; i < n; ++i) dims.push_back({i, SkylineGoal::kMin});
  return dims;
}

PointDistribution DistFromArg(int64_t arg) {
  switch (arg) {
    case 0:
      return PointDistribution::kCorrelated;
    case 1:
      return PointDistribution::kIndependent;
    default:
      return PointDistribution::kAntiCorrelated;
  }
}

void BM_DominanceTest(benchmark::State& state) {
  const size_t dims = static_cast<size_t>(state.range(0));
  auto rows = MakeRows(2, dims, PointDistribution::kIndependent);
  auto bound = MinDims(dims);
  for (auto _ : state) {
    benchmark::DoNotOptimize(skyline::CompareRows(
        rows[0], rows[1], bound, skyline::NullSemantics::kComplete));
  }
}
BENCHMARK(BM_DominanceTest)->Arg(2)->Arg(4)->Arg(6)->Arg(8);

void BM_DominanceTestIncomplete(benchmark::State& state) {
  const size_t dims = static_cast<size_t>(state.range(0));
  auto rows = MakeRows(2, dims, PointDistribution::kIndependent, 0.3);
  auto bound = MinDims(dims);
  for (auto _ : state) {
    benchmark::DoNotOptimize(skyline::CompareRows(
        rows[0], rows[1], bound, skyline::NullSemantics::kIncomplete));
  }
}
BENCHMARK(BM_DominanceTestIncomplete)->Arg(2)->Arg(6);

// --- scalar vs. explicit-AVX2 compare ablation (ROADMAP: SIMD-accelerate
// CompareKeySpansComplete). A rotating buffer of key pairs defeats the
// branch predictor memorizing one outcome.
std::vector<double> MakeKeyBuffer(size_t pairs, size_t dims) {
  auto rows = MakeRows(2 * pairs, dims, PointDistribution::kAntiCorrelated);
  auto bound = MinDims(dims);
  auto matrix = skyline::DominanceMatrix::TryBuild(rows, bound);
  std::vector<double> keys;
  keys.reserve(2 * pairs * dims);
  for (uint32_t r = 0; r < 2 * pairs; ++r) {
    const double* k = matrix->row_keys(r);
    keys.insert(keys.end(), k, k + dims);
  }
  return keys;
}

void BM_CompareKeySpansScalar(benchmark::State& state) {
  const size_t dims = static_cast<size_t>(state.range(0));
  constexpr size_t kPairs = 256;
  const std::vector<double> keys = MakeKeyBuffer(kPairs, dims);
  size_t p = 0;
  for (auto _ : state) {
    const double* left = keys.data() + (2 * p) * dims;
    const double* right = keys.data() + (2 * p + 1) * dims;
    benchmark::DoNotOptimize(
        skyline::CompareKeySpansCompleteScalar(left, right, dims));
    p = (p + 1) % kPairs;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompareKeySpansScalar)->Arg(4)->Arg(6)->Arg(8)->Arg(16);

#if SPARKLINE_HAVE_AVX2_COMPARE
void BM_CompareKeySpansAvx2(benchmark::State& state) {
  if (!skyline::simd::Avx2Available()) {
    state.SkipWithError("CPU lacks AVX2");
    return;
  }
  const size_t dims = static_cast<size_t>(state.range(0));
  constexpr size_t kPairs = 256;
  const std::vector<double> keys = MakeKeyBuffer(kPairs, dims);
  size_t p = 0;
  for (auto _ : state) {
    const double* left = keys.data() + (2 * p) * dims;
    const double* right = keys.data() + (2 * p + 1) * dims;
    benchmark::DoNotOptimize(
        skyline::simd::CompareKeySpansCompleteAvx2(left, right, dims));
    p = (p + 1) % kPairs;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompareKeySpansAvx2)->Arg(4)->Arg(6)->Arg(8)->Arg(16);
#endif

void BM_CompareKeySpansDispatch(benchmark::State& state) {
  // The production entry point: runtime dispatch included.
  const size_t dims = static_cast<size_t>(state.range(0));
  constexpr size_t kPairs = 256;
  const std::vector<double> keys = MakeKeyBuffer(kPairs, dims);
  size_t p = 0;
  for (auto _ : state) {
    const double* left = keys.data() + (2 * p) * dims;
    const double* right = keys.data() + (2 * p + 1) * dims;
    benchmark::DoNotOptimize(
        skyline::CompareKeySpansComplete(left, right, dims));
    p = (p + 1) % kPairs;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompareKeySpansDispatch)->Arg(4)->Arg(6)->Arg(8)->Arg(16);

void BM_ColumnarDominanceTest(benchmark::State& state) {
  const size_t dims = static_cast<size_t>(state.range(0));
  auto rows = MakeRows(2, dims, PointDistribution::kIndependent);
  auto bound = MinDims(dims);
  auto matrix = skyline::DominanceMatrix::TryBuild(rows, bound);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        matrix->Compare(0, 1, skyline::NullSemantics::kComplete));
  }
}
BENCHMARK(BM_ColumnarDominanceTest)->Arg(2)->Arg(4)->Arg(6)->Arg(8);

/// The six store_sales skyline dimensions of paper Table 2 (ordinals into
/// the generated table's rows).
std::vector<skyline::BoundDimension> StoreSalesDims() {
  return {{2, SkylineGoal::kMax}, {3, SkylineGoal::kMin},
          {4, SkylineGoal::kMin}, {5, SkylineGoal::kMin},
          {6, SkylineGoal::kMax}, {7, SkylineGoal::kMin}};
}

std::vector<Row> MakeStoreSales(size_t n) {
  datagen::StoreSalesOptions opts;
  opts.num_rows = n;
  auto table = datagen::GenerateStoreSales(opts);
  return table->rows();
}

/// Reports dominance tests per second — "the main cost factor of skyline
/// computation" (paper section 2) — alongside wall time.
void SetThroughput(benchmark::State& state, const skyline::DominanceCounter& c,
                   int64_t rows) {
  state.counters["dom_tests/s"] = benchmark::Counter(
      static_cast<double>(c.tests.load()), benchmark::Counter::kIsRate);
  state.SetItemsProcessed(state.iterations() * rows);
}

void BM_RowBnlStoreSales(benchmark::State& state) {
  auto rows = MakeStoreSales(static_cast<size_t>(state.range(0)));
  auto dims = StoreSalesDims();
  skyline::DominanceCounter counter;
  skyline::SkylineOptions opts;
  opts.counter = &counter;
  for (auto _ : state) {
    auto result = skyline::BlockNestedLoop(rows, dims, opts);
    benchmark::DoNotOptimize(result);
  }
  SetThroughput(state, counter, state.range(0));
}
BENCHMARK(BM_RowBnlStoreSales)->Arg(5000)->Arg(20000);

void BM_ColumnarBnlStoreSales(benchmark::State& state) {
  auto rows = MakeStoreSales(static_cast<size_t>(state.range(0)));
  auto dims = StoreSalesDims();
  skyline::DominanceCounter counter;
  skyline::SkylineOptions opts;
  opts.counter = &counter;
  for (auto _ : state) {
    auto result = skyline::ColumnarSkyline(
        skyline::ColumnarKernel::kBlockNestedLoop, rows, dims, opts);
    benchmark::DoNotOptimize(result);
  }
  SetThroughput(state, counter, state.range(0));
}
BENCHMARK(BM_ColumnarBnlStoreSales)->Arg(5000)->Arg(20000);

void BM_BlockNestedLoop(benchmark::State& state) {
  auto rows = MakeRows(static_cast<size_t>(state.range(0)), 4,
                       DistFromArg(state.range(1)));
  auto dims = MinDims(4);
  skyline::DominanceCounter counter;
  skyline::SkylineOptions opts;
  opts.counter = &counter;
  for (auto _ : state) {
    auto result = skyline::BlockNestedLoop(rows, dims, opts);
    benchmark::DoNotOptimize(result);
  }
  SetThroughput(state, counter, state.range(0));
}
BENCHMARK(BM_BlockNestedLoop)
    ->Args({2000, 0})
    ->Args({2000, 1})
    ->Args({2000, 2})
    ->Args({10000, 0})
    ->Args({10000, 1});

void BM_ColumnarBlockNestedLoop(benchmark::State& state) {
  auto rows = MakeRows(static_cast<size_t>(state.range(0)), 4,
                       DistFromArg(state.range(1)));
  auto dims = MinDims(4);
  skyline::DominanceCounter counter;
  skyline::SkylineOptions opts;
  opts.counter = &counter;
  for (auto _ : state) {
    auto result = skyline::ColumnarSkyline(
        skyline::ColumnarKernel::kBlockNestedLoop, rows, dims, opts);
    benchmark::DoNotOptimize(result);
  }
  SetThroughput(state, counter, state.range(0));
}
BENCHMARK(BM_ColumnarBlockNestedLoop)
    ->Args({2000, 0})
    ->Args({2000, 1})
    ->Args({2000, 2})
    ->Args({10000, 0})
    ->Args({10000, 1});

void BM_ColumnarAllPairsIncomplete(benchmark::State& state) {
  auto rows = MakeRows(static_cast<size_t>(state.range(0)), 4,
                       PointDistribution::kIndependent, 0.25);
  auto dims = MinDims(4);
  skyline::SkylineOptions opts;
  opts.nulls = skyline::NullSemantics::kIncomplete;
  for (auto _ : state) {
    auto result = skyline::ColumnarAllPairsSkyline(rows, dims, opts);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ColumnarAllPairsIncomplete)->Arg(500)->Arg(1000)->Arg(2000);

void BM_SortFilterSkyline(benchmark::State& state) {
  auto rows = MakeRows(static_cast<size_t>(state.range(0)), 4,
                       DistFromArg(state.range(1)));
  auto dims = MinDims(4);
  for (auto _ : state) {
    auto result = skyline::SortFilterSkyline(rows, dims, {});
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SortFilterSkyline)
    ->Args({2000, 0})
    ->Args({2000, 1})
    ->Args({10000, 0})
    ->Args({10000, 1});

void BM_GridFilterSkyline(benchmark::State& state) {
  auto rows = MakeRows(static_cast<size_t>(state.range(0)), 4,
                       DistFromArg(state.range(1)));
  auto dims = MinDims(4);
  for (auto _ : state) {
    auto result = skyline::GridFilterSkyline(rows, dims, {});
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GridFilterSkyline)
    ->Args({2000, 0})
    ->Args({2000, 1})
    ->Args({10000, 0})
    ->Args({10000, 1});

void BM_AllPairsIncomplete(benchmark::State& state) {
  auto rows = MakeRows(static_cast<size_t>(state.range(0)), 4,
                       PointDistribution::kIndependent, 0.25);
  auto dims = MinDims(4);
  skyline::SkylineOptions opts;
  opts.nulls = skyline::NullSemantics::kIncomplete;
  for (auto _ : state) {
    auto result = skyline::AllPairsIncomplete(rows, dims, opts);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AllPairsIncomplete)->Arg(500)->Arg(1000)->Arg(2000);

void BM_NullBitmapPartitioning(benchmark::State& state) {
  auto rows = MakeRows(static_cast<size_t>(state.range(0)), 6,
                       PointDistribution::kIndependent, 0.2);
  auto dims = MinDims(6);
  for (auto _ : state) {
    auto parts = skyline::PartitionByNullBitmap(rows, dims);
    benchmark::DoNotOptimize(parts);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NullBitmapPartitioning)->Arg(10000);

void BM_IncompletePipeline(benchmark::State& state) {
  // The full partition -> local BNL -> all-pairs pipeline of section 5.7.
  auto rows = MakeRows(static_cast<size_t>(state.range(0)), 4,
                       PointDistribution::kIndependent, 0.25);
  auto dims = MinDims(4);
  skyline::SkylineOptions opts;
  opts.nulls = skyline::NullSemantics::kIncomplete;
  for (auto _ : state) {
    auto result = skyline::ComputeSkyline(rows, dims, opts);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IncompletePipeline)->Arg(1000)->Arg(4000);

void BM_BruteForce(benchmark::State& state) {
  auto rows = MakeRows(static_cast<size_t>(state.range(0)), 4,
                       PointDistribution::kIndependent);
  auto dims = MinDims(4);
  for (auto _ : state) {
    auto result = skyline::BruteForceSkyline(rows, dims, {});
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BruteForce)->Arg(500)->Arg(2000);

}  // namespace
}  // namespace sparkline

BENCHMARK_MAIN();
