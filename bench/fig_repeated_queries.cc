// Repeated-query serving workload (serve layer, not a paper figure):
// a Zipf-skewed stream over 50 distinct skyline queries against store_sales
// and airbnb, replayed through the QueryService at 1/4/8 service threads
// with the fingerprinted result cache off vs. on.
//
// Reported per configuration: p50/p99 client-observed latency, throughput,
// and the cache hit rate. The paper's dashboards re-run identical SKYLINE OF
// clauses over static tables; this is the workload where result caching
// should collapse p50 by >=10x (every Zipf head query after the first is a
// hash probe + shared-snapshot alias instead of a full skyline).
#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "serve/query_service.h"

using namespace sparkline;         // NOLINT
using namespace sparkline::bench;  // NOLINT

namespace {

/// 25 distinct queries per table: sweep 2..6 dimensions x 5 filter
/// variants. The filters keep every row (thresholds far above the data) —
/// they exist to give each variant a distinct fingerprint while the
/// skyline work stays comparable.
std::vector<std::string> BuildQueries(const std::string& table,
                                      const std::vector<std::string>& dims) {
  std::vector<std::string> queries;
  for (int variant = 0; variant < 5; ++variant) {
    for (size_t d = 2; d <= 6; ++d) {
      const std::string filter_col =
          dims[0].substr(0, dims[0].find(' '));
      std::string sql = StrCat(
          "SELECT * FROM ", table, " WHERE ", filter_col, " < ",
          1000000 + variant, " SKYLINE OF ");
      for (size_t i = 0; i < d; ++i) {
        if (i > 0) sql += ", ";
        sql += dims[i];
      }
      queries.push_back(std::move(sql));
    }
  }
  return queries;
}

struct ConfigResult {
  double p50_ms = 0;
  double p99_ms = 0;
  double qps = 0;
  double hit_rate = 0;
  size_t errors = 0;
};

ConfigResult RunConfig(const std::vector<std::string>& queries,
                       const std::vector<TablePtr>& tables, bool cache_on,
                       int threads, size_t total_samples) {
  Session session;
  SL_CHECK_OK(session.SetConf("sparkline.executors", "2"));
  SL_CHECK_OK(
      session.SetConf("sparkline.cache.enabled", cache_on ? "true" : "false"));
  SL_CHECK_OK(session.SetConf("sparkline.serve.max_concurrent",
                              std::to_string(threads)));
  for (const auto& table : tables) {
    SL_CHECK_OK(session.catalog()->RegisterTable(table));
  }
  serve::QueryService* service = session.service();

  const ZipfDistribution zipf(static_cast<int64_t>(queries.size()), 1.1);
  const size_t per_thread = total_samples / static_cast<size_t>(threads);

  std::vector<std::vector<double>> latencies(threads);
  std::vector<size_t> errors(threads, 0);
  StopWatch region;
  std::vector<std::thread> clients;
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t]() {
      Rng rng(0x5eed + static_cast<uint64_t>(t));
      latencies[t].reserve(per_thread);
      for (size_t i = 0; i < per_thread; ++i) {
        const size_t q =
            static_cast<size_t>(zipf.Sample(&rng) - 1) % queries.size();
        StopWatch sw;
        auto result = service->Execute(queries[q]);
        // Synchronous clients stay within the admission window, but retry
        // once for robustness if the cap is ever hit.
        if (!result.ok() &&
            result.status().code() == StatusCode::kUnavailable) {
          result = service->Execute(queries[q]);
        }
        if (!result.ok()) {
          ++errors[t];
          continue;
        }
        latencies[t].push_back(sw.ElapsedMillis());
      }
    });
  }
  for (auto& c : clients) c.join();
  const double region_ms = region.ElapsedMillis();

  std::vector<double> all;
  for (const auto& per : latencies) all.insert(all.end(), per.begin(), per.end());
  std::sort(all.begin(), all.end());

  ConfigResult out;
  if (!all.empty()) {
    out.p50_ms = all[all.size() / 2];
    out.p99_ms = all[std::min(all.size() - 1, all.size() * 99 / 100)];
    out.qps = 1000.0 * static_cast<double>(all.size()) / region_ms;
  }
  const auto stats = session.cache()->stats();
  const int64_t probes = stats.hits + stats.misses;
  out.hit_rate =
      probes == 0 ? 0.0
                  : static_cast<double>(stats.hits) /
                        static_cast<double>(probes);
  for (size_t e : errors) out.errors += e;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config = ParseArgs(argc, argv);

  datagen::StoreSalesOptions store_opts;
  store_opts.num_rows = static_cast<size_t>(8000 * config.scale);
  TablePtr store = datagen::GenerateStoreSales(store_opts);
  datagen::AirbnbOptions airbnb_opts;
  airbnb_opts.num_rows = static_cast<size_t>(6000 * config.scale);
  airbnb_opts.table_name = "airbnb";
  TablePtr airbnb = datagen::GenerateAirbnb(airbnb_opts);
  std::printf("repeated-query workload: store_sales=%zu airbnb=%zu tuples\n",
              store->num_rows(), airbnb->num_rows());

  std::vector<std::string> queries =
      BuildQueries("store_sales", StoreSalesDimensions());
  for (auto& q : BuildQueries("airbnb", AirbnbDimensions())) {
    queries.push_back(std::move(q));
  }
  std::printf("distinct queries: %zu (Zipf s=1.1)\n\n", queries.size());

  const size_t total_samples = static_cast<size_t>(480 * config.scale);
  std::printf("%-8s %-6s %10s %10s %10s %8s %7s\n", "threads", "cache",
              "p50(ms)", "p99(ms)", "qps", "hit%", "errors");
  for (int threads : {1, 4, 8}) {
    for (bool cache_on : {false, true}) {
      ConfigResult r = RunConfig(queries, {store, airbnb}, cache_on, threads,
                                 total_samples);
      std::printf("%-8d %-6s %10.3f %10.3f %10.1f %7.1f%% %7zu\n", threads,
                  cache_on ? "on" : "off", r.p50_ms, r.p99_ms, r.qps,
                  100.0 * r.hit_rate, r.errors);
    }
  }
  return 0;
}
