// Repeated-query serving workload (serve layer, not a paper figure):
// a Zipf-skewed stream over 50 distinct skyline queries against store_sales
// and airbnb, replayed through the QueryService at 1/4/8 service threads
// with the fingerprinted result cache off vs. on.
//
// Reported per configuration: p50/p99 client-observed latency, throughput,
// and the cache hit rate. The paper's dashboards re-run identical SKYLINE OF
// clauses over static tables; this is the workload where result caching
// should collapse p50 by >=10x (every Zipf head query after the first is a
// hash probe + shared-snapshot alias instead of a full skyline).
//
// A second sweep mixes InsertInto into the stream (0/1/10/30% of ops) with
// incremental maintenance (sparkline.cache.incremental) off vs. on: with it
// off every write invalidates, with it on cached skylines evolve by delta
// and keep serving hits. `--smoke` runs a reduced write-mix sweep and
// asserts the contract: zero errors, cached answers multiset-identical to a
// fresh-execution oracle, and >0 delta-maintained hits at the 10% mix.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "serve/query_service.h"

using namespace sparkline;         // NOLINT
using namespace sparkline::bench;  // NOLINT

namespace {

/// 25 distinct queries per table: sweep 2..6 dimensions x 5 filter
/// variants. The filters keep every row (thresholds far above the data) —
/// they exist to give each variant a distinct fingerprint while the
/// skyline work stays comparable.
std::vector<std::string> BuildQueries(const std::string& table,
                                      const std::vector<std::string>& dims) {
  std::vector<std::string> queries;
  for (int variant = 0; variant < 5; ++variant) {
    for (size_t d = 2; d <= 6; ++d) {
      const std::string filter_col =
          dims[0].substr(0, dims[0].find(' '));
      std::string sql = StrCat(
          "SELECT * FROM ", table, " WHERE ", filter_col, " < ",
          1000000 + variant, " SKYLINE OF ");
      for (size_t i = 0; i < d; ++i) {
        if (i > 0) sql += ", ";
        sql += dims[i];
      }
      queries.push_back(std::move(sql));
    }
  }
  return queries;
}

struct ConfigResult {
  double p50_ms = 0;
  double p99_ms = 0;
  double qps = 0;
  double hit_rate = 0;
  size_t errors = 0;
};

ConfigResult RunConfig(const std::vector<std::string>& queries,
                       const std::vector<TablePtr>& tables, bool cache_on,
                       int threads, size_t total_samples) {
  Session session;
  SL_CHECK_OK(session.SetConf("sparkline.executors", "2"));
  SL_CHECK_OK(
      session.SetConf("sparkline.cache.enabled", cache_on ? "true" : "false"));
  SL_CHECK_OK(session.SetConf("sparkline.serve.max_concurrent",
                              std::to_string(threads)));
  for (const auto& table : tables) {
    SL_CHECK_OK(session.catalog()->RegisterTable(table));
  }
  serve::QueryService* service = session.service();

  const ZipfDistribution zipf(static_cast<int64_t>(queries.size()), 1.1);
  const size_t per_thread = total_samples / static_cast<size_t>(threads);

  std::vector<std::vector<double>> latencies(threads);
  std::vector<size_t> errors(threads, 0);
  StopWatch region;
  std::vector<std::thread> clients;
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t]() {
      Rng rng(0x5eed + static_cast<uint64_t>(t));
      latencies[t].reserve(per_thread);
      for (size_t i = 0; i < per_thread; ++i) {
        const size_t q =
            static_cast<size_t>(zipf.Sample(&rng) - 1) % queries.size();
        StopWatch sw;
        auto result = service->Execute(queries[q]);
        // Synchronous clients stay within the admission window, but retry
        // once for robustness if the cap is ever hit.
        if (!result.ok() &&
            result.status().code() == StatusCode::kUnavailable) {
          result = service->Execute(queries[q]);
        }
        if (!result.ok()) {
          ++errors[t];
          continue;
        }
        latencies[t].push_back(sw.ElapsedMillis());
      }
    });
  }
  for (auto& c : clients) c.join();
  const double region_ms = region.ElapsedMillis();

  std::vector<double> all;
  for (const auto& per : latencies) all.insert(all.end(), per.begin(), per.end());
  std::sort(all.begin(), all.end());

  ConfigResult out;
  if (!all.empty()) {
    out.p50_ms = all[all.size() / 2];
    out.p99_ms = all[std::min(all.size() - 1, all.size() * 99 / 100)];
    out.qps = 1000.0 * static_cast<double>(all.size()) / region_ms;
  }
  const auto stats = session.cache()->stats();
  const int64_t probes = stats.hits + stats.misses;
  out.hit_rate =
      probes == 0 ? 0.0
                  : static_cast<double>(stats.hits) /
                        static_cast<double>(probes);
  for (size_t e : errors) out.errors += e;
  return out;
}

// --- write-mix sweep -------------------------------------------------------

std::vector<std::string> SortedRowStrings(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Row& row : rows) out.push_back(RowToString(row));
  std::sort(out.begin(), out.end());
  return out;
}

/// Deep copy, so registering the snapshot in the oracle catalog re-stamps
/// the copy's version instead of the bench session's shared Table object.
TablePtr CopySnapshot(const TablePtr& src) {
  auto copy = std::make_shared<Table>(src->name(), src->schema());
  for (const Row& row : src->rows()) copy->AppendRowUnchecked(row);
  return copy;
}

/// Four distinct maintainable skylines over the writable table.
std::vector<std::string> WriteMixQueries() {
  std::vector<std::string> queries;
  for (int variant = 0; variant < 4; ++variant) {
    queries.push_back(StrCat(
        "SELECT * FROM wpts WHERE d0 < ", 1000000 + variant,
        " SKYLINE OF d0 MIN, d1 MAX", variant % 2 == 0 ? ", d2 MIN" : ""));
  }
  return queries;
}

struct WriteMixResult {
  double p50_ms = 0;
  double hit_rate = 0;
  int64_t delta_hits = 0;   ///< hits served from a delta-maintained entry
  int64_t maintained = 0;   ///< maintainer stats over the whole run
  int64_t fallbacks = 0;
  size_t errors = 0;
};

WriteMixResult RunWriteMix(const std::vector<std::string>& queries,
                           size_t base_rows, int insert_pct, bool incremental,
                           size_t ops, bool smoke) {
  Session session;
  SL_CHECK_OK(session.SetConf("sparkline.executors", "2"));
  SL_CHECK_OK(session.SetConf("sparkline.cache.enabled", "true"));
  SL_CHECK_OK(session.SetConf("sparkline.cache.incremental",
                              incremental ? "true" : "false"));
  SL_CHECK_OK(session.catalog()->RegisterTable(datagen::GeneratePoints(
      "wpts", base_rows, 3, datagen::PointDistribution::kAntiCorrelated, 77)));

  // Same seed for incremental off and on at a given mix: both replay the
  // identical op schedule, so the hit-rate delta is pure policy.
  Rng rng(0xfeedULL + static_cast<uint64_t>(insert_pct));
  int64_t next_id = 10 * 1000 * 1000;
  std::vector<double> latencies;
  int64_t hits = 0;
  int64_t probes = 0;
  WriteMixResult out;
  for (size_t op = 0; op < ops; ++op) {
    if (rng.UniformInt(0, 99) < insert_pct) {
      std::vector<Row> batch;
      const int64_t n = rng.UniformInt(1, 4);
      for (int64_t j = 0; j < n; ++j) {
        batch.push_back({Value::Int64(next_id++),
                         Value::Double(rng.Uniform(0.0, 1.0)),
                         Value::Double(rng.Uniform(0.0, 1.0)),
                         Value::Double(rng.Uniform(0.0, 1.0))});
      }
      SL_CHECK_OK(session.catalog()->InsertInto("wpts", batch));
      // Flush maintenance before the next op, so hit rates measure the
      // maintenance policy rather than notifier-thread timing.
      session.catalog()->DrainWrites();
    } else {
      const std::string& sql = queries[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(queries.size()) - 1))];
      StopWatch sw;
      auto df = session.Sql(sql);
      if (!df.ok()) {
        ++out.errors;
        continue;
      }
      auto result = df->Collect();
      if (!result.ok()) {
        ++out.errors;
        continue;
      }
      latencies.push_back(sw.ElapsedMillis());
      ++probes;
      if (result->metrics.cache_hit) {
        ++hits;
        if (result->metrics.cache_delta_maintained > 0) ++out.delta_hits;
      }
    }
  }

  std::sort(latencies.begin(), latencies.end());
  if (!latencies.empty()) out.p50_ms = latencies[latencies.size() / 2];
  out.hit_rate = probes == 0 ? 0.0
                             : static_cast<double>(hits) /
                                   static_cast<double>(probes);
  const auto stats = session.maintainer()->stats();
  out.maintained = stats.maintained;
  out.fallbacks = stats.fallbacks;

  if (smoke) {
    // Parity: every cached answer over the final snapshot must equal a
    // fresh-execution oracle (throwaway session, cache off).
    TablePtr snapshot = session.catalog()->GetTable("wpts").MoveValue();
    Session oracle;
    oracle.catalog()->RegisterOrReplaceTable(CopySnapshot(snapshot));
    for (const std::string& sql : queries) {
      auto live = session.Sql(sql);
      SL_CHECK(live.ok()) << live.status().ToString();
      auto live_result = live->Collect();
      SL_CHECK(live_result.ok()) << live_result.status().ToString();
      auto fresh = oracle.Sql(sql);
      SL_CHECK(fresh.ok()) << fresh.status().ToString();
      auto fresh_result = fresh->Collect();
      SL_CHECK(fresh_result.ok()) << fresh_result.status().ToString();
      SL_CHECK(SortedRowStrings(live_result->rows()) ==
               SortedRowStrings(fresh_result->rows()))
          << "cached result diverged from fresh execution for " << sql;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  BenchConfig config = ParseArgs(static_cast<int>(args.size()), args.data());
  if (smoke) config.scale = std::min(config.scale, 0.15);

  datagen::StoreSalesOptions store_opts;
  store_opts.num_rows = static_cast<size_t>(8000 * config.scale);
  TablePtr store = datagen::GenerateStoreSales(store_opts);
  datagen::AirbnbOptions airbnb_opts;
  airbnb_opts.num_rows = static_cast<size_t>(6000 * config.scale);
  airbnb_opts.table_name = "airbnb";
  TablePtr airbnb = datagen::GenerateAirbnb(airbnb_opts);
  std::printf("repeated-query workload: store_sales=%zu airbnb=%zu tuples\n",
              store->num_rows(), airbnb->num_rows());

  std::vector<std::string> queries =
      BuildQueries("store_sales", StoreSalesDimensions());
  for (auto& q : BuildQueries("airbnb", AirbnbDimensions())) {
    queries.push_back(std::move(q));
  }
  std::printf("distinct queries: %zu (Zipf s=1.1)\n\n", queries.size());

  if (!smoke) {
    const size_t total_samples = static_cast<size_t>(480 * config.scale);
    std::printf("%-8s %-6s %10s %10s %10s %8s %7s\n", "threads", "cache",
                "p50(ms)", "p99(ms)", "qps", "hit%", "errors");
    for (int threads : {1, 4, 8}) {
      for (bool cache_on : {false, true}) {
        ConfigResult r = RunConfig(queries, {store, airbnb}, cache_on, threads,
                                   total_samples);
        std::printf("%-8d %-6s %10.3f %10.3f %10.1f %7.1f%% %7zu\n", threads,
                    cache_on ? "on" : "off", r.p50_ms, r.p99_ms, r.qps,
                    100.0 * r.hit_rate, r.errors);
      }
    }
  }

  // Write-mix sweep: the same cached stream with InsertInto mixed in.
  const size_t mix_rows =
      std::max<size_t>(200, static_cast<size_t>(3000 * config.scale));
  const size_t mix_ops =
      std::max<size_t>(160, static_cast<size_t>(400 * config.scale));
  const std::vector<std::string> mix_queries = WriteMixQueries();
  std::printf("\nwrite-mix sweep: wpts=%zu tuples, %zu ops, %zu queries\n",
              mix_rows, mix_ops, mix_queries.size());
  std::printf("%-8s %-6s %10s %8s %11s %11s %10s %7s\n", "insert%", "incr",
              "p50(ms)", "hit%", "delta-hits", "maintained", "fallbacks",
              "errors");
  for (int insert_pct : {0, 1, 10, 30}) {
    WriteMixResult off_result;
    for (bool incremental : {false, true}) {
      WriteMixResult r = RunWriteMix(mix_queries, mix_rows, insert_pct,
                                     incremental, mix_ops, smoke);
      std::printf("%-8d %-6s %10.3f %7.1f%% %11lld %11lld %10lld %7zu\n",
                  insert_pct, incremental ? "on" : "off", r.p50_ms,
                  100.0 * r.hit_rate, static_cast<long long>(r.delta_hits),
                  static_cast<long long>(r.maintained),
                  static_cast<long long>(r.fallbacks), r.errors);
      if (smoke) {
        SL_CHECK(r.errors == 0) << "write-mix queries failed";
        if (!incremental) {
          SL_CHECK(r.maintained == 0 && r.delta_hits == 0)
              << "maintenance ran with sparkline.cache.incremental=false";
          off_result = r;
        } else {
          // Identical op schedule (same seed): maintenance can only keep
          // entries alive that invalidation would have dropped.
          SL_CHECK(r.hit_rate >= off_result.hit_rate - 1e-9)
              << "incremental maintenance lowered the hit rate";
          if (insert_pct == 10) {
            SL_CHECK(r.delta_hits > 0)
                << "no delta-maintained hits at the 10% insert mix";
            SL_CHECK(r.maintained > 0) << "no cache entries were maintained";
          }
        }
      }
    }
  }
  if (smoke) std::printf("\nsmoke checks passed\n");
  MaybeDumpMetricsJson(config);
  return 0;
}
