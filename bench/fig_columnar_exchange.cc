// Columnar-exchange ablation (PR 4): build-once vs build-per-stage.
//
// With sparkline.skyline.exchange.columnar on, the skyline pipeline ships
// DominanceMatrix batch views between stages: each partition is projected
// exactly once at the local stage, the gather exchange concatenates the
// matrix blocks, and the global stages ([partial]/[merge] for complete
// data, [candidates]/[validate]/[finalize] for incomplete) run over index
// views of the shared matrix. With it off, every stage re-projects its row
// input (the pre-exchange behaviour).
//
// This bench quantifies the delta at 1 / 8 / 16 executors on the paper's
// two main workloads (airbnb complete, store_sales complete + incomplete),
// reporting per configuration:
//   total     simulated critical-path ms for the whole query
//   global    summed critical-path ms of all GlobalSkyline* stages (where
//             the row path pays its TryBuild per stage)
//   project   aggregate projection ms (exchange path only)
//   decode    aggregate batch->row decode ms (exchange path only)
//   builds    DominanceMatrix projections across all stages
//   ship_rows / ship_bytes
//             gather-exchange traffic (columnar views count their
//             selection, not their backing storage)
//
// Shapes to look for: `builds` drops to one per partition with the
// exchange on (vs one per partition + one per global stage off), and the
// global-stage time drops accordingly — most visibly at 8-16 executors
// where the row path re-projects the gathered input twice more.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/string_util.h"

using namespace sparkline;        // NOLINT
using namespace sparkline::bench; // NOLINT

namespace {

const int kExecutorSteps[] = {1, 8, 16};

struct ExchangeCell {
  double total_ms = 0;
  double global_ms = 0;
  double projection_ms = 0;
  double decode_ms = 0;
  int64_t builds = 0;
  int64_t ship_rows = 0;
  int64_t ship_bytes = 0;
};

ExchangeCell RunOnce(Session* session, const std::string& sql,
                     const std::string& strategy, int executors,
                     bool exchange) {
  SL_CHECK_OK(session->SetConf("sparkline.skyline.strategy", strategy));
  SL_CHECK_OK(session->SetConf("sparkline.executors",
                               std::to_string(executors)));
  SL_CHECK_OK(session->SetConf("sparkline.skyline.exchange.columnar",
                               exchange ? "true" : "false"));
  auto df = session->Sql(sql);
  SL_CHECK(df.ok()) << df.status().ToString();
  // Warm-up, then the measured run.
  SL_CHECK(df->Collect().ok());
  auto result = df->Collect();
  SL_CHECK(result.ok()) << result.status().ToString();

  ExchangeCell cell;
  const QueryMetrics& m = result->metrics;
  cell.total_ms = m.simulated_ms;
  for (const auto& [label, ms] : m.operator_ms) {
    if (label.find("GlobalSkyline") != std::string::npos) cell.global_ms += ms;
  }
  cell.projection_ms = m.projection_ms;
  cell.decode_ms = m.decode_ms;
  for (const auto& [label, n] : m.matrix_builds) cell.builds += n;
  cell.ship_rows = m.exchange_rows_shipped;
  cell.ship_bytes = m.exchange_bytes;
  return cell;
}

void Sweep(Session* session, const char* title, const std::string& sql,
           const std::string& strategy) {
  std::printf("\n%s | strategy: %s\n", title, strategy.c_str());
  std::printf("%-10s %-22s %10s %10s %10s %10s %8s %10s %11s\n", "executors",
              "exchange", "total_ms", "global_ms", "proj_ms", "decode_ms",
              "builds", "ship_rows", "ship_bytes");
  for (int executors : kExecutorSteps) {
    ExchangeCell on = RunOnce(session, sql, strategy, executors, true);
    ExchangeCell off = RunOnce(session, sql, strategy, executors, false);
    std::printf("%-10d %-22s %10.2f %10.2f %10.2f %10.2f %8lld %10lld "
                "%11lld\n",
                executors, "on (build-once)", on.total_ms, on.global_ms,
                on.projection_ms, on.decode_ms,
                static_cast<long long>(on.builds),
                static_cast<long long>(on.ship_rows),
                static_cast<long long>(on.ship_bytes));
    std::printf("%-10s %-22s %10.2f %10.2f %10.2f %10.2f %8lld %10lld "
                "%11lld\n",
                "", "off (build-per-stage)", off.total_ms, off.global_ms,
                off.projection_ms, off.decode_ms,
                static_cast<long long>(off.builds),
                static_cast<long long>(off.ship_rows),
                static_cast<long long>(off.ship_bytes));
    std::printf("%-10s %-22s %9.1f%% %9.1f%%\n", "", "global-stage delta",
                off.total_ms > 0
                    ? 100.0 * (off.total_ms - on.total_ms) / off.total_ms
                    : 0.0,
                off.global_ms > 0
                    ? 100.0 * (off.global_ms - on.global_ms) / off.global_ms
                    : 0.0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config = ParseArgs(argc, argv);
  Session session;
  SL_CHECK_OK(session.SetConf("sparkline.timeout_ms",
                              std::to_string(config.timeout_ms)));

  datagen::AirbnbOptions aopts;
  aopts.num_rows = static_cast<size_t>(9000 * config.scale);
  aopts.incomplete = true;
  aopts.table_name = "airbnb_incomplete";
  auto incomplete = datagen::GenerateAirbnb(aopts);
  auto complete = datagen::CompleteSubset(*incomplete, "airbnb");
  SL_CHECK_OK(session.catalog()->RegisterTable(incomplete));
  SL_CHECK_OK(session.catalog()->RegisterTable(complete));

  datagen::StoreSalesOptions sopts;
  sopts.num_rows = static_cast<size_t>(20000 * config.scale);
  SL_CHECK_OK(
      session.catalog()->RegisterTable(datagen::GenerateStoreSales(sopts)));
  sopts.incomplete = true;
  sopts.table_name = "store_sales_incomplete";
  SL_CHECK_OK(
      session.catalog()->RegisterTable(datagen::GenerateStoreSales(sopts)));

  Sweep(&session, "airbnb (complete, 6 dims)",
        SkylineSql("airbnb", AirbnbDimensions(), 6, true), "distributed");
  Sweep(&session, "store_sales (complete, 6 dims)",
        SkylineSql("store_sales", StoreSalesDimensions(), 6, true),
        "distributed");
  Sweep(&session, "store_sales (incomplete, 6 dims)",
        SkylineSql("store_sales_incomplete", StoreSalesDimensions(), 6, false),
        "incomplete");
  return 0;
}
