// Reproduces paper Figure 6 + Tables 9/10 (and Figure 14 with --grid):
// number of executors (1, 2, 3, 5, 10) vs. execution time on the Inside
// Airbnb dataset, 6 skyline dimensions (grid: 3-5 dimensions).
//
// Paper shapes to look for:
//  * parallelization pays off only up to a sweet spot that depends on the
//    (small) dataset size: more executors shrink the local-skyline work but
//    leave more tuples to the non-parallel global stage;
//  * the reference algorithm parallelizes "somewhat" but never wins.
#include <cstdio>

#include "bench_common.h"
#include "common/string_util.h"

using namespace sparkline;        // NOLINT
using namespace sparkline::bench; // NOLINT

namespace {

const int kExecutorSteps[] = {1, 2, 3, 5, 10};

void RunSweep(Session* session, const std::string& table, bool complete_data,
              size_t num_tuples, size_t dims, const BenchConfig& config,
              const char* figure) {
  const auto& algorithms =
      complete_data ? CompleteAlgorithms() : IncompleteAlgorithms();
  std::vector<std::string> labels;
  for (int e : kExecutorSteps) labels.push_back(std::to_string(e));
  std::vector<std::string> names;
  std::vector<std::vector<Cell>> rows;
  for (const auto& algo : algorithms) {
    names.push_back(algo.display_name);
    std::vector<Cell> row;
    for (int executors : kExecutorSteps) {
      const std::string sql =
          SkylineSql(table, AirbnbDimensions(), dims, complete_data);
      row.push_back(RunCell(session, sql, algo.strategy, executors, config));
    }
    rows.push_back(std::move(row));
  }
  PrintTables(StrCat(figure, " | executors vs time | dataset: ", table, " (",
                     num_tuples, " tuples) | dims: ", dims),
              names, labels, rows, static_cast<int>(names.size()) - 1);
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config = ParseArgs(argc, argv);
  Session session;

  datagen::AirbnbOptions opts;
  opts.num_rows = static_cast<size_t>(9000 * config.scale);
  opts.incomplete = true;
  opts.table_name = "airbnb_incomplete";
  auto incomplete = datagen::GenerateAirbnb(opts);
  auto complete = datagen::CompleteSubset(*incomplete, "airbnb");
  SL_CHECK_OK(session.catalog()->RegisterTable(incomplete));
  SL_CHECK_OK(session.catalog()->RegisterTable(complete));
  std::printf("airbnb: %zu complete / %zu incomplete tuples\n",
              complete->num_rows(), incomplete->num_rows());

  RunSweep(&session, "airbnb", true, complete->num_rows(), 6, config,
           "Fig 6 + Table 9");
  RunSweep(&session, "airbnb_incomplete", false, incomplete->num_rows(), 6,
           config, "Fig 6 + Table 10");

  if (config.grid) {
    for (size_t dims : {3u, 4u, 5u}) {  // Figure 14 grid
      RunSweep(&session, "airbnb", true, complete->num_rows(), dims, config,
               "Fig 14");
      RunSweep(&session, "airbnb_incomplete", false, incomplete->num_rows(),
               dims, config, "Fig 14");
    }
  }
  return 0;
}
