// Reproduces paper Figure 7 + Tables 11/12 (and Figure 15 with --grid):
// number of executors (1, 2, 3, 5, 10) vs. execution time on store_sales,
// 6 skyline dimensions; complete (paper: 10M tuples) and incomplete
// (paper: 5M tuples) variants.
//
// Paper shapes to look for: on this ~10x larger dataset (compared with
// Airbnb) additional executors clearly help the distributed algorithms,
// and the reference times out at low executor counts (Table 11: t.o. for
// 1-5 executors).
#include <cstdio>

#include "bench_common.h"
#include "common/string_util.h"

using namespace sparkline;        // NOLINT
using namespace sparkline::bench; // NOLINT

namespace {

const int kExecutorSteps[] = {1, 2, 3, 5, 10};

void RunSweep(Session* session, const std::string& table, bool complete_data,
              size_t num_tuples, size_t dims, const BenchConfig& config,
              const char* figure) {
  const auto& algorithms =
      complete_data ? CompleteAlgorithms() : IncompleteAlgorithms();
  std::vector<std::string> labels;
  for (int e : kExecutorSteps) labels.push_back(std::to_string(e));
  std::vector<std::string> names;
  std::vector<std::vector<Cell>> rows;
  for (const auto& algo : algorithms) {
    names.push_back(algo.display_name);
    std::vector<Cell> row;
    for (int executors : kExecutorSteps) {
      const std::string sql =
          SkylineSql(table, StoreSalesDimensions(), dims, complete_data);
      row.push_back(RunCell(session, sql, algo.strategy, executors, config));
    }
    rows.push_back(std::move(row));
  }
  PrintTables(StrCat(figure, " | executors vs time | dataset: ", table, " (",
                     num_tuples, " tuples) | dims: ", dims),
              names, labels, rows, static_cast<int>(names.size()) - 1);
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config = ParseArgs(argc, argv);
  Session session;

  datagen::StoreSalesOptions big;
  big.num_rows = static_cast<size_t>(20000 * config.scale);
  big.table_name = "store_sales_10";
  SL_CHECK_OK(session.catalog()->RegisterTable(datagen::GenerateStoreSales(big)));

  datagen::StoreSalesOptions inc;
  inc.num_rows = static_cast<size_t>(10000 * config.scale);
  inc.incomplete = true;
  inc.table_name = "store_sales_5_incomplete";
  SL_CHECK_OK(session.catalog()->RegisterTable(datagen::GenerateStoreSales(inc)));

  std::printf("store_sales: %zu complete (paper: 10M), %zu incomplete "
              "(paper: 5M)\n",
              big.num_rows, inc.num_rows);

  RunSweep(&session, "store_sales_10", true, big.num_rows, 6, config,
           "Fig 7 + Table 11");
  RunSweep(&session, "store_sales_5_incomplete", false, inc.num_rows, 6,
           config, "Fig 7 + Table 12");

  if (config.grid) {
    // Figure 15 grid: 3-5 dimensions on the 5M-scale complete dataset.
    datagen::StoreSalesOptions mid;
    mid.num_rows = static_cast<size_t>(10000 * config.scale);
    mid.table_name = "store_sales_5";
    SL_CHECK_OK(
        session.catalog()->RegisterTable(datagen::GenerateStoreSales(mid)));
    for (size_t dims : {3u, 4u, 5u}) {
      RunSweep(&session, "store_sales_5", true, mid.num_rows, dims, config,
               "Fig 15");
      RunSweep(&session, "store_sales_5_incomplete", false, inc.num_rows, dims,
               config, "Fig 15");
    }
  }
  return 0;
}
