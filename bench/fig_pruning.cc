// Two-phase distributed pruning ablation (PR 9): pre-gather filter
// broadcast + zone-map partition skipping.
//
// Phase one (sparkline.skyline.broadcast_filter): after the local skyline
// pass every partition nominates its SaLSa minmax-best representatives; the
// union travels as a tiny filter set and each partition prunes its local
// skyline against it *before* the gather exchange, so strictly dominated
// rows are never shipped.
//
// Phase two (sparkline.scan.zone_maps): the scan seeds per-partition
// zone maps (per-dimension min/max + null counts) from the table's
// incrementally maintained summaries; LocalSkylineExec drops whole
// partitions whose best corner is strictly dominated by another
// partition's worst corner without touching a row.
//
// The two tables of points are ingested *sorted by d0* so contiguous scan
// chunks own disjoint value ranges — the clustered layout zone maps are
// designed for. The distribution then decides the outcome:
//   correlated      the leading partitions dominate the rest outright:
//                   zone maps skip almost every partition and the filter
//                   broadcast starves the gather
//   anticorrelated  disjoint d0 zones but incomparable corners (good in one
//                   dimension, bad in another): zone skipping cannot fire,
//                   quantifying the overhead of the extra phases
//   store_sales     the paper's DSB-derived mixed-goal workload, natural
//                   (unsorted) ingest: only the broadcast phase helps
//
// Reported per configuration (bcast x zones x executors):
//   total_ms    simulated critical-path ms for the whole query
//   ship_rows   rows crossing the gather exchange (columnar views count
//               their selection, not their backing)
//   ship_bytes  bytes crossing the gather exchange
//   dom_tests   dominance tests across all stages (the local stage's share
//               concentrates in the one unskippable partition that owns the
//               global skyline, so the total shrinks slower than the merge)
//   merge       dominance tests of the post-gather GlobalSkyline* stages
//               alone — the work the gather exchange actually feeds
//   skip        partitions dropped whole (zone corner test + filter veto)
//   bcast       filter points broadcast; pruned = rows dropped pre-gather
//
// Every cell is checked bit-identical to the both-phases-off baseline.
// --smoke runs a scaled-down sweep and additionally asserts the acceptance
// invariants on correlated data at 8+ executors: >0 partitions skipped and
// a >=2x reduction in shipped rows, shipped bytes and merge dominance
// tests.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/string_util.h"

using namespace sparkline;        // NOLINT
using namespace sparkline::bench; // NOLINT

namespace {

struct PruneCell {
  double total_ms = 0;
  int64_t ship_rows = 0;
  int64_t ship_bytes = 0;
  int64_t dominance_tests = 0;
  int64_t merge_tests = 0;
  int64_t partitions_skipped = 0;
  int64_t bcast_points = 0;
  int64_t rows_pruned = 0;
  std::vector<std::string> rows;
};

PruneCell RunOnce(Session* session, const std::string& sql, bool broadcast,
                  bool zones) {
  SL_CHECK_OK(session->SetConf("sparkline.skyline.broadcast_filter",
                               broadcast ? "true" : "false"));
  SL_CHECK_OK(
      session->SetConf("sparkline.scan.zone_maps", zones ? "true" : "false"));
  auto df = session->Sql(sql);
  SL_CHECK(df.ok()) << df.status().ToString();
  SL_CHECK(df->Collect().ok());  // warm-up
  auto result = df->Collect();
  SL_CHECK(result.ok()) << result.status().ToString();

  PruneCell cell;
  const QueryMetrics& m = result->metrics;
  cell.total_ms = m.simulated_ms;
  cell.ship_rows = m.exchange_rows_shipped;
  cell.ship_bytes = m.exchange_bytes;
  cell.dominance_tests = m.dominance_tests;
  cell.merge_tests = m.merge_dominance_tests;
  cell.partitions_skipped = m.partitions_skipped;
  cell.bcast_points = m.broadcast_filter_points;
  cell.rows_pruned = m.rows_pruned_pre_gather;
  cell.rows.reserve(result->num_rows());
  for (const auto& row : result->rows()) cell.rows.push_back(RowToString(row));
  return cell;
}

void Sweep(Session* session, const char* title, const std::string& sql,
           size_t table_rows, bool smoke, bool assert_pruning) {
  std::printf("\n%s (%zu rows) | strategy: distributed, kernel: sfs\n", title,
              table_rows);
  std::printf("%-5s %-6s %-6s %9s %10s %11s %11s %9s %5s %6s %8s\n", "execs",
              "bcast", "zones", "total_ms", "ship_rows", "ship_bytes",
              "dom_tests", "merge", "skip", "bcast", "pruned");
  for (size_t executors : {size_t{1}, size_t{8}, size_t{16}}) {
    SL_CHECK_OK(
        session->SetConf("sparkline.executors", std::to_string(executors)));
    const PruneCell off = RunOnce(session, sql, false, false);
    const PruneCell zonly = RunOnce(session, sql, false, true);
    const PruneCell bonly = RunOnce(session, sql, true, false);
    const PruneCell on = RunOnce(session, sql, true, true);
    for (const auto& [bcast, zones, cell] :
         {std::make_tuple("off", "off", &off),
          std::make_tuple("off", "on", &zonly),
          std::make_tuple("on", "off", &bonly),
          std::make_tuple("on", "on", &on)}) {
      std::printf("%-5zu %-6s %-6s %9.2f %10lld %11lld %11lld %9lld %5lld "
                  "%6lld %8lld\n",
                  executors, bcast, zones, cell->total_ms,
                  static_cast<long long>(cell->ship_rows),
                  static_cast<long long>(cell->ship_bytes),
                  static_cast<long long>(cell->dominance_tests),
                  static_cast<long long>(cell->merge_tests),
                  static_cast<long long>(cell->partitions_skipped),
                  static_cast<long long>(cell->bcast_points),
                  static_cast<long long>(cell->rows_pruned));
      // Both phases only ever drop rows a surviving skyline point strictly
      // dominates, so every configuration must be bit-identical (same rows,
      // same order) to the unpruned baseline.
      SL_CHECK(cell->rows == off.rows)
          << title << " rows diverged at executors=" << executors
          << " bcast=" << bcast << " zones=" << zones << " ("
          << cell->rows.size() << " vs " << off.rows.size() << " rows)";
    }
    if (smoke && assert_pruning && executors >= 8) {
      // The acceptance bar: on clustered correlated data the two phases must
      // skip whole partitions and at least halve the gather exchange and the
      // dominance-test volume.
      SL_CHECK(on.partitions_skipped > 0)
          << title << ": no partition skipped at executors=" << executors;
      SL_CHECK(on.ship_rows * 2 <= off.ship_rows)
          << title << ": shipped rows " << on.ship_rows << " vs baseline "
          << off.ship_rows << " at executors=" << executors;
      SL_CHECK(on.ship_bytes * 2 <= off.ship_bytes)
          << title << ": shipped bytes " << on.ship_bytes << " vs baseline "
          << off.ship_bytes << " at executors=" << executors;
      SL_CHECK(on.merge_tests * 2 <= off.merge_tests)
          << title << ": merge dominance tests " << on.merge_tests
          << " vs baseline " << off.merge_tests << " at executors="
          << executors;
    }
  }
}

/// Re-ingests `src` clustered on column `col` (ascending, nulls never occur
/// here) so contiguous scan chunks get disjoint zone-map ranges — the
/// layout data skipping is designed for.
TablePtr SortedByColumn(const Table& src, const std::string& name,
                        size_t col) {
  std::vector<Row> rows = src.rows();
  std::stable_sort(rows.begin(), rows.end(), [col](const Row& a,
                                                   const Row& b) {
    return a[col].double_value() < b[col].double_value();
  });
  auto table = std::make_shared<Table>(name, src.schema());
  table->constraints().primary_key = src.constraints().primary_key;
  table->Reserve(rows.size());
  for (auto& row : rows) table->AppendRowUnchecked(std::move(row));
  return table;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  BenchConfig config = ParseArgs(static_cast<int>(args.size()), args.data());
  if (smoke) config.scale = std::min(config.scale, 0.15);

  Session session;
  SL_CHECK_OK(session.SetConf("sparkline.timeout_ms",
                              std::to_string(config.timeout_ms)));
  SL_CHECK_OK(session.SetConf("sparkline.skyline.strategy", "distributed"));
  SL_CHECK_OK(session.SetConf("sparkline.skyline.kernel", "sfs"));

  const size_t points = static_cast<size_t>(40000 * config.scale);
  SL_CHECK_OK(session.catalog()->RegisterTable(SortedByColumn(
      *datagen::GeneratePoints("corr_src", points, 4,
                               datagen::PointDistribution::kCorrelated, 42),
      "correlated", 1)));
  SL_CHECK_OK(session.catalog()->RegisterTable(SortedByColumn(
      *datagen::GeneratePoints("anti_src", points, 4,
                               datagen::PointDistribution::kAntiCorrelated,
                               42),
      "anticorrelated", 1)));
  datagen::StoreSalesOptions sopts;
  sopts.num_rows = static_cast<size_t>(20000 * config.scale);
  SL_CHECK_OK(
      session.catalog()->RegisterTable(datagen::GenerateStoreSales(sopts)));

  const std::string point_dims = "d0 MIN, d1 MIN, d2 MIN, d3 MIN";
  Sweep(&session, "correlated (sorted by d0)",
        StrCat("SELECT * FROM correlated SKYLINE OF ", point_dims), points,
        smoke, /*assert_pruning=*/true);
  Sweep(&session, "anticorrelated (sorted by d0)",
        StrCat("SELECT * FROM anticorrelated SKYLINE OF ", point_dims), points,
        smoke, /*assert_pruning=*/false);
  Sweep(&session, "store_sales (natural ingest)",
        SkylineSql("store_sales", StoreSalesDimensions(), 6, true),
        sopts.num_rows, smoke, /*assert_pruning=*/false);
  if (smoke) std::printf("\nsmoke checks passed\n");
  return 0;
}
