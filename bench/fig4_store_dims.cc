// Reproduces paper Figure 4 + Tables 5/6 (and Figure 12 with --grid):
// number of skyline dimensions (1-6) vs. execution time on the DSB
// store_sales dataset, 10 executors; the incomplete sweep uses a smaller
// dataset, like the paper ("to avoid timeouts").
//
// Paper shapes to look for:
//  * the 1-dimension anomaly on complete data: ss_quantity is
//    low-cardinality, so the 1-dim skyline keeps ~1% of all tuples and the
//    reference algorithm collapses (2463 s in Table 5) while the single-
//    dimension-optimized native plan is fastest of all;
//  * adding dimension 2 *shrinks* the skyline (ties become comparable) and
//    the reference recovers before degrading again at 5-6 dimensions.
#include <cstdio>

#include "bench_common.h"
#include "common/string_util.h"

using namespace sparkline;        // NOLINT
using namespace sparkline::bench; // NOLINT

namespace {

void RunSweep(Session* session, const std::string& table, bool complete_data,
              size_t num_tuples, int executors, const BenchConfig& config,
              const char* figure) {
  const auto& algorithms =
      complete_data ? CompleteAlgorithms() : IncompleteAlgorithms();
  std::vector<std::string> names;
  std::vector<std::string> labels;
  for (size_t d = 1; d <= 6; ++d) labels.push_back(std::to_string(d));
  std::vector<std::vector<Cell>> rows;
  for (const auto& algo : algorithms) {
    names.push_back(algo.display_name);
    std::vector<Cell> row;
    for (size_t dims = 1; dims <= 6; ++dims) {
      const std::string sql =
          SkylineSql(table, StoreSalesDimensions(), dims, complete_data);
      row.push_back(RunCell(session, sql, algo.strategy, executors, config));
    }
    rows.push_back(std::move(row));
  }
  PrintTables(StrCat(figure, " | dims vs time | dataset: ", table, " (",
                     num_tuples, " tuples) | executors: ", executors),
              names, labels, rows, static_cast<int>(names.size()) - 1);
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config = ParseArgs(argc, argv);
  Session session;

  datagen::StoreSalesOptions big;
  big.num_rows = static_cast<size_t>(20000 * config.scale);
  big.table_name = "store_sales_10";
  SL_CHECK_OK(session.catalog()->RegisterTable(datagen::GenerateStoreSales(big)));

  datagen::StoreSalesOptions small;
  small.num_rows = static_cast<size_t>(4000 * config.scale);
  small.incomplete = true;
  small.table_name = "store_sales_1_incomplete";
  SL_CHECK_OK(
      session.catalog()->RegisterTable(datagen::GenerateStoreSales(small)));

  std::printf("store_sales: %zu complete (paper: 10M), %zu incomplete "
              "(paper: 1M)\n",
              big.num_rows, small.num_rows);

  RunSweep(&session, "store_sales_10", true, big.num_rows, 10, config,
           "Fig 4 + Table 5");
  RunSweep(&session, "store_sales_1_incomplete", false, small.num_rows, 10,
           config, "Fig 4 + Table 6");

  if (config.grid) {
    // Figure 12: the 5M-tuple dataset across executor counts.
    datagen::StoreSalesOptions mid;
    mid.num_rows = static_cast<size_t>(10000 * config.scale);
    mid.table_name = "store_sales_5";
    SL_CHECK_OK(
        session.catalog()->RegisterTable(datagen::GenerateStoreSales(mid)));
    datagen::StoreSalesOptions mid_inc = mid;
    mid_inc.incomplete = true;
    mid_inc.table_name = "store_sales_5_incomplete";
    SL_CHECK_OK(
        session.catalog()->RegisterTable(datagen::GenerateStoreSales(mid_inc)));
    for (int executors : {2, 3, 5, 10}) {
      RunSweep(&session, "store_sales_5", true, mid.num_rows, executors,
               config, "Fig 12");
      RunSweep(&session, "store_sales_5_incomplete", false, mid.num_rows,
               executors, config, "Fig 12");
    }
  }
  return 0;
}
