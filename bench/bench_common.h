// Shared harness for the paper-reproduction benchmarks.
//
// Each fig*_ binary regenerates one figure/table family of the paper's
// evaluation (section 6 + appendices C-E): it sweeps the same parameter,
// runs the same four algorithms ("distributed complete", "non-distributed
// complete", "distributed incomplete", "reference" -- section 6.3) and
// prints Appendix-D style tables: absolute times, then percentages relative
// to the reference algorithm, with "t.o." for timeouts and "n.a." when the
// reference itself timed out.
//
// Times are the *simulated cluster* times (critical-path model, see
// DESIGN.md section 2); datasets are scaled-down versions of the paper's
// (pass --scale=N to grow them).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "api/dataframe.h"
#include "api/session.h"
#include "datagen/datagen.h"

namespace sparkline {
namespace bench {

/// Command-line configuration shared by all bench binaries.
struct BenchConfig {
  /// Multiplies every dataset size (1.0 = defaults that finish in ~1 min).
  double scale = 1.0;
  /// Per-query timeout, reproducing the paper's 3600 s cap.
  int64_t timeout_ms = 20000;
  /// Also run the appendix parameter grids (Figures 11-15 style).
  bool grid = false;
  /// Simulated per-executor memory overhead (MB).
  int64_t executor_overhead_mb = 64;
  /// When non-empty: dump the process-wide metrics-registry JSON snapshot
  /// to this path when the binary finishes (--json=PATH / --json PATH).
  std::string json_path;
};

BenchConfig ParseArgs(int argc, char** argv);

/// Writes MetricsRegistry::Global().JsonSnapshot() to config.json_path
/// (no-op when the flag was not given). Called by benches at exit so runs
/// leave a machine-readable counter/histogram trajectory next to the tables.
void MaybeDumpMetricsJson(const BenchConfig& config);

/// One of the four algorithms of paper section 6.3.
struct Algorithm {
  const char* display_name;  ///< as in the paper's legends
  const char* strategy;      ///< sparkline.skyline.strategy value
};

/// The four complete-data algorithms (in the paper's legend order).
const std::vector<Algorithm>& CompleteAlgorithms();
/// The two algorithms applicable to incomplete data.
const std::vector<Algorithm>& IncompleteAlgorithms();

/// Outcome of a single (algorithm, sweep point) cell.
struct Cell {
  bool timeout = false;
  bool error = false;
  double simulated_ms = 0;
  double wall_ms = 0;
  int64_t peak_memory_mb = 0;
  int64_t dominance_tests = 0;
  size_t result_rows = 0;
};

/// Runs one query under one algorithm/executor configuration.
Cell RunCell(Session* session, const std::string& sql,
             const std::string& strategy, int executors,
             const BenchConfig& config);

/// Prints an Appendix-D style pair of tables (absolute + relative-%).
/// `rows` is indexed [algorithm][sweep point]; `reference_row` indexes the
/// row percentages are computed against (-1: no relative table).
void PrintTables(const std::string& title,
                 const std::vector<std::string>& algorithm_names,
                 const std::vector<std::string>& sweep_labels,
                 const std::vector<std::vector<Cell>>& rows,
                 int reference_row, const char* value = "time");

/// Builds "SELECT <cols> FROM <table> SKYLINE OF [COMPLETE] d1 g1, ..." for
/// the first `dims` entries of `dimensions` ("col GOAL" strings).
std::string SkylineSql(const std::string& table,
                       const std::vector<std::string>& dimensions, size_t dims,
                       bool complete);

/// Builds the Listing-4 plain-SQL rewriting for the same query. (The
/// harness runs the reference via the optimizer rewrite — strategy
/// "reference" — which produces exactly this plan; this helper exists for
/// printing and cross-checking.)
std::string ReferenceSql(const std::string& table,
                         const std::vector<std::string>& dimensions,
                         size_t dims);

/// The six Airbnb skyline dimensions of paper Table 1, in order.
const std::vector<std::string>& AirbnbDimensions();
/// The six store_sales skyline dimensions of paper Table 2, in order.
const std::vector<std::string>& StoreSalesDimensions();

}  // namespace bench
}  // namespace sparkline
