// Reproduces paper Figures 8, 9 and 10 (Appendix C): peak memory
// consumption vs. executors (Airbnb and store_sales) and vs. input size
// (store_sales at 3/5/10 executors), 6 skyline dimensions.
//
// Paper shapes to look for:
//  * memory grows with the executor count (every executor loads its
//    execution environment) and with the number of tuples;
//  * the four algorithms consume comparable memory; the specialized
//    algorithms' speedup is not bought with memory.
#include <cstdio>

#include "bench_common.h"
#include "common/string_util.h"

using namespace sparkline;        // NOLINT
using namespace sparkline::bench; // NOLINT

namespace {

const int kExecutorSteps[] = {1, 2, 3, 5, 10};

void ExecutorsVsMemory(Session* session, const std::string& table,
                       bool complete_data,
                       const std::vector<std::string>& dimensions,
                       size_t num_tuples, const BenchConfig& config,
                       const char* figure) {
  const auto& algorithms =
      complete_data ? CompleteAlgorithms() : IncompleteAlgorithms();
  std::vector<std::string> labels;
  for (int e : kExecutorSteps) labels.push_back(std::to_string(e));
  std::vector<std::string> names;
  std::vector<std::vector<Cell>> rows;
  for (const auto& algo : algorithms) {
    names.push_back(algo.display_name);
    std::vector<Cell> row;
    for (int executors : kExecutorSteps) {
      row.push_back(RunCell(session,
                            SkylineSql(table, dimensions, 6, complete_data),
                            algo.strategy, executors, config));
    }
    rows.push_back(std::move(row));
  }
  PrintTables(StrCat(figure, " | executors vs peak memory | dataset: ", table,
                     " (", num_tuples, " tuples) | dims: 6"),
              names, labels, rows, static_cast<int>(names.size()) - 1,
              "memory");
}

// Hook for the round-based parallel incomplete global stage: the incomplete
// figures above run with the stage parallel (the default), so this table
// isolates its effect by re-running the incomplete algorithm with
// sparkline.skyline.incomplete.parallel off (the paper's single-task
// all-pairs) across the same executor sweep, reporting simulated time.
void IncompleteParallelAblation(Session* session, const std::string& table,
                                const std::vector<std::string>& dimensions,
                                size_t num_tuples, const BenchConfig& config,
                                const char* figure) {
  std::vector<std::string> labels;
  for (int e : kExecutorSteps) labels.push_back(std::to_string(e));
  const std::vector<std::string> names = {"parallel rounds (default)",
                                          "single-task all-pairs"};
  std::vector<std::vector<Cell>> rows(names.size());
  for (int executors : kExecutorSteps) {
    SL_CHECK_OK(
        session->SetConf("sparkline.skyline.incomplete.parallel", "true"));
    rows[0].push_back(RunCell(session, SkylineSql(table, dimensions, 6, false),
                              "incomplete", executors, config));
    SL_CHECK_OK(
        session->SetConf("sparkline.skyline.incomplete.parallel", "false"));
    rows[1].push_back(RunCell(session, SkylineSql(table, dimensions, 6, false),
                              "incomplete", executors, config));
  }
  SL_CHECK_OK(
      session->SetConf("sparkline.skyline.incomplete.parallel", "true"));
  PrintTables(StrCat(figure, " hook | incomplete global stage: parallel "
                             "rounds vs single task | dataset: ",
                     table, " (", num_tuples, " tuples) | dims: 6"),
              names, labels, rows, 1, "time");
}

// DominanceMatrix storage is charged to the query's MemoryTracker (PR 4):
// with the same plan and row accounting, the default columnar-exchange run
// must report a strictly higher peak than the row-kernel run — the delta is
// the matrix (keys + bitmaps + dictionaries) becoming visible to memory
// accounting. On the exchange path the batch reservations stay alive across
// stages, so they overlap the query's peak moment (input + local output
// resident) no matter where it falls; row-byte accounting is identical in
// both runs, so the comparison is deterministic.
void AssertMatrixMemoryVisible(Session* session, const std::string& table,
                               const std::vector<std::string>& dimensions) {
  SL_CHECK_OK(session->SetConf("sparkline.skyline.exchange.columnar", "true"));
  SL_CHECK_OK(session->SetConf("sparkline.executors", "3"));
  const std::string sql = SkylineSql(table, dimensions, 6, true);
  auto peak_with_columnar = [&](const char* columnar) {
    SL_CHECK_OK(session->SetConf("sparkline.skyline.columnar", columnar));
    auto df = session->Sql(sql);
    SL_CHECK(df.ok());
    auto r = df->Collect();
    SL_CHECK(r.ok()) << r.status().ToString();
    return r->metrics.peak_memory_bytes;
  };
  const int64_t peak_columnar = peak_with_columnar("true");
  const int64_t peak_row = peak_with_columnar("false");
  SL_CHECK(peak_columnar > peak_row)
      << "DominanceMatrix bytes are invisible to the MemoryTracker: columnar "
      << peak_columnar << " vs row " << peak_row;
  std::printf("matrix-memory check | %s | columnar peak %lld B > row peak "
              "%lld B (delta %lld B = tracked matrix storage)\n",
              table.c_str(), static_cast<long long>(peak_columnar),
              static_cast<long long>(peak_row),
              static_cast<long long>(peak_columnar - peak_row));
  SL_CHECK_OK(session->SetConf("sparkline.skyline.columnar", "true"));
  SL_CHECK_OK(session->SetConf("sparkline.skyline.exchange.columnar", "true"));
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config = ParseArgs(argc, argv);
  Session session;

  // Figure 8: Airbnb.
  datagen::AirbnbOptions aopts;
  aopts.num_rows = static_cast<size_t>(9000 * config.scale);
  aopts.incomplete = true;
  aopts.table_name = "airbnb_incomplete";
  auto incomplete = datagen::GenerateAirbnb(aopts);
  auto complete = datagen::CompleteSubset(*incomplete, "airbnb");
  SL_CHECK_OK(session.catalog()->RegisterTable(incomplete));
  SL_CHECK_OK(session.catalog()->RegisterTable(complete));
  AssertMatrixMemoryVisible(&session, "airbnb", AirbnbDimensions());
  ExecutorsVsMemory(&session, "airbnb", true, AirbnbDimensions(),
                    complete->num_rows(), config, "Fig 8");
  ExecutorsVsMemory(&session, "airbnb_incomplete", false, AirbnbDimensions(),
                    incomplete->num_rows(), config, "Fig 8");
  IncompleteParallelAblation(&session, "airbnb_incomplete",
                             AirbnbDimensions(), incomplete->num_rows(),
                             config, "Fig 8");

  // Figure 9: store_sales at the 5M scale.
  datagen::StoreSalesOptions sopts;
  sopts.num_rows = static_cast<size_t>(10000 * config.scale);
  sopts.table_name = "store_sales_5";
  SL_CHECK_OK(
      session.catalog()->RegisterTable(datagen::GenerateStoreSales(sopts)));
  sopts.incomplete = true;
  sopts.table_name = "store_sales_5_incomplete";
  SL_CHECK_OK(
      session.catalog()->RegisterTable(datagen::GenerateStoreSales(sopts)));
  ExecutorsVsMemory(&session, "store_sales_5", true, StoreSalesDimensions(),
                    sopts.num_rows, config, "Fig 9");
  ExecutorsVsMemory(&session, "store_sales_5_incomplete", false,
                    StoreSalesDimensions(), sopts.num_rows, config, "Fig 9");
  IncompleteParallelAblation(&session, "store_sales_5_incomplete",
                             StoreSalesDimensions(), sopts.num_rows, config,
                             "Fig 9");

  // Figure 10: tuples vs memory at 3 / 5 / 10 executors.
  const std::vector<size_t> sizes = {
      static_cast<size_t>(2000 * config.scale),
      static_cast<size_t>(4000 * config.scale),
      static_cast<size_t>(10000 * config.scale),
      static_cast<size_t>(20000 * config.scale)};
  for (size_t s = 0; s < sizes.size(); ++s) {
    datagen::StoreSalesOptions o;
    o.num_rows = sizes[s];
    o.table_name = StrCat("store_sales_n", s);
    SL_CHECK_OK(session.catalog()->RegisterTable(datagen::GenerateStoreSales(o)));
  }
  for (int executors : {3, 5, 10}) {
    std::vector<std::string> names;
    std::vector<std::string> labels;
    for (size_t n : sizes) labels.push_back(std::to_string(n));
    std::vector<std::vector<Cell>> rows(CompleteAlgorithms().size());
    for (const auto& algo : CompleteAlgorithms()) {
      names.push_back(algo.display_name);
    }
    for (size_t s = 0; s < sizes.size(); ++s) {
      for (size_t a = 0; a < CompleteAlgorithms().size(); ++a) {
        rows[a].push_back(RunCell(
            &session,
            SkylineSql(StrCat("store_sales_n", s), StoreSalesDimensions(), 6,
                       true),
            CompleteAlgorithms()[a].strategy, executors, config));
      }
    }
    PrintTables(StrCat("Fig 10 | tuples vs peak memory | store_sales | "
                       "dims: 6 | executors: ",
                       executors),
                names, labels, rows, static_cast<int>(names.size()) - 1,
                "memory");
  }
  return 0;
}
