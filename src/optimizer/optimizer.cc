#include "optimizer/optimizer.h"

#include "common/logging.h"

namespace sparkline {

Optimizer::Optimizer(OptimizerOptions options) : options_(options) {
  using namespace rules;  // NOLINT(build/namespaces)

  RuleBatch finish{"Finish Analysis", 1, {}};
  finish.rules.push_back({"EliminateSubqueryAliases", EliminateSubqueryAliases});
  finish.rules.push_back(
      {"ReplaceDistinctWithAggregate", ReplaceDistinctWithAggregate});
  batches_.push_back(std::move(finish));

  if (options_.rewrite_skyline_to_reference) {
    RuleBatch reference{"Skyline Reference Rewrite", 1, {}};
    reference.rules.push_back({"SkylineToReference", SkylineToReference});
    batches_.push_back(std::move(reference));
  }

  RuleBatch skyline{"Skyline Optimizations", options_.max_iterations, {}};
  if (options_.single_dim_skyline_rewrite) {
    skyline.rules.push_back(
        {"SingleDimSkylineRewrite", SingleDimSkylineRewrite});
  }
  if (options_.skyline_join_pushdown) {
    skyline.rules.push_back({"PushSkylineThroughJoin", PushSkylineThroughJoin});
  }
  if (!skyline.rules.empty()) batches_.push_back(std::move(skyline));

  RuleBatch operators{"Operator Optimizations", options_.max_iterations, {}};
  if (options_.constant_folding) {
    operators.rules.push_back({"ConstantFolding", ConstantFolding});
    operators.rules.push_back({"SimplifyBooleans", SimplifyBooleans});
  }
  operators.rules.push_back({"CombineFilters", CombineFilters});
  if (options_.filter_pushdown) {
    operators.rules.push_back(
        {"PushFilterThroughProject", PushFilterThroughProject});
    operators.rules.push_back({"PushFilterThroughJoin", PushFilterThroughJoin});
  }
  operators.rules.push_back({"CollapseProjects", CollapseProjects});
  operators.rules.push_back({"EliminateNoopProjects", EliminateNoopProjects});
  if (options_.column_pruning) {
    operators.rules.push_back({"PruneScanColumns", PruneScanColumns});
  }
  batches_.push_back(std::move(operators));
}

Result<LogicalPlanPtr> Optimizer::Optimize(const LogicalPlanPtr& plan) const {
  LogicalPlanPtr current = plan;
  for (const auto& batch : batches_) {
    for (int iter = 0; iter < batch.max_iterations; ++iter) {
      const std::string before = current->TreeString();
      for (const auto& rule : batch.rules) {
        SL_ASSIGN_OR_RETURN(current, rule.apply(current));
      }
      if (current->TreeString() == before) break;
      if (iter == batch.max_iterations - 1 && batch.max_iterations > 1) {
        SL_LOG_WARN << "optimizer batch '" << batch.name
                    << "' hit max iterations without reaching a fixed point";
      }
    }
  }
  return current;
}

}  // namespace sparkline
