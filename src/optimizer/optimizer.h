// A Catalyst-style rule-based optimizer (paper section 5.4).
//
// Rules run in named batches; each batch iterates to a fixed point (bounded
// by max_iterations) before the next batch starts, exactly like Spark's
// RuleExecutor. Skyline-specific rules are individually toggleable so the
// ablation benchmarks can quantify them.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "plan/logical_plan.h"

namespace sparkline {

struct OptimizerOptions {
  bool constant_folding = true;
  bool filter_pushdown = true;
  bool column_pruning = true;
  /// Section 5.4: a 1-dimensional skyline is a scalar MIN/MAX lookup.
  bool single_dim_skyline_rewrite = true;
  /// Section 5.4: move the skyline below non-reductive joins.
  bool skyline_join_pushdown = true;
  /// Replace every SkylineNode by the plain-SQL NOT EXISTS anti-join
  /// (Listing 4). Used to run the "reference" algorithm of section 6.3.
  bool rewrite_skyline_to_reference = false;
  int max_iterations = 50;
};

/// \brief One rewrite rule. Must be a no-op (return the input pointer) when
/// it does not apply.
struct OptimizerRule {
  std::string name;
  std::function<Result<LogicalPlanPtr>(const LogicalPlanPtr&)> apply;
};

/// \brief A batch of rules iterated to a fixed point.
struct RuleBatch {
  std::string name;
  int max_iterations;
  std::vector<OptimizerRule> rules;
};

class Optimizer {
 public:
  explicit Optimizer(OptimizerOptions options = {});

  /// Optimizes a resolved logical plan.
  Result<LogicalPlanPtr> Optimize(const LogicalPlanPtr& plan) const;

  const std::vector<RuleBatch>& batches() const { return batches_; }

 private:
  OptimizerOptions options_;
  std::vector<RuleBatch> batches_;
};

// Individual rules, exposed for unit tests and the ablation bench.
namespace rules {

Result<LogicalPlanPtr> EliminateSubqueryAliases(const LogicalPlanPtr& plan);
Result<LogicalPlanPtr> ReplaceDistinctWithAggregate(const LogicalPlanPtr& plan);
Result<LogicalPlanPtr> ConstantFolding(const LogicalPlanPtr& plan);
Result<LogicalPlanPtr> SimplifyBooleans(const LogicalPlanPtr& plan);
Result<LogicalPlanPtr> CombineFilters(const LogicalPlanPtr& plan);
Result<LogicalPlanPtr> PushFilterThroughProject(const LogicalPlanPtr& plan);
Result<LogicalPlanPtr> PushFilterThroughJoin(const LogicalPlanPtr& plan);
Result<LogicalPlanPtr> CollapseProjects(const LogicalPlanPtr& plan);
Result<LogicalPlanPtr> EliminateNoopProjects(const LogicalPlanPtr& plan);
Result<LogicalPlanPtr> PruneScanColumns(const LogicalPlanPtr& plan);

/// SkylineNode with one MIN/MAX dimension on provably complete input ->
/// Filter(dim = (SELECT min/max(dim) FROM child)) (section 5.4).
Result<LogicalPlanPtr> SingleDimSkylineRewrite(const LogicalPlanPtr& plan);

/// SkylineNode over a non-reductive join whose dimensions come from the
/// left side -> join over the skyline of the left side (section 5.4,
/// non-reductiveness via LEFT OUTER or declared FK metadata).
Result<LogicalPlanPtr> PushSkylineThroughJoin(const LogicalPlanPtr& plan);

/// SkylineNode -> left-anti self-join with the dominance predicate
/// (Listing 4); mechanizes the paper's "reference" algorithm.
Result<LogicalPlanPtr> SkylineToReference(const LogicalPlanPtr& plan);

}  // namespace rules

}  // namespace sparkline
