// Skyline-specific optimizer rules (paper section 5.4 and Listing 4).
#include <map>
#include <set>

#include "common/string_util.h"
#include "optimizer/optimizer.h"
#include "plan/plan_clone.h"

namespace sparkline {
namespace rules {

namespace {

Result<LogicalPlanPtr> TransformPlan(
    const LogicalPlanPtr& plan,
    const std::function<Result<LogicalPlanPtr>(const LogicalPlanPtr&)>& fn) {
  Status error = Status::OK();
  LogicalPlanPtr out =
      LogicalPlan::Transform(plan, [&](const LogicalPlanPtr& node) {
        if (!error.ok()) return node;
        auto result = fn(node);
        if (!result.ok()) {
          error = result.status();
          return node;
        }
        return *result;
      });
  SL_RETURN_NOT_OK(error);
  return out;
}

const SkylineDimension& AsDimension(const ExprPtr& e) {
  return static_cast<const SkylineDimension&>(*e);
}

/// True when Listing 8 would pick the complete algorithm: the COMPLETE
/// keyword is set, or no skyline dimension is nullable.
bool InputProvablyComplete(const SkylineNode& sky) {
  if (sky.complete()) return true;
  for (const auto& d : sky.dimensions()) {
    if (AsDimension(d).child()->nullable()) return false;
  }
  return true;
}

/// Maps attribute id -> (table name, column name) for every Scan in `plan`.
void CollectScanOrigins(
    const LogicalPlanPtr& plan,
    std::map<ExprId, std::pair<std::string, std::string>>* origins) {
  LogicalPlan::Foreach(plan, [&](const LogicalPlanPtr& node) {
    if (node->kind() != PlanKind::kScan) return;
    const auto& scan = static_cast<const Scan&>(*node);
    for (const auto& a : scan.output()) {
      (*origins)[a.id] = {scan.table()->name(), a.name};
    }
  });
}

}  // namespace

Result<LogicalPlanPtr> SingleDimSkylineRewrite(const LogicalPlanPtr& plan) {
  return TransformPlan(plan, [](const LogicalPlanPtr& node)
                                 -> Result<LogicalPlanPtr> {
    if (node->kind() != PlanKind::kSkyline) return node;
    const auto& sky = static_cast<const SkylineNode&>(*node);
    if (sky.distinct() || sky.dimensions().size() != 1) return node;
    const auto& dim = AsDimension(sky.dimensions()[0]);
    if (dim.goal() == SkylineGoal::kDiff) return node;
    // With nulls in the dimension, null tuples are incomparable to all
    // others and belong to the skyline; the scalar rewrite would drop them.
    if (!InputProvablyComplete(sky)) return node;

    std::map<ExprId, ExprId> ids;
    SL_ASSIGN_OR_RETURN(LogicalPlanPtr clone,
                        CloneWithFreshIds(sky.child(), &ids));
    ExprPtr cloned_dim = RemapAttributeIds(dim.child(), ids);
    const AggFn fn =
        dim.goal() == SkylineGoal::kMin ? AggFn::kMin : AggFn::kMax;
    LogicalPlanPtr agg = Aggregate::Make(
        {}, {Alias::Make(AggregateExpr::Make(fn, cloned_dim), "optimum")},
        std::move(clone));
    ExprPtr scalar = ScalarSubquery::Make(std::move(agg), dim.child()->type(),
                                          /*nullable=*/true,
                                          /*resolved=*/true);
    return Filter::Make(
        BinaryExpr::Make(BinaryOp::kEq, dim.child(), std::move(scalar)),
        sky.child());
  });
}

namespace {

/// Substitutes project-list aliases into `e` (so a skyline dimension over a
/// projected column maps back onto the join output).
ExprPtr SubstituteProject(const ExprPtr& e, const std::vector<ExprPtr>& list) {
  std::map<ExprId, ExprPtr> map;
  for (const auto& item : list) {
    if (item->kind() == ExprKind::kAlias) {
      const auto& alias = static_cast<const Alias&>(*item);
      map[alias.id()] = alias.child();
    }
  }
  if (map.empty()) return e;
  return Expression::Transform(e, [&](const ExprPtr& n) -> ExprPtr {
    if (n->kind() == ExprKind::kAttributeRef) {
      auto it = map.find(static_cast<const AttributeRef&>(*n).attr().id);
      if (it != map.end()) return it->second;
    }
    return n;
  });
}

}  // namespace

Result<LogicalPlanPtr> PushSkylineThroughJoin(const LogicalPlanPtr& plan) {
  return TransformPlan(plan, [](const LogicalPlanPtr& node)
                                 -> Result<LogicalPlanPtr> {
    if (node->kind() != PlanKind::kSkyline) return node;
    const auto& sky = static_cast<const SkylineNode&>(*node);
    // DISTINCT skylines deduplicate across join multiplicities; pushing
    // below the join would re-expand duplicates.
    if (sky.distinct()) return node;

    // The select-list projection usually sits between the skyline and the
    // join; see through it by substituting its aliases into the dimensions.
    std::shared_ptr<const Project> through_project;
    LogicalPlanPtr join_plan = sky.child();
    std::vector<ExprPtr> dims = sky.dimensions();
    if (join_plan->kind() == PlanKind::kProject &&
        join_plan->children()[0]->kind() == PlanKind::kJoin) {
      through_project = std::static_pointer_cast<const Project>(join_plan);
      join_plan = through_project->child();
      std::set<ExprId> join_ids;
      for (const auto& a : join_plan->output()) join_ids.insert(a.id);
      for (auto& d : dims) {
        d = SubstituteProject(d, through_project->list());
        for (const auto& a : CollectAttributes(d)) {
          if (join_ids.count(a.id) == 0) return node;  // not expressible
        }
      }
    }
    if (join_plan->kind() != PlanKind::kJoin) return node;
    const auto& join = static_cast<const Join&>(*join_plan);
    if (join.join_type() != JoinType::kInner &&
        join.join_type() != JoinType::kLeftOuter) {
      return node;
    }

    // All skyline dimensions must come from the left join side.
    std::set<ExprId> left_ids;
    for (const auto& a : join.left()->output()) left_ids.insert(a.id);
    for (const auto& d : dims) {
      for (const auto& a : CollectAttributes(d)) {
        if (left_ids.count(a.id) == 0) return node;
      }
    }

    bool non_reductive = join.join_type() == JoinType::kLeftOuter;
    if (!non_reductive) {
      // Inner join: prove non-reductiveness from declared FK metadata
      // (Carey & Kossmann via paper section 5.4). The join must be an
      // equi-join matching a declared, non-null foreign key of the left
      // side's origin table referencing the right side's scanned table.
      if (join.right()->kind() != PlanKind::kScan || join.condition() == nullptr) {
        return node;
      }
      const auto& right_scan = static_cast<const Scan&>(*join.right());
      std::map<ExprId, std::pair<std::string, std::string>> origins;
      CollectScanOrigins(join.left(), &origins);
      for (const auto& a : right_scan.output()) {
        origins[a.id] = {right_scan.table()->name(), a.name};
      }

      // Extract aligned (left column, right column) pairs.
      std::vector<std::pair<std::string, std::string>> pairs;  // (lcol, rcol)
      std::string left_table;
      for (const auto& c : SplitConjuncts(join.condition())) {
        if (c->kind() != ExprKind::kBinary) return node;
        const auto& eq = static_cast<const BinaryExpr&>(*c);
        if (eq.op() != BinaryOp::kEq) return node;
        if (eq.left()->kind() != ExprKind::kAttributeRef ||
            eq.right()->kind() != ExprKind::kAttributeRef) {
          return node;
        }
        ExprId lid = static_cast<const AttributeRef&>(*eq.left()).attr().id;
        ExprId rid = static_cast<const AttributeRef&>(*eq.right()).attr().id;
        if (left_ids.count(rid) > 0) std::swap(lid, rid);
        if (left_ids.count(lid) == 0 || origins.count(lid) == 0 ||
            origins.count(rid) == 0) {
          return node;
        }
        if (left_table.empty()) {
          left_table = origins[lid].first;
        } else if (left_table != origins[lid].first) {
          return node;
        }
        pairs.emplace_back(origins[lid].second, origins[rid].second);
      }
      if (pairs.empty()) return node;

      // Find a matching foreign key declaration.
      const auto& fks = [&]() -> const std::vector<TableConstraints::ForeignKey>* {
        LogicalPlanPtr found = nullptr;
        const std::vector<TableConstraints::ForeignKey>* result = nullptr;
        LogicalPlan::Foreach(join.left(), [&](const LogicalPlanPtr& n) {
          if (n->kind() != PlanKind::kScan || result != nullptr) return;
          const auto& scan = static_cast<const Scan&>(*n);
          if (EqualsIgnoreCase(scan.table()->name(), left_table)) {
            result = &scan.table()->constraints().foreign_keys;
            found = n;
          }
        });
        return result;
      }();
      if (fks == nullptr) return node;
      for (const auto& fk : *fks) {
        if (!fk.referencing_not_null) continue;
        if (!EqualsIgnoreCase(fk.ref_table, right_scan.table()->name())) {
          continue;
        }
        if (fk.columns.size() != pairs.size()) continue;
        bool all = true;
        for (const auto& [lcol, rcol] : pairs) {
          bool hit = false;
          for (size_t i = 0; i < fk.columns.size(); ++i) {
            if (EqualsIgnoreCase(fk.columns[i], lcol) &&
                EqualsIgnoreCase(fk.ref_columns[i], rcol)) {
              hit = true;
              break;
            }
          }
          all &= hit;
        }
        if (all) {
          non_reductive = true;
          break;
        }
      }
    }
    if (!non_reductive) return node;

    LogicalPlanPtr pushed = SkylineNode::Make(sky.distinct(), sky.complete(),
                                              std::move(dims), join.left());
    LogicalPlanPtr new_join = Join::Make(
        std::move(pushed), join.right(), join.join_type(), join.condition(),
        {});
    if (through_project != nullptr) {
      return Project::Make(through_project->list(), std::move(new_join));
    }
    return new_join;
  });
}

Result<LogicalPlanPtr> SkylineToReference(const LogicalPlanPtr& plan) {
  return TransformPlan(plan, [](const LogicalPlanPtr& node)
                                 -> Result<LogicalPlanPtr> {
    if (node->kind() != PlanKind::kSkyline) return node;
    const auto& sky = static_cast<const SkylineNode&>(*node);
    if (sky.distinct()) {
      // Listing 4 cannot express SKYLINE OF DISTINCT; keep the native node.
      return node;
    }

    std::map<ExprId, ExprId> ids;
    SL_ASSIGN_OR_RETURN(LogicalPlanPtr inner,
                        CloneWithFreshIds(sky.child(), &ids));

    // Dominance predicate of Listing 4: the inner tuple is at least as good
    // everywhere (equal on DIFF dims) and strictly better somewhere.
    std::vector<ExprPtr> non_strict;
    std::vector<ExprPtr> strict;
    for (const auto& d : sky.dimensions()) {
      const auto& dim = static_cast<const SkylineDimension&>(*d);
      ExprPtr outer_e = dim.child();
      ExprPtr inner_e = RemapAttributeIds(dim.child(), ids);
      switch (dim.goal()) {
        case SkylineGoal::kMin:
          non_strict.push_back(
              BinaryExpr::Make(BinaryOp::kLe, inner_e, outer_e));
          strict.push_back(BinaryExpr::Make(BinaryOp::kLt, inner_e, outer_e));
          break;
        case SkylineGoal::kMax:
          non_strict.push_back(
              BinaryExpr::Make(BinaryOp::kGe, inner_e, outer_e));
          strict.push_back(BinaryExpr::Make(BinaryOp::kGt, inner_e, outer_e));
          break;
        case SkylineGoal::kDiff:
          non_strict.push_back(
              BinaryExpr::Make(BinaryOp::kEq, inner_e, outer_e));
          break;
      }
    }
    if (strict.empty()) {
      // Only DIFF dimensions: nothing can dominate anything.
      return sky.child();
    }
    ExprPtr any_strict = nullptr;
    for (const auto& s : strict) {
      any_strict = any_strict == nullptr
                       ? s
                       : BinaryExpr::Make(BinaryOp::kOr, any_strict, s);
    }
    non_strict.push_back(any_strict);
    return Join::Make(sky.child(), std::move(inner), JoinType::kLeftAnti,
                      CombineConjuncts(non_strict), {});
  });
}

}  // namespace rules
}  // namespace sparkline
