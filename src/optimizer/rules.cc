// Generic (non-skyline) optimizer rules. Spark applies the same families of
// rewrites; skyline queries "benefit from existing optimizations" (paper
// section 5.4) — these are those optimizations.
#include <map>
#include <set>

#include "expr/evaluator.h"
#include "optimizer/optimizer.h"

namespace sparkline {
namespace rules {

namespace {

/// Plan-level transform with error propagation.
Result<LogicalPlanPtr> TransformPlan(
    const LogicalPlanPtr& plan,
    const std::function<Result<LogicalPlanPtr>(const LogicalPlanPtr&)>& fn) {
  Status error = Status::OK();
  LogicalPlanPtr out =
      LogicalPlan::Transform(plan, [&](const LogicalPlanPtr& node) {
        if (!error.ok()) return node;
        auto result = fn(node);
        if (!result.ok()) {
          error = result.status();
          return node;
        }
        return *result;
      });
  SL_RETURN_NOT_OK(error);
  return out;
}

std::set<ExprId> OutputIds(const LogicalPlanPtr& plan) {
  std::set<ExprId> ids;
  for (const auto& a : plan->output()) ids.insert(a.id);
  return ids;
}

bool RefsSubsetOf(const ExprPtr& e, const std::set<ExprId>& ids) {
  for (const auto& a : CollectAttributes(e)) {
    if (ids.count(a.id) == 0) return false;
  }
  return true;
}

/// Substitution map from a projection list: alias id -> computed expression,
/// passthrough ref id -> ref.
std::map<ExprId, ExprPtr> ProjectSubstitutions(
    const std::vector<ExprPtr>& list) {
  std::map<ExprId, ExprPtr> map;
  for (const auto& item : list) {
    if (item->kind() == ExprKind::kAlias) {
      const auto& alias = static_cast<const Alias&>(*item);
      map[alias.id()] = alias.child();
    } else if (item->kind() == ExprKind::kAttributeRef) {
      const auto& ref = static_cast<const AttributeRef&>(*item);
      map[ref.attr().id] = item;
    }
  }
  return map;
}

ExprPtr Substitute(const ExprPtr& e, const std::map<ExprId, ExprPtr>& map) {
  return Expression::Transform(e, [&](const ExprPtr& n) -> ExprPtr {
    if (n->kind() == ExprKind::kAttributeRef) {
      auto it = map.find(static_cast<const AttributeRef&>(*n).attr().id);
      if (it != map.end()) return it->second;
    }
    return n;
  });
}

bool IsTrueLiteral(const ExprPtr& e) {
  if (e->kind() != ExprKind::kLiteral) return false;
  const Value& v = static_cast<const Literal&>(*e).value();
  return !v.is_null() && v.type() == DataType::Bool() && v.bool_value();
}

bool IsFalseOrNullLiteral(const ExprPtr& e) {
  if (e->kind() != ExprKind::kLiteral) return false;
  const Value& v = static_cast<const Literal&>(*e).value();
  return v.is_null() || (v.type() == DataType::Bool() && !v.bool_value());
}

}  // namespace

Result<LogicalPlanPtr> EliminateSubqueryAliases(const LogicalPlanPtr& plan) {
  return TransformPlan(plan, [](const LogicalPlanPtr& node)
                                 -> Result<LogicalPlanPtr> {
    if (node->kind() == PlanKind::kSubqueryAlias) {
      return static_cast<const SubqueryAlias&>(*node).child();
    }
    return node;
  });
}

Result<LogicalPlanPtr> ReplaceDistinctWithAggregate(
    const LogicalPlanPtr& plan) {
  return TransformPlan(plan, [](const LogicalPlanPtr& node)
                                 -> Result<LogicalPlanPtr> {
    if (node->kind() != PlanKind::kDistinct) return node;
    const auto& distinct = static_cast<const Distinct&>(*node);
    std::vector<ExprPtr> refs;
    for (const auto& a : distinct.child()->output()) refs.push_back(a.ToRef());
    return Aggregate::Make(refs, refs, distinct.child());
  });
}

Result<LogicalPlanPtr> ConstantFolding(const LogicalPlanPtr& plan) {
  Status error = Status::OK();
  LogicalPlanPtr out = LogicalPlan::TransformExpressions(
      plan, [&](const ExprPtr& e) -> ExprPtr {
        if (!error.ok()) return e;
        switch (e->kind()) {
          case ExprKind::kLiteral:
          case ExprKind::kAlias:              // keep names
          case ExprKind::kSkylineDimension:   // keep the goal wrapper
          case ExprKind::kAttributeRef:
          case ExprKind::kBoundReference:
            return e;
          default:
            break;
        }
        if (!IsConstantExpr(e)) return e;
        auto v = EvalConstant(e);
        if (!v.ok()) {
          error = v.status();
          return e;
        }
        return Literal::Make(*v);
      });
  SL_RETURN_NOT_OK(error);
  return out;
}

Result<LogicalPlanPtr> SimplifyBooleans(const LogicalPlanPtr& plan) {
  return LogicalPlan::TransformExpressions(
      plan, [](const ExprPtr& e) -> ExprPtr {
        if (e->kind() != ExprKind::kBinary) return e;
        const auto& bin = static_cast<const BinaryExpr&>(*e);
        if (bin.op() == BinaryOp::kAnd) {
          if (IsTrueLiteral(bin.left())) return bin.right();
          if (IsTrueLiteral(bin.right())) return bin.left();
          if (IsFalseOrNullLiteral(bin.left()) &&
              !bin.left()->nullable()) {
            return bin.left();
          }
        } else if (bin.op() == BinaryOp::kOr) {
          if (IsTrueLiteral(bin.left())) return bin.left();
          if (IsTrueLiteral(bin.right())) return bin.right();
        }
        return e;
      });
}

Result<LogicalPlanPtr> CombineFilters(const LogicalPlanPtr& plan) {
  return TransformPlan(plan, [](const LogicalPlanPtr& node)
                                 -> Result<LogicalPlanPtr> {
    if (node->kind() != PlanKind::kFilter) return node;
    const auto& outer = static_cast<const Filter&>(*node);
    if (outer.child()->kind() != PlanKind::kFilter) return node;
    const auto& inner = static_cast<const Filter&>(*outer.child());
    return Filter::Make(BinaryExpr::Make(BinaryOp::kAnd, inner.condition(),
                                         outer.condition()),
                        inner.child());
  });
}

Result<LogicalPlanPtr> PushFilterThroughProject(const LogicalPlanPtr& plan) {
  return TransformPlan(plan, [](const LogicalPlanPtr& node)
                                 -> Result<LogicalPlanPtr> {
    if (node->kind() != PlanKind::kFilter) return node;
    const auto& filter = static_cast<const Filter&>(*node);
    if (filter.child()->kind() != PlanKind::kProject) return node;
    const auto& project = static_cast<const Project&>(*filter.child());
    const auto subs = ProjectSubstitutions(project.list());
    ExprPtr pushed = Substitute(filter.condition(), subs);
    if (!RefsSubsetOf(pushed, OutputIds(project.child()))) return node;
    if (pushed->ContainsAggregate()) return node;
    return Project::Make(project.list(),
                         Filter::Make(pushed, project.child()));
  });
}

Result<LogicalPlanPtr> PushFilterThroughJoin(const LogicalPlanPtr& plan) {
  return TransformPlan(plan, [](const LogicalPlanPtr& node)
                                 -> Result<LogicalPlanPtr> {
    if (node->kind() != PlanKind::kFilter) return node;
    const auto& filter = static_cast<const Filter&>(*node);
    if (filter.child()->kind() != PlanKind::kJoin) return node;
    const auto& join = static_cast<const Join&>(*filter.child());

    const auto left_ids = OutputIds(join.left());
    const auto right_ids = OutputIds(join.right());
    std::vector<ExprPtr> to_left, to_right, keep;
    for (const auto& c : SplitConjuncts(filter.condition())) {
      if (RefsSubsetOf(c, left_ids)) {
        to_left.push_back(c);
      } else if (RefsSubsetOf(c, right_ids) &&
                 (join.join_type() == JoinType::kInner ||
                  join.join_type() == JoinType::kCross)) {
        to_right.push_back(c);
      } else {
        keep.push_back(c);
      }
    }
    if (to_left.empty() && to_right.empty()) return node;

    LogicalPlanPtr left = join.left();
    if (!to_left.empty()) {
      left = Filter::Make(CombineConjuncts(to_left), left);
    }
    LogicalPlanPtr right = join.right();
    if (!to_right.empty()) {
      right = Filter::Make(CombineConjuncts(to_right), right);
    }
    LogicalPlanPtr new_join = Join::Make(left, right, join.join_type(),
                                         join.condition(), {});
    if (keep.empty()) return new_join;
    return Filter::Make(CombineConjuncts(keep), new_join);
  });
}

Result<LogicalPlanPtr> CollapseProjects(const LogicalPlanPtr& plan) {
  return TransformPlan(plan, [](const LogicalPlanPtr& node)
                                 -> Result<LogicalPlanPtr> {
    if (node->kind() != PlanKind::kProject) return node;
    const auto& outer = static_cast<const Project&>(*node);
    if (outer.child()->kind() != PlanKind::kProject) return node;
    const auto& inner = static_cast<const Project&>(*outer.child());

    // Top-level references to inner items keep the inner item (preserving
    // its name and id); nested references substitute the computed child.
    std::map<ExprId, ExprPtr> top_level;
    for (const auto& item : inner.list()) {
      if (item->kind() == ExprKind::kAlias) {
        top_level[static_cast<const Alias&>(*item).id()] = item;
      } else if (item->kind() == ExprKind::kAttributeRef) {
        top_level[static_cast<const AttributeRef&>(*item).attr().id] = item;
      } else {
        return node;  // unresolved projection; leave alone
      }
    }
    const auto nested = ProjectSubstitutions(inner.list());

    std::vector<ExprPtr> list;
    list.reserve(outer.list().size());
    for (const auto& item : outer.list()) {
      if (item->kind() == ExprKind::kAttributeRef) {
        auto it =
            top_level.find(static_cast<const AttributeRef&>(*item).attr().id);
        if (it == top_level.end()) return node;
        list.push_back(it->second);
        continue;
      }
      if (item->kind() == ExprKind::kAlias) {
        const auto& alias = static_cast<const Alias&>(*item);
        ExprPtr child = Substitute(alias.child(), nested);
        if (!RefsSubsetOf(child, OutputIds(inner.child()))) return node;
        list.push_back(ExprPtr(
            std::make_shared<Alias>(child, alias.name(), alias.id())));
        continue;
      }
      return node;
    }
    return Project::Make(std::move(list), inner.child());
  });
}

Result<LogicalPlanPtr> EliminateNoopProjects(const LogicalPlanPtr& plan) {
  return TransformPlan(plan, [](const LogicalPlanPtr& node)
                                 -> Result<LogicalPlanPtr> {
    if (node->kind() != PlanKind::kProject) return node;
    const auto& project = static_cast<const Project&>(*node);
    const auto child_out = project.child()->output();
    if (project.list().size() != child_out.size()) return node;
    for (size_t i = 0; i < project.list().size(); ++i) {
      const auto& item = project.list()[i];
      if (item->kind() != ExprKind::kAttributeRef) return node;
      if (static_cast<const AttributeRef&>(*item).attr().id !=
          child_out[i].id) {
        return node;
      }
    }
    return project.child();
  });
}

Result<LogicalPlanPtr> PruneScanColumns(const LogicalPlanPtr& plan) {
  return TransformPlan(plan, [](const LogicalPlanPtr& node)
                                 -> Result<LogicalPlanPtr> {
    // Only Project and Aggregate restrict the columns they consume.
    std::set<ExprId> needed;
    if (node->kind() == PlanKind::kProject ||
        node->kind() == PlanKind::kAggregate) {
      for (const auto& e : node->expressions()) {
        for (const auto& a : CollectAttributes(e)) needed.insert(a.id);
      }
    } else {
      return node;
    }
    auto children = node->children();
    bool changed = false;
    for (auto& c : children) {
      if (c->kind() != PlanKind::kScan) continue;
      const auto& scan = static_cast<const Scan&>(*c);
      std::vector<Attribute> attrs;
      std::vector<size_t> indices;
      for (size_t i = 0; i < scan.output().size(); ++i) {
        if (needed.count(scan.output()[i].id) > 0) {
          attrs.push_back(scan.output()[i]);
          indices.push_back(scan.column_indices()[i]);
        }
      }
      if (attrs.size() == scan.output().size() || attrs.empty()) continue;
      c = std::make_shared<Scan>(scan.table(), std::move(attrs),
                                 std::move(indices));
      changed = true;
    }
    if (!changed) return node;
    return node->WithNewChildren(std::move(children));
  });
}

}  // namespace rules
}  // namespace sparkline
