#include "types/value.h"

#include <charconv>
#include <cmath>

#include "common/string_util.h"

namespace sparkline {

std::string DataType::ToString() const {
  switch (id_) {
    case TypeId::kBool:
      return "BOOLEAN";
    case TypeId::kInt64:
      return "BIGINT";
    case TypeId::kDouble:
      return "DOUBLE";
    case TypeId::kString:
      return "VARCHAR";
  }
  return "?";
}

bool TypesComparable(DataType a, DataType b) {
  if (a == b) return true;
  return a.is_numeric() && b.is_numeric();
}

DataType CommonType(DataType a, DataType b) {
  if (a == b) return a;
  SL_DCHECK(a.is_numeric() && b.is_numeric());
  return DataType::Double();
}

Result<Value> Value::CastTo(DataType target) const {
  if (is_null_) return Value::Null(target);
  if (type() == target) return *this;
  switch (target.id()) {
    case TypeId::kDouble:
      if (type_ == TypeId::kInt64) return Value::Double(static_cast<double>(int_));
      if (type_ == TypeId::kBool) return Value::Double(bool_ ? 1.0 : 0.0);
      if (type_ == TypeId::kString) {
        try {
          return Value::Double(std::stod(string_));
        } catch (...) {
          return Status::Invalid(StrCat("cannot cast '", string_, "' to DOUBLE"));
        }
      }
      break;
    case TypeId::kInt64:
      if (type_ == TypeId::kDouble) {
        return Value::Int64(static_cast<int64_t>(std::llround(double_)));
      }
      if (type_ == TypeId::kBool) return Value::Int64(bool_ ? 1 : 0);
      if (type_ == TypeId::kString) {
        int64_t out = 0;
        auto [ptr, ec] =
            std::from_chars(string_.data(), string_.data() + string_.size(), out);
        if (ec == std::errc() && ptr == string_.data() + string_.size()) {
          return Value::Int64(out);
        }
        return Status::Invalid(StrCat("cannot cast '", string_, "' to BIGINT"));
      }
      break;
    case TypeId::kString:
      return Value::String(ToString());
    case TypeId::kBool:
      if (type_ == TypeId::kInt64) return Value::Bool(int_ != 0);
      break;
  }
  return Status::Invalid(StrCat("unsupported cast from ", type().ToString(),
                                " to ", target.ToString()));
}

std::string Value::ToString() const {
  if (is_null_) return "NULL";
  switch (type_) {
    case TypeId::kBool:
      return bool_ ? "true" : "false";
    case TypeId::kInt64:
      return std::to_string(int_);
    case TypeId::kDouble:
      return DoubleToString(double_);
    case TypeId::kString:
      return string_;
  }
  return "?";
}

bool Value::Equals(const Value& other) const {
  if (is_null_ || other.is_null_) return is_null_ && other.is_null_;
  if (type_ == other.type_) {
    switch (type_) {
      case TypeId::kBool:
        return bool_ == other.bool_;
      case TypeId::kInt64:
        return int_ == other.int_;
      case TypeId::kDouble:
        return double_ == other.double_;
      case TypeId::kString:
        return string_ == other.string_;
    }
  }
  if (type().is_numeric() && other.type().is_numeric()) {
    return ToDouble() == other.ToDouble();
  }
  return false;
}

size_t Value::Hash() const {
  if (is_null_) return 0x9e3779b97f4a7c15ull;
  switch (type_) {
    case TypeId::kBool:
      return bool_ ? 0x12345 : 0x54321;
    case TypeId::kInt64:
      // Hash integral-valued numerics identically to their double form so
      // Hash is consistent with Equals' numeric widening.
      return std::hash<double>()(static_cast<double>(int_));
    case TypeId::kDouble:
      return std::hash<double>()(double_);
    case TypeId::kString:
      return std::hash<std::string>()(string_);
  }
  return 0;
}

int CompareValues(const Value& a, const Value& b) {
  SL_DCHECK(!a.is_null() && !b.is_null());
  if (a.type() == b.type()) {
    switch (a.type().id()) {
      case TypeId::kBool: {
        int x = a.bool_value() ? 1 : 0, y = b.bool_value() ? 1 : 0;
        return x - y;
      }
      case TypeId::kInt64: {
        int64_t x = a.int64_value(), y = b.int64_value();
        return x < y ? -1 : (x > y ? 1 : 0);
      }
      case TypeId::kDouble: {
        double x = a.double_value(), y = b.double_value();
        return x < y ? -1 : (x > y ? 1 : 0);
      }
      case TypeId::kString:
        return a.string_value().compare(b.string_value());
    }
  }
  SL_DCHECK(a.type().is_numeric() && b.type().is_numeric());
  double x = a.ToDouble(), y = b.ToDouble();
  return x < y ? -1 : (x > y ? 1 : 0);
}

int64_t EstimateRowBytes(const Row& row) {
  int64_t bytes = static_cast<int64_t>(sizeof(Row));
  for (const auto& v : row) bytes += v.EstimatedBytes();
  return bytes;
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    if (row[i].type() == DataType::String() && !row[i].is_null()) {
      out += "'" + row[i].ToString() + "'";
    } else {
      out += row[i].ToString();
    }
  }
  out += ")";
  return out;
}

}  // namespace sparkline
