#include "types/schema.h"

#include "common/string_util.h"

namespace sparkline {

std::string Field::ToString() const {
  return StrCat(name, " ", type.ToString(), nullable ? "" : " NOT NULL");
}

int Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (EqualsIgnoreCase(fields_[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(fields_.size());
  for (const auto& f : fields_) parts.push_back(f.ToString());
  return StrCat("(", JoinStrings(parts, ", "), ")");
}

}  // namespace sparkline
