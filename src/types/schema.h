// Schema: ordered, named, typed, nullability-aware field list.
#pragma once

#include <string>
#include <vector>

#include "types/value.h"

namespace sparkline {

/// \brief One column of a schema.
struct Field {
  std::string name;
  DataType type;
  bool nullable = true;

  std::string ToString() const;
  bool operator==(const Field& o) const {
    return name == o.name && type == o.type && nullable == o.nullable;
  }
};

/// \brief An ordered list of fields. Nullability feeds the paper's
/// algorithm-selection rule (Listing 8): if every skyline dimension is
/// non-nullable the complete algorithm is chosen automatically.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the (case-insensitively) named field, or -1.
  int IndexOf(const std::string& name) const;

  void AddField(Field f) { fields_.push_back(std::move(f)); }

  /// "(id BIGINT NOT NULL, price DOUBLE)".
  std::string ToString() const;

  bool operator==(const Schema& o) const { return fields_ == o.fields_; }

 private:
  std::vector<Field> fields_;
};

}  // namespace sparkline
