// The scalar value model: a null-aware tagged union over the SQL types
// sparkline supports (BOOLEAN, BIGINT, DOUBLE, VARCHAR).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/result.h"

namespace sparkline {

/// \brief Physical type tags.
enum class TypeId : uint8_t { kBool = 0, kInt64, kDouble, kString };

/// \brief A (currently non-parametric) SQL data type.
class DataType {
 public:
  constexpr DataType() : id_(TypeId::kInt64) {}
  constexpr explicit DataType(TypeId id) : id_(id) {}

  static constexpr DataType Bool() { return DataType(TypeId::kBool); }
  static constexpr DataType Int64() { return DataType(TypeId::kInt64); }
  static constexpr DataType Double() { return DataType(TypeId::kDouble); }
  static constexpr DataType String() { return DataType(TypeId::kString); }

  TypeId id() const { return id_; }
  bool is_numeric() const {
    return id_ == TypeId::kInt64 || id_ == TypeId::kDouble;
  }

  /// SQL-ish name: BOOLEAN, BIGINT, DOUBLE, VARCHAR.
  std::string ToString() const;

  bool operator==(const DataType& o) const { return id_ == o.id_; }
  bool operator!=(const DataType& o) const { return id_ != o.id_; }

 private:
  TypeId id_;
};

/// \brief Returns true if values of `a` and `b` can be compared/combined
/// (identical, or both numeric with implicit widening).
bool TypesComparable(DataType a, DataType b);

/// \brief The common type of two comparable types (numeric widening to
/// DOUBLE when mixing BIGINT and DOUBLE).
DataType CommonType(DataType a, DataType b);

/// \brief A single nullable SQL value.
///
/// Null values still carry a type tag so that expression evaluation stays
/// typed; an "untyped" SQL NULL literal defaults to BIGINT and is coerced
/// during analysis.
class Value {
 public:
  /// Default-constructs a BIGINT NULL.
  Value() : type_(TypeId::kInt64), is_null_(true) {}

  static Value Null(DataType type = DataType::Int64()) {
    Value v;
    v.type_ = type.id();
    v.is_null_ = true;
    return v;
  }
  static Value Bool(bool b) {
    Value v;
    v.type_ = TypeId::kBool;
    v.is_null_ = false;
    v.bool_ = b;
    return v;
  }
  static Value Int64(int64_t i) {
    Value v;
    v.type_ = TypeId::kInt64;
    v.is_null_ = false;
    v.int_ = i;
    return v;
  }
  static Value Double(double d) {
    Value v;
    v.type_ = TypeId::kDouble;
    v.is_null_ = false;
    v.double_ = d;
    return v;
  }
  static Value String(std::string s) {
    Value v;
    v.type_ = TypeId::kString;
    v.is_null_ = false;
    v.string_ = std::move(s);
    return v;
  }

  bool is_null() const { return is_null_; }
  DataType type() const { return DataType(type_); }

  bool bool_value() const {
    SL_DCHECK(!is_null_ && type_ == TypeId::kBool);
    return bool_;
  }
  int64_t int64_value() const {
    SL_DCHECK(!is_null_ && type_ == TypeId::kInt64);
    return int_;
  }
  double double_value() const {
    SL_DCHECK(!is_null_ && type_ == TypeId::kDouble);
    return double_;
  }
  const std::string& string_value() const {
    SL_DCHECK(!is_null_ && type_ == TypeId::kString);
    return string_;
  }

  /// Numeric value widened to double; only valid for non-null numerics.
  double ToDouble() const {
    SL_DCHECK(!is_null_ && DataType(type_).is_numeric());
    return type_ == TypeId::kDouble ? double_ : static_cast<double>(int_);
  }

  /// Casts to the given type; numeric widening/narrowing and string parsing
  /// are supported. Nulls cast to nulls of the target type.
  Result<Value> CastTo(DataType target) const;

  /// SQL-ish rendering; NULL renders as "NULL".
  std::string ToString() const;

  /// Null-aware equality used for grouping and DISTINCT: NULL == NULL here.
  /// Numerics compare after widening (1 == 1.0).
  bool Equals(const Value& other) const;

  /// Hash consistent with Equals.
  size_t Hash() const;

  /// Approximate in-memory footprint, for the memory-consumption metrics.
  int64_t EstimatedBytes() const {
    return static_cast<int64_t>(sizeof(Value)) +
           (type_ == TypeId::kString
                ? static_cast<int64_t>(string_.capacity())
                : 0);
  }

 private:
  TypeId type_;
  bool is_null_;
  union {
    bool bool_;
    int64_t int_;
    double double_;
  };
  std::string string_;
};

/// \brief Three-way comparison of two non-null values of comparable types.
///
/// Returns <0, 0, >0. This is the hot path of every dominance test; the
/// caller (analysis) guarantees type compatibility, checked only in debug.
int CompareValues(const Value& a, const Value& b);

/// \brief A tuple. Row-oriented storage keeps the skyline operators simple
/// and matches Spark's InternalRow model at the operator boundary.
using Row = std::vector<Value>;

/// Approximate memory footprint of a row.
int64_t EstimateRowBytes(const Row& row);

/// Renders "(1, 'x', NULL)".
std::string RowToString(const Row& row);

/// \brief Hash / equality functors over rows, for hash aggregation and
/// DISTINCT (null-aware: NULLs compare equal, as in SQL grouping).
struct RowHash {
  size_t operator()(const Row& r) const {
    size_t h = 1469598103934665603ull;
    for (const auto& v : r) {
      h ^= v.Hash();
      h *= 1099511628211ull;
    }
    return h;
  }
};
struct RowEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!a[i].Equals(b[i])) return false;
    }
    return true;
  }
};

}  // namespace sparkline
