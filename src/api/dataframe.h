// DataFrame: the lazily-evaluated, eagerly-analyzed transformation API
// (paper section 5.8). Every transformation returns a new DataFrame whose
// plan has passed analysis, so schema errors surface at call sites.
#pragma once

#include <string>
#include <vector>

#include "api/functions.h"
#include "api/query_result.h"
#include "api/session.h"

namespace sparkline {

class DataFrame {
 public:
  DataFrame(Session* session, LogicalPlanPtr analyzed_plan)
      : session_(session), plan_(std::move(analyzed_plan)) {}

  const LogicalPlanPtr& plan() const { return plan_; }
  Session* session() const { return session_; }

  /// Output schema (available without executing).
  Schema schema() const;

  // --- transformations -------------------------------------------------------

  Result<DataFrame> Select(const std::vector<Col>& cols) const;
  Result<DataFrame> Select(const std::vector<std::string>& names) const;
  Result<DataFrame> Where(const Col& condition) const;
  /// Parses a SQL boolean expression: df.Where("price < 100").
  Result<DataFrame> Where(const std::string& condition) const;

  /// Joins on a condition; `how` is inner | left | cross | semi | anti.
  Result<DataFrame> Join(const DataFrame& right, const Col& condition,
                         const std::string& how = "inner") const;
  /// USING-style join on equal column names.
  Result<DataFrame> Join(const DataFrame& right,
                         const std::vector<std::string>& using_columns,
                         const std::string& how = "inner") const;

  /// GROUP BY `groups` computing `aggs` (both become the output columns).
  Result<DataFrame> Agg(const std::vector<Col>& groups,
                        const std::vector<Col>& aggs) const;

  Result<DataFrame> OrderBy(const std::vector<SortOrder>& orders) const;
  Result<DataFrame> OrderBy(const std::vector<std::string>& names) const;
  Result<DataFrame> Limit(int64_t n) const;
  Result<DataFrame> Distinct() const;

  /// The skyline transformation (paper section 5.8): dimensions must be
  /// built with smin() / smax() / sdiff().
  ///
  ///   df.Skyline({smin(col("price")), smax(col("user_rating"))});
  Result<DataFrame> Skyline(const std::vector<Col>& dimensions,
                            bool distinct = false, bool complete = false) const;

  /// Convenience overload taking (name, goal) pairs, mirroring the paper's
  /// pair-based R interface.
  Result<DataFrame> Skyline(
      const std::vector<std::pair<std::string, SkylineGoal>>& dimensions,
      bool distinct = false, bool complete = false) const;

  // --- actions -----------------------------------------------------------------

  Result<QueryResult> Collect() const { return session_->Execute(plan_); }
  Result<int64_t> Count() const;
  Result<ExplainInfo> Explain() const { return session_->Explain(plan_); }

 private:
  Result<DataFrame> WithPlan(LogicalPlanPtr plan) const;

  Session* session_;
  LogicalPlanPtr plan_;
};

}  // namespace sparkline
