#include "api/session.h"

#include "api/dataframe.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "sql/parser.h"

namespace sparkline {

std::string ExplainInfo::ToString() const {
  return StrCat("== Analyzed Logical Plan ==\n", analyzed,
                "\n\n== Optimized Logical Plan ==\n", optimized,
                "\n\n== Physical Plan ==\n", physical, "\n");
}

Session::Session(SessionConfig config)
    : catalog_(std::make_shared<Catalog>()), config_(std::move(config)) {}

namespace {
Result<bool> ParseBool(const std::string& value) {
  const std::string v = ToLower(value);
  if (v == "true" || v == "1" || v == "on") return true;
  if (v == "false" || v == "0" || v == "off") return false;
  return Status::Invalid(StrCat("expected a boolean, got '", value, "'"));
}
Result<int64_t> ParseInt(const std::string& value) {
  try {
    return static_cast<int64_t>(std::stoll(value));
  } catch (...) {
    return Status::Invalid(StrCat("expected an integer, got '", value, "'"));
  }
}
}  // namespace

Status Session::SetConf(const std::string& key, const std::string& value) {
  const std::string k = ToLower(key);
  if (k == "sparkline.executors") {
    SL_ASSIGN_OR_RETURN(int64_t n, ParseInt(value));
    if (n < 1 || n > 4096) {
      return Status::Invalid("sparkline.executors must be in [1, 4096]");
    }
    config_.cluster.num_executors = static_cast<int>(n);
    return Status::OK();
  }
  if (k == "sparkline.timeout_ms") {
    SL_ASSIGN_OR_RETURN(int64_t n, ParseInt(value));
    config_.cluster.timeout_ms = n;
    return Status::OK();
  }
  if (k == "sparkline.memory.executoroverheadmb") {
    SL_ASSIGN_OR_RETURN(int64_t n, ParseInt(value));
    config_.cluster.executor_overhead_bytes = n << 20;
    return Status::OK();
  }
  if (k == "sparkline.skyline.strategy") {
    if (EqualsIgnoreCase(value, "reference")) {
      config_.skyline_reference = true;
      config_.skyline_strategy = SkylineStrategy::kAuto;
      return Status::OK();
    }
    SL_ASSIGN_OR_RETURN(SkylineStrategy s, ParseSkylineStrategy(value));
    config_.skyline_reference = false;
    config_.skyline_strategy = s;
    return Status::OK();
  }
  if (k == "sparkline.skyline.kernel") {
    if (EqualsIgnoreCase(value, "bnl")) {
      config_.skyline_kernel = SkylineKernel::kBlockNestedLoop;
      return Status::OK();
    }
    if (EqualsIgnoreCase(value, "sfs")) {
      config_.skyline_kernel = SkylineKernel::kSortFilterSkyline;
      return Status::OK();
    }
    if (EqualsIgnoreCase(value, "grid")) {
      config_.skyline_kernel = SkylineKernel::kGridFilter;
      return Status::OK();
    }
    return Status::Invalid(
        StrCat("unknown skyline kernel '", value, "' (bnl | sfs | grid)"));
  }
  if (k == "sparkline.skyline.columnar") {
    SL_ASSIGN_OR_RETURN(config_.skyline_columnar, ParseBool(value));
    return Status::OK();
  }
  if (k == "sparkline.skyline.exchange.columnar") {
    SL_ASSIGN_OR_RETURN(config_.skyline_columnar_exchange, ParseBool(value));
    return Status::OK();
  }
  if (k == "sparkline.skyline.incomplete.parallel") {
    SL_ASSIGN_OR_RETURN(config_.skyline_incomplete_parallel, ParseBool(value));
    return Status::OK();
  }
  if (k == "sparkline.skyline.broadcast_filter") {
    SL_ASSIGN_OR_RETURN(config_.skyline_broadcast_filter, ParseBool(value));
    return Status::OK();
  }
  if (k == "sparkline.scan.zone_maps") {
    SL_ASSIGN_OR_RETURN(config_.scan_zone_maps, ParseBool(value));
    return Status::OK();
  }
  if (k == "sparkline.skyline.sfs.early_stop") {
    SL_ASSIGN_OR_RETURN(config_.skyline_sfs_early_stop, ParseBool(value));
    return Status::OK();
  }
  if (k == "sparkline.skyline.sfs.sort_key") {
    SL_ASSIGN_OR_RETURN(config_.skyline_sfs_sort_key, ParseSfsSortKey(value));
    return Status::OK();
  }
  if (k == "sparkline.skyline.partitioning") {
    SL_ASSIGN_OR_RETURN(config_.skyline_partitioning,
                        ParseSkylinePartitioning(value));
    return Status::OK();
  }
  if (k == "sparkline.skyline.nondistributedthreshold") {
    SL_ASSIGN_OR_RETURN(config_.non_distributed_threshold, ParseInt(value));
    return Status::OK();
  }
  if (k == "sparkline.optimizer.singledimrewrite") {
    SL_ASSIGN_OR_RETURN(config_.optimizer.single_dim_skyline_rewrite,
                        ParseBool(value));
    return Status::OK();
  }
  if (k == "sparkline.optimizer.skylinejoinpushdown") {
    SL_ASSIGN_OR_RETURN(config_.optimizer.skyline_join_pushdown,
                        ParseBool(value));
    return Status::OK();
  }
  if (k == "sparkline.optimizer.filterpushdown") {
    SL_ASSIGN_OR_RETURN(config_.optimizer.filter_pushdown, ParseBool(value));
    return Status::OK();
  }
  if (k == "sparkline.optimizer.constantfolding") {
    SL_ASSIGN_OR_RETURN(config_.optimizer.constant_folding, ParseBool(value));
    return Status::OK();
  }
  if (k == "sparkline.optimizer.columnpruning") {
    SL_ASSIGN_OR_RETURN(config_.optimizer.column_pruning, ParseBool(value));
    return Status::OK();
  }
  if (k == "sparkline.cache.enabled") {
    SL_ASSIGN_OR_RETURN(config_.cache_enabled, ParseBool(value));
    if (!config_.cache_enabled) {
      sl::MutexLock lock(&serve_mu_);
      if (cache_ != nullptr) cache_->Clear();
    }
    return Status::OK();
  }
  if (k == "sparkline.cache.capacity_bytes") {
    SL_ASSIGN_OR_RETURN(int64_t n, ParseInt(value));
    if (n < 0) {
      return Status::Invalid("sparkline.cache.capacity_bytes must be >= 0");
    }
    config_.cache_capacity_bytes = n;
    sl::MutexLock lock(&serve_mu_);
    if (cache_ != nullptr) cache_->set_capacity_bytes(n);
    return Status::OK();
  }
  if (k == "sparkline.cache.ttl_ms") {
    SL_ASSIGN_OR_RETURN(int64_t n, ParseInt(value));
    if (n < 0) return Status::Invalid("sparkline.cache.ttl_ms must be >= 0");
    config_.cache_ttl_ms = n;
    sl::MutexLock lock(&serve_mu_);
    if (cache_ != nullptr) cache_->set_ttl_ms(n);
    return Status::OK();
  }
  if (k == "sparkline.cache.incremental") {
    SL_ASSIGN_OR_RETURN(config_.cache_incremental, ParseBool(value));
    sl::MutexLock lock(&serve_mu_);
    if (maintainer_ != nullptr) {
      maintainer_->set_enabled(config_.cache_incremental);
    }
    return Status::OK();
  }
  if (k == "sparkline.cache.max_delta_batch") {
    SL_ASSIGN_OR_RETURN(int64_t n, ParseInt(value));
    if (n < 0) {
      return Status::Invalid("sparkline.cache.max_delta_batch must be >= 0");
    }
    config_.cache_max_delta_batch = n;
    sl::MutexLock lock(&serve_mu_);
    if (maintainer_ != nullptr) maintainer_->set_max_delta_batch(n);
    return Status::OK();
  }
  if (k == "sparkline.exec.task_retries") {
    SL_ASSIGN_OR_RETURN(int64_t n, ParseInt(value));
    if (n < 0 || n > 100) {
      return Status::Invalid("sparkline.exec.task_retries must be in [0, 100]");
    }
    config_.cluster.task_retries = static_cast<int>(n);
    return Status::OK();
  }
  if (k == "sparkline.exec.retry_backoff_ms") {
    SL_ASSIGN_OR_RETURN(int64_t n, ParseInt(value));
    if (n < 0) {
      return Status::Invalid("sparkline.exec.retry_backoff_ms must be >= 0");
    }
    config_.cluster.retry_backoff_ms = n;
    return Status::OK();
  }
  if (k == "sparkline.exec.memory_limit_bytes") {
    SL_ASSIGN_OR_RETURN(int64_t n, ParseInt(value));
    if (n < 0) {
      return Status::Invalid(
          "sparkline.exec.memory_limit_bytes must be >= 0 (0 = unlimited)");
    }
    config_.cluster.memory_limit_bytes = n;
    return Status::OK();
  }
  if (k == "sparkline.trace.enabled") {
    SL_ASSIGN_OR_RETURN(config_.cluster.trace_enabled, ParseBool(value));
    return Status::OK();
  }
  if (k == "sparkline.log.slow_query_ms") {
    SL_ASSIGN_OR_RETURN(int64_t n, ParseInt(value));
    if (n < 0) {
      return Status::Invalid(
          "sparkline.log.slow_query_ms must be >= 0 (0 = off)");
    }
    config_.log_slow_query_ms = n;
    return Status::OK();
  }
  if (k == "sparkline.failpoints") {
    // Process-wide, not per-session: failpoints model machine faults, which
    // do not respect session boundaries. Empty value disarms everything.
    return fail::ArmFromString(value);
  }
  if (k == "sparkline.serve.max_concurrent") {
    SL_ASSIGN_OR_RETURN(int64_t n, ParseInt(value));
    if (n < 1 || n > 1024) {
      return Status::Invalid("sparkline.serve.max_concurrent must be in [1, 1024]");
    }
    {
      sl::MutexLock lock(&serve_mu_);
      if (service_ != nullptr) {
        return Status::Invalid(
            "sparkline.serve.max_concurrent cannot change after the query "
            "service has started");
      }
    }
    config_.serve_max_concurrent = static_cast<int>(n);
    return Status::OK();
  }
  return Status::Invalid(StrCat("unknown configuration key '", key, "'"));
}

serve::ResultCache* Session::cache() const {
  sl::MutexLock lock(&serve_mu_);
  if (cache_ == nullptr) {
    serve::ResultCache::Options options;
    options.capacity_bytes = config_.cache_capacity_bytes;
    options.ttl_ms = config_.cache_ttl_ms;
    cache_ = std::make_shared<serve::ResultCache>(options);
    // Maintain (or invalidate) dependents on every catalog write. The
    // listener holds the maintainer weakly so a dead session's cache (and
    // its resident results) can be reclaimed even if the catalog outlives
    // the session.
    maintainer_ =
        std::make_shared<serve::IncrementalMaintainer>(catalog_.get(), cache_);
    maintainer_->set_enabled(config_.cache_incremental);
    maintainer_->set_max_delta_batch(config_.cache_max_delta_batch);
    catalog_->AddWriteListener(
        [weak = std::weak_ptr<serve::IncrementalMaintainer>(maintainer_)](
            const WriteEvent& event) {
          if (auto maintainer = weak.lock()) maintainer->OnWrite(event);
        });
  }
  return cache_.get();
}

serve::IncrementalMaintainer* Session::maintainer() const {
  cache();  // creates the maintainer + registers the write listener
  sl::MutexLock lock(&serve_mu_);
  return maintainer_.get();
}

Result<uint64_t> Session::Subscribe(const std::string& sql,
                                    serve::SubscriptionCallback callback) {
  SL_ASSIGN_OR_RETURN(LogicalPlanPtr plan, ParseSql(sql));
  SL_ASSIGN_OR_RETURN(LogicalPlanPtr analyzed, Analyze(plan));
  std::shared_ptr<const serve::DeltaRecipe> recipe =
      serve::BuildDeltaRecipe(analyzed);
  if (recipe == nullptr) {
    return Status::Invalid(
        "continuous queries require a maintainable skyline: a single table "
        "scanned through Filter/Project steps only, with complete dominance "
        "(COMPLETE declared or no nullable dimension)");
  }
  return maintainer()->Subscribe(std::move(recipe), std::move(callback));
}

Status Session::Unsubscribe(uint64_t id) {
  // Copy the pointer out instead of calling under serve_mu_: Unsubscribe
  // takes the maintainer's subscription lock, and callbacks run user code —
  // holding serve_mu_ across that couples unrelated lock orders.
  std::shared_ptr<serve::IncrementalMaintainer> maintainer;
  {
    sl::MutexLock lock(&serve_mu_);
    maintainer = maintainer_;
  }
  if (maintainer == nullptr) {
    return Status::Invalid("no subscriptions were ever registered");
  }
  maintainer->Unsubscribe(id);
  return Status::OK();
}

serve::QueryService* Session::service() {
  sl::MutexLock lock(&serve_mu_);
  if (service_ == nullptr) {
    serve::QueryService::Options options;
    options.max_concurrent = config_.serve_max_concurrent;
    service_ = std::make_unique<serve::QueryService>(this, options);
  }
  return service_.get();
}

Result<std::future<Result<QueryResult>>> Session::SqlAsync(
    const std::string& sql) {
  SL_ASSIGN_OR_RETURN(serve::QueryHandle handle, service()->Submit(sql));
  return std::move(handle.future);
}

Result<serve::QueryHandle> Session::SqlSubmit(const std::string& sql) {
  return service()->Submit(sql);
}

Result<DataFrame> Session::Sql(const std::string& sql) {
  SL_ASSIGN_OR_RETURN(LogicalPlanPtr plan, ParseSql(sql));
  SL_ASSIGN_OR_RETURN(LogicalPlanPtr analyzed, Analyze(plan));
  return DataFrame(this, std::move(analyzed));
}

Result<DataFrame> Session::Table(const std::string& name) {
  SL_ASSIGN_OR_RETURN(LogicalPlanPtr analyzed,
                      Analyze(UnresolvedRelation::Make(name)));
  return DataFrame(this, std::move(analyzed));
}

Result<DataFrame> Session::CreateDataFrame(const Schema& schema,
                                           std::vector<Row> rows) {
  return DataFrame(this, LocalRelation::Make(schema, std::move(rows)));
}

Result<LogicalPlanPtr> Session::Analyze(const LogicalPlanPtr& plan) const {
  Analyzer analyzer(catalog_);
  return analyzer.Analyze(plan);
}

Result<LogicalPlanPtr> Session::Optimize(const LogicalPlanPtr& analyzed) const {
  OptimizerOptions opts = config_.optimizer;
  opts.rewrite_skyline_to_reference = config_.skyline_reference;
  Optimizer optimizer(opts);
  return optimizer.Optimize(analyzed);
}

Result<PhysicalPlanPtr> Session::PlanPhysical(
    const LogicalPlanPtr& optimized) const {
  PlannerOptions opts;
  opts.cluster = config_.cluster;
  opts.skyline_strategy = config_.skyline_strategy;
  opts.skyline_kernel = config_.skyline_kernel;
  opts.skyline_columnar = config_.skyline_columnar;
  opts.skyline_columnar_exchange = config_.skyline_columnar_exchange;
  opts.skyline_incomplete_parallel = config_.skyline_incomplete_parallel;
  opts.skyline_broadcast_filter = config_.skyline_broadcast_filter;
  opts.scan_zone_maps = config_.scan_zone_maps;
  opts.skyline_partitioning = config_.skyline_partitioning;
  opts.sfs_early_stop = config_.skyline_sfs_early_stop;
  opts.sfs_sort_key = config_.skyline_sfs_sort_key;
  opts.non_distributed_threshold = config_.non_distributed_threshold;
  PhysicalPlanner planner(opts);
  return planner.Plan(optimized);
}

namespace {

/// Renders one physical operator for EXPLAIN ANALYZE: the label annotated
/// with the critical-path milliseconds actually spent in it, its output
/// rows, and its matrix-build economy. Multi-stage operators (e.g.
/// "GlobalSkyline [complete] [partial]"/"[merge]") aggregate their
/// sub-stage entries and show the split inline. Entries are consumed from
/// `remaining_ms` so two same-labelled nodes don't double-report (the
/// topmost occurrence gets the charge — per-label metrics can't tell twins
/// apart).
std::string RenderAnalyzeNode(const PhysicalPlan& node, const QueryMetrics& m,
                              std::map<std::string, double>* remaining_ms) {
  const std::string label = node.label();
  const std::string stage_prefix = label + " [";
  auto belongs = [&](const std::string& key) {
    return key == label ||
           key.compare(0, stage_prefix.size(), stage_prefix) == 0;
  };

  double total_ms = 0;
  std::vector<std::pair<std::string, double>> stages;
  for (auto it = remaining_ms->begin(); it != remaining_ms->end();) {
    if (belongs(it->first)) {
      total_ms += it->second;
      stages.emplace_back(it->first, it->second);
      it = remaining_ms->erase(it);
    } else {
      ++it;
    }
  }

  std::string line = StrCat(label, " (", FormatFixed(total_ms, 3), " ms");
  auto rows_it = m.operator_rows.find(label);
  if (rows_it != m.operator_rows.end()) {
    line += StrCat(", rows=", rows_it->second);
  }
  int64_t builds = 0;
  int64_t reuses = 0;
  for (const auto& [key, n] : m.matrix_builds) {
    if (belongs(key)) builds += n;
  }
  for (const auto& [key, n] : m.matrix_reuses) {
    if (belongs(key)) reuses += n;
  }
  if (builds > 0) line += StrCat(", matrix_builds=", builds);
  if (reuses > 0) line += StrCat(", matrix_reuses=", reuses);
  // Two-phase pruning annotations. The counters are query-global scalars,
  // so each lands on the first (topmost) node of its operator family —
  // exact for today's single-skyline plans, attribution-fuzzy only for
  // nested skylines (like operator_rows above).
  if (label == "BroadcastFilter") {
    if (m.broadcast_filter_points > 0) {
      line += StrCat(", filter_points=", m.broadcast_filter_points);
    }
    if (m.rows_pruned_pre_gather > 0) {
      line += StrCat(", pruned_pre_gather=", m.rows_pruned_pre_gather);
    }
  }
  if (label.compare(0, 12, "LocalSkyline") == 0 && m.partitions_skipped > 0) {
    line += StrCat(", partitions_skipped=", m.partitions_skipped);
  }
  if (label.compare(0, 8, "Exchange") == 0 && m.exchange_rows_shipped > 0) {
    line += StrCat(", shipped_rows=", m.exchange_rows_shipped,
                   ", shipped_bytes=", m.exchange_bytes);
  }
  line += ")";
  if (stages.size() > 1) {
    line += " {";
    for (size_t i = 0; i < stages.size(); ++i) {
      if (i > 0) line += ", ";
      line += StrCat(stages[i].first, "=", FormatFixed(stages[i].second, 3),
                     "ms");
    }
    line += "}";
  }

  for (const auto& child : node.children()) {
    line += "\n";
    line += Indent(RenderAnalyzeNode(*child, m, remaining_ms), 2);
  }
  return line;
}

/// The EXPLAIN ANALYZE report: the annotated physical tree, the per-stage
/// critical-path breakdown (which sums to simulated_ms exactly — every
/// AddStageTime charge lands in both), and the full metrics line.
std::string RenderExplainAnalyze(const PhysicalPlan& root,
                                 const QueryMetrics& m) {
  std::map<std::string, double> remaining = m.operator_ms;
  std::string out = "== Physical Plan (analyzed) ==\n";
  out += RenderAnalyzeNode(root, m, &remaining);
  out += "\n\n== Stage breakdown ==\n";
  double total = 0;
  for (const auto& [label, ms] : m.operator_ms) {
    out += StrCat(label, ": ", FormatFixed(ms, 3), " ms\n");
    total += ms;
  }
  out += StrCat("total (critical path): ", FormatFixed(total, 3),
                " ms = simulated ", FormatFixed(m.simulated_ms, 3), " ms\n");
  out += "\n== Query metrics ==\n";
  out += m.ToString();
  return out;
}

}  // namespace

std::string Session::MetricsText() const {
  return metrics::MetricsRegistry::Global().TextExposition();
}

void Session::MaybeLogSlowQuery(const serve::PlanFingerprint& fp,
                                const QueryMetrics& m,
                                const char* cache_disposition) const {
  const int64_t threshold = config_.log_slow_query_ms;
  if (threshold <= 0 || m.wall_ms < static_cast<double>(threshold)) return;
  static metrics::Counter* slow_total =
      metrics::MetricsRegistry::Global().GetCounter(
          "sparkline_slow_queries_total");
  slow_total->Increment();
  // Versions are read at log time, not query time: the line says which
  // snapshot the tables are at *now*, pairing with the fingerprint key
  // (which pinned the versions the query actually saw).
  std::string tables;
  for (const auto& name : fp.tables) {
    if (!tables.empty()) tables += ",";
    tables += StrCat(name, "@", catalog_->TableVersion(name));
  }
  std::string stages;
  for (const auto& [label, ms] : m.operator_ms) {
    if (!stages.empty()) stages += ",";
    stages += StrCat(label, "=", FormatFixed(ms, 3));
  }
  SL_LOG_WARN << "slow-query key=" << (fp.canonical.empty() ? "-" : fp.Key())
              << " wall_ms=" << FormatFixed(m.wall_ms, 3)
              << " simulated_ms=" << FormatFixed(m.simulated_ms, 3)
              << " threshold_ms=" << threshold << " tables=[" << tables
              << "] stages=[" << stages << "] cache=" << cache_disposition;
}

Result<QueryResult> Session::Execute(const LogicalPlanPtr& plan) const {
  return Execute(plan, nullptr);
}

Result<QueryResult> Session::ExecuteUncached(
    const LogicalPlanPtr& analyzed, const CancellationTokenPtr& cancel,
    PhysicalPlanPtr* physical_out) const {
  SL_ASSIGN_OR_RETURN(LogicalPlanPtr optimized, Optimize(analyzed));
  SL_ASSIGN_OR_RETURN(PhysicalPlanPtr physical, PlanPhysical(optimized));

  ExecContext ctx(config_.cluster);
  if (cancel != nullptr) ctx.set_cancel_token(cancel);
  StopWatch wall;
  SL_ASSIGN_OR_RETURN(PartitionedRelation rel, physical->Execute(&ctx));

  QueryResult result;
  result.attrs = rel.attrs;
  // The plan-root decode: a relation still in columnar-exchange form
  // materializes its rows exactly here (timed into decode_ms).
  const bool root_decode = rel.has_batches();
  StopWatch decode;
  result.SetRows(std::move(rel).Flatten());
  if (root_decode) ctx.AddDecodeMs(decode.ElapsedMillis());
  const double wall_ms = wall.ElapsedMillis();
  result.metrics = ctx.Finish(wall_ms);
  result.metrics.rows_served = static_cast<int64_t>(result.num_rows());
  if (Trace* trace = ctx.trace()) {
    // Query-level totals live on the root span; only known post-Finish.
    trace->Annotate(nullptr, "dominance_tests",
                    std::to_string(result.metrics.dominance_tests));
    trace->Annotate(nullptr, "peak_memory_bytes",
                    std::to_string(result.metrics.peak_memory_bytes));
    trace->Annotate(nullptr, "rows_served",
                    std::to_string(result.metrics.rows_served));
  }
  result.trace = ctx.TakeTrace(wall_ms);
  if (physical_out != nullptr) *physical_out = std::move(physical);
  return result;
}

Result<QueryResult> Session::Execute(const LogicalPlanPtr& plan,
                                     const CancellationTokenPtr& cancel) const {
  if (cancel != nullptr && cancel->cancelled()) {
    return Status::Cancelled("query cancelled before execution");
  }
  SL_ASSIGN_OR_RETURN(LogicalPlanPtr analyzed, Analyze(plan));

  if (analyzed->kind() == PlanKind::kExplainAnalyze) {
    // EXPLAIN ANALYZE: run the wrapped statement for real — never from the
    // cache, the point is to measure — then return the annotated physical
    // tree as the single result row. The child's metrics (and trace) ride
    // along so callers can reconcile the rendered numbers programmatically.
    const auto& node = static_cast<const ExplainAnalyzeNode&>(*analyzed);
    PhysicalPlanPtr physical;
    SL_ASSIGN_OR_RETURN(QueryResult executed,
                        ExecuteUncached(node.child(), cancel, &physical));
    MaybeLogSlowQuery(serve::FingerprintPlan(node.child()), executed.metrics,
                      "bypass");
    QueryResult result;
    result.attrs = analyzed->output();
    std::vector<Row> rows;
    rows.push_back(
        Row{Value::String(RenderExplainAnalyze(*physical, executed.metrics))});
    result.SetRows(std::move(rows));
    result.metrics = executed.metrics;
    result.trace = executed.trace;
    return result;
  }

  // Consult the fingerprinted result cache (serve layer). The fingerprint
  // is computed post-analysis so lexically different but semantically
  // identical queries share an entry; table versions inside the hash keep
  // stale hits impossible.
  serve::PlanFingerprint fp;
  double lookup_ms = 0;
  bool use_cache = config_.cache_enabled;
  if (use_cache) {
    StopWatch lookup;
    fp = serve::FingerprintPlan(analyzed);
    use_cache = fp.cacheable;
    if (use_cache) {
      std::shared_ptr<const serve::CachedResult> hit = cache()->Lookup(fp);
      lookup_ms = lookup.ElapsedMillis();
      if (hit != nullptr) {
        QueryResult result;
        result.attrs = hit->attrs;
        result.SetRows(hit->rows);  // shared snapshot, no copy
        result.metrics.cache_hit = true;
        result.metrics.cache_delta_maintained = hit->delta_count;
        result.metrics.cache_lookup_ms = lookup_ms;
        result.metrics.wall_ms = lookup_ms;
        result.metrics.simulated_ms = lookup_ms;
        result.metrics.operator_ms["[cache-hit]"] = lookup_ms;
        result.metrics.rows_served =
            static_cast<int64_t>(hit->rows->size());
        result.metrics.bytes_served = hit->bytes;
        MaybeLogSlowQuery(fp, result.metrics, "hit");
        return result;
      }
    }
    // Uncacheable plans report cache_lookup_ms = 0: no probe happened.
  } else if (config_.log_slow_query_ms > 0) {
    // The slow-query line keys on the fingerprint even with the cache off;
    // only worth computing when the log is armed.
    fp = serve::FingerprintPlan(analyzed);
  }

  SL_ASSIGN_OR_RETURN(QueryResult result,
                      ExecuteUncached(analyzed, cancel, nullptr));
  result.metrics.cache_lookup_ms = lookup_ms;
  // The byte estimate walks every result cell; only pay for it when the
  // cache needs it for budget charging.
  if (config_.cache_enabled) {
    result.metrics.bytes_served = EstimatedRowsBytes(result.rows());
  }
  if (use_cache) {
    auto entry = std::make_shared<serve::CachedResult>();
    entry->attrs = result.attrs;
    entry->rows = result.shared_rows();
    entry->bytes = result.metrics.bytes_served;
    entry->fingerprint = fp;
    // Attach the maintenance recipe when the plan shape supports it, so the
    // write listener can delta-advance this entry instead of dropping it.
    uint64_t snapshot_version = 0;
    entry->recipe = serve::BuildDeltaRecipe(analyzed, &snapshot_version);
    entry->table_version = snapshot_version;
    // Caching is an optimization, never a correctness dependency: a failed
    // (or throwing) insert degrades to uncached serving of this result.
    Status cached = Status::OK();
    try {
      cached = cache()->Insert(fp, std::move(entry));
    } catch (const std::exception& e) {
      cached = Status::Internal(e.what());
    }
    if (!cached.ok()) {
      SL_LOG_WARN << "result-cache insert failed, serving uncached: "
                  << cached.ToString();
    }
  }
  MaybeLogSlowQuery(
      fp, result.metrics,
      use_cache ? "miss" : (config_.cache_enabled ? "uncacheable" : "off"));
  return result;
}

Result<ExplainInfo> Session::Explain(const LogicalPlanPtr& plan) const {
  SL_ASSIGN_OR_RETURN(LogicalPlanPtr analyzed, Analyze(plan));
  SL_ASSIGN_OR_RETURN(LogicalPlanPtr optimized, Optimize(analyzed));
  SL_ASSIGN_OR_RETURN(PhysicalPlanPtr physical, PlanPhysical(optimized));
  ExplainInfo info;
  info.analyzed = analyzed->TreeString();
  info.optimized = optimized->TreeString();
  info.physical = physical->TreeString();
  return info;
}

}  // namespace sparkline
