#include "api/session.h"

#include "api/dataframe.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "sql/parser.h"

namespace sparkline {

std::string ExplainInfo::ToString() const {
  return StrCat("== Analyzed Logical Plan ==\n", analyzed,
                "\n\n== Optimized Logical Plan ==\n", optimized,
                "\n\n== Physical Plan ==\n", physical, "\n");
}

Session::Session(SessionConfig config)
    : catalog_(std::make_shared<Catalog>()), config_(std::move(config)) {}

namespace {
Result<bool> ParseBool(const std::string& value) {
  const std::string v = ToLower(value);
  if (v == "true" || v == "1" || v == "on") return true;
  if (v == "false" || v == "0" || v == "off") return false;
  return Status::Invalid(StrCat("expected a boolean, got '", value, "'"));
}
Result<int64_t> ParseInt(const std::string& value) {
  try {
    return static_cast<int64_t>(std::stoll(value));
  } catch (...) {
    return Status::Invalid(StrCat("expected an integer, got '", value, "'"));
  }
}
}  // namespace

Status Session::SetConf(const std::string& key, const std::string& value) {
  const std::string k = ToLower(key);
  if (k == "sparkline.executors") {
    SL_ASSIGN_OR_RETURN(int64_t n, ParseInt(value));
    if (n < 1 || n > 4096) {
      return Status::Invalid("sparkline.executors must be in [1, 4096]");
    }
    config_.cluster.num_executors = static_cast<int>(n);
    return Status::OK();
  }
  if (k == "sparkline.timeout_ms") {
    SL_ASSIGN_OR_RETURN(int64_t n, ParseInt(value));
    config_.cluster.timeout_ms = n;
    return Status::OK();
  }
  if (k == "sparkline.memory.executoroverheadmb") {
    SL_ASSIGN_OR_RETURN(int64_t n, ParseInt(value));
    config_.cluster.executor_overhead_bytes = n << 20;
    return Status::OK();
  }
  if (k == "sparkline.skyline.strategy") {
    if (EqualsIgnoreCase(value, "reference")) {
      config_.skyline_reference = true;
      config_.skyline_strategy = SkylineStrategy::kAuto;
      return Status::OK();
    }
    SL_ASSIGN_OR_RETURN(SkylineStrategy s, ParseSkylineStrategy(value));
    config_.skyline_reference = false;
    config_.skyline_strategy = s;
    return Status::OK();
  }
  if (k == "sparkline.skyline.kernel") {
    if (EqualsIgnoreCase(value, "bnl")) {
      config_.skyline_kernel = SkylineKernel::kBlockNestedLoop;
      return Status::OK();
    }
    if (EqualsIgnoreCase(value, "sfs")) {
      config_.skyline_kernel = SkylineKernel::kSortFilterSkyline;
      return Status::OK();
    }
    if (EqualsIgnoreCase(value, "grid")) {
      config_.skyline_kernel = SkylineKernel::kGridFilter;
      return Status::OK();
    }
    return Status::Invalid(
        StrCat("unknown skyline kernel '", value, "' (bnl | sfs | grid)"));
  }
  if (k == "sparkline.skyline.columnar") {
    SL_ASSIGN_OR_RETURN(config_.skyline_columnar, ParseBool(value));
    return Status::OK();
  }
  if (k == "sparkline.skyline.incomplete.parallel") {
    SL_ASSIGN_OR_RETURN(config_.skyline_incomplete_parallel, ParseBool(value));
    return Status::OK();
  }
  if (k == "sparkline.skyline.partitioning") {
    SL_ASSIGN_OR_RETURN(config_.skyline_partitioning,
                        ParseSkylinePartitioning(value));
    return Status::OK();
  }
  if (k == "sparkline.skyline.nondistributedthreshold") {
    SL_ASSIGN_OR_RETURN(config_.non_distributed_threshold, ParseInt(value));
    return Status::OK();
  }
  if (k == "sparkline.optimizer.singledimrewrite") {
    SL_ASSIGN_OR_RETURN(config_.optimizer.single_dim_skyline_rewrite,
                        ParseBool(value));
    return Status::OK();
  }
  if (k == "sparkline.optimizer.skylinejoinpushdown") {
    SL_ASSIGN_OR_RETURN(config_.optimizer.skyline_join_pushdown,
                        ParseBool(value));
    return Status::OK();
  }
  if (k == "sparkline.optimizer.filterpushdown") {
    SL_ASSIGN_OR_RETURN(config_.optimizer.filter_pushdown, ParseBool(value));
    return Status::OK();
  }
  if (k == "sparkline.optimizer.constantfolding") {
    SL_ASSIGN_OR_RETURN(config_.optimizer.constant_folding, ParseBool(value));
    return Status::OK();
  }
  if (k == "sparkline.optimizer.columnpruning") {
    SL_ASSIGN_OR_RETURN(config_.optimizer.column_pruning, ParseBool(value));
    return Status::OK();
  }
  return Status::Invalid(StrCat("unknown configuration key '", key, "'"));
}

Result<DataFrame> Session::Sql(const std::string& sql) {
  SL_ASSIGN_OR_RETURN(LogicalPlanPtr plan, ParseSql(sql));
  SL_ASSIGN_OR_RETURN(LogicalPlanPtr analyzed, Analyze(plan));
  return DataFrame(this, std::move(analyzed));
}

Result<DataFrame> Session::Table(const std::string& name) {
  SL_ASSIGN_OR_RETURN(LogicalPlanPtr analyzed,
                      Analyze(UnresolvedRelation::Make(name)));
  return DataFrame(this, std::move(analyzed));
}

Result<DataFrame> Session::CreateDataFrame(const Schema& schema,
                                           std::vector<Row> rows) {
  return DataFrame(this, LocalRelation::Make(schema, std::move(rows)));
}

Result<LogicalPlanPtr> Session::Analyze(const LogicalPlanPtr& plan) const {
  Analyzer analyzer(catalog_);
  return analyzer.Analyze(plan);
}

Result<LogicalPlanPtr> Session::Optimize(const LogicalPlanPtr& analyzed) const {
  OptimizerOptions opts = config_.optimizer;
  opts.rewrite_skyline_to_reference = config_.skyline_reference;
  Optimizer optimizer(opts);
  return optimizer.Optimize(analyzed);
}

Result<PhysicalPlanPtr> Session::PlanPhysical(
    const LogicalPlanPtr& optimized) const {
  PlannerOptions opts;
  opts.cluster = config_.cluster;
  opts.skyline_strategy = config_.skyline_strategy;
  opts.skyline_kernel = config_.skyline_kernel;
  opts.skyline_columnar = config_.skyline_columnar;
  opts.skyline_incomplete_parallel = config_.skyline_incomplete_parallel;
  opts.skyline_partitioning = config_.skyline_partitioning;
  opts.non_distributed_threshold = config_.non_distributed_threshold;
  PhysicalPlanner planner(opts);
  return planner.Plan(optimized);
}

Result<QueryResult> Session::Execute(const LogicalPlanPtr& plan) const {
  SL_ASSIGN_OR_RETURN(LogicalPlanPtr analyzed, Analyze(plan));
  SL_ASSIGN_OR_RETURN(LogicalPlanPtr optimized, Optimize(analyzed));
  SL_ASSIGN_OR_RETURN(PhysicalPlanPtr physical, PlanPhysical(optimized));

  ExecContext ctx(config_.cluster);
  StopWatch wall;
  SL_ASSIGN_OR_RETURN(PartitionedRelation rel, physical->Execute(&ctx));

  QueryResult result;
  result.attrs = rel.attrs;
  result.rows = std::move(rel).Flatten();
  result.metrics = ctx.Finish(wall.ElapsedMillis());
  return result;
}

Result<ExplainInfo> Session::Explain(const LogicalPlanPtr& plan) const {
  SL_ASSIGN_OR_RETURN(LogicalPlanPtr analyzed, Analyze(plan));
  SL_ASSIGN_OR_RETURN(LogicalPlanPtr optimized, Optimize(analyzed));
  SL_ASSIGN_OR_RETURN(PhysicalPlanPtr physical, PlanPhysical(optimized));
  ExplainInfo info;
  info.analyzed = analyzed->TreeString();
  info.optimized = optimized->TreeString();
  info.physical = physical->TreeString();
  return info;
}

}  // namespace sparkline
