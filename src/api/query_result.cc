#include "api/query_result.h"

#include <algorithm>

#include "common/string_util.h"

namespace sparkline {

std::string QueryMetrics::ToString() const {
  // Every field, every time, in a stable order (tests pin this format).
  // Conditional fields proved to hide regressions: a counter that silently
  // stopped printing looked identical to one that stopped counting.
  int64_t builds = 0;
  int64_t reuses = 0;
  for (const auto& [label, n] : matrix_builds) builds += n;
  for (const auto& [label, n] : matrix_reuses) reuses += n;
  return StrCat(
      "wall=", DoubleToString(wall_ms),
      "ms simulated=", DoubleToString(simulated_ms),
      "ms peak_mem=", peak_memory_bytes / (1 << 20),
      "MB dominance_tests=", dominance_tests,
      " merge_dom_tests=", merge_dominance_tests,
      " rows_shuffled=", rows_shuffled,
      " exchange_rows=", exchange_rows_shipped,
      " exchange_bytes=", exchange_bytes,
      " tasks_retried=", tasks_retried,
      " tasks_failed=", tasks_failed,
      " cache=", cache_hit ? "hit" : "miss",
      " cache_lookup=", DoubleToString(cache_lookup_ms),
      "ms cache_deltas=", cache_delta_maintained,
      " projection=", DoubleToString(projection_ms),
      "ms decode=", DoubleToString(decode_ms),
      "ms matrix_builds=", builds,
      " matrix_reuses=", reuses,
      " sfs_skipped=", sfs_rows_skipped,
      " sfs_stops=", sfs_early_stops,
      " bcast_points=", broadcast_filter_points,
      " parts_skipped=", partitions_skipped,
      " pruned_pre_gather=", rows_pruned_pre_gather,
      " rows_served=", rows_served,
      " bytes_served=", bytes_served);
}

std::string QueryResult::TraceJson() const {
  return TraceChromeJson(trace.get());
}

int64_t EstimatedRowsBytes(const std::vector<Row>& rows) {
  int64_t bytes = static_cast<int64_t>(sizeof(Row)) *
                  static_cast<int64_t>(rows.capacity());
  for (const auto& row : rows) {
    for (const auto& value : row) bytes += value.EstimatedBytes();
  }
  return bytes;
}

std::string QueryResult::ToString(size_t max_rows) const {
  const std::vector<Row>& rows = this->rows();
  std::vector<std::string> headers;
  headers.reserve(attrs.size());
  for (const auto& a : attrs) headers.push_back(a.name);

  const size_t shown = std::min(max_rows, rows.size());
  std::vector<std::vector<std::string>> cells(shown);
  std::vector<size_t> widths(headers.size());
  for (size_t c = 0; c < headers.size(); ++c) widths[c] = headers[c].size();
  for (size_t r = 0; r < shown; ++r) {
    cells[r].reserve(attrs.size());
    for (size_t c = 0; c < rows[r].size(); ++c) {
      cells[r].push_back(rows[r][c].ToString());
      widths[c] = std::max(widths[c], cells[r][c].size());
    }
  }

  auto rule = [&]() {
    std::string out = "+";
    for (size_t w : widths) out += std::string(w + 2, '-') + "+";
    return out + "\n";
  };
  auto line = [&](const std::vector<std::string>& vals) {
    std::string out = "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      std::string v = c < vals.size() ? vals[c] : "";
      out += " " + v + std::string(widths[c] - v.size() + 1, ' ') + "|";
    }
    return out + "\n";
  };

  std::string out = rule() + line(headers) + rule();
  for (size_t r = 0; r < shown; ++r) out += line(cells[r]);
  out += rule();
  if (rows.size() > shown) {
    out += StrCat("(showing ", shown, " of ", rows.size(), " rows)\n");
  }
  return out;
}

}  // namespace sparkline
