#include "api/dataframe.h"

#include "sql/parser.h"

namespace sparkline {

Schema DataFrame::schema() const {
  Schema s;
  for (const auto& a : plan_->output()) s.AddField(a.ToField());
  return s;
}

Result<DataFrame> DataFrame::WithPlan(LogicalPlanPtr plan) const {
  SL_ASSIGN_OR_RETURN(LogicalPlanPtr analyzed, session_->Analyze(plan));
  return DataFrame(session_, std::move(analyzed));
}

Result<DataFrame> DataFrame::Select(const std::vector<Col>& cols) const {
  std::vector<ExprPtr> list;
  list.reserve(cols.size());
  for (const auto& c : cols) list.push_back(c.expr());
  return WithPlan(Project::Make(std::move(list), plan_));
}

Result<DataFrame> DataFrame::Select(
    const std::vector<std::string>& names) const {
  std::vector<Col> cols;
  cols.reserve(names.size());
  for (const auto& n : names) cols.push_back(col(n));
  return Select(cols);
}

Result<DataFrame> DataFrame::Where(const Col& condition) const {
  return WithPlan(Filter::Make(condition.expr(), plan_));
}

Result<DataFrame> DataFrame::Where(const std::string& condition) const {
  SL_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpression(condition));
  return WithPlan(Filter::Make(std::move(cond), plan_));
}

namespace {
Result<JoinType> ParseJoinType(const std::string& how) {
  const std::string h = ToLower(how);
  if (h == "inner") return JoinType::kInner;
  if (h == "left" || h == "left_outer" || h == "leftouter") {
    return JoinType::kLeftOuter;
  }
  if (h == "cross") return JoinType::kCross;
  if (h == "semi" || h == "left_semi") return JoinType::kLeftSemi;
  if (h == "anti" || h == "left_anti") return JoinType::kLeftAnti;
  return Status::Invalid(StrCat("unknown join type '", how, "'"));
}
}  // namespace

Result<DataFrame> DataFrame::Join(const DataFrame& right, const Col& condition,
                                  const std::string& how) const {
  SL_ASSIGN_OR_RETURN(JoinType type, ParseJoinType(how));
  return WithPlan(
      Join::Make(plan_, right.plan(), type, condition.expr(), {}));
}

Result<DataFrame> DataFrame::Join(const DataFrame& right,
                                  const std::vector<std::string>& using_columns,
                                  const std::string& how) const {
  SL_ASSIGN_OR_RETURN(JoinType type, ParseJoinType(how));
  return WithPlan(
      Join::Make(plan_, right.plan(), type, nullptr, using_columns));
}

Result<DataFrame> DataFrame::Agg(const std::vector<Col>& groups,
                                 const std::vector<Col>& aggs) const {
  std::vector<ExprPtr> group_list;
  group_list.reserve(groups.size());
  for (const auto& g : groups) group_list.push_back(g.expr());
  std::vector<ExprPtr> agg_list = group_list;
  for (const auto& a : aggs) agg_list.push_back(a.expr());
  return WithPlan(
      Aggregate::Make(std::move(group_list), std::move(agg_list), plan_));
}

Result<DataFrame> DataFrame::OrderBy(
    const std::vector<SortOrder>& orders) const {
  return WithPlan(Sort::Make(orders, plan_));
}

Result<DataFrame> DataFrame::OrderBy(
    const std::vector<std::string>& names) const {
  std::vector<SortOrder> orders;
  orders.reserve(names.size());
  for (const auto& n : names) {
    orders.push_back(SortOrder{col(n).expr(), true, true});
  }
  return OrderBy(orders);
}

Result<DataFrame> DataFrame::Limit(int64_t n) const {
  if (n < 0) return Status::Invalid("LIMIT must be non-negative");
  return WithPlan(Limit::Make(n, plan_));
}

Result<DataFrame> DataFrame::Distinct() const {
  return WithPlan(Distinct::Make(plan_));
}

Result<DataFrame> DataFrame::Skyline(const std::vector<Col>& dimensions,
                                     bool distinct, bool complete) const {
  std::vector<ExprPtr> dims;
  dims.reserve(dimensions.size());
  for (const auto& d : dimensions) {
    if (d.expr()->kind() != ExprKind::kSkylineDimension) {
      return Status::Invalid(
          StrCat("skyline dimensions must be built with smin()/smax()/sdiff(),"
                 " got: ",
                 d.expr()->ToString()));
    }
    dims.push_back(d.expr());
  }
  return WithPlan(SkylineNode::Make(distinct, complete, std::move(dims), plan_));
}

Result<DataFrame> DataFrame::Skyline(
    const std::vector<std::pair<std::string, SkylineGoal>>& dimensions,
    bool distinct, bool complete) const {
  std::vector<Col> cols;
  cols.reserve(dimensions.size());
  for (const auto& [name, goal] : dimensions) {
    cols.push_back(Col(SkylineDimension::Make(col(name).expr(), goal)));
  }
  return Skyline(cols, distinct, complete);
}

Result<int64_t> DataFrame::Count() const {
  SL_ASSIGN_OR_RETURN(QueryResult result, Collect());
  return static_cast<int64_t>(result.num_rows());
}

}  // namespace sparkline
