// Column expression builders for the DataFrame API (paper section 5.8).
//
// smin() / smax() / sdiff() are the skyline-dimension builders the paper
// adds to Spark's columnar API:
//
//   df.Skyline({smin(col("price")), smax(col("user_rating"))});
#pragma once

#include <string>

#include "common/string_util.h"
#include "expr/expression.h"

namespace sparkline {

/// \brief A thin, composable wrapper around an (unresolved) expression.
class Col {
 public:
  explicit Col(ExprPtr expr) : expr_(std::move(expr)) {}

  const ExprPtr& expr() const { return expr_; }

  /// Names the column ("expr AS name").
  Col As(const std::string& name) const {
    return Col(Alias::Make(expr_, name));
  }

  Col IsNull() const { return Col(UnaryExpr::Make(UnaryOp::kIsNull, expr_)); }
  Col IsNotNull() const {
    return Col(UnaryExpr::Make(UnaryOp::kIsNotNull, expr_));
  }

  /// DESC marker for DataFrame::OrderBy.
  SortOrder Asc() const { return SortOrder{expr_, true, true}; }
  SortOrder Desc() const { return SortOrder{expr_, false, false}; }

 private:
  ExprPtr expr_;
};

#define SPARKLINE_COL_BINOP(op, opcode)                        \
  inline Col operator op(const Col& a, const Col& b) {         \
    return Col(BinaryExpr::Make(BinaryOp::opcode, a.expr(), b.expr())); \
  }
SPARKLINE_COL_BINOP(+, kAdd)
SPARKLINE_COL_BINOP(-, kSub)
SPARKLINE_COL_BINOP(*, kMul)
SPARKLINE_COL_BINOP(/, kDiv)
SPARKLINE_COL_BINOP(==, kEq)
SPARKLINE_COL_BINOP(!=, kNeq)
SPARKLINE_COL_BINOP(<, kLt)
SPARKLINE_COL_BINOP(<=, kLe)
SPARKLINE_COL_BINOP(>, kGt)
SPARKLINE_COL_BINOP(>=, kGe)
SPARKLINE_COL_BINOP(&&, kAnd)
SPARKLINE_COL_BINOP(||, kOr)
#undef SPARKLINE_COL_BINOP

inline Col operator!(const Col& a) {
  return Col(UnaryExpr::Make(UnaryOp::kNot, a.expr()));
}

/// References a column by (optionally qualified) name: col("o.price").
inline Col col(const std::string& name) {
  return Col(UnresolvedAttribute::Make(Split(name, '.')));
}

inline Col lit(int64_t v) { return Col(Literal::Make(Value::Int64(v))); }
inline Col lit(int v) { return lit(static_cast<int64_t>(v)); }
inline Col lit(double v) { return Col(Literal::Make(Value::Double(v))); }
inline Col lit(bool v) { return Col(Literal::Make(Value::Bool(v))); }
inline Col lit(const char* v) {
  return Col(Literal::Make(Value::String(v)));
}
inline Col lit(const std::string& v) {
  return Col(Literal::Make(Value::String(v)));
}
inline Col null_lit() { return Col(Literal::Make(Value::Null())); }

// --- skyline dimensions (paper section 5.8) --------------------------------

/// Minimized skyline dimension.
inline Col smin(const Col& c) {
  return Col(SkylineDimension::Make(c.expr(), SkylineGoal::kMin));
}
/// Maximized skyline dimension.
inline Col smax(const Col& c) {
  return Col(SkylineDimension::Make(c.expr(), SkylineGoal::kMax));
}
/// DIFF skyline dimension (tuples only compare within equal values).
inline Col sdiff(const Col& c) {
  return Col(SkylineDimension::Make(c.expr(), SkylineGoal::kDiff));
}

// --- aggregates --------------------------------------------------------------

inline Col Sum(const Col& c) {
  return Col(AggregateExpr::Make(AggFn::kSum, c.expr()));
}
inline Col Avg(const Col& c) {
  return Col(AggregateExpr::Make(AggFn::kAvg, c.expr()));
}
inline Col Min(const Col& c) {
  return Col(AggregateExpr::Make(AggFn::kMin, c.expr()));
}
inline Col Max(const Col& c) {
  return Col(AggregateExpr::Make(AggFn::kMax, c.expr()));
}
inline Col Count(const Col& c) {
  return Col(AggregateExpr::Make(AggFn::kCount, c.expr()));
}
inline Col CountDistinct(const Col& c) {
  return Col(AggregateExpr::Make(AggFn::kCount, c.expr(), /*distinct=*/true));
}
inline Col CountStar() {
  return Col(AggregateExpr::Make(AggFn::kCountStar, nullptr));
}

// --- scalar builtins -----------------------------------------------------------

inline Col IfNull(const Col& a, const Col& b) {
  return Col(FunctionCall::Make("ifnull", {a.expr(), b.expr()}));
}
inline Col Coalesce(const std::vector<Col>& cols) {
  std::vector<ExprPtr> args;
  args.reserve(cols.size());
  for (const auto& c : cols) args.push_back(c.expr());
  return Col(FunctionCall::Make("coalesce", std::move(args)));
}
inline Col Abs(const Col& c) {
  return Col(FunctionCall::Make("abs", {c.expr()}));
}

}  // namespace sparkline
