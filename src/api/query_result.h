// Query results: rows plus the metrics the paper's evaluation reports.
#pragma once

#include <string>
#include <vector>

#include "exec/exec_context.h"
#include "expr/expression.h"
#include "types/schema.h"
#include "types/value.h"

namespace sparkline {

/// \brief A fully materialized query result.
struct QueryResult {
  std::vector<Attribute> attrs;
  std::vector<Row> rows;
  QueryMetrics metrics;

  Schema schema() const {
    Schema s;
    for (const auto& a : attrs) s.AddField(a.ToField());
    return s;
  }

  size_t num_rows() const { return rows.size(); }

  /// ASCII table rendering (up to `max_rows` rows).
  std::string ToString(size_t max_rows = 20) const;
};

}  // namespace sparkline
