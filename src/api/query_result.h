// Query results: rows plus the metrics the paper's evaluation reports.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "exec/exec_context.h"
#include "expr/expression.h"
#include "types/schema.h"
#include "types/value.h"

namespace sparkline {

/// \brief A fully materialized query result.
///
/// Ownership: rows are held as a shared *immutable* snapshot. Executing a
/// query produces a snapshot owned solely by its QueryResult; a result-cache
/// hit aliases the snapshot stored in the cache — no deep copy is made on
/// the hit path, and the same snapshot may back many concurrent results.
/// Callers must therefore never mutate rows() in place; copy first if a
/// mutable row set is needed.
struct QueryResult {
  std::vector<Attribute> attrs;
  QueryMetrics metrics;
  /// The query's span tree (root "query" span, one child per stage, one
  /// grandchild per partition task). Null when tracing is disabled
  /// (sparkline.trace.enabled = false) or the rows came from the result
  /// cache (no execution happened). Shared: cache-hit results alias nothing
  /// here, but copies of a QueryResult share one immutable tree.
  std::shared_ptr<const TraceSpan> trace;

  /// Chrome trace-event JSON of `trace` (loadable in chrome://tracing /
  /// Perfetto); empty string when there is no trace.
  std::string TraceJson() const;

  /// The result rows (empty before SetRows).
  const std::vector<Row>& rows() const {
    static const std::vector<Row> kEmpty;
    return rows_ == nullptr ? kEmpty : *rows_;
  }

  /// The underlying shared snapshot (null before SetRows). The cache stores
  /// this pointer directly, which is what makes hits zero-copy.
  const std::shared_ptr<const std::vector<Row>>& shared_rows() const {
    return rows_;
  }

  /// Takes sole ownership of freshly produced rows.
  void SetRows(std::vector<Row> rows) {
    rows_ = std::make_shared<const std::vector<Row>>(std::move(rows));
  }
  /// Aliases an existing (e.g. cached) snapshot.
  void SetRows(std::shared_ptr<const std::vector<Row>> rows) {
    rows_ = std::move(rows);
  }

  Schema schema() const {
    Schema s;
    for (const auto& a : attrs) s.AddField(a.ToField());
    return s;
  }

  size_t num_rows() const { return rows_ == nullptr ? 0 : rows_->size(); }

  /// ASCII table rendering (up to `max_rows` rows).
  std::string ToString(size_t max_rows = 20) const;

 private:
  std::shared_ptr<const std::vector<Row>> rows_;
};

/// Approximate in-memory footprint of a row set (Value::EstimatedBytes of
/// every cell + vector overhead); used for cache byte budgeting and the
/// bytes_served metric.
int64_t EstimatedRowsBytes(const std::vector<Row>& rows);

}  // namespace sparkline
