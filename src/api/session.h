// Session: the user-facing entry point (SparkSession analog).
//
//   Session session;
//   session.catalog()->RegisterTable(hotels);
//   auto df = session.Sql("SELECT * FROM hotels "
//                         "SKYLINE OF price MIN, rating MAX");
//   auto result = df->Collect();
//
// Configuration keys (Session::SetConf):
//   sparkline.executors                     int, number of executors
//   sparkline.skyline.strategy              auto | distributed |
//                                           non_distributed | incomplete |
//                                           reference
//   sparkline.timeout_ms                    per-query timeout (0 = none)
//   sparkline.memory.executorOverheadMb     simulated per-executor footprint
//   sparkline.skyline.kernel                bnl | sfs | grid
//   sparkline.skyline.columnar              bool, columnar dominance fast path
//   sparkline.skyline.exchange.columnar     bool, ship DominanceMatrix batches
//                                           between skyline stages
//   sparkline.skyline.incomplete.parallel   bool, round-based parallel
//                                           incomplete global stage
//   sparkline.skyline.broadcast_filter      bool, pre-gather broadcast-filter
//                                           pruning (two-phase pruning, 1)
//   sparkline.scan.zone_maps                bool, per-partition zone maps +
//                                           partition skipping (phase 2)
//   sparkline.skyline.partitioning          asis | roundrobin | angle
//   sparkline.skyline.nonDistributedThreshold  rows; 0 disables (section 7)
//   sparkline.optimizer.singleDimRewrite    bool
//   sparkline.optimizer.skylineJoinPushdown bool
//   sparkline.optimizer.filterPushdown      bool
//   sparkline.optimizer.constantFolding     bool
//   sparkline.optimizer.columnPruning       bool
//   sparkline.cache.enabled                 bool, fingerprinted result cache
//   sparkline.cache.capacity_bytes          cache byte budget
//   sparkline.cache.ttl_ms                  entry TTL (0 = none)
//   sparkline.cache.incremental             bool, delta-maintain cached
//                                           skylines under InsertInto
//                                           instead of invalidating
//   sparkline.cache.max_delta_batch         rows; inserts larger than this
//                                           invalidate instead of classify
//   sparkline.serve.max_concurrent          query-service threads /
//                                           admission base
//   sparkline.exec.task_retries             per-task retry budget for
//                                           transient (Unavailable) failures
//   sparkline.exec.retry_backoff_ms         initial retry backoff (doubles
//                                           per attempt)
//   sparkline.exec.memory_limit_bytes       per-query memory ceiling
//                                           (0 = unlimited); exceeding it
//                                           fails with ResourceExhausted
//   sparkline.failpoints                    fault-injection spec, e.g.
//                                           "exec.scan=error*2;
//                                            exec.exchange=delay:5" —
//                                           empty disarms all (testing only)
//   sparkline.trace.enabled                 bool, record per-query trace
//                                           spans (QueryResult::TraceJson)
//   sparkline.log.slow_query_ms             wall-clock threshold above which
//                                           a query emits one structured
//                                           slow-query log line (0 = off)
#pragma once

#include <future>
#include <memory>
#include <string>

#include "analysis/analyzer.h"
#include "api/query_result.h"
#include "catalog/catalog.h"
#include "common/thread_safety.h"
#include "exec/planner.h"
#include "optimizer/optimizer.h"
#include "serve/incremental.h"
#include "serve/query_service.h"
#include "serve/result_cache.h"

namespace sparkline {

class DataFrame;

/// \brief Session configuration (see header comment for the string keys).
struct SessionConfig {
  ClusterConfig cluster;
  SkylineStrategy skyline_strategy = SkylineStrategy::kAuto;
  /// Run skylines via the plain-SQL rewriting (the "reference" algorithm).
  bool skyline_reference = false;
  /// Skyline kernel: Block-Nested-Loop (paper), Sort-Filter-Skyline
  /// (the paper's future-work presorting family) or grid-based cell
  /// pruning (Tang et al., paper section 2). Key:
  /// sparkline.skyline.kernel = bnl | sfs | grid.
  SkylineKernel skyline_kernel = SkylineKernel::kBlockNestedLoop;
  /// Columnar dominance fast path (structure-of-arrays projection +
  /// index-based kernels; see skyline/columnar.h). Results are identical
  /// with the toggle on or off. Key: sparkline.skyline.columnar = bool.
  bool skyline_columnar = true;
  /// Columnar exchange: skyline stages ship DominanceMatrix batch views
  /// instead of materialized rows — each partition is projected exactly
  /// once, the gather exchange concatenates matrix blocks, global stages
  /// slice index views, and rows decode only at the plan root. Off = every
  /// stage re-projects (the pre-exchange behaviour, kept for ablation).
  /// Result *sets* are identical either way; SKYLINE row order is
  /// unspecified and may differ. Requires skyline_columnar. Key:
  /// sparkline.skyline.exchange.columnar = bool.
  bool skyline_columnar_exchange = true;
  /// Round-based parallel incomplete-data global stage (candidate scan per
  /// chunk + rotating validation rounds; see GlobalSkylineIncompleteExec).
  /// Off = the paper's single-task all-pairs. Results are identical with
  /// the toggle on or off. Key: sparkline.skyline.incomplete.parallel.
  bool skyline_incomplete_parallel = true;
  /// Phase one of two-phase distributed pruning: after the local skyline
  /// stage, each partition nominates its SaLSa minmax-best points; the
  /// union travels as a tiny broadcast filter and every partition prunes
  /// its local skyline against it *before* the gather exchange pays for
  /// shipping the rows. Strict-only elimination keeps results
  /// bit-identical with the phase off; ineligible shapes (NULLs, DIFF
  /// dims, row-mode partitions) pass through. Key:
  /// sparkline.skyline.broadcast_filter.
  bool skyline_broadcast_filter = true;
  /// Phase two: scans build per-partition zone maps (per-column min/max +
  /// null counts, maintained incrementally on INSERT); the local skyline
  /// stage drops whole partitions whose best corner is strictly dominated
  /// by another partition's worst corner, before projection. Auto-disables
  /// under incomplete dominance and for non-numeric/NULL/DIFF dimensions.
  /// Key: sparkline.scan.zone_maps.
  bool scan_zone_maps = true;
  /// Local-stage partitioning for complete data. Key:
  /// sparkline.skyline.partitioning = asis | roundrobin | angle.
  SkylinePartitioning skyline_partitioning = SkylinePartitioning::kAsIs;
  /// SaLSa-style early termination for the SFS family (stop at the minC
  /// stop point; the global merge inherits the tightest per-partition bound
  /// through the columnar exchange). Auto-disabled for incomplete/NULL
  /// data and strict-only, so results are identical with the toggle on or
  /// off (DISTINCT included). Key: sparkline.skyline.sfs.early_stop.
  bool skyline_sfs_early_stop = true;
  /// Monotone SFS sort key: "sum" (the pre-existing score order) or
  /// "minmax" (SaLSa's minC function — the key whose stop bound is tight).
  /// Key: sparkline.skyline.sfs.sort_key.
  skyline::SfsSortKey skyline_sfs_sort_key = skyline::SfsSortKey::kSum;
  /// Cost-based refinement threshold (section 7 future work). Key:
  /// sparkline.skyline.nonDistributedThreshold (rows; 0 = off).
  int64_t non_distributed_threshold = 0;
  OptimizerOptions optimizer;

  // --- serve layer (src/serve) ---------------------------------------------
  /// Fingerprinted result cache around Execute. Results served from the
  /// cache are bit-identical to uncached execution; hits are marked in
  /// QueryMetrics (cache_hit, "[cache-hit]" stage). Key:
  /// sparkline.cache.enabled.
  bool cache_enabled = false;
  /// Cache byte budget, charged through a MemoryTracker. Key:
  /// sparkline.cache.capacity_bytes.
  int64_t cache_capacity_bytes = 256ll << 20;
  /// Cache entry TTL in ms (0 = no expiry). Key: sparkline.cache.ttl_ms.
  int64_t cache_ttl_ms = 0;
  /// Incremental maintenance: InsertInto advances affected cached skylines
  /// by classifying the inserted batch against the cached result
  /// (serve/incremental.h) instead of invalidating them. Off = every write
  /// invalidates (the pre-maintenance behaviour). Results are bit-identical
  /// either way. Key: sparkline.cache.incremental.
  bool cache_incremental = true;
  /// Inserts with more rows than this fall back to invalidation (delta
  /// classification is O((|skyline|+|batch|)*|batch|); recomputing once
  /// beats classifying a huge batch). Key: sparkline.cache.max_delta_batch.
  int64_t cache_max_delta_batch = 1024;
  /// Query-service threads (= max concurrently executing queries; the
  /// admission cap defaults to 4x this). Read when the service is first
  /// used. Key: sparkline.serve.max_concurrent.
  int serve_max_concurrent = 4;

  // --- observability --------------------------------------------------------
  /// Queries whose wall-clock time is at or above this threshold emit one
  /// structured slow-query log line (fingerprint, table versions, stage
  /// breakdown, cache disposition) and count into
  /// sparkline_slow_queries_total. 0 disables the log. Key:
  /// sparkline.log.slow_query_ms.
  int64_t log_slow_query_ms = 0;
};

/// \brief Per-query EXPLAIN output: the plan after each pipeline stage of
/// Figure 2.
struct ExplainInfo {
  std::string analyzed;
  std::string optimized;
  std::string physical;

  std::string ToString() const;
};

class Session {
 public:
  Session() : Session(SessionConfig{}) {}
  explicit Session(SessionConfig config);

  Catalog* catalog() { return catalog_.get(); }
  const SessionConfig& config() const { return config_; }
  SessionConfig* mutable_config() { return &config_; }

  /// String-keyed configuration, Spark-style. Not synchronized with query
  /// execution: configure before serving — calling SetConf while SqlAsync
  /// queries are in flight races with their config reads. (The cache's
  /// capacity/TTL knobs are safe to adjust at runtime through an already
  /// created cache(), which is internally synchronized.)
  Status SetConf(const std::string& key, const std::string& value);

  /// Parses SQL into a DataFrame (lazily executed).
  Result<DataFrame> Sql(const std::string& sql);

  /// Submits SQL to the session's QueryService: parse/analyze/execute run
  /// on a service thread and the result arrives through the future.
  /// Rejects immediately with Status::Unavailable past the admission cap.
  Result<std::future<Result<QueryResult>>> SqlAsync(const std::string& sql);

  /// Like SqlAsync but returns the full handle, whose Cancel() sheds the
  /// query from the service queue or interrupts its execution.
  Result<serve::QueryHandle> SqlSubmit(const std::string& sql);

  /// The lazily created serving front-end (created with the
  /// sparkline.serve.max_concurrent in effect at first use).
  serve::QueryService* service();

  /// The lazily created result cache (also created when a cache-enabled
  /// Execute first runs). Never null.
  serve::ResultCache* cache() const;

  /// The lazily created incremental-maintenance engine (created together
  /// with the cache; also drives Subscribe). Never null.
  serve::IncrementalMaintainer* maintainer() const;

  /// Registers a continuous skyline query: the callback fires immediately
  /// with the full current skyline (a resync delta), then once per catalog
  /// write that changes the result, on the catalog's notifier thread. The
  /// query must be a maintainable skyline (single table, Filter/Project
  /// pipeline, complete dominance) — anything else is Status::Invalid.
  /// Returns the subscription id for Unsubscribe.
  Result<uint64_t> Subscribe(const std::string& sql,
                             serve::SubscriptionCallback callback);
  Status Unsubscribe(uint64_t id);

  /// A DataFrame over a registered table.
  Result<DataFrame> Table(const std::string& name);

  /// A DataFrame over in-memory rows.
  Result<DataFrame> CreateDataFrame(const Schema& schema,
                                    std::vector<Row> rows);

  // --- pipeline entry points (used by DataFrame; available to tests) -------
  Result<LogicalPlanPtr> Analyze(const LogicalPlanPtr& plan) const;
  Result<LogicalPlanPtr> Optimize(const LogicalPlanPtr& analyzed) const;
  Result<PhysicalPlanPtr> PlanPhysical(const LogicalPlanPtr& optimized) const;
  /// Analyze + optimize + plan + execute.
  Result<QueryResult> Execute(const LogicalPlanPtr& plan) const;
  /// Same, with a cooperative cancellation token installed on the query's
  /// ExecContext: Cancel() makes every kernel loop and stage boundary
  /// return Status::Cancelled at the next check. A null token means
  /// "not cancellable".
  Result<QueryResult> Execute(const LogicalPlanPtr& plan,
                              const CancellationTokenPtr& cancel) const;
  Result<ExplainInfo> Explain(const LogicalPlanPtr& plan) const;

  /// Prometheus-style text exposition of the process-wide metrics registry
  /// (counters, gauges, histograms from every layer: serve, cache,
  /// incremental maintenance, catalog, execution). The registry is shared
  /// across sessions in the process; this is merely the convenient scrape
  /// point.
  std::string MetricsText() const;

 private:
  /// Optimize + plan + execute `analyzed`, bypassing the result cache; the
  /// shared tail of the cache-miss path and EXPLAIN ANALYZE (which must
  /// measure a real execution, never a cached one). When `physical_out` is
  /// non-null the physical plan is handed back for rendering.
  Result<QueryResult> ExecuteUncached(const LogicalPlanPtr& analyzed,
                                      const CancellationTokenPtr& cancel,
                                      PhysicalPlanPtr* physical_out) const;

  /// Emits the structured slow-query line (and counts it) when the query's
  /// wall time reaches config_.log_slow_query_ms (> 0).
  void MaybeLogSlowQuery(const serve::PlanFingerprint& fp,
                         const QueryMetrics& metrics,
                         const char* cache_disposition) const;

  std::shared_ptr<Catalog> catalog_;
  SessionConfig config_;

  // Serve layer, created lazily (and guarded) because Execute is const and
  // sessions without caching/async use should pay nothing. Destruction
  // order matters: service_ runs queries against this session, so it is
  // declared last and therefore destroyed first.
  mutable sl::Mutex serve_mu_;
  mutable std::shared_ptr<serve::ResultCache> cache_ SL_GUARDED_BY(serve_mu_);
  /// Created with cache_ (the write listener holds both weakly); shared so
  /// in-flight notifier dispatches survive session teardown.
  mutable std::shared_ptr<serve::IncrementalMaintainer> maintainer_
      SL_GUARDED_BY(serve_mu_);
  std::unique_ptr<serve::QueryService> service_ SL_GUARDED_BY(serve_mu_);
};

}  // namespace sparkline
