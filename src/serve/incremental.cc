#include "serve/incremental.h"

#include <algorithm>
#include <map>
#include <utility>

#include "api/query_result.h"
#include "common/failpoint.h"
#include "common/string_util.h"
#include "expr/evaluator.h"
#include "skyline/algorithms.h"
#include "skyline/columnar.h"
#include "types/value.h"

namespace sparkline {
namespace serve {

namespace {

/// Deterministic, row-local expressions only: everything a Filter/Project
/// between scan and skyline may evaluate against a single inserted row.
/// Subqueries, aggregates and unresolved nodes disqualify the plan (they
/// read state beyond the row, so replaying them against a batch would
/// diverge from a fresh execution).
bool WhitelistedExpr(const ExprPtr& e) {
  if (e == nullptr || !e->resolved()) return false;
  switch (e->kind()) {
    case ExprKind::kLiteral:
    case ExprKind::kAttributeRef:
    case ExprKind::kBoundReference:
    case ExprKind::kAlias:
    case ExprKind::kBinary:
    case ExprKind::kUnary:
    case ExprKind::kCast:
    case ExprKind::kFunctionCall:
    case ExprKind::kSkylineDimension:
      break;
    default:
      return false;
  }
  for (const ExprPtr& child : e->children()) {
    if (!WhitelistedExpr(child)) return false;
  }
  return true;
}

skyline::SkylineOptions RecipeOptions(const DeltaRecipe& recipe) {
  skyline::SkylineOptions options;
  options.distinct = recipe.distinct;
  // Maintainable recipes are complete-semantics by construction (COMPLETE
  // declared, or no nullable dimension) — the planner's own strategy rule.
  options.nulls = skyline::NullSemantics::kComplete;
  return options;
}

}  // namespace

std::shared_ptr<const DeltaRecipe> BuildDeltaRecipe(
    const LogicalPlanPtr& analyzed, uint64_t* snapshot_version) {
  if (analyzed == nullptr || analyzed->kind() != PlanKind::kSkyline) {
    return nullptr;
  }
  const auto& sky = static_cast<const SkylineNode&>(*analyzed);

  // Planner strategy rule (exec/planner.cc): complete semantics iff COMPLETE
  // was declared or no dimension is nullable. Incomplete dominance is not
  // transitive, so the cached skyline is not a sufficient witness set.
  bool any_nullable = false;
  for (const ExprPtr& d : sky.dimensions()) {
    if (d == nullptr || d->kind() != ExprKind::kSkylineDimension ||
        !WhitelistedExpr(d)) {
      return nullptr;
    }
    const auto& dim = static_cast<const SkylineDimension&>(*d);
    if (dim.child() == nullptr || dim.child()->nullable()) any_nullable = true;
  }
  if (!sky.complete() && any_nullable) return nullptr;

  // Only Scan -> Filter*/Project* -> Skyline chains map inserted table rows
  // 1:1 onto skyline input. Anything else (joins, aggregates, sorts, limits,
  // DISTINCT nodes, nested skylines, inline relations) is invalidation-only.
  std::vector<const LogicalPlan*> chain;  // top-down, skyline's child first
  const LogicalPlan* node = sky.child().get();
  while (node != nullptr) {
    switch (node->kind()) {
      case PlanKind::kSubqueryAlias:
        node = static_cast<const SubqueryAlias*>(node)->child().get();
        continue;
      case PlanKind::kFilter:
        chain.push_back(node);
        node = static_cast<const Filter*>(node)->child().get();
        continue;
      case PlanKind::kProject:
        chain.push_back(node);
        node = static_cast<const Project*>(node)->child().get();
        continue;
      case PlanKind::kScan:
        break;
      default:
        return nullptr;
    }
    break;
  }
  if (node == nullptr || node->kind() != PlanKind::kScan) return nullptr;
  const auto& scan = static_cast<const Scan&>(*node);
  if (scan.table() == nullptr) return nullptr;

  auto recipe = std::make_shared<DeltaRecipe>();
  recipe->table = ToLower(scan.table()->name());
  recipe->scan_columns = scan.column_indices();

  // Bind the pipeline bottom-up, tracking the attribute layout like the
  // executor does.
  std::vector<Attribute> attrs = scan.output();
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    DeltaRecipe::Step step;
    if ((*it)->kind() == PlanKind::kFilter) {
      const auto& filter = static_cast<const Filter&>(**it);
      if (!WhitelistedExpr(filter.condition())) return nullptr;
      auto bound = BindExpression(filter.condition(), attrs);
      if (!bound.ok()) return nullptr;
      step.is_filter = true;
      step.predicate = std::move(bound).MoveValue();
    } else {
      const auto& project = static_cast<const Project&>(**it);
      for (const ExprPtr& e : project.list()) {
        if (!WhitelistedExpr(e)) return nullptr;
        auto bound = BindExpression(e, attrs);
        if (!bound.ok()) return nullptr;
        step.exprs.push_back(std::move(bound).MoveValue());
      }
      attrs = project.output();
    }
    recipe->steps.push_back(std::move(step));
  }

  // Dimensions must bind to plain columns of the final layout; the planner
  // gives computed dimensions helper projections, so after analysis a direct
  // BoundReference is the common case and anything else bails out.
  for (const ExprPtr& d : sky.dimensions()) {
    const auto& dim = static_cast<const SkylineDimension&>(*d);
    auto bound = BindExpression(dim.child(), attrs);
    if (!bound.ok() || (*bound)->kind() != ExprKind::kBoundReference) {
      return nullptr;
    }
    const auto& ref = static_cast<const BoundReference&>(**bound);
    recipe->dims.push_back(skyline::BoundDimension{ref.ordinal(), dim.goal()});
  }
  if (!skyline::CheckDimensionLimit(recipe->dims).ok()) return nullptr;

  recipe->distinct = sky.distinct();
  recipe->width = attrs.size();
  if (snapshot_version != nullptr) {
    *snapshot_version = scan.table()->version();
  }
  return recipe;
}

Result<std::vector<Row>> ApplyRecipe(const DeltaRecipe& recipe,
                                     const std::vector<Row>& table_rows) {
  std::vector<Row> out;
  out.reserve(table_rows.size());
  for (const Row& table_row : table_rows) {
    Row row;
    row.reserve(recipe.scan_columns.size());
    for (size_t col : recipe.scan_columns) {
      if (col >= table_row.size()) {
        return Status::Internal(
            StrCat("delta recipe scan column ", col, " out of range for a ",
                   table_row.size(), "-column inserted row"));
      }
      row.push_back(table_row[col]);
    }
    bool keep = true;
    for (const DeltaRecipe::Step& step : recipe.steps) {
      if (step.is_filter) {
        SL_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*step.predicate, row));
        if (!pass) {
          keep = false;
          break;
        }
      } else {
        Row next;
        next.reserve(step.exprs.size());
        for (const ExprPtr& e : step.exprs) {
          SL_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, row));
          next.push_back(std::move(v));
        }
        row = std::move(next);
      }
    }
    if (!keep) continue;
    if (row.size() != recipe.width) {
      return Status::Internal("delta recipe produced a row of wrong width");
    }
    out.push_back(std::move(row));
  }
  return out;
}

namespace {
metrics::Counter* FallbackCounter(const char* reason) {
  return metrics::MetricsRegistry::Global().GetCounter(
      "sparkline_incremental_fallbacks_total", {{"reason", reason}});
}
}  // namespace

IncrementalMaintainer::IncrementalMaintainer(Catalog* catalog,
                                             std::shared_ptr<ResultCache> cache)
    : catalog_(catalog),
      cache_(std::move(cache)),
      maintained_counter_(metrics::MetricsRegistry::Global().GetCounter(
          "sparkline_incremental_maintained_total")),
      fb_oversized_batch_(FallbackCounter("oversized_batch")),
      fb_no_recipe_(FallbackCounter("no_recipe")),
      fb_version_gap_(FallbackCounter("version_gap")),
      fb_classify_unsound_(FallbackCounter("classify_unsound")),
      fb_apply_error_(FallbackCounter("apply_error")) {}

void IncrementalMaintainer::OnWrite(const WriteEvent& event) {
  const bool insert =
      event.kind == WriteEvent::Kind::kInsert && event.rows != nullptr;
  const bool incremental =
      enabled_.load() && insert &&
      static_cast<int64_t>(event.rows->size()) <= max_delta_batch_.load();
  if (!incremental) {
    if (insert && enabled_.load()) {
      // An oversized batch is a policy fallback, not an invalidation the
      // write would have forced anyway; count it per affected entry.
      const int64_t affected =
          static_cast<int64_t>(cache_->EntriesForTable(event.table).size());
      fallbacks_.fetch_add(affected);
      fb_oversized_batch_->Increment(affected);
    }
    cache_->InvalidateTable(event.table);
  } else {
    for (const auto& entry : cache_->EntriesForTable(event.table)) {
      MaintainEntry(entry, event);
    }
  }

  // Subscriptions advance for every write kind — a drop or replace resyncs.
  // State updates happen under subs_mu_, but callbacks are invoked after it
  // is released: a callback may take arbitrary user locks, and holding
  // subs_mu_ across it would order those locks behind ours (deadlock bait
  // with any thread that holds a user lock while calling Subscribe /
  // Unsubscribe). Per-subscription delta order still equals version order —
  // there is a single notifier thread.
  std::vector<std::pair<std::shared_ptr<SubscriptionCallback>, SkylineDelta>>
      deliveries;
  {
    sl::MutexLock lock(&subs_mu_);
    for (auto& [id, sub] : subs_) {
      if (sub.recipe->table != event.table) continue;
      std::optional<SkylineDelta> delta = AdvanceSubscription(&sub, event);
      if (delta.has_value()) {
        deliveries.emplace_back(sub.callback, *std::move(delta));
      }
    }
  }
  for (auto& [callback, delta] : deliveries) (*callback)(delta);
}

void IncrementalMaintainer::MaintainEntry(
    const std::shared_ptr<const CachedResult>& entry, const WriteEvent& event) {
  if (entry->recipe == nullptr || entry->recipe->table != event.table) {
    // The plan shape is invalidation-only (no recipe was buildable).
    cache_->Remove(entry->fingerprint, entry);
    fallbacks_.fetch_add(1);
    fb_no_recipe_->Increment();
    return;
  }
  if (entry->table_version != event.old_version) {
    // The entry reflects a different snapshot than the one this write
    // replaced (gapped/out-of-order observation): fall back.
    cache_->Remove(entry->fingerprint, entry);
    fallbacks_.fetch_add(1);
    fb_version_gap_->Increment();
    return;
  }
  Status status;
  const char* reason = "apply_error";
  try {
    status = ApplyDelta(entry, event, &reason);
  } catch (const std::exception& e) {
    // Injected "throw" faults (serve.delta_apply) and any classification bug
    // degrade to invalidation — the notifier thread must never die.
    status = Status::Internal(e.what());
  }
  if (!status.ok()) {
    cache_->Remove(entry->fingerprint, entry);
    fallbacks_.fetch_add(1);
    (reason == std::string("classify_unsound") ? fb_classify_unsound_
                                               : fb_apply_error_)
        ->Increment();
  }
}

Status IncrementalMaintainer::ApplyDelta(
    const std::shared_ptr<const CachedResult>& entry, const WriteEvent& event,
    const char** fallback_reason) {
  SL_FAILPOINT("serve.delta_apply");
  const DeltaRecipe& recipe = *entry->recipe;
  SL_ASSIGN_OR_RETURN(std::vector<Row> batch,
                      ApplyRecipe(recipe, *event.rows));

  const skyline::SkylineOptions options = RecipeOptions(recipe);
  SL_ASSIGN_OR_RETURN(
      skyline::DeltaClassification delta,
      skyline::DeltaClassify(*entry->rows, batch, recipe.dims, options));
  if (delta.needs_fallback) {
    *fallback_reason = "classify_unsound";
    return Status::Invalid("delta batch is not incrementally classifiable");
  }

  std::shared_ptr<const std::vector<Row>> rows;
  const bool unchanged = delta.entering.empty() && delta.evicted.empty();
  if (unchanged) {
    rows = entry->rows;  // re-key only; share the snapshot
  } else {
    auto next_rows = std::make_shared<std::vector<Row>>();
    next_rows->reserve(entry->rows->size() - delta.evicted.size() +
                       delta.entering.size());
    size_t evicted_pos = 0;  // `evicted` is ascending by construction
    for (size_t i = 0; i < entry->rows->size(); ++i) {
      if (evicted_pos < delta.evicted.size() &&
          delta.evicted[evicted_pos] == static_cast<uint32_t>(i)) {
        ++evicted_pos;
        continue;
      }
      next_rows->push_back((*entry->rows)[i]);
    }
    for (uint32_t idx : delta.entering) {
      next_rows->push_back(batch[idx]);
    }
    rows = std::move(next_rows);
  }

  // Re-key: the canonical form embeds the scanned snapshot's version, so the
  // successor must be stored under the fingerprint a post-write execution
  // would compute. The trailing comma keeps "@1," from matching "@12,".
  const std::string old_tag =
      StrCat("scan(", recipe.table, "@", entry->table_version, ",");
  const std::string new_tag =
      StrCat("scan(", recipe.table, "@", event.new_version, ",");
  std::string canonical = entry->fingerprint.canonical;
  size_t pos = canonical.find(old_tag);
  if (pos == std::string::npos) {
    return Status::Internal(
        StrCat("cached canonical form lacks the expected scan tag ", old_tag));
  }
  while (pos != std::string::npos) {
    canonical.replace(pos, old_tag.size(), new_tag);
    pos = canonical.find(old_tag, pos + new_tag.size());
  }

  auto next = std::make_shared<CachedResult>();
  next->attrs = entry->attrs;
  next->rows = std::move(rows);
  next->bytes = unchanged ? entry->bytes : EstimatedRowsBytes(*next->rows);
  next->fingerprint = FingerprintFromCanonical(std::move(canonical),
                                               entry->fingerprint.tables);
  next->recipe = entry->recipe;
  next->table_version = event.new_version;
  next->delta_count = entry->delta_count + 1;

  // A lost CAS means a concurrent insert already published an entry for the
  // (table, version) pair this successor describes — nothing to do.
  cache_->Replace(entry->fingerprint, entry, std::move(next));
  maintained_.fetch_add(1);
  maintained_counter_->Increment();
  return Status::OK();
}

std::optional<SkylineDelta> IncrementalMaintainer::AdvanceSubscription(
    Subscription* sub, const WriteEvent& event) {
  if (event.new_version <= sub->version) return std::nullopt;

  const bool insert =
      event.kind == WriteEvent::Kind::kInsert && event.rows != nullptr;
  if (insert && event.old_version == sub->version && enabled_.load() &&
      static_cast<int64_t>(event.rows->size()) <= max_delta_batch_.load()) {
    const DeltaRecipe& recipe = *sub->recipe;
    auto batch_result = ApplyRecipe(recipe, *event.rows);
    if (batch_result.ok()) {
      std::vector<Row> batch = std::move(batch_result).MoveValue();
      auto classified = skyline::DeltaClassify(sub->skyline, batch, recipe.dims,
                                               RecipeOptions(recipe));
      if (classified.ok() && !(*classified).needs_fallback) {
        const skyline::DeltaClassification& delta = *classified;
        SkylineDelta out;
        out.table = event.table;
        out.version = event.new_version;
        out.resync = false;
        for (uint32_t idx : delta.evicted) {
          out.removed.push_back(sub->skyline[idx]);
        }
        for (uint32_t idx : delta.entering) {
          out.added.push_back(batch[idx]);
        }
        std::vector<Row> next;
        next.reserve(sub->skyline.size() - delta.evicted.size() +
                     delta.entering.size());
        size_t evicted_pos = 0;
        for (size_t i = 0; i < sub->skyline.size(); ++i) {
          if (evicted_pos < delta.evicted.size() &&
              delta.evicted[evicted_pos] == static_cast<uint32_t>(i)) {
            ++evicted_pos;
            continue;
          }
          next.push_back(sub->skyline[i]);
        }
        for (uint32_t idx : delta.entering) next.push_back(batch[idx]);
        sub->skyline = std::move(next);
        sub->version = event.new_version;
        if (out.added.empty() && out.removed.empty()) return std::nullopt;
        deltas_delivered_.fetch_add(1);
        return out;
      }
    }
  }

  resyncs_.fetch_add(1);
  SkylineDelta delta = ResyncSubscription(sub, event.table);
  // A recompute that changed nothing (e.g. an oversized batch of dominated
  // tuples) still advanced the version but has nothing to report.
  if (delta.added.empty() && delta.removed.empty()) return std::nullopt;
  deltas_delivered_.fetch_add(1);
  return delta;
}

SkylineDelta IncrementalMaintainer::ResyncSubscription(
    Subscription* sub, const std::string& table) {
  SkylineDelta out;
  out.table = table;
  out.resync = true;

  std::vector<Row> next;
  uint64_t version = catalog_->TableVersion(table);
  auto table_result = catalog_->GetTable(table);
  if (table_result.ok()) {
    const TablePtr& snapshot = *table_result;
    version = snapshot->version();
    auto input = ApplyRecipe(*sub->recipe, snapshot->rows());
    if (input.ok()) {
      next = skyline::BruteForceSkyline(*input, sub->recipe->dims,
                                        RecipeOptions(*sub->recipe));
    }
  }
  // A dropped table (or a recipe the rows no longer satisfy) reads as an
  // empty skyline; the version still advances so stale events stay skipped.
  out.version = version;

  // Multiset diff old -> next (row printing is a total key for Values).
  std::map<std::string, int> counts;
  for (const Row& row : next) ++counts[RowToString(row)];
  for (const Row& row : sub->skyline) {
    auto it = counts.find(RowToString(row));
    if (it != counts.end() && it->second > 0) {
      --it->second;
    } else {
      out.removed.push_back(row);
    }
  }
  counts.clear();
  for (const Row& row : sub->skyline) ++counts[RowToString(row)];
  for (const Row& row : next) {
    auto it = counts.find(RowToString(row));
    if (it != counts.end() && it->second > 0) {
      --it->second;
    } else {
      out.added.push_back(row);
    }
  }

  sub->skyline = std::move(next);
  sub->version = version;
  return out;
}

uint64_t IncrementalMaintainer::Subscribe(
    std::shared_ptr<const DeltaRecipe> recipe, SubscriptionCallback callback) {
  uint64_t id;
  {
    sl::MutexLock lock(&subs_mu_);
    id = next_sub_id_++;
  }
  Subscription sub;
  sub.recipe = std::move(recipe);
  sub.callback = std::make_shared<SubscriptionCallback>(std::move(callback));
  // The initial delivery is a resync carrying the full current skyline. It
  // runs on the subscriber's thread with no internal lock held (callbacks
  // may take arbitrary user locks), strictly before any notifier-thread
  // delivery — the subscription is not registered yet. A write landing
  // between this snapshot and the registration below is not lost: its event
  // carries a version ahead of the subscription's, which forces a resync.
  SkylineDelta initial = ResyncSubscription(&sub, sub.recipe->table);
  const std::shared_ptr<SubscriptionCallback> cb = sub.callback;
  (*cb)(initial);
  sl::MutexLock lock(&subs_mu_);
  subs_.emplace(id, std::move(sub));
  return id;
}

void IncrementalMaintainer::Unsubscribe(uint64_t id) {
  sl::MutexLock lock(&subs_mu_);
  subs_.erase(id);
}

IncrementalMaintainer::Stats IncrementalMaintainer::stats() const {
  Stats s;
  s.maintained = maintained_.load();
  s.fallbacks = fallbacks_.load();
  s.resyncs = resyncs_.load();
  s.deltas_delivered = deltas_delivered_.load();
  return s;
}

}  // namespace serve
}  // namespace sparkline
