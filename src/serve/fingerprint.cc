#include "serve/fingerprint.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/string_util.h"

namespace sparkline {
namespace serve {

namespace {

uint64_t Fnv1a(const std::string& s, uint64_t seed) {
  uint64_t h = seed;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Builds the canonical rendering of a plan tree (see fingerprint.h for
/// what is normalized away). Appends into a flat string; structure is kept
/// unambiguous with explicit parentheses/brackets.
class Canonicalizer {
 public:
  void WritePlan(const LogicalPlanPtr& plan) {
    if (plan == nullptr) {
      out_ += "<null>";
      cacheable_ = false;
      return;
    }
    switch (plan->kind()) {
      case PlanKind::kUnresolvedRelation:
        out_ += "unresolved";
        cacheable_ = false;
        return;
      case PlanKind::kScan: {
        const auto& scan = static_cast<const Scan&>(*plan);
        const std::string name = ToLower(scan.table()->name());
        tables_.push_back(name);
        out_ += StrCat("scan(", name, "@", scan.table()->version());
        out_ += ",cols[";
        for (size_t i = 0; i < scan.column_indices().size(); ++i) {
          if (i > 0) out_ += ",";
          out_ += std::to_string(scan.column_indices()[i]);
        }
        out_ += "],out[";
        const auto attrs = scan.output();
        for (size_t i = 0; i < attrs.size(); ++i) {
          if (i > 0) out_ += ",";
          WriteAttr(attrs[i]);
        }
        out_ += "])";
        return;
      }
      case PlanKind::kLocalRelation:
        // In-memory rows have no catalog identity/version to key on.
        out_ += "local";
        cacheable_ = false;
        return;
      case PlanKind::kSubqueryAlias:
        // Pure renaming: contributes nothing to rows or output names.
        WritePlan(static_cast<const SubqueryAlias&>(*plan).child());
        return;
      case PlanKind::kProject: {
        const auto& node = static_cast<const Project&>(*plan);
        out_ += "project[";
        WriteExprList(node.list());
        out_ += "](";
        WritePlan(node.child());
        out_ += ")";
        return;
      }
      case PlanKind::kFilter: {
        const auto& node = static_cast<const Filter&>(*plan);
        out_ += "filter[";
        WriteExpr(node.condition());
        out_ += "](";
        WritePlan(node.child());
        out_ += ")";
        return;
      }
      case PlanKind::kJoin: {
        const auto& node = static_cast<const Join&>(*plan);
        out_ += StrCat("join:", JoinTypeName(node.join_type()), "[");
        WriteExpr(node.condition());
        out_ += "][";
        for (size_t i = 0; i < node.using_columns().size(); ++i) {
          if (i > 0) out_ += ",";
          out_ += ToLower(node.using_columns()[i]);
        }
        out_ += "](";
        WritePlan(node.left());
        out_ += ",";
        WritePlan(node.right());
        out_ += ")";
        return;
      }
      case PlanKind::kAggregate: {
        const auto& node = static_cast<const Aggregate&>(*plan);
        out_ += "aggregate[";
        WriteExprList(node.group_list());
        out_ += "][";
        WriteExprList(node.agg_list());
        out_ += "](";
        WritePlan(node.child());
        out_ += ")";
        return;
      }
      case PlanKind::kSort: {
        const auto& node = static_cast<const Sort&>(*plan);
        out_ += "sort[";
        for (size_t i = 0; i < node.orders().size(); ++i) {
          const SortOrder& o = node.orders()[i];
          if (i > 0) out_ += ",";
          WriteExpr(o.expr);
          out_ += StrCat(":", o.ascending ? "asc" : "desc",
                         o.nulls_first ? ":nf" : ":nl");
        }
        out_ += "](";
        WritePlan(node.child());
        out_ += ")";
        return;
      }
      case PlanKind::kLimit: {
        const auto& node = static_cast<const Limit&>(*plan);
        out_ += StrCat("limit:", node.n(), "(");
        WritePlan(node.child());
        out_ += ")";
        return;
      }
      case PlanKind::kDistinct: {
        out_ += "distinct(";
        WritePlan(static_cast<const Distinct&>(*plan).child());
        out_ += ")";
        return;
      }
      case PlanKind::kExplainAnalyze: {
        // Measurement statements must re-execute every time — serving a
        // cached plan rendering would report stale timings.
        out_ += "explain-analyze(";
        WritePlan(static_cast<const ExplainAnalyzeNode&>(*plan).child());
        out_ += ")";
        cacheable_ = false;
        return;
      }
      case PlanKind::kSkyline: {
        const auto& node = static_cast<const SkylineNode&>(*plan);
        out_ += StrCat("skyline:", node.distinct() ? "d" : "-",
                       node.complete() ? "c" : "-", "[");
        WriteExprList(node.dimensions());
        out_ += "](";
        WritePlan(node.child());
        out_ += ")";
        return;
      }
    }
    out_ += "unknown-plan";
    cacheable_ = false;
  }

  PlanFingerprint Finish() && {
    PlanFingerprint fp;
    fp.cacheable = cacheable_;
    std::sort(tables_.begin(), tables_.end());
    tables_.erase(std::unique(tables_.begin(), tables_.end()), tables_.end());
    fp.tables = std::move(tables_);
    // Two independently seeded FNV-1a runs give a 128-bit key; the seeds
    // make the halves differ even though the polynomial is shared.
    fp.hash_hi = Fnv1a(out_, 0xcbf29ce484222325ull);
    fp.hash_lo = Fnv1a(out_, 0x9e3779b97f4a7c15ull);
    fp.canonical = std::move(out_);
    return fp;
  }

 private:
  /// ExprIds are minted fresh per analysis; map them to first-seen ordinals
  /// so identical queries canonicalize identically.
  int64_t NormalizeId(ExprId id) {
    auto [it, inserted] = ids_.emplace(id, static_cast<int64_t>(ids_.size()));
    (void)inserted;
    return it->second;
  }

  /// Attribute identity is the normalized id plus the type; the qualifier
  /// (table alias) is deliberately dropped, the name is kept — case-exact,
  /// since it reaches the output header — where the node produces it
  /// (Scan outputs, Aliases).
  void WriteAttr(const Attribute& attr) {
    out_ += StrCat(attr.name, "#", NormalizeId(attr.id), ":",
                   attr.type.ToString());
  }

  void WriteExprList(const std::vector<ExprPtr>& exprs) {
    for (size_t i = 0; i < exprs.size(); ++i) {
      if (i > 0) out_ += ",";
      WriteExpr(exprs[i]);
    }
  }

  void WriteExpr(const ExprPtr& e) {
    if (e == nullptr) {
      out_ += "<null>";
      return;
    }
    switch (e->kind()) {
      case ExprKind::kLiteral: {
        const Value& v = static_cast<const Literal&>(*e).value();
        out_ += StrCat("lit:", v.type().ToString(), ":",
                       v.is_null() ? "NULL" : v.ToString());
        return;
      }
      case ExprKind::kAttributeRef: {
        const Attribute& attr = static_cast<const AttributeRef&>(*e).attr();
        out_ += StrCat("#", NormalizeId(attr.id));
        return;
      }
      case ExprKind::kBoundReference: {
        const auto& ref = static_cast<const BoundReference&>(*e);
        out_ += StrCat("bound:", ref.ordinal());
        return;
      }
      case ExprKind::kAlias: {
        const auto& alias = static_cast<const Alias&>(*e);
        out_ += StrCat("alias:", alias.name(), "#",
                       NormalizeId(alias.id()), "(");
        WriteExpr(alias.child());
        out_ += ")";
        return;
      }
      case ExprKind::kBinary: {
        const auto& bin = static_cast<const BinaryExpr&>(*e);
        out_ += StrCat("(", BinaryOpSymbol(bin.op()), " ");
        WriteExpr(bin.left());
        out_ += " ";
        WriteExpr(bin.right());
        out_ += ")";
        return;
      }
      case ExprKind::kUnary: {
        const auto& un = static_cast<const UnaryExpr&>(*e);
        out_ += StrCat("(u", static_cast<int>(un.op()), " ");
        WriteExpr(un.child());
        out_ += ")";
        return;
      }
      case ExprKind::kCast: {
        const auto& cast = static_cast<const Cast&>(*e);
        out_ += StrCat("cast:", cast.type().ToString(), "(");
        WriteExpr(cast.child());
        out_ += ")";
        return;
      }
      case ExprKind::kFunctionCall: {
        const auto& fn = static_cast<const FunctionCall&>(*e);
        out_ += StrCat("fn:", ToLower(fn.name()), "(");
        WriteExprList(fn.args());
        out_ += ")";
        return;
      }
      case ExprKind::kAggregate: {
        const auto& agg = static_cast<const AggregateExpr&>(*e);
        out_ += StrCat("agg:", AggFnName(agg.fn()),
                       agg.distinct() ? ":distinct" : "", "(");
        WriteExpr(agg.child());
        out_ += ")";
        return;
      }
      case ExprKind::kSkylineDimension: {
        const auto& dim = static_cast<const SkylineDimension&>(*e);
        out_ += StrCat("dim:", SkylineGoalName(dim.goal()), "(");
        WriteExpr(dim.child());
        out_ += ")";
        return;
      }
      case ExprKind::kExistsSubquery: {
        const auto& sub = static_cast<const ExistsSubquery&>(*e);
        out_ += StrCat("exists:", sub.negated() ? "not" : "is", "(");
        WritePlan(sub.plan());
        out_ += ")";
        return;
      }
      case ExprKind::kScalarSubquery: {
        const auto& sub = static_cast<const ScalarSubquery&>(*e);
        out_ += "scalar-subquery(";
        WritePlan(sub.plan());
        out_ += ")";
        return;
      }
      case ExprKind::kOuterRef: {
        out_ += "outer(";
        WriteExpr(static_cast<const OuterRef&>(*e).inner());
        out_ += ")";
        return;
      }
      case ExprKind::kPhysicalSubquery:
      case ExprKind::kUnresolvedAttribute:
      case ExprKind::kStar:
        // Unresolved or exec-time-only nodes: refuse to cache.
        out_ += "uncacheable-expr";
        cacheable_ = false;
        return;
    }
    out_ += "unknown-expr";
    cacheable_ = false;
  }

  std::string out_;
  std::map<ExprId, int64_t> ids_;
  std::vector<std::string> tables_;
  bool cacheable_ = true;
};

}  // namespace

std::string PlanFingerprint::Key() const {
  char buf[36];
  std::snprintf(buf, sizeof(buf), "%016llx:%016llx",
                static_cast<unsigned long long>(hash_hi),
                static_cast<unsigned long long>(hash_lo));
  return std::string(buf);
}

PlanFingerprint FingerprintPlan(const LogicalPlanPtr& analyzed) {
  Canonicalizer canon;
  canon.WritePlan(analyzed);
  return std::move(canon).Finish();
}

PlanFingerprint FingerprintFromCanonical(std::string canonical,
                                         std::vector<std::string> tables) {
  PlanFingerprint fp;
  fp.cacheable = true;
  std::sort(tables.begin(), tables.end());
  tables.erase(std::unique(tables.begin(), tables.end()), tables.end());
  fp.tables = std::move(tables);
  fp.hash_hi = Fnv1a(canonical, 0xcbf29ce484222325ull);
  fp.hash_lo = Fnv1a(canonical, 0x9e3779b97f4a7c15ull);
  fp.canonical = std::move(canonical);
  return fp;
}

}  // namespace serve
}  // namespace sparkline
