#include "serve/result_cache.h"

#include <algorithm>

#include "common/failpoint.h"
#include "common/timer.h"

namespace sparkline {
namespace serve {

ResultCache::ResultCache(const Options& options)
    : shards_(static_cast<size_t>(std::max(1, options.num_shards))),
      capacity_bytes_(std::max<int64_t>(0, options.capacity_bytes)),
      ttl_ms_(std::max<int64_t>(0, options.ttl_ms)),
      hits_counter_(metrics::MetricsRegistry::Global().GetCounter(
          "sparkline_cache_hits_total")),
      misses_counter_(metrics::MetricsRegistry::Global().GetCounter(
          "sparkline_cache_misses_total")),
      evictions_counter_(metrics::MetricsRegistry::Global().GetCounter(
          "sparkline_cache_evictions_total")),
      expirations_counter_(metrics::MetricsRegistry::Global().GetCounter(
          "sparkline_cache_expirations_total")),
      invalidations_counter_(metrics::MetricsRegistry::Global().GetCounter(
          "sparkline_cache_invalidations_total")) {}

bool ResultCache::Expired(const Entry& entry, int64_t now_nanos) const {
  const int64_t ttl = ttl_ms_.load();
  return ttl > 0 && now_nanos - entry.inserted_nanos > ttl * 1000000;
}

void ResultCache::RemoveLocked(
    Shard* shard, std::unordered_map<std::string, Entry>::iterator it) {
  const Entry& entry = it->second;
  shard->bytes -= entry.result->bytes;
  memory_.Shrink(entry.result->bytes);
  for (const std::string& table : entry.tables) {
    auto t = shard->by_table.find(table);
    if (t == shard->by_table.end()) continue;
    auto& keys = t->second;
    keys.erase(std::remove(keys.begin(), keys.end(), it->first), keys.end());
    if (keys.empty()) shard->by_table.erase(t);
  }
  shard->lru.erase(entry.lru_it);
  shard->entries.erase(it);
}

void ResultCache::EvictToBudgetLocked(Shard* shard) {
  const int64_t budget = PerShardBudget();
  while (shard->bytes > budget && !shard->lru.empty()) {
    auto it = shard->entries.find(shard->lru.back());
    RemoveLocked(shard, it);
    evictions_.fetch_add(1);
    evictions_counter_->Increment();
  }
}

void ResultCache::SweepExpiredTailLocked(Shard* shard, int64_t now_nanos) {
  if (ttl_ms_.load() <= 0) return;
  while (!shard->lru.empty()) {
    auto it = shard->entries.find(shard->lru.back());
    if (!Expired(it->second, now_nanos)) break;
    RemoveLocked(shard, it);
    expirations_.fetch_add(1);
    expirations_counter_->Increment();
  }
}

std::shared_ptr<const CachedResult> ResultCache::Lookup(
    const PlanFingerprint& fp) {
  Shard& shard = ShardFor(fp);
  const std::string key = fp.Key();
  const int64_t now = StopWatch::NowNanos();
  sl::MutexLock lock(&shard.mu);
  // Release the reservations of cold expired entries even when they are
  // never probed again — an expired entry must not occupy the byte budget
  // (or the per-table reverse index) until LRU pressure pushes it out.
  SweepExpiredTailLocked(&shard, now);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    misses_.fetch_add(1);
    misses_counter_->Increment();
    return nullptr;
  }
  if (Expired(it->second, now)) {
    RemoveLocked(&shard, it);
    expirations_.fetch_add(1);
    expirations_counter_->Increment();
    misses_.fetch_add(1);
    misses_counter_->Increment();
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
  hits_.fetch_add(1);
  hits_counter_->Increment();
  return it->second.result;
}

void ResultCache::InsertLocked(Shard* shard, std::string key,
                               std::shared_ptr<const CachedResult> entry,
                               std::vector<std::string> tables) {
  auto it = shard->entries.find(key);
  if (it != shard->entries.end()) RemoveLocked(shard, it);

  shard->lru.push_front(key);
  Entry e;
  e.result = std::move(entry);
  e.tables = std::move(tables);
  e.inserted_nanos = StopWatch::NowNanos();
  e.lru_it = shard->lru.begin();
  shard->bytes += e.result->bytes;
  memory_.Grow(e.result->bytes);
  for (const std::string& table : e.tables) {
    shard->by_table[table].push_back(key);
  }
  shard->entries.emplace(std::move(key), std::move(e));
  EvictToBudgetLocked(shard);
}

Status ResultCache::Insert(const PlanFingerprint& fp,
                           std::shared_ptr<const CachedResult> entry) {
  SL_FAILPOINT("serve.cache_insert");
  if (entry == nullptr || entry->bytes > PerShardBudget()) return Status::OK();
  Shard& shard = ShardFor(fp);
  sl::MutexLock lock(&shard.mu);
  SweepExpiredTailLocked(&shard, StopWatch::NowNanos());
  InsertLocked(&shard, fp.Key(), std::move(entry), fp.tables);
  return Status::OK();
}

void ResultCache::InvalidateTable(const std::string& table_name) {
  for (Shard& shard : shards_) {
    sl::MutexLock lock(&shard.mu);
    auto t = shard.by_table.find(table_name);
    if (t == shard.by_table.end()) continue;
    // RemoveLocked edits by_table; detach the key list first.
    std::vector<std::string> keys = std::move(t->second);
    shard.by_table.erase(t);
    for (const std::string& key : keys) {
      auto it = shard.entries.find(key);
      if (it == shard.entries.end()) continue;
      RemoveLocked(&shard, it);
      invalidations_.fetch_add(1);
      invalidations_counter_->Increment();
    }
  }
}

std::vector<std::shared_ptr<const CachedResult>> ResultCache::EntriesForTable(
    const std::string& table_name) {
  std::vector<std::shared_ptr<const CachedResult>> out;
  const int64_t now = StopWatch::NowNanos();
  for (Shard& shard : shards_) {
    sl::MutexLock lock(&shard.mu);
    auto t = shard.by_table.find(table_name);
    if (t == shard.by_table.end()) continue;
    for (const std::string& key : t->second) {
      auto it = shard.entries.find(key);
      if (it == shard.entries.end() || Expired(it->second, now)) continue;
      out.push_back(it->second.result);
    }
  }
  return out;
}

void ResultCache::Remove(const PlanFingerprint& fp,
                         const std::shared_ptr<const CachedResult>& expected) {
  Shard& shard = ShardFor(fp);
  sl::MutexLock lock(&shard.mu);
  auto it = shard.entries.find(fp.Key());
  if (it == shard.entries.end() || it->second.result != expected) return;
  RemoveLocked(&shard, it);
  invalidations_.fetch_add(1);
  invalidations_counter_->Increment();
}

bool ResultCache::Replace(const PlanFingerprint& old_fp,
                          const std::shared_ptr<const CachedResult>& expected,
                          std::shared_ptr<const CachedResult> next) {
  if (next == nullptr || next->bytes > PerShardBudget()) {
    // The successor does not fit the budget; the old entry describes a
    // stale table version, so drop it rather than keep serving it.
    Remove(old_fp, expected);
    return false;
  }
  Shard* src = &ShardFor(old_fp);
  Shard* dst = &ShardFor(next->fingerprint);
  // Three explicit branches instead of conditionally-deferred locks: the
  // thread-safety analysis tracks capabilities syntactically, so each
  // acquisition order (same shard / src-first / dst-first) must be its own
  // scope. The cross-shard branches take both locks in address order — the
  // engine's only two-lock path.
  if (src == dst) {
    sl::MutexLock lock(&src->mu);
    return ReplaceLocked(src, src, old_fp, expected, std::move(next));
  }
  if (src < dst) {
    sl::MutexLock lock_src(&src->mu);
    sl::MutexLock lock_dst(&dst->mu);
    return ReplaceLocked(src, dst, old_fp, expected, std::move(next));
  }
  sl::MutexLock lock_dst(&dst->mu);
  sl::MutexLock lock_src(&src->mu);
  return ReplaceLocked(src, dst, old_fp, expected, std::move(next));
}

bool ResultCache::ReplaceLocked(
    Shard* src, Shard* dst, const PlanFingerprint& old_fp,
    const std::shared_ptr<const CachedResult>& expected,
    std::shared_ptr<const CachedResult> next) {
  auto it = src->entries.find(old_fp.Key());
  if (it == src->entries.end() || it->second.result != expected) return false;
  RemoveLocked(src, it);
  std::string new_key = next->fingerprint.Key();
  std::vector<std::string> tables = next->fingerprint.tables;
  InsertLocked(dst, std::move(new_key), std::move(next), std::move(tables));
  return true;
}

void ResultCache::Clear() {
  for (Shard& shard : shards_) {
    sl::MutexLock lock(&shard.mu);
    while (!shard.entries.empty()) {
      RemoveLocked(&shard, shard.entries.begin());
      evictions_.fetch_add(1);
      evictions_counter_->Increment();
    }
  }
}

void ResultCache::PurgeExpired() {
  if (ttl_ms_.load() <= 0) return;
  const int64_t now = StopWatch::NowNanos();
  for (Shard& shard : shards_) {
    sl::MutexLock lock(&shard.mu);
    // An entry's LRU position is decoupled from its insertion time (hits
    // refresh the position, not the clock), so the full purge scans the
    // map rather than walking the list from the tail.
    std::vector<std::string> expired;
    for (const auto& [key, entry] : shard.entries) {
      if (Expired(entry, now)) expired.push_back(key);
    }
    for (const std::string& key : expired) {
      RemoveLocked(&shard, shard.entries.find(key));
      expirations_.fetch_add(1);
      expirations_counter_->Increment();
    }
  }
}

void ResultCache::set_capacity_bytes(int64_t bytes) {
  capacity_bytes_.store(std::max<int64_t>(0, bytes));
  for (Shard& shard : shards_) {
    sl::MutexLock lock(&shard.mu);
    EvictToBudgetLocked(&shard);
  }
}

ResultCache::Stats ResultCache::stats() const {
  Stats s;
  s.hits = hits_.load();
  s.misses = misses_.load();
  s.evictions = evictions_.load();
  s.expirations = expirations_.load();
  s.invalidations = invalidations_.load();
  s.resident_bytes = memory_.current_bytes();
  for (const Shard& shard : shards_) {
    sl::MutexLock lock(&shard.mu);
    s.entries += static_cast<int64_t>(shard.entries.size());
  }
  return s;
}

}  // namespace serve
}  // namespace sparkline
