// Sharded LRU cache of materialized skyline/query results, keyed by plan
// fingerprint (serve/fingerprint.h).
//
// Design:
//   - N shards (fingerprint hash_lo selects the shard), each with its own
//     mutex, LRU list and hash map, so concurrent service threads rarely
//     contend.
//   - Entries hold *shared immutable* row snapshots
//     (std::shared_ptr<const std::vector<Row>>); a hit aliases the snapshot
//     into the caller's QueryResult — no deep copy, and eviction while a
//     reader still holds the snapshot is safe.
//   - The byte budget is charged through the existing MemoryTracker: every
//     insert Grows it by the entry's estimated footprint and every
//     eviction/invalidation Shrinks it, so cache residency shows up in the
//     same accounting the executor uses.
//   - TTL: entries older than ttl_ms are treated as misses (0 = no expiry).
//     Expired entries release their byte reservation and reverse-index
//     slots eagerly: on lookup of the expired key, through an LRU-tail
//     sweep on every lookup/insert, and via PurgeExpired() — they never sit
//     on the budget waiting for LRU pressure. TTL drops are counted as
//     `expirations`, separate from budget `evictions`.
//   - Invalidation: each shard keeps a reverse index table-name -> keys;
//     InvalidateTable drops exactly the entries whose fingerprint
//     referenced that table. Because table versions are *also* folded into
//     the fingerprint hash, a missed invalidation can only ever cost a
//     cache miss, never a stale hit.
//   - Counters (hits / misses / evictions / invalidations) feed the
//     cache_* fields of QueryMetrics.
//
// All public methods are thread-safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/memory_tracker.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_safety.h"
#include "expr/expression.h"
#include "serve/fingerprint.h"
#include "types/value.h"

namespace sparkline {
namespace serve {

struct DeltaRecipe;  // serve/incremental.h

/// \brief One cached result: the output header plus a shared immutable row
/// snapshot, and (when the plan shape supports it) the metadata incremental
/// maintenance needs to evolve the entry under writes instead of dropping
/// it. A CachedResult is immutable once published — maintenance builds a
/// *successor* CachedResult and swaps it in via Replace().
struct CachedResult {
  std::vector<Attribute> attrs;
  std::shared_ptr<const std::vector<Row>> rows;
  /// Estimated footprint charged against the byte budget.
  int64_t bytes = 0;
  /// The fingerprint this entry is stored under (retained so maintenance
  /// can rewrite the canonical's table version and re-key the successor).
  PlanFingerprint fingerprint;
  /// How to delta-maintain this entry under InsertInto; null = the plan
  /// shape is invalidation-only.
  std::shared_ptr<const DeltaRecipe> recipe;
  /// Version of the scanned-table snapshot this entry reflects (only set
  /// when `recipe` is; the maintainer advances it on every applied delta
  /// and uses it to gate out-of-order/gapped write events).
  uint64_t table_version = 0;
  /// Write deltas this entry has absorbed since it was first computed
  /// (surfaced as QueryMetrics::cache_delta_maintained on hits).
  int64_t delta_count = 0;
};

/// \brief Sharded, TTL-aware, byte-budgeted LRU result cache.
class ResultCache {
 public:
  struct Options {
    int64_t capacity_bytes = 256ll << 20;
    /// Entry time-to-live in milliseconds (0 = never expires).
    int64_t ttl_ms = 0;
    /// Number of independent LRU shards (>=1). Tests pin 1 shard to make
    /// eviction order deterministic.
    int num_shards = 8;
  };

  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;      ///< budget-driven drops
    int64_t expirations = 0;    ///< TTL-driven drops
    int64_t invalidations = 0;  ///< catalog-write-driven drops
    int64_t resident_bytes = 0;
    int64_t entries = 0;
  };

  explicit ResultCache(const Options& options);

  /// Returns the entry for `fp`, refreshing its LRU position, or nullptr
  /// on miss/expiry. Counts a hit or a miss.
  std::shared_ptr<const CachedResult> Lookup(const PlanFingerprint& fp);

  /// Inserts (or replaces) the entry for `fp`, evicting least-recently-used
  /// entries of the same shard until the shard's budget share is met.
  /// Entries larger than the shard budget are not admitted (that is OK, not
  /// an error). Fails only under injected faults (failpoint
  /// "serve.cache_insert"); callers are expected to degrade to uncached
  /// serving — a cache-insert failure must never fail the query.
  Status Insert(const PlanFingerprint& fp,
                std::shared_ptr<const CachedResult> entry);

  /// Drops exactly the entries whose fingerprint referenced `table_name`
  /// (lower-cased catalog key).
  void InvalidateTable(const std::string& table_name);

  /// Snapshot of the resident (non-expired) entries whose fingerprint
  /// references `table_name` — the incremental maintainer's work list.
  /// Touches no LRU positions and no hit/miss counters.
  std::vector<std::shared_ptr<const CachedResult>> EntriesForTable(
      const std::string& table_name);

  /// Removes the entry for `fp` iff its stored result is still `expected`
  /// (compare-and-swap against concurrent Insert/Replace; a changed entry
  /// is left alone). Counted as an invalidation when it removes.
  void Remove(const PlanFingerprint& fp,
              const std::shared_ptr<const CachedResult>& expected);

  /// Atomically replaces the entry under `old_fp` — iff its stored result
  /// is still `expected` — with `next`, keyed under next->fingerprint
  /// (which may live in a different shard; both shard locks are taken in
  /// address order). Returns false, modifying nothing, when the old entry
  /// changed or vanished concurrently. Not counted as hit/miss/eviction;
  /// the byte budget moves from the old entry's footprint to the new one's.
  bool Replace(const PlanFingerprint& old_fp,
               const std::shared_ptr<const CachedResult>& expected,
               std::shared_ptr<const CachedResult> next);

  /// Drops everything.
  void Clear();

  /// Drops every expired entry of every shard, releasing its byte
  /// reservation and reverse-index slots. Expiry is otherwise enforced
  /// lazily — on lookup of the expired key itself plus an LRU-tail sweep on
  /// every lookup/insert — so entries that are neither re-probed nor at the
  /// tail can outlive their TTL until this full sweep (or budget pressure)
  /// reclaims them.
  void PurgeExpired();

  Stats stats() const;

  /// Budget/TTL are adjustable at runtime (SetConf); shrinking the budget
  /// evicts immediately.
  void set_capacity_bytes(int64_t bytes);
  void set_ttl_ms(int64_t ttl_ms) { ttl_ms_.store(ttl_ms); }
  int64_t capacity_bytes() const { return capacity_bytes_.load(); }
  int64_t ttl_ms() const { return ttl_ms_.load(); }

  /// The tracker the budget is charged through (resident bytes).
  const MemoryTracker& memory() const { return memory_; }

 private:
  struct Entry {
    std::shared_ptr<const CachedResult> result;
    std::vector<std::string> tables;
    int64_t inserted_nanos = 0;
    std::list<std::string>::iterator lru_it;  // position in Shard::lru
  };

  struct Shard {
    mutable sl::Mutex mu;
    /// Most-recently-used at the front.
    std::list<std::string> lru SL_GUARDED_BY(mu);
    std::unordered_map<std::string, Entry> entries SL_GUARDED_BY(mu);
    /// table name -> keys of resident entries referencing it.
    std::unordered_map<std::string, std::vector<std::string>> by_table
        SL_GUARDED_BY(mu);
    int64_t bytes SL_GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(const PlanFingerprint& fp) {
    return shards_[fp.hash_lo % shards_.size()];
  }
  int64_t PerShardBudget() const {
    return capacity_bytes_.load() / static_cast<int64_t>(shards_.size());
  }
  /// Removes `it` from all shard structures; caller holds shard.mu.
  void RemoveLocked(Shard* shard,
                    std::unordered_map<std::string, Entry>::iterator it)
      SL_REQUIRES(shard->mu);
  /// Admits `entry` under `key` (replacing any current entry) and evicts to
  /// budget; caller holds shard.mu. Shared by Insert and Replace.
  void InsertLocked(Shard* shard, std::string key,
                    std::shared_ptr<const CachedResult> entry,
                    std::vector<std::string> tables) SL_REQUIRES(shard->mu);
  /// Evicts LRU entries until the shard fits its budget; caller holds mu.
  void EvictToBudgetLocked(Shard* shard) SL_REQUIRES(shard->mu);
  /// Drops expired entries from the LRU tail (stops at the first live one);
  /// caller holds mu. Runs on every lookup and insert so cold expired
  /// entries release their reservation without waiting for budget pressure.
  void SweepExpiredTailLocked(Shard* shard, int64_t now_nanos)
      SL_REQUIRES(shard->mu);
  /// Swaps `old_fp`'s entry (iff still `expected`) for `next` keyed under
  /// next->fingerprint; caller holds BOTH src->mu and dst->mu (the same
  /// lock held once when the shards coincide — callers in that branch must
  /// pass the same pointer twice so the analysis sees one capability).
  bool ReplaceLocked(Shard* src, Shard* dst, const PlanFingerprint& old_fp,
                     const std::shared_ptr<const CachedResult>& expected,
                     std::shared_ptr<const CachedResult> next)
      SL_REQUIRES(src->mu, dst->mu);
  bool Expired(const Entry& entry, int64_t now_nanos) const;

  std::vector<Shard> shards_;
  std::atomic<int64_t> capacity_bytes_;
  std::atomic<int64_t> ttl_ms_;
  MemoryTracker memory_;

  mutable std::atomic<int64_t> hits_{0};
  mutable std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> expirations_{0};
  std::atomic<int64_t> invalidations_{0};

  // Process-wide registry mirrors of the counters above, resolved once at
  // construction. The per-instance atomics stay: stats() reports one cache,
  // the registry aggregates the process.
  metrics::Counter* hits_counter_;
  metrics::Counter* misses_counter_;
  metrics::Counter* evictions_counter_;
  metrics::Counter* expirations_counter_;
  metrics::Counter* invalidations_counter_;
};

}  // namespace serve
}  // namespace sparkline
