// Plan fingerprinting: a canonical 128-bit hash over *analyzed* logical
// plans, used as the key of the serve-layer result cache.
//
// Two plans receive the same fingerprint exactly when they are guaranteed
// to produce the same result rows against the same table versions:
//
//   - The canonical form is computed from the analyzed plan, so lexical
//     differences (whitespace, case of keywords, redundant parentheses)
//     never matter.
//   - Catalyst-style expression ids (ExprId), which are minted fresh on
//     every parse, are replaced by first-seen ordinals; two analyses of the
//     same query therefore canonicalize identically.
//   - Table aliases and attribute qualifiers are ignored (SubqueryAlias
//     nodes are skipped), because they affect neither rows nor the output
//     column names.
//   - Output column *names* (Project aliases) ARE part of the form — they
//     change the result header.
//   - Every Scan contributes its lower-cased table name plus the catalog
//     version stamped on the *table snapshot the Scan holds* (captured at
//     analysis time). Fingerprint and execution therefore always describe
//     the same rows — a write landing between analysis and execution keys
//     the cached result under the snapshot's (old) version, which no
//     post-write fingerprint can match. Any write to a referenced table
//     (insert / replace / drop + recreate) shifts the version, so stale
//     entries can never be returned, even if active invalidation were to
//     miss.
//   - Literal values (with their type tags), skyline dimensions with their
//     MIN/MAX/DIFF goals and DISTINCT/COMPLETE flags, join types, sort
//     directions, limits etc. are all folded in.
//
// Plans with LocalRelation leaves (in-memory DataFrames) have no catalog
// identity to version, so they are reported as not cacheable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "plan/logical_plan.h"

namespace sparkline {
namespace serve {

/// \brief The canonical identity of an analyzed plan.
struct PlanFingerprint {
  /// False when the plan must not be cached (LocalRelation leaves or
  /// unresolved nodes); hash/tables are still filled in for diagnostics.
  bool cacheable = false;
  /// 128-bit canonical hash (two independently seeded 64-bit FNV-1a runs).
  uint64_t hash_hi = 0;
  uint64_t hash_lo = 0;
  /// Lower-cased, sorted, deduplicated names of every referenced table
  /// (including tables referenced from scalar subqueries) — the cache's
  /// invalidation index.
  std::vector<std::string> tables;
  /// The canonical rendering the hash was computed from (kept for tests
  /// and EXPLAIN-style debugging; not used for equality).
  std::string canonical;

  /// Hex cache key ("hi:lo").
  std::string Key() const;
};

/// Computes the fingerprint of an analyzed plan. Table versions are read
/// from the Table snapshots the plan's Scans hold (stamped by the catalog
/// on every write), not from the live catalog.
PlanFingerprint FingerprintPlan(const LogicalPlanPtr& analyzed);

/// Rebuilds a fingerprint from an already-canonical rendering — the
/// re-keying primitive of incremental maintenance (serve/incremental.h):
/// after a delta is applied, the entry's retained canonical has its
/// `scan(table@oldver` token rewritten to the new version and is re-hashed
/// here, producing exactly the key a fresh analysis of the same query
/// against the new snapshot would compute. `tables` is the referenced-table
/// list (it is sorted/deduplicated as FingerprintPlan does).
PlanFingerprint FingerprintFromCanonical(std::string canonical,
                                         std::vector<std::string> tables);

}  // namespace serve
}  // namespace sparkline
