// QueryService: the concurrent serving front-end.
//
// Accepts SQL strings, runs them asynchronously on a shared ThreadPool of
// `max_concurrent` service threads, and returns futures. The session's
// fingerprinted result cache (consulted inside Session::Execute) makes
// repeated queries short-circuit; the service adds concurrency and
// admission control on top:
//
//   - max_concurrent service threads execute queries in parallel (each
//     query still gets its own simulated-cluster ExecContext/pool).
//   - Admission cap: at most `max_pending` queries may be in flight
//     (queued + running). Beyond that Submit fails fast with
//     Status::Unavailable instead of queueing unboundedly — callers are
//     expected to retry with backoff, which keeps tail latency bounded
//     under overload.
//
// Thread safety: Submit/Execute may be called from any thread. The service
// relies on the Catalog being internally synchronized and on the Session
// configuration not being mutated concurrently with serving (configure
// first, then serve).
#pragma once

#include <atomic>
#include <future>
#include <memory>
#include <string>

#include "api/query_result.h"
#include "common/result.h"
#include "common/thread_pool.h"

namespace sparkline {

class Session;

namespace serve {

/// \brief Asynchronous SQL execution with admission control.
class QueryService {
 public:
  struct Options {
    /// Service threads == maximum concurrently *executing* queries.
    int max_concurrent = 4;
    /// Maximum in-flight (queued + running) queries before Submit rejects
    /// with Unavailable; 0 derives 4 * max_concurrent.
    int max_pending = 0;
  };

  struct Stats {
    int64_t submitted = 0;
    int64_t completed = 0;
    int64_t rejected = 0;  ///< admission-cap rejections
    int64_t in_flight = 0;
  };

  /// `session` must outlive the service.
  QueryService(Session* session, const Options& options);
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Parses, analyzes and executes `sql` on a service thread. Fails fast
  /// with Status::Unavailable when the admission cap is reached; all other
  /// errors (parse/analysis/execution) are delivered through the future.
  Result<std::future<Result<QueryResult>>> Submit(std::string sql);

  /// Synchronous convenience wrapper: Submit + wait.
  Result<QueryResult> Execute(const std::string& sql);

  /// Blocks until every admitted query has finished.
  void Drain() { pool_->WaitIdle(); }

  Stats stats() const;
  int max_concurrent() const {
    return static_cast<int>(pool_->num_threads());
  }
  int max_pending() const { return max_pending_; }

 private:
  Session* session_;
  int max_pending_;
  std::unique_ptr<ThreadPool> pool_;

  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> completed_{0};
  std::atomic<int64_t> rejected_{0};
  std::atomic<int64_t> in_flight_{0};
};

}  // namespace serve
}  // namespace sparkline
