// QueryService: the concurrent serving front-end.
//
// Accepts SQL strings, runs them asynchronously on a shared ThreadPool of
// `max_concurrent` service threads, and returns handles (future + cancel).
// The session's fingerprinted result cache (consulted inside
// Session::Execute) makes repeated queries short-circuit; the service adds
// concurrency, admission control and cancellation on top:
//
//   - max_concurrent service threads execute queries in parallel (each
//     query still gets its own simulated-cluster ExecContext/pool).
//   - Admission cap: at most `max_pending` queries may be in flight
//     (queued + running). Beyond that Submit fails fast with
//     Status::Unavailable instead of queueing unboundedly — callers are
//     expected to retry with backoff, which keeps tail latency bounded
//     under overload.
//   - Cancellation: every submitted query carries a CancellationToken that
//     is installed on its ExecContext. QueryHandle::Cancel() makes a
//     running query's kernel loops and stage boundaries return
//     Status::Cancelled at the next check, and sheds a still-queued query
//     without executing it at all.
//   - Queue shedding: when the session has a per-query timeout
//     (sparkline.timeout_ms), a query that already waited in the queue
//     longer than the timeout is shed with Status::Timeout instead of
//     burning a service thread on work whose deadline has passed.
//
// Thread safety: Submit/Execute may be called from any thread. The service
// relies on the Catalog being internally synchronized and on the Session
// configuration not being mutated concurrently with serving (configure
// first, then serve).
#pragma once

#include <future>
#include <memory>
#include <string>

#include "api/query_result.h"
#include "common/cancellation.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "common/thread_safety.h"

namespace sparkline {

class Session;

namespace serve {

/// \brief One submitted query: the result future plus a cancellation handle.
///
/// Move-only (futures are). The token outlives the service thread's use of
/// it, so Cancel() is safe at any time — before execution starts (the query
/// is shed from the queue), during it (cooperative cancellation points
/// return Status::Cancelled), or after completion (no-op).
struct QueryHandle {
  std::future<Result<QueryResult>> future;
  CancellationTokenPtr token;

  /// Requests cancellation; the result (Status::Cancelled, or the query's
  /// outcome if it won the race) still arrives through `future`.
  void Cancel() {
    if (token != nullptr) token->Cancel();
  }
};

/// \brief Asynchronous SQL execution with admission control and
/// cancellation.
class QueryService {
 public:
  struct Options {
    /// Service threads == maximum concurrently *executing* queries.
    int max_concurrent = 4;
    /// Maximum in-flight (queued + running) queries before Submit rejects
    /// with Unavailable; 0 derives 4 * max_concurrent.
    int max_pending = 0;
  };

  /// A *consistent* snapshot: all fields are read under one lock, so
  /// `submitted == completed + in_flight` holds in every snapshot (shed and
  /// cancelled queries count as completed — their future is fulfilled).
  struct Stats {
    int64_t submitted = 0;
    int64_t completed = 0;
    int64_t rejected = 0;  ///< admission-cap rejections
    int64_t shed = 0;      ///< dropped from the queue (cancel / deadline)
    int64_t in_flight = 0;
  };

  /// `session` must outlive the service.
  QueryService(Session* session, const Options& options);
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Parses, analyzes and executes `sql` on a service thread. Fails fast
  /// with Status::Unavailable when the admission cap is reached; all other
  /// errors (parse/analysis/execution/cancellation) are delivered through
  /// the handle's future.
  Result<QueryHandle> Submit(std::string sql);

  /// Synchronous convenience wrapper: Submit + wait.
  Result<QueryResult> Execute(const std::string& sql);

  /// Blocks until every admitted query has finished.
  void Drain() { pool_->WaitIdle(); }

  Stats stats() const;
  int max_concurrent() const {
    return static_cast<int>(pool_->num_threads());
  }
  int max_pending() const { return max_pending_; }

 private:
  /// Runs one admitted query on a service thread (or sheds it).
  void RunAdmitted(const std::string& sql, const CancellationTokenPtr& token,
                   int64_t admitted_nanos,
                   const std::shared_ptr<std::promise<Result<QueryResult>>>&
                       promise);

  Session* session_;
  int max_pending_;
  std::unique_ptr<ThreadPool> pool_;

  // All counters share one mutex so stats() can return a consistent
  // snapshot (the previous per-counter atomics allowed readers to observe
  // submitted/completed/in_flight mid-update, breaking the invariant).
  mutable sl::Mutex stats_mu_;
  Stats stats_ SL_GUARDED_BY(stats_mu_);

  // Registry mirrors of the serving counters, resolved once at
  // construction (see common/metrics.h): stats_ stays the test-facing
  // consistent snapshot; these give the process-wide scrape.
  metrics::Histogram* queue_wait_us_;
  metrics::Counter* rejected_total_;
  metrics::Counter* shed_total_;
  metrics::Gauge* in_flight_gauge_;
};

}  // namespace serve
}  // namespace sparkline
