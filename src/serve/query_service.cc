#include "serve/query_service.h"

#include <algorithm>

#include "api/dataframe.h"
#include "api/session.h"
#include "common/string_util.h"

namespace sparkline {
namespace serve {

QueryService::QueryService(Session* session, const Options& options)
    : session_(session),
      max_pending_(options.max_pending > 0
                       ? options.max_pending
                       : 4 * std::max(1, options.max_concurrent)),
      pool_(std::make_unique<ThreadPool>(
          static_cast<size_t>(std::max(1, options.max_concurrent)))) {}

QueryService::~QueryService() {
  // ThreadPool's destructor drains the queue, so every admitted promise is
  // fulfilled before the service goes away.
  pool_.reset();
}

namespace {
Result<QueryResult> RunOne(Session* session, const std::string& sql) {
  SL_ASSIGN_OR_RETURN(DataFrame df, session->Sql(sql));
  return df.Collect();
}
}  // namespace

Result<std::future<Result<QueryResult>>> QueryService::Submit(
    std::string sql) {
  const int64_t in_flight = in_flight_.fetch_add(1) + 1;
  if (in_flight > max_pending_) {
    in_flight_.fetch_sub(1);
    rejected_.fetch_add(1);
    return Status::Unavailable(
        StrCat("query service admission cap reached (", max_pending_,
               " queries in flight); retry later"));
  }
  submitted_.fetch_add(1);

  auto promise = std::make_shared<std::promise<Result<QueryResult>>>();
  std::future<Result<QueryResult>> future = promise->get_future();
  pool_->Submit([this, promise, sql = std::move(sql)]() {
    Result<QueryResult> result = RunOne(session_, sql);
    // Counters flip before the future unblocks so that a caller observing
    // future.get() sees them settled.
    completed_.fetch_add(1);
    in_flight_.fetch_sub(1);
    promise->set_value(std::move(result));
  });
  return future;
}

Result<QueryResult> QueryService::Execute(const std::string& sql) {
  SL_ASSIGN_OR_RETURN(auto future, Submit(sql));
  return future.get();
}

QueryService::Stats QueryService::stats() const {
  Stats s;
  s.submitted = submitted_.load();
  s.completed = completed_.load();
  s.rejected = rejected_.load();
  s.in_flight = in_flight_.load();
  return s;
}

}  // namespace serve
}  // namespace sparkline
