#include "serve/query_service.h"

#include <algorithm>
#include <utility>

#include "api/dataframe.h"
#include "api/session.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace sparkline {
namespace serve {

QueryService::QueryService(Session* session, const Options& options)
    : session_(session),
      max_pending_(options.max_pending > 0
                       ? options.max_pending
                       : 4 * std::max(1, options.max_concurrent)),
      pool_(std::make_unique<ThreadPool>(
          static_cast<size_t>(std::max(1, options.max_concurrent)))),
      queue_wait_us_(metrics::MetricsRegistry::Global().GetHistogram(
          "sparkline_serve_queue_wait_us")),
      rejected_total_(metrics::MetricsRegistry::Global().GetCounter(
          "sparkline_serve_rejected_total")),
      shed_total_(metrics::MetricsRegistry::Global().GetCounter(
          "sparkline_serve_shed_total")),
      in_flight_gauge_(metrics::MetricsRegistry::Global().GetGauge(
          "sparkline_serve_in_flight")) {}

QueryService::~QueryService() {
  // ThreadPool's destructor drains the queue, so every admitted promise is
  // fulfilled before the service goes away.
  pool_.reset();
}

namespace {
Result<QueryResult> RunOne(Session* session, const std::string& sql,
                           const CancellationTokenPtr& token) {
  SL_ASSIGN_OR_RETURN(DataFrame df, session->Sql(sql));
  return session->Execute(df.plan(), token);
}
}  // namespace

void QueryService::RunAdmitted(
    const std::string& sql, const CancellationTokenPtr& token,
    int64_t admitted_nanos,
    const std::shared_ptr<std::promise<Result<QueryResult>>>& promise) {
  bool was_shed = false;
  // Queue wait: admission (Submit) to the moment a service thread picks the
  // query up.
  queue_wait_us_->Observe((StopWatch::NowNanos() - admitted_nanos) / 1000);
  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    const int64_t timeout_ms = session_->config().cluster.timeout_ms;
    if (token->cancelled()) {
      // Shed before execution: Cancel() won the race against the queue.
      was_shed = true;
      return Status::Cancelled("query cancelled while queued");
    }
    if (timeout_ms > 0 &&
        StopWatch::NowNanos() - admitted_nanos > timeout_ms * 1000000) {
      // The per-query deadline elapsed while the query sat in the queue;
      // executing it now could only produce a late timeout error anyway.
      was_shed = true;
      return Status::Timeout(
          StrCat("query spent longer than the ", timeout_ms,
                 "ms timeout waiting in the service queue"));
    }
    try {
      return RunOne(session_, sql, token);
    } catch (const std::exception& e) {
      // Last resort (execution converts its own exceptions to Status): the
      // promise must be fulfilled or the caller's future would hang.
      return Status::Internal(StrCat("query threw: ", e.what()));
    } catch (...) {
      return Status::Internal("query threw a non-std::exception");
    }
  }();
  // Counters flip before the future unblocks so that a caller observing
  // future.get() sees them settled.
  {
    sl::MutexLock lock(&stats_mu_);
    ++stats_.completed;
    if (was_shed) ++stats_.shed;
    --stats_.in_flight;
  }
  if (was_shed) shed_total_->Increment();
  in_flight_gauge_->Sub();
  promise->set_value(std::move(result));
}

Result<QueryHandle> QueryService::Submit(std::string sql) {
  {
    sl::MutexLock lock(&stats_mu_);
    if (stats_.in_flight >= max_pending_) {
      ++stats_.rejected;
      rejected_total_->Increment();
      return Status::Unavailable(
          StrCat("query service admission cap reached (", max_pending_,
                 " queries in flight); retry later"));
    }
    ++stats_.submitted;
    ++stats_.in_flight;
  }
  in_flight_gauge_->Add();

  QueryHandle handle;
  handle.token = std::make_shared<CancellationToken>();
  auto promise = std::make_shared<std::promise<Result<QueryResult>>>();
  handle.future = promise->get_future();
  const int64_t admitted_nanos = StopWatch::NowNanos();
  pool_->Submit([this, promise, token = handle.token, admitted_nanos,
                 sql = std::move(sql)]() {
    RunAdmitted(sql, token, admitted_nanos, promise);
  });
  return handle;
}

Result<QueryResult> QueryService::Execute(const std::string& sql) {
  SL_ASSIGN_OR_RETURN(QueryHandle handle, Submit(sql));
  return handle.future.get();
}

QueryService::Stats QueryService::stats() const {
  sl::MutexLock lock(&stats_mu_);
  return stats_;
}

}  // namespace serve
}  // namespace sparkline
