// Incremental skyline maintenance: cached results evolve under InsertInto
// instead of being invalidated (ROADMAP item 1; the continuous/streaming
// skyline family surveyed by Kalyvas & Tzouramanis grounds the recipe).
//
// The core observation: inserting rows is *monotone* for skylines — an
// existing tuple can leave the skyline (a new tuple dominates it) but no
// existing non-skyline tuple can enter (its dominator is still present).
// Under complete (transitive) dominance the cached skyline S of input T is
// a sufficient witness set for classifying a new tuple q: if any b in T
// dominates q, then either b is in S, or some s in S dominates b and hence
// (transitivity) dominates q. So
//
//   skyline(T ∪ B) = (S \ {s : ∃q ∈ enter(B), q dominates s}) ∪ enter(B)
//
// where enter(B) is the set of batch tuples dominated by nothing in S ∪ B.
// DeltaClassify (skyline/columnar.h) computes exactly this.
//
// When the argument does not hold, maintenance *falls back to
// invalidation* — a fallback costs a recompute on the next query, never a
// wrong answer:
//   - incomplete-data pipelines (dominance is not transitive, so S is not
//     a sufficient witness set) — mirrored from the planner's strategy
//     rule: maintainable iff COMPLETE was declared or no dimension is
//     nullable;
//   - plan shapes where inserted rows do not map 1:1 onto skyline input
//     (joins, aggregates, DISTINCT/sort/limit above the skyline, skylines
//     under further skylines) — only Scan → Filter*/Project* → Skyline
//     chains with deterministic whitelisted expressions are maintainable;
//   - DISTINCT dim-equal duplicates (the first-encountered tie-break
//     cannot be replayed without the full input order);
//   - any fault injected at the `serve.delta_apply` failpoint.
//
// Re-keying: cache keys fold the scanned table snapshot's version into the
// fingerprint hash, so after a write the *key itself* is stale even when
// the rows are not. The maintainer rewrites `scan(table@old` to
// `scan(table@new` in the entry's retained canonical form, re-hashes it
// (FingerprintFromCanonical), and swaps a successor entry in under the new
// key (ResultCache::Replace, CAS-guarded against concurrent inserts). A
// delta-maintained hit is therefore bit-identical to what a fresh
// execution against the new snapshot would return, by the soundness
// argument above — and stale hits remain *impossible by construction*
// regardless of maintenance timing, because a fingerprint computed after
// the write can only match an entry already advanced to the new version.
//
// Threading: OnWrite runs on the Catalog's notifier thread — writes are
// observed in version order, off every writer's critical section.
// Subscription callbacks run on that same thread, strictly ordered per
// subscription; they must not call back into this maintainer or the
// catalog's write paths.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/thread_safety.h"
#include "expr/expression.h"
#include "plan/logical_plan.h"
#include "serve/result_cache.h"
#include "skyline/dominance.h"

namespace sparkline {
namespace serve {

/// \brief How to re-derive one cached skyline's input from inserted table
/// rows: the scan's column selection, then the bound Filter/Project steps
/// between scan and skyline (bottom-up), then the skyline dimensions bound
/// against the final attribute layout. Immutable and shared by every
/// successor of an entry.
struct DeltaRecipe {
  struct Step {
    bool is_filter = false;
    /// Bound predicate (is_filter) — rows failing it never reach the
    /// skyline, so they are dropped from the batch.
    ExprPtr predicate;
    /// Bound projection expressions, one per output attribute (!is_filter).
    std::vector<ExprPtr> exprs;
  };

  /// Lower-cased catalog key of the single scanned table.
  std::string table;
  /// Table column ordinal backing each scan output attribute.
  std::vector<size_t> scan_columns;
  /// Scan-to-skyline pipeline, in application (bottom-up) order.
  std::vector<Step> steps;
  /// Skyline dimensions, bound against the post-steps attribute layout
  /// (which equals the cached entry's output layout).
  std::vector<skyline::BoundDimension> dims;
  bool distinct = false;
  /// Number of output attributes (sanity-checked on apply).
  size_t width = 0;
};

/// \brief Builds the maintenance recipe for an analyzed plan, or null when
/// the shape is invalidation-only (see header comment for the conditions).
/// When maintainable and `snapshot_version` is non-null, it receives the
/// version of the scanned-table snapshot the plan was analyzed against.
std::shared_ptr<const DeltaRecipe> BuildDeltaRecipe(
    const LogicalPlanPtr& analyzed, uint64_t* snapshot_version = nullptr);

/// \brief Applies the recipe's scan projection + steps to raw table rows,
/// producing the rows the cached skyline's input would have gained.
Result<std::vector<Row>> ApplyRecipe(const DeltaRecipe& recipe,
                                     const std::vector<Row>& table_rows);

/// \brief One continuous-query notification: the skyline gained `added`
/// and lost `removed` going to table version `version`. `resync` marks
/// deltas derived from a full recompute (unsound batch, non-insert write,
/// missed event) rather than an incremental classify — contents are exact
/// either way, and cumulative adds minus removes always equals the current
/// skyline.
struct SkylineDelta {
  std::string table;
  uint64_t version = 0;
  std::vector<Row> added;
  std::vector<Row> removed;
  bool resync = false;
};

using SubscriptionCallback = std::function<void(const SkylineDelta&)>;

/// \brief The write-side maintenance engine: a Catalog write listener that
/// advances (or invalidates) affected ResultCache entries and feeds
/// continuous-query subscriptions.
class IncrementalMaintainer {
 public:
  struct Stats {
    /// Cache entries advanced by delta application (no-op deltas that only
    /// re-keyed the entry included — surviving a write *is* the point).
    int64_t maintained = 0;
    /// Cache entries invalidated instead (no recipe, unsound batch, gapped
    /// version, oversized batch, or injected delta_apply fault).
    int64_t fallbacks = 0;
    /// Subscription recomputes (non-insert write, unsound/oversized batch,
    /// missed event) — counts the recompute even when its diff was empty
    /// and nothing was delivered.
    int64_t resyncs = 0;
    /// Non-empty subscription deltas delivered (incremental and resync).
    int64_t deltas_delivered = 0;
  };

  IncrementalMaintainer(Catalog* catalog, std::shared_ptr<ResultCache> cache);

  /// Catalog write listener body (runs on the catalog notifier thread).
  void OnWrite(const WriteEvent& event);

  /// Registers a continuous skyline query. The callback fires immediately
  /// (on the calling thread) with an initial resync delta carrying the
  /// full current skyline, then once per relevant catalog write on the
  /// notifier thread. Returns the id to pass to Unsubscribe.
  uint64_t Subscribe(std::shared_ptr<const DeltaRecipe> recipe,
                     SubscriptionCallback callback);

  /// Drops a subscription. One in-flight delivery may still complete
  /// concurrently with (but never after *and* ordered behind) this call.
  void Unsubscribe(uint64_t id);

  /// Runtime toggles (sparkline.cache.incremental / .max_delta_batch).
  void set_enabled(bool enabled) { enabled_.store(enabled); }
  bool enabled() const { return enabled_.load(); }
  void set_max_delta_batch(int64_t n) { max_delta_batch_.store(n); }
  int64_t max_delta_batch() const { return max_delta_batch_.load(); }

  Stats stats() const;

 private:
  struct Subscription {
    std::shared_ptr<const DeltaRecipe> recipe;
    std::shared_ptr<SubscriptionCallback> callback;
    std::vector<Row> skyline;  ///< current state
    uint64_t version = 0;
  };

  /// Advances one cache entry for an insert event; on any uncertainty the
  /// entry is removed (fallback). Never returns an error to the caller —
  /// maintenance is an optimization, not a correctness dependency.
  void MaintainEntry(const std::shared_ptr<const CachedResult>& entry,
                     const WriteEvent& event);
  /// The fault-injectable core of MaintainEntry: classify + successor
  /// build + CAS replace. An error (including one injected at
  /// serve.delta_apply) makes the caller invalidate the entry;
  /// `fallback_reason` is then set to the taxonomy label of the failure
  /// ("classify_unsound" for an unsound batch, "apply_error" otherwise).
  Status ApplyDelta(const std::shared_ptr<const CachedResult>& entry,
                    const WriteEvent& event, const char** fallback_reason);
  /// Updates one subscription for an event (insert -> classify; anything
  /// else or any uncertainty -> recompute). Returns the delta to deliver,
  /// or nullopt when the event is already reflected / changed nothing.
  /// Caller holds subs_mu_.
  std::optional<SkylineDelta> AdvanceSubscription(Subscription* sub,
                                                  const WriteEvent& event);
  /// Full recompute from the live catalog snapshot (a missing table reads
  /// as empty); returns the resync delta as the multiset diff against the
  /// subscription's previous state, which it replaces. Caller holds
  /// subs_mu_, unless `sub` is not yet registered (Subscribe's initial
  /// delivery builds a local Subscription outside the lock).
  SkylineDelta ResyncSubscription(Subscription* sub, const std::string& table);

  Catalog* catalog_;  ///< outlives the maintainer (session owns both)
  std::shared_ptr<ResultCache> cache_;

  std::atomic<bool> enabled_{true};
  std::atomic<int64_t> max_delta_batch_{1024};

  sl::Mutex subs_mu_;
  std::map<uint64_t, Subscription> subs_ SL_GUARDED_BY(subs_mu_);
  uint64_t next_sub_id_ SL_GUARDED_BY(subs_mu_) = 1;

  mutable std::atomic<int64_t> maintained_{0};
  mutable std::atomic<int64_t> fallbacks_{0};
  mutable std::atomic<int64_t> resyncs_{0};
  mutable std::atomic<int64_t> deltas_delivered_{0};

  // Registry mirrors (common/metrics.h), resolved once at construction.
  // Fallbacks are additionally labeled by reason — the taxonomy the lumped
  // fallbacks_ total hides: which soundness condition actually fired.
  metrics::Counter* maintained_counter_;
  metrics::Counter* fb_oversized_batch_;
  metrics::Counter* fb_no_recipe_;
  metrics::Counter* fb_version_gap_;
  metrics::Counter* fb_classify_unsound_;
  metrics::Counter* fb_apply_error_;
};

}  // namespace serve
}  // namespace sparkline
