// Fixed-size worker pool used to run per-partition tasks of a query stage.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_safety.h"

namespace sparkline {

/// \brief A fixed-size thread pool with a simple FIFO queue.
///
/// The executor uses one logical "executor slot" per simulated Spark executor;
/// tasks are per-partition closures. The pool is intentionally simple: tasks
/// must not throw (all sparkline code reports errors via Status).
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task) SL_EXCLUDES(mu_);

  /// Blocks until all submitted tasks have finished.
  void WaitIdle() SL_EXCLUDES(mu_);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop() SL_EXCLUDES(mu_);

  sl::Mutex mu_;
  sl::CondVar task_ready_;
  sl::CondVar all_done_;
  std::deque<std::function<void()>> queue_ SL_GUARDED_BY(mu_);
  std::vector<std::thread> workers_;
  size_t active_ SL_GUARDED_BY(mu_) = 0;
  bool shutdown_ SL_GUARDED_BY(mu_) = false;
};

/// \brief Runs fn(0) .. fn(n-1) on the pool and waits for completion.
///
/// `fn` must be safe to call concurrently for distinct indices. Used by the
/// executor to process the partitions of a stage "in parallel" (on this
/// single-core reference machine the parallelism is simulated; per-task CPU
/// time is what the metrics aggregate).
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace sparkline
