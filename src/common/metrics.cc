#include "common/metrics.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "common/string_util.h"

namespace sparkline {
namespace metrics {

namespace {

/// Position of the most significant set bit (v > 0).
int MsbIndex(int64_t v) {
  int o = 0;
  for (uint64_t u = static_cast<uint64_t>(v); u > 1; u >>= 1) ++o;
  return o;
}

/// Renders a label set as {k="v",...} with label names sorted, escaping
/// backslash, double-quote and newline per the Prometheus text format.
std::string RenderLabels(const Labels& labels) {
  if (labels.empty()) return "";
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out = "{";
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out += ",";
    out += sorted[i].first;
    out += "=\"";
    for (char c : sorted[i].second) {
      if (c == '\\' || c == '"') {
        out += '\\';
        out += c;
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out += c;
      }
    }
    out += "\"";
  }
  out += "}";
  return out;
}

/// Splices extra label text into a rendered label block: name + labels +
/// {le="..."} must merge into one block for histogram bucket series.
std::string WithExtraLabel(const std::string& labels, const std::string& extra) {
  if (labels.empty()) return StrCat("{", extra, "}");
  return StrCat(labels.substr(0, labels.size() - 1), ",", extra, "}");
}

const char* KindName(uint8_t kind) {
  switch (kind) {
    case 0:
      return "counter";
    case 1:
      return "gauge";
    default:
      return "histogram";
  }
}

}  // namespace

int Histogram::BucketIndex(int64_t v) {
  if (v <= 0) return 0;
  if (v < 4) return static_cast<int>(v);  // exact buckets 1..3
  int octave = MsbIndex(v);
  if (octave > kLastOctave) octave = kLastOctave;
  const int sub = static_cast<int>((v >> (octave - 2)) & 3);
  return 4 + (octave - kFirstOctave) * 4 + sub;
}

int64_t Histogram::BucketUpperBound(int index) {
  if (index <= 3) return index;  // 0, 1, 2, 3
  const int octave = kFirstOctave + (index - 4) / 4;
  const int sub = (index - 4) % 4;
  if (octave >= kLastOctave && sub == 3) {
    return std::numeric_limits<int64_t>::max();
  }
  // Bucket covers [(4+sub) << (octave-2), ((5+sub) << (octave-2)) - 1].
  return ((static_cast<int64_t>(sub) + 5) << (octave - 2)) - 1;
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_acquire);
  s.sum = sum_.load(std::memory_order_acquire);
  for (int i = 0; i < kNumBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_acquire);
  }
  return s;
}

int64_t Histogram::Snapshot::Percentile(double q) const {
  if (count <= 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the order statistic (1-based, ceil) the quantile asks for.
  int64_t rank = static_cast<int64_t>(q * static_cast<double>(count));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  int64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) return BucketUpperBound(i);
  }
  return BucketUpperBound(kNumBuckets - 1);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Instrument* MetricsRegistry::GetLocked(
    Kind kind, const std::string& name, const Labels& labels) {
  const std::string rendered = RenderLabels(labels);
  const std::string key = name + rendered;
  auto it = instruments_.find(key);
  if (it != instruments_.end()) {
    SL_CHECK(it->second.kind == kind)
        << "metric '" << key << "' already registered as "
        << KindName(static_cast<uint8_t>(it->second.kind))
        << ", requested as " << KindName(static_cast<uint8_t>(kind));
    return &it->second;
  }
  Instrument inst;
  inst.kind = kind;
  inst.name = name;
  inst.labels = rendered;
  switch (kind) {
    case Kind::kCounter:
      inst.counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      inst.gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      inst.histogram = std::make_unique<Histogram>();
      break;
  }
  return &instruments_.emplace(key, std::move(inst)).first->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels) {
  sl::MutexLock lock(&mu_);
  return GetLocked(Kind::kCounter, name, labels)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const Labels& labels) {
  sl::MutexLock lock(&mu_);
  return GetLocked(Kind::kGauge, name, labels)->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const Labels& labels) {
  sl::MutexLock lock(&mu_);
  return GetLocked(Kind::kHistogram, name, labels)->histogram.get();
}

std::string MetricsRegistry::TextExposition() const {
  sl::MutexLock lock(&mu_);
  std::string out;
  std::string last_typed_name;
  for (const auto& [key, inst] : instruments_) {
    if (inst.name != last_typed_name) {
      out += StrCat("# TYPE ", inst.name, " ",
                    KindName(static_cast<uint8_t>(inst.kind)), "\n");
      last_typed_name = inst.name;
    }
    switch (inst.kind) {
      case Kind::kCounter:
        out += StrCat(inst.name, inst.labels, " ", inst.counter->value(), "\n");
        break;
      case Kind::kGauge:
        out += StrCat(inst.name, inst.labels, " ", inst.gauge->value(), "\n");
        break;
      case Kind::kHistogram: {
        const Histogram::Snapshot s = inst.histogram->snapshot();
        int64_t cumulative = 0;
        for (int i = 0; i < Histogram::kNumBuckets; ++i) {
          if (s.buckets[i] == 0) continue;  // sparse: skip empty buckets
          cumulative += s.buckets[i];
          const int64_t le = Histogram::BucketUpperBound(i);
          const std::string le_text =
              le == std::numeric_limits<int64_t>::max()
                  ? std::string("+Inf")
                  : std::to_string(le);
          out += StrCat(
              inst.name, "_bucket",
              WithExtraLabel(inst.labels, StrCat("le=\"", le_text, "\"")), " ",
              cumulative, "\n");
        }
        out += StrCat(inst.name, "_bucket",
                      WithExtraLabel(inst.labels, "le=\"+Inf\""), " ", s.count,
                      "\n");
        out += StrCat(inst.name, "_sum", inst.labels, " ", s.sum, "\n");
        out += StrCat(inst.name, "_count", inst.labels, " ", s.count, "\n");
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::JsonSnapshot() const {
  sl::MutexLock lock(&mu_);
  std::string out = "{\n";
  bool first = true;
  for (const auto& [key, inst] : instruments_) {
    if (!first) out += ",\n";
    first = false;
    std::string escaped;
    for (char c : key) {
      if (c == '\\' || c == '"') escaped += '\\';
      escaped += c;
    }
    out += StrCat("  \"", escaped, "\": ");
    switch (inst.kind) {
      case Kind::kCounter:
        out += std::to_string(inst.counter->value());
        break;
      case Kind::kGauge:
        out += std::to_string(inst.gauge->value());
        break;
      case Kind::kHistogram: {
        const Histogram::Snapshot s = inst.histogram->snapshot();
        out += StrCat("{\"count\": ", s.count, ", \"sum\": ", s.sum,
                      ", \"p50\": ", s.Percentile(0.50),
                      ", \"p95\": ", s.Percentile(0.95),
                      ", \"p99\": ", s.Percentile(0.99), "}");
        break;
      }
    }
  }
  out += "\n}\n";
  return out;
}

}  // namespace metrics
}  // namespace sparkline
