// Byte accounting for materialized data, used to reproduce the paper's
// peak-memory-consumption experiments (Figures 8-10, 17, 19) and — since the
// fault-tolerance work — to *enforce* a per-query budget: with a limit set,
// TryGrow refuses reservations that would exceed it and the executor turns
// the refusal into a clean Status::ResourceExhausted instead of growing
// unboundedly.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/logging.h"

namespace sparkline {

/// \brief Tracks current and peak reserved bytes across threads.
///
/// Operators call Grow()/TryGrow() when they materialize partitions /
/// windows and Shrink() when buffers are released. The executor adds a
/// configurable fixed per-executor overhead on top of the tracked peak to
/// model each executor loading its entire execution environment (paper
/// section 6.5).
class MemoryTracker {
 public:
  void Grow(int64_t bytes) {
    int64_t now = current_.fetch_add(bytes) + bytes;
    UpdatePeak(now);
  }

  /// Reserves `bytes` unless the reservation would push current past the
  /// limit; returns false (reserving nothing) in that case. With no limit
  /// set this is exactly Grow(). A zero/negative request always succeeds.
  bool TryGrow(int64_t bytes) {
    const int64_t limit = limit_bytes_.load(std::memory_order_relaxed);
    if (limit <= 0) {
      Grow(bytes);
      return true;
    }
    int64_t cur = current_.load();
    do {
      if (cur + bytes > limit) return false;
    } while (!current_.compare_exchange_weak(cur, cur + bytes));
    UpdatePeak(cur + bytes);
    return true;
  }

  /// Releases `bytes`. Mismatched accounting (shrinking more than was ever
  /// grown) is a caller bug: it would drive current below zero and silently
  /// corrupt later peak math, so the release is clamped at zero — and
  /// asserts in debug builds so the mismatch is found, not papered over.
  void Shrink(int64_t bytes) {
    int64_t cur = current_.load();
    int64_t next;
    do {
      next = cur - bytes;
      if (next < 0) {
        SL_DCHECK(false) << "MemoryTracker::Shrink(" << bytes
                         << ") underflows current_=" << cur
                         << "; mismatched Grow/Shrink accounting";
        next = 0;
      }
    } while (!current_.compare_exchange_weak(cur, next));
  }

  int64_t current_bytes() const { return current_.load(); }
  int64_t peak_bytes() const { return peak_.load(); }

  /// Hard budget in bytes (0 = unlimited). Consulted by TryGrow and by
  /// ExecContext::CheckMemoryLimit (which also catches unconditional Grow
  /// overshoot, e.g. kernel-internal matrix reservations).
  void set_limit_bytes(int64_t bytes) { limit_bytes_.store(bytes); }
  int64_t limit_bytes() const { return limit_bytes_.load(); }

  void Reset() {
    current_.store(0);
    peak_.store(0);
  }

 private:
  void UpdatePeak(int64_t now) {
    int64_t peak = peak_.load();
    while (now > peak && !peak_.compare_exchange_weak(peak, now)) {
    }
  }

  std::atomic<int64_t> current_{0};
  std::atomic<int64_t> peak_{0};
  std::atomic<int64_t> limit_bytes_{0};
};

/// \brief Move-only RAII charge for bytes already reserved on a tracker.
///
/// Created by PhysicalPlan::ChargeOutput after a successful TryGrow and
/// carried by the PartitionedRelation it paid for; the destructor releases
/// the bytes, so a relation dying on ANY path — consumed by its parent
/// operator, dropped mid-plan by an error, or flattened at the plan root —
/// returns its reservation. Once the query's last relation is gone,
/// current_bytes() is back at zero (the invariant the fault-injection suite
/// asserts after every chaos run).
class MemoryCharge {
 public:
  MemoryCharge() = default;
  /// Takes ownership of `bytes` already reserved on `tracker`.
  MemoryCharge(MemoryTracker* tracker, int64_t bytes)
      : tracker_(tracker), bytes_(bytes) {}
  ~MemoryCharge() { Release(); }

  MemoryCharge(MemoryCharge&& other) noexcept
      : tracker_(other.tracker_), bytes_(other.bytes_) {
    other.tracker_ = nullptr;
    other.bytes_ = 0;
  }
  MemoryCharge& operator=(MemoryCharge&& other) noexcept {
    if (this != &other) {
      Release();
      tracker_ = other.tracker_;
      bytes_ = other.bytes_;
      other.tracker_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }
  MemoryCharge(const MemoryCharge&) = delete;
  MemoryCharge& operator=(const MemoryCharge&) = delete;

  void Release() {
    if (tracker_ != nullptr) tracker_->Shrink(bytes_);
    tracker_ = nullptr;
    bytes_ = 0;
  }
  int64_t bytes() const { return bytes_; }

 private:
  MemoryTracker* tracker_ = nullptr;
  int64_t bytes_ = 0;
};

/// \brief RAII reservation against a MemoryTracker.
///
/// Unconditional: used for bounded side allocations (matrix storage, join
/// hash tables, exchange double-buffers) whose size was already implied by
/// an admitted input. Limit enforcement happens at the relation-charge
/// points (MemoryCharge via PhysicalPlan::ChargeOutput) and via
/// ExecContext::CheckMemoryLimit, which observes any overshoot these
/// reservations cause.
class ScopedReservation {
 public:
  ScopedReservation(MemoryTracker* tracker, int64_t bytes)
      : tracker_(tracker), bytes_(bytes) {
    if (tracker_ != nullptr) tracker_->Grow(bytes_);
  }
  ~ScopedReservation() {
    if (tracker_ != nullptr) tracker_->Shrink(bytes_);
  }
  ScopedReservation(const ScopedReservation&) = delete;
  ScopedReservation& operator=(const ScopedReservation&) = delete;

 private:
  MemoryTracker* tracker_;
  int64_t bytes_;
};

}  // namespace sparkline
