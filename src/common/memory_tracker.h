// Byte accounting for materialized data, used to reproduce the paper's
// peak-memory-consumption experiments (Figures 8-10, 17, 19).
#pragma once

#include <atomic>
#include <cstdint>

namespace sparkline {

/// \brief Tracks current and peak reserved bytes across threads.
///
/// Operators call Grow() when they materialize partitions / windows and
/// Shrink() when buffers are released. The executor adds a configurable
/// fixed per-executor overhead on top of the tracked peak to model each
/// executor loading its entire execution environment (paper section 6.5).
class MemoryTracker {
 public:
  void Grow(int64_t bytes) {
    int64_t now = current_.fetch_add(bytes) + bytes;
    int64_t peak = peak_.load();
    while (now > peak && !peak_.compare_exchange_weak(peak, now)) {
    }
  }

  void Shrink(int64_t bytes) { current_.fetch_sub(bytes); }

  int64_t current_bytes() const { return current_.load(); }
  int64_t peak_bytes() const { return peak_.load(); }

  void Reset() {
    current_.store(0);
    peak_.store(0);
  }

 private:
  std::atomic<int64_t> current_{0};
  std::atomic<int64_t> peak_{0};
};

/// \brief RAII reservation against a MemoryTracker.
class ScopedReservation {
 public:
  ScopedReservation(MemoryTracker* tracker, int64_t bytes)
      : tracker_(tracker), bytes_(bytes) {
    if (tracker_ != nullptr) tracker_->Grow(bytes_);
  }
  ~ScopedReservation() {
    if (tracker_ != nullptr) tracker_->Shrink(bytes_);
  }
  ScopedReservation(const ScopedReservation&) = delete;
  ScopedReservation& operator=(const ScopedReservation&) = delete;

 private:
  MemoryTracker* tracker_;
  int64_t bytes_;
};

}  // namespace sparkline
