// Status: lightweight error propagation without exceptions, in the style of
// Apache Arrow / RocksDB. Every fallible public API in sparkline returns
// either a Status or a Result<T> (see result.h).
#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace sparkline {

/// \brief Machine-readable category of an error.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kAnalysisError,
  kPlanError,
  kExecutionError,
  kTimeout,
  kNotFound,
  kAlreadyExists,
  kNotImplemented,
  kInternal,
  /// Transient overload (e.g. the query service's admission cap); retry.
  kUnavailable,
  /// The query was cancelled via its CancellationToken; never retried.
  kCancelled,
  /// A hard resource limit (ClusterConfig::memory_limit_bytes) was hit;
  /// retrying the same query against the same limit cannot succeed.
  kResourceExhausted,
};

/// \brief Returns a human-readable name for a status code ("Parse error", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation: OK, or an error code plus message.
///
/// Status is cheap to copy in the OK case (no allocation) and is intended to
/// be propagated with the SL_RETURN_NOT_OK / SL_ASSIGN_OR_RETURN macros.
/// [[nodiscard]] at class level: silently dropping a returned Status swallows
/// the error (tools/sl_lint.py additionally checks the declarations).
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status AnalysisError(std::string msg) {
    return Status(StatusCode::kAnalysisError, std::move(msg));
  }
  static Status PlanError(std::string msg) {
    return Status(StatusCode::kPlanError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// True for errors that model a transient fault of the simulated cluster
  /// (a lost task, a flaky exchange): re-executing the same deterministic
  /// task may succeed, so the stage runner retries these up to
  /// ClusterConfig::task_retries times. Deterministic failures — Timeout,
  /// Cancelled, ResourceExhausted, parse/analysis/plan errors — are never
  /// retried.
  bool IsRetryable() const { return code_ == StatusCode::kUnavailable; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// \brief "Parse error: unexpected token" style rendering.
  std::string ToString() const {
    if (ok()) return "OK";
    std::string out = StatusCodeToString(code_);
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kAnalysisError:
      return "Analysis error";
    case StatusCode::kPlanError:
      return "Plan error";
    case StatusCode::kExecutionError:
      return "Execution error";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
  }
  return "Unknown";
}

}  // namespace sparkline

/// Propagates a non-OK Status from the current function.
#define SL_RETURN_NOT_OK(expr)                   \
  do {                                           \
    ::sparkline::Status _st = (expr);            \
    if (!_st.ok()) return _st;                   \
  } while (0)

#define SL_CONCAT_IMPL(a, b) a##b
#define SL_CONCAT(a, b) SL_CONCAT_IMPL(a, b)

/// Evaluates an expression returning Result<T>; on error propagates the
/// Status, otherwise assigns the value to `lhs` (which may be a declaration).
#define SL_ASSIGN_OR_RETURN(lhs, expr)                        \
  auto SL_CONCAT(_res_, __LINE__) = (expr);                   \
  if (!SL_CONCAT(_res_, __LINE__).ok())                       \
    return SL_CONCAT(_res_, __LINE__).status();               \
  lhs = std::move(SL_CONCAT(_res_, __LINE__)).MoveValue();
