#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace sparkline {

ZipfDistribution::ZipfDistribution(int64_t n, double s) {
  SL_CHECK(n >= 1) << "zipf needs n >= 1, got " << n;
  cdf_.resize(static_cast<size_t>(n));
  double total = 0.0;
  for (int64_t k = 1; k <= n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k), s);
    cdf_[static_cast<size_t>(k - 1)] = total;
  }
  for (auto& c : cdf_) c /= total;
}

int64_t ZipfDistribution::Sample(Rng* rng) const {
  double u = rng->Uniform(0.0, 1.0);
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return static_cast<int64_t>(cdf_.size());
  return static_cast<int64_t>(it - cdf_.begin()) + 1;
}

}  // namespace sparkline
