// Deterministic random generation helpers for the data generators.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace sparkline {

/// \brief Seeded pseudo-random generator with the distributions the dataset
/// generators need (uniform, normal, lognormal, zipf, bernoulli).
///
/// Determinism contract: for a fixed seed and call sequence the output is
/// identical across runs and platforms using the same libstdc++; tests pin
/// only statistical properties, not exact streams.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
  }

  double Normal(double mean, double stddev) {
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
  }

  double LogNormal(double mu, double sigma) {
    std::lognormal_distribution<double> d(mu, sigma);
    return d(engine_);
  }

  /// True with probability p.
  bool Bernoulli(double p) {
    std::bernoulli_distribution d(p);
    return d(engine_);
  }

  /// Random element index weighted by the given non-negative weights.
  size_t Discrete(const std::vector<double>& weights) {
    std::discrete_distribution<size_t> d(weights.begin(), weights.end());
    return d(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// \brief Bounded Zipf(n, s) sampler over {1..n} with precomputed CDF.
///
/// Used for skewed attributes such as review counts. O(log n) per sample.
class ZipfDistribution {
 public:
  ZipfDistribution(int64_t n, double s);

  /// Samples a value in [1, n]; small values are (much) more likely.
  int64_t Sample(Rng* rng) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace sparkline
