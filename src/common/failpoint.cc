#include "common/failpoint.h"

#include <atomic>
#include <chrono>
#include <map>
#include <stdexcept>
#include <thread>

#include "common/logging.h"
#include "common/result.h"
#include "common/string_util.h"
#include "common/thread_safety.h"

namespace sparkline {
namespace fail {

namespace {

/// The compiled-in site list. Every SL_FAILPOINT site in the engine must
/// appear here; the chaos suite sweeps this list, and Arm() rejects names
/// that are not on it so a typo cannot silently never fire.
///
///   exec.scan          ScanExec partition tasks (leaf materialization)
///   exec.local_task    LocalSkylineExec partition tasks
///   exec.global_task   GlobalSkyline{,Incomplete}Exec stage tasks
///                      (partial/merge/candidates/validate/finalize)
///   exec.broadcast     BroadcastFilterExec nominate/filter stages
///                      (degrades to the unfiltered pre-gather path)
///   exec.exchange      ExchangeExec (row shuffle and columnar concat)
///   exec.stage_task    every other stage runner (project/filter/join/
///                      aggregate/sort — the generic per-task site)
///   serve.cache_insert ResultCache::Insert (degrades to uncached serving)
///   serve.delta_apply  IncrementalMaintainer delta application (degrades
///                      to invalidation — never a stale hit)
///   catalog.write      Catalog::InsertInto (copy-on-write publish)
constexpr const char* kSites[] = {
    "exec.scan",          "exec.local_task", "exec.global_task",
    "exec.broadcast",     "exec.exchange",   "exec.stage_task",
    "serve.cache_insert", "serve.delta_apply", "catalog.write",
};

struct SiteState {
  bool armed = false;
  FailpointSpec spec;
  int64_t hits = 0;   ///< times the site was evaluated while armed
  int64_t fires = 0;  ///< times it actually injected its action
  uint64_t rng = 0;   ///< per-site deterministic PRNG state
};

struct Registry {
  sl::Mutex mu;
  std::map<std::string, SiteState> sites SL_GUARDED_BY(mu);

  Registry() {
    for (const char* s : kSites) sites.emplace(s, SiteState{});
  }
};

Registry& GetRegistry() {
  static Registry* r = new Registry();  // immortal: sites outlive statics
  return *r;
}

/// Number of armed sites; the disarmed-path fast check.
std::atomic<int> g_armed_count{0};

/// xorshift64* — deterministic, seedable, good enough for fault coin flips.
double NextUniform(uint64_t* state) {
  uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return static_cast<double>((x * 0x2545F4914F6CDD1Dull) >> 11) /
         static_cast<double>(1ull << 53);
}

}  // namespace

bool AnyArmed() {
  return g_armed_count.load(std::memory_order_relaxed) > 0;
}

Status Hit(const char* site) {
  FailpointSpec fired_spec;
  bool fires = false;
  {
    Registry& reg = GetRegistry();
    sl::MutexLock lock(&reg.mu);
    auto it = reg.sites.find(site);
    if (it == reg.sites.end()) {
      SL_DCHECK(false) << "SL_FAILPOINT site '" << site
                       << "' is not in the registered site list";
      return Status::OK();
    }
    SiteState& state = it->second;
    if (!state.armed) return Status::OK();
    const int64_t hit = ++state.hits;
    if (hit < state.spec.from_hit) return Status::OK();
    if (state.spec.max_fires >= 0 && state.fires >= state.spec.max_fires) {
      return Status::OK();
    }
    if (state.spec.probability < 1.0 &&
        NextUniform(&state.rng) >= state.spec.probability) {
      return Status::OK();
    }
    ++state.fires;
    fired_spec = state.spec;
    fires = true;
  }
  if (!fires) return Status::OK();

  switch (fired_spec.action) {
    case Action::kError:
      return Status(fired_spec.code,
                    StrCat("injected fault at failpoint '", site, "'"));
    case Action::kThrow:
      throw std::runtime_error(
          StrCat("injected exception at failpoint '", site, "'"));
    case Action::kDelay:
      std::this_thread::sleep_for(
          std::chrono::milliseconds(fired_spec.delay_ms));
      return Status::OK();
  }
  return Status::OK();
}

Status Arm(const std::string& site, const FailpointSpec& spec) {
  Registry& reg = GetRegistry();
  sl::MutexLock lock(&reg.mu);
  auto it = reg.sites.find(site);
  if (it == reg.sites.end()) {
    return Status::NotFound(
        StrCat("unknown failpoint '", site, "' (see RegisteredSites())"));
  }
  if (!it->second.armed) g_armed_count.fetch_add(1);
  SiteState& state = it->second;
  state.armed = true;
  state.spec = spec;
  state.hits = 0;
  state.fires = 0;
  state.rng = spec.seed != 0 ? spec.seed : 0x9E3779B97F4A7C15ull;
  return Status::OK();
}

void Disarm(const std::string& site) {
  Registry& reg = GetRegistry();
  sl::MutexLock lock(&reg.mu);
  auto it = reg.sites.find(site);
  if (it == reg.sites.end() || !it->second.armed) return;
  it->second.armed = false;
  g_armed_count.fetch_sub(1);
}

void DisarmAll() {
  Registry& reg = GetRegistry();
  sl::MutexLock lock(&reg.mu);
  for (auto& [name, state] : reg.sites) {
    if (state.armed) g_armed_count.fetch_sub(1);
    state = SiteState{};
  }
}

std::vector<std::string> RegisteredSites() {
  std::vector<std::string> out;
  for (const char* s : kSites) out.emplace_back(s);
  return out;
}

int64_t FireCount(const std::string& site) {
  Registry& reg = GetRegistry();
  sl::MutexLock lock(&reg.mu);
  auto it = reg.sites.find(site);
  return it == reg.sites.end() ? 0 : it->second.fires;
}

namespace {

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  size_t e = s.find_last_not_of(" \t");
  return b == std::string::npos ? std::string() : s.substr(b, e - b + 1);
}

Result<FailpointSpec> ParseSpec(const std::string& text) {
  FailpointSpec spec;
  // Split off trailing modifiers (@N, *N, %p[:seed]) right-to-left; the
  // remaining head is the action.
  std::string head = text;
  while (!head.empty()) {
    const size_t at = head.find_last_of("@*%");
    if (at == std::string::npos) break;
    // ':' inside delay:<ms> must not be eaten as a modifier boundary; only
    // treat the suffix as a modifier when it parses.
    const std::string suffix = head.substr(at + 1);
    const char kind = head[at];
    try {
      if (kind == '@') {
        spec.from_hit = std::stoll(suffix);
        if (spec.from_hit < 1) {
          return Status::Invalid("failpoint @from_hit must be >= 1");
        }
      } else if (kind == '*') {
        spec.max_fires = std::stoll(suffix);
        if (spec.max_fires < 0) {
          return Status::Invalid("failpoint *max_fires must be >= 0");
        }
      } else {  // '%'
        const size_t colon = suffix.find(':');
        spec.probability = std::stod(suffix.substr(0, colon));
        if (colon != std::string::npos) {
          spec.seed = static_cast<uint64_t>(
              std::stoull(suffix.substr(colon + 1)));
        }
        if (spec.probability < 0 || spec.probability > 1) {
          return Status::Invalid("failpoint %probability must be in [0, 1]");
        }
      }
    } catch (...) {
      return Status::Invalid(
          StrCat("malformed failpoint modifier '", kind, suffix, "'"));
    }
    head = head.substr(0, at);
  }

  const std::string action = ToLower(head);
  if (action == "error" || action == "error(unavailable)") {
    spec.action = Action::kError;
    spec.code = StatusCode::kUnavailable;
  } else if (action == "error(internal)") {
    spec.action = Action::kError;
    spec.code = StatusCode::kInternal;
  } else if (action == "error(execution)") {
    spec.action = Action::kError;
    spec.code = StatusCode::kExecutionError;
  } else if (action == "throw") {
    spec.action = Action::kThrow;
  } else if (action.rfind("delay:", 0) == 0) {
    spec.action = Action::kDelay;
    try {
      spec.delay_ms = std::stoll(action.substr(6));
    } catch (...) {
      return Status::Invalid(StrCat("malformed delay '", action, "'"));
    }
    if (spec.delay_ms < 0) {
      return Status::Invalid("failpoint delay must be >= 0 ms");
    }
  } else {
    return Status::Invalid(StrCat(
        "unknown failpoint action '", head,
        "' (error | error(internal) | error(execution) | throw | delay:<ms>)"));
  }
  return spec;
}

}  // namespace

Status ArmFromString(const std::string& flag_value) {
  DisarmAll();
  if (flag_value.empty()) return Status::OK();
  for (const std::string& part : Split(flag_value, ';')) {
    const std::string trimmed = Trim(part);
    if (trimmed.empty()) continue;
    const size_t eq = trimmed.find('=');
    if (eq == std::string::npos) {
      return Status::Invalid(
          StrCat("failpoint spec '", trimmed, "' is missing '='"));
    }
    SL_ASSIGN_OR_RETURN(FailpointSpec spec,
                        ParseSpec(Trim(trimmed.substr(eq + 1))));
    SL_RETURN_NOT_OK(Arm(Trim(trimmed.substr(0, eq)), spec));
  }
  return Status::OK();
}

}  // namespace fail
}  // namespace sparkline
