// Minimal stream-style logging and assertion macros (glog-flavoured).
#pragma once

#include <sstream>
#include <string>

namespace sparkline {
namespace internal {

enum class LogLevel { kDebug = 0, kInfo, kWarning, kError, kFatal };

/// \brief Collects one log line and emits it (to stderr) on destruction.
/// A kFatal message aborts the process after printing.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Minimum level that is actually printed (default: kWarning; tests and
/// benches may lower it).
void SetMinLogLevel(LogLevel level);
LogLevel GetMinLogLevel();

}  // namespace internal
}  // namespace sparkline

#define SL_LOG_INTERNAL(level) \
  ::sparkline::internal::LogMessage( \
      ::sparkline::internal::LogLevel::level, __FILE__, __LINE__)

#define SL_LOG_DEBUG SL_LOG_INTERNAL(kDebug)
#define SL_LOG_INFO SL_LOG_INTERNAL(kInfo)
#define SL_LOG_WARN SL_LOG_INTERNAL(kWarning)
#define SL_LOG_ERROR SL_LOG_INTERNAL(kError)

/// Fatal assertion, active in all build types. Usage:
///   SL_CHECK(n > 0) << "need rows, got " << n;
#define SL_CHECK(cond)        \
  if (cond) {                 \
  } else                      \
    SL_LOG_INTERNAL(kFatal) << "Check failed: `" #cond "` "

/// Fatal assertion on a non-OK Status.
#define SL_CHECK_OK(expr)                                      \
  if (::sparkline::Status _slst = (expr); _slst.ok()) {        \
  } else                                                       \
    SL_LOG_INTERNAL(kFatal) << "Bad status: " << _slst.ToString() << " "

#ifdef NDEBUG
#define SL_DCHECK(cond) \
  if (true) {           \
  } else                \
    SL_LOG_INTERNAL(kFatal)
#else
#define SL_DCHECK(cond) SL_CHECK(cond)
#endif
