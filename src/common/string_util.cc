#include "common/string_util.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace sparkline {

std::string JoinStrings(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string DoubleToString(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "Infinity" : "-Infinity";
  // Integral values print without a fraction.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string FormatFixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string Indent(const std::string& s, int n) {
  std::string pad(static_cast<size_t>(n), ' ');
  std::string out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t end = s.find('\n', start);
    if (end == std::string::npos) end = s.size();
    out += pad;
    out += s.substr(start, end - start);
    if (end < s.size()) out += '\n';
    start = end + 1;
  }
  return out;
}

}  // namespace sparkline
