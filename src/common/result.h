// Result<T>: value-or-Status, in the style of arrow::Result.
#pragma once

#include <utility>
#include <variant>

#include "common/logging.h"
#include "common/status.h"

namespace sparkline {

/// \brief Holds either a value of type T or an error Status.
///
/// Construction from T or from a (non-OK) Status is implicit so that
/// functions can `return value;` or `return Status::Invalid(...)`.
/// [[nodiscard]] at class level: a dropped Result drops the error with it.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a successful value.
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs from an error; `status` must not be OK.
  Result(Status status) : storage_(std::move(status)) {  // NOLINT
    SL_CHECK(!std::get<Status>(storage_).ok())
        << "Result constructed from OK status";
  }

  bool ok() const { return std::holds_alternative<T>(storage_); }

  /// Returns the error status, or OK if this holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(storage_);
  }

  /// Returns the contained value; fatal error if this holds a Status.
  const T& ValueOrDie() const& {
    SL_CHECK(ok()) << "ValueOrDie on error Result: " << status().ToString();
    return std::get<T>(storage_);
  }
  T& ValueOrDie() & {
    SL_CHECK(ok()) << "ValueOrDie on error Result: " << status().ToString();
    return std::get<T>(storage_);
  }

  /// Moves the contained value out; fatal error if this holds a Status.
  T MoveValue() && {
    SL_CHECK(ok()) << "MoveValue on error Result: " << status().ToString();
    return std::move(std::get<T>(storage_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> storage_;
};

}  // namespace sparkline
