// Small string helpers (the toolchain lacks std::format).
#pragma once

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace sparkline {

namespace internal {
inline void StrCatImpl(std::ostringstream&) {}
template <typename T, typename... Rest>
void StrCatImpl(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  StrCatImpl(os, rest...);
}
}  // namespace internal

/// Concatenates all arguments using operator<<.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  internal::StrCatImpl(os, args...);
  return os.str();
}

/// Joins the elements of `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on the single character `sep`; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// ASCII-lowercases a copy of `s`.
std::string ToLower(std::string_view s);
/// ASCII-uppercases a copy of `s`.
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Renders a double without trailing noise ("3", "3.5", "3.141593").
std::string DoubleToString(double v);

/// Renders a double with exactly `digits` fraction digits ("3.500").
std::string FormatFixed(double v, int digits);

/// Indents every line of `s` by `n` spaces.
std::string Indent(const std::string& s, int n);

}  // namespace sparkline
