// Process-wide metrics registry: named, labeled counters, gauges and
// log-bucketed histograms with Prometheus-style text exposition.
//
// Design goals, in order:
//   1. The hot path is cheap enough to leave on in release serving builds:
//      a Counter::Increment is ONE relaxed atomic add — no lock, no map
//      lookup, no string formatting. Components resolve their instruments
//      once (at construction, or via a function-local static) and keep the
//      raw pointer; instrument pointers are stable for the process lifetime
//      because the registry never deletes an instrument.
//   2. Histograms are log-bucketed (4 sub-buckets per power-of-two octave,
//      <= 25% relative bucket width), so tail quantiles (p95/p99) come out
//      of ~250 fixed atomic buckets instead of a reservoir — Observe is a
//      handful of relaxed atomic adds and percentile extraction never
//      touches the recording threads.
//   3. Scraping (TextExposition / JsonSnapshot) takes the registry mutex
//      only to walk the instrument map; instrument values are read with
//      acquire loads, so a scrape observes every increment that
//      happened-before it without ever blocking recorders.
//
// The registry is process-wide (MetricsRegistry::Global()), mirroring the
// failpoint registry: serving metrics describe the process, not a session.
// Sessions expose the scrape through Session::MetricsText(). Tests that
// assert on counters must therefore compare before/after deltas, not
// absolute values.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_safety.h"

namespace sparkline {
namespace metrics {

/// \brief A monotonically increasing counter.
class Counter {
 public:
  void Increment(int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_acquire); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief A value that can go up and down (e.g. in-flight queries).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n = 1) { value_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_acquire); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Log-bucketed histogram over non-negative int64 observations
/// (by convention: microseconds for latency instruments).
///
/// Bucket layout: bucket 0 holds v <= 0; buckets 1..3 hold the exact values
/// 1, 2, 3; from v >= 4 on, each power-of-two octave [2^o, 2^(o+1)) is split
/// into 4 sub-buckets by the top two mantissa bits. A bucket's width is at
/// most 25% of its lower bound, so any quantile read from a bucket upper
/// bound is within 25% of the true order statistic.
class Histogram {
 public:
  /// Buckets: 1 zero/negative + 3 exact + 4 per octave for octaves 2..62.
  static constexpr int kFirstOctave = 2;
  static constexpr int kLastOctave = 62;
  static constexpr int kNumBuckets =
      4 + 4 * (kLastOctave - kFirstOctave + 1);

  void Observe(int64_t v) {
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Index of the bucket `v` lands in.
  static int BucketIndex(int64_t v);
  /// Inclusive upper bound of bucket `index` (the Prometheus `le` value);
  /// the last bucket reports INT64_MAX and is rendered as +Inf.
  static int64_t BucketUpperBound(int index);

  /// \brief A point-in-time copy of the bucket counts.
  struct Snapshot {
    int64_t count = 0;
    int64_t sum = 0;
    int64_t buckets[kNumBuckets] = {};

    /// The upper bound of the bucket containing the q-quantile
    /// (q in [0, 1]); 0 when empty. Within 25% of the true order statistic
    /// by the bucket-width bound above.
    int64_t Percentile(double q) const;
  };

  Snapshot snapshot() const;

  int64_t count() const { return count_.load(std::memory_order_acquire); }
  int64_t sum() const { return sum_.load(std::memory_order_acquire); }

 private:
  std::atomic<int64_t> buckets_[kNumBuckets] = {};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> count_{0};
};

/// Label set of one instrument, e.g. {{"reason", "no_recipe"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// \brief The process-wide instrument registry.
///
/// Instruments are identified by (name, labels). Getting an instrument that
/// already exists returns the same pointer; instruments are never removed,
/// so pointers may be cached indefinitely. Registering the same name with
/// two different instrument types is a programming error and aborts.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  Histogram* GetHistogram(const std::string& name, const Labels& labels = {});

  /// Prometheus text exposition (one `# TYPE` comment per metric name;
  /// histograms render cumulative `_bucket{le=...}` series for non-empty
  /// buckets plus `+Inf`, `_sum` and `_count`).
  std::string TextExposition() const;

  /// JSON snapshot for the benchmark trajectory files: counters/gauges as
  /// numbers, histograms as {count, sum, p50, p95, p99}.
  std::string JsonSnapshot() const;

 private:
  MetricsRegistry() = default;

  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };
  struct Instrument {
    Kind kind;
    std::string name;    ///< metric name without labels
    std::string labels;  ///< rendered {k="v",...} or empty
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Instrument* GetLocked(Kind kind, const std::string& name,
                        const Labels& labels) SL_REQUIRES(mu_);

  mutable sl::Mutex mu_;
  /// Keyed by name + rendered labels; std::map so exposition output is
  /// sorted and same-name series are adjacent.
  std::map<std::string, Instrument> instruments_ SL_GUARDED_BY(mu_);
};

}  // namespace metrics
}  // namespace sparkline
