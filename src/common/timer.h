// Wall-clock and per-thread CPU timers.
//
// The reproduction runs on a single core, so wall-clock time cannot show the
// effect of adding executors. Stage tasks are therefore timed with the
// per-thread CPU clock; the executor combines task times into a critical-path
// "simulated cluster time" (max over the partitions of a stage, summed over
// stages). See DESIGN.md section 2.
#pragma once

#include <cstdint>
#include <ctime>

namespace sparkline {

/// \brief Monotonic wall-clock stopwatch (nanosecond resolution).
class StopWatch {
 public:
  StopWatch() { Restart(); }
  void Restart() { start_ = NowNanos(); }
  int64_t ElapsedNanos() const { return NowNanos() - start_; }
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }

  static int64_t NowNanos() {
    timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
  }

 private:
  int64_t start_;
};

/// \brief CPU time consumed by the calling thread (immune to time slicing).
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() { Restart(); }
  void Restart() { start_ = NowNanos(); }
  int64_t ElapsedNanos() const { return NowNanos() - start_; }

  static int64_t NowNanos() {
    timespec ts;
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
  }

 private:
  int64_t start_;
};

}  // namespace sparkline
