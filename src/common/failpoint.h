// Failpoints: named fault-injection sites for chaos-testing the engine.
//
// Modeled on the failpoint facilities of LevelDB/TiKV: production code marks
// interesting sites with SL_FAILPOINT("site.name"); a disarmed site costs a
// single relaxed atomic load (no lock, no string hashing), so the
// instrumentation can stay in release builds. Tests (or operators, via the
// `sparkline.failpoints` session flag) arm sites to
//
//   - return an injected Status (Unavailable by default — the transient
//     "lost task" fault the stage runner retries; or Internal, which is
//     terminal),
//   - throw (exercising the must-not-throw guards of the thread pool and
//     the stage runner),
//   - inject latency (driving timeout/cancellation paths), or
//   - any of the above on the Nth hit, with a fire budget, or with seeded
//     probability,
//
// which lets the fault-injection suite sweep every registered site across
// every kernel/exchange configuration and assert that each query either
// succeeds bit-identical to the no-fault oracle (after retries) or fails
// with a clean Status — never a crash, hang, or leaked reservation.
//
// The registry is process-wide (sites are compiled into the engine, not
// per-session), like every real failpoint library. Arming is meant for
// tests and single-session tools; concurrent sessions share armed faults.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/status.h"

namespace sparkline {
namespace fail {

/// \brief What an armed failpoint does when it fires.
enum class Action : uint8_t {
  /// Return an injected error Status (spec.code).
  kError,
  /// Throw std::runtime_error — simulates third-party code violating the
  /// "tasks must not throw" contract; the thread-pool / stage-runner guards
  /// convert it into a failed query instead of std::terminate.
  kThrow,
  /// Sleep for spec.delay_ms, then continue normally.
  kDelay,
};

/// \brief Arming spec for one site.
struct FailpointSpec {
  Action action = Action::kError;
  /// Injected error code for kError. kUnavailable is retryable (the stage
  /// runner re-executes the task); kInternal and friends are terminal.
  StatusCode code = StatusCode::kUnavailable;
  /// Sleep duration for kDelay.
  int64_t delay_ms = 0;
  /// First hit (1-based) that fires; earlier hits pass through. 1 = fire
  /// from the first hit on.
  int64_t from_hit = 1;
  /// Maximum number of fires (-1 = unlimited). `from_hit=1, max_fires=2`
  /// models a task that fails twice and then succeeds — the retry path.
  int64_t max_fires = -1;
  /// Fire probability in [0, 1], evaluated per eligible hit with a seeded
  /// deterministic generator (reproducible chaos).
  double probability = 1.0;
  uint64_t seed = 0;
};

/// True when at least one site is armed anywhere in the process. This is
/// the only check disarmed hot paths pay.
bool AnyArmed();

/// Evaluates the site: returns the injected Status / sleeps / throws when
/// the site is armed and its trigger matches, OK otherwise. Unregistered
/// names are a programming error (SL_DCHECK) and return OK.
Status Hit(const char* site);

/// Arms `site` with `spec`; fails with NotFound for unregistered sites
/// (registration is the compiled-in site list — see RegisteredSites).
Status Arm(const std::string& site, const FailpointSpec& spec);

/// Disarms one site (no-op when not armed).
void Disarm(const std::string& site);

/// Disarms everything and resets all hit counters.
void DisarmAll();

/// Every site compiled into the engine, in stable order. The chaos suite
/// sweeps exactly this list, so a new SL_FAILPOINT site must be added to
/// the registry (failpoint.cc) to take effect — Arm() on an unknown name
/// fails loudly rather than silently never firing.
std::vector<std::string> RegisteredSites();

/// Times `site` fired (injected a fault) since the last DisarmAll.
int64_t FireCount(const std::string& site);

/// Parses and applies a flag-style arming string:
///
///   spec      := site '=' action modifiers*
///   action    := 'error' | 'error(' code ')' | 'throw' | 'delay:' ms
///   code      := 'unavailable' | 'internal' | 'execution'
///   modifiers := '@' from_hit    (fire starting at the Nth hit)
///              | '*' max_fires   (stop after N fires)
///              | '%' probability [':' seed]
///
/// Multiple specs are separated by ';'. The empty string disarms all. E.g.
///   "exec.local_task=error*2"            fail the first two task attempts
///   "exec.exchange=delay:50"             50 ms latency in every exchange
///   "serve.cache_insert=error(internal)" terminal cache-write fault
///   "exec.stage_task=error%0.5:42"       flaky tasks, seeded coin flips
Status ArmFromString(const std::string& flag_value);

/// \brief RAII arming for tests: arms in the constructor, disarms in the
/// destructor.
class ScopedFailpoint {
 public:
  ScopedFailpoint(const std::string& site, const FailpointSpec& spec)
      : site_(site) {
    SL_CHECK_OK(Arm(site, spec)) << "arming failpoint '" << site << "'";
  }
  ~ScopedFailpoint() { Disarm(site_); }
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string site_;
};

}  // namespace fail
}  // namespace sparkline

/// Marks a fault-injection site inside a Status-returning function:
/// propagates the injected Status when the site is armed and fires. Costs
/// one relaxed atomic load when nothing is armed anywhere.
#define SL_FAILPOINT(site)                                    \
  do {                                                        \
    if (::sparkline::fail::AnyArmed()) {                      \
      SL_RETURN_NOT_OK(::sparkline::fail::Hit(site));         \
    }                                                         \
  } while (0)
