#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace sparkline {
namespace internal {

namespace {
std::atomic<LogLevel> g_min_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

void SetMinLogLevel(LogLevel level) { g_min_level.store(level); }
LogLevel GetMinLogLevel() { return g_min_level.load(); }

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= g_min_level.load() || level_ == LogLevel::kFatal) {
    std::string line = stream_.str();
    std::fprintf(stderr, "%s\n", line.c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace sparkline
