#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace sparkline {
namespace internal {

namespace {

LogLevel LevelFromEnv(const char* value, LogLevel fallback) {
  if (value == nullptr || *value == '\0') return fallback;
  std::string lower;
  for (const char* p = value; *p; ++p) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
  }
  if (lower == "debug" || lower == "0") return LogLevel::kDebug;
  if (lower == "info" || lower == "1") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning" || lower == "2") {
    return LogLevel::kWarning;
  }
  if (lower == "error" || lower == "3") return LogLevel::kError;
  if (lower == "fatal" || lower == "4") return LogLevel::kFatal;
  return fallback;
}

// Meyers singleton so the SL_MIN_LOG_LEVEL env read happens exactly once,
// on first use, regardless of static-init order.
std::atomic<LogLevel>& MinLevel() {
  // The magic-static initializer runs exactly once under the compiler's
  // guard, and nothing in the process calls setenv, so the getenv here
  // cannot race a concurrent environment write.
  static std::atomic<LogLevel> level{LevelFromEnv(
      std::getenv("SL_MIN_LOG_LEVEL"),  // NOLINT(concurrency-mt-unsafe)
      LogLevel::kWarning)};
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

void SetMinLogLevel(LogLevel level) { MinLevel().store(level); }
LogLevel GetMinLogLevel() { return MinLevel().load(); }

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= MinLevel().load() || level_ == LogLevel::kFatal) {
    stream_ << "\n";
    // One fputs under the stdio stream lock: concurrent log lines never
    // interleave mid-line.
    const std::string line = stream_.str();
    flockfile(stderr);
    std::fputs(line.c_str(), stderr);
    std::fflush(stderr);
    funlockfile(stderr);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace sparkline
