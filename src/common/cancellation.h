// Cooperative query cancellation.
//
// A CancellationToken is the Spark-analogue of SparkContext.cancelJobGroup:
// the serving tier hands one to every admitted query, keeps a handle, and
// flipping it makes the running query unwind with Status::Cancelled at the
// next cancellation point instead of being killed. Cancellation points are
//
//   - every stage boundary (PhysicalPlan::RunStage checks before dispatching
//     each partition task and after the stage barrier), and
//   - every kernel loop (skyline::internal::DeadlineChecker polls the token
//     alongside the deadline every few thousand dominance tests),
//
// so even a single-stage quadratic kernel reacts within microseconds while
// the hot loop pays one relaxed atomic load per ~1k tests.
#pragma once

#include <atomic>
#include <memory>

namespace sparkline {

/// \brief One-way latch shared between a query and its controller.
///
/// Thread-safe: Cancel() may race with any number of cancelled() polls.
/// Tokens are immortal for the query's duration — ExecContext holds a
/// shared_ptr, so a controller dropping its handle never invalidates the
/// pointer the kernels poll.
class CancellationToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

using CancellationTokenPtr = std::shared_ptr<CancellationToken>;

}  // namespace sparkline
