#include "common/thread_pool.h"

#include <atomic>
#include <exception>

#include "common/logging.h"

namespace sparkline {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    SL_CHECK(!shutdown_) << "Submit after shutdown";
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    // Last-resort guard: tasks must report errors via Status, but a task that
    // does throw (third-party code, injected faults) must not take the whole
    // process down via std::terminate — it costs one task, not the pool. The
    // stage runner has its own guard that converts throws into a failed
    // query; this one only protects foreign Submit() users and the pool's
    // bookkeeping below (active_ must be decremented or WaitIdle hangs).
    try {
      task();
    } catch (const std::exception& e) {
      SL_LOG_ERROR << "thread-pool task threw '" << e.what()
                   << "'; tasks must report errors via Status";
    } catch (...) {
      SL_LOG_ERROR << "thread-pool task threw a non-std::exception; "
                      "tasks must report errors via Status";
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (pool == nullptr || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> remaining{n};
  std::mutex mu;
  std::condition_variable done;
  for (size_t i = 0; i < n; ++i) {
    pool->Submit([&, i] {
      // fn(i) throwing must not skip the decrement below, or the waiter
      // blocks forever on stack objects the worker will never touch again.
      try {
        fn(i);
      } catch (const std::exception& e) {
        SL_LOG_ERROR << "ParallelFor task " << i << " threw '" << e.what()
                     << "'; treating as completed (errors belong in Status)";
      } catch (...) {
        SL_LOG_ERROR << "ParallelFor task " << i
                     << " threw a non-std::exception; treating as completed";
      }
      // The decrement must happen under the mutex: decrementing to zero
      // before acquiring it lets the waiter observe completion, return and
      // destroy mu/done while this worker is still about to lock/notify —
      // a use-after-free of stack synchronization objects.
      std::lock_guard<std::mutex> lock(mu);
      if (remaining.fetch_sub(1) == 1) done.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  done.wait(lock, [&] { return remaining.load() == 0; });
}

}  // namespace sparkline
