#include "common/thread_pool.h"

#include <atomic>
#include <exception>

#include "common/logging.h"

namespace sparkline {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    sl::MutexLock lock(&mu_);
    shutdown_ = true;
  }
  task_ready_.NotifyAll();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    sl::MutexLock lock(&mu_);
    SL_CHECK(!shutdown_) << "Submit after shutdown";
    queue_.push_back(std::move(task));
  }
  task_ready_.NotifyOne();
}

void ThreadPool::WaitIdle() {
  sl::MutexLock lock(&mu_);
  while (!(queue_.empty() && active_ == 0)) all_done_.Wait(&mu_);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      sl::MutexLock lock(&mu_);
      while (!(shutdown_ || !queue_.empty())) task_ready_.Wait(&mu_);
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    // Last-resort guard: tasks must report errors via Status, but a task that
    // does throw (third-party code, injected faults) must not take the whole
    // process down via std::terminate — it costs one task, not the pool. The
    // stage runner has its own guard that converts throws into a failed
    // query; this one only protects foreign Submit() users and the pool's
    // bookkeeping below (active_ must be decremented or WaitIdle hangs).
    try {
      task();
    } catch (const std::exception& e) {
      SL_LOG_ERROR << "thread-pool task threw '" << e.what()
                   << "'; tasks must report errors via Status";
    } catch (...) {
      SL_LOG_ERROR << "thread-pool task threw a non-std::exception; "
                      "tasks must report errors via Status";
    }
    {
      sl::MutexLock lock(&mu_);
      --active_;
      if (queue_.empty() && active_ == 0) all_done_.NotifyAll();
    }
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (pool == nullptr || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> remaining{n};
  sl::Mutex mu;
  sl::CondVar done;
  for (size_t i = 0; i < n; ++i) {
    pool->Submit([&, i] {
      // fn(i) throwing must not skip the decrement below, or the waiter
      // blocks forever on stack objects the worker will never touch again.
      try {
        fn(i);
      } catch (const std::exception& e) {
        SL_LOG_ERROR << "ParallelFor task " << i << " threw '" << e.what()
                     << "'; treating as completed (errors belong in Status)";
      } catch (...) {
        SL_LOG_ERROR << "ParallelFor task " << i
                     << " threw a non-std::exception; treating as completed";
      }
      // The decrement must happen under the mutex: decrementing to zero
      // before acquiring it lets the waiter observe completion, return and
      // destroy mu/done while this worker is still about to lock/notify —
      // a use-after-free of stack synchronization objects.
      sl::MutexLock lock(&mu);
      if (remaining.fetch_sub(1) == 1) done.NotifyAll();
    });
  }
  sl::MutexLock lock(&mu);
  while (remaining.load() != 0) done.Wait(&mu);
}

}  // namespace sparkline
