// Clang Thread Safety Analysis wrappers: capability-annotated mutex types
// that let the compiler machine-check the engine's locking discipline at
// build time (-Wthread-safety; CI promotes it to -Werror=thread-safety).
//
// Discipline (docs/ARCHITECTURE.md "Concurrency discipline & static
// analysis"):
//   - Every mutex-protected field is declared SL_GUARDED_BY(mu_); the
//     analysis then rejects any read or write outside a critical section.
//   - Private helpers that assume the caller holds a lock are annotated
//     SL_REQUIRES(mu_) instead of re-locking — the "Locked" suffix naming
//     convention becomes compiler-enforced.
//   - Public entry points that must NOT be called with a lock held (they
//     acquire it themselves) may add SL_EXCLUDES(mu_) to turn self-deadlock
//     into a compile error.
//   - Condition-variable wait loops are written as explicit
//     `while (!pred) cv.Wait(&mu);` loops so the predicate's guarded reads
//     are visible to the analysis (a predicate lambda would be analyzed as
//     a separate, lockless function).
//
// Under compilers without the attributes (GCC) every macro expands to
// nothing and the wrappers behave exactly like std::mutex /
// std::shared_mutex / std::scoped_lock — zero overhead, zero semantic
// difference; the analysis is a Clang-only build gate, not a runtime
// mechanism.
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SL_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SL_THREAD_ANNOTATION
#define SL_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Declares a type to be a lockable capability ("mutex", "shared_mutex").
#define SL_CAPABILITY(x) SL_THREAD_ANNOTATION(capability(x))
/// Declares an RAII type that acquires in its ctor / releases in its dtor.
#define SL_SCOPED_CAPABILITY SL_THREAD_ANNOTATION(scoped_lockable)
/// Field may only be touched while holding `x`.
#define SL_GUARDED_BY(x) SL_THREAD_ANNOTATION(guarded_by(x))
/// Pointee (not the pointer) may only be touched while holding `x`.
#define SL_PT_GUARDED_BY(x) SL_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function acquires the capability (exclusively / shared).
#define SL_ACQUIRE(...) SL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SL_ACQUIRE_SHARED(...) \
  SL_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
/// Function releases the capability (RELEASE also releases a shared hold —
/// Clang treats it as a generic release, which is what scoped-lock
/// destructors need).
#define SL_RELEASE(...) SL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SL_RELEASE_SHARED(...) \
  SL_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
/// Caller must already hold the capability (exclusively / shared).
#define SL_REQUIRES(...) SL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SL_REQUIRES_SHARED(...) \
  SL_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
/// Caller must NOT hold the capability (the function acquires it itself).
#define SL_EXCLUDES(...) SL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Escape hatch for code whose locking the analysis cannot follow; every
/// use carries a comment justifying why it is correct by hand.
#define SL_NO_THREAD_SAFETY_ANALYSIS \
  SL_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace sparkline {
namespace sl {

/// \brief std::mutex with capability annotations. Prefer sl::MutexLock over
/// calling Lock/Unlock directly; the manual API exists for the rare
/// non-scoped pattern and stays analysis-visible either way.
class SL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SL_ACQUIRE() { mu_.lock(); }
  void Unlock() SL_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief std::shared_mutex with capability annotations: exclusive
/// (writer) and shared (reader) modes.
class SL_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() SL_ACQUIRE() { mu_.lock(); }
  void Unlock() SL_RELEASE() { mu_.unlock(); }
  void LockShared() SL_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() SL_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// \brief RAII exclusive lock over a Mutex or a SharedMutex (writer side).
class SL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) SL_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  explicit MutexLock(SharedMutex* mu) SL_ACQUIRE(mu) : smu_(mu) {
    smu_->Lock();
  }
  ~MutexLock() SL_RELEASE() {
    if (mu_ != nullptr) {
      mu_->Unlock();
    } else {
      smu_->Unlock();
    }
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex* mu_ = nullptr;
  SharedMutex* smu_ = nullptr;
};

/// \brief RAII shared (reader) lock over a SharedMutex.
class SL_SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(SharedMutex* mu) SL_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~SharedLock() SL_RELEASE() { mu_->UnlockShared(); }

  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// \brief Condition variable paired with sl::Mutex.
///
/// Wait() atomically releases and re-acquires `mu`, so from the analysis's
/// point of view the capability is held across the call — which is exactly
/// the caller's contract. Write wait loops manually:
///
///   sl::MutexLock lock(&mu_);
///   while (!(shutdown_ || !queue_.empty())) cv_.Wait(&mu_);
///
/// so the predicate's SL_GUARDED_BY reads stay inside the analyzed critical
/// section (a predicate lambda would be analyzed as an unlocked function).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified; spurious wakeups happen, always re-check the
  /// predicate in a loop. Caller must hold `mu` exclusively.
  void Wait(Mutex* mu) SL_REQUIRES(mu) SL_NO_THREAD_SAFETY_ANALYSIS {
    // Adopt the already-held native mutex for the duration of the wait;
    // release() hands ownership back without unlocking, so the caller's
    // MutexLock destructor still performs the one real unlock.
    std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace sl
}  // namespace sparkline
