#include "exec/planner.h"

#include <map>
#include <set>

#include "common/string_util.h"
#include "exec/subquery_expr.h"
#include "expr/evaluator.h"

namespace sparkline {

Result<SkylineStrategy> ParseSkylineStrategy(const std::string& name) {
  const std::string lower = ToLower(name);
  if (lower == "auto") return SkylineStrategy::kAuto;
  if (lower == "distributed" || lower == "distributed_complete") {
    return SkylineStrategy::kDistributedComplete;
  }
  if (lower == "non_distributed" || lower == "nondistributed" ||
      lower == "non_distributed_complete") {
    return SkylineStrategy::kNonDistributedComplete;
  }
  if (lower == "incomplete" || lower == "distributed_incomplete") {
    return SkylineStrategy::kDistributedIncomplete;
  }
  return Status::Invalid(StrCat("unknown skyline strategy '", name,
                                "' (auto | distributed | non_distributed | "
                                "incomplete)"));
}

Result<SkylinePartitioning> ParseSkylinePartitioning(const std::string& name) {
  const std::string lower = ToLower(name);
  if (lower == "asis" || lower == "as_is" || lower == "default") {
    return SkylinePartitioning::kAsIs;
  }
  if (lower == "roundrobin" || lower == "round_robin") {
    return SkylinePartitioning::kRoundRobin;
  }
  if (lower == "angle") return SkylinePartitioning::kAngle;
  return Status::Invalid(StrCat("unknown skyline partitioning '", name,
                                "' (asis | roundrobin | angle)"));
}

Result<skyline::SfsSortKey> ParseSfsSortKey(const std::string& name) {
  const std::string lower = ToLower(name);
  if (lower == "sum") return skyline::SfsSortKey::kSum;
  if (lower == "minmax" || lower == "min_max" || lower == "minc") {
    return skyline::SfsSortKey::kMinMax;
  }
  return Status::Invalid(
      StrCat("unknown SFS sort key '", name, "' (sum | minmax)"));
}

const char* SfsSortKeyName(skyline::SfsSortKey key) {
  switch (key) {
    case skyline::SfsSortKey::kSum:
      return "sum";
    case skyline::SfsSortKey::kMinMax:
      return "minmax";
  }
  return "?";
}

const char* SkylineStrategyName(SkylineStrategy s) {
  switch (s) {
    case SkylineStrategy::kAuto:
      return "auto";
    case SkylineStrategy::kDistributedComplete:
      return "distributed";
    case SkylineStrategy::kNonDistributedComplete:
      return "non_distributed";
    case SkylineStrategy::kDistributedIncomplete:
      return "incomplete";
  }
  return "?";
}

int64_t EstimateRowCount(const LogicalPlanPtr& plan) {
  switch (plan->kind()) {
    case PlanKind::kScan:
      return static_cast<int64_t>(
          static_cast<const Scan&>(*plan).table()->num_rows());
    case PlanKind::kLocalRelation:
      return static_cast<int64_t>(
          static_cast<const LocalRelation&>(*plan).rows()->size());
    case PlanKind::kFilter: {
      int64_t child = EstimateRowCount(plan->children()[0]);
      return child < 0 ? -1 : (child + 1) / 2;  // default selectivity 0.5
    }
    case PlanKind::kLimit: {
      int64_t child = EstimateRowCount(plan->children()[0]);
      int64_t n = static_cast<const Limit&>(*plan).n();
      return child < 0 ? n : std::min(child, n);
    }
    case PlanKind::kAggregate: {
      const auto& agg = static_cast<const Aggregate&>(*plan);
      if (agg.group_list().empty()) return 1;
      int64_t child = EstimateRowCount(agg.child());
      return child < 0 ? -1 : std::max<int64_t>(1, child / 10);
    }
    case PlanKind::kJoin: {
      const auto& join = static_cast<const Join&>(*plan);
      int64_t left = EstimateRowCount(join.left());
      if (join.join_type() == JoinType::kLeftSemi ||
          join.join_type() == JoinType::kLeftAnti) {
        return left;
      }
      int64_t right = EstimateRowCount(join.right());
      if (left < 0 || right < 0) return -1;
      if (join.join_type() == JoinType::kCross) return left * right;
      return std::max(left, right);
    }
    case PlanKind::kProject:
    case PlanKind::kSort:
    case PlanKind::kDistinct:
    case PlanKind::kSubqueryAlias:
    case PlanKind::kSkyline:
      return EstimateRowCount(plan->children()[0]);
    default:
      return -1;
  }
}

namespace {

std::set<ExprId> IdsOf(const std::vector<Attribute>& attrs) {
  std::set<ExprId> ids;
  for (const auto& a : attrs) ids.insert(a.id);
  return ids;
}

bool RefsWithin(const ExprPtr& e, const std::set<ExprId>& ids) {
  for (const auto& a : CollectAttributes(e)) {
    if (ids.count(a.id) == 0) return false;
  }
  return true;
}

}  // namespace

PhysicalPlanPtr PhysicalPlanner::EnsureSinglePartition(PhysicalPlanPtr child) {
  if (child->output_partitioning() == Partitioning::kSinglePartition) {
    return child;
  }
  return std::make_shared<ExchangeExec>(ExchangeMode::kGather,
                                        std::vector<skyline::BoundDimension>{},
                                        std::move(child));
}

Result<ExprPtr> PhysicalPlanner::Bind(
    const ExprPtr& e, const std::vector<Attribute>& input) const {
  SL_ASSIGN_OR_RETURN(ExprPtr bound, BindExpression(e, input));
  // Plan embedded scalar subqueries.
  Status error = Status::OK();
  ExprPtr out = Expression::Transform(bound, [&](const ExprPtr& n) -> ExprPtr {
    if (!error.ok() || n->kind() != ExprKind::kScalarSubquery) return n;
    const auto& sq = static_cast<const ScalarSubquery&>(*n);
    auto sub = PlanNode(sq.plan());
    if (!sub.ok()) {
      error = sub.status();
      return n;
    }
    return PhysicalSubqueryExpr::Make(*sub, sq.type());
  });
  SL_RETURN_NOT_OK(error);
  return out;
}

Result<PhysicalPlanPtr> PhysicalPlanner::Plan(const LogicalPlanPtr& plan) const {
  return PlanNode(plan);
}

Result<PhysicalPlanPtr> PhysicalPlanner::PlanNode(
    const LogicalPlanPtr& plan) const {
  switch (plan->kind()) {
    case PlanKind::kScan: {
      const auto& scan = static_cast<const Scan&>(*plan);
      return PhysicalPlanPtr(
          std::make_shared<ScanExec>(scan.table(), scan.column_indices(),
                                     scan.output(), options_.scan_zone_maps));
    }
    case PlanKind::kLocalRelation: {
      const auto& rel = static_cast<const LocalRelation&>(*plan);
      return PhysicalPlanPtr(
          std::make_shared<LocalRelationExec>(rel.rows(), rel.output()));
    }
    case PlanKind::kSubqueryAlias:
      return PlanNode(plan->children()[0]);
    case PlanKind::kProject: {
      const auto& project = static_cast<const Project&>(*plan);
      SL_ASSIGN_OR_RETURN(PhysicalPlanPtr child, PlanNode(project.child()));
      std::vector<ExprPtr> bound;
      bound.reserve(project.list().size());
      for (const auto& e : project.list()) {
        SL_ASSIGN_OR_RETURN(ExprPtr b, Bind(e, project.child()->output()));
        bound.push_back(std::move(b));
      }
      return PhysicalPlanPtr(std::make_shared<ProjectExec>(
          std::move(bound), project.output(), std::move(child)));
    }
    case PlanKind::kFilter: {
      const auto& filter = static_cast<const Filter&>(*plan);
      SL_ASSIGN_OR_RETURN(PhysicalPlanPtr child, PlanNode(filter.child()));
      SL_ASSIGN_OR_RETURN(ExprPtr cond,
                          Bind(filter.condition(), filter.child()->output()));
      return PhysicalPlanPtr(
          std::make_shared<FilterExec>(std::move(cond), std::move(child)));
    }
    case PlanKind::kJoin:
      return PlanJoin(static_cast<const Join&>(*plan));
    case PlanKind::kAggregate:
      return PlanAggregate(static_cast<const Aggregate&>(*plan));
    case PlanKind::kSort: {
      const auto& sort = static_cast<const Sort&>(*plan);
      SL_ASSIGN_OR_RETURN(PhysicalPlanPtr child, PlanNode(sort.child()));
      std::vector<BoundSortOrder> orders;
      orders.reserve(sort.orders().size());
      for (const auto& o : sort.orders()) {
        SL_ASSIGN_OR_RETURN(ExprPtr b, Bind(o.expr, sort.child()->output()));
        orders.push_back(BoundSortOrder{b, o.ascending, o.nulls_first});
      }
      return PhysicalPlanPtr(std::make_shared<SortExec>(
          std::move(orders), EnsureSinglePartition(std::move(child))));
    }
    case PlanKind::kLimit: {
      const auto& limit = static_cast<const Limit&>(*plan);
      SL_ASSIGN_OR_RETURN(PhysicalPlanPtr child, PlanNode(limit.child()));
      return PhysicalPlanPtr(std::make_shared<LimitExec>(
          limit.n(), EnsureSinglePartition(std::move(child))));
    }
    case PlanKind::kDistinct: {
      // Normally replaced by the optimizer; lower to an aggregate here so
      // directly-planned DataFrame trees work too.
      const auto& distinct = static_cast<const Distinct&>(*plan);
      std::vector<ExprPtr> refs;
      for (const auto& a : distinct.child()->output()) {
        refs.push_back(a.ToRef());
      }
      return PlanAggregate(
          Aggregate(refs, refs, distinct.child()));
    }
    case PlanKind::kSkyline:
      return PlanSkyline(static_cast<const SkylineNode&>(*plan));
    case PlanKind::kUnresolvedRelation:
      break;
    case PlanKind::kExplainAnalyze:
      // Session::Execute peels the node off before planning; reaching the
      // planner with it still attached is a routing bug.
      break;
  }
  return Status::PlanError(
      StrCat("cannot create a physical plan for: ", plan->NodeString()));
}

Result<PhysicalPlanPtr> PhysicalPlanner::PlanJoin(const Join& join) const {
  SL_ASSIGN_OR_RETURN(PhysicalPlanPtr left, PlanNode(join.left()));
  SL_ASSIGN_OR_RETURN(PhysicalPlanPtr right, PlanNode(join.right()));

  std::vector<Attribute> combined = join.left()->output();
  {
    const auto r = join.right()->output();
    combined.insert(combined.end(), r.begin(), r.end());
  }

  // Extract equi-join keys for inner / left-outer joins.
  if (join.condition() != nullptr &&
      (join.join_type() == JoinType::kInner ||
       join.join_type() == JoinType::kLeftOuter)) {
    const auto left_ids = IdsOf(join.left()->output());
    const auto right_ids = IdsOf(join.right()->output());
    std::vector<ExprPtr> left_keys, right_keys, residual;
    for (const auto& c : SplitConjuncts(join.condition())) {
      bool is_key = false;
      if (c->kind() == ExprKind::kBinary) {
        const auto& eq = static_cast<const BinaryExpr&>(*c);
        if (eq.op() == BinaryOp::kEq) {
          if (RefsWithin(eq.left(), left_ids) &&
              RefsWithin(eq.right(), right_ids)) {
            left_keys.push_back(eq.left());
            right_keys.push_back(eq.right());
            is_key = true;
          } else if (RefsWithin(eq.left(), right_ids) &&
                     RefsWithin(eq.right(), left_ids)) {
            left_keys.push_back(eq.right());
            right_keys.push_back(eq.left());
            is_key = true;
          }
        }
      }
      if (!is_key) residual.push_back(c);
    }
    if (!left_keys.empty()) {
      for (auto& k : left_keys) {
        SL_ASSIGN_OR_RETURN(k, Bind(k, join.left()->output()));
      }
      for (auto& k : right_keys) {
        SL_ASSIGN_OR_RETURN(k, Bind(k, join.right()->output()));
      }
      ExprPtr residual_bound = nullptr;
      if (!residual.empty()) {
        SL_ASSIGN_OR_RETURN(residual_bound,
                            Bind(CombineConjuncts(residual), combined));
      }
      return PhysicalPlanPtr(std::make_shared<HashJoinExec>(
          join.join_type(), std::move(left_keys), std::move(right_keys),
          std::move(residual_bound), join.output(), std::move(left),
          std::move(right)));
    }
  }

  ExprPtr cond = nullptr;
  if (join.condition() != nullptr) {
    SL_ASSIGN_OR_RETURN(cond, Bind(join.condition(), combined));
  }
  return PhysicalPlanPtr(std::make_shared<NestedLoopJoinExec>(
      join.join_type(), std::move(cond), join.output(), std::move(left),
      std::move(right)));
}

Result<PhysicalPlanPtr> PhysicalPlanner::PlanAggregate(
    const Aggregate& agg) const {
  SL_ASSIGN_OR_RETURN(PhysicalPlanPtr child, PlanNode(agg.child()));
  const auto child_attrs = agg.child()->output();

  // Collect the distinct aggregate functions appearing in the output list.
  std::vector<ExprPtr> agg_exprs;  // logical AggregateExpr nodes
  auto find_agg = [&](const ExprPtr& e) -> int {
    for (size_t i = 0; i < agg_exprs.size(); ++i) {
      if (agg_exprs[i]->ToString() == e->ToString()) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };
  for (const auto& item : agg.agg_list()) {
    Expression::Foreach(item, [&](const ExprPtr& n) {
      if (n->kind() == ExprKind::kAggregate && find_agg(n) < 0) {
        agg_exprs.push_back(n);
      }
    });
  }

  // Group outputs: direct column groups keep their attribute id; computed
  // group expressions mint one.
  std::vector<Attribute> group_attrs;
  for (const auto& g : agg.group_list()) {
    if (g->kind() == ExprKind::kAttributeRef) {
      group_attrs.push_back(static_cast<const AttributeRef&>(*g).attr());
    } else {
      group_attrs.push_back(Attribute{g->ToString(), g->type(), g->nullable(),
                                      NextExprId(), ""});
    }
  }
  std::vector<Attribute> agg_attrs;
  std::vector<AggSpec> specs;
  bool any_distinct = false;
  for (const auto& e : agg_exprs) {
    const auto& a = static_cast<const AggregateExpr&>(*e);
    AggSpec spec;
    spec.fn = a.fn();
    spec.distinct = a.distinct();
    any_distinct |= a.distinct();
    spec.result_type = a.type();
    if (a.child() != nullptr) {
      SL_ASSIGN_OR_RETURN(spec.bound_arg, Bind(a.child(), child_attrs));
    }
    specs.push_back(std::move(spec));
    agg_attrs.push_back(
        Attribute{e->ToString(), a.type(), a.nullable(), NextExprId(), ""});
  }

  std::vector<ExprPtr> bound_groups;
  for (const auto& g : agg.group_list()) {
    SL_ASSIGN_OR_RETURN(ExprPtr b, Bind(g, child_attrs));
    bound_groups.push_back(std::move(b));
  }

  std::vector<Attribute> exec_out = group_attrs;
  exec_out.insert(exec_out.end(), agg_attrs.begin(), agg_attrs.end());

  PhysicalPlanPtr agg_exec;
  if (any_distinct) {
    // DISTINCT aggregates: single-phase over gathered input.
    agg_exec = std::make_shared<HashAggregateExec>(
        std::move(bound_groups), specs, AggMode::kComplete, exec_out,
        EnsureSinglePartition(child));
  } else {
    // Two-phase: partial per partition, gather, final merge.
    std::vector<Attribute> partial_out = group_attrs;
    for (size_t i = 0; i < specs.size(); ++i) {
      partial_out.push_back(Attribute{StrCat("state", i), DataType::Double(),
                                      true, NextExprId(), ""});
      if (specs[i].fn == AggFn::kAvg) {
        partial_out.push_back(Attribute{StrCat("state", i, "_count"),
                                        DataType::Int64(), false, NextExprId(),
                                        ""});
      }
    }
    PhysicalPlanPtr partial = std::make_shared<HashAggregateExec>(
        bound_groups, specs, AggMode::kPartial, partial_out, child);
    PhysicalPlanPtr gathered = EnsureSinglePartition(std::move(partial));
    // Final phase re-keys on the partial group columns positionally.
    std::vector<ExprPtr> final_groups;
    for (size_t i = 0; i < group_attrs.size(); ++i) {
      final_groups.push_back(BoundReference::Make(i, group_attrs[i].type,
                                                  group_attrs[i].nullable));
    }
    agg_exec = std::make_shared<HashAggregateExec>(
        std::move(final_groups), specs, AggMode::kFinal, exec_out,
        std::move(gathered));
  }

  // Restore the logical output list on top of [groups..., aggs...].
  std::vector<ExprPtr> project_list;
  for (const auto& item : agg.agg_list()) {
    ExprPtr rewritten = Expression::Transform(item, [&](const ExprPtr& n)
                                                  -> ExprPtr {
      if (n->kind() == ExprKind::kAggregate) {
        int idx = find_agg(n);
        if (idx >= 0) return agg_attrs[static_cast<size_t>(idx)].ToRef();
      }
      // Computed group expressions are replaced by their minted output.
      for (size_t i = 0; i < agg.group_list().size(); ++i) {
        const auto& g = agg.group_list()[i];
        if (g->kind() != ExprKind::kAttributeRef &&
            g->ToString() == n->ToString()) {
          return group_attrs[i].ToRef();
        }
      }
      return n;
    });
    SL_ASSIGN_OR_RETURN(ExprPtr bound, Bind(rewritten, exec_out));
    project_list.push_back(std::move(bound));
  }
  return PhysicalPlanPtr(std::make_shared<ProjectExec>(
      std::move(project_list), agg.output(), std::move(agg_exec)));
}

Result<PhysicalPlanPtr> PhysicalPlanner::PlanSkyline(
    const SkylineNode& sky) const {
  SL_ASSIGN_OR_RETURN(PhysicalPlanPtr child, PlanNode(sky.child()));
  const auto child_attrs = sky.child()->output();

  // Bind the dimensions. Dimensions that are not plain columns are
  // materialized by a helper projection so the algorithms see ordinals.
  struct DimPlan {
    size_t ordinal;
    SkylineGoal goal;
    bool nullable;
  };
  std::vector<DimPlan> dim_plans;
  std::vector<ExprPtr> helper_exprs;  // computed dimensions to materialize
  for (const auto& d : sky.dimensions()) {
    const auto& dim = static_cast<const SkylineDimension&>(*d);
    SL_ASSIGN_OR_RETURN(ExprPtr bound, Bind(dim.child(), child_attrs));
    if (bound->kind() == ExprKind::kBoundReference) {
      const auto& ref = static_cast<const BoundReference&>(*bound);
      dim_plans.push_back(
          DimPlan{ref.ordinal(), dim.goal(), dim.child()->nullable()});
    } else {
      dim_plans.push_back(DimPlan{child_attrs.size() + helper_exprs.size(),
                                  dim.goal(), dim.child()->nullable()});
      helper_exprs.push_back(bound);
    }
  }

  PhysicalPlanPtr input = child;
  if (!helper_exprs.empty()) {
    std::vector<ExprPtr> list;
    std::vector<Attribute> extended = child_attrs;
    for (size_t i = 0; i < child_attrs.size(); ++i) {
      list.push_back(BoundReference::Make(i, child_attrs[i].type,
                                          child_attrs[i].nullable));
    }
    for (size_t i = 0; i < helper_exprs.size(); ++i) {
      list.push_back(helper_exprs[i]);
      extended.push_back(Attribute{StrCat("_skydim", i),
                                   helper_exprs[i]->type(),
                                   helper_exprs[i]->nullable(), NextExprId(),
                                   ""});
    }
    input = std::make_shared<ProjectExec>(std::move(list), extended, input);
  }

  std::vector<skyline::BoundDimension> dims;
  bool any_nullable = false;
  for (const auto& dp : dim_plans) {
    dims.push_back(skyline::BoundDimension{dp.ordinal, dp.goal});
    any_nullable |= dp.nullable;
  }

  // Listing 8: choose the algorithm.
  SkylineStrategy strategy = options_.skyline_strategy;
  if (strategy == SkylineStrategy::kAuto) {
    const bool complete_ok = sky.complete() || !any_nullable;
    strategy = complete_ok ? SkylineStrategy::kDistributedComplete
                           : SkylineStrategy::kDistributedIncomplete;
    // Lightweight cost-based refinement (section 7 future work): for tiny
    // inputs the non-parallel global stage dominates, so skip the local
    // stage and its exchange altogether.
    if (strategy == SkylineStrategy::kDistributedComplete &&
        options_.non_distributed_threshold > 0) {
      int64_t estimate = EstimateRowCount(sky.child());
      if (estimate >= 0 && estimate < options_.non_distributed_threshold) {
        strategy = SkylineStrategy::kNonDistributedComplete;
      }
    }
  }

  PhysicalPlanPtr result;
  switch (strategy) {
    case SkylineStrategy::kDistributedComplete: {
      // Default: keep the child's partitioning for the local pass (the
      // paper's choice, section 5.6). Alternative schemes re-shuffle first.
      PhysicalPlanPtr local_input = input;
      if (options_.skyline_partitioning == SkylinePartitioning::kRoundRobin) {
        local_input = std::make_shared<ExchangeExec>(ExchangeMode::kRoundRobin,
                                                     dims, local_input);
      } else if (options_.skyline_partitioning == SkylinePartitioning::kAngle) {
        local_input = std::make_shared<ExchangeExec>(ExchangeMode::kAngle,
                                                     dims, local_input);
      }
      const bool exchange_columnar = options_.skyline_columnar_exchange;
      PhysicalPlanPtr local = std::make_shared<LocalSkylineExec>(
          dims, sky.distinct(), skyline::NullSemantics::kComplete,
          std::move(local_input), options_.skyline_kernel,
          options_.skyline_columnar, exchange_columnar,
          options_.sfs_early_stop, options_.sfs_sort_key,
          options_.scan_zone_maps);
      if (options_.skyline_broadcast_filter) {
        // Phase one of two-phase pruning: prune every local skyline against
        // the broadcast union of nominated points *before* the gather pays
        // for shipping them. Ineligible inputs pass through unchanged.
        local = std::make_shared<BroadcastFilterExec>(dims, std::move(local));
      }
      result = std::make_shared<GlobalSkylineExec>(
          dims, sky.distinct(), EnsureSinglePartition(std::move(local)),
          options_.skyline_kernel, options_.skyline_columnar,
          exchange_columnar, options_.sfs_early_stop, options_.sfs_sort_key);
      break;
    }
    case SkylineStrategy::kNonDistributedComplete: {
      result = std::make_shared<GlobalSkylineExec>(
          dims, sky.distinct(), EnsureSinglePartition(std::move(input)),
          options_.skyline_kernel, options_.skyline_columnar,
          options_.skyline_columnar_exchange, options_.sfs_early_stop,
          options_.sfs_sort_key);
      break;
    }
    case SkylineStrategy::kDistributedIncomplete: {
      // Null-bitmap partitioning makes each partition bitmap-uniform, so the
      // BNL local pass stays correct despite missing values (section 5.7).
      const bool exchange_columnar = options_.skyline_columnar_exchange;
      PhysicalPlanPtr exchange = std::make_shared<ExchangeExec>(
          ExchangeMode::kNullBitmapHash, dims, std::move(input));
      PhysicalPlanPtr local = std::make_shared<LocalSkylineExec>(
          dims, sky.distinct(), skyline::NullSemantics::kIncomplete,
          std::move(exchange), SkylineKernel::kBlockNestedLoop,
          options_.skyline_columnar, exchange_columnar);
      result = std::make_shared<GlobalSkylineIncompleteExec>(
          dims, sky.distinct(), EnsureSinglePartition(std::move(local)),
          options_.skyline_columnar, options_.skyline_incomplete_parallel,
          exchange_columnar);
      break;
    }
    case SkylineStrategy::kAuto:
      return Status::Internal("auto strategy should have been resolved");
  }

  if (!helper_exprs.empty()) {
    // Drop the helper dimension columns again.
    std::vector<ExprPtr> restore;
    for (size_t i = 0; i < child_attrs.size(); ++i) {
      restore.push_back(BoundReference::Make(i, child_attrs[i].type,
                                             child_attrs[i].nullable));
    }
    result = std::make_shared<ProjectExec>(std::move(restore), sky.output(),
                                           std::move(result));
  }
  return result;
}

}  // namespace sparkline
