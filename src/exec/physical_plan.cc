#include "exec/physical_plan.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <thread>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "exec/subquery_expr.h"
#include "expr/evaluator.h"

namespace sparkline {

int64_t EstimateRelationBytes(const PartitionedRelation& rel) {
  int64_t total = 0;
  for (size_t i = 0; i < rel.partitions.size(); ++i) {
    if (i < rel.batches.size() && rel.batches[i].has_value()) {
      const skyline::ColumnarBatch& batch = *rel.batches[i];
      if (batch.num_rows() == 0 || batch.backing_rows().empty()) continue;
      total += EstimateRowBytes(batch.backing_rows().front()) *
               static_cast<int64_t>(batch.num_rows());
      continue;
    }
    const auto& p = rel.partitions[i];
    if (p.empty()) continue;
    total += EstimateRowBytes(p.front()) * static_cast<int64_t>(p.size());
  }
  return total;
}

std::string PhysicalPlan::TreeString() const {
  std::string out = label();
  for (const auto& c : children_) {
    out += "\n";
    out += Indent(c->TreeString(), 2);
  }
  return out;
}

Status PhysicalPlan::RunStage(ExecContext* ctx, size_t num_partitions,
                              const std::function<Status(size_t)>& fn) const {
  return RunStage(ctx, label(), num_partitions, fn);
}

Status PhysicalPlan::RunStage(ExecContext* ctx, const std::string& stage_label,
                              size_t num_partitions,
                              const std::function<Status(size_t)>& fn) const {
  if (num_partitions == 0) return Status::OK();
  // Stage-boundary cancellation points: before dispatching any task and
  // after the barrier.
  SL_RETURN_NOT_OK(ctx->CheckInterrupt());
  Trace* trace = ctx->trace();
  TraceSpan* stage_span =
      trace ? trace->StartSpan(nullptr, stage_label, "stage") : nullptr;
  std::vector<Status> statuses(num_partitions);
  std::vector<double> cpu_ms(num_partitions, 0.0);
  ParallelFor(ctx->pool(), num_partitions, [&](size_t i) {
    TraceSpan* task_span =
        trace ? trace->StartSpan(stage_span, StrCat("task ", i), "task",
                                 static_cast<int64_t>(i))
              : nullptr;
    ThreadCpuTimer timer;
    statuses[i] = RunTask(ctx, stage_label, i, fn, task_span);
    cpu_ms[i] = static_cast<double>(timer.ElapsedNanos()) / 1e6;
    if (task_span != nullptr) {
      trace->Annotate(task_span, "cpu_ms", FormatFixed(cpu_ms[i], 3));
      trace->EndSpan(task_span);
    }
  });
  // Critical-path model: the stage takes as long as its slowest task
  // (retries included — a re-executed task lengthens its stage).
  const double critical_ms = *std::max_element(cpu_ms.begin(), cpu_ms.end());
  ctx->AddStageTime(stage_label, critical_ms);
  metrics::MetricsRegistry::Global()
      .GetHistogram("sparkline_stage_us", {{"stage", stage_label}})
      ->Observe(static_cast<int64_t>(critical_ms * 1000.0));
  if (stage_span != nullptr) {
    trace->Annotate(stage_span, "critical_path_ms",
                    FormatFixed(critical_ms, 3));
    trace->Annotate(stage_span, "tasks", std::to_string(num_partitions));
    trace->EndSpan(stage_span);
  }
  for (const auto& s : statuses) SL_RETURN_NOT_OK(s);
  return ctx->CheckInterrupt();
}

Status PhysicalPlan::RunTask(ExecContext* ctx, const std::string& stage_label,
                             size_t index,
                             const std::function<Status(size_t)>& fn,
                             TraceSpan* span) const {
  // Resolved once per process; Increment is one relaxed atomic add.
  static metrics::Counter* retried_counter =
      metrics::MetricsRegistry::Global().GetCounter(
          "sparkline_exec_tasks_retried_total");
  static metrics::Counter* failed_counter =
      metrics::MetricsRegistry::Global().GetCounter(
          "sparkline_exec_tasks_failed_total");
  const int retries = std::max(0, ctx->config().task_retries);
  int64_t backoff_ms = std::max<int64_t>(0, ctx->config().retry_backoff_ms);
  int faults = 0;
  for (int attempt = 0;; ++attempt) {
    SL_RETURN_NOT_OK(ctx->CheckInterrupt());
    Status s;
    try {
      // The injected fault fires BEFORE the task body: a retried attempt
      // must never re-run a body that already consumed (moved out of) its
      // input partition. The bodies themselves never produce retryable
      // statuses, so fn(index) runs at most once to completion.
      s = fail::AnyArmed() ? fail::Hit(failpoint_site()) : Status::OK();
      if (!s.ok()) ++faults;
      if (s.ok()) s = fn(index);
    } catch (const std::exception& e) {
      s = Status::Internal(StrCat("task ", index, " of stage '", stage_label,
                                  "' threw: ", e.what()));
    } catch (...) {
      s = Status::Internal(StrCat("task ", index, " of stage '", stage_label,
                                  "' threw a non-std::exception"));
    }
    if (s.ok() || !s.IsRetryable() || attempt >= retries) {
      if (!s.ok()) {
        ctx->AddTaskFailure();
        failed_counter->Increment();
      }
      if (span != nullptr) {
        Trace* trace = ctx->trace();
        if (attempt > 0) {
          trace->Annotate(span, "retries", std::to_string(attempt));
        }
        if (faults > 0) {
          trace->Annotate(span, "failpoint_fires", std::to_string(faults));
        }
        if (!s.ok()) trace->Annotate(span, "error", s.ToString());
      }
      return s;
    }
    ctx->AddTaskRetries(1);
    retried_counter->Increment();
    if (backoff_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms *= 2;
    }
  }
}

Status PhysicalPlan::ChargeOutput(ExecContext* ctx,
                                  PartitionedRelation* out) const {
  const int64_t bytes = EstimateRelationBytes(*out);
  if (!ctx->memory()->TryGrow(bytes)) {
    return Status::ResourceExhausted(
        StrCat(label(), " output of ", bytes,
               " bytes does not fit the memory limit (",
               ctx->memory()->current_bytes(), " of ",
               ctx->memory()->limit_bytes(), " bytes in use)"));
  }
  out->charge = MemoryCharge(ctx->memory(), bytes);
  const int64_t rows = static_cast<int64_t>(out->TotalRows());
  ctx->AddStageRows(label(), rows);
  if (Trace* trace = ctx->trace()) {
    trace->AnnotateStage(label(), "rows", std::to_string(rows));
  }
  // Unconditional side reservations (kernel matrices, hash tables) bypass
  // TryGrow; surface their overshoot here, at the operator boundary.
  return ctx->CheckMemoryLimit();
}

void PhysicalPlan::DecodeInput(ExecContext* ctx, PartitionedRelation* in) const {
  if (!in->has_batches()) return;
  StopWatch decode;
  in->EnsureRows();
  ctx->AddDecodeMs(decode.ElapsedMillis());
}

Result<ExprPtr> EvaluateSubqueries(const ExprPtr& e, ExecContext* ctx) {
  Status error = Status::OK();
  ExprPtr out = Expression::Transform(e, [&](const ExprPtr& n) -> ExprPtr {
    if (!error.ok() || n->kind() != ExprKind::kPhysicalSubquery) return n;
    const auto& sub = static_cast<const PhysicalSubqueryExpr&>(*n);
    auto result = sub.plan()->Execute(ctx);
    if (!result.ok()) {
      error = result.status();
      return n;
    }
    std::vector<Row> rows = std::move(*result).Flatten();
    if (rows.empty()) return Literal::Make(Value::Null(sub.type()));
    if (rows.size() > 1) {
      error = Status::ExecutionError(
          "scalar subquery returned more than one row");
      return n;
    }
    if (rows[0].size() != 1) {
      error = Status::ExecutionError(
          "scalar subquery returned more than one column");
      return n;
    }
    return Literal::Make(rows[0][0]);
  });
  SL_RETURN_NOT_OK(error);
  return out;
}

// --- ScanExec ---------------------------------------------------------------

ScanExec::ScanExec(TablePtr table, std::vector<size_t> column_indices,
                   std::vector<Attribute> output, bool build_zone_maps)
    : PhysicalPlan(std::move(output), {}),
      table_(std::move(table)),
      column_indices_(std::move(column_indices)),
      build_zone_maps_(build_zone_maps) {}

std::string ScanExec::label() const {
  return StrCat("Scan ", table_->name(), " [", column_indices_.size(),
                " columns]");
}

Result<PartitionedRelation> ScanExec::Execute(ExecContext* ctx) const {
  const auto& rows = table_->rows();
  const size_t n = std::max(1, ctx->config().num_executors);
  PartitionedRelation out;
  out.attrs = output_;
  out.partitions.assign(n, {});
  if (build_zone_maps_) out.zone_maps.assign(n, ZoneMap());

  // Contiguous chunks, like a data source with n splits.
  const size_t per = (rows.size() + n - 1) / n;
  SL_RETURN_NOT_OK(RunStage(ctx, n, [&](size_t i) -> Status {
    const size_t begin = std::min(rows.size(), i * per);
    const size_t end = std::min(rows.size(), begin + per);
    auto& part = out.partitions[i];
    part.reserve(end - begin);
    // Per-partition zone map over the *projected* output columns, folded in
    // while the rows are copied anyway — the data-skipping metadata is free
    // relative to the copy itself.
    if (build_zone_maps_) out.zone_maps[i] = ZoneMap(column_indices_.size());
    for (size_t r = begin; r < end; ++r) {
      Row projected;
      projected.reserve(column_indices_.size());
      for (size_t c : column_indices_) projected.push_back(rows[r][c]);
      if (build_zone_maps_) out.zone_maps[i].Observe(projected);
      part.push_back(std::move(projected));
    }
    return Status::OK();
  }));
  SL_RETURN_NOT_OK(ChargeOutput(ctx, &out));
  return out;
}

// --- LocalRelationExec --------------------------------------------------------

LocalRelationExec::LocalRelationExec(std::shared_ptr<std::vector<Row>> rows,
                                     std::vector<Attribute> output)
    : PhysicalPlan(std::move(output), {}), rows_(std::move(rows)) {}

Result<PartitionedRelation> LocalRelationExec::Execute(ExecContext* ctx) const {
  PartitionedRelation out;
  out.attrs = output_;
  out.partitions.push_back(*rows_);
  SL_RETURN_NOT_OK(ChargeOutput(ctx, &out));
  return out;
}

// --- ProjectExec ---------------------------------------------------------------

ProjectExec::ProjectExec(std::vector<ExprPtr> bound_list,
                         std::vector<Attribute> output, PhysicalPlanPtr child)
    : PhysicalPlan(std::move(output), {std::move(child)}),
      list_(std::move(bound_list)) {}

Result<PartitionedRelation> ProjectExec::Execute(ExecContext* ctx) const {
  SL_ASSIGN_OR_RETURN(PartitionedRelation in, children_[0]->Execute(ctx));
  DecodeInput(ctx, &in);
  std::vector<ExprPtr> list = list_;
  for (auto& e : list) {
    SL_ASSIGN_OR_RETURN(e, EvaluateSubqueries(e, ctx));
  }
  PartitionedRelation out;
  out.attrs = output_;
  out.partitions.assign(in.partitions.size(), {});
  SL_RETURN_NOT_OK(RunStage(ctx, in.partitions.size(), [&](size_t i) -> Status {
    auto& part = out.partitions[i];
    part.reserve(in.partitions[i].size());
    for (const Row& row : in.partitions[i]) {
      Row projected;
      projected.reserve(list.size());
      for (const auto& e : list) {
        SL_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, row));
        projected.push_back(std::move(v));
      }
      part.push_back(std::move(projected));
    }
    return Status::OK();
  }));
  SL_RETURN_NOT_OK(ChargeOutput(ctx, &out));
  return out;
}

// --- FilterExec -----------------------------------------------------------------

FilterExec::FilterExec(ExprPtr bound_condition, PhysicalPlanPtr child)
    : PhysicalPlan(child->output(), {child}),
      condition_(std::move(bound_condition)) {}

Result<PartitionedRelation> FilterExec::Execute(ExecContext* ctx) const {
  SL_ASSIGN_OR_RETURN(PartitionedRelation in, children_[0]->Execute(ctx));
  DecodeInput(ctx, &in);
  SL_ASSIGN_OR_RETURN(ExprPtr cond, EvaluateSubqueries(condition_, ctx));
  PartitionedRelation out;
  out.attrs = output_;
  out.partitions.assign(in.partitions.size(), {});
  // A filter keeps each partition a row subset with unchanged columns, so
  // the scan's zone maps stay conservative bounds and travel through.
  out.zone_maps = std::move(in.zone_maps);
  SL_RETURN_NOT_OK(RunStage(ctx, in.partitions.size(), [&](size_t i) -> Status {
    auto& part = out.partitions[i];
    for (Row& row : in.partitions[i]) {
      SL_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*cond, row));
      if (pass) part.push_back(std::move(row));
    }
    return Status::OK();
  }));
  SL_RETURN_NOT_OK(ChargeOutput(ctx, &out));
  return out;
}

// --- ExchangeExec ----------------------------------------------------------------

namespace {

/// Wire-size estimate of a relation crossing an exchange: row partitions as
/// in EstimateRelationBytes (one sampled row times the count), batch
/// partitions additionally ship their packed matrix keys (the view's rows
/// are already counted by the row estimate; null bitmaps and dictionaries
/// are noise next to the keys).
int64_t EstimateShippedBytes(const PartitionedRelation& rel) {
  int64_t total = EstimateRelationBytes(rel);
  for (const auto& b : rel.batches) {
    if (!b.has_value()) continue;
    total += static_cast<int64_t>(b->num_rows() * b->matrix().num_dims() *
                                  sizeof(double));
  }
  return total;
}

/// 32-bit mix (murmur3 finalizer) so distinct null bitmaps spread over
/// executors even when numerically adjacent.
uint32_t MixHash(uint32_t h) {
  h ^= h >> 16;
  h *= 0x85ebca6bu;
  h ^= h >> 13;
  h *= 0xc2b2ae35u;
  h ^= h >> 16;
  return h;
}
}  // namespace

ExchangeExec::ExchangeExec(ExchangeMode mode,
                           std::vector<skyline::BoundDimension> dims,
                           PhysicalPlanPtr child)
    : PhysicalPlan(child->output(), {child}),
      mode_(mode),
      dims_(std::move(dims)) {}

std::string ExchangeExec::label() const {
  switch (mode_) {
    case ExchangeMode::kGather:
      return "Exchange [AllTuples]";
    case ExchangeMode::kRoundRobin:
      return "Exchange [RoundRobin]";
    case ExchangeMode::kNullBitmapHash:
      return "Exchange [NullBitmapHash]";
    case ExchangeMode::kAngle:
      return "Exchange [Angle]";
  }
  return "Exchange";
}

namespace exchange_internal {

namespace {
/// Sign-adjusted numeric key: negated for MAX so "smaller is better" holds
/// in every dimension, exactly like the DominanceMatrix projection. NaN for
/// NULL / non-numeric values (skipped by the bounds, neutral in the angle).
double NormalizedKey(const Row& row, const skyline::BoundDimension& dim) {
  const Value& v = row[dim.ordinal];
  if (v.is_null() || !v.type().is_numeric()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  const double value = v.ToDouble();
  return dim.goal == SkylineGoal::kMax ? -value : value;
}
}  // namespace

AngleBounds ComputeAngleBounds(const std::vector<std::vector<Row>>& partitions,
                               const std::vector<skyline::BoundDimension>& dims) {
  AngleBounds bounds;
  bounds.lo.assign(dims.size(), std::numeric_limits<double>::infinity());
  bounds.hi.assign(dims.size(), -std::numeric_limits<double>::infinity());
  for (const auto& partition : partitions) {
    for (const Row& row : partition) {
      for (size_t d = 0; d < dims.size(); ++d) {
        const double key = NormalizedKey(row, dims[d]);
        if (std::isnan(key)) continue;
        bounds.lo[d] = std::min(bounds.lo[d], key);
        bounds.hi[d] = std::max(bounds.hi[d], key);
      }
    }
  }
  return bounds;
}

size_t AnglePartition(const Row& row,
                      const std::vector<skyline::BoundDimension>& dims,
                      size_t n, const AngleBounds& bounds) {
  if (dims.size() < 2 || n <= 1) return 0;
  // Min-max scale every sign-adjusted key into [0, 1]: the previous raw
  // |value|+1 magnitudes ignored both the MIN/MAX negation and the
  // per-dimension scale, so MAX goals (large raw magnitudes for *good*
  // values) and wide-range dimensions swamped the angle and collapsed most
  // rows into one or two buckets. Degenerate (constant) and NULL
  // dimensions contribute a neutral 0.5.
  auto scaled = [&](size_t d) {
    const double key = NormalizedKey(row, dims[d]);
    if (std::isnan(key) || !(bounds.hi[d] > bounds.lo[d])) return 0.5;
    return (key - bounds.lo[d]) / (bounds.hi[d] - bounds.lo[d]);
  };
  double rest = 0;
  for (size_t d = 1; d < dims.size(); ++d) {
    const double m = scaled(d);
    rest += m * m;
  }
  const double angle = std::atan2(std::sqrt(rest), scaled(0));
  constexpr double kHalfPi = 1.5707963267948966;
  size_t bucket = static_cast<size_t>(angle / kHalfPi * static_cast<double>(n));
  return bucket >= n ? n - 1 : bucket;
}

}  // namespace exchange_internal

Result<PartitionedRelation> ExchangeExec::Execute(ExecContext* ctx) const {
  SL_ASSIGN_OR_RETURN(PartitionedRelation in, children_[0]->Execute(ctx));
  const int64_t moved = static_cast<int64_t>(in.TotalRows());
  ctx->AddRowsShuffled(moved);
  // Exchange observability: what actually crosses the stage boundary, per
  // query (QueryMetrics) and process-wide (the registry). This is the
  // scorecard of the pre-gather pruning phases — fewer rows/bytes here is
  // the point of BroadcastFilterExec and zone-map skipping.
  const int64_t shipped_bytes = EstimateShippedBytes(in);
  ctx->AddExchangeShipped(moved, shipped_bytes);
  static metrics::Counter* shipped_rows_total =
      metrics::MetricsRegistry::Global().GetCounter(
          "sparkline_exchange_rows_shipped_total");
  static metrics::Counter* shipped_bytes_total =
      metrics::MetricsRegistry::Global().GetCounter(
          "sparkline_exchange_bytes_total");
  shipped_rows_total->Increment(moved);
  shipped_bytes_total->Increment(shipped_bytes);

  PartitionedRelation out;
  out.attrs = output_;
  const size_t n = std::max(1, ctx->config().num_executors);

  // Columnar shuffle: when every gathered partition arrives as a batch,
  // ship the matrix blocks — concatenate them into one compact batch
  // instead of decoding to rows and letting the global stage re-project.
  if (mode_ == ExchangeMode::kGather && in.has_batches()) {
    bool all_batches = true;
    for (size_t i = 0; i < in.partitions.size(); ++i) {
      all_batches &= (i < in.batches.size() && in.batches[i].has_value()) ||
                     in.partitions[i].empty();
    }
    if (all_batches) {
      // `parts` outlives the timed stage: dropping the old backings (the
      // upstream stage's non-survivor rows) happens where the row pipeline
      // destroys its consumed inputs — outside the critical path.
      std::vector<skyline::ColumnarBatch> parts;
      for (auto& batch : in.batches) {
        if (batch.has_value()) parts.push_back(std::move(*batch));
      }
      SL_RETURN_NOT_OK(RunStage(ctx, 1, [&](size_t) -> Status {
        out.partitions.emplace_back();
        out.batches.emplace_back(
            skyline::ColumnarBatch::Concat(&parts, ctx->memory()));
        return Status::OK();
      }));
      ctx->AddMatrixReuse(label());
      // `in` still holds its charge here, so both copies are accounted
      // transiently, as on the row path below.
      SL_RETURN_NOT_OK(ChargeOutput(ctx, &out));
      return out;
    }
    // Mixed row/batch input: decode everything and gather rows.
    DecodeInput(ctx, &in);
  } else if (in.has_batches()) {
    // Re-partitioning exchanges consume rows.
    DecodeInput(ctx, &in);
  }

  SL_RETURN_NOT_OK(RunStage(ctx, 1, [&](size_t) -> Status {
    switch (mode_) {
      case ExchangeMode::kGather: {
        out.partitions.push_back(std::move(in).Flatten());
        break;
      }
      case ExchangeMode::kRoundRobin: {
        out.partitions.assign(n, {});
        size_t next = 0;
        for (auto& p : in.partitions) {
          for (auto& row : p) {
            out.partitions[next % n].push_back(std::move(row));
            ++next;
          }
        }
        break;
      }
      case ExchangeMode::kNullBitmapHash: {
        out.partitions.assign(n, {});
        for (auto& p : in.partitions) {
          for (auto& row : p) {
            const uint32_t bitmap = skyline::NullBitmap(row, dims_);
            out.partitions[MixHash(bitmap) % n].push_back(std::move(row));
          }
        }
        break;
      }
      case ExchangeMode::kAngle: {
        out.partitions.assign(n, {});
        const exchange_internal::AngleBounds bounds =
            exchange_internal::ComputeAngleBounds(in.partitions, dims_);
        for (auto& p : in.partitions) {
          for (auto& row : p) {
            out.partitions[exchange_internal::AnglePartition(row, dims_, n,
                                                             bounds)]
                .push_back(std::move(row));
          }
        }
        break;
      }
    }
    return Status::OK();
  }));
  // `in`'s charge is still alive (serialization buffers): the exchange
  // holds both copies transiently.
  SL_RETURN_NOT_OK(ChargeOutput(ctx, &out));
  return out;
}

// --- SortExec ---------------------------------------------------------------------

SortExec::SortExec(std::vector<BoundSortOrder> orders, PhysicalPlanPtr child)
    : PhysicalPlan(child->output(), {child}),
      orders_(std::move(orders)) {}

Result<PartitionedRelation> SortExec::Execute(ExecContext* ctx) const {
  SL_ASSIGN_OR_RETURN(PartitionedRelation in, children_[0]->Execute(ctx));
  DecodeInput(ctx, &in);
  std::vector<Row> rows = std::move(in).Flatten();

  // Precompute sort keys so the comparator cannot fail mid-sort.
  std::vector<std::vector<Value>> keys(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    keys[i].reserve(orders_.size());
    for (const auto& o : orders_) {
      SL_ASSIGN_OR_RETURN(Value v, EvalExpr(*o.expr, rows[i]));
      keys[i].push_back(std::move(v));
    }
  }
  std::vector<size_t> order(rows.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  SL_RETURN_NOT_OK(RunStage(ctx, 1, [&](size_t) -> Status {
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      for (size_t k = 0; k < orders_.size(); ++k) {
        const Value& va = keys[a][k];
        const Value& vb = keys[b][k];
        if (va.is_null() || vb.is_null()) {
          if (va.is_null() && vb.is_null()) continue;
          return orders_[k].nulls_first ? va.is_null() : vb.is_null();
        }
        const int cmp = CompareValues(va, vb);
        if (cmp != 0) return orders_[k].ascending ? cmp < 0 : cmp > 0;
      }
      return false;
    });
    return Status::OK();
  }));

  PartitionedRelation out;
  out.attrs = output_;
  out.partitions.emplace_back();
  out.partitions[0].reserve(rows.size());
  for (size_t i : order) out.partitions[0].push_back(std::move(rows[i]));
  SL_RETURN_NOT_OK(ChargeOutput(ctx, &out));
  return out;
}

// --- LimitExec ----------------------------------------------------------------------

LimitExec::LimitExec(int64_t n, PhysicalPlanPtr child)
    : PhysicalPlan(child->output(), {child}), n_(n) {}

Result<PartitionedRelation> LimitExec::Execute(ExecContext* ctx) const {
  SL_ASSIGN_OR_RETURN(PartitionedRelation in, children_[0]->Execute(ctx));
  DecodeInput(ctx, &in);
  std::vector<Row> rows = std::move(in).Flatten();
  if (static_cast<int64_t>(rows.size()) > n_) {
    rows.resize(static_cast<size_t>(n_));
  }
  PartitionedRelation out;
  out.attrs = output_;
  out.partitions.push_back(std::move(rows));
  SL_RETURN_NOT_OK(ChargeOutput(ctx, &out));
  return out;
}

}  // namespace sparkline
