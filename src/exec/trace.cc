#include "exec/trace.h"

#include "common/string_util.h"
#include "common/timer.h"

namespace sparkline {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void AppendSpanEvents(const TraceSpan& span, bool* first, std::string* out) {
  if (!*first) *out += ",\n";
  *first = false;
  // A "complete" event: ts/dur in integer microseconds.
  *out += StrCat("  {\"name\": \"", JsonEscape(span.name), "\", \"cat\": \"",
                 JsonEscape(span.kind), "\", \"ph\": \"X\", \"ts\": ",
                 static_cast<int64_t>(span.start_ms * 1000.0),
                 ", \"dur\": ", static_cast<int64_t>(span.dur_ms * 1000.0),
                 ", \"pid\": 1, \"tid\": ", span.tid, ", \"args\": {");
  for (size_t i = 0; i < span.attrs.size(); ++i) {
    if (i > 0) *out += ", ";
    *out += StrCat("\"", JsonEscape(span.attrs[i].first), "\": \"",
                   JsonEscape(span.attrs[i].second), "\"");
  }
  *out += "}}";
  for (const auto& child : span.children) {
    AppendSpanEvents(*child, first, out);
  }
}

}  // namespace

std::vector<const TraceSpan*> TraceSpan::ChildrenOfKind(
    const std::string& kind) const {
  std::vector<const TraceSpan*> out;
  for (const auto& child : children) {
    if (child->kind == kind) out.push_back(child.get());
  }
  return out;
}

Trace::Trace() : origin_nanos_(StopWatch::NowNanos()) {
  sl::MutexLock lock(&mu_);
  root_ = std::make_unique<TraceSpan>();
  root_->name = "query";
  root_->kind = "query";
}

double Trace::NowMs() const {
  return static_cast<double>(StopWatch::NowNanos() - origin_nanos_) / 1e6;
}

TraceSpan* Trace::StartSpan(TraceSpan* parent, std::string name,
                            std::string kind, int64_t tid) {
  auto span = std::make_unique<TraceSpan>();
  TraceSpan* raw = span.get();
  raw->name = std::move(name);
  raw->kind = std::move(kind);
  raw->start_ms = NowMs();
  raw->tid = tid;
  sl::MutexLock lock(&mu_);
  if (parent == nullptr) parent = root_.get();
  parent->children.push_back(std::move(span));
  if (raw->kind == "stage") {
    bool found = false;
    for (auto& [stage_name, stage_span] : stages_) {
      if (stage_name == raw->name) {
        stage_span = raw;
        found = true;
        break;
      }
    }
    if (!found) stages_.emplace_back(raw->name, raw);
  }
  return raw;
}

void Trace::EndSpan(TraceSpan* span) {
  const double now = NowMs();
  sl::MutexLock lock(&mu_);
  span->dur_ms = now - span->start_ms;
}

void Trace::Annotate(TraceSpan* span, std::string key, std::string value) {
  sl::MutexLock lock(&mu_);
  if (span == nullptr) span = root_.get();
  span->attrs.emplace_back(std::move(key), std::move(value));
}

void Trace::AnnotateStage(const std::string& stage, std::string key,
                          std::string value) {
  sl::MutexLock lock(&mu_);
  for (auto& [stage_name, stage_span] : stages_) {
    if (stage_name == stage) {
      stage_span->attrs.emplace_back(std::move(key), std::move(value));
      return;
    }
  }
}

std::unique_ptr<TraceSpan> Trace::Finish(double wall_ms) {
  sl::MutexLock lock(&mu_);
  root_->dur_ms = wall_ms;
  stages_.clear();
  return std::move(root_);
}

std::string TraceChromeJson(const TraceSpan* root) {
  if (root == nullptr) return "";
  std::string out = "{\"traceEvents\": [\n";
  bool first = true;
  AppendSpanEvents(*root, &first, &out);
  out += "\n]}\n";
  return out;
}

}  // namespace sparkline
