// The skyline physical operators (paper sections 5.5 - 5.7).
//
// Algorithm selection happens in the physical planner (Listing 8); these
// operators only run the algorithm library over partitions:
//
//   distributed complete:   LocalSkylineExec (child partitioning kept)
//                           -> Exchange[AllTuples] -> GlobalSkylineExec
//   non-distributed:        Exchange[AllTuples] -> GlobalSkylineExec
//   distributed incomplete: Exchange[NullBitmapHash] -> LocalSkylineExec
//                           -> Exchange[AllTuples]
//                           -> GlobalSkylineIncompleteExec
#include "common/string_util.h"
#include "exec/physical_plan.h"

namespace sparkline {

namespace {
Result<std::vector<Row>> RunKernel(SkylineKernel kernel,
                                   const std::vector<Row>& rows,
                                   const std::vector<skyline::BoundDimension>& dims,
                                   const skyline::SkylineOptions& options) {
  if (kernel == SkylineKernel::kSortFilterSkyline) {
    return skyline::SortFilterSkyline(rows, dims, options);
  }
  if (kernel == SkylineKernel::kGridFilter) {
    return skyline::GridFilterSkyline(rows, dims, options);
  }
  return skyline::BlockNestedLoop(rows, dims, options);
}
}  // namespace

LocalSkylineExec::LocalSkylineExec(std::vector<skyline::BoundDimension> dims,
                                   bool distinct, skyline::NullSemantics nulls,
                                   PhysicalPlanPtr child, SkylineKernel kernel)
    : PhysicalPlan(child->output(), {child}),
      dims_(std::move(dims)),
      distinct_(distinct),
      nulls_(nulls),
      kernel_(kernel) {}

std::string LocalSkylineExec::label() const {
  return StrCat("LocalSkyline [",
                nulls_ == skyline::NullSemantics::kComplete ? "complete"
                                                            : "incomplete",
                ", ", dims_.size(), " dims",
                kernel_ == SkylineKernel::kSortFilterSkyline
                    ? ", sfs"
                    : (kernel_ == SkylineKernel::kGridFilter ? ", grid" : ""),
                "]");
}

Result<PartitionedRelation> LocalSkylineExec::Execute(ExecContext* ctx) const {
  SL_ASSIGN_OR_RETURN(PartitionedRelation in, children_[0]->Execute(ctx));
  skyline::SkylineOptions options;
  options.distinct = distinct_;
  options.nulls = nulls_;
  options.counter = ctx->dominance();
  options.deadline_nanos = ctx->deadline_nanos();

  PartitionedRelation out;
  out.attrs = output_;
  out.partitions.assign(in.partitions.size(), {});
  SL_RETURN_NOT_OK(RunStage(ctx, in.partitions.size(), [&](size_t i) -> Status {
    if (nulls_ == skyline::NullSemantics::kComplete) {
      SL_ASSIGN_OR_RETURN(out.partitions[i],
                          RunKernel(kernel_, in.partitions[i], dims_, options));
      return Status::OK();
    }
    // Incomplete data: the exchange routes equal bitmaps to the same
    // executor, but distinct bitmaps may share one (hash collisions when
    // there are more bitmaps than executors). BNL is only sound within a
    // bitmap-uniform group (paper section 5.7), so sub-group here.
    for (auto& group :
         skyline::PartitionByNullBitmap(in.partitions[i], dims_)) {
      SL_ASSIGN_OR_RETURN(std::vector<Row> local,
                          skyline::BlockNestedLoop(group, dims_, options));
      for (auto& r : local) out.partitions[i].push_back(std::move(r));
    }
    return Status::OK();
  }));
  AccountMemory(ctx, in, out);
  return out;
}

GlobalSkylineExec::GlobalSkylineExec(std::vector<skyline::BoundDimension> dims,
                                     bool distinct, PhysicalPlanPtr child,
                                     SkylineKernel kernel)
    : PhysicalPlan(child->output(), {child}),
      dims_(std::move(dims)),
      distinct_(distinct),
      kernel_(kernel) {}

Result<PartitionedRelation> GlobalSkylineExec::Execute(ExecContext* ctx) const {
  SL_ASSIGN_OR_RETURN(PartitionedRelation in, children_[0]->Execute(ctx));
  // AllTuples distribution: everything on one executor.
  std::vector<Row> rows = std::move(in).Flatten();
  ctx->memory()->Grow(
      rows.empty() ? 0
                   : EstimateRowBytes(rows.front()) *
                         static_cast<int64_t>(rows.size()));

  skyline::SkylineOptions options;
  options.distinct = distinct_;
  options.nulls = skyline::NullSemantics::kComplete;
  options.counter = ctx->dominance();
  options.deadline_nanos = ctx->deadline_nanos();

  PartitionedRelation out;
  out.attrs = output_;
  out.partitions.emplace_back();
  SL_RETURN_NOT_OK(RunStage(ctx, 1, [&](size_t) -> Status {
    SL_ASSIGN_OR_RETURN(out.partitions[0],
                        RunKernel(kernel_, rows, dims_, options));
    return Status::OK();
  }));
  ctx->memory()->Shrink(
      rows.empty() ? 0
                   : EstimateRowBytes(rows.front()) *
                         static_cast<int64_t>(rows.size()));
  return out;
}

GlobalSkylineIncompleteExec::GlobalSkylineIncompleteExec(
    std::vector<skyline::BoundDimension> dims, bool distinct,
    PhysicalPlanPtr child)
    : PhysicalPlan(child->output(), {child}),
      dims_(std::move(dims)),
      distinct_(distinct) {}

Result<PartitionedRelation> GlobalSkylineIncompleteExec::Execute(
    ExecContext* ctx) const {
  SL_ASSIGN_OR_RETURN(PartitionedRelation in, children_[0]->Execute(ctx));
  std::vector<Row> rows = std::move(in).Flatten();

  skyline::SkylineOptions options;
  options.distinct = distinct_;
  options.nulls = skyline::NullSemantics::kIncomplete;
  options.counter = ctx->dominance();
  options.deadline_nanos = ctx->deadline_nanos();

  PartitionedRelation out;
  out.attrs = output_;
  out.partitions.emplace_back();
  SL_RETURN_NOT_OK(RunStage(ctx, 1, [&](size_t) -> Status {
    SL_ASSIGN_OR_RETURN(out.partitions[0],
                        skyline::AllPairsIncomplete(rows, dims_, options));
    return Status::OK();
  }));
  return out;
}

}  // namespace sparkline
