// The skyline physical operators (paper sections 5.5 - 5.7).
//
// Algorithm selection happens in the physical planner (Listing 8); these
// operators only run the algorithm library over partitions:
//
//   distributed complete:   LocalSkylineExec (child partitioning kept)
//                           -> Exchange[AllTuples] -> GlobalSkylineExec
//   non-distributed:        Exchange[AllTuples] -> GlobalSkylineExec
//   distributed incomplete: Exchange[NullBitmapHash] -> LocalSkylineExec
//                           -> Exchange[AllTuples]
//                           -> GlobalSkylineIncompleteExec
//
// Dominance tests run through the columnar fast path by default: each
// partition is projected once into a DominanceMatrix (skyline/columnar.h)
// and the index-based kernels run over it, materializing rows only for the
// survivors. Unsupported shapes (and sparkline.skyline.columnar = false)
// take the original row-oriented kernels.
#include <algorithm>
#include <iterator>

#include "common/string_util.h"
#include "exec/physical_plan.h"
#include "skyline/columnar.h"

namespace sparkline {

namespace {

skyline::ColumnarKernel ToColumnarKernel(SkylineKernel kernel) {
  switch (kernel) {
    case SkylineKernel::kSortFilterSkyline:
      return skyline::ColumnarKernel::kSortFilterSkyline;
    case SkylineKernel::kGridFilter:
      return skyline::ColumnarKernel::kGridFilter;
    case SkylineKernel::kBlockNestedLoop:
      break;
  }
  return skyline::ColumnarKernel::kBlockNestedLoop;
}

/// Runs one partition through the configured kernel. Complete semantics
/// dispatch the kernel directly; incomplete semantics compute one BNL per
/// bitmap-uniform group (the local-stage contract of paper section 5.7 —
/// the exchange routes equal bitmaps together, but distinct bitmaps may
/// share an executor, so sub-grouping here stays necessary).
Result<std::vector<Row>> RunKernel(SkylineKernel kernel,
                                   const std::vector<Row>& rows,
                                   const std::vector<skyline::BoundDimension>& dims,
                                   const skyline::SkylineOptions& options,
                                   bool columnar) {
  if (columnar) {
    // ColumnarSkyline handles both semantics and falls back to the row
    // kernels internally when the shape is unsupported.
    return skyline::ColumnarSkyline(ToColumnarKernel(kernel), rows, dims,
                                    options);
  }
  if (options.nulls == skyline::NullSemantics::kIncomplete) {
    return skyline::BitmapGroupedBnl(rows, dims, options);
  }
  if (kernel == SkylineKernel::kSortFilterSkyline) {
    return skyline::SortFilterSkyline(rows, dims, options);
  }
  if (kernel == SkylineKernel::kGridFilter) {
    return skyline::GridFilterSkyline(rows, dims, options);
  }
  return skyline::BlockNestedLoop(rows, dims, options);
}

}  // namespace

LocalSkylineExec::LocalSkylineExec(std::vector<skyline::BoundDimension> dims,
                                   bool distinct, skyline::NullSemantics nulls,
                                   PhysicalPlanPtr child, SkylineKernel kernel,
                                   bool columnar)
    : PhysicalPlan(child->output(), {child}),
      dims_(std::move(dims)),
      distinct_(distinct),
      nulls_(nulls),
      kernel_(kernel),
      columnar_(columnar) {}

std::string LocalSkylineExec::label() const {
  return StrCat("LocalSkyline [",
                nulls_ == skyline::NullSemantics::kComplete ? "complete"
                                                            : "incomplete",
                ", ", dims_.size(), " dims",
                kernel_ == SkylineKernel::kSortFilterSkyline
                    ? ", sfs"
                    : (kernel_ == SkylineKernel::kGridFilter ? ", grid" : ""),
                "]");
}

Result<PartitionedRelation> LocalSkylineExec::Execute(ExecContext* ctx) const {
  SL_ASSIGN_OR_RETURN(PartitionedRelation in, children_[0]->Execute(ctx));
  skyline::SkylineOptions options;
  options.distinct = distinct_;
  options.nulls = nulls_;
  options.counter = ctx->dominance();
  options.deadline_nanos = ctx->deadline_nanos();

  PartitionedRelation out;
  out.attrs = output_;
  out.partitions.assign(in.partitions.size(), {});
  SL_RETURN_NOT_OK(RunStage(ctx, in.partitions.size(), [&](size_t i) -> Status {
    SL_ASSIGN_OR_RETURN(
        out.partitions[i],
        RunKernel(kernel_, in.partitions[i], dims_, options, columnar_));
    return Status::OK();
  }));
  AccountMemory(ctx, in, out);
  return out;
}

GlobalSkylineExec::GlobalSkylineExec(std::vector<skyline::BoundDimension> dims,
                                     bool distinct, PhysicalPlanPtr child,
                                     SkylineKernel kernel, bool columnar)
    : PhysicalPlan(child->output(), {child}),
      dims_(std::move(dims)),
      distinct_(distinct),
      kernel_(kernel),
      columnar_(columnar) {}

Result<PartitionedRelation> GlobalSkylineExec::Execute(ExecContext* ctx) const {
  SL_ASSIGN_OR_RETURN(PartitionedRelation in, children_[0]->Execute(ctx));
  // AllTuples distribution: everything on one executor.
  std::vector<Row> rows = std::move(in).Flatten();
  const int64_t input_bytes =
      rows.empty() ? 0
                   : EstimateRowBytes(rows.front()) *
                         static_cast<int64_t>(rows.size());
  ctx->memory()->Grow(input_bytes);

  skyline::SkylineOptions options;
  options.distinct = distinct_;
  options.nulls = skyline::NullSemantics::kComplete;
  options.counter = ctx->dominance();
  options.deadline_nanos = ctx->deadline_nanos();

  PartitionedRelation out;
  out.attrs = output_;
  out.partitions.emplace_back();

  const size_t num_executors =
      static_cast<size_t>(std::max(1, ctx->config().num_executors));
  if (num_executors <= 1 || rows.size() < 2) {
    // Single executor: the classic single-task global pass.
    SL_RETURN_NOT_OK(RunStage(ctx, 1, [&](size_t) -> Status {
      SL_ASSIGN_OR_RETURN(out.partitions[0],
                          RunKernel(kernel_, rows, dims_, options, columnar_));
      return Status::OK();
    }));
    ctx->memory()->Shrink(input_bytes);
    return out;
  }

  // Parallel partial-merge global skyline: split the gathered rows into
  // executor-count chunks, compute chunk skylines concurrently, then merge
  // the partial windows in one BNL pass. Correct because complete dominance
  // is transitive: a tuple dominated in its chunk is also dominated in the
  // full input, so chunk pruning never removes a global skyline point.
  const size_t chunks = std::min(num_executors, rows.size());
  // Balanced split: sizes differ by at most one, so no executor idles and
  // the partial stage's critical path is as short as the split allows.
  const size_t base = rows.size() / chunks;
  const size_t extra = rows.size() % chunks;
  std::vector<std::vector<Row>> chunk_rows(chunks);
  size_t begin = 0;
  for (size_t i = 0; i < chunks; ++i) {
    const size_t end = begin + base + (i < extra ? 1 : 0);
    chunk_rows[i].assign(std::make_move_iterator(rows.begin() + begin),
                         std::make_move_iterator(rows.begin() + end));
    begin = end;
  }
  rows.clear();

  std::vector<std::vector<Row>> partials(chunks);
  SL_RETURN_NOT_OK(RunStage(
      ctx, StrCat(label(), " [partial]"), chunks, [&](size_t i) -> Status {
        SL_ASSIGN_OR_RETURN(
            partials[i],
            RunKernel(kernel_, chunk_rows[i], dims_, options, columnar_));
        return Status::OK();
      }));

  std::vector<Row> merge_input;
  for (auto& p : partials) {
    for (auto& r : p) merge_input.push_back(std::move(r));
  }
  SL_RETURN_NOT_OK(RunStage(
      ctx, StrCat(label(), " [merge]"), 1, [&](size_t) -> Status {
        SL_ASSIGN_OR_RETURN(out.partitions[0],
                            RunKernel(SkylineKernel::kBlockNestedLoop,
                                      merge_input, dims_, options, columnar_));
        return Status::OK();
      }));
  ctx->memory()->Shrink(input_bytes);
  return out;
}

GlobalSkylineIncompleteExec::GlobalSkylineIncompleteExec(
    std::vector<skyline::BoundDimension> dims, bool distinct,
    PhysicalPlanPtr child, bool columnar)
    : PhysicalPlan(child->output(), {child}),
      dims_(std::move(dims)),
      distinct_(distinct),
      columnar_(columnar) {}

Result<PartitionedRelation> GlobalSkylineIncompleteExec::Execute(
    ExecContext* ctx) const {
  SL_ASSIGN_OR_RETURN(PartitionedRelation in, children_[0]->Execute(ctx));
  std::vector<Row> rows = std::move(in).Flatten();

  skyline::SkylineOptions options;
  options.distinct = distinct_;
  options.nulls = skyline::NullSemantics::kIncomplete;
  options.counter = ctx->dominance();
  options.deadline_nanos = ctx->deadline_nanos();

  PartitionedRelation out;
  out.attrs = output_;
  out.partitions.emplace_back();
  SL_RETURN_NOT_OK(RunStage(ctx, 1, [&](size_t) -> Status {
    if (columnar_) {
      SL_ASSIGN_OR_RETURN(out.partitions[0],
                          skyline::ColumnarAllPairsSkyline(rows, dims_, options));
    } else {
      SL_ASSIGN_OR_RETURN(out.partitions[0],
                          skyline::AllPairsIncomplete(rows, dims_, options));
    }
    return Status::OK();
  }));
  return out;
}

}  // namespace sparkline
