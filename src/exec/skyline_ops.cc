// The skyline physical operators (paper sections 5.5 - 5.7).
//
// Algorithm selection happens in the physical planner (Listing 8); these
// operators only run the algorithm library over partitions:
//
//   distributed complete:   LocalSkylineExec (child partitioning kept)
//                           -> Exchange[AllTuples] -> GlobalSkylineExec
//   non-distributed:        Exchange[AllTuples] -> GlobalSkylineExec
//   distributed incomplete: Exchange[NullBitmapHash] -> LocalSkylineExec
//                           -> Exchange[AllTuples]
//                           -> GlobalSkylineIncompleteExec
//
// Dominance tests run through the columnar fast path by default: each
// partition is projected once into a DominanceMatrix (skyline/columnar.h)
// and the index-based kernels run over it, materializing rows only for the
// survivors. Unsupported shapes (and sparkline.skyline.columnar = false)
// take the original row-oriented kernels.
//
// Columnar exchange (sparkline.skyline.exchange.columnar, default on): the
// stages exchange ColumnarBatch views instead of materialized rows. The
// local stage projects each partition exactly once; the gather exchange
// concatenates the matrix blocks; the global stages slice and merge index
// views over the shared matrix; rows are decoded only at the plan root (or
// by the first non-skyline consumer). QueryMetrics::matrix_builds /
// matrix_reuses record which stages projected vs. reused.
#include <algorithm>
#include <iterator>
#include <limits>
#include <memory>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "exec/physical_plan.h"
#include "skyline/columnar.h"

namespace sparkline {

namespace {

skyline::ColumnarKernel ToColumnarKernel(SkylineKernel kernel) {
  switch (kernel) {
    case SkylineKernel::kSortFilterSkyline:
      return skyline::ColumnarKernel::kSortFilterSkyline;
    case SkylineKernel::kGridFilter:
      return skyline::ColumnarKernel::kGridFilter;
    case SkylineKernel::kBlockNestedLoop:
      break;
  }
  return skyline::ColumnarKernel::kBlockNestedLoop;
}

/// Runs one partition through the configured kernel. Complete semantics
/// dispatch the kernel directly; incomplete semantics compute one BNL per
/// bitmap-uniform group (the local-stage contract of paper section 5.7 —
/// the exchange routes equal bitmaps together, but distinct bitmaps may
/// share an executor, so sub-grouping here stays necessary).
Result<std::vector<Row>> RunKernel(SkylineKernel kernel,
                                   const std::vector<Row>& rows,
                                   const std::vector<skyline::BoundDimension>& dims,
                                   const skyline::SkylineOptions& options,
                                   bool columnar) {
  if (columnar) {
    // ColumnarSkyline handles both semantics and falls back to the row
    // kernels internally when the shape is unsupported.
    return skyline::ColumnarSkyline(ToColumnarKernel(kernel), rows, dims,
                                    options);
  }
  if (options.nulls == skyline::NullSemantics::kIncomplete) {
    return skyline::BitmapGroupedBnl(rows, dims, options);
  }
  if (kernel == SkylineKernel::kSortFilterSkyline) {
    return skyline::SortFilterSkyline(rows, dims, options);
  }
  if (kernel == SkylineKernel::kGridFilter) {
    return skyline::GridFilterSkyline(rows, dims, options);
  }
  return skyline::BlockNestedLoop(rows, dims, options);
}

/// RunKernel with per-stage projection accounting: matrix builds inside
/// ColumnarSkyline are counted under `stage_label` and the matrix bytes are
/// charged to the query's MemoryTracker for the duration of the call. This
/// is what makes the build-per-stage cost of the non-exchange path visible
/// in QueryMetrics::matrix_builds.
Result<std::vector<Row>> RunKernelCounted(
    ExecContext* ctx, const std::string& stage_label, SkylineKernel kernel,
    const std::vector<Row>& rows,
    const std::vector<skyline::BoundDimension>& dims,
    skyline::SkylineOptions options, bool columnar) {
  std::atomic<int64_t> builds{0};
  options.memory = ctx->memory();
  options.matrix_builds = &builds;
  auto result = RunKernel(kernel, rows, dims, options, columnar);
  if (builds.load() > 0) ctx->AddMatrixBuilds(stage_label, builds.load());
  return result;
}

/// Balanced contiguous chunk bounds: sizes differ by at most one, so no
/// executor idles and the parallel stage's critical path is as short as the
/// split allows.
std::vector<size_t> ChunkBounds(size_t n, size_t chunks) {
  std::vector<size_t> bounds(chunks + 1, 0);
  const size_t base = n / chunks;
  const size_t extra = n % chunks;
  for (size_t i = 0; i < chunks; ++i) {
    bounds[i + 1] = bounds[i] + base + (i < extra ? 1 : 0);
  }
  return bounds;
}

/// Normalized zone-map corners for one partition over the skyline
/// dimensions, in DominanceMatrix key space ("smaller is better": MAX
/// values are negated). `best` is the most optimistic coordinate any row of
/// the partition can have per dimension; `worst` the most pessimistic every
/// row is at least as good as. Returns false when the zone cannot support a
/// sound corner test for these dimensions: invalid / shape-poisoned zone, a
/// dimension with no numeric range, a NULL anywhere in a skyline dimension
/// (NULL coordinates escape the min/max summary), or a DIFF goal (its
/// dictionary codes carry no order).
bool ZoneCorners(const ZoneMap& zone,
                 const std::vector<skyline::BoundDimension>& dims,
                 std::vector<double>* best, std::vector<double>* worst) {
  if (!zone.valid()) return false;
  best->clear();
  worst->clear();
  best->reserve(dims.size());
  worst->reserve(dims.size());
  for (const auto& dim : dims) {
    if (dim.goal == SkylineGoal::kDiff) return false;
    if (dim.ordinal >= zone.columns.size()) return false;
    const ColumnZone& col = zone.columns[dim.ordinal];
    if (!col.has_range() || col.null_count > 0) return false;
    if (dim.goal == SkylineGoal::kMax) {
      best->push_back(-col.max);
      worst->push_back(-col.min);
    } else {
      best->push_back(col.min);
      worst->push_back(col.max);
    }
  }
  return true;
}

/// True when the partition behind `worst` strictly dominates every possible
/// row of the partition behind `best`: worst <= best componentwise with at
/// least one strict dimension. Any row r of the witness and any row s of
/// the candidate satisfy r[d] <= worst[d] <= best[d] <= s[d], strictly at
/// the witness dimension — classic zone-map pruning lifted from scalar
/// ranges to the dominance lattice.
bool CornerDominates(const std::vector<double>& worst,
                     const std::vector<double>& best) {
  bool strict = false;
  for (size_t d = 0; d < worst.size(); ++d) {
    if (worst[d] > best[d]) return false;
    if (worst[d] < best[d]) strict = true;
  }
  return strict;
}

}  // namespace

LocalSkylineExec::LocalSkylineExec(std::vector<skyline::BoundDimension> dims,
                                   bool distinct, skyline::NullSemantics nulls,
                                   PhysicalPlanPtr child, SkylineKernel kernel,
                                   bool columnar, bool columnar_exchange,
                                   bool sfs_early_stop,
                                   skyline::SfsSortKey sfs_sort_key,
                                   bool zone_map_skipping)
    : PhysicalPlan(child->output(), {child}),
      dims_(std::move(dims)),
      distinct_(distinct),
      nulls_(nulls),
      kernel_(kernel),
      columnar_(columnar),
      columnar_exchange_(columnar_exchange),
      sfs_early_stop_(sfs_early_stop),
      sfs_sort_key_(sfs_sort_key),
      zone_map_skipping_(zone_map_skipping) {}

std::string LocalSkylineExec::label() const {
  return StrCat("LocalSkyline [",
                nulls_ == skyline::NullSemantics::kComplete ? "complete"
                                                            : "incomplete",
                ", ", dims_.size(), " dims",
                kernel_ == SkylineKernel::kSortFilterSkyline
                    ? ", sfs"
                    : (kernel_ == SkylineKernel::kGridFilter ? ", grid" : ""),
                "]");
}

Result<PartitionedRelation> LocalSkylineExec::Execute(ExecContext* ctx) const {
  SL_ASSIGN_OR_RETURN(PartitionedRelation in, children_[0]->Execute(ctx));
  // A skyline stage feeding another skyline operator (nested queries)
  // decodes between them: the two matrices project different dimensions.
  DecodeInput(ctx, &in);

  skyline::SkylineOptions options;
  options.distinct = distinct_;
  options.nulls = nulls_;
  options.counter = ctx->dominance();
  options.deadline_nanos = ctx->deadline_nanos();
  options.cancel = ctx->cancel_token();
  options.sfs_early_stop = sfs_early_stop_;
  options.sfs_sort_key = sfs_sort_key_;
  options.early_stop = ctx->early_stop();

  const size_t n = in.partitions.size();
  const bool emit_batches = columnar_ && columnar_exchange_;

  PartitionedRelation out;
  out.attrs = output_;
  out.partitions.assign(n, {});
  if (emit_batches) out.batches.assign(n, std::nullopt);

  // --- Phase-two pruning: zone-map partition skipping -----------------------
  // Drop whole partitions before projection when another partition's zone
  // proves total strict dominance: if the witness partition's worst corner
  // dominates the candidate's best corner (componentwise <=, strict
  // somewhere), every row of the witness strictly dominates every row of
  // the candidate, so the candidate contributes nothing to any skyline.
  // Strict-only elimination keeps DISTINCT ties intact, and mutual or
  // cyclic skipping is impossible because strict corner dominance is a
  // strict partial order. Sound only under complete semantics — incomplete
  // dominance is non-transitive and NULL coordinates escape the min/max
  // summary — so the test auto-disables there. Witnesses must still hold
  // rows: a Filter may have emptied a partition whose scan-time zone still
  // claims a range.
  std::vector<char> skip(n, 0);
  if (zone_map_skipping_ && nulls_ == skyline::NullSemantics::kComplete &&
      n > 1 && in.zone_maps.size() == n) {
    std::vector<std::vector<double>> best(n);
    std::vector<std::vector<double>> worst(n);
    std::vector<char> eligible(n, 0);
    for (size_t i = 0; i < n; ++i) {
      eligible[i] =
          in.PartitionRows(i) > 0 &&
          ZoneCorners(in.zone_maps[i], dims_, &best[i], &worst[i]);
    }
    int64_t skipped = 0;
    for (size_t q = 0; q < n; ++q) {
      if (!eligible[q]) continue;
      for (size_t p = 0; p < n; ++p) {
        if (p == q || !eligible[p]) continue;
        if (CornerDominates(worst[p], best[q])) {
          skip[q] = 1;
          ++skipped;
          break;
        }
      }
    }
    if (skipped > 0) {
      ctx->AddPartitionsSkipped(skipped);
      static metrics::Counter* skipped_counter =
          metrics::MetricsRegistry::Global().GetCounter(
              "sparkline_partitions_skipped_total");
      skipped_counter->Increment(skipped);
    }
  }
  if (in.zone_maps.size() == n) {
    // Output partitions are row subsets of the input partitions with the
    // same columns, so the scan-time zones remain conservative bounds for
    // them. Skipped partitions ship no rows; clear their zones so the
    // broadcast phase never counts a veto against an already-empty
    // partition.
    out.zone_maps = std::move(in.zone_maps);
    for (size_t i = 0; i < n; ++i) {
      if (skip[i]) out.zone_maps[i] = ZoneMap();
    }
  }

  SL_RETURN_NOT_OK(RunStage(ctx, n, [&](size_t i) -> Status {
    if (skip[i]) {
      // Zone-skipped: drop the rows before the projection. The normal path
      // below then runs over zero rows, producing the same (empty) batch
      // shape and sort/stop-bound flags as an actually-empty partition, so
      // the gather's all-batches columnar path survives.
      in.partitions[i].clear();
    }
    if (emit_batches) {
      // Project this partition exactly once; every downstream skyline stage
      // reuses the matrix through the batch.
      auto rows =
          std::make_shared<std::vector<Row>>(std::move(in.partitions[i]));
      StopWatch project;
      std::optional<skyline::ColumnarBatch> batch =
          skyline::ColumnarBatch::Project(rows, dims_, ctx->memory());
      if (batch.has_value()) {
        ctx->AddProjectionMs(project.ElapsedMillis());
        ctx->AddMatrixBuilds(label(), 1);
        skyline::SkylineOptions opts = options;
        opts.memory = ctx->memory();
        SL_ASSIGN_OR_RETURN(
            std::vector<uint32_t> survivors,
            skyline::RunColumnarKernel(ToColumnarKernel(kernel_),
                                       batch->matrix(), batch->indices(),
                                       opts));
        // SFS leaves its window in sort-key order; tag the view so the
        // global stage can inherit the sort instead of re-sorting, and
        // attach this partition's SaLSa stop bound (the tightest
        // max-coordinate over its skyline) so the merge can inherit it too.
        const bool sorted =
            kernel_ == SkylineKernel::kSortFilterSkyline &&
            skyline::SfsFastPathApplicable(batch->matrix(), opts);
        const double stop_bound =
            sorted && sfs_early_stop_
                ? skyline::ComputeStopBound(batch->matrix(), survivors)
                : std::numeric_limits<double>::infinity();
        out.batches[i] = batch->WithSelection(std::move(survivors), sorted,
                                              sfs_sort_key_, stop_bound);
        return Status::OK();
      }
      // Shape refused by TryBuild: this partition stays on the row path
      // (columnar=false — a second TryBuild would just fail again).
      SL_ASSIGN_OR_RETURN(out.partitions[i],
                          RunKernelCounted(ctx, label(), kernel_, *rows, dims_,
                                           options, /*columnar=*/false));
      return Status::OK();
    }
    SL_ASSIGN_OR_RETURN(out.partitions[i],
                        RunKernelCounted(ctx, label(), kernel_,
                                         in.partitions[i], dims_, options,
                                         columnar_));
    return Status::OK();
  }));
  SL_RETURN_NOT_OK(ChargeOutput(ctx, &out));
  return out;
}

// --- BroadcastFilterExec ----------------------------------------------------

BroadcastFilterExec::BroadcastFilterExec(
    std::vector<skyline::BoundDimension> dims, PhysicalPlanPtr child,
    size_t points_per_partition)
    : PhysicalPlan(child->output(), {child}),
      dims_(std::move(dims)),
      points_per_partition_(points_per_partition) {}

Result<PartitionedRelation> BroadcastFilterExec::Execute(
    ExecContext* ctx) const {
  SL_ASSIGN_OR_RETURN(PartitionedRelation in, children_[0]->Execute(ctx));

  // Eligibility (see the class comment): every non-empty partition must
  // carry a batch projected for these dimensions whose matrix supports
  // cross-matrix key comparison. Anything else — row partitions, refused
  // shapes, NULL bitmaps, DIFF dimensions — passes through unchanged; the
  // gather and global merge compute the same result, just without the
  // pre-gather discount.
  const size_t n = in.partitions.size();
  size_t non_empty = 0;
  bool eligible = n > 1 && in.batches.size() == n && points_per_partition_ > 0;
  for (size_t i = 0; eligible && i < n; ++i) {
    if (in.PartitionRows(i) == 0) continue;
    ++non_empty;
    const std::optional<skyline::ColumnarBatch>& b = in.batches[i];
    eligible = b.has_value() && b->ProjectedFor(dims_) &&
               b->matrix().all_numeric_minmax() && !b->matrix().has_nulls() &&
               b->matrix().diff_mask() == 0;
  }
  if (!eligible || non_empty < 2) return in;

  // Degradation contract: the filter is a shuffle discount, never a
  // correctness dependency. Cancellation, timeout and memory exhaustion
  // keep their meaning and propagate; any other stage failure (including
  // injected "exec.broadcast" faults that outlive the retry budget) falls
  // back to the unfiltered input. Both stages only read `in` and write
  // side vectors, so the fallback input is untouched.
  auto degradable = [](const Status& s) {
    return !s.IsCancelled() && !s.IsTimeout() && !s.IsResourceExhausted();
  };

  skyline::SkylineOptions options;
  options.counter = ctx->dominance();
  options.deadline_nanos = ctx->deadline_nanos();
  options.cancel = ctx->cancel_token();

  // [nominate]: each partition offers its k SaLSa minmax-best points; the
  // union is the broadcast filter set.
  std::vector<skyline::FilterPointSet> nominated(n);
  Status status =
      RunStage(ctx, StrCat(label(), " [nominate]"), n, [&](size_t i) -> Status {
        if (in.PartitionRows(i) == 0) return Status::OK();
        skyline::NominateFilterPoints(in.batches[i]->matrix(),
                                      in.batches[i]->indices(),
                                      points_per_partition_, &nominated[i]);
        return Status::OK();
      });
  if (!status.ok()) {
    if (!degradable(status)) return status;
    SL_LOG_WARN << "broadcast filter [nominate] degraded to pass-through: "
                << status.ToString();
    return in;
  }

  skyline::FilterPointSet filter;
  for (const auto& part : nominated) {
    if (part.num_points() == 0) continue;
    if (filter.num_dims == 0) filter.num_dims = part.num_dims;
    filter.keys.insert(filter.keys.end(), part.keys.begin(), part.keys.end());
  }
  const int64_t filter_points = static_cast<int64_t>(filter.num_points());
  if (filter_points == 0) return in;
  ctx->AddBroadcastFilterPoints(filter_points);
  static metrics::Counter* points_counter =
      metrics::MetricsRegistry::Global().GetCounter(
          "sparkline_broadcast_filter_points_total");
  points_counter->Increment(filter_points);

  // Zone veto corners: with zone maps still attached (Scan -> Filter ->
  // LocalSkyline chains preserve them), a filter point strictly dominating
  // a partition's *best corner* strictly dominates every row the partition
  // could hold — the whole partition drops without touching a row. A
  // partition can never veto itself (its own rows are >= its best corner
  // componentwise, so at best they compare kEqual), and mutual vetoes are
  // impossible for the same order-theoretic reason as mutual zone skips.
  std::vector<std::vector<double>> best(n);
  std::vector<char> corner_ok(n, 0);
  if (in.zone_maps.size() == n) {
    std::vector<double> worst;
    for (size_t i = 0; i < n; ++i) {
      if (in.PartitionRows(i) == 0) continue;
      corner_ok[i] = ZoneCorners(in.zone_maps[i], dims_, &best[i], &worst) &&
                     best[i].size() == filter.num_dims;
    }
  }

  // [filter]: every partition prunes against the union before the gather.
  std::vector<std::vector<uint32_t>> pruned(n);
  std::vector<char> veto(n, 0);
  status =
      RunStage(ctx, StrCat(label(), " [filter]"), n, [&](size_t i) -> Status {
        if (in.PartitionRows(i) == 0) return Status::OK();
        if (corner_ok[i]) {
          for (size_t p = 0; p < filter.num_points(); ++p) {
            if (skyline::CompareKeySpansComplete(filter.point(p),
                                                 best[i].data(),
                                                 filter.num_dims) ==
                skyline::Dominance::kLeftDominates) {
              veto[i] = 1;
              return Status::OK();
            }
          }
        }
        SL_ASSIGN_OR_RETURN(
            pruned[i],
            skyline::PruneAgainstFilter(in.batches[i]->matrix(),
                                        in.batches[i]->indices(), filter,
                                        options));
        return Status::OK();
      });
  if (!status.ok()) {
    if (!degradable(status)) return status;
    SL_LOG_WARN << "broadcast filter [filter] degraded to pass-through: "
                << status.ToString();
    return in;
  }

  // Apply only after both stages fully succeeded. Pruned views stay
  // subsequences of the input views, so the SFS sort flag, sort key and
  // stop bound all remain valid: a pruned bound witness is itself strictly
  // dominated by a filter point whose domination chain terminates at a
  // surviving row, so every bound-based elimination downstream keeps a
  // surviving witness by transitivity.
  PartitionedRelation out;
  out.attrs = output_;
  out.partitions.assign(n, {});
  out.batches.assign(n, std::nullopt);
  out.zone_maps = std::move(in.zone_maps);

  int64_t vetoed = 0;
  int64_t rows_pruned = 0;
  for (size_t i = 0; i < n; ++i) {
    if (in.PartitionRows(i) == 0) {
      out.partitions[i] = std::move(in.partitions[i]);
      if (in.batches[i].has_value()) out.batches[i] = std::move(in.batches[i]);
      continue;
    }
    const skyline::ColumnarBatch& b = *in.batches[i];
    if (veto[i]) {
      ++vetoed;
      rows_pruned += static_cast<int64_t>(b.num_rows());
      out.batches[i] = b.WithSelection({}, b.score_sorted(), b.sort_key(),
                                       b.stop_bound());
      if (out.zone_maps.size() == n) out.zone_maps[i] = ZoneMap();
      continue;
    }
    rows_pruned += static_cast<int64_t>(b.num_rows() - pruned[i].size());
    out.batches[i] = b.WithSelection(std::move(pruned[i]), b.score_sorted(),
                                     b.sort_key(), b.stop_bound());
  }

  if (vetoed > 0) {
    ctx->AddPartitionsSkipped(vetoed);
    static metrics::Counter* skipped_counter =
        metrics::MetricsRegistry::Global().GetCounter(
            "sparkline_partitions_skipped_total");
    skipped_counter->Increment(vetoed);
  }
  if (rows_pruned > 0) {
    ctx->AddRowsPrunedPreGather(rows_pruned);
    static metrics::Counter* pruned_counter =
        metrics::MetricsRegistry::Global().GetCounter(
            "sparkline_rows_pruned_pre_gather_total");
    pruned_counter->Increment(rows_pruned);
  }
  SL_RETURN_NOT_OK(ChargeOutput(ctx, &out));
  return out;
}

// --- GlobalSkylineExec ------------------------------------------------------

GlobalSkylineExec::GlobalSkylineExec(std::vector<skyline::BoundDimension> dims,
                                     bool distinct, PhysicalPlanPtr child,
                                     SkylineKernel kernel, bool columnar,
                                     bool columnar_exchange,
                                     bool sfs_early_stop,
                                     skyline::SfsSortKey sfs_sort_key)
    : PhysicalPlan(child->output(), {child}),
      dims_(std::move(dims)),
      distinct_(distinct),
      kernel_(kernel),
      columnar_(columnar),
      columnar_exchange_(columnar_exchange),
      sfs_early_stop_(sfs_early_stop),
      sfs_sort_key_(sfs_sort_key) {}

Result<PartitionedRelation> GlobalSkylineExec::ExecuteColumnar(
    ExecContext* ctx, skyline::ColumnarBatch batch) const {
  skyline::SkylineOptions options;
  options.distinct = distinct_;
  options.nulls = skyline::NullSemantics::kComplete;
  options.counter = ctx->merge_dominance();
  options.deadline_nanos = ctx->deadline_nanos();
  options.cancel = ctx->cancel_token();
  options.memory = ctx->memory();
  options.sfs_early_stop = sfs_early_stop_;
  options.sfs_sort_key = sfs_sort_key_;
  options.early_stop = ctx->early_stop();

  const skyline::DominanceMatrix& matrix = batch.matrix();
  const std::vector<uint32_t>& view = batch.indices();
  // Inherited SFS order: the view arrives ascending in this query's sort
  // key (local SFS stages + the exchange's k-way merge), so every SFS pass
  // here skips its sort.
  const bool sfs_inherited = kernel_ == SkylineKernel::kSortFilterSkyline &&
                             batch.score_sorted() &&
                             batch.sort_key() == sfs_sort_key_ &&
                             skyline::SfsFastPathApplicable(matrix, options);
  if (sfs_inherited && sfs_early_stop_) {
    // Inherited stop bound: the tightest per-partition minC shipped with
    // the gathered batch. Its witness row is part of the gathered input,
    // so eliminating through it is sound for the global result — the
    // partial slices and the sort-free merge can terminate before their
    // own windows tighten the bound.
    options.sfs_stop_bound = batch.stop_bound();
  }
  auto run_over =
      [&](const std::vector<uint32_t>& input) -> Result<std::vector<uint32_t>> {
    if (sfs_inherited) {
      return skyline::ColumnarSortFilterSkylinePresorted(matrix, input,
                                                         options);
    }
    return skyline::RunColumnarKernel(ToColumnarKernel(kernel_), matrix, input,
                                      options);
  };
  auto result_bound = [&](const std::vector<uint32_t>& survivors) {
    return sfs_inherited && sfs_early_stop_
               ? skyline::ComputeStopBound(matrix, survivors)
               : std::numeric_limits<double>::infinity();
  };

  PartitionedRelation out;
  out.attrs = output_;
  out.partitions.emplace_back();
  out.batches.emplace_back();

  const size_t num_executors =
      static_cast<size_t>(std::max(1, ctx->config().num_executors));
  if (num_executors <= 1 || view.size() < 2) {
    // Single executor: the classic single-task global pass, minus the
    // projection it used to pay.
    std::vector<uint32_t> survivors;
    SL_RETURN_NOT_OK(RunStage(ctx, 1, [&](size_t) -> Status {
      SL_ASSIGN_OR_RETURN(survivors, run_over(view));
      return Status::OK();
    }));
    const double bound = result_bound(survivors);
    out.batches[0] = batch.WithSelection(std::move(survivors), sfs_inherited,
                                         sfs_sort_key_, bound);
    SL_RETURN_NOT_OK(ChargeOutput(ctx, &out));
    return out;
  }

  // Parallel partial-merge over index slices of the shared matrix: no chunk
  // materializes rows, no stage re-projects.
  const size_t chunks = std::min(num_executors, view.size());
  const std::vector<size_t> bounds = ChunkBounds(view.size(), chunks);
  std::vector<std::vector<uint32_t>> partials(chunks);
  SL_RETURN_NOT_OK(RunStage(
      ctx, StrCat(label(), " [partial]"), chunks, [&](size_t i) -> Status {
        // A contiguous slice of a score-ascending view is score-ascending,
        // so the inherited order survives the chunking.
        SL_ASSIGN_OR_RETURN(
            partials[i], run_over(batch.Slice(bounds[i], bounds[i + 1]).indices()));
        return Status::OK();
      }));

  std::vector<uint32_t> survivors;
  SL_RETURN_NOT_OK(RunStage(
      ctx, StrCat(label(), " [merge]"), 1, [&](size_t) -> Status {
        if (sfs_inherited) {
          // Partial outputs are key-ascending runs: merge them and run the
          // grow-only window — the merge stage never re-sorts, and the
          // inherited stop bound lets it terminate early.
          SL_ASSIGN_OR_RETURN(
              survivors,
              skyline::ColumnarSortFilterSkylinePresorted(
                  matrix,
                  skyline::MergeByScore(matrix, partials, sfs_sort_key_),
                  options));
          return Status::OK();
        }
        std::vector<uint32_t> merge_input;
        for (const auto& p : partials) {
          merge_input.insert(merge_input.end(), p.begin(), p.end());
        }
        SL_ASSIGN_OR_RETURN(survivors, skyline::ColumnarBlockNestedLoop(
                                           matrix, merge_input, options));
        return Status::OK();
      }));
  const double bound = result_bound(survivors);
  out.batches[0] = batch.WithSelection(std::move(survivors), sfs_inherited,
                                       sfs_sort_key_, bound);
  SL_RETURN_NOT_OK(ChargeOutput(ctx, &out));
  return out;
}

Result<PartitionedRelation> GlobalSkylineExec::Execute(ExecContext* ctx) const {
  SL_ASSIGN_OR_RETURN(PartitionedRelation in, children_[0]->Execute(ctx));

  // Columnar exchange: consume the gathered batch straight off the shuffle;
  // the matrix was built upstream and is reused as-is. A batch projected
  // for different dimensions (a nested skyline's output feeding this one
  // directly) encodes the wrong columns and must decode instead.
  // `in` keeps its charge until this function returns, so the gathered
  // input stays accounted while the kernels run.
  if (columnar_ && columnar_exchange_ && in.batches.size() == 1 &&
      in.batches[0].has_value() && in.batches[0]->ProjectedFor(dims_)) {
    ctx->AddMatrixReuse(label());
    skyline::ColumnarBatch batch = std::move(*in.batches[0]);
    return ExecuteColumnar(ctx, std::move(batch));
  }

  DecodeInput(ctx, &in);
  // AllTuples distribution: everything on one executor.
  std::vector<Row> rows = std::move(in).Flatten();

  // Row input with the exchange on (non-distributed plans): project once in
  // a dedicated stage and share the matrix across partial/merge exactly as
  // if the batch had arrived from upstream.
  if (columnar_ && columnar_exchange_ && !rows.empty()) {
    auto shared_rows = std::make_shared<std::vector<Row>>(std::move(rows));
    const std::string project_label = StrCat(label(), " [project]");
    std::optional<skyline::ColumnarBatch> batch;
    SL_RETURN_NOT_OK(RunStage(ctx, project_label, 1, [&](size_t) -> Status {
      StopWatch project;
      batch = skyline::ColumnarBatch::Project(shared_rows, dims_,
                                              ctx->memory());
      if (batch.has_value()) {
        ctx->AddProjectionMs(project.ElapsedMillis());
        ctx->AddMatrixBuilds(project_label, 1);
      }
      return Status::OK();
    }));
    if (batch.has_value()) {
      return ExecuteColumnar(ctx, std::move(*batch));
    }
    rows = std::move(*shared_rows);  // shape refused: back to the row path
  }

  skyline::SkylineOptions options;
  options.distinct = distinct_;
  options.nulls = skyline::NullSemantics::kComplete;
  options.counter = ctx->merge_dominance();
  options.deadline_nanos = ctx->deadline_nanos();
  options.cancel = ctx->cancel_token();
  options.sfs_early_stop = sfs_early_stop_;
  options.sfs_sort_key = sfs_sort_key_;
  options.early_stop = ctx->early_stop();

  PartitionedRelation out;
  out.attrs = output_;
  out.partitions.emplace_back();

  const size_t num_executors =
      static_cast<size_t>(std::max(1, ctx->config().num_executors));
  if (num_executors <= 1 || rows.size() < 2) {
    // Single executor: the classic single-task global pass.
    SL_RETURN_NOT_OK(RunStage(ctx, 1, [&](size_t) -> Status {
      SL_ASSIGN_OR_RETURN(out.partitions[0],
                          RunKernelCounted(ctx, label(), kernel_, rows, dims_,
                                           options, columnar_));
      return Status::OK();
    }));
    SL_RETURN_NOT_OK(ChargeOutput(ctx, &out));
    return out;
  }

  // Parallel partial-merge global skyline: split the gathered rows into
  // executor-count chunks, compute chunk skylines concurrently, then merge
  // the partial windows in one BNL pass. Correct because complete dominance
  // is transitive: a tuple dominated in its chunk is also dominated in the
  // full input, so chunk pruning never removes a global skyline point.
  const size_t chunks = std::min(num_executors, rows.size());
  const std::vector<size_t> bounds = ChunkBounds(rows.size(), chunks);
  std::vector<std::vector<Row>> chunk_rows(chunks);
  for (size_t i = 0; i < chunks; ++i) {
    chunk_rows[i].assign(std::make_move_iterator(rows.begin() + bounds[i]),
                         std::make_move_iterator(rows.begin() + bounds[i + 1]));
  }
  rows.clear();

  std::vector<std::vector<Row>> partials(chunks);
  SL_RETURN_NOT_OK(RunStage(
      ctx, StrCat(label(), " [partial]"), chunks, [&](size_t i) -> Status {
        SL_ASSIGN_OR_RETURN(
            partials[i],
            RunKernelCounted(ctx, StrCat(label(), " [partial]"), kernel_,
                             chunk_rows[i], dims_, options, columnar_));
        return Status::OK();
      }));

  std::vector<Row> merge_input;
  for (auto& p : partials) {
    for (auto& r : p) merge_input.push_back(std::move(r));
  }
  SL_RETURN_NOT_OK(RunStage(
      ctx, StrCat(label(), " [merge]"), 1, [&](size_t) -> Status {
        SL_ASSIGN_OR_RETURN(
            out.partitions[0],
            RunKernelCounted(ctx, StrCat(label(), " [merge]"),
                             SkylineKernel::kBlockNestedLoop, merge_input,
                             dims_, options, columnar_));
        return Status::OK();
      }));
  SL_RETURN_NOT_OK(ChargeOutput(ctx, &out));
  return out;
}

// --- GlobalSkylineIncompleteExec --------------------------------------------

GlobalSkylineIncompleteExec::GlobalSkylineIncompleteExec(
    std::vector<skyline::BoundDimension> dims, bool distinct,
    PhysicalPlanPtr child, bool columnar, bool parallel, bool columnar_exchange)
    : PhysicalPlan(child->output(), {child}),
      dims_(std::move(dims)),
      distinct_(distinct),
      columnar_(columnar),
      parallel_(parallel),
      columnar_exchange_(columnar_exchange) {}

Result<PartitionedRelation> GlobalSkylineIncompleteExec::ExecuteColumnar(
    ExecContext* ctx, skyline::ColumnarBatch batch) const {
  skyline::SkylineOptions options;
  options.distinct = distinct_;
  options.nulls = skyline::NullSemantics::kIncomplete;
  options.counter = ctx->merge_dominance();
  options.deadline_nanos = ctx->deadline_nanos();
  options.cancel = ctx->cancel_token();
  options.memory = ctx->memory();

  const skyline::DominanceMatrix& matrix = batch.matrix();
  // ColumnarBatch::Concat guarantees matrix row order == gathered input
  // order and an ascending identity view — exactly the DISTINCT tie-break
  // and ascending-chunk preconditions of the round-based kernels.
  const std::vector<uint32_t>& view = batch.indices();

  PartitionedRelation out;
  out.attrs = output_;
  out.partitions.emplace_back();
  out.batches.emplace_back();

  const size_t num_executors =
      static_cast<size_t>(std::max(1, ctx->config().num_executors));
  if (!parallel_ || num_executors <= 1 || view.size() < 2) {
    // Single-task all-pairs (the paper's algorithm as written), minus the
    // projection it used to pay.
    std::vector<uint32_t> survivors;
    SL_RETURN_NOT_OK(RunStage(ctx, 1, [&](size_t) -> Status {
      SL_ASSIGN_OR_RETURN(
          survivors, skyline::ColumnarAllPairsIncomplete(matrix, view, options));
      return Status::OK();
    }));
    out.batches[0] = batch.WithSelection(std::move(survivors), false);
    SL_RETURN_NOT_OK(ChargeOutput(ctx, &out));
    return out;
  }

  // Round-based parallel all-pairs over index slices of the shared matrix
  // (see the class comment): candidates per chunk, then rotating validation
  // against full peer chunks.
  const size_t chunks = std::min(num_executors, view.size());
  const std::vector<size_t> bounds = ChunkBounds(view.size(), chunks);
  std::vector<std::vector<uint32_t>> chunk_indices(chunks);
  for (size_t i = 0; i < chunks; ++i) {
    chunk_indices[i].assign(view.begin() + bounds[i],
                            view.begin() + bounds[i + 1]);
  }

  std::vector<std::vector<uint32_t>> candidates(chunks);
  SL_RETURN_NOT_OK(RunStage(
      ctx, StrCat(label(), " [candidates]"), chunks, [&](size_t i) -> Status {
        SL_ASSIGN_OR_RETURN(candidates[i],
                            skyline::ColumnarIncompleteCandidateScan(
                                matrix, chunk_indices[i], options));
        return Status::OK();
      }));

  for (size_t round = 1; round < chunks; ++round) {
    SL_RETURN_NOT_OK(RunStage(
        ctx, StrCat(label(), " [validate]"), chunks, [&](size_t i) -> Status {
          const size_t peer = (i + round) % chunks;
          SL_ASSIGN_OR_RETURN(candidates[i],
                              skyline::ColumnarValidateAgainstChunk(
                                  matrix, candidates[i], chunk_indices[peer],
                                  options));
          return Status::OK();
        }));
  }

  SL_RETURN_NOT_OK(RunStage(
      ctx, StrCat(label(), " [finalize]"), 1, [&](size_t) -> Status {
        // Chunks are ascending contiguous spans, so concatenating candidate
        // lists in chunk order reproduces the single-task output order.
        std::vector<uint32_t> survivors;
        for (const auto& c : candidates) {
          survivors.insert(survivors.end(), c.begin(), c.end());
        }
        out.batches[0] = batch.WithSelection(std::move(survivors), false);
        return Status::OK();
      }));
  SL_RETURN_NOT_OK(ChargeOutput(ctx, &out));
  return out;
}

Result<PartitionedRelation> GlobalSkylineIncompleteExec::Execute(
    ExecContext* ctx) const {
  SL_ASSIGN_OR_RETURN(PartitionedRelation in, children_[0]->Execute(ctx));

  // Accept the shuffled batch only when it was projected for these
  // dimensions AND its view is ascending in matrix index: the validation
  // rounds' DISTINCT tie-break (t < c on matrix indices) and the finalize
  // concatenation are sound only over ascending views. The gather's Concat
  // always produces an identity view today, so the is_sorted scan is an
  // O(n) insurance premium against a future plan shape that bypasses it
  // (n² kernel work follows, so the scan is noise).
  if (columnar_ && columnar_exchange_ && in.batches.size() == 1 &&
      in.batches[0].has_value() && in.batches[0]->ProjectedFor(dims_) &&
      std::is_sorted(in.batches[0]->indices().begin(),
                     in.batches[0]->indices().end())) {
    ctx->AddMatrixReuse(label());
    skyline::ColumnarBatch batch = std::move(*in.batches[0]);
    return ExecuteColumnar(ctx, std::move(batch));
  }

  DecodeInput(ctx, &in);
  std::vector<Row> rows = std::move(in).Flatten();

  skyline::SkylineOptions options;
  options.distinct = distinct_;
  options.nulls = skyline::NullSemantics::kIncomplete;
  options.counter = ctx->merge_dominance();
  options.deadline_nanos = ctx->deadline_nanos();
  options.cancel = ctx->cancel_token();

  PartitionedRelation out;
  out.attrs = output_;
  out.partitions.emplace_back();

  const size_t num_executors =
      static_cast<size_t>(std::max(1, ctx->config().num_executors));
  if (!parallel_ || num_executors <= 1 || rows.size() < 2) {
    // Single-task all-pairs (the paper's algorithm as written).
    SL_RETURN_NOT_OK(RunStage(ctx, 1, [&](size_t) -> Status {
      if (columnar_) {
        std::atomic<int64_t> builds{0};
        skyline::SkylineOptions opts = options;
        opts.memory = ctx->memory();
        opts.matrix_builds = &builds;
        SL_ASSIGN_OR_RETURN(out.partitions[0],
                            skyline::ColumnarAllPairsSkyline(rows, dims_, opts));
        if (builds.load() > 0) ctx->AddMatrixBuilds(label(), builds.load());
      } else {
        SL_ASSIGN_OR_RETURN(
            out.partitions[0],
            skyline::AllPairsIncomplete(rows, dims_, options));
      }
      return Status::OK();
    }));
    SL_RETURN_NOT_OK(ChargeOutput(ctx, &out));
    return out;
  }

  // Round-based parallel all-pairs (see the class comment): unlike the
  // complete path's partial-merge, survivor-only merging is unsound under
  // non-transitive dominance, so candidates are validated against each
  // peer chunk's *full* tuple set, one rotating peer per round.
  const size_t chunks = std::min(num_executors, rows.size());
  // Contiguous balanced spans (sizes differ by at most one) over the
  // gathered input; contiguity keeps chunk order == global input order,
  // which the DISTINCT tie-break and the finalize concatenation rely on.
  const std::vector<size_t> bounds = ChunkBounds(rows.size(), chunks);

  // One shared matrix for all stages (the candidate scans and every
  // validation round reuse its packed keys and per-row null bitmaps); row
  // kernels take over when the shape is unsupported. The projection runs
  // inside a timed stage so its cost lands in the critical path exactly as
  // it does on the single-task path (where ColumnarAllPairsSkyline builds
  // the matrix inside the timed task).
  std::optional<skyline::DominanceMatrix> matrix;
  std::optional<ScopedReservation> matrix_reservation;
  if (columnar_) {
    const std::string candidates_label = StrCat(label(), " [candidates]");
    SL_RETURN_NOT_OK(RunStage(ctx, candidates_label, 1, [&](size_t) -> Status {
      StopWatch project;
      matrix = skyline::DominanceMatrix::TryBuild(rows, dims_);
      if (matrix.has_value()) {
        ctx->AddProjectionMs(project.ElapsedMillis());
        ctx->AddMatrixBuilds(candidates_label, 1);
      }
      return Status::OK();
    }));
    if (matrix.has_value()) {
      matrix_reservation.emplace(ctx->memory(), matrix->MemoryBytes());
    }
  }
  std::vector<std::vector<uint32_t>> chunk_indices;
  if (matrix.has_value()) {
    chunk_indices.resize(chunks);
    for (size_t i = 0; i < chunks; ++i) {
      chunk_indices[i].resize(bounds[i + 1] - bounds[i]);
      for (size_t k = 0; k < chunk_indices[i].size(); ++k) {
        chunk_indices[i][k] = static_cast<uint32_t>(bounds[i] + k);
      }
    }
  }

  std::vector<std::vector<uint32_t>> candidates(chunks);
  SL_RETURN_NOT_OK(RunStage(
      ctx, StrCat(label(), " [candidates]"), chunks, [&](size_t i) -> Status {
        if (matrix.has_value()) {
          SL_ASSIGN_OR_RETURN(candidates[i],
                              skyline::ColumnarIncompleteCandidateScan(
                                  *matrix, chunk_indices[i], options));
        } else {
          SL_ASSIGN_OR_RETURN(
              candidates[i],
              skyline::IncompleteCandidateScan(rows, bounds[i], bounds[i + 1],
                                               dims_, options));
        }
        return Status::OK();
      }));

  // chunks-1 rotation rounds; each task only shrinks its own candidate
  // list and reads peer chunks, so rounds need no cross-task coordination
  // beyond the stage barrier (which models the per-round exchange).
  for (size_t round = 1; round < chunks; ++round) {
    SL_RETURN_NOT_OK(RunStage(
        ctx, StrCat(label(), " [validate]"), chunks, [&](size_t i) -> Status {
          const size_t peer = (i + round) % chunks;
          if (matrix.has_value()) {
            SL_ASSIGN_OR_RETURN(candidates[i],
                                skyline::ColumnarValidateAgainstChunk(
                                    *matrix, candidates[i],
                                    chunk_indices[peer], options));
          } else {
            SL_ASSIGN_OR_RETURN(
                candidates[i],
                skyline::ValidateAgainstChunk(rows, candidates[i],
                                              bounds[peer], bounds[peer + 1],
                                              dims_, options));
          }
          return Status::OK();
        }));
  }

  SL_RETURN_NOT_OK(RunStage(
      ctx, StrCat(label(), " [finalize]"), 1, [&](size_t) -> Status {
        // Chunks are ascending contiguous spans, so concatenating candidate
        // lists in chunk order reproduces the single-task output order.
        // Candidate indices are unique and `rows` is dead after this stage,
        // so survivors are moved out rather than copied.
        for (const auto& survivors : candidates) {
          for (const uint32_t c : survivors) {
            out.partitions[0].push_back(std::move(rows[c]));
          }
        }
        return Status::OK();
      }));
  SL_RETURN_NOT_OK(ChargeOutput(ctx, &out));
  return out;
}

}  // namespace sparkline
