// The skyline physical operators (paper sections 5.5 - 5.7).
//
// Algorithm selection happens in the physical planner (Listing 8); these
// operators only run the algorithm library over partitions:
//
//   distributed complete:   LocalSkylineExec (child partitioning kept)
//                           -> Exchange[AllTuples] -> GlobalSkylineExec
//   non-distributed:        Exchange[AllTuples] -> GlobalSkylineExec
//   distributed incomplete: Exchange[NullBitmapHash] -> LocalSkylineExec
//                           -> Exchange[AllTuples]
//                           -> GlobalSkylineIncompleteExec
//
// Dominance tests run through the columnar fast path by default: each
// partition is projected once into a DominanceMatrix (skyline/columnar.h)
// and the index-based kernels run over it, materializing rows only for the
// survivors. Unsupported shapes (and sparkline.skyline.columnar = false)
// take the original row-oriented kernels.
#include <algorithm>
#include <iterator>

#include "common/string_util.h"
#include "exec/physical_plan.h"
#include "skyline/columnar.h"

namespace sparkline {

namespace {

skyline::ColumnarKernel ToColumnarKernel(SkylineKernel kernel) {
  switch (kernel) {
    case SkylineKernel::kSortFilterSkyline:
      return skyline::ColumnarKernel::kSortFilterSkyline;
    case SkylineKernel::kGridFilter:
      return skyline::ColumnarKernel::kGridFilter;
    case SkylineKernel::kBlockNestedLoop:
      break;
  }
  return skyline::ColumnarKernel::kBlockNestedLoop;
}

/// Runs one partition through the configured kernel. Complete semantics
/// dispatch the kernel directly; incomplete semantics compute one BNL per
/// bitmap-uniform group (the local-stage contract of paper section 5.7 —
/// the exchange routes equal bitmaps together, but distinct bitmaps may
/// share an executor, so sub-grouping here stays necessary).
Result<std::vector<Row>> RunKernel(SkylineKernel kernel,
                                   const std::vector<Row>& rows,
                                   const std::vector<skyline::BoundDimension>& dims,
                                   const skyline::SkylineOptions& options,
                                   bool columnar) {
  if (columnar) {
    // ColumnarSkyline handles both semantics and falls back to the row
    // kernels internally when the shape is unsupported.
    return skyline::ColumnarSkyline(ToColumnarKernel(kernel), rows, dims,
                                    options);
  }
  if (options.nulls == skyline::NullSemantics::kIncomplete) {
    return skyline::BitmapGroupedBnl(rows, dims, options);
  }
  if (kernel == SkylineKernel::kSortFilterSkyline) {
    return skyline::SortFilterSkyline(rows, dims, options);
  }
  if (kernel == SkylineKernel::kGridFilter) {
    return skyline::GridFilterSkyline(rows, dims, options);
  }
  return skyline::BlockNestedLoop(rows, dims, options);
}

}  // namespace

LocalSkylineExec::LocalSkylineExec(std::vector<skyline::BoundDimension> dims,
                                   bool distinct, skyline::NullSemantics nulls,
                                   PhysicalPlanPtr child, SkylineKernel kernel,
                                   bool columnar)
    : PhysicalPlan(child->output(), {child}),
      dims_(std::move(dims)),
      distinct_(distinct),
      nulls_(nulls),
      kernel_(kernel),
      columnar_(columnar) {}

std::string LocalSkylineExec::label() const {
  return StrCat("LocalSkyline [",
                nulls_ == skyline::NullSemantics::kComplete ? "complete"
                                                            : "incomplete",
                ", ", dims_.size(), " dims",
                kernel_ == SkylineKernel::kSortFilterSkyline
                    ? ", sfs"
                    : (kernel_ == SkylineKernel::kGridFilter ? ", grid" : ""),
                "]");
}

Result<PartitionedRelation> LocalSkylineExec::Execute(ExecContext* ctx) const {
  SL_ASSIGN_OR_RETURN(PartitionedRelation in, children_[0]->Execute(ctx));
  skyline::SkylineOptions options;
  options.distinct = distinct_;
  options.nulls = nulls_;
  options.counter = ctx->dominance();
  options.deadline_nanos = ctx->deadline_nanos();

  PartitionedRelation out;
  out.attrs = output_;
  out.partitions.assign(in.partitions.size(), {});
  SL_RETURN_NOT_OK(RunStage(ctx, in.partitions.size(), [&](size_t i) -> Status {
    SL_ASSIGN_OR_RETURN(
        out.partitions[i],
        RunKernel(kernel_, in.partitions[i], dims_, options, columnar_));
    return Status::OK();
  }));
  AccountMemory(ctx, in, out);
  return out;
}

GlobalSkylineExec::GlobalSkylineExec(std::vector<skyline::BoundDimension> dims,
                                     bool distinct, PhysicalPlanPtr child,
                                     SkylineKernel kernel, bool columnar)
    : PhysicalPlan(child->output(), {child}),
      dims_(std::move(dims)),
      distinct_(distinct),
      kernel_(kernel),
      columnar_(columnar) {}

Result<PartitionedRelation> GlobalSkylineExec::Execute(ExecContext* ctx) const {
  SL_ASSIGN_OR_RETURN(PartitionedRelation in, children_[0]->Execute(ctx));
  // AllTuples distribution: everything on one executor.
  std::vector<Row> rows = std::move(in).Flatten();
  const int64_t input_bytes =
      rows.empty() ? 0
                   : EstimateRowBytes(rows.front()) *
                         static_cast<int64_t>(rows.size());
  ctx->memory()->Grow(input_bytes);

  skyline::SkylineOptions options;
  options.distinct = distinct_;
  options.nulls = skyline::NullSemantics::kComplete;
  options.counter = ctx->dominance();
  options.deadline_nanos = ctx->deadline_nanos();

  PartitionedRelation out;
  out.attrs = output_;
  out.partitions.emplace_back();

  const size_t num_executors =
      static_cast<size_t>(std::max(1, ctx->config().num_executors));
  if (num_executors <= 1 || rows.size() < 2) {
    // Single executor: the classic single-task global pass.
    SL_RETURN_NOT_OK(RunStage(ctx, 1, [&](size_t) -> Status {
      SL_ASSIGN_OR_RETURN(out.partitions[0],
                          RunKernel(kernel_, rows, dims_, options, columnar_));
      return Status::OK();
    }));
    ctx->memory()->Shrink(input_bytes);
    return out;
  }

  // Parallel partial-merge global skyline: split the gathered rows into
  // executor-count chunks, compute chunk skylines concurrently, then merge
  // the partial windows in one BNL pass. Correct because complete dominance
  // is transitive: a tuple dominated in its chunk is also dominated in the
  // full input, so chunk pruning never removes a global skyline point.
  const size_t chunks = std::min(num_executors, rows.size());
  // Balanced split: sizes differ by at most one, so no executor idles and
  // the partial stage's critical path is as short as the split allows.
  const size_t base = rows.size() / chunks;
  const size_t extra = rows.size() % chunks;
  std::vector<std::vector<Row>> chunk_rows(chunks);
  size_t begin = 0;
  for (size_t i = 0; i < chunks; ++i) {
    const size_t end = begin + base + (i < extra ? 1 : 0);
    chunk_rows[i].assign(std::make_move_iterator(rows.begin() + begin),
                         std::make_move_iterator(rows.begin() + end));
    begin = end;
  }
  rows.clear();

  std::vector<std::vector<Row>> partials(chunks);
  SL_RETURN_NOT_OK(RunStage(
      ctx, StrCat(label(), " [partial]"), chunks, [&](size_t i) -> Status {
        SL_ASSIGN_OR_RETURN(
            partials[i],
            RunKernel(kernel_, chunk_rows[i], dims_, options, columnar_));
        return Status::OK();
      }));

  std::vector<Row> merge_input;
  for (auto& p : partials) {
    for (auto& r : p) merge_input.push_back(std::move(r));
  }
  SL_RETURN_NOT_OK(RunStage(
      ctx, StrCat(label(), " [merge]"), 1, [&](size_t) -> Status {
        SL_ASSIGN_OR_RETURN(out.partitions[0],
                            RunKernel(SkylineKernel::kBlockNestedLoop,
                                      merge_input, dims_, options, columnar_));
        return Status::OK();
      }));
  ctx->memory()->Shrink(input_bytes);
  return out;
}

GlobalSkylineIncompleteExec::GlobalSkylineIncompleteExec(
    std::vector<skyline::BoundDimension> dims, bool distinct,
    PhysicalPlanPtr child, bool columnar, bool parallel)
    : PhysicalPlan(child->output(), {child}),
      dims_(std::move(dims)),
      distinct_(distinct),
      columnar_(columnar),
      parallel_(parallel) {}

Result<PartitionedRelation> GlobalSkylineIncompleteExec::Execute(
    ExecContext* ctx) const {
  SL_ASSIGN_OR_RETURN(PartitionedRelation in, children_[0]->Execute(ctx));
  std::vector<Row> rows = std::move(in).Flatten();
  const int64_t input_bytes =
      rows.empty() ? 0
                   : EstimateRowBytes(rows.front()) *
                         static_cast<int64_t>(rows.size());
  ctx->memory()->Grow(input_bytes);

  skyline::SkylineOptions options;
  options.distinct = distinct_;
  options.nulls = skyline::NullSemantics::kIncomplete;
  options.counter = ctx->dominance();
  options.deadline_nanos = ctx->deadline_nanos();

  PartitionedRelation out;
  out.attrs = output_;
  out.partitions.emplace_back();

  const size_t num_executors =
      static_cast<size_t>(std::max(1, ctx->config().num_executors));
  if (!parallel_ || num_executors <= 1 || rows.size() < 2) {
    // Single-task all-pairs (the paper's algorithm as written).
    SL_RETURN_NOT_OK(RunStage(ctx, 1, [&](size_t) -> Status {
      if (columnar_) {
        SL_ASSIGN_OR_RETURN(
            out.partitions[0],
            skyline::ColumnarAllPairsSkyline(rows, dims_, options));
      } else {
        SL_ASSIGN_OR_RETURN(
            out.partitions[0],
            skyline::AllPairsIncomplete(rows, dims_, options));
      }
      return Status::OK();
    }));
    ctx->memory()->Shrink(input_bytes);
    return out;
  }

  // Round-based parallel all-pairs (see the class comment): unlike the
  // complete path's partial-merge, survivor-only merging is unsound under
  // non-transitive dominance, so candidates are validated against each
  // peer chunk's *full* tuple set, one rotating peer per round.
  const size_t chunks = std::min(num_executors, rows.size());
  // Contiguous balanced spans (sizes differ by at most one) over the
  // gathered input; contiguity keeps chunk order == global input order,
  // which the DISTINCT tie-break and the finalize concatenation rely on.
  std::vector<size_t> bounds(chunks + 1, 0);
  const size_t base = rows.size() / chunks;
  const size_t extra = rows.size() % chunks;
  for (size_t i = 0; i < chunks; ++i) {
    bounds[i + 1] = bounds[i] + base + (i < extra ? 1 : 0);
  }

  // One shared matrix for all stages (the candidate scans and every
  // validation round reuse its packed keys and per-row null bitmaps); row
  // kernels take over when the shape is unsupported. The projection runs
  // inside a timed stage so its cost lands in the critical path exactly as
  // it does on the single-task path (where ColumnarAllPairsSkyline builds
  // the matrix inside the timed task).
  std::optional<skyline::DominanceMatrix> matrix;
  if (columnar_) {
    SL_RETURN_NOT_OK(RunStage(
        ctx, StrCat(label(), " [candidates]"), 1, [&](size_t) -> Status {
          matrix = skyline::DominanceMatrix::TryBuild(rows, dims_);
          return Status::OK();
        }));
  }
  std::vector<std::vector<uint32_t>> chunk_indices;
  if (matrix.has_value()) {
    chunk_indices.resize(chunks);
    for (size_t i = 0; i < chunks; ++i) {
      chunk_indices[i].resize(bounds[i + 1] - bounds[i]);
      for (size_t k = 0; k < chunk_indices[i].size(); ++k) {
        chunk_indices[i][k] = static_cast<uint32_t>(bounds[i] + k);
      }
    }
  }

  std::vector<std::vector<uint32_t>> candidates(chunks);
  SL_RETURN_NOT_OK(RunStage(
      ctx, StrCat(label(), " [candidates]"), chunks, [&](size_t i) -> Status {
        if (matrix.has_value()) {
          SL_ASSIGN_OR_RETURN(candidates[i],
                              skyline::ColumnarIncompleteCandidateScan(
                                  *matrix, chunk_indices[i], options));
        } else {
          SL_ASSIGN_OR_RETURN(
              candidates[i],
              skyline::IncompleteCandidateScan(rows, bounds[i], bounds[i + 1],
                                               dims_, options));
        }
        return Status::OK();
      }));

  // chunks-1 rotation rounds; each task only shrinks its own candidate
  // list and reads peer chunks, so rounds need no cross-task coordination
  // beyond the stage barrier (which models the per-round exchange).
  for (size_t round = 1; round < chunks; ++round) {
    SL_RETURN_NOT_OK(RunStage(
        ctx, StrCat(label(), " [validate]"), chunks, [&](size_t i) -> Status {
          const size_t peer = (i + round) % chunks;
          if (matrix.has_value()) {
            SL_ASSIGN_OR_RETURN(candidates[i],
                                skyline::ColumnarValidateAgainstChunk(
                                    *matrix, candidates[i],
                                    chunk_indices[peer], options));
          } else {
            SL_ASSIGN_OR_RETURN(
                candidates[i],
                skyline::ValidateAgainstChunk(rows, candidates[i],
                                              bounds[peer], bounds[peer + 1],
                                              dims_, options));
          }
          return Status::OK();
        }));
  }

  SL_RETURN_NOT_OK(RunStage(
      ctx, StrCat(label(), " [finalize]"), 1, [&](size_t) -> Status {
        // Chunks are ascending contiguous spans, so concatenating candidate
        // lists in chunk order reproduces the single-task output order.
        // Candidate indices are unique and `rows` is dead after this stage,
        // so survivors are moved out rather than copied.
        for (const auto& survivors : candidates) {
          for (const uint32_t c : survivors) {
            out.partitions[0].push_back(std::move(rows[c]));
          }
        }
        return Status::OK();
      }));
  ctx->memory()->Shrink(input_bytes);
  return out;
}

}  // namespace sparkline
