// Execution context: the simulated cluster.
//
// Spark in the paper runs on an 18-datanode YARN cluster with a configurable
// number of executors. Here each executor is a worker slot of a thread pool;
// stage tasks (one per partition) are timed with the per-thread CPU clock and
// combined into a critical-path "simulated cluster time":
//
//   simulated_ms = sum over stages of (max over partition tasks of CPU time)
//
// which reproduces the executor-scaling behaviour the paper studies (local
// skyline work shrinks with more executors; the single-task global stage
// becomes the bottleneck) independently of how many physical cores this host
// has. Wall-clock time is reported alongside.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>

#include "common/cancellation.h"
#include "common/memory_tracker.h"
#include "common/result.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/thread_safety.h"
#include "common/timer.h"
#include "exec/trace.h"
#include "skyline/dominance.h"

namespace sparkline {

/// \brief Shape of the simulated cluster.
struct ClusterConfig {
  /// Number of executors == default number of partitions (paper: 1..10).
  int num_executors = 4;
  /// Simulated resident bytes per executor (each executor "loads its entire
  /// execution environment", paper section 6.5). Added to the tracked peak.
  int64_t executor_overhead_bytes = 64ll << 20;
  /// Query timeout in milliseconds (0 = none); the paper uses 3600 s.
  int64_t timeout_ms = 0;
  /// Re-execution budget per stage task for transient (IsRetryable) faults —
  /// the analogue of spark.task.maxFailures. 2 retries = 3 attempts total.
  int task_retries = 2;
  /// Backoff between retry attempts of one task, in milliseconds. Doubled
  /// per attempt (1 ms, 2 ms, 4 ms, ...); kept tiny because the simulated
  /// cluster's transient faults clear instantly.
  int64_t retry_backoff_ms = 1;
  /// Hard per-query budget for tracked (materialized) bytes, 0 = unlimited.
  /// Relation-output charges that would exceed it fail the query mid-stage
  /// with a clean Status::ResourceExhausted; the executor overhead bytes are
  /// a reporting add-on and do not count against this budget.
  int64_t memory_limit_bytes = 0;
  /// Record a per-query TraceSpan tree (one span per stage, child spans per
  /// partition task), exported via QueryResult::TraceJson(). Span recording
  /// is stage/task-grained, never per-row (sparkline.trace.enabled).
  bool trace_enabled = true;
};

/// \brief Everything measured while running one query.
struct QueryMetrics {
  double wall_ms = 0;
  double simulated_ms = 0;
  int64_t peak_memory_bytes = 0;
  int64_t dominance_tests = 0;
  int64_t rows_shuffled = 0;

  // --- exchange / two-phase pruning counters --------------------------------
  /// Rows that actually crossed an ExchangeExec stage boundary (batch rows
  /// count their view, not their backing). rows_shuffled is the historical
  /// superset counter; this one exists so the pre-gather pruning phases show
  /// up as fewer rows shipped.
  int64_t exchange_rows_shipped = 0;
  /// Estimated bytes those rows occupied on the wire (row estimate, plus
  /// packed matrix keys for batch partitions).
  int64_t exchange_bytes = 0;
  /// Filter points nominated and broadcast by BroadcastFilterExec
  /// (sparkline.skyline.broadcast_filter); 0 when the phase is off or
  /// ineligible.
  int64_t broadcast_filter_points = 0;
  /// Whole partitions dropped by a zone-map corner test — either
  /// LocalSkylineExec's pairwise best/worst-corner skip or
  /// BroadcastFilterExec's filter-point veto (sparkline.scan.zone_maps).
  int64_t partitions_skipped = 0;
  /// Local-skyline rows removed by the broadcast filter before the gather —
  /// rows that would otherwise have shipped and lost at the merge.
  int64_t rows_pruned_pre_gather = 0;
  /// The post-gather share of dominance_tests: tests performed by the
  /// GlobalSkyline* merge stages. Pre-gather pruning exists to shrink this
  /// (fewer shipped rows, fewer merge comparisons); the local stages'
  /// share is dominance_tests - merge_dominance_tests.
  int64_t merge_dominance_tests = 0;

  // --- fault-tolerance counters ---------------------------------------------
  /// Stage-task attempts that failed with a transient (retryable) fault and
  /// were re-executed. A task that fails twice and then succeeds adds 2.
  int64_t tasks_retried = 0;
  /// Stage-task attempts that failed terminally (non-retryable error, or a
  /// retryable one with the retry budget exhausted) and failed the query.
  int64_t tasks_failed = 0;

  // --- result-cache counters (serve layer) ---------------------------------
  /// True when the rows were served from the fingerprinted result cache
  /// instead of being executed; the lookup also appears as a "[cache-hit]"
  /// stage in operator_ms.
  bool cache_hit = false;
  /// Time spent fingerprinting the plan + probing the cache (hit or miss);
  /// 0 when the cache is disabled or the plan is uncacheable.
  double cache_lookup_ms = 0;
  /// On a cache hit: how many write deltas the served entry has absorbed
  /// since it was first computed (serve/incremental.h). A nonzero value is
  /// the proof a hit survived InsertInto traffic without a recompute;
  /// always 0 on misses and with sparkline.cache.incremental off.
  int64_t cache_delta_maintained = 0;
  /// Rows returned to the caller (executed or cached).
  int64_t rows_served = 0;
  /// Estimated bytes of the returned rows; computed only when the result
  /// cache is enabled (the estimate is what the cache budget charges),
  /// 0 otherwise.
  int64_t bytes_served = 0;

  // --- columnar exchange counters ------------------------------------------
  /// Milliseconds spent projecting rows into DominanceMatrix form on the
  /// columnar-exchange path (summed across parallel tasks, so it can exceed
  /// the stage's critical-path time; the per-stage critical path already
  /// includes it). 0 when the exchange is off.
  double projection_ms = 0;
  /// Milliseconds spent materializing rows from batches — mid-plan row
  /// fallbacks plus the plan-root decode.
  double decode_ms = 0;
  /// DominanceMatrix projections (TryBuild) per stage label. With the
  /// columnar exchange on, skyline plans build each partition's matrix
  /// exactly once — at the local stage (or once at the global stage for
  /// non-distributed plans) — so no "[partial]"/"[merge]"/"[candidates]"
  /// label appears here; with it off, every stage that re-projects shows up.
  std::map<std::string, int64_t> matrix_builds;
  /// Stages that consumed an already-built matrix (a batch or a view)
  /// instead of re-projecting, per stage label.
  std::map<std::string, int64_t> matrix_reuses;

  // --- SFS early-termination counters ---------------------------------------
  /// Input rows of SFS passes never scanned because a SaLSa stop point
  /// proved every remaining tuple strictly dominated
  /// (sparkline.skyline.sfs.early_stop). Summed across all passes (local
  /// partitions, global partial slices, the global merge).
  int64_t sfs_rows_skipped = 0;
  /// SFS passes that terminated at a stop point before exhausting their
  /// input.
  int64_t sfs_early_stops = 0;

  /// Critical-path milliseconds per operator label.
  std::map<std::string, double> operator_ms;
  /// Output rows per operator label (recorded when the stage's relation is
  /// charged against the memory budget; cache hits and pure pass-through
  /// stages have no entry).
  std::map<std::string, int64_t> operator_rows;

  std::string ToString() const;
};

/// \brief Mutable per-query state shared by all operators.
class ExecContext {
 public:
  explicit ExecContext(const ClusterConfig& config)
      : config_(config),
        pool_(std::make_unique<ThreadPool>(
            static_cast<size_t>(config.num_executors))) {
    if (config_.timeout_ms > 0) {
      deadline_nanos_ = StopWatch::NowNanos() + config_.timeout_ms * 1000000;
    }
    memory_.set_limit_bytes(config_.memory_limit_bytes);
    if (config_.trace_enabled) {
      trace_ = std::make_unique<Trace>();
    }
  }

  const ClusterConfig& config() const { return config_; }
  ThreadPool* pool() { return pool_.get(); }
  MemoryTracker* memory() { return &memory_; }
  skyline::DominanceCounter* dominance() { return &dominance_; }
  /// Separate counter for the post-gather GlobalSkyline* merge stages;
  /// rolls up into QueryMetrics::dominance_tests alongside `dominance()`
  /// and is also surfaced as merge_dominance_tests.
  skyline::DominanceCounter* merge_dominance() { return &merge_dominance_; }
  skyline::EarlyStopStats* early_stop() { return &early_stop_; }
  /// The per-query span recorder, or null when tracing is disabled.
  Trace* trace() { return trace_.get(); }
  /// Closes the root "query" span and hands the tree over (null when
  /// tracing is disabled or the trace was already taken).
  std::unique_ptr<TraceSpan> TakeTrace(double wall_ms) {
    if (trace_ == nullptr) return nullptr;
    return trace_->Finish(wall_ms);
  }

  /// Monotonic deadline in nanoseconds, 0 if none.
  int64_t deadline_nanos() const { return deadline_nanos_; }
  Status CheckTimeout() const {
    if (deadline_nanos_ != 0 && StopWatch::NowNanos() > deadline_nanos_) {
      return Status::Timeout("query exceeded the configured timeout");
    }
    return Status::OK();
  }

  /// The query's cancellation token (never null — a default token is created
  /// so kernels can poll unconditionally). The serving tier installs its own
  /// shared token via set_cancel_token to keep a Cancel() handle.
  const CancellationToken* cancel_token() const { return cancel_.get(); }
  const CancellationTokenPtr& shared_cancel_token() const { return cancel_; }
  void set_cancel_token(CancellationTokenPtr token) {
    if (token != nullptr) cancel_ = std::move(token);
  }

  /// The stage-boundary interrupt check: cancellation first (an explicit
  /// Cancel() beats a deadline that may have expired at the same moment),
  /// then the deadline.
  Status CheckInterrupt() const {
    if (cancel_->cancelled()) {
      return Status::Cancelled("query cancelled");
    }
    return CheckTimeout();
  }

  /// Fails with ResourceExhausted when tracked bytes exceed the configured
  /// limit. Relation-output charges enforce the limit at reservation time
  /// (MemoryTracker::TryGrow); this catches overshoot from unconditional
  /// side reservations (kernel matrix storage, join hash tables).
  Status CheckMemoryLimit() const {
    const int64_t limit = memory_.limit_bytes();
    if (limit > 0 && memory_.current_bytes() > limit) {
      return Status::ResourceExhausted(
          StrCat("query exceeded the memory limit: ", memory_.current_bytes(),
                 " bytes tracked > limit ", limit));
    }
    return Status::OK();
  }

  // --- fault-tolerance accounting (thread-safe) -----------------------------
  void AddTaskRetries(int64_t n) {
    tasks_retried_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddTaskFailure() {
    tasks_failed_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Records one stage's critical-path time under an operator label.
  void AddStageTime(const std::string& label, double ms) {
    sl::MutexLock lock(&mu_);
    simulated_ms_ += ms;
    operator_ms_[label] += ms;
  }
  void AddRowsShuffled(int64_t rows) {
    sl::MutexLock lock(&mu_);
    rows_shuffled_ += rows;
  }
  void AddExchangeShipped(int64_t rows, int64_t bytes) {
    sl::MutexLock lock(&mu_);
    exchange_rows_shipped_ += rows;
    exchange_bytes_ += bytes;
  }
  void AddBroadcastFilterPoints(int64_t n) {
    sl::MutexLock lock(&mu_);
    broadcast_filter_points_ += n;
  }
  void AddPartitionsSkipped(int64_t n) {
    sl::MutexLock lock(&mu_);
    partitions_skipped_ += n;
  }
  void AddRowsPrunedPreGather(int64_t n) {
    sl::MutexLock lock(&mu_);
    rows_pruned_pre_gather_ += n;
  }
  /// Records a stage's output row count under its operator label.
  void AddStageRows(const std::string& label, int64_t rows) {
    sl::MutexLock lock(&mu_);
    operator_rows_[label] += rows;
  }

  // --- columnar exchange accounting (thread-safe; stage tasks call these
  // concurrently) -----------------------------------------------------------
  void AddProjectionMs(double ms) {
    sl::MutexLock lock(&mu_);
    projection_ms_ += ms;
  }
  void AddDecodeMs(double ms) {
    sl::MutexLock lock(&mu_);
    decode_ms_ += ms;
  }
  void AddMatrixBuilds(const std::string& stage_label, int64_t n) {
    sl::MutexLock lock(&mu_);
    matrix_builds_[stage_label] += n;
  }
  void AddMatrixReuse(const std::string& stage_label) {
    sl::MutexLock lock(&mu_);
    matrix_reuses_[stage_label] += 1;
  }

  /// Finalizes the metrics (called once by the session). Takes the
  /// accumulator mutex: the serving tier calls Finish on the submitting
  /// thread while stage tasks may still be draining (a cancelled or
  /// timed-out query's pool tasks finish asynchronously), so the unlocked
  /// reads this method used to do raced AddStageTime and friends — the
  /// first genuine bug the thread-safety analysis surfaced
  /// (tests/exec_context_test.cc pins the fix).
  QueryMetrics Finish(double wall_ms) const SL_EXCLUDES(mu_) {
    sl::MutexLock lock(&mu_);
    QueryMetrics m;
    m.wall_ms = wall_ms;
    m.simulated_ms = simulated_ms_;
    m.peak_memory_bytes =
        memory_.peak_bytes() +
        static_cast<int64_t>(config_.num_executors) *
            config_.executor_overhead_bytes;
    m.dominance_tests =
        dominance_.tests.load() + merge_dominance_.tests.load();
    m.merge_dominance_tests = merge_dominance_.tests.load();
    m.rows_shuffled = rows_shuffled_;
    m.exchange_rows_shipped = exchange_rows_shipped_;
    m.exchange_bytes = exchange_bytes_;
    m.broadcast_filter_points = broadcast_filter_points_;
    m.partitions_skipped = partitions_skipped_;
    m.rows_pruned_pre_gather = rows_pruned_pre_gather_;
    m.tasks_retried = tasks_retried_.load();
    m.tasks_failed = tasks_failed_.load();
    m.sfs_rows_skipped = early_stop_.rows_skipped.load();
    m.sfs_early_stops = early_stop_.stops.load();
    m.projection_ms = projection_ms_;
    m.decode_ms = decode_ms_;
    m.matrix_builds = matrix_builds_;
    m.matrix_reuses = matrix_reuses_;
    m.operator_ms = operator_ms_;
    m.operator_rows = operator_rows_;
    return m;
  }

 private:
  ClusterConfig config_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<Trace> trace_;
  MemoryTracker memory_;
  skyline::DominanceCounter dominance_;
  skyline::DominanceCounter merge_dominance_;
  skyline::EarlyStopStats early_stop_;
  int64_t deadline_nanos_ = 0;
  CancellationTokenPtr cancel_ = std::make_shared<CancellationToken>();
  std::atomic<int64_t> tasks_retried_{0};
  std::atomic<int64_t> tasks_failed_{0};

  mutable sl::Mutex mu_;
  double simulated_ms_ SL_GUARDED_BY(mu_) = 0;
  std::map<std::string, double> operator_ms_ SL_GUARDED_BY(mu_);
  std::map<std::string, int64_t> operator_rows_ SL_GUARDED_BY(mu_);
  int64_t rows_shuffled_ SL_GUARDED_BY(mu_) = 0;
  int64_t exchange_rows_shipped_ SL_GUARDED_BY(mu_) = 0;
  int64_t exchange_bytes_ SL_GUARDED_BY(mu_) = 0;
  int64_t broadcast_filter_points_ SL_GUARDED_BY(mu_) = 0;
  int64_t partitions_skipped_ SL_GUARDED_BY(mu_) = 0;
  int64_t rows_pruned_pre_gather_ SL_GUARDED_BY(mu_) = 0;
  double projection_ms_ SL_GUARDED_BY(mu_) = 0;
  double decode_ms_ SL_GUARDED_BY(mu_) = 0;
  std::map<std::string, int64_t> matrix_builds_ SL_GUARDED_BY(mu_);
  std::map<std::string, int64_t> matrix_reuses_ SL_GUARDED_BY(mu_);
};

}  // namespace sparkline
