// Hash aggregation with Spark-style partial/final phases.
//
// Partial aggregation runs per partition (narrow); a gather exchange brings
// the partial states to one executor where the final phase merges them.
// DISTINCT aggregates cannot ship their state as plain columns and force the
// single-phase (kComplete) mode after a gather.
#include <set>
#include <unordered_map>

#include "common/string_util.h"
#include "exec/physical_plan.h"
#include "expr/evaluator.h"

namespace sparkline {

namespace {

/// Per-group per-aggregate accumulator.
struct AccState {
  int64_t count = 0;       // rows (count*) or non-null inputs (count/avg)
  bool has_value = false;  // any non-null input seen
  double sum_d = 0;
  int64_t sum_i = 0;
  Value extreme;                   // min/max
  std::set<std::string> distinct;  // only for DISTINCT aggregates
};

std::string DistinctKey(const Value& v) {
  return StrCat(static_cast<int>(v.type().id()), ":", v.ToString());
}

void UpdateState(const AggSpec& spec, const Value& v, AccState* state) {
  if (spec.fn == AggFn::kCountStar) {
    ++state->count;
    return;
  }
  if (v.is_null()) return;
  if (spec.distinct && !state->distinct.insert(DistinctKey(v)).second) {
    return;
  }
  switch (spec.fn) {
    case AggFn::kCount:
      ++state->count;
      break;
    case AggFn::kSum:
    case AggFn::kAvg:
      state->has_value = true;
      ++state->count;
      if (v.type() == DataType::Int64()) {
        state->sum_i += v.int64_value();
      }
      state->sum_d += v.ToDouble();
      break;
    case AggFn::kMin:
    case AggFn::kMax: {
      if (!state->has_value) {
        state->extreme = v;
        state->has_value = true;
        break;
      }
      const int cmp = CompareValues(v, state->extreme);
      if ((spec.fn == AggFn::kMin && cmp < 0) ||
          (spec.fn == AggFn::kMax && cmp > 0)) {
        state->extreme = v;
      }
      break;
    }
    default:
      break;
  }
}

/// Number of state columns a spec ships between partial and final.
size_t StateWidth(const AggSpec& spec) {
  return spec.fn == AggFn::kAvg ? 2 : 1;
}

/// Emits the partial state columns.
void EmitPartial(const AggSpec& spec, const AccState& state, Row* out) {
  switch (spec.fn) {
    case AggFn::kCountStar:
    case AggFn::kCount:
      out->push_back(Value::Int64(state.count));
      break;
    case AggFn::kSum:
      if (!state.has_value) {
        out->push_back(Value::Null(spec.result_type));
      } else if (spec.result_type == DataType::Int64()) {
        out->push_back(Value::Int64(state.sum_i));
      } else {
        out->push_back(Value::Double(state.sum_d));
      }
      break;
    case AggFn::kMin:
    case AggFn::kMax:
      out->push_back(state.has_value ? state.extreme
                                     : Value::Null(spec.result_type));
      break;
    case AggFn::kAvg:
      out->push_back(state.has_value ? Value::Double(state.sum_d)
                                     : Value::Null(DataType::Double()));
      out->push_back(Value::Int64(state.count));
      break;
  }
}

/// Merges one partial state (columns at `offset`) into the accumulator.
void MergePartial(const AggSpec& spec, const Row& row, size_t offset,
                  AccState* state) {
  switch (spec.fn) {
    case AggFn::kCountStar:
    case AggFn::kCount:
      state->count += row[offset].int64_value();
      break;
    case AggFn::kSum: {
      const Value& v = row[offset];
      if (v.is_null()) break;
      state->has_value = true;
      if (v.type() == DataType::Int64()) state->sum_i += v.int64_value();
      state->sum_d += v.ToDouble();
      break;
    }
    case AggFn::kMin:
    case AggFn::kMax: {
      const Value& v = row[offset];
      if (v.is_null()) break;
      if (!state->has_value) {
        state->extreme = v;
        state->has_value = true;
        break;
      }
      const int cmp = CompareValues(v, state->extreme);
      if ((spec.fn == AggFn::kMin && cmp < 0) ||
          (spec.fn == AggFn::kMax && cmp > 0)) {
        state->extreme = v;
      }
      break;
    }
    case AggFn::kAvg: {
      const Value& sum = row[offset];
      if (!sum.is_null()) {
        state->has_value = true;
        state->sum_d += sum.double_value();
      }
      state->count += row[offset + 1].int64_value();
      break;
    }
  }
}

/// Emits the final aggregate value.
void EmitFinal(const AggSpec& spec, const AccState& state, Row* out) {
  switch (spec.fn) {
    case AggFn::kCountStar:
    case AggFn::kCount:
      out->push_back(Value::Int64(state.count));
      break;
    case AggFn::kSum:
      if (!state.has_value) {
        out->push_back(Value::Null(spec.result_type));
      } else if (spec.result_type == DataType::Int64()) {
        out->push_back(Value::Int64(state.sum_i));
      } else {
        out->push_back(Value::Double(state.sum_d));
      }
      break;
    case AggFn::kMin:
    case AggFn::kMax:
      out->push_back(state.has_value ? state.extreme
                                     : Value::Null(spec.result_type));
      break;
    case AggFn::kAvg:
      if (state.count == 0) {
        out->push_back(Value::Null(DataType::Double()));
      } else {
        out->push_back(
            Value::Double(state.sum_d / static_cast<double>(state.count)));
      }
      break;
  }
}

using GroupMap = std::unordered_map<Row, std::vector<AccState>, RowHash, RowEq>;

}  // namespace

HashAggregateExec::HashAggregateExec(std::vector<ExprPtr> bound_groups,
                                     std::vector<AggSpec> aggs, AggMode mode,
                                     std::vector<Attribute> output,
                                     PhysicalPlanPtr child)
    : PhysicalPlan(std::move(output), {std::move(child)}),
      groups_(std::move(bound_groups)),
      aggs_(std::move(aggs)),
      mode_(mode) {}

std::string HashAggregateExec::label() const {
  const char* mode = mode_ == AggMode::kPartial
                         ? "partial"
                         : (mode_ == AggMode::kFinal ? "final" : "complete");
  return StrCat("HashAggregate [", mode, ", ", groups_.size(), " keys, ",
                aggs_.size(), " aggs]");
}

Result<PartitionedRelation> HashAggregateExec::Execute(ExecContext* ctx) const {
  SL_ASSIGN_OR_RETURN(PartitionedRelation in, children_[0]->Execute(ctx));
  DecodeInput(ctx, &in);

  const bool merge_mode = mode_ == AggMode::kFinal;
  const size_t num_partitions = in.partitions.size();
  std::vector<GroupMap> maps(num_partitions);

  SL_RETURN_NOT_OK(RunStage(ctx, num_partitions, [&](size_t p) -> Status {
    GroupMap& map = maps[p];
    for (const Row& row : in.partitions[p]) {
      Row key;
      key.reserve(groups_.size());
      for (const auto& g : groups_) {
        SL_ASSIGN_OR_RETURN(Value v, EvalExpr(*g, row));
        key.push_back(std::move(v));
      }
      auto [it, inserted] = map.try_emplace(std::move(key));
      if (inserted) it->second.resize(aggs_.size());
      if (merge_mode) {
        size_t offset = groups_.size();
        for (size_t a = 0; a < aggs_.size(); ++a) {
          MergePartial(aggs_[a], row, offset, &it->second[a]);
          offset += StateWidth(aggs_[a]);
        }
      } else {
        for (size_t a = 0; a < aggs_.size(); ++a) {
          Value v;
          if (aggs_[a].bound_arg != nullptr) {
            SL_ASSIGN_OR_RETURN(v, EvalExpr(*aggs_[a].bound_arg, row));
          }
          UpdateState(aggs_[a], v, &it->second[a]);
        }
      }
    }
    // Global aggregation produces one row even on empty input.
    if (groups_.empty() && map.empty() &&
        (mode_ != AggMode::kPartial || num_partitions == 1) && p == 0) {
      map.try_emplace(Row{}).first->second.resize(aggs_.size());
    }
    return Status::OK();
  }));

  PartitionedRelation out;
  out.attrs = output_;
  out.partitions.assign(num_partitions, {});
  for (size_t p = 0; p < num_partitions; ++p) {
    auto& part = out.partitions[p];
    part.reserve(maps[p].size());
    for (auto& [key, states] : maps[p]) {
      Row row = key;
      for (size_t a = 0; a < aggs_.size(); ++a) {
        if (mode_ == AggMode::kPartial) {
          EmitPartial(aggs_[a], states[a], &row);
        } else {
          EmitFinal(aggs_[a], states[a], &row);
        }
      }
      part.push_back(std::move(row));
    }
  }
  if (mode_ != AggMode::kPartial && num_partitions > 1) {
    // Final/complete phases run on gathered input; defensively flatten.
    std::vector<Row> all = std::move(out).Flatten();
    out.attrs = output_;
    out.partitions.clear();
    out.partitions.push_back(std::move(all));
  }
  SL_RETURN_NOT_OK(ChargeOutput(ctx, &out));
  return out;
}

}  // namespace sparkline
