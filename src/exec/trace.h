// Per-query trace spans: a wall-clock span tree recorded while a query
// executes, mirroring the paper's per-stage evaluation lens (Figs. 3-10
// report exactly the per-stage breakdown these spans capture).
//
// Shape: one root "query" span; one child span per physical stage (the
// stage label RunStage records critical-path time under); one grandchild
// span per partition task. Attributes carry the non-timing facts — rows
// produced, per-task CPU ms, retries, failpoint-induced faults — and the
// root collects query-level totals (dominance tests, memory peak).
//
// Recording is gated by ClusterConfig::trace_enabled
// (sparkline.trace.enabled); a disabled trace costs one null check per
// stage. Span construction takes the trace mutex — stage tasks start/end
// spans concurrently — but only at stage/task granularity, never per row.
//
// Export: QueryResult::TraceJson() renders the tree as Chrome trace-event
// JSON ("complete" events), loadable in chrome://tracing or Perfetto.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_safety.h"

namespace sparkline {

/// \brief One node of the trace tree. Mutated only through Trace while the
/// query runs; immutable once the trace is finalized into the QueryResult.
struct TraceSpan {
  std::string name;
  std::string kind;  ///< "query" | "stage" | "task"
  double start_ms = 0;  ///< wall clock, relative to the trace origin
  double dur_ms = 0;
  int64_t tid = 0;  ///< partition index for task spans, 0 otherwise
  std::vector<std::pair<std::string, std::string>> attrs;
  std::vector<std::unique_ptr<TraceSpan>> children;

  /// Child spans of `kind`, in creation order (test/inspection helper).
  std::vector<const TraceSpan*> ChildrenOfKind(const std::string& kind) const;
};

/// \brief The per-query recorder. Owned by ExecContext; thread-safe.
class Trace {
 public:
  Trace();

  /// Milliseconds since the trace origin (the query's execution start).
  double NowMs() const;

  /// The root span. Takes the trace mutex: root_ is released by Finish(),
  /// and stage tasks may be annotating concurrently — an unlocked read here
  /// was the kind of unguarded access the thread-safety analysis rejects.
  TraceSpan* root() SL_EXCLUDES(mu_) {
    sl::MutexLock lock(&mu_);
    return root_.get();
  }

  /// Starts a child span of `parent` (the root if null) at the current
  /// time. The returned pointer stays valid for the trace's lifetime.
  TraceSpan* StartSpan(TraceSpan* parent, std::string name, std::string kind,
                       int64_t tid = 0);
  /// Closes `span` at the current time.
  void EndSpan(TraceSpan* span);
  /// Attaches a key/value attribute to `span` (the root if null).
  void Annotate(TraceSpan* span, std::string key, std::string value);

  /// Annotates the most recently started stage span named `stage` — the
  /// hook operators use after their stage completed (e.g. output rows,
  /// known only once the operator assembled its relation).
  void AnnotateStage(const std::string& stage, std::string key,
                     std::string value);

  /// Closes the root at `wall_ms` and releases the tree.
  std::unique_ptr<TraceSpan> Finish(double wall_ms);

 private:
  int64_t origin_nanos_;
  sl::Mutex mu_;
  std::unique_ptr<TraceSpan> root_ SL_GUARDED_BY(mu_);
  /// Latest stage span per name (for AnnotateStage).
  std::vector<std::pair<std::string, TraceSpan*>> stages_ SL_GUARDED_BY(mu_);
};

/// Chrome trace-event JSON (an array of "ph":"X" complete events, one per
/// span; ts/dur in microseconds, pid 1, tid = span tid, attributes under
/// "args"). Empty string for a null root.
std::string TraceChromeJson(const TraceSpan* root);

}  // namespace sparkline
