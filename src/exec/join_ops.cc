// Join operators: broadcast hash join and broadcast nested-loop join.
#include <unordered_map>

#include "common/string_util.h"
#include "exec/physical_plan.h"
#include "exec/subquery_expr.h"
#include "expr/evaluator.h"

namespace sparkline {

namespace {

Row ConcatRows(const Row& left, const Row& right) {
  Row out;
  out.reserve(left.size() + right.size());
  out.insert(out.end(), left.begin(), left.end());
  out.insert(out.end(), right.begin(), right.end());
  return out;
}

Row NullRow(const std::vector<Attribute>& attrs) {
  Row out;
  out.reserve(attrs.size());
  for (const auto& a : attrs) out.push_back(Value::Null(a.type));
  return out;
}

}  // namespace

// --- HashJoinExec -------------------------------------------------------------

HashJoinExec::HashJoinExec(JoinType type, std::vector<ExprPtr> left_keys,
                           std::vector<ExprPtr> right_keys, ExprPtr residual,
                           std::vector<Attribute> output, PhysicalPlanPtr left,
                           PhysicalPlanPtr right)
    : PhysicalPlan(std::move(output), {std::move(left), std::move(right)}),
      type_(type),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      residual_(std::move(residual)) {}

std::string HashJoinExec::label() const {
  return StrCat("BroadcastHashJoin [", JoinTypeName(type_), "]");
}

Result<PartitionedRelation> HashJoinExec::Execute(ExecContext* ctx) const {
  SL_ASSIGN_OR_RETURN(PartitionedRelation left, children_[0]->Execute(ctx));
  SL_ASSIGN_OR_RETURN(PartitionedRelation right, children_[1]->Execute(ctx));
  DecodeInput(ctx, &left);
  DecodeInput(ctx, &right);
  const std::vector<Row> build = std::move(right).Flatten();
  // RAII so the hash-table bytes are returned on error paths too (the old
  // Grow/Shrink pair leaked the reservation when a probe task failed).
  ScopedReservation hash_table_bytes(ctx->memory(),
                                     static_cast<int64_t>(build.size()) * 64);

  // Build side: key -> row indices. SQL equi-join semantics: null keys never
  // match, so they are not inserted.
  std::unordered_map<Row, std::vector<size_t>, RowHash, RowEq> table;
  table.reserve(build.size());
  {
    Status build_status = Status::OK();
    SL_RETURN_NOT_OK(RunStage(ctx, 1, [&](size_t) -> Status {
      for (size_t i = 0; i < build.size(); ++i) {
        Row key;
        key.reserve(right_keys_.size());
        bool has_null = false;
        for (const auto& k : right_keys_) {
          SL_ASSIGN_OR_RETURN(Value v, EvalExpr(*k, build[i]));
          has_null |= v.is_null();
          key.push_back(std::move(v));
        }
        if (!has_null) table[std::move(key)].push_back(i);
      }
      return Status::OK();
    }));
    SL_RETURN_NOT_OK(build_status);
  }

  const size_t right_width =
      children_[1]->output().size();
  std::vector<Attribute> right_attrs(output_.end() - right_width,
                                     output_.end());

  PartitionedRelation out;
  out.attrs = output_;
  out.partitions.assign(left.partitions.size(), {});
  SL_RETURN_NOT_OK(RunStage(ctx, left.partitions.size(), [&](size_t p)
                                -> Status {
    auto& part = out.partitions[p];
    for (const Row& lrow : left.partitions[p]) {
      Row key;
      key.reserve(left_keys_.size());
      bool has_null = false;
      for (const auto& k : left_keys_) {
        SL_ASSIGN_OR_RETURN(Value v, EvalExpr(*k, lrow));
        has_null |= v.is_null();
        key.push_back(std::move(v));
      }
      bool matched = false;
      if (!has_null) {
        auto it = table.find(key);
        if (it != table.end()) {
          for (size_t i : it->second) {
            Row combined = ConcatRows(lrow, build[i]);
            if (residual_ != nullptr) {
              SL_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*residual_, combined));
              if (!pass) continue;
            }
            matched = true;
            part.push_back(std::move(combined));
          }
        }
      }
      if (!matched && type_ == JoinType::kLeftOuter) {
        part.push_back(ConcatRows(lrow, NullRow(right_attrs)));
      }
    }
    return Status::OK();
  }));
  SL_RETURN_NOT_OK(ChargeOutput(ctx, &out));
  return out;
}

// --- NestedLoopJoinExec ----------------------------------------------------------

NestedLoopJoinExec::NestedLoopJoinExec(JoinType type, ExprPtr condition,
                                       std::vector<Attribute> output,
                                       PhysicalPlanPtr left,
                                       PhysicalPlanPtr right)
    : PhysicalPlan(std::move(output), {std::move(left), std::move(right)}),
      type_(type),
      condition_(std::move(condition)) {}

std::string NestedLoopJoinExec::label() const {
  return StrCat("BroadcastNestedLoopJoin [", JoinTypeName(type_), "]");
}

Result<PartitionedRelation> NestedLoopJoinExec::Execute(ExecContext* ctx) const {
  SL_ASSIGN_OR_RETURN(PartitionedRelation left, children_[0]->Execute(ctx));
  SL_ASSIGN_OR_RETURN(PartitionedRelation right, children_[1]->Execute(ctx));
  DecodeInput(ctx, &left);
  DecodeInput(ctx, &right);
  const std::vector<Row> broadcast = std::move(right).Flatten();

  ExprPtr condition = condition_;
  if (condition != nullptr) {
    SL_ASSIGN_OR_RETURN(condition, EvaluateSubqueries(condition, ctx));
  }

  const size_t left_width = children_[0]->output().size();

  PartitionedRelation out;
  out.attrs = output_;
  out.partitions.assign(left.partitions.size(), {});
  SL_RETURN_NOT_OK(RunStage(ctx, left.partitions.size(), [&](size_t p)
                                -> Status {
    auto& part = out.partitions[p];
    // Reusable combined-row buffer: left values stay, right values are
    // overwritten per probe (keeps the O(n*m) loop allocation-free).
    Row combined(left_width + (broadcast.empty() ? 0 : broadcast[0].size()));
    size_t since_check = 0;
    for (const Row& lrow : left.partitions[p]) {
      for (size_t c = 0; c < left_width; ++c) combined[c] = lrow[c];
      bool any_match = false;
      for (const Row& rrow : broadcast) {
        if (++since_check >= 8192) {
          since_check = 0;
          SL_RETURN_NOT_OK(ctx->CheckInterrupt());
        }
        bool pass = true;
        if (condition != nullptr) {
          if (combined.size() != left_width + rrow.size()) {
            combined.resize(left_width + rrow.size());
          }
          for (size_t c = 0; c < rrow.size(); ++c) {
            combined[left_width + c] = rrow[c];
          }
          SL_ASSIGN_OR_RETURN(pass, EvalPredicate(*condition, combined));
        }
        if (!pass) continue;
        any_match = true;
        if (type_ == JoinType::kInner || type_ == JoinType::kCross ||
            type_ == JoinType::kLeftOuter) {
          part.push_back(ConcatRows(lrow, rrow));
        } else {
          break;  // semi/anti: the first match decides
        }
      }
      if (type_ == JoinType::kLeftSemi && any_match) part.push_back(lrow);
      if (type_ == JoinType::kLeftAnti && !any_match) part.push_back(lrow);
      if (type_ == JoinType::kLeftOuter && !any_match) {
        std::vector<Attribute> right_attrs(output_.begin() + left_width,
                                           output_.end());
        part.push_back(ConcatRows(lrow, NullRow(right_attrs)));
      }
    }
    return Status::OK();
  }));
  SL_RETURN_NOT_OK(ChargeOutput(ctx, &out));
  return out;
}

}  // namespace sparkline
