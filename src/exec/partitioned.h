// The dataset representation flowing between physical operators: a list of
// row partitions (the analog of an RDD's partitions in Spark), optionally
// carried in columnar-exchange form.
//
// Columnar exchange (sparkline.skyline.exchange.columnar): skyline stages
// can hand their output to the next stage as ColumnarBatch views — a shared
// immutable DominanceMatrix plus a row-index selection — instead of
// materialized rows, so downstream skyline stages never re-project. A
// partition is EITHER rows in partitions[i] OR a batch in batches[i], never
// both; operators that need rows call EnsureRows() (the row fallback),
// which decodes every batch in place.
#pragma once

#include <optional>
#include <vector>

#include "catalog/zone_map.h"
#include "common/memory_tracker.h"
#include "expr/expression.h"
#include "skyline/columnar.h"
#include "types/value.h"

namespace sparkline {

/// \brief Rows split into partitions, one per (simulated) executor task.
struct PartitionedRelation {
  std::vector<Attribute> attrs;
  std::vector<std::vector<Row>> partitions;
  /// Columnar side channel: empty (pure row mode), or exactly
  /// partitions.size() entries where batches[i], when engaged, replaces
  /// partitions[i] (which is then empty). Only the skyline operators and
  /// the gather exchange produce or consume batches; everyone else calls
  /// EnsureRows() first.
  std::vector<std::optional<skyline::ColumnarBatch>> batches;
  /// Zone-map side channel (sparkline.scan.zone_maps): empty, or exactly
  /// partitions.size() entries where zone_maps[i] summarizes the rows of
  /// partition i *in output-column ordinals*. Built by the scan during
  /// partitioning; propagated only by operators that keep partitions as
  /// row subsets with unchanged columns (Filter, LocalSkyline) — everyone
  /// else drops the channel, which consumers must treat as "no metadata".
  /// An engaged entry may still be invalid (no columns) for the same
  /// reason.
  std::vector<ZoneMap> zone_maps;
  /// The bytes this relation holds reserved on the query's MemoryTracker
  /// (attached by PhysicalPlan::ChargeOutput, released by the destructor).
  /// Making the charge a member — instead of the pre-fault-tolerance ad-hoc
  /// Grow/Shrink pairs — is what guarantees the tracker drains to zero on
  /// error and cancellation paths too. Makes the relation move-only.
  MemoryCharge charge;

  /// True when at least one partition is carried as a batch.
  bool has_batches() const {
    for (const auto& b : batches) {
      if (b.has_value()) return true;
    }
    return false;
  }

  size_t PartitionRows(size_t i) const {
    if (i < batches.size() && batches[i].has_value()) {
      return batches[i]->num_rows();
    }
    return partitions[i].size();
  }

  size_t TotalRows() const {
    size_t n = 0;
    for (size_t i = 0; i < partitions.size(); ++i) n += PartitionRows(i);
    return n;
  }

  /// The row fallback: decodes every batch partition into rows in place
  /// (moving out of exclusively owned backings). After this the relation is
  /// in pure row mode. Idempotent.
  void EnsureRows() {
    for (size_t i = 0; i < batches.size(); ++i) {
      if (!batches[i].has_value()) continue;
      partitions[i] = std::move(*batches[i]).DecodeConsuming();
      batches[i].reset();
    }
    batches.clear();
  }

  /// Concatenates all partitions in order (an AllTuples gather), decoding
  /// batches first — this is the plan-root decode.
  std::vector<Row> Flatten() && {
    EnsureRows();
    if (partitions.size() == 1) return std::move(partitions[0]);
    std::vector<Row> out;
    out.reserve(TotalRows());
    for (auto& p : partitions) {
      for (auto& r : p) out.push_back(std::move(r));
    }
    return out;
  }
};

/// Approximate in-memory footprint (samples one row per partition; batch
/// partitions are estimated over their backing rows — matrix bytes are
/// charged separately through the batch's own reservation).
int64_t EstimateRelationBytes(const PartitionedRelation& rel);

}  // namespace sparkline
