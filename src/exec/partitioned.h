// The dataset representation flowing between physical operators: a list of
// row partitions (the analog of an RDD's partitions in Spark).
#pragma once

#include <vector>

#include "expr/expression.h"
#include "types/value.h"

namespace sparkline {

/// \brief Rows split into partitions, one per (simulated) executor task.
struct PartitionedRelation {
  std::vector<Attribute> attrs;
  std::vector<std::vector<Row>> partitions;

  size_t TotalRows() const {
    size_t n = 0;
    for (const auto& p : partitions) n += p.size();
    return n;
  }

  /// Concatenates all partitions in order (an AllTuples gather).
  std::vector<Row> Flatten() && {
    if (partitions.size() == 1) return std::move(partitions[0]);
    std::vector<Row> out;
    out.reserve(TotalRows());
    for (auto& p : partitions) {
      for (auto& r : p) out.push_back(std::move(r));
    }
    return out;
  }
};

/// Approximate in-memory footprint (samples one row per partition).
int64_t EstimateRelationBytes(const PartitionedRelation& rel);

}  // namespace sparkline
