// Exec-time scalar subquery holder.
//
// The physical planner replaces resolved ScalarSubquery expressions with
// PhysicalSubqueryExpr nodes holding the planned subtree; operators call
// EvaluateSubqueries() once per query to substitute the literal result
// (this is how the single-dimension skyline optimization of paper section
// 5.4 executes in O(n)).
#pragma once

#include "exec/physical_plan.h"

namespace sparkline {

class PhysicalSubqueryExpr : public Expression {
 public:
  PhysicalSubqueryExpr(PhysicalPlanPtr plan, DataType type)
      : Expression(ExprKind::kPhysicalSubquery),
        plan_(std::move(plan)),
        type_(type) {}
  static ExprPtr Make(PhysicalPlanPtr plan, DataType type) {
    return std::make_shared<PhysicalSubqueryExpr>(std::move(plan), type);
  }

  const PhysicalPlanPtr& plan() const { return plan_; }
  DataType type() const override { return type_; }
  bool nullable() const override { return true; }
  std::vector<ExprPtr> children() const override { return {}; }
  ExprPtr WithNewChildren(std::vector<ExprPtr>) const override {
    return shared_from_this();
  }
  std::string ToString() const override { return "physical-subquery()"; }

 private:
  PhysicalPlanPtr plan_;
  DataType type_;
};

/// \brief Executes every PhysicalSubqueryExpr in `e` (once) and substitutes
/// its literal result: one row/one column -> the value; zero rows -> NULL;
/// more than one row -> execution error.
Result<ExprPtr> EvaluateSubqueries(const ExprPtr& e, ExecContext* ctx);

}  // namespace sparkline
