// Physical operators (Spark's SparkPlan analog).
//
// Operators execute materialized partition-at-a-time: each operator consumes
// its children's PartitionedRelations and produces its own. Stage boundaries
// (exchanges) match where Spark would shuffle; narrow operators preserve the
// child partitioning, mirroring the paper's decision to keep Spark's
// partitioning for the local skyline (section 5.6).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exec/exec_context.h"
#include "exec/partitioned.h"
#include "plan/logical_plan.h"
#include "skyline/algorithms.h"

namespace sparkline {

class PhysicalPlan;
using PhysicalPlanPtr = std::shared_ptr<const PhysicalPlan>;

/// \brief How an operator's output is distributed across executors.
enum class Partitioning : uint8_t {
  /// num_executors chunks, no particular key (Spark UnspecifiedDistribution).
  kUnspecified,
  /// Exactly one partition (Spark AllTuples).
  kSinglePartition,
  /// Partitioned by the null bitmap of the skyline dimensions (section 5.7).
  kNullBitmapHashed,
};

/// \brief Base class of all physical operators.
class PhysicalPlan {
 public:
  PhysicalPlan(std::vector<Attribute> output,
               std::vector<PhysicalPlanPtr> children)
      : output_(std::move(output)), children_(std::move(children)) {}
  virtual ~PhysicalPlan() = default;

  const std::vector<Attribute>& output() const { return output_; }
  const std::vector<PhysicalPlanPtr>& children() const { return children_; }

  /// One-line description for EXPLAIN.
  virtual std::string label() const = 0;
  virtual Partitioning output_partitioning() const {
    return children_.empty() ? Partitioning::kUnspecified
                             : children_[0]->output_partitioning();
  }

  /// Recursively executes children, then this operator.
  virtual Result<PartitionedRelation> Execute(ExecContext* ctx) const = 0;

  /// The fault-injection site this operator's stage tasks evaluate (see
  /// common/failpoint.h); all stages of one operator share the site. The
  /// generic per-task site is "exec.stage_task"; operators the chaos suite
  /// targets individually override it.
  virtual const char* failpoint_site() const { return "exec.stage_task"; }

  std::string TreeString() const;

 protected:
  /// Runs `fn` once per partition on the executor pool, measuring each task
  /// with the thread-CPU clock and recording the critical path (max task
  /// time) under this operator's label.
  ///
  /// Fault tolerance: each task is retried up to
  /// ClusterConfig::task_retries times (with exponential backoff) when it
  /// fails with a transient IsRetryable status — the Spark-lineage
  /// argument: stage tasks are deterministic pure functions of their input
  /// partition, so re-execution is safe. A task that throws is converted
  /// into a terminal Status::Internal. The stage checks
  /// ExecContext::CheckInterrupt (cancellation + timeout) before
  /// dispatching and after the barrier.
  Status RunStage(ExecContext* ctx, size_t num_partitions,
                  const std::function<Status(size_t)>& fn) const;

  /// Same, but records the critical path under an explicit stage label —
  /// for operators that run more than one stage (e.g. the parallel global
  /// skyline's partial + merge passes) and want them separately visible in
  /// QueryMetrics::operator_ms.
  Status RunStage(ExecContext* ctx, const std::string& stage_label,
                  size_t num_partitions,
                  const std::function<Status(size_t)>& fn) const;

  /// Reserves the output relation's estimated bytes against the query's
  /// memory budget and attaches the RAII charge to `out`; fails with
  /// ResourceExhausted when the reservation would exceed
  /// ClusterConfig::memory_limit_bytes. Input charges release automatically
  /// when the operator's local relations die, so the tracker drains to zero
  /// on every path — success, error, cancellation.
  Status ChargeOutput(ExecContext* ctx, PartitionedRelation* out) const;

  /// The row fallback for batch-carrying input: decodes every ColumnarBatch
  /// partition into rows (timed into QueryMetrics::decode_ms). Every
  /// operator that consumes rows calls this right after executing its
  /// child; batch-aware operators (the skyline stages and the gather
  /// exchange) skip it on their columnar paths.
  void DecodeInput(ExecContext* ctx, PartitionedRelation* in) const;

  std::vector<Attribute> output_;
  std::vector<PhysicalPlanPtr> children_;

 private:
  /// One task of a stage: the per-attempt failpoint, the throw guard, and
  /// the transient-fault retry loop (see RunStage). `span` (nullable) is the
  /// task's trace span; retries and fault fires are annotated onto it.
  Status RunTask(ExecContext* ctx, const std::string& stage_label,
                 size_t index, const std::function<Status(size_t)>& fn,
                 TraceSpan* span) const;
};

// --- leaves ----------------------------------------------------------------

/// \brief Scans a catalog table, splitting it into executor-count chunks and
/// applying column pruning while copying.
class ScanExec : public PhysicalPlan {
 public:
  /// With `build_zone_maps` (sparkline.scan.zone_maps) each output chunk
  /// gets a per-partition ZoneMap over the *projected* columns, built while
  /// the rows are copied — the data-skipping metadata LocalSkylineExec and
  /// BroadcastFilterExec consult (see partitioned.h).
  ScanExec(TablePtr table, std::vector<size_t> column_indices,
           std::vector<Attribute> output, bool build_zone_maps = false);
  std::string label() const override;
  const char* failpoint_site() const override { return "exec.scan"; }
  Result<PartitionedRelation> Execute(ExecContext* ctx) const override;

 private:
  TablePtr table_;
  std::vector<size_t> column_indices_;
  bool build_zone_maps_;
};

/// \brief Emits in-memory rows as a single partition.
class LocalRelationExec : public PhysicalPlan {
 public:
  LocalRelationExec(std::shared_ptr<std::vector<Row>> rows,
                    std::vector<Attribute> output);
  std::string label() const override { return "LocalRelation"; }
  Partitioning output_partitioning() const override {
    return Partitioning::kSinglePartition;
  }
  Result<PartitionedRelation> Execute(ExecContext* ctx) const override;

 private:
  std::shared_ptr<std::vector<Row>> rows_;
};

// --- narrow operators --------------------------------------------------------

/// \brief Row-at-a-time projection.
class ProjectExec : public PhysicalPlan {
 public:
  ProjectExec(std::vector<ExprPtr> bound_list, std::vector<Attribute> output,
              PhysicalPlanPtr child);
  std::string label() const override { return "Project"; }
  Result<PartitionedRelation> Execute(ExecContext* ctx) const override;

 private:
  std::vector<ExprPtr> list_;
};

/// \brief Predicate filter.
class FilterExec : public PhysicalPlan {
 public:
  FilterExec(ExprPtr bound_condition, PhysicalPlanPtr child);
  std::string label() const override { return "Filter"; }
  Result<PartitionedRelation> Execute(ExecContext* ctx) const override;

 private:
  ExprPtr condition_;
};

// --- exchanges ---------------------------------------------------------------

enum class ExchangeMode : uint8_t {
  /// Gather everything into one partition (AllTuples distribution).
  kGather,
  /// Spread rows evenly over num_executors partitions.
  kRoundRobin,
  /// Hash rows by the null bitmap of the skyline dimensions; rows with the
  /// same bitmap land in the same partition (section 5.7).
  kNullBitmapHash,
  /// Angle-based space partitioning (Vlachou et al.; paper section 7
  /// future work): rows in similar "directions" of the dimension space land
  /// together, which keeps local skylines small on anti-correlated data.
  kAngle,
};

/// \brief Which kernel the skyline operators run. BNL is the paper's choice;
/// SFS (presorting) and grid-based cell pruning are the section-7 /
/// section-2 alternatives implemented as extensions.
enum class SkylineKernel : uint8_t {
  kBlockNestedLoop,
  kSortFilterSkyline,
  kGridFilter,
};

/// \brief Angle-partitioning internals, exposed so tests can assert the
/// scheme's bucket spread and pruning power directly.
namespace exchange_internal {

/// Per-dimension [lo, hi] range of the normalized skyline keys (values
/// negated for MAX goals) across all partitions — the scaling context
/// AnglePartition needs. Non-numeric and NULL values are skipped.
struct AngleBounds {
  std::vector<double> lo;
  std::vector<double> hi;
};

AngleBounds ComputeAngleBounds(const std::vector<std::vector<Row>>& partitions,
                               const std::vector<skyline::BoundDimension>& dims);

/// Simplified angle-based partition assignment (Vlachou et al.): buckets
/// the hyperspherical angle between the first dimension and the remainder
/// of the dimension vector, computed over *normalized* keys — negated for
/// MAX goals and min-max scaled into [0, 1] per dimension — so that MAX
/// goals and mixed-scale dimensions spread over buckets instead of
/// collapsing into one. Correctness never depends on the scheme (any
/// partitioning is valid for complete data); only pruning power does.
size_t AnglePartition(const Row& row,
                      const std::vector<skyline::BoundDimension>& dims,
                      size_t n, const AngleBounds& bounds);

}  // namespace exchange_internal

/// \brief Re-distributes data; the only operator that moves rows between
/// executors (a stage boundary, like a Spark shuffle).
///
/// A kGather exchange whose input partitions all arrive as ColumnarBatches
/// ships the matrix blocks instead of rows: the batches are concatenated
/// into one compact batch (key/bitmap copy + dictionary remap, no
/// re-projection from Values) and the single output partition stays
/// columnar. Mixed or row-mode input takes the classic row path.
class ExchangeExec : public PhysicalPlan {
 public:
  ExchangeExec(ExchangeMode mode, std::vector<skyline::BoundDimension> dims,
               PhysicalPlanPtr child);
  std::string label() const override;
  const char* failpoint_site() const override { return "exec.exchange"; }
  Partitioning output_partitioning() const override {
    switch (mode_) {
      case ExchangeMode::kGather:
        return Partitioning::kSinglePartition;
      case ExchangeMode::kNullBitmapHash:
        return Partitioning::kNullBitmapHashed;
      default:
        return Partitioning::kUnspecified;
    }
  }
  Result<PartitionedRelation> Execute(ExecContext* ctx) const override;

 private:
  ExchangeMode mode_;
  std::vector<skyline::BoundDimension> dims_;  // for kNullBitmapHash
};

// --- aggregation -------------------------------------------------------------

/// \brief One aggregate to compute.
struct AggSpec {
  AggFn fn;
  ExprPtr bound_arg;  ///< null for COUNT(*)
  bool distinct = false;
  DataType result_type;
};

enum class AggMode : uint8_t { kPartial, kFinal, kComplete };

/// \brief Hash aggregation. Two-phase (partial per partition, final after a
/// gather) unless a DISTINCT aggregate forces single-phase.
class HashAggregateExec : public PhysicalPlan {
 public:
  HashAggregateExec(std::vector<ExprPtr> bound_groups,
                    std::vector<AggSpec> aggs, AggMode mode,
                    std::vector<Attribute> output, PhysicalPlanPtr child);
  std::string label() const override;
  Partitioning output_partitioning() const override {
    return mode_ == AggMode::kPartial ? children_[0]->output_partitioning()
                                      : Partitioning::kSinglePartition;
  }
  Result<PartitionedRelation> Execute(ExecContext* ctx) const override;

 private:
  std::vector<ExprPtr> groups_;
  std::vector<AggSpec> aggs_;
  AggMode mode_;
};

// --- sorting / limiting -------------------------------------------------------

/// \brief Bound ORDER BY item.
struct BoundSortOrder {
  ExprPtr expr;
  bool ascending;
  bool nulls_first;
};

class SortExec : public PhysicalPlan {
 public:
  SortExec(std::vector<BoundSortOrder> orders, PhysicalPlanPtr child);
  std::string label() const override { return "Sort"; }
  Result<PartitionedRelation> Execute(ExecContext* ctx) const override;

 private:
  std::vector<BoundSortOrder> orders_;
};

class LimitExec : public PhysicalPlan {
 public:
  LimitExec(int64_t n, PhysicalPlanPtr child);
  std::string label() const override { return "Limit"; }
  Result<PartitionedRelation> Execute(ExecContext* ctx) const override;

 private:
  int64_t n_;
};

// --- joins ---------------------------------------------------------------------

/// \brief Broadcast hash join for equi conditions (INNER / LEFT OUTER).
/// The right side is gathered and hashed once; left partitions probe it.
class HashJoinExec : public PhysicalPlan {
 public:
  HashJoinExec(JoinType type, std::vector<ExprPtr> left_keys,
               std::vector<ExprPtr> right_keys, ExprPtr residual,
               std::vector<Attribute> output, PhysicalPlanPtr left,
               PhysicalPlanPtr right);
  std::string label() const override;
  Partitioning output_partitioning() const override {
    return children_[0]->output_partitioning();
  }
  Result<PartitionedRelation> Execute(ExecContext* ctx) const override;

 private:
  JoinType type_;
  std::vector<ExprPtr> left_keys_;
  std::vector<ExprPtr> right_keys_;
  ExprPtr residual_;  // bound against combined row; may be null
};

/// \brief Broadcast nested-loop join: arbitrary condition, all join types.
/// This is the operator that executes the plain-SQL "reference" skyline plan
/// (a left-anti self-join with the dominance predicate), matching Spark's
/// BroadcastNestedLoopJoin choice for such queries. Left-anti probes exit
/// early on the first match.
class NestedLoopJoinExec : public PhysicalPlan {
 public:
  NestedLoopJoinExec(JoinType type, ExprPtr condition,
                     std::vector<Attribute> output, PhysicalPlanPtr left,
                     PhysicalPlanPtr right);
  std::string label() const override;
  Partitioning output_partitioning() const override {
    return children_[0]->output_partitioning();
  }
  Result<PartitionedRelation> Execute(ExecContext* ctx) const override;

 private:
  JoinType type_;
  ExprPtr condition_;  // bound against concat(left row, right row); may be null
};

// --- skyline -------------------------------------------------------------------

/// \brief Local skyline computation (paper section 5.5/5.6): one BNL pass
/// per partition, preserving the child's partitioning. Used for both the
/// complete and the incomplete algorithm (the latter after a null-bitmap
/// exchange, which makes every partition bitmap-uniform).
///
/// With `columnar_exchange` on, each partition is projected into a
/// DominanceMatrix exactly once and the output is a ColumnarBatch survivor
/// view over that matrix — the projection every downstream skyline stage
/// reuses. Partitions whose shape TryBuild refuses fall back to rows
/// individually. SFS runs tag their output views score-sorted so the global
/// stage can inherit the sort order.
///
/// With `zone_map_skipping` (sparkline.scan.zone_maps) and zone maps on the
/// input relation, a partition whose per-dim *best corner* is strictly
/// dominated by another partition's *worst corner* is dropped whole — before
/// projection, not per-row (the vector generalization of the SaLSa
/// stop-bound corner test; see docs/ARCHITECTURE.md for the soundness
/// argument). Only sound under complete dominance over NULL-free numeric
/// MIN/MAX dimensions; the skip auto-disables everywhere else.
class LocalSkylineExec : public PhysicalPlan {
 public:
  LocalSkylineExec(std::vector<skyline::BoundDimension> dims, bool distinct,
                   skyline::NullSemantics nulls, PhysicalPlanPtr child,
                   SkylineKernel kernel = SkylineKernel::kBlockNestedLoop,
                   bool columnar = true, bool columnar_exchange = true,
                   bool sfs_early_stop = true,
                   skyline::SfsSortKey sfs_sort_key = skyline::SfsSortKey::kSum,
                   bool zone_map_skipping = false);
  std::string label() const override;
  const char* failpoint_site() const override { return "exec.local_task"; }
  Result<PartitionedRelation> Execute(ExecContext* ctx) const override;

 private:
  std::vector<skyline::BoundDimension> dims_;
  bool distinct_;
  skyline::NullSemantics nulls_;
  SkylineKernel kernel_;
  bool columnar_;
  bool columnar_exchange_;
  bool sfs_early_stop_;
  skyline::SfsSortKey sfs_sort_key_;
  bool zone_map_skipping_;
};

/// \brief Phase one of two-phase distributed pruning
/// (sparkline.skyline.broadcast_filter; ROADMAP item 2, after Ciaccia &
/// Martinenghi): sits between LocalSkylineExec and the gather exchange on
/// the distributed complete path.
///
///   [nominate]  each partition nominates its k strongest skyline points —
///               the SaLSa minmax-best tuples, whose small max-coordinate
///               makes them dominate the largest boxes — and their packed
///               normalized keys are unioned into a tiny FilterPointSet
///               (the broadcast; normalized keys compare across matrices,
///               so no re-projection travels with it).
///   [filter]    every partition prunes its local skyline against the
///               union *before* the gather: first the partition's zone-map
///               best corner against the filter points (a strictly
///               dominated corner drops the whole partition), then row by
///               row via PruneAgainstFilter. Only *strictly* dominated rows
///               are removed — DISTINCT ties survive to the merge, so
///               results stay bit-identical with the phase off.
///
/// Eligibility is per-relation: every non-empty partition must carry a
/// batch projected for these dimensions over an all-numeric, NULL-free,
/// DIFF-free matrix (cross-matrix key comparability); anything else passes
/// through unchanged. Faults at "exec.broadcast" degrade the same way:
/// transient/injected errors fall back to the unfiltered input (never a
/// wrong result), while cancellation/timeout/memory errors propagate.
class BroadcastFilterExec : public PhysicalPlan {
 public:
  BroadcastFilterExec(std::vector<skyline::BoundDimension> dims,
                      PhysicalPlanPtr child, size_t points_per_partition = 2);
  std::string label() const override { return "BroadcastFilter"; }
  const char* failpoint_site() const override { return "exec.broadcast"; }
  Result<PartitionedRelation> Execute(ExecContext* ctx) const override;

 private:
  std::vector<skyline::BoundDimension> dims_;
  size_t points_per_partition_;
};

/// \brief Global skyline for complete data over the single gathered
/// partition (requires AllTuples distribution).
///
/// With more than one executor the gathered input is split into
/// executor-count chunks whose skylines are computed concurrently (a
/// partial-skyline round, as in Ciaccia & Martinenghi's parallel skyline
/// optimization), followed by a single-task BNL merge of the partial
/// windows — removing the paper's single-task global bottleneck while
/// keeping the critical-path time model intact. The two stages are
/// recorded under "<label> [partial]" / "<label> [merge]".
///
/// With `columnar_exchange` on, a batch arriving from the gather exchange
/// is consumed directly: the partial stage runs over contiguous slices of
/// the batch's index view and the merge over the concatenated survivor
/// views — no stage re-projects (the "[partial]"/"[merge]" TryBuild the
/// row path pays is gone, visible in QueryMetrics::matrix_builds). When the
/// input arrives as rows (non-distributed plans), the matrix is built once
/// in a "<label> [project]" stage and shared the same way. Score-sorted
/// batches from upstream SFS stages skip the merge re-sort entirely
/// (inherited order + ColumnarSortFilterSkylinePresorted) and additionally
/// inherit the tightest per-partition SaLSa stop bound the batch carries,
/// so the partial slices and the sort-free merge can terminate before
/// scanning most of the gathered input (sparkline.skyline.sfs.early_stop).
class GlobalSkylineExec : public PhysicalPlan {
 public:
  GlobalSkylineExec(std::vector<skyline::BoundDimension> dims, bool distinct,
                    PhysicalPlanPtr child,
                    SkylineKernel kernel = SkylineKernel::kBlockNestedLoop,
                    bool columnar = true, bool columnar_exchange = true,
                    bool sfs_early_stop = true,
                    skyline::SfsSortKey sfs_sort_key = skyline::SfsSortKey::kSum);
  std::string label() const override { return "GlobalSkyline [complete]"; }
  const char* failpoint_site() const override { return "exec.global_task"; }
  Result<PartitionedRelation> Execute(ExecContext* ctx) const override;

 private:
  Result<PartitionedRelation> ExecuteColumnar(
      ExecContext* ctx, skyline::ColumnarBatch batch) const;

  std::vector<skyline::BoundDimension> dims_;
  bool distinct_;
  SkylineKernel kernel_;
  bool columnar_;
  bool columnar_exchange_;
  bool sfs_early_stop_;
  skyline::SfsSortKey sfs_sort_key_;
};

/// \brief Global skyline for incomplete data (paper section 5.7 /
/// Appendix A).
///
/// Incomplete dominance is non-transitive, so the complete path's
/// partial-merge scheme (prune chunk-dominated tuples, merge survivors) is
/// unsound here: a tuple eliminated inside its chunk can still be the only
/// witness against another chunk's survivor. With more than one executor
/// (and `parallel` on) the gathered input is instead split into
/// executor-count chunks and run through round-based all-pairs validation:
///
///   [candidates]  each chunk runs the all-pairs deferred-deletion scan
///                 locally; survivors become its candidate set.
///   [validate]    chunks-1 rounds; in round r task i checks its remaining
///                 candidates against the *full* tuple set of chunk
///                 (i + r) mod chunks, eliminating a candidate only when a
///                 concrete dominating witness is found.
///   [finalize]    surviving candidates are concatenated in input order.
///
/// After the rounds every candidate has been compared against every other
/// input tuple, so the result equals the single-task all-pairs algorithm
/// exactly. Stage times are recorded under "<label> [candidates]" /
/// "[validate]" / "[finalize]"; the single-executor (or `parallel` = off)
/// path keeps the bare label.
///
/// With `columnar_exchange` on, a batch from the gather exchange supplies
/// the shared matrix (and its per-row null bitmaps) for every stage — the
/// "[candidates]" projection pass of the row path disappears — and the
/// output stays a batch view. Matrix row order equals gathered input order
/// (ColumnarBatch::Concat guarantees it), which is the DISTINCT tie-break
/// the validation rounds need.
class GlobalSkylineIncompleteExec : public PhysicalPlan {
 public:
  GlobalSkylineIncompleteExec(std::vector<skyline::BoundDimension> dims,
                              bool distinct, PhysicalPlanPtr child,
                              bool columnar = true, bool parallel = true,
                              bool columnar_exchange = true);
  std::string label() const override { return "GlobalSkyline [incomplete]"; }
  const char* failpoint_site() const override { return "exec.global_task"; }
  Result<PartitionedRelation> Execute(ExecContext* ctx) const override;

 private:
  Result<PartitionedRelation> ExecuteColumnar(
      ExecContext* ctx, skyline::ColumnarBatch batch) const;

  std::vector<skyline::BoundDimension> dims_;
  bool distinct_;
  bool columnar_;
  bool parallel_;
  bool columnar_exchange_;
};

}  // namespace sparkline
