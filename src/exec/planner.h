// Physical planning: logical plan -> physical operator tree.
//
// Implements the paper's algorithm selection (Listing 8): the complete
// skyline algorithm is chosen when the COMPLETE keyword is present or no
// skyline dimension is nullable; otherwise the incomplete algorithm with
// null-bitmap partitioning. Session configuration can force a strategy,
// which is how the benchmarks run all four algorithms of section 6.3.
#pragma once

#include "common/result.h"
#include "exec/physical_plan.h"
#include "plan/logical_plan.h"

namespace sparkline {

/// \brief Which skyline execution strategy to use (section 6.3 names).
enum class SkylineStrategy : uint8_t {
  /// Listing 8: complete if provably safe, otherwise incomplete.
  kAuto,
  /// "distributed complete": local skylines per partition, then global.
  kDistributedComplete,
  /// "non-distributed complete": gather, then a single global pass.
  kNonDistributedComplete,
  /// "distributed incomplete": null-bitmap partitioning + all-pairs global.
  kDistributedIncomplete,
};

Result<SkylineStrategy> ParseSkylineStrategy(const std::string& name);
const char* SkylineStrategyName(SkylineStrategy s);

/// \brief Partitioning scheme for the local skyline stage on complete data
/// (paper section 7 lists angle-based partitioning as future work).
enum class SkylinePartitioning : uint8_t {
  /// Keep the child's partitioning (the paper's choice, section 5.6).
  kAsIs,
  /// Re-balance rows evenly first.
  kRoundRobin,
  /// Angle-based space partitioning (Vlachou et al.).
  kAngle,
};
Result<SkylinePartitioning> ParseSkylinePartitioning(const std::string& name);

/// Parses "sum" | "minmax" (sparkline.skyline.sfs.sort_key).
Result<skyline::SfsSortKey> ParseSfsSortKey(const std::string& name);
const char* SfsSortKeyName(skyline::SfsSortKey key);

struct PlannerOptions {
  ClusterConfig cluster;
  SkylineStrategy skyline_strategy = SkylineStrategy::kAuto;
  /// Kernel used by the skyline operators (paper future work: presorting).
  SkylineKernel skyline_kernel = SkylineKernel::kBlockNestedLoop;
  SkylinePartitioning skyline_partitioning = SkylinePartitioning::kAsIs;
  /// SaLSa-style early termination for the SFS family: presorted passes
  /// stop at the minC stop point (and the global merge inherits the
  /// tightest per-partition bound through the columnar exchange).
  /// Automatically disabled for incomplete/NULL data; never changes
  /// results. Key: sparkline.skyline.sfs.early_stop.
  bool sfs_early_stop = true;
  /// Monotone SFS sort key: sum (the pre-existing score) or minmax
  /// (SaLSa's minC function, whose stop bound is tight). Key:
  /// sparkline.skyline.sfs.sort_key.
  skyline::SfsSortKey sfs_sort_key = skyline::SfsSortKey::kSum;
  /// Columnar dominance fast path (skyline/columnar.h): project each
  /// partition once into structure-of-arrays form and run index-based
  /// kernels. Falls back to the row kernels per partition when the shape is
  /// unsupported; results are identical either way.
  bool skyline_columnar = true;
  /// Columnar exchange: skyline stages pass DominanceMatrix batch views to
  /// each other (local projects once, the gather exchange concatenates
  /// blocks, global stages slice index views, rows decode at the plan
  /// root). Off = every stage re-projects its row input, the pre-exchange
  /// behaviour. Requires skyline_columnar; results are identical either
  /// way (up to row order, which SKYLINE never guarantees).
  bool skyline_columnar_exchange = true;
  /// Round-based parallel execution of the incomplete-data global stage
  /// (GlobalSkylineIncompleteExec): candidate scan per chunk, then rotating
  /// validation rounds against full peer chunks. Off = the paper's
  /// single-task all-pairs. Results are identical either way.
  bool skyline_incomplete_parallel = true;
  /// Phase one of two-phase distributed pruning: nominate SaLSa minmax-best
  /// points per partition after the local stage, broadcast the union, and
  /// prune every local skyline against it before the gather exchange
  /// (BroadcastFilterExec). Strict-only elimination keeps results
  /// bit-identical; ineligible shapes pass through. Key:
  /// sparkline.skyline.broadcast_filter.
  bool skyline_broadcast_filter = true;
  /// Phase two: per-partition zone maps built at scan time; the local
  /// skyline stage drops whole partitions whose best corner another
  /// partition's worst corner strictly dominates, and the broadcast filter
  /// vetoes partitions whose best corner a filter point strictly dominates.
  /// Auto-disables under incomplete dominance. Key:
  /// sparkline.scan.zone_maps.
  bool scan_zone_maps = true;
  /// Lightweight cost-based selection (paper section 7): below this
  /// estimated input cardinality the planner skips the distributed local
  /// stage, because the global stage dominates anyway. 0 disables.
  int64_t non_distributed_threshold = 0;
};

/// \brief Rough cardinality estimate for the cost-based strategy refinement;
/// returns -1 when unknown. Exposed for tests.
int64_t EstimateRowCount(const LogicalPlanPtr& plan);

class PhysicalPlanner {
 public:
  explicit PhysicalPlanner(PlannerOptions options)
      : options_(std::move(options)) {}

  /// Plans an optimized, resolved logical plan.
  Result<PhysicalPlanPtr> Plan(const LogicalPlanPtr& plan) const;

 private:
  Result<PhysicalPlanPtr> PlanNode(const LogicalPlanPtr& plan) const;
  Result<PhysicalPlanPtr> PlanJoin(const Join& join) const;
  Result<PhysicalPlanPtr> PlanAggregate(const Aggregate& agg) const;
  Result<PhysicalPlanPtr> PlanSkyline(const SkylineNode& sky) const;

  /// Binds references and plans embedded scalar subqueries.
  Result<ExprPtr> Bind(const ExprPtr& e,
                       const std::vector<Attribute>& input) const;

  /// Inserts a gather exchange when the child is not single-partitioned
  /// (Spark's EnsureRequirements for the AllTuples distribution).
  static PhysicalPlanPtr EnsureSinglePartition(PhysicalPlanPtr child);

  PlannerOptions options_;
};

}  // namespace sparkline
