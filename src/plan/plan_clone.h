// Deep-copies a resolved plan while minting fresh attribute ids.
//
// Needed wherever one logical subtree must appear twice in a plan with
// unambiguous references — most prominently the skyline "reference"
// rewriting (paper Listing 4), which turns SKYLINE OF into a self anti-join,
// and the single-dimension optimization's scalar subquery (section 5.4).
#pragma once

#include <map>

#include "common/result.h"
#include "plan/logical_plan.h"

namespace sparkline {

/// \brief Clones `plan`, giving every attribute-producing node (Scan,
/// LocalRelation, Alias) fresh expression ids and remapping all references.
/// `id_map` receives old-id -> new-id; use it to translate expressions that
/// referenced the original subtree.
Result<LogicalPlanPtr> CloneWithFreshIds(const LogicalPlanPtr& plan,
                                         std::map<ExprId, ExprId>* id_map);

/// \brief Rewrites attribute references in `e` according to `id_map`
/// (references to unmapped ids are left untouched).
ExprPtr RemapAttributeIds(const ExprPtr& e,
                          const std::map<ExprId, ExprId>& id_map);

}  // namespace sparkline
