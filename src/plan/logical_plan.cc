#include "plan/logical_plan.h"

#include <set>

#include "common/string_util.h"

namespace sparkline {

const char* JoinTypeName(JoinType t) {
  switch (t) {
    case JoinType::kInner:
      return "Inner";
    case JoinType::kLeftOuter:
      return "LeftOuter";
    case JoinType::kCross:
      return "Cross";
    case JoinType::kLeftSemi:
      return "LeftSemi";
    case JoinType::kLeftAnti:
      return "LeftAnti";
  }
  return "?";
}

LogicalPlanPtr LogicalPlan::WithNewExpressions(std::vector<ExprPtr>) const {
  return shared_from_this();
}

bool LogicalPlan::resolved() const {
  for (const auto& c : children()) {
    if (!c->resolved()) return false;
  }
  for (const auto& e : expressions()) {
    if (!e->resolved()) return false;
  }
  return true;
}

std::string LogicalPlan::TreeString() const {
  std::string out = NodeString();
  for (const auto& c : children()) {
    out += "\n";
    out += Indent(c->TreeString(), 2);
  }
  return out;
}

std::vector<Attribute> LogicalPlan::MissingInput() const {
  std::set<ExprId> available;
  for (const auto& c : children()) {
    for (const auto& a : c->output()) available.insert(a.id);
  }
  std::vector<Attribute> missing;
  std::set<ExprId> seen;
  for (const auto& e : expressions()) {
    if (!e->resolved()) continue;
    for (const auto& a : CollectAttributes(e)) {
      if (available.count(a.id) == 0 && seen.insert(a.id).second) {
        missing.push_back(a);
      }
    }
  }
  return missing;
}

LogicalPlanPtr LogicalPlan::Transform(
    const LogicalPlanPtr& plan,
    const std::function<LogicalPlanPtr(const LogicalPlanPtr&)>& fn) {
  auto children = plan->children();
  bool changed = false;
  for (auto& c : children) {
    LogicalPlanPtr nc = Transform(c, fn);
    if (nc != c) {
      c = nc;
      changed = true;
    }
  }
  LogicalPlanPtr base =
      changed ? plan->WithNewChildren(std::move(children)) : plan;
  return fn(base);
}

void LogicalPlan::Foreach(
    const LogicalPlanPtr& plan,
    const std::function<void(const LogicalPlanPtr&)>& fn) {
  fn(plan);
  for (const auto& c : plan->children()) Foreach(c, fn);
}

LogicalPlanPtr LogicalPlan::TransformExpressions(
    const LogicalPlanPtr& plan,
    const std::function<ExprPtr(const ExprPtr&)>& fn) {
  return Transform(plan, [&](const LogicalPlanPtr& node) -> LogicalPlanPtr {
    auto exprs = node->expressions();
    if (exprs.empty()) return node;
    bool changed = false;
    for (auto& e : exprs) {
      ExprPtr ne = Expression::Transform(e, fn);
      if (ne != e) {
        e = ne;
        changed = true;
      }
    }
    return changed ? node->WithNewExpressions(std::move(exprs)) : node;
  });
}

std::string UnresolvedRelation::NodeString() const {
  return StrCat("UnresolvedRelation [", name_, "]");
}

LogicalPlanPtr Scan::Make(TablePtr table) {
  std::vector<Attribute> attrs;
  std::vector<size_t> indices;
  attrs.reserve(table->schema().num_fields());
  for (const auto& f : table->schema().fields()) {
    attrs.push_back(Attribute{f.name, f.type, f.nullable, NextExprId(), ""});
    indices.push_back(indices.size());
  }
  return std::make_shared<Scan>(std::move(table), std::move(attrs),
                                std::move(indices));
}

std::string Scan::NodeString() const {
  std::vector<std::string> cols;
  cols.reserve(attrs_.size());
  for (const auto& a : attrs_) cols.push_back(a.ToString());
  return StrCat("Scan ", table_->name(), " [", JoinStrings(cols, ", "), "]");
}

LogicalPlanPtr LocalRelation::Make(const Schema& schema,
                                   std::vector<Row> rows) {
  std::vector<Attribute> attrs;
  attrs.reserve(schema.num_fields());
  for (const auto& f : schema.fields()) {
    attrs.push_back(Attribute{f.name, f.type, f.nullable, NextExprId(), ""});
  }
  return std::make_shared<LocalRelation>(
      std::move(attrs), std::make_shared<std::vector<Row>>(std::move(rows)));
}

std::string LocalRelation::NodeString() const {
  return StrCat("LocalRelation [", rows_->size(), " rows]");
}

std::vector<Attribute> SubqueryAlias::output() const {
  std::vector<Attribute> out = child_->output();
  for (auto& a : out) a.qualifier = alias_;
  return out;
}

std::string SubqueryAlias::NodeString() const {
  return StrCat("SubqueryAlias ", alias_);
}

std::vector<Attribute> Project::output() const {
  std::vector<Attribute> out;
  out.reserve(list_.size());
  for (const auto& e : list_) {
    if (e->kind() == ExprKind::kAlias) {
      out.push_back(static_cast<const Alias&>(*e).ToAttribute());
    } else if (e->kind() == ExprKind::kAttributeRef) {
      out.push_back(static_cast<const AttributeRef&>(*e).attr());
    } else {
      // Unresolved or non-named item; placeholder until analysis wraps it.
      out.push_back(Attribute{e->ToString(), e->type(), true, 0, ""});
    }
  }
  return out;
}

bool Project::resolved() const {
  if (!LogicalPlan::resolved()) return false;
  for (const auto& e : list_) {
    if (e->kind() != ExprKind::kAlias && e->kind() != ExprKind::kAttributeRef) {
      return false;
    }
  }
  return true;
}

std::string Project::NodeString() const {
  std::vector<std::string> items;
  items.reserve(list_.size());
  for (const auto& e : list_) items.push_back(e->ToString());
  return StrCat("Project [", JoinStrings(items, ", "), "]");
}

std::string Filter::NodeString() const {
  return StrCat("Filter ", condition_->ToString());
}

std::vector<Attribute> Join::output() const {
  std::vector<Attribute> out = left_->output();
  if (type_ == JoinType::kLeftSemi || type_ == JoinType::kLeftAnti) {
    return out;
  }
  std::vector<Attribute> right = right_->output();
  if (type_ == JoinType::kLeftOuter) {
    for (auto& a : right) a.nullable = true;
  }
  out.insert(out.end(), right.begin(), right.end());
  return out;
}

bool Join::resolved() const {
  // USING joins stay unresolved until the analyzer rewrites them.
  if (!using_columns_.empty()) return false;
  return LogicalPlan::resolved();
}

std::string Join::NodeString() const {
  std::string out = StrCat("Join ", JoinTypeName(type_));
  if (!using_columns_.empty()) {
    out += StrCat(" USING(", JoinStrings(using_columns_, ", "), ")");
  }
  if (condition_ != nullptr) out += StrCat(" ON ", condition_->ToString());
  return out;
}

std::vector<ExprPtr> Aggregate::expressions() const {
  std::vector<ExprPtr> out = group_list_;
  out.insert(out.end(), agg_list_.begin(), agg_list_.end());
  return out;
}

LogicalPlanPtr Aggregate::WithNewExpressions(std::vector<ExprPtr> exprs) const {
  std::vector<ExprPtr> groups(exprs.begin(),
                              exprs.begin() + group_list_.size());
  std::vector<ExprPtr> aggs(exprs.begin() + group_list_.size(), exprs.end());
  return std::make_shared<Aggregate>(std::move(groups), std::move(aggs),
                                     child_);
}

std::vector<Attribute> Aggregate::output() const {
  std::vector<Attribute> out;
  out.reserve(agg_list_.size());
  for (const auto& e : agg_list_) {
    if (e->kind() == ExprKind::kAlias) {
      out.push_back(static_cast<const Alias&>(*e).ToAttribute());
    } else if (e->kind() == ExprKind::kAttributeRef) {
      out.push_back(static_cast<const AttributeRef&>(*e).attr());
    } else {
      out.push_back(Attribute{e->ToString(), e->type(), true, 0, ""});
    }
  }
  return out;
}

bool Aggregate::resolved() const {
  if (!LogicalPlan::resolved()) return false;
  for (const auto& e : agg_list_) {
    if (e->kind() != ExprKind::kAlias && e->kind() != ExprKind::kAttributeRef) {
      return false;
    }
  }
  return true;
}

std::string Aggregate::NodeString() const {
  std::vector<std::string> groups, aggs;
  for (const auto& e : group_list_) groups.push_back(e->ToString());
  for (const auto& e : agg_list_) aggs.push_back(e->ToString());
  return StrCat("Aggregate [", JoinStrings(groups, ", "), "] [", JoinStrings(aggs, ", "),
                "]");
}

std::vector<ExprPtr> Sort::expressions() const {
  std::vector<ExprPtr> out;
  out.reserve(orders_.size());
  for (const auto& o : orders_) out.push_back(o.expr);
  return out;
}

LogicalPlanPtr Sort::WithNewExpressions(std::vector<ExprPtr> exprs) const {
  std::vector<SortOrder> orders = orders_;
  for (size_t i = 0; i < orders.size(); ++i) orders[i].expr = exprs[i];
  return std::make_shared<Sort>(std::move(orders), child_);
}

std::string Sort::NodeString() const {
  std::vector<std::string> items;
  items.reserve(orders_.size());
  for (const auto& o : orders_) items.push_back(o.ToString());
  return StrCat("Sort [", JoinStrings(items, ", "), "]");
}

std::string Limit::NodeString() const { return StrCat("Limit ", n_); }

std::string Distinct::NodeString() const { return "Distinct"; }

std::string SkylineNode::NodeString() const {
  std::vector<std::string> dims;
  dims.reserve(dimensions_.size());
  for (const auto& d : dimensions_) dims.push_back(d->ToString());
  return StrCat("Skyline", distinct_ ? " DISTINCT" : "",
                complete_ ? " COMPLETE" : "", " [", JoinStrings(dims, ", "), "]");
}

std::vector<Attribute> ExplainAnalyzeNode::output() const {
  // One stable synthetic column; minted once per node so repeated output()
  // calls agree.
  static const ExprId id = NextExprId();
  return {Attribute{"plan", DataType::String(), false, id, ""}};
}

std::string ExplainAnalyzeNode::NodeString() const { return "ExplainAnalyze"; }

}  // namespace sparkline
