#include "plan/plan_clone.h"

namespace sparkline {

ExprPtr RemapAttributeIds(const ExprPtr& e,
                          const std::map<ExprId, ExprId>& id_map) {
  return Expression::Transform(e, [&](const ExprPtr& n) -> ExprPtr {
    if (n->kind() == ExprKind::kAttributeRef) {
      Attribute a = static_cast<const AttributeRef&>(*n).attr();
      auto it = id_map.find(a.id);
      if (it == id_map.end()) return n;
      a.id = it->second;
      return AttributeRef::Make(std::move(a));
    }
    return n;
  });
}

namespace {

/// Remaps references and re-mints Alias ids within one node's expressions.
ExprPtr CloneExpr(const ExprPtr& e, std::map<ExprId, ExprId>* id_map) {
  return Expression::Transform(e, [&](const ExprPtr& n) -> ExprPtr {
    if (n->kind() == ExprKind::kAttributeRef) {
      Attribute a = static_cast<const AttributeRef&>(*n).attr();
      auto it = id_map->find(a.id);
      if (it == id_map->end()) return n;
      a.id = it->second;
      return AttributeRef::Make(std::move(a));
    }
    if (n->kind() == ExprKind::kAlias) {
      const auto& alias = static_cast<const Alias&>(*n);
      ExprId fresh = NextExprId();
      (*id_map)[alias.id()] = fresh;
      return ExprPtr(
          std::make_shared<Alias>(alias.child(), alias.name(), fresh));
    }
    return n;
  });
}

Result<LogicalPlanPtr> CloneRec(const LogicalPlanPtr& plan,
                                std::map<ExprId, ExprId>* id_map) {
  auto children = plan->children();
  for (auto& c : children) {
    SL_ASSIGN_OR_RETURN(c, CloneRec(c, id_map));
  }
  switch (plan->kind()) {
    case PlanKind::kScan: {
      const auto& scan = static_cast<const Scan&>(*plan);
      std::vector<Attribute> attrs = scan.output();
      for (auto& a : attrs) {
        ExprId fresh = NextExprId();
        (*id_map)[a.id] = fresh;
        a.id = fresh;
      }
      return LogicalPlanPtr(std::make_shared<Scan>(
          scan.table(), std::move(attrs), scan.column_indices()));
    }
    case PlanKind::kLocalRelation: {
      const auto& rel = static_cast<const LocalRelation&>(*plan);
      std::vector<Attribute> attrs = rel.output();
      for (auto& a : attrs) {
        ExprId fresh = NextExprId();
        (*id_map)[a.id] = fresh;
        a.id = fresh;
      }
      return LogicalPlanPtr(
          std::make_shared<LocalRelation>(std::move(attrs), rel.rows()));
    }
    default: {
      LogicalPlanPtr node = plan->WithNewChildren(std::move(children));
      auto exprs = node->expressions();
      bool changed = false;
      for (auto& e : exprs) {
        ExprPtr ne = CloneExpr(e, id_map);
        if (ne != e) {
          e = ne;
          changed = true;
        }
      }
      return changed ? node->WithNewExpressions(std::move(exprs)) : node;
    }
  }
}

}  // namespace

Result<LogicalPlanPtr> CloneWithFreshIds(const LogicalPlanPtr& plan,
                                         std::map<ExprId, ExprId>* id_map) {
  return CloneRec(plan, id_map);
}

}  // namespace sparkline
