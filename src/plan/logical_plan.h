// Logical query plans (Spark SQL's LogicalPlan analog).
//
// The paper's skyline operator is one node with one child (section 5.2);
// the node carries the DISTINCT / COMPLETE flags and the SkylineDimension
// expressions. All nodes are immutable and rewritten functionally.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/table.h"
#include "expr/expression.h"

namespace sparkline {

enum class PlanKind : uint8_t {
  kUnresolvedRelation,
  kScan,
  kLocalRelation,
  kSubqueryAlias,
  kProject,
  kFilter,
  kJoin,
  kAggregate,
  kSort,
  kLimit,
  kDistinct,
  kSkyline,
  kExplainAnalyze,
};

enum class JoinType : uint8_t { kInner, kLeftOuter, kCross, kLeftSemi, kLeftAnti };
const char* JoinTypeName(JoinType t);

class LogicalPlan;
using LogicalPlanPtr = std::shared_ptr<const LogicalPlan>;

/// \brief Base class of all logical operators.
class LogicalPlan : public std::enable_shared_from_this<LogicalPlan> {
 public:
  explicit LogicalPlan(PlanKind kind) : kind_(kind) {}
  virtual ~LogicalPlan() = default;

  PlanKind kind() const { return kind_; }

  virtual std::vector<LogicalPlanPtr> children() const = 0;
  virtual LogicalPlanPtr WithNewChildren(
      std::vector<LogicalPlanPtr> children) const = 0;

  /// The attributes this operator produces (valid once resolved()).
  virtual std::vector<Attribute> output() const = 0;

  /// Expressions held directly by this node, in a stable order.
  virtual std::vector<ExprPtr> expressions() const { return {}; }
  /// Rebuilds the node with rewritten expressions (same count/order as
  /// expressions()).
  virtual LogicalPlanPtr WithNewExpressions(std::vector<ExprPtr> exprs) const;

  /// True when this node and its subtree contain no unresolved names.
  virtual bool resolved() const;

  /// One-line description ("Filter (price < 100)").
  virtual std::string NodeString() const = 0;
  /// Indented multi-line plan tree.
  std::string TreeString() const;

  /// Attributes referenced by this node's expressions but not produced by
  /// any child (Catalyst's missingInput; drives ResolveMissingReferences).
  std::vector<Attribute> MissingInput() const;

  /// Bottom-up functional rewrite over the plan tree.
  static LogicalPlanPtr Transform(
      const LogicalPlanPtr& plan,
      const std::function<LogicalPlanPtr(const LogicalPlanPtr&)>& fn);
  /// Pre-order traversal.
  static void Foreach(const LogicalPlanPtr& plan,
                      const std::function<void(const LogicalPlanPtr&)>& fn);
  /// Rewrites every expression in every node of the tree bottom-up.
  static LogicalPlanPtr TransformExpressions(
      const LogicalPlanPtr& plan,
      const std::function<ExprPtr(const ExprPtr&)>& fn);

 private:
  PlanKind kind_;
};

/// \brief A table name before catalog resolution.
class UnresolvedRelation : public LogicalPlan {
 public:
  explicit UnresolvedRelation(std::string name)
      : LogicalPlan(PlanKind::kUnresolvedRelation), name_(std::move(name)) {}
  static LogicalPlanPtr Make(std::string name) {
    return std::make_shared<UnresolvedRelation>(std::move(name));
  }

  const std::string& name() const { return name_; }
  std::vector<LogicalPlanPtr> children() const override { return {}; }
  LogicalPlanPtr WithNewChildren(std::vector<LogicalPlanPtr>) const override {
    return shared_from_this();
  }
  std::vector<Attribute> output() const override { return {}; }
  bool resolved() const override { return false; }
  std::string NodeString() const override;

 private:
  std::string name_;
};

/// \brief A resolved scan over a catalog table. Each instantiation mints
/// fresh attribute ids, which keeps self-joins (e.g. the reference skyline
/// rewriting) unambiguous.
class Scan : public LogicalPlan {
 public:
  Scan(TablePtr table, std::vector<Attribute> attrs,
       std::vector<size_t> column_indices)
      : LogicalPlan(PlanKind::kScan),
        table_(std::move(table)),
        attrs_(std::move(attrs)),
        column_indices_(std::move(column_indices)) {}

  /// Creates a scan of all columns with freshly minted attribute ids.
  static LogicalPlanPtr Make(TablePtr table);

  const TablePtr& table() const { return table_; }
  /// Table column index backing each output attribute (column pruning keeps
  /// these in sync with attrs()).
  const std::vector<size_t>& column_indices() const { return column_indices_; }
  std::vector<LogicalPlanPtr> children() const override { return {}; }
  LogicalPlanPtr WithNewChildren(std::vector<LogicalPlanPtr>) const override {
    return shared_from_this();
  }
  std::vector<Attribute> output() const override { return attrs_; }
  std::string NodeString() const override;

 private:
  TablePtr table_;
  std::vector<Attribute> attrs_;
  std::vector<size_t> column_indices_;
};

/// \brief Inline rows (used by tests and the DataFrame API).
class LocalRelation : public LogicalPlan {
 public:
  LocalRelation(std::vector<Attribute> attrs, std::shared_ptr<std::vector<Row>> rows)
      : LogicalPlan(PlanKind::kLocalRelation),
        attrs_(std::move(attrs)),
        rows_(std::move(rows)) {}
  static LogicalPlanPtr Make(const Schema& schema, std::vector<Row> rows);

  const std::shared_ptr<std::vector<Row>>& rows() const { return rows_; }
  std::vector<LogicalPlanPtr> children() const override { return {}; }
  LogicalPlanPtr WithNewChildren(std::vector<LogicalPlanPtr>) const override {
    return shared_from_this();
  }
  std::vector<Attribute> output() const override { return attrs_; }
  std::string NodeString() const override;

 private:
  std::vector<Attribute> attrs_;
  std::shared_ptr<std::vector<Row>> rows_;
};

/// \brief Attaches an alias qualifier to a subtree ("FROM (...) AS t").
class SubqueryAlias : public LogicalPlan {
 public:
  SubqueryAlias(std::string alias, LogicalPlanPtr child)
      : LogicalPlan(PlanKind::kSubqueryAlias),
        alias_(std::move(alias)),
        child_(std::move(child)) {}
  static LogicalPlanPtr Make(std::string alias, LogicalPlanPtr child) {
    return std::make_shared<SubqueryAlias>(std::move(alias), std::move(child));
  }

  const std::string& alias() const { return alias_; }
  const LogicalPlanPtr& child() const { return child_; }
  std::vector<LogicalPlanPtr> children() const override { return {child_}; }
  LogicalPlanPtr WithNewChildren(std::vector<LogicalPlanPtr> c) const override {
    return std::make_shared<SubqueryAlias>(alias_, c[0]);
  }
  std::vector<Attribute> output() const override;
  std::string NodeString() const override;

 private:
  std::string alias_;
  LogicalPlanPtr child_;
};

/// \brief Projection; every item must be an Alias or AttributeRef once
/// resolved (the analyzer wraps computed items in Aliases).
class Project : public LogicalPlan {
 public:
  Project(std::vector<ExprPtr> list, LogicalPlanPtr child)
      : LogicalPlan(PlanKind::kProject),
        list_(std::move(list)),
        child_(std::move(child)) {}
  static LogicalPlanPtr Make(std::vector<ExprPtr> list, LogicalPlanPtr child) {
    return std::make_shared<Project>(std::move(list), std::move(child));
  }

  const std::vector<ExprPtr>& list() const { return list_; }
  const LogicalPlanPtr& child() const { return child_; }
  std::vector<LogicalPlanPtr> children() const override { return {child_}; }
  LogicalPlanPtr WithNewChildren(std::vector<LogicalPlanPtr> c) const override {
    return std::make_shared<Project>(list_, c[0]);
  }
  std::vector<ExprPtr> expressions() const override { return list_; }
  LogicalPlanPtr WithNewExpressions(std::vector<ExprPtr> exprs) const override {
    return std::make_shared<Project>(std::move(exprs), child_);
  }
  std::vector<Attribute> output() const override;
  bool resolved() const override;
  std::string NodeString() const override;

 private:
  std::vector<ExprPtr> list_;
  LogicalPlanPtr child_;
};

/// \brief Row filter (WHERE and HAVING both lower to Filter, as in Spark).
class Filter : public LogicalPlan {
 public:
  Filter(ExprPtr condition, LogicalPlanPtr child)
      : LogicalPlan(PlanKind::kFilter),
        condition_(std::move(condition)),
        child_(std::move(child)) {}
  static LogicalPlanPtr Make(ExprPtr condition, LogicalPlanPtr child) {
    return std::make_shared<Filter>(std::move(condition), std::move(child));
  }

  const ExprPtr& condition() const { return condition_; }
  const LogicalPlanPtr& child() const { return child_; }
  std::vector<LogicalPlanPtr> children() const override { return {child_}; }
  LogicalPlanPtr WithNewChildren(std::vector<LogicalPlanPtr> c) const override {
    return std::make_shared<Filter>(condition_, c[0]);
  }
  std::vector<ExprPtr> expressions() const override { return {condition_}; }
  LogicalPlanPtr WithNewExpressions(std::vector<ExprPtr> exprs) const override {
    return std::make_shared<Filter>(exprs[0], child_);
  }
  std::vector<Attribute> output() const override { return child_->output(); }
  std::string NodeString() const override;

 private:
  ExprPtr condition_;
  LogicalPlanPtr child_;
};

/// \brief Binary join. `using_columns` is kept for USING(...) joins until the
/// analyzer rewrites them into an equality condition + projection.
class Join : public LogicalPlan {
 public:
  Join(LogicalPlanPtr left, LogicalPlanPtr right, JoinType type,
       ExprPtr condition, std::vector<std::string> using_columns = {})
      : LogicalPlan(PlanKind::kJoin),
        left_(std::move(left)),
        right_(std::move(right)),
        type_(type),
        condition_(std::move(condition)),
        using_columns_(std::move(using_columns)) {}
  static LogicalPlanPtr Make(LogicalPlanPtr left, LogicalPlanPtr right,
                             JoinType type, ExprPtr condition,
                             std::vector<std::string> using_columns = {}) {
    return std::make_shared<Join>(std::move(left), std::move(right), type,
                                  std::move(condition),
                                  std::move(using_columns));
  }

  const LogicalPlanPtr& left() const { return left_; }
  const LogicalPlanPtr& right() const { return right_; }
  JoinType join_type() const { return type_; }
  const ExprPtr& condition() const { return condition_; }
  const std::vector<std::string>& using_columns() const {
    return using_columns_;
  }

  std::vector<LogicalPlanPtr> children() const override {
    return {left_, right_};
  }
  LogicalPlanPtr WithNewChildren(std::vector<LogicalPlanPtr> c) const override {
    return std::make_shared<Join>(c[0], c[1], type_, condition_,
                                  using_columns_);
  }
  std::vector<ExprPtr> expressions() const override {
    if (condition_ == nullptr) return {};
    return {condition_};
  }
  LogicalPlanPtr WithNewExpressions(std::vector<ExprPtr> exprs) const override {
    return std::make_shared<Join>(left_, right_, type_,
                                  exprs.empty() ? nullptr : exprs[0],
                                  using_columns_);
  }
  std::vector<Attribute> output() const override;
  bool resolved() const override;
  std::string NodeString() const override;

 private:
  LogicalPlanPtr left_;
  LogicalPlanPtr right_;
  JoinType type_;
  ExprPtr condition_;  // may be null (cross joins, unresolved USING)
  std::vector<std::string> using_columns_;
};

/// \brief Grouped aggregation; `agg_list` is the output list (group
/// expressions and/or aggregate expressions, each Alias/AttributeRef once
/// resolved).
class Aggregate : public LogicalPlan {
 public:
  Aggregate(std::vector<ExprPtr> group_list, std::vector<ExprPtr> agg_list,
            LogicalPlanPtr child)
      : LogicalPlan(PlanKind::kAggregate),
        group_list_(std::move(group_list)),
        agg_list_(std::move(agg_list)),
        child_(std::move(child)) {}
  static LogicalPlanPtr Make(std::vector<ExprPtr> group_list,
                             std::vector<ExprPtr> agg_list,
                             LogicalPlanPtr child) {
    return std::make_shared<Aggregate>(std::move(group_list),
                                       std::move(agg_list), std::move(child));
  }

  const std::vector<ExprPtr>& group_list() const { return group_list_; }
  const std::vector<ExprPtr>& agg_list() const { return agg_list_; }
  const LogicalPlanPtr& child() const { return child_; }

  std::vector<LogicalPlanPtr> children() const override { return {child_}; }
  LogicalPlanPtr WithNewChildren(std::vector<LogicalPlanPtr> c) const override {
    return std::make_shared<Aggregate>(group_list_, agg_list_, c[0]);
  }
  std::vector<ExprPtr> expressions() const override;
  LogicalPlanPtr WithNewExpressions(std::vector<ExprPtr> exprs) const override;
  std::vector<Attribute> output() const override;
  bool resolved() const override;
  std::string NodeString() const override;

 private:
  std::vector<ExprPtr> group_list_;
  std::vector<ExprPtr> agg_list_;
  LogicalPlanPtr child_;
};

/// \brief ORDER BY.
class Sort : public LogicalPlan {
 public:
  Sort(std::vector<SortOrder> orders, LogicalPlanPtr child)
      : LogicalPlan(PlanKind::kSort),
        orders_(std::move(orders)),
        child_(std::move(child)) {}
  static LogicalPlanPtr Make(std::vector<SortOrder> orders,
                             LogicalPlanPtr child) {
    return std::make_shared<Sort>(std::move(orders), std::move(child));
  }

  const std::vector<SortOrder>& orders() const { return orders_; }
  const LogicalPlanPtr& child() const { return child_; }
  std::vector<LogicalPlanPtr> children() const override { return {child_}; }
  LogicalPlanPtr WithNewChildren(std::vector<LogicalPlanPtr> c) const override {
    return std::make_shared<Sort>(orders_, c[0]);
  }
  std::vector<ExprPtr> expressions() const override;
  LogicalPlanPtr WithNewExpressions(std::vector<ExprPtr> exprs) const override;
  std::vector<Attribute> output() const override { return child_->output(); }
  std::string NodeString() const override;

 private:
  std::vector<SortOrder> orders_;
  LogicalPlanPtr child_;
};

/// \brief LIMIT n.
class Limit : public LogicalPlan {
 public:
  Limit(int64_t n, LogicalPlanPtr child)
      : LogicalPlan(PlanKind::kLimit), n_(n), child_(std::move(child)) {}
  static LogicalPlanPtr Make(int64_t n, LogicalPlanPtr child) {
    return std::make_shared<Limit>(n, std::move(child));
  }

  int64_t n() const { return n_; }
  const LogicalPlanPtr& child() const { return child_; }
  std::vector<LogicalPlanPtr> children() const override { return {child_}; }
  LogicalPlanPtr WithNewChildren(std::vector<LogicalPlanPtr> c) const override {
    return std::make_shared<Limit>(n_, c[0]);
  }
  std::vector<Attribute> output() const override { return child_->output(); }
  std::string NodeString() const override;

 private:
  int64_t n_;
  LogicalPlanPtr child_;
};

/// \brief SELECT DISTINCT (replaced by an Aggregate during optimization).
class Distinct : public LogicalPlan {
 public:
  explicit Distinct(LogicalPlanPtr child)
      : LogicalPlan(PlanKind::kDistinct), child_(std::move(child)) {}
  static LogicalPlanPtr Make(LogicalPlanPtr child) {
    return std::make_shared<Distinct>(std::move(child));
  }

  const LogicalPlanPtr& child() const { return child_; }
  std::vector<LogicalPlanPtr> children() const override { return {child_}; }
  LogicalPlanPtr WithNewChildren(std::vector<LogicalPlanPtr> c) const override {
    return std::make_shared<Distinct>(c[0]);
  }
  std::vector<Attribute> output() const override { return child_->output(); }
  std::string NodeString() const override;

 private:
  LogicalPlanPtr child_;
};

/// \brief The skyline operator node (paper section 5.2): one child, the
/// DISTINCT / COMPLETE flags, and the skyline dimensions. Output schema
/// equals the child's.
class SkylineNode : public LogicalPlan {
 public:
  SkylineNode(bool distinct, bool complete, std::vector<ExprPtr> dimensions,
              LogicalPlanPtr child)
      : LogicalPlan(PlanKind::kSkyline),
        distinct_(distinct),
        complete_(complete),
        dimensions_(std::move(dimensions)),
        child_(std::move(child)) {}
  static LogicalPlanPtr Make(bool distinct, bool complete,
                             std::vector<ExprPtr> dimensions,
                             LogicalPlanPtr child) {
    return std::make_shared<SkylineNode>(distinct, complete,
                                         std::move(dimensions),
                                         std::move(child));
  }

  bool distinct() const { return distinct_; }
  bool complete() const { return complete_; }
  /// Each element is a SkylineDimension expression.
  const std::vector<ExprPtr>& dimensions() const { return dimensions_; }
  const LogicalPlanPtr& child() const { return child_; }

  std::vector<LogicalPlanPtr> children() const override { return {child_}; }
  LogicalPlanPtr WithNewChildren(std::vector<LogicalPlanPtr> c) const override {
    return std::make_shared<SkylineNode>(distinct_, complete_, dimensions_,
                                         c[0]);
  }
  std::vector<ExprPtr> expressions() const override { return dimensions_; }
  LogicalPlanPtr WithNewExpressions(std::vector<ExprPtr> exprs) const override {
    return std::make_shared<SkylineNode>(distinct_, complete_,
                                         std::move(exprs), child_);
  }
  std::vector<Attribute> output() const override { return child_->output(); }
  std::string NodeString() const override;

 private:
  bool distinct_;
  bool complete_;
  std::vector<ExprPtr> dimensions_;
  LogicalPlanPtr child_;
};

/// \brief EXPLAIN ANALYZE <stmt>: executes the child statement and returns
/// one row with one string column — the physical plan tree annotated with
/// the measured per-operator critical-path times, rows, matrix builds /
/// reuses and SFS skips. Never cache-served (fingerprinting marks it
/// uncacheable): the measurement IS the point.
class ExplainAnalyzeNode : public LogicalPlan {
 public:
  explicit ExplainAnalyzeNode(LogicalPlanPtr child)
      : LogicalPlan(PlanKind::kExplainAnalyze), child_(std::move(child)) {}
  static LogicalPlanPtr Make(LogicalPlanPtr child) {
    return std::make_shared<ExplainAnalyzeNode>(std::move(child));
  }

  const LogicalPlanPtr& child() const { return child_; }
  std::vector<LogicalPlanPtr> children() const override { return {child_}; }
  LogicalPlanPtr WithNewChildren(std::vector<LogicalPlanPtr> c) const override {
    return std::make_shared<ExplainAnalyzeNode>(c[0]);
  }
  std::vector<Attribute> output() const override;
  std::string NodeString() const override;

 private:
  LogicalPlanPtr child_;
};

}  // namespace sparkline
