#include "catalog/table.h"

#include "common/string_util.h"

namespace sparkline {

Status Table::AppendRow(Row row) {
  if (row.size() != schema_.num_fields()) {
    return Status::Invalid(StrCat("row arity ", row.size(),
                                  " does not match schema arity ",
                                  schema_.num_fields(), " of table ", name_));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const Field& f = schema_.field(i);
    if (row[i].is_null()) {
      if (!f.nullable) {
        return Status::Invalid(
            StrCat("NULL in non-nullable column ", f.name, " of ", name_));
      }
      continue;
    }
    if (row[i].type() != f.type) {
      // Allow implicit numeric widening on insert.
      if (f.type.is_numeric() && row[i].type().is_numeric()) {
        SL_ASSIGN_OR_RETURN(row[i], row[i].CastTo(f.type));
        continue;
      }
      return Status::Invalid(StrCat("type mismatch in column ", f.name, " of ",
                                    name_, ": expected ", f.type.ToString(),
                                    ", got ", row[i].type().ToString()));
    }
  }
  zone_map_.Observe(row);
  rows_.push_back(std::move(row));
  return Status::OK();
}

int64_t Table::EstimatedBytes() const {
  int64_t total = 0;
  for (const auto& r : rows_) total += EstimateRowBytes(r);
  return total;
}

}  // namespace sparkline
