#include "catalog/catalog.h"

#include <atomic>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace sparkline {

namespace {
// Version values are drawn from one process-wide counter, not a per-catalog
// one: a value is then never reused by any catalog, so a stamp on a Table
// snapshot identifies that immutable snapshot globally — even when the same
// TablePtr is registered into several catalogs (re-stamping can only turn
// cache hits into misses, never fabricate a colliding key).
std::atomic<uint64_t> g_version_counter{0};

void CountWrite(WriteEvent::Kind kind) {
  using metrics::Counter;
  using metrics::MetricsRegistry;
  static Counter* reg = MetricsRegistry::Global().GetCounter(
      "sparkline_catalog_writes_total", {{"kind", "register"}});
  static Counter* rep = MetricsRegistry::Global().GetCounter(
      "sparkline_catalog_writes_total", {{"kind", "replace"}});
  static Counter* ins = MetricsRegistry::Global().GetCounter(
      "sparkline_catalog_writes_total", {{"kind", "insert"}});
  static Counter* drp = MetricsRegistry::Global().GetCounter(
      "sparkline_catalog_writes_total", {{"kind", "drop"}});
  switch (kind) {
    case WriteEvent::Kind::kRegister:
      reg->Increment();
      break;
    case WriteEvent::Kind::kReplace:
      rep->Increment();
      break;
    case WriteEvent::Kind::kInsert:
      ins->Increment();
      break;
    case WriteEvent::Kind::kDrop:
      drp->Increment();
      break;
  }
}
}  // namespace

Catalog::~Catalog() {
  // Move the thread handle out under the lock, join outside it: joining
  // while holding notify_mu_ would deadlock against the notifier's own
  // re-acquisitions, and touching notifier_ unlocked would be an unguarded
  // access to a notify_mu_-guarded field.
  std::thread notifier;
  {
    sl::MutexLock lock(&notify_mu_);
    stop_ = true;
    notifier = std::move(notifier_);
  }
  notify_cv_.NotifyAll();
  if (notifier.joinable()) notifier.join();
}

uint64_t Catalog::BumpVersionLocked(const std::string& key) {
  return versions_[key] = g_version_counter.fetch_add(1) + 1;
}

uint64_t Catalog::VersionBeforeLocked(const std::string& key) const {
  auto it = versions_.find(key);
  return it == versions_.end() ? 0 : it->second;
}

void Catalog::EnqueueWrite(WriteEvent event) {
  // Every committed write passes through here exactly once (listener-free
  // catalogs included), so this is the single counting point.
  CountWrite(event.kind);
  {
    // No listeners -> nothing to deliver; skip the queue entirely so
    // listener-free catalogs never grow one.
    sl::MutexLock lock(&listeners_mu_);
    if (listeners_.empty()) return;
  }
  {
    sl::MutexLock lock(&notify_mu_);
    queue_.push_back(std::move(event));
  }
  notify_cv_.NotifyAll();
}

void Catalog::NotifierLoop() {
  for (;;) {
    WriteEvent event;
    {
      sl::MutexLock lock(&notify_mu_);
      while (!(stop_ || !queue_.empty())) notify_cv_.Wait(&notify_mu_);
      // Drain the remaining queue even when stopping: a listener-visible
      // write has a version already published, so dropping its event would
      // leave caches permanently stale in the destructor race window.
      if (queue_.empty()) return;
      event = std::move(queue_.front());
      queue_.pop_front();
      dispatching_ = true;
    }
    std::vector<WriteListener> listeners;
    {
      sl::MutexLock lock(&listeners_mu_);
      listeners = listeners_;
    }
    static metrics::Histogram* dispatch_us =
        metrics::MetricsRegistry::Global().GetHistogram(
            "sparkline_catalog_listener_dispatch_us");
    StopWatch dispatch;
    for (const auto& listener : listeners) listener(event);
    dispatch_us->Observe(dispatch.ElapsedNanos() / 1000);
    {
      sl::MutexLock lock(&notify_mu_);
      dispatching_ = false;
    }
    notify_cv_.NotifyAll();
  }
}

void Catalog::DrainWrites() {
  sl::MutexLock lock(&notify_mu_);
  while (!(queue_.empty() && !dispatching_)) notify_cv_.Wait(&notify_mu_);
}

Status Catalog::RegisterTable(TablePtr table) {
  std::string key = ToLower(table->name());
  WriteEvent event;
  event.kind = WriteEvent::Kind::kRegister;
  event.table = key;
  {
    sl::MutexLock lock(&mu_);
    if (tables_.count(key) > 0) {
      return Status::AlreadyExists(StrCat("table ", table->name()));
    }
    event.old_version = VersionBeforeLocked(key);
    event.new_version = BumpVersionLocked(key);
    table->set_version(event.new_version);
    tables_[key] = std::move(table);
    EnqueueWrite(std::move(event));
  }
  return Status::OK();
}

void Catalog::RegisterOrReplaceTable(TablePtr table) {
  std::string key = ToLower(table->name());
  WriteEvent event;
  event.kind = WriteEvent::Kind::kReplace;
  event.table = key;
  {
    sl::MutexLock lock(&mu_);
    event.old_version = VersionBeforeLocked(key);
    event.new_version = BumpVersionLocked(key);
    table->set_version(event.new_version);
    tables_[key] = std::move(table);
    EnqueueWrite(std::move(event));
  }
}

Result<TablePtr> Catalog::GetTable(const std::string& name) const {
  sl::SharedLock lock(&mu_);
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound(StrCat("table ", name, " not found in catalog"));
  }
  return it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  sl::SharedLock lock(&mu_);
  return tables_.count(ToLower(name)) > 0;
}

Status Catalog::DropTable(const std::string& name) {
  std::string key = ToLower(name);
  WriteEvent event;
  event.kind = WriteEvent::Kind::kDrop;
  event.table = key;
  {
    sl::MutexLock lock(&mu_);
    auto it = tables_.find(key);
    if (it == tables_.end()) {
      return Status::NotFound(StrCat("table ", name, " not found in catalog"));
    }
    tables_.erase(it);
    event.old_version = VersionBeforeLocked(key);
    event.new_version = BumpVersionLocked(key);
    EnqueueWrite(std::move(event));
  }
  return Status::OK();
}

Status Catalog::InsertInto(const std::string& name,
                           const std::vector<Row>& rows) {
  // Injected before the snapshot is taken: a failed write publishes nothing
  // and bumps no version, so readers and the result cache never observe a
  // half-applied insert.
  SL_FAILPOINT("catalog.write");
  std::string key = ToLower(name);
  for (;;) {
    // Snapshot under a shared lock, build the successor unlocked (the copy
    // and validation are O(table), far too slow to hold readers out), then
    // publish only if no other writer got there first.
    TablePtr old;
    {
      sl::SharedLock lock(&mu_);
      auto it = tables_.find(key);
      if (it == tables_.end()) {
        return Status::NotFound(
            StrCat("table ", name, " not found in catalog"));
      }
      old = it->second;
    }
    auto next = std::make_shared<Table>(old->name(), old->schema());
    next->constraints() = old->constraints();
    // Bulk copy + zone-map transplant: the predecessor's summaries stay
    // exact for the copied rows, so only the inserted rows are observed
    // below — an incremental min/max merge, not a rebuild.
    next->CopyRowsFrom(*old);
    next->Reserve(old->num_rows() + rows.size());
    for (const Row& row : rows) SL_RETURN_NOT_OK(next->AppendRow(row));
    WriteEvent event;
    event.kind = WriteEvent::Kind::kInsert;
    event.table = key;
    event.rows = std::make_shared<const std::vector<Row>>(rows);
    {
      sl::MutexLock lock(&mu_);
      auto it = tables_.find(key);
      if (it == tables_.end()) {
        return Status::NotFound(
            StrCat("table ", name, " not found in catalog"));
      }
      if (it->second != old) continue;  // lost a race: rebuild on the winner
      event.old_version = VersionBeforeLocked(key);
      event.new_version = BumpVersionLocked(key);
      next->set_version(event.new_version);
      it->second = std::move(next);
      EnqueueWrite(std::move(event));
    }
    return Status::OK();
  }
}

uint64_t Catalog::TableVersion(const std::string& name) const {
  sl::SharedLock lock(&mu_);
  auto it = versions_.find(ToLower(name));
  return it == versions_.end() ? 0 : it->second;
}

std::vector<std::string> Catalog::ListTables() const {
  sl::SharedLock lock(&mu_);
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [k, v] : tables_) out.push_back(v->name());
  return out;
}

void Catalog::AddWriteListener(WriteListener listener) {
  {
    sl::MutexLock lock(&listeners_mu_);
    listeners_.push_back(std::move(listener));
  }
  sl::MutexLock lock(&notify_mu_);
  if (!notifier_started_) {
    notifier_started_ = true;
    notifier_ = std::thread([this] { NotifierLoop(); });
  }
}

}  // namespace sparkline
