#include "catalog/catalog.h"

#include "common/string_util.h"

namespace sparkline {

Status Catalog::RegisterTable(TablePtr table) {
  std::string key = ToLower(table->name());
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists(StrCat("table ", table->name()));
  }
  tables_[key] = std::move(table);
  return Status::OK();
}

void Catalog::RegisterOrReplaceTable(TablePtr table) {
  tables_[ToLower(table->name())] = std::move(table);
}

Result<TablePtr> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound(StrCat("table ", name, " not found in catalog"));
  }
  return it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(ToLower(name)) > 0;
}

Status Catalog::DropTable(const std::string& name) {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound(StrCat("table ", name, " not found in catalog"));
  }
  tables_.erase(it);
  return Status::OK();
}

std::vector<std::string> Catalog::ListTables() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [k, v] : tables_) out.push_back(v->name());
  return out;
}

}  // namespace sparkline
