#include "catalog/catalog.h"

#include <atomic>

#include "common/failpoint.h"
#include "common/string_util.h"

namespace sparkline {

namespace {
// Version values are drawn from one process-wide counter, not a per-catalog
// one: a value is then never reused by any catalog, so a stamp on a Table
// snapshot identifies that immutable snapshot globally — even when the same
// TablePtr is registered into several catalogs (re-stamping can only turn
// cache hits into misses, never fabricate a colliding key).
std::atomic<uint64_t> g_version_counter{0};
}  // namespace

uint64_t Catalog::BumpVersionLocked(const std::string& key) {
  return versions_[key] = g_version_counter.fetch_add(1) + 1;
}

void Catalog::NotifyWrite(const std::string& key) {
  std::vector<WriteListener> listeners;
  {
    std::lock_guard<std::mutex> lock(listeners_mu_);
    listeners = listeners_;
  }
  for (const auto& listener : listeners) listener(key);
}

Status Catalog::RegisterTable(TablePtr table) {
  std::string key = ToLower(table->name());
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (tables_.count(key) > 0) {
      return Status::AlreadyExists(StrCat("table ", table->name()));
    }
    table->set_version(BumpVersionLocked(key));
    tables_[key] = std::move(table);
  }
  NotifyWrite(key);
  return Status::OK();
}

void Catalog::RegisterOrReplaceTable(TablePtr table) {
  std::string key = ToLower(table->name());
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    table->set_version(BumpVersionLocked(key));
    tables_[key] = std::move(table);
  }
  NotifyWrite(key);
}

Result<TablePtr> Catalog::GetTable(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound(StrCat("table ", name, " not found in catalog"));
  }
  return it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return tables_.count(ToLower(name)) > 0;
}

Status Catalog::DropTable(const std::string& name) {
  std::string key = ToLower(name);
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto it = tables_.find(key);
    if (it == tables_.end()) {
      return Status::NotFound(StrCat("table ", name, " not found in catalog"));
    }
    tables_.erase(it);
    BumpVersionLocked(key);
  }
  NotifyWrite(key);
  return Status::OK();
}

Status Catalog::InsertInto(const std::string& name,
                           const std::vector<Row>& rows) {
  // Injected before the snapshot is taken: a failed write publishes nothing
  // and bumps no version, so readers and the result cache never observe a
  // half-applied insert.
  SL_FAILPOINT("catalog.write");
  std::string key = ToLower(name);
  for (;;) {
    // Snapshot under a shared lock, build the successor unlocked (the copy
    // and validation are O(table), far too slow to hold readers out), then
    // publish only if no other writer got there first.
    TablePtr old;
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      auto it = tables_.find(key);
      if (it == tables_.end()) {
        return Status::NotFound(
            StrCat("table ", name, " not found in catalog"));
      }
      old = it->second;
    }
    auto next = std::make_shared<Table>(old->name(), old->schema());
    next->constraints() = old->constraints();
    next->Reserve(old->num_rows() + rows.size());
    for (const Row& row : old->rows()) next->AppendRowUnchecked(row);
    for (const Row& row : rows) SL_RETURN_NOT_OK(next->AppendRow(row));
    {
      std::unique_lock<std::shared_mutex> lock(mu_);
      auto it = tables_.find(key);
      if (it == tables_.end()) {
        return Status::NotFound(
            StrCat("table ", name, " not found in catalog"));
      }
      if (it->second != old) continue;  // lost a race: rebuild on the winner
      next->set_version(BumpVersionLocked(key));
      it->second = std::move(next);
    }
    NotifyWrite(key);
    return Status::OK();
  }
}

uint64_t Catalog::TableVersion(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = versions_.find(ToLower(name));
  return it == versions_.end() ? 0 : it->second;
}

std::vector<std::string> Catalog::ListTables() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [k, v] : tables_) out.push_back(v->name());
  return out;
}

void Catalog::AddWriteListener(WriteListener listener) {
  std::lock_guard<std::mutex> lock(listeners_mu_);
  listeners_.push_back(std::move(listener));
}

}  // namespace sparkline
