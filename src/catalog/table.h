// In-memory tables with declared constraints.
//
// Constraints (primary keys / foreign keys) are not enforced on insert; they
// are *metadata* consumed by the optimizer, in particular by the
// push-skyline-through-non-reductive-join rule (paper section 5.4, citing
// Carey & Kossmann for non-reductiveness).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "catalog/zone_map.h"
#include "common/result.h"
#include "types/schema.h"
#include "types/value.h"

namespace sparkline {

/// \brief Declarative constraint metadata of a table.
struct TableConstraints {
  /// Columns forming a unique, non-null key (empty if undeclared).
  std::vector<std::string> primary_key;

  struct ForeignKey {
    std::vector<std::string> columns;      ///< referencing columns
    std::string ref_table;                 ///< referenced table name
    std::vector<std::string> ref_columns;  ///< referenced (unique) columns
    /// True if the referencing columns are non-null, i.e. every row is
    /// guaranteed a join partner (this is what makes a join non-reductive).
    bool referencing_not_null = true;
  };
  std::vector<ForeignKey> foreign_keys;
};

/// \brief A named, row-oriented, in-memory table.
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        zone_map_(schema_.num_fields()) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  size_t num_rows() const { return rows_.size(); }

  TableConstraints& constraints() { return constraints_; }
  const TableConstraints& constraints() const { return constraints_; }

  /// Catalog version stamped when this snapshot was (re)registered /
  /// produced by a copy-on-write insert; 0 before registration. Plan
  /// fingerprints read the version of the snapshot a Scan actually holds,
  /// so cached results always describe the rows that were executed, even
  /// if the catalog has moved on since analysis.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }
  void set_version(uint64_t v) {
    version_.store(v, std::memory_order_release);
  }

  /// Appends a row after checking arity and per-column type/nullability.
  Status AppendRow(Row row);

  /// Appends without validation (used by trusted generators).
  void AppendRowUnchecked(Row row) {
    zone_map_.Observe(row);
    rows_.push_back(std::move(row));
  }

  /// Bulk-copies another table's rows AND transplants its zone map — the
  /// copy-on-write fast path of Catalog::InsertInto. The predecessor's
  /// summaries are already exact for its rows, so the successor's zone map
  /// is maintained incrementally (only newly appended rows get observed)
  /// instead of being rebuilt O(rows x columns).
  ///
  /// \pre this table is empty and shares `other`'s schema.
  void CopyRowsFrom(const Table& other) {
    rows_ = other.rows_;
    zone_map_ = other.zone_map_;
  }

  void Reserve(size_t n) { rows_.reserve(n); }

  /// Per-column min/max/null-count summaries over all rows, maintained on
  /// every append. Consumed by the scan to seed per-partition zone maps and
  /// by tests as the incremental-maintenance ground truth.
  const ZoneMap& zone_map() const { return zone_map_; }

  /// Approximate bytes held by the table's rows.
  int64_t EstimatedBytes() const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  TableConstraints constraints_;
  ZoneMap zone_map_;
  std::atomic<uint64_t> version_{0};
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace sparkline
