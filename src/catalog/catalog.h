// The catalog maps table names to Table objects (paper Figure 2: the
// Analyzer resolves identifiers against the Catalog).
//
// Thread safety: all methods may be called concurrently. Lookups take a
// shared (reader) lock; DDL and inserts take an exclusive (writer) lock.
// Tables themselves are treated as immutable once registered — InsertInto
// replaces the registered Table with a copy-on-write successor, so plans
// holding a TablePtr snapshot keep reading a consistent row set while
// concurrent writers publish new versions.
//
// Versioning: every write that touches a name (register, replace, insert,
// drop) draws a fresh value from a process-wide monotonic counter, records
// it as that name's version, and stamps it on the registered Table
// snapshot. Versions survive drops, so drop + recreate never reuses a
// version, and the global counter means a stamp identifies one immutable
// snapshot even across catalogs. The serve layer folds snapshot versions
// into plan fingerprints and subscribes to write events to invalidate
// cached results (docs/ARCHITECTURE.md: invalidation protocol).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "catalog/table.h"
#include "common/result.h"

namespace sparkline {

/// \brief Case-insensitive, thread-safe table registry with versions.
class Catalog {
 public:
  /// Called (outside the catalog lock) after every write with the
  /// lower-cased name of the table that changed.
  using WriteListener = std::function<void(const std::string&)>;

  /// Registers a table; fails if the name is taken.
  Status RegisterTable(TablePtr table);

  /// Registers or replaces.
  void RegisterOrReplaceTable(TablePtr table);

  Result<TablePtr> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;
  Status DropTable(const std::string& name);

  /// Appends rows to a registered table via copy-on-write: validates and
  /// builds a successor Table, then atomically replaces the registered
  /// pointer and bumps the version. Readers holding the old TablePtr are
  /// unaffected.
  Status InsertInto(const std::string& name, const std::vector<Row>& rows);

  /// Monotonic version of a table name; 0 if the name was never written.
  /// Dropped names keep (and continue to advance) their version, so a
  /// fingerprint taken before a drop can never match one taken after a
  /// recreate.
  uint64_t TableVersion(const std::string& name) const;

  std::vector<std::string> ListTables() const;

  /// Registers a write listener (invalidation hook for the result cache).
  /// Listeners must not call back into this catalog's write methods.
  void AddWriteListener(WriteListener listener);

 private:
  /// Bumps and returns the version of `key` (callers hold the write lock).
  uint64_t BumpVersionLocked(const std::string& key);
  void NotifyWrite(const std::string& key);

  mutable std::shared_mutex mu_;
  std::map<std::string, TablePtr> tables_;  // keyed by lower-cased name
  std::map<std::string, uint64_t> versions_;

  mutable std::mutex listeners_mu_;
  std::vector<WriteListener> listeners_;
};

}  // namespace sparkline
