// The catalog maps table names to Table objects (paper Figure 2: the
// Analyzer resolves identifiers against the Catalog).
//
// Thread safety: all methods may be called concurrently. Lookups take a
// shared (reader) lock; DDL and inserts take an exclusive (writer) lock.
// Tables themselves are treated as immutable once registered — InsertInto
// replaces the registered Table with a copy-on-write successor, so plans
// holding a TablePtr snapshot keep reading a consistent row set while
// concurrent writers publish new versions.
//
// Versioning: every write that touches a name (register, replace, insert,
// drop) draws a fresh value from a process-wide monotonic counter, records
// it as that name's version, and stamps it on the registered Table
// snapshot. Versions survive drops, so drop + recreate never reuses a
// version, and the global counter means a stamp identifies one immutable
// snapshot even across catalogs. The serve layer folds snapshot versions
// into plan fingerprints and subscribes to write events to invalidate or
// delta-maintain cached results (docs/ARCHITECTURE.md: invalidation
// protocol, incremental maintenance).
//
// Write notification: events are *enqueued under the write lock* — so the
// queue order equals the version order, per table and globally — but
// *dispatched on a dedicated notifier thread*, so a slow listener (delta
// maintenance classifying a large batch, say) never sits on a writer's
// critical path and never blocks concurrent writers. Correctness does not
// depend on delivery timing: table versions inside plan fingerprints make
// stale cache hits impossible even if a notification is arbitrarily late.
// DrainWrites() flushes the queue for tests and deterministic handoffs.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "catalog/table.h"
#include "common/result.h"
#include "common/thread_safety.h"

namespace sparkline {

/// \brief One catalog write, as observed by write listeners. Versions are
/// the written name's version before and after the write; `rows` carries
/// the inserted rows for kInsert (shared, immutable — the same snapshot the
/// successor table appended) and is null for every other kind.
struct WriteEvent {
  enum class Kind : uint8_t { kRegister, kReplace, kInsert, kDrop };

  Kind kind = Kind::kInsert;
  std::string table;  ///< lower-cased catalog key
  uint64_t old_version = 0;  ///< 0 when the name was never written before
  uint64_t new_version = 0;
  std::shared_ptr<const std::vector<Row>> rows;  ///< kInsert only
};

/// \brief Case-insensitive, thread-safe table registry with versions.
class Catalog {
 public:
  /// Called on the catalog's notifier thread — never on the writer's
  /// thread, never under any catalog lock — once per write, in version
  /// order. Listeners must not call back into this catalog's write methods
  /// (a write enqueued from the notifier thread would deadlock
  /// DrainWrites-style waits and can livelock the queue).
  using WriteListener = std::function<void(const WriteEvent&)>;

  Catalog() = default;
  ~Catalog();

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers a table; fails if the name is taken.
  Status RegisterTable(TablePtr table);

  /// Registers or replaces.
  void RegisterOrReplaceTable(TablePtr table);

  Result<TablePtr> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;
  Status DropTable(const std::string& name);

  /// Appends rows to a registered table via copy-on-write: validates and
  /// builds a successor Table, then atomically replaces the registered
  /// pointer and bumps the version. Readers holding the old TablePtr are
  /// unaffected.
  Status InsertInto(const std::string& name, const std::vector<Row>& rows);

  /// Monotonic version of a table name; 0 if the name was never written.
  /// Dropped names keep (and continue to advance) their version, so a
  /// fingerprint taken before a drop can never match one taken after a
  /// recreate.
  uint64_t TableVersion(const std::string& name) const;

  std::vector<std::string> ListTables() const;

  /// Registers a write listener (cache invalidation / delta maintenance).
  void AddWriteListener(WriteListener listener);

  /// Blocks until every write event enqueued before this call has been
  /// dispatched to all listeners. Tests use it to observe the post-write
  /// cache state deterministically; correctness never requires it.
  void DrainWrites();

 private:
  /// Bumps and returns the version of `key` (callers hold the write lock).
  uint64_t BumpVersionLocked(const std::string& key) SL_REQUIRES(mu_);
  /// Version of `key` before a write, 0 if never written (write lock held).
  uint64_t VersionBeforeLocked(const std::string& key) const
      SL_REQUIRES_SHARED(mu_);
  /// Enqueues the event for the notifier thread. Called with the write lock
  /// held so queue order equals version order; the enqueue itself is O(1)
  /// plus one mutex, so writers are never blocked behind listener work.
  void EnqueueWrite(WriteEvent event) SL_REQUIRES(mu_)
      SL_EXCLUDES(listeners_mu_, notify_mu_);
  void NotifierLoop() SL_EXCLUDES(notify_mu_, listeners_mu_);

  mutable sl::SharedMutex mu_;
  // keyed by lower-cased name
  std::map<std::string, TablePtr> tables_ SL_GUARDED_BY(mu_);
  std::map<std::string, uint64_t> versions_ SL_GUARDED_BY(mu_);

  mutable sl::Mutex listeners_mu_;
  std::vector<WriteListener> listeners_ SL_GUARDED_BY(listeners_mu_);

  // Notifier queue. notify_mu_ orders enqueue/dequeue; dispatching_ covers
  // the window where an event has left the queue but its listeners are
  // still running (DrainWrites must wait that out too).
  sl::Mutex notify_mu_;
  sl::CondVar notify_cv_;
  std::deque<WriteEvent> queue_ SL_GUARDED_BY(notify_mu_);
  bool dispatching_ SL_GUARDED_BY(notify_mu_) = false;
  bool stop_ SL_GUARDED_BY(notify_mu_) = false;
  bool notifier_started_ SL_GUARDED_BY(notify_mu_) = false;
  std::thread notifier_ SL_GUARDED_BY(notify_mu_);
};

}  // namespace sparkline
