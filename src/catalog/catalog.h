// The catalog maps table names to Table objects (paper Figure 2: the
// Analyzer resolves identifiers against the Catalog).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "catalog/table.h"
#include "common/result.h"

namespace sparkline {

/// \brief Case-insensitive table registry.
class Catalog {
 public:
  /// Registers a table; fails if the name is taken.
  Status RegisterTable(TablePtr table);

  /// Registers or replaces.
  void RegisterOrReplaceTable(TablePtr table);

  Result<TablePtr> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;
  Status DropTable(const std::string& name);

  std::vector<std::string> ListTables() const;

 private:
  std::map<std::string, TablePtr> tables_;  // keyed by lower-cased name
};

}  // namespace sparkline
