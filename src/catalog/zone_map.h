// Zone maps: per-column min/max + null-count summaries, the data-skipping
// metadata of the scan path (ROADMAP item 3, after "Extensible Data
// Skipping" in PAPERS.md).
//
// A zone map describes a *set* of rows (a whole table, or one scan
// partition) with one ColumnZone per column. The summaries are maintained
// incrementally: Table observes every appended row, and Catalog::InsertInto
// transplants the predecessor's map into the copy-on-write successor and
// observes only the inserted rows — a min/max merge, never a rebuild.
//
// Soundness mirrors DominanceMatrix::TryBuild: a column is poisoned
// (numeric = false) the moment it sees a non-numeric value, a NaN, or a
// BIGINT whose magnitude exceeds 2^53 — exactly the shapes whose double
// projection could flip a comparison. Consumers (zone-map partition
// skipping in LocalSkylineExec) must treat a poisoned column as "no
// information".
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "types/value.h"

namespace sparkline {

/// \brief Min/max/null-count summary of one column over a set of rows.
struct ColumnZone {
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  int64_t null_count = 0;
  /// False once the column has seen any value whose double image is not
  /// order-exact (non-numeric, NaN, BIGINT beyond 2^53). A poisoned zone
  /// carries no usable range.
  bool numeric = true;

  /// True when [min, max] is a trustworthy bound over every non-null value
  /// the zone has observed (at least one value seen, column not poisoned).
  bool has_range() const { return numeric && min <= max; }

  void Observe(const Value& v) {
    if (v.is_null()) {
      ++null_count;
      return;
    }
    if (!numeric) return;
    if (!v.type().is_numeric()) {
      numeric = false;
      return;
    }
    if (v.type().id() == TypeId::kInt64) {
      const int64_t i = v.int64_value();
      constexpr int64_t kMaxExact = int64_t{1} << 53;
      if (i > kMaxExact || i < -kMaxExact) {
        numeric = false;
        return;
      }
    }
    const double d = v.ToDouble();
    if (std::isnan(d)) {
      numeric = false;
      return;
    }
    min = std::min(min, d);
    max = std::max(max, d);
  }

  /// Min/max merge with another zone over disjoint rows.
  void MergeFrom(const ColumnZone& other) {
    null_count += other.null_count;
    if (!other.numeric) {
      numeric = false;
      return;
    }
    if (!numeric) return;
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
};

/// \brief Per-column zones over one set of rows. A default-constructed map
/// (no columns) means "no metadata" and is what every consumer must expect
/// when the producing operator could not (or chose not to) build one.
struct ZoneMap {
  std::vector<ColumnZone> columns;
  int64_t num_rows = 0;

  ZoneMap() = default;
  explicit ZoneMap(size_t num_columns) : columns(num_columns) {}

  bool valid() const { return !columns.empty(); }

  /// Folds one row in. Rows narrower than the map (should not happen for
  /// schema-validated appends) leave the missing columns untouched.
  void Observe(const Row& row) {
    ++num_rows;
    const size_t n = std::min(columns.size(), row.size());
    for (size_t i = 0; i < n; ++i) columns[i].Observe(row[i]);
  }

  /// Merge with a map over disjoint rows of the same schema.
  void MergeFrom(const ZoneMap& other) {
    if (columns.size() != other.columns.size()) {
      // Shape mismatch: no sound merge exists; poison everything.
      for (auto& c : columns) c.numeric = false;
      num_rows += other.num_rows;
      return;
    }
    num_rows += other.num_rows;
    for (size_t i = 0; i < columns.size(); ++i) {
      columns[i].MergeFrom(other.columns[i]);
    }
  }

  /// Ground-truth rebuild, for tests pinning that incremental maintenance
  /// and a from-scratch scan agree.
  static ZoneMap Build(const std::vector<Row>& rows, size_t num_columns) {
    ZoneMap zm(num_columns);
    for (const Row& r : rows) zm.Observe(r);
    return zm;
  }
};

}  // namespace sparkline
