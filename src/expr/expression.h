// The expression tree shared by the parser, analyzer, optimizer and executor.
//
// Like Spark's Catalyst, resolved column references carry globally unique
// expression ids (ExprId). Ids are what make self-joins (the reference
// skyline rewriting is a self anti-join!) and the Listing-6/7 analyzer rules
// unambiguous.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "types/schema.h"
#include "types/value.h"

namespace sparkline {

class LogicalPlan;  // from src/plan; expressions hold subquery plans opaquely
using PlanPtr = std::shared_ptr<const LogicalPlan>;

using ExprId = int64_t;
/// Mints a process-unique expression id.
ExprId NextExprId();

class Expression;
using ExprPtr = std::shared_ptr<const Expression>;

/// \brief A resolved, uniquely identified column produced by a plan node.
struct Attribute {
  std::string name;
  DataType type;
  bool nullable = true;
  ExprId id = 0;
  /// Table alias qualifier ("o" in "o.price"), empty if none.
  std::string qualifier;

  /// Wraps this attribute in an AttributeRef expression.
  ExprPtr ToRef() const;
  /// "o.price#12".
  std::string ToString() const;
  Field ToField() const { return Field{name, type, nullable}; }
};

enum class ExprKind : uint8_t {
  kLiteral,
  kUnresolvedAttribute,
  kAttributeRef,
  kBoundReference,
  kAlias,
  kBinary,
  kUnary,
  kCast,
  kFunctionCall,
  kAggregate,
  kSkylineDimension,
  kExistsSubquery,
  kScalarSubquery,
  /// Exec-time holder of a planned scalar subquery (defined in src/exec).
  kPhysicalSubquery,
  kOuterRef,
  kStar,
};

enum class BinaryOp : uint8_t {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNeq,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

bool IsComparisonOp(BinaryOp op);
bool IsArithmeticOp(BinaryOp op);
bool IsLogicalOp(BinaryOp op);
const char* BinaryOpSymbol(BinaryOp op);

enum class UnaryOp : uint8_t { kNot, kNegate, kIsNull, kIsNotNull };

/// Aggregate functions supported by the Aggregate operator.
enum class AggFn : uint8_t { kCountStar, kCount, kSum, kMin, kMax, kAvg };
const char* AggFnName(AggFn fn);

/// Scalar builtins.
enum class BuiltinFn : uint8_t {
  kIfNull,
  kCoalesce,
  kAbs,
  kLeast,
  kGreatest,
  kRound,
};

/// \brief Direction of a skyline dimension (paper Definition 3.1):
/// MIN/MAX dimensions are optimized, DIFF dimensions partition comparability.
enum class SkylineGoal : uint8_t { kMin, kMax, kDiff };
const char* SkylineGoalName(SkylineGoal goal);

/// \brief Base class of all expression nodes. Immutable; rewritten
/// functionally via WithNewChildren/Transform.
class Expression : public std::enable_shared_from_this<Expression> {
 public:
  explicit Expression(ExprKind kind) : kind_(kind) {}
  virtual ~Expression() = default;

  ExprKind kind() const { return kind_; }

  /// Output type; only meaningful once resolved().
  virtual DataType type() const = 0;
  virtual bool nullable() const { return true; }
  /// True when this node and all children are resolved (no unresolved
  /// attributes / functions left).
  virtual bool resolved() const;

  virtual std::vector<ExprPtr> children() const = 0;
  /// Rebuilds this node with new children (same arity).
  virtual ExprPtr WithNewChildren(std::vector<ExprPtr> children) const = 0;

  virtual std::string ToString() const = 0;

  /// True if any node in this tree is an AggregateExpr.
  bool ContainsAggregate() const;

  /// Semantic equality via canonical rendering (ids included).
  bool SameAs(const Expression& other) const {
    return ToString() == other.ToString();
  }

  /// Bottom-up functional rewrite: children first, then `fn` on the node.
  static ExprPtr Transform(const ExprPtr& e,
                           const std::function<ExprPtr(const ExprPtr&)>& fn);
  /// Pre-order visit of all nodes.
  static void Foreach(const ExprPtr& e,
                      const std::function<void(const ExprPtr&)>& fn);

 private:
  ExprKind kind_;
};

/// \brief A constant value.
class Literal : public Expression {
 public:
  explicit Literal(Value value)
      : Expression(ExprKind::kLiteral), value_(std::move(value)) {}
  static ExprPtr Make(Value v) {
    return std::make_shared<Literal>(std::move(v));
  }

  const Value& value() const { return value_; }
  DataType type() const override { return value_.type(); }
  bool nullable() const override { return value_.is_null(); }
  std::vector<ExprPtr> children() const override { return {}; }
  ExprPtr WithNewChildren(std::vector<ExprPtr>) const override {
    return shared_from_this();
  }
  std::string ToString() const override;

 private:
  Value value_;
};

/// \brief A not-yet-resolved column name, possibly qualified ("o.price").
class UnresolvedAttribute : public Expression {
 public:
  explicit UnresolvedAttribute(std::vector<std::string> parts)
      : Expression(ExprKind::kUnresolvedAttribute), parts_(std::move(parts)) {}
  static ExprPtr Make(std::vector<std::string> parts) {
    return std::make_shared<UnresolvedAttribute>(std::move(parts));
  }

  const std::vector<std::string>& parts() const { return parts_; }
  DataType type() const override { return DataType::Int64(); }
  bool resolved() const override { return false; }
  std::vector<ExprPtr> children() const override { return {}; }
  ExprPtr WithNewChildren(std::vector<ExprPtr>) const override {
    return shared_from_this();
  }
  std::string ToString() const override;

 private:
  std::vector<std::string> parts_;
};

/// \brief A resolved reference to an attribute of a child plan.
class AttributeRef : public Expression {
 public:
  explicit AttributeRef(Attribute attr)
      : Expression(ExprKind::kAttributeRef), attr_(std::move(attr)) {}
  static ExprPtr Make(Attribute attr) {
    return std::make_shared<AttributeRef>(std::move(attr));
  }

  const Attribute& attr() const { return attr_; }
  DataType type() const override { return attr_.type; }
  bool nullable() const override { return attr_.nullable; }
  std::vector<ExprPtr> children() const override { return {}; }
  ExprPtr WithNewChildren(std::vector<ExprPtr>) const override {
    return shared_from_this();
  }
  std::string ToString() const override { return attr_.ToString(); }

 private:
  Attribute attr_;
};

/// \brief A physical, ordinal-bound column reference (post-binding).
class BoundReference : public Expression {
 public:
  BoundReference(size_t ordinal, DataType type, bool nullable)
      : Expression(ExprKind::kBoundReference),
        ordinal_(ordinal),
        type_(type),
        nullable_(nullable) {}
  static ExprPtr Make(size_t ordinal, DataType type, bool nullable) {
    return std::make_shared<BoundReference>(ordinal, type, nullable);
  }

  size_t ordinal() const { return ordinal_; }
  DataType type() const override { return type_; }
  bool nullable() const override { return nullable_; }
  std::vector<ExprPtr> children() const override { return {}; }
  ExprPtr WithNewChildren(std::vector<ExprPtr>) const override {
    return shared_from_this();
  }
  std::string ToString() const override;

 private:
  size_t ordinal_;
  DataType type_;
  bool nullable_;
};

/// \brief Names an expression and assigns it a stable ExprId
/// ("expr AS name"). The named output column is ToAttribute().
class Alias : public Expression {
 public:
  Alias(ExprPtr child, std::string name, ExprId id = NextExprId())
      : Expression(ExprKind::kAlias),
        child_(std::move(child)),
        name_(std::move(name)),
        id_(id) {}
  static ExprPtr Make(ExprPtr child, std::string name) {
    return std::make_shared<Alias>(std::move(child), std::move(name));
  }

  const ExprPtr& child() const { return child_; }
  const std::string& name() const { return name_; }
  ExprId id() const { return id_; }
  Attribute ToAttribute() const {
    return Attribute{name_, child_->type(), child_->nullable(), id_, ""};
  }

  DataType type() const override { return child_->type(); }
  bool nullable() const override { return child_->nullable(); }
  std::vector<ExprPtr> children() const override { return {child_}; }
  ExprPtr WithNewChildren(std::vector<ExprPtr> c) const override {
    return std::make_shared<Alias>(c[0], name_, id_);
  }
  std::string ToString() const override;

 private:
  ExprPtr child_;
  std::string name_;
  ExprId id_;
};

/// \brief Binary operators, including SQL three-valued AND/OR.
class BinaryExpr : public Expression {
 public:
  BinaryExpr(BinaryOp op, ExprPtr left, ExprPtr right)
      : Expression(ExprKind::kBinary),
        op_(op),
        left_(std::move(left)),
        right_(std::move(right)) {}
  static ExprPtr Make(BinaryOp op, ExprPtr l, ExprPtr r) {
    return std::make_shared<BinaryExpr>(op, std::move(l), std::move(r));
  }

  BinaryOp op() const { return op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }

  DataType type() const override;
  bool nullable() const override {
    return left_->nullable() || right_->nullable();
  }
  std::vector<ExprPtr> children() const override { return {left_, right_}; }
  ExprPtr WithNewChildren(std::vector<ExprPtr> c) const override {
    return std::make_shared<BinaryExpr>(op_, c[0], c[1]);
  }
  std::string ToString() const override;

 private:
  BinaryOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

/// \brief NOT / unary minus / IS [NOT] NULL.
class UnaryExpr : public Expression {
 public:
  UnaryExpr(UnaryOp op, ExprPtr child)
      : Expression(ExprKind::kUnary), op_(op), child_(std::move(child)) {}
  static ExprPtr Make(UnaryOp op, ExprPtr c) {
    return std::make_shared<UnaryExpr>(op, std::move(c));
  }

  UnaryOp op() const { return op_; }
  const ExprPtr& child() const { return child_; }

  DataType type() const override {
    switch (op_) {
      case UnaryOp::kNegate:
        return child_->type();
      default:
        return DataType::Bool();
    }
  }
  bool nullable() const override {
    return (op_ == UnaryOp::kIsNull || op_ == UnaryOp::kIsNotNull)
               ? false
               : child_->nullable();
  }
  std::vector<ExprPtr> children() const override { return {child_}; }
  ExprPtr WithNewChildren(std::vector<ExprPtr> c) const override {
    return std::make_shared<UnaryExpr>(op_, c[0]);
  }
  std::string ToString() const override;

 private:
  UnaryOp op_;
  ExprPtr child_;
};

/// \brief CAST(child AS type).
class Cast : public Expression {
 public:
  Cast(ExprPtr child, DataType target)
      : Expression(ExprKind::kCast), child_(std::move(child)), target_(target) {}
  static ExprPtr Make(ExprPtr c, DataType t) {
    return std::make_shared<Cast>(std::move(c), t);
  }

  const ExprPtr& child() const { return child_; }
  DataType type() const override { return target_; }
  bool nullable() const override { return child_->nullable(); }
  std::vector<ExprPtr> children() const override { return {child_}; }
  ExprPtr WithNewChildren(std::vector<ExprPtr> c) const override {
    return std::make_shared<Cast>(c[0], target_);
  }
  std::string ToString() const override;

 private:
  ExprPtr child_;
  DataType target_;
};

/// \brief A scalar builtin call. Parsed by name; the analyzer binds `fn`.
class FunctionCall : public Expression {
 public:
  FunctionCall(std::string name, std::vector<ExprPtr> args,
               std::optional<BuiltinFn> fn = std::nullopt)
      : Expression(ExprKind::kFunctionCall),
        name_(std::move(name)),
        args_(std::move(args)),
        fn_(fn) {}
  static ExprPtr Make(std::string name, std::vector<ExprPtr> args) {
    return std::make_shared<FunctionCall>(std::move(name), std::move(args));
  }

  const std::string& name() const { return name_; }
  const std::vector<ExprPtr>& args() const { return args_; }
  std::optional<BuiltinFn> fn() const { return fn_; }
  ExprPtr WithFn(BuiltinFn fn) const {
    return std::make_shared<FunctionCall>(name_, args_, fn);
  }

  DataType type() const override;
  bool nullable() const override;
  bool resolved() const override;
  std::vector<ExprPtr> children() const override { return args_; }
  ExprPtr WithNewChildren(std::vector<ExprPtr> c) const override {
    return std::make_shared<FunctionCall>(name_, std::move(c), fn_);
  }
  std::string ToString() const override;

 private:
  std::string name_;
  std::vector<ExprPtr> args_;
  std::optional<BuiltinFn> fn_;
};

/// \brief An aggregate function invocation; evaluated only by the Aggregate
/// operator (never row-at-a-time).
class AggregateExpr : public Expression {
 public:
  AggregateExpr(AggFn fn, ExprPtr child, bool distinct = false)
      : Expression(ExprKind::kAggregate),
        fn_(fn),
        child_(std::move(child)),
        distinct_(distinct) {}
  static ExprPtr Make(AggFn fn, ExprPtr child, bool distinct = false) {
    return std::make_shared<AggregateExpr>(fn, std::move(child), distinct);
  }

  AggFn fn() const { return fn_; }
  /// Null for COUNT(*).
  const ExprPtr& child() const { return child_; }
  bool distinct() const { return distinct_; }

  DataType type() const override;
  bool nullable() const override {
    // COUNT never returns null; the others do on empty groups.
    return fn_ != AggFn::kCount && fn_ != AggFn::kCountStar;
  }
  bool resolved() const override {
    return child_ == nullptr || child_->resolved();
  }
  std::vector<ExprPtr> children() const override {
    if (child_ == nullptr) return {};
    return {child_};
  }
  ExprPtr WithNewChildren(std::vector<ExprPtr> c) const override {
    return std::make_shared<AggregateExpr>(fn_, c.empty() ? nullptr : c[0],
                                           distinct_);
  }
  std::string ToString() const override;

 private:
  AggFn fn_;
  ExprPtr child_;
  bool distinct_;
};

/// \brief One skyline dimension: an arbitrary expression plus its goal
/// (MIN / MAX / DIFF). Mirrors the paper's SkylineDimension, which extends
/// Spark's Expression so the generic analyzer machinery resolves its child
/// (section 5.2).
class SkylineDimension : public Expression {
 public:
  SkylineDimension(ExprPtr child, SkylineGoal goal)
      : Expression(ExprKind::kSkylineDimension),
        child_(std::move(child)),
        goal_(goal) {}
  static ExprPtr Make(ExprPtr child, SkylineGoal goal) {
    return std::make_shared<SkylineDimension>(std::move(child), goal);
  }

  const ExprPtr& child() const { return child_; }
  SkylineGoal goal() const { return goal_; }

  DataType type() const override { return child_->type(); }
  bool nullable() const override { return child_->nullable(); }
  std::vector<ExprPtr> children() const override { return {child_}; }
  ExprPtr WithNewChildren(std::vector<ExprPtr> c) const override {
    return std::make_shared<SkylineDimension>(c[0], goal_);
  }
  std::string ToString() const override;

 private:
  ExprPtr child_;
  SkylineGoal goal_;
};

/// \brief [NOT] EXISTS(subquery). The analyzer decorrelates these into
/// semi/anti joins; none survive to execution.
class ExistsSubquery : public Expression {
 public:
  ExistsSubquery(PlanPtr plan, bool negated)
      : Expression(ExprKind::kExistsSubquery),
        plan_(std::move(plan)),
        negated_(negated) {}
  static ExprPtr Make(PlanPtr plan, bool negated) {
    return std::make_shared<ExistsSubquery>(std::move(plan), negated);
  }

  const PlanPtr& plan() const { return plan_; }
  bool negated() const { return negated_; }

  DataType type() const override { return DataType::Bool(); }
  bool nullable() const override { return false; }
  bool resolved() const override { return false; }  // must be rewritten
  std::vector<ExprPtr> children() const override { return {}; }
  ExprPtr WithNewChildren(std::vector<ExprPtr>) const override {
    return shared_from_this();
  }
  std::string ToString() const override;

 private:
  PlanPtr plan_;
  bool negated_;
};

/// \brief A single-value subquery ("(SELECT min(x) FROM t)"); the physical
/// planner evaluates the subplan once and substitutes the literal. Used by
/// the paper's single-dimension skyline optimization (section 5.4).
class ScalarSubquery : public Expression {
 public:
  ScalarSubquery(PlanPtr plan, DataType type, bool nullable, bool resolved)
      : Expression(ExprKind::kScalarSubquery),
        plan_(std::move(plan)),
        type_(type),
        nullable_(nullable),
        resolved_(resolved) {}
  static ExprPtr Make(PlanPtr plan, DataType type, bool nullable,
                      bool resolved) {
    return std::make_shared<ScalarSubquery>(std::move(plan), type, nullable,
                                            resolved);
  }

  const PlanPtr& plan() const { return plan_; }
  DataType type() const override { return type_; }
  bool nullable() const override { return nullable_; }
  bool resolved() const override { return resolved_; }
  std::vector<ExprPtr> children() const override { return {}; }
  ExprPtr WithNewChildren(std::vector<ExprPtr>) const override {
    return shared_from_this();
  }
  std::string ToString() const override;

 private:
  PlanPtr plan_;
  DataType type_;
  bool nullable_;
  bool resolved_;
};

/// \brief Marks a reference that resolved against an *outer* query scope
/// inside a subquery; the subquery rewriter pulls these up into the join
/// condition.
class OuterRef : public Expression {
 public:
  explicit OuterRef(ExprPtr inner)
      : Expression(ExprKind::kOuterRef), inner_(std::move(inner)) {}
  static ExprPtr Make(ExprPtr inner) {
    return std::make_shared<OuterRef>(std::move(inner));
  }

  const ExprPtr& inner() const { return inner_; }
  DataType type() const override { return inner_->type(); }
  bool nullable() const override { return inner_->nullable(); }
  std::vector<ExprPtr> children() const override { return {inner_}; }
  ExprPtr WithNewChildren(std::vector<ExprPtr> c) const override {
    return std::make_shared<OuterRef>(c[0]);
  }
  std::string ToString() const override;

 private:
  ExprPtr inner_;
};

/// \brief "*" or "t.*" in a select list (expanded by the analyzer).
class Star : public Expression {
 public:
  explicit Star(std::string qualifier = "")
      : Expression(ExprKind::kStar), qualifier_(std::move(qualifier)) {}
  static ExprPtr Make(std::string qualifier = "") {
    return std::make_shared<Star>(std::move(qualifier));
  }

  const std::string& qualifier() const { return qualifier_; }
  DataType type() const override { return DataType::Int64(); }
  bool resolved() const override { return false; }
  std::vector<ExprPtr> children() const override { return {}; }
  ExprPtr WithNewChildren(std::vector<ExprPtr>) const override {
    return shared_from_this();
  }
  std::string ToString() const override;

 private:
  std::string qualifier_;
};

/// \brief ORDER BY item.
struct SortOrder {
  ExprPtr expr;
  bool ascending = true;
  bool nulls_first = true;

  std::string ToString() const;
};

/// Collects all AttributeRefs in an expression tree (not descending into
/// subquery plans).
std::vector<Attribute> CollectAttributes(const ExprPtr& e);

/// True if the tree contains an OuterRef node.
bool ContainsOuterRef(const ExprPtr& e);

/// Splits a condition into its top-level AND conjuncts.
std::vector<ExprPtr> SplitConjuncts(const ExprPtr& e);

/// Rebuilds a conjunction from conjuncts (nullptr when empty).
ExprPtr CombineConjuncts(const std::vector<ExprPtr>& conjuncts);

}  // namespace sparkline
